(* Stateful externs and the NFs built on them: register semantics, the
   rate limiter (differential against its pure model), the count-min
   sketch (its classic invariants), and both end-to-end on the chip. *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Register --- *)

let test_register_basics () =
  let r = P4ir.Register.make ~name:"r" ~size:100 ~width:16 in
  check Alcotest.int "size rounds to a power of two" 128 (P4ir.Register.size r);
  check Alcotest.int "index mask" 127 (P4ir.Register.index_mask r);
  P4ir.Register.write r 5 (P4ir.Bitval.of_int ~width:32 0x1FFFF);
  check Alcotest.int "write truncates to cell width" 0xFFFF
    (P4ir.Bitval.to_int (P4ir.Register.read r 5));
  check Alcotest.int "other cells zero" 0 (P4ir.Bitval.to_int (P4ir.Register.read r 6));
  P4ir.Register.clear r;
  check Alcotest.int "clear" 0 (P4ir.Bitval.to_int (P4ir.Register.read r 5))

(* Out-of-range indices wrap through the index mask on BOTH write and
   read — as the hardware's address decode would — so a write through a
   too-wide index lands in the aliased cell instead of vanishing. *)
let test_register_index_wrap () =
  let r = P4ir.Register.make ~name:"r" ~size:100 ~width:16 in
  (* size rounds up to 128, so 4096 aliases cell 0 and 130 aliases 2. *)
  P4ir.Register.write r 4096 (P4ir.Bitval.of_int ~width:16 7);
  check Alcotest.int "write wraps into the aliased cell" 7
    (P4ir.Bitval.to_int (P4ir.Register.read r 0));
  check Alcotest.int "read wraps identically" 7
    (P4ir.Bitval.to_int (P4ir.Register.read r 4096));
  P4ir.Register.write r 2 (P4ir.Bitval.of_int ~width:16 9);
  check Alcotest.int "read of 130 aliases cell 2" 9
    (P4ir.Bitval.to_int (P4ir.Register.read r 130));
  (* Negative indices take their low bits, like any other index. *)
  P4ir.Register.write r (-1) (P4ir.Bitval.of_int ~width:16 3);
  check Alcotest.int "negative index wraps to the last cell" 3
    (P4ir.Bitval.to_int (P4ir.Register.read r 127))

let test_register_fold () =
  let r = P4ir.Register.make ~name:"r" ~size:8 ~width:8 in
  P4ir.Register.write r 1 (P4ir.Bitval.of_int ~width:8 10);
  P4ir.Register.write r 3 (P4ir.Bitval.of_int ~width:8 20);
  let sum = P4ir.Register.fold (fun _ v acc -> acc + P4ir.Bitval.to_int v) r 0 in
  check Alcotest.int "fold over nonzero cells" 30 sum

let prop_register_rw =
  QCheck.Test.make ~name:"register read-after-write" ~count:300
    QCheck.(pair small_nat int64)
    (fun (i, v) ->
      let r = P4ir.Register.make ~name:"r" ~size:64 ~width:32 in
      let i = i land P4ir.Register.index_mask r in
      P4ir.Register.write r i (P4ir.Bitval.make ~width:64 v);
      Int64.equal
        (P4ir.Bitval.to_int64 (P4ir.Register.read r i))
        (Int64.logand v 0xFFFFFFFFL))

let test_action_register_prims () =
  let reg = P4ir.Register.make ~name:"counters" ~size:16 ~width:32 in
  let meta = P4ir.Hdr.decl "m" [ ("idx", 8); ("val", 32) ] in
  let phv = P4ir.Phv.create [ meta ] in
  P4ir.Phv.set_valid phv "m";
  P4ir.Phv.set_int phv (P4ir.Fieldref.v "m" "idx") 3;
  let bump =
    P4ir.Action.make "bump"
      [
        P4ir.Action.Reg_read
          (P4ir.Fieldref.v "m" "val", "counters", P4ir.Expr.field "m" "idx");
        P4ir.Action.Reg_write
          ( "counters",
            P4ir.Expr.field "m" "idx",
            P4ir.Expr.(Field (P4ir.Fieldref.v "m" "val") + const ~width:32 1) );
      ]
  in
  let regs n = if n = "counters" then Some reg else None in
  for _ = 1 to 5 do
    P4ir.Action.run ~regs bump ~args:[] phv
  done;
  check Alcotest.int "five increments" 5
    (P4ir.Bitval.to_int (P4ir.Register.read reg 3));
  Alcotest.check_raises "unknown register"
    (Invalid_argument "Action.run: unknown register counters") (fun () ->
      P4ir.Action.run bump ~args:[] phv)

let test_register_dependency_serializes () =
  (* Two tables touching the same register must land in distinct stages
     (conservative serialization through the $reg pseudo-field). *)
  let reg_read t =
    P4ir.Action.make ("a_" ^ t)
      [
        P4ir.Action.Reg_write
          ("shared", P4ir.Expr.const ~width:8 0, P4ir.Expr.const ~width:32 1);
      ]
  in
  let mk name =
    P4ir.Table.make ~name ~keys:[]
      ~actions:[ reg_read name ] ~default:("a_" ^ name, []) ()
  in
  let t1 = mk "t1" and t2 = mk "t2" in
  let env n = List.find_opt (fun t -> P4ir.Table.name t = n) [ t1; t2 ] in
  let control =
    P4ir.Control.make "c" [ P4ir.Control.Apply "t1"; P4ir.Control.Apply "t2" ]
  in
  let stages, total = P4ir.Deps.min_stages env control in
  check Alcotest.int "t2 in a later stage" 1 (List.assoc "t2" stages);
  check Alcotest.int "two stages" 2 total

(* --- rate limiter, differential --- *)

open Nflib

let budgets = [ { Rate_limiter.tenant = 5; limit = 4 } ]

let rl_phv nf tenant =
  let phv = P4ir.Phv.create [] in
  ignore
    (Result.get_ok
       (P4ir.Parser_graph.parse nf.Nf.parser
          (Netpkt.Pkt.encode
             (Netpkt.Pkt.tcp_flow
                ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
                ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
                {
                  Netpkt.Flow.src = Netpkt.Ip4.of_string_exn "1.2.3.4";
                  dst = Netpkt.Ip4.of_string_exn "10.0.5.5";
                  proto = 6;
                  src_port = 1;
                  dst_port = 2;
                }))
          phv));
  Asic.Stdmeta.attach phv;
  Sfc_header.to_phv { Sfc_header.default with service_path_id = 1 } phv;
  P4ir.Phv.set_int phv (Sfc_header.ctx_val 0) tenant;
  phv

let run_rl nf phv =
  let regs n = Nf.find_register nf n in
  P4ir.Control.exec ~regs (Nf.table_env nf) (Nf.control nf) phv

let test_rate_limiter_differential () =
  let nf = Result.get_ok (Rate_limiter.create budgets ()) in
  let store =
    State_store.create { State_store.capacity = 64; ttl_ns = 0L }
  in
  let counts = Rate_limiter.counts store in
  (* Interleave two tenants: 5 is limited to 4/window, 9 is unlimited. *)
  List.iter
    (fun tenant ->
      let phv = rl_phv nf tenant in
      run_rl nf phv;
      let dropped = P4ir.Phv.get_int phv Sfc_header.drop_flag = 1 in
      let expected = Rate_limiter.reference budgets ~counts ~tenant in
      check Alcotest.bool
        (Printf.sprintf "tenant %d verdict" tenant)
        (expected = `Drop) dropped)
    [ 5; 5; 9; 5; 5; 9; 5; 5; 5; 9; 5 ]

let test_rate_limiter_window_reset () =
  let nf = Result.get_ok (Rate_limiter.create budgets ()) in
  let send () =
    let phv = rl_phv nf 5 in
    run_rl nf phv;
    P4ir.Phv.get_int phv Sfc_header.drop_flag = 1
  in
  for _ = 1 to 4 do
    check Alcotest.bool "within budget" false (send ())
  done;
  check Alcotest.bool "over budget" true (send ());
  Option.iter P4ir.Register.clear (Nf.find_register nf Rate_limiter.register_name);
  check Alcotest.bool "fresh window" false (send ())

(* Regression: the per-tenant counters used to live in a caller-owned
   Hashtbl that nothing ever aged — every tenant id seen once stayed
   forever. On the store they are capacity-bounded, and the TTL sweep
   (the control plane's window tick) restarts idle tenants from zero. *)
let test_rate_limiter_counts_bounded_and_aged () =
  let store = State_store.create { State_store.capacity = 32; ttl_ns = 100L } in
  let counts = Rate_limiter.counts store in
  (* A scan across 1000 distinct tenant ids can't grow the table past
     its bound. *)
  for tenant = 1000 to 1999 do
    ignore (Rate_limiter.reference budgets ~counts ~tenant)
  done;
  check Alcotest.bool "counter table bounded" true
    (State_store.length counts <= 32);
  (* Tenant 5 (budget 4): fill the window, cross it... *)
  for _ = 1 to 4 do
    check Alcotest.bool "within budget"
      (* first 4 packets pass *) true
      (Rate_limiter.reference budgets ~counts ~tenant:5 = `Pass)
  done;
  check Alcotest.bool "over budget" true
    (Rate_limiter.reference budgets ~counts ~tenant:5 = `Drop);
  (* ...then go idle past the TTL: the sweep expires the counter and
     the next window starts from zero — same as the cleared register. *)
  ignore (State_store.advance store 150L);
  check Alcotest.(option int) "idle counter swept" None
    (State_store.find counts 5);
  check Alcotest.bool "fresh window after expiry" true
    (Rate_limiter.reference budgets ~counts ~tenant:5 = `Pass)

(* --- count-min sketch --- *)

let sketch_phv nf src =
  let phv = P4ir.Phv.create [] in
  ignore
    (Result.get_ok
       (P4ir.Parser_graph.parse nf.Nf.parser
          (Netpkt.Pkt.encode
             (Netpkt.Pkt.tcp_flow
                ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
                ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
                {
                  Netpkt.Flow.src = src;
                  dst = Netpkt.Ip4.of_string_exn "10.0.5.5";
                  proto = 6;
                  src_port = 1;
                  dst_port = 2;
                }))
          phv));
  Asic.Stdmeta.attach phv;
  Sfc_header.to_phv { Sfc_header.default with service_path_id = 1 } phv;
  phv

let run_sketch nf phv =
  let regs n = Nf.find_register nf n in
  P4ir.Control.exec ~regs (Nf.table_env nf) (Nf.control nf) phv

let test_sketch_flags_heavy_source () =
  let threshold = 5 in
  let nf = Result.get_ok (Ddos_sketch.create ~threshold ()) in
  let heavy = Netpkt.Ip4.of_string_exn "198.51.100.66" in
  let flagged = ref 0 in
  for i = 1 to 10 do
    let phv = sketch_phv nf heavy in
    run_sketch nf phv;
    if P4ir.Phv.get_int phv Sfc_header.mirror_flag = 1 then begin
      incr flagged;
      if i < threshold then
        Alcotest.fail (Printf.sprintf "flagged too early at packet %d" i)
    end
  done;
  check Alcotest.int "flagged from the threshold-th packet on" 6 !flagged

let test_sketch_block_mode_drops () =
  let nf = Result.get_ok (Ddos_sketch.create ~block:true ~threshold:3 ()) in
  let heavy = Netpkt.Ip4.of_string_exn "198.51.100.66" in
  let dropped = ref 0 in
  for _ = 1 to 5 do
    let phv = sketch_phv nf heavy in
    run_sketch nf phv;
    if P4ir.Phv.get_int phv Sfc_header.drop_flag = 1 then incr dropped
  done;
  check Alcotest.int "drops from packet 3" 3 !dropped

let prop_sketch_never_underestimates =
  QCheck.Test.make ~name:"count-min never underestimates" ~count:20
    QCheck.(int_range 1 50)
    (fun n_sources ->
      let nf = Result.get_ok (Ddos_sketch.create ~threshold:1_000_000 ()) in
      let st = Random.State.make [| n_sources |] in
      let sources =
        List.init n_sources (fun _ -> Netpkt.Ip4.random st)
      in
      let true_counts = Hashtbl.create 16 in
      List.iter
        (fun src ->
          let reps = 1 + Random.State.int st 5 in
          Hashtbl.replace true_counts src
            (Option.value ~default:0 (Hashtbl.find_opt true_counts src) + reps);
          for _ = 1 to reps do
            run_sketch nf (sketch_phv nf src)
          done)
        sources;
      (* Read estimates straight from the NF's registers, mirroring the
         data plane hashes. *)
      Hashtbl.fold
        (fun src true_count ok ->
          ok
          &&
          let est = ref max_int in
          List.iter
            (fun i ->
              let reg = Option.get (Nf.find_register nf (Ddos_sketch.row_register i)) in
              let phv = sketch_phv nf src in
              (* Re-run to get the meta fields populated, then subtract
                 this probe's own increment. *)
              run_sketch nf phv;
              let c =
                P4ir.Phv.get_int phv
                  (P4ir.Fieldref.v "cms_meta" (Printf.sprintf "c%d" i))
              in
              ignore reg;
              est := min !est c)
            [ 0; 1; 2 ];
          (* The meta counts are pre-increment reads: for this source
             they are at least its true count (collisions only add). *)
          Ddos_sketch.reference_estimate_lower_bound ~true_count
            ~estimate:!est
          |> fun lower -> lower)
        true_counts true)

(* --- end to end: the protected chain on the chip --- *)

let compile_protected () =
  let input =
    {
      (Nflib.Catalog.edge_cloud_input ~strategy:Placement.Greedy ()) with
      Compiler.chains = Nflib.Catalog.protected_chains ~exit_port:1;
    }
  in
  Compiler.compile input

let send rt ~src_last ~n =
  let results = ref [] in
  for i = 1 to n do
    let pkt =
      Netpkt.Pkt.tcp_flow
        ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
        ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
        {
          Netpkt.Flow.src = Netpkt.Ip4.of_octets 203 0 113 src_last;
          dst = Netpkt.Ip4.of_octets 10 0 5 7;
          proto = 6;
          src_port = 1000 + i;
          dst_port = 80;
        }
    in
    match Ptf.send rt ~in_port:0 pkt with
    | Ok o -> results := o.Ptf.runtime.Runtime.verdict :: !results
    | Error e -> Alcotest.fail e
  done;
  List.rev !results

let test_protected_chain_rate_limit_on_chip () =
  let compiled = Result.get_ok (compile_protected ()) in
  let rt = Runtime.create compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  let verdicts = send rt ~src_last:50 ~n:12 in
  let emitted =
    List.length
      (List.filter (function Asic.Chip.Emitted _ -> true | _ -> false) verdicts)
  in
  let dropped =
    List.length
      (List.filter (function Asic.Chip.Dropped -> true | _ -> false) verdicts)
  in
  (* Budget is 8 packets per window for tenant 5. *)
  check Alcotest.int "first 8 delivered" 8 emitted;
  check Alcotest.int "rest dropped" 4 dropped;
  (* Window reset restores service. *)
  Rate_limiter.reset_window compiled;
  let verdicts = send rt ~src_last:51 ~n:3 in
  check Alcotest.int "fresh window delivers" 3
    (List.length
       (List.filter (function Asic.Chip.Emitted _ -> true | _ -> false) verdicts))

let test_sketch_estimate_api_on_chip () =
  let compiled = Result.get_ok (compile_protected ()) in
  let rt = Runtime.create compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  let src = Netpkt.Ip4.of_octets 203 0 113 77 in
  ignore (send rt ~src_last:77 ~n:5);
  let est = Ddos_sketch.estimate compiled src in
  check Alcotest.bool "estimate >= true count" true (est >= 5);
  Ddos_sketch.reset compiled;
  check Alcotest.int "reset clears" 0 (Ddos_sketch.estimate compiled src)

let () =
  Alcotest.run "stateful"
    [
      ( "register",
        [
          Alcotest.test_case "basics" `Quick test_register_basics;
          Alcotest.test_case "index wrap" `Quick test_register_index_wrap;
          Alcotest.test_case "fold" `Quick test_register_fold;
          qtest prop_register_rw;
          Alcotest.test_case "action prims" `Quick test_action_register_prims;
          Alcotest.test_case "dependency serializes" `Quick
            test_register_dependency_serializes;
        ] );
      ( "rate_limiter",
        [
          Alcotest.test_case "differential" `Quick test_rate_limiter_differential;
          Alcotest.test_case "window reset" `Quick test_rate_limiter_window_reset;
          Alcotest.test_case "counts bounded and aged" `Quick
            test_rate_limiter_counts_bounded_and_aged;
        ] );
      ( "ddos_sketch",
        [
          Alcotest.test_case "flags heavy source" `Quick
            test_sketch_flags_heavy_source;
          Alcotest.test_case "block mode" `Quick test_sketch_block_mode_drops;
          qtest prop_sketch_never_underestimates;
        ] );
      ( "on_chip",
        [
          Alcotest.test_case "protected chain rate limit" `Quick
            test_protected_chain_rate_limit_on_chip;
          Alcotest.test_case "sketch estimate api" `Quick
            test_sketch_estimate_api_on_chip;
        ] );
    ]
