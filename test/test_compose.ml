(* Composition tests: the generated pipelet programs validate, carry the
   right framework tables, and execute the Fig. 5 gating semantics. *)

open Dejavu_core

(* The result-API install for tests: a failed install is a test bug. *)
let must_add t e =
  match P4ir.Table.add_entry t e with Ok () -> () | Error m -> Alcotest.fail m

let check = Alcotest.check

let spec = Asic.Spec.wedge_100b
let ing0 = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Ingress }
let eg0 = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Egress }

let registry = Nflib.Catalog.registry ()
let nf_of name = Nf.instantiate registry name

let generic_parser =
  let nfs =
    List.map
      (fun n -> (Result.get_ok (nf_of n)).Nf.parser)
      [ "classifier"; "fw"; "vgw"; "lb"; "router" ]
  in
  Result.get_ok
    (Parser_merge.merge ~name:"generic"
       (Net_hdrs.base_parser ~with_vlan:true ~name:"dejavu" () :: nfs))

let build id layout =
  Compose.build ~spec ~generic_parser ~id ~layout ~nf_of

let test_empty_ingress_has_branching () =
  match build ing0 [] with
  | Error e -> Alcotest.fail e
  | Ok b ->
      check Alcotest.(option string) "branching present" (Some "dv_branching")
        b.Compose.branching_table;
      check Alcotest.(list string) "only the branching table"
        [ "dv_branching" ] b.Compose.framework_tables;
      (match P4ir.Program.validate b.Compose.program with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_empty_egress_has_strip_only () =
  match build eg0 [] with
  | Error e -> Alcotest.fail e
  | Ok b ->
      check Alcotest.(option string) "no branching at egress" None
        b.Compose.branching_table;
      check Alcotest.int "strip gateways counted" 3 b.Compose.framework_gateways

let test_seq_composition_structure () =
  match build ing0 [ Layout.Seq [ "fw"; "lb" ] ] with
  | Error e -> Alcotest.fail e
  | Ok b ->
      check Alcotest.(list (pair string string)) "check_next tables per NF"
        [ ("fw", "dv_check_next__fw"); ("lb", "dv_check_next__lb") ]
        b.Compose.check_next_of;
      let names = b.Compose.framework_tables in
      check Alcotest.bool "per-NF flags checks" true
        (List.mem "dv_check_flags__fw" names && List.mem "dv_check_flags__lb" names);
      (* NF tables are renamed into the composed namespace. *)
      check Alcotest.bool "fw table renamed" true
        (P4ir.Program.find_table b.Compose.program "fw__acl" <> None);
      check Alcotest.bool "lb table renamed" true
        (P4ir.Program.find_table b.Compose.program "lb__lb_session" <> None)

let test_par_composition_shares_flags () =
  match build ing0 [ Layout.Par [ "fw"; "lb" ] ] with
  | Error e -> Alcotest.fail e
  | Ok b ->
      let flags =
        List.filter
          (fun n -> String.length n > 15 && String.sub n 0 15 = "dv_check_flags_")
          b.Compose.framework_tables
      in
      check Alcotest.int "one shared flags check for the group" 1
        (List.length flags)

let test_classifier_in_par_group_supported () =
  match build ing0 [ Layout.Par [ "classifier"; "fw" ] ] with
  | Error e -> Alcotest.fail e
  | Ok b -> (
      match P4ir.Program.validate b.Compose.program with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_programs_fit_the_pipelet () =
  (* The §5 layouts must stage-allocate on a Tofino-like pipelet. *)
  match build ing0 [ Layout.Seq [ "classifier"; "fw"; "vgw" ] ] with
  | Error e -> Alcotest.fail e
  | Ok b -> (
      match Asic.Pipelet.load spec ing0 b.Compose.program with
      | Error e -> Alcotest.fail e
      | Ok pl ->
          check Alcotest.bool "uses multiple stages (dependency chain)" true
            (Asic.Pipelet.stages_used pl > 1);
          check Alcotest.bool "fits the pipelet" true
            (Asic.Pipelet.stages_used pl <= spec.Asic.Spec.stages_per_pipelet))

(* Execute the gating semantics directly. *)
let exec_program (b : Compose.built) phv =
  P4ir.Program.exec_control b.Compose.program phv

let sfc_phv ~path ~index =
  let phv = P4ir.Phv.create [ Net_hdrs.eth ] in
  P4ir.Phv.set_valid phv "eth";
  Asic.Stdmeta.attach phv;
  Sfc_header.to_phv
    { Sfc_header.default with service_path_id = path; service_index = index }
    phv;
  (* Give the firewall and LB something to look at. *)
  P4ir.Phv.add_decl phv Net_hdrs.ipv4;
  P4ir.Phv.set_valid phv "ipv4";
  P4ir.Phv.add_decl phv Net_hdrs.tcp;
  P4ir.Phv.add_decl phv Net_hdrs.udp;
  phv

let install_check_next (b : Compose.built) nf entries =
  let table =
    Option.get
      (P4ir.Program.find_table b.Compose.program
         (List.assoc nf b.Compose.check_next_of))
  in
  List.iter
    (fun (path, idx) ->
      must_add table
        {
          P4ir.Table.priority = 0;
          patterns =
            [
              P4ir.Table.M_exact (P4ir.Bitval.of_int ~width:16 path);
              P4ir.Table.M_exact (P4ir.Bitval.of_int ~width:8 idx);
            ];
          action = Compose.proceed_action;
          args = [];
        })
    entries

let test_gate_proceeds_and_bumps () =
  let b = Result.get_ok (build ing0 [ Layout.Seq [ "fw" ] ]) in
  install_check_next b "fw" [ (7, 2) ];
  let phv = sfc_phv ~path:7 ~index:2 in
  exec_program b phv;
  check Alcotest.int "index bumped after the NF ran" 3
    (P4ir.Phv.get_int phv Sfc_header.service_index)

let test_gate_skips_other_paths () =
  let b = Result.get_ok (build ing0 [ Layout.Seq [ "fw" ] ]) in
  install_check_next b "fw" [ (7, 2) ];
  let phv = sfc_phv ~path:9 ~index:2 in
  exec_program b phv;
  check Alcotest.int "index untouched when the gate skips" 2
    (P4ir.Phv.get_int phv Sfc_header.service_index)

let test_no_bump_on_cpu_punt () =
  (* The LB misses (empty session table) and punts: the index must keep
     pointing at the LB. *)
  let b = Result.get_ok (build ing0 [ Layout.Seq [ "lb" ] ]) in
  install_check_next b "lb" [ (7, 0) ];
  let phv = sfc_phv ~path:7 ~index:0 in
  P4ir.Phv.add_decl phv Net_hdrs.tcp;
  P4ir.Phv.set_valid phv "tcp";
  P4ir.Phv.add_decl phv Nflib.Lb.meta_decl;
  exec_program b phv;
  check Alcotest.int "index not bumped" 0
    (P4ir.Phv.get_int phv Sfc_header.service_index);
  check Alcotest.int "to-CPU translated to platform metadata" 1
    (P4ir.Phv.get_int phv Asic.Stdmeta.to_cpu_flag)

let test_strip_restores_ethertype () =
  let b = Result.get_ok (build eg0 []) in
  let phv = sfc_phv ~path:7 ~index:5 in
  P4ir.Phv.set_int phv Sfc_header.out_port 4;
  P4ir.Phv.set_int phv Asic.Stdmeta.egress_port 4;
  P4ir.Phv.set_int phv Net_hdrs.eth_ethertype Net_hdrs.ethertype_sfc;
  exec_program b phv;
  check Alcotest.bool "sfc stripped" false (P4ir.Phv.is_valid phv "sfc");
  check Alcotest.int "ethertype restored" Net_hdrs.ethertype_ipv4
    (P4ir.Phv.get_int phv Net_hdrs.eth_ethertype)

let test_strip_skipped_mid_path () =
  let b = Result.get_ok (build eg0 []) in
  let phv = sfc_phv ~path:7 ~index:5 in
  (* out_port unset (0): the packet is still mid-chain. *)
  P4ir.Phv.set_int phv Asic.Stdmeta.egress_port 4;
  exec_program b phv;
  check Alcotest.bool "sfc kept mid-path" true (P4ir.Phv.is_valid phv "sfc")

let () =
  Alcotest.run "compose"
    [
      ( "structure",
        [
          Alcotest.test_case "empty ingress" `Quick test_empty_ingress_has_branching;
          Alcotest.test_case "empty egress" `Quick test_empty_egress_has_strip_only;
          Alcotest.test_case "seq structure" `Quick test_seq_composition_structure;
          Alcotest.test_case "par shares flags" `Quick
            test_par_composition_shares_flags;
          Alcotest.test_case "classifier in par" `Quick
            test_classifier_in_par_group_supported;
          Alcotest.test_case "fits pipelet" `Quick test_programs_fit_the_pipelet;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "proceed and bump" `Quick test_gate_proceeds_and_bumps;
          Alcotest.test_case "skip other paths" `Quick test_gate_skips_other_paths;
          Alcotest.test_case "no bump on punt" `Quick test_no_bump_on_cpu_punt;
          Alcotest.test_case "strip restores ethertype" `Quick
            test_strip_restores_ethertype;
          Alcotest.test_case "strip skipped mid-path" `Quick
            test_strip_skipped_mid_path;
        ] );
    ]
