(* Control-plane runtime tests: CPU-mark clearing, NF id derivation,
   and the LB miss/install/reinject loop. *)

open Dejavu_core

let check = Alcotest.check

let test_default_nf_id_stable () =
  check Alcotest.int "stable across calls" (Runtime.default_nf_id "lb")
    (Runtime.default_nf_id "lb");
  check Alcotest.bool "distinct for distinct names" true
    (Runtime.default_nf_id "lb" <> Runtime.default_nf_id "fw");
  check Alcotest.bool "nonzero" true (Runtime.default_nf_id "lb" <> 0);
  check Alcotest.bool "fits the 16-bit context value" true
    (Runtime.default_nf_id "classifier" <= 0xFFFF)

let sfc_frame hdr =
  let tail =
    Netpkt.Pkt.tcp_flow
      ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
      ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
      {
        Netpkt.Flow.src = Netpkt.Ip4.of_string_exn "192.0.2.1";
        dst = Netpkt.Ip4.of_string_exn "10.0.1.10";
        proto = Netpkt.Ipv4.proto_tcp;
        src_port = 1;
        dst_port = 2;
      }
  in
  Netpkt.Pkt.encode
    (Netpkt.Pkt.Eth
       (Netpkt.Eth.make ~dst:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
          Netpkt.Eth.ethertype_sfc)
    :: Netpkt.Pkt.Sfc_raw (Sfc_header.encode hdr)
    :: List.tl tail)

let test_clear_cpu_mark () =
  let hdr =
    {
      Sfc_header.default with
      service_path_id = 10;
      service_index = 3;
      to_cpu = true;
      context = [| (0, 0); (0, 0); (0, 0); (Sfc_header.ctx_key_cpu_reason, 77) |];
    }
  in
  let frame = sfc_frame hdr in
  let cleared = Runtime.clear_cpu_mark frame in
  check Alcotest.bool "returns a fresh buffer" false (frame == cleared);
  match Sfc_header.decode cleared ~off:Netpkt.Eth.size with
  | Error e -> Alcotest.fail e
  | Ok h ->
      check Alcotest.bool "to_cpu cleared" false h.Sfc_header.to_cpu;
      check Alcotest.(option int) "cpu reason gone" None
        (Sfc_header.find_context h Sfc_header.ctx_key_cpu_reason);
      check Alcotest.int "path preserved" 10 h.Sfc_header.service_path_id;
      check Alcotest.int "index preserved" 3 h.Sfc_header.service_index

let test_clear_cpu_mark_non_sfc () =
  let frame = Bytes.of_string (String.make 20 'x') in
  let cleared = Runtime.clear_cpu_mark frame in
  check Alcotest.bytes "non-SFC frame untouched" frame cleared

(* End-to-end: LB sessions stick, and the CPU is consulted once per flow. *)
let runtime () =
  let compiled =
    Result.get_ok (Compiler.compile (Nflib.Catalog.edge_cloud_input ()))
  in
  let rt = Runtime.create compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  rt

let vip_pkt ~src_port =
  Netpkt.Pkt.tcp_flow
    ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
    ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
    {
      Netpkt.Flow.src = Netpkt.Ip4.of_string_exn "203.0.113.50";
      dst = Nflib.Catalog.tenant1_vip;
      proto = Netpkt.Ipv4.proto_tcp;
      src_port;
      dst_port = 80;
    }

let backend_of outcome =
  match outcome.Ptf.decoded with
  | Some layers -> (
      match Netpkt.Pkt.find_ipv4 layers with
      | Some ip -> ip.Netpkt.Ipv4.dst
      | None -> Alcotest.fail "no ipv4 in output")
  | None -> Alcotest.fail "no output frame"

let test_lb_session_stickiness () =
  let rt = runtime () in
  let first = Result.get_ok (Ptf.send rt ~in_port:0 (vip_pkt ~src_port:7777)) in
  check Alcotest.int "first packet consults the CPU" 1
    first.Ptf.runtime.Runtime.counters.Runtime.Counters.cpu_round_trips;
  let second = Result.get_ok (Ptf.send rt ~in_port:0 (vip_pkt ~src_port:7777)) in
  check Alcotest.int "second packet hits the session" 0
    second.Ptf.runtime.Runtime.counters.Runtime.Counters.cpu_round_trips;
  check Alcotest.bool "same backend both times" true
    (Netpkt.Ip4.equal (backend_of first) (backend_of second));
  check Alcotest.bool "backend from the pool" true
    (List.exists
       (Netpkt.Ip4.equal (backend_of first))
       Nflib.Catalog.tenant1_backends)

let test_lb_spreads_flows () =
  let rt = runtime () in
  let backends =
    List.init 24 (fun i ->
        backend_of
          (Result.get_ok (Ptf.send rt ~in_port:0 (vip_pkt ~src_port:(2000 + (i * 13))))))
  in
  let distinct = List.sort_uniq Netpkt.Ip4.compare backends in
  check Alcotest.bool "multiple backends used" true (List.length distinct > 1)

let test_reinject_loop_bounded () =
  (* A handler that always reinjects without installing anything: the
     packet punts forever and [process] must stop with an error after
     dispatching the handler exactly [max_cpu_loops] times (the old
     guard allowed one extra round trip). *)
  let compiled =
    Result.get_ok (Compiler.compile (Nflib.Catalog.edge_cloud_input ()))
  in
  let rt = Runtime.create compiled in
  Runtime.register_nf_id rt "lb" (Runtime.default_nf_id "lb");
  let count = ref 0 in
  Runtime.on_to_cpu rt "lb" (fun _ bytes ->
      incr count;
      Runtime.Reinject (Runtime.clear_cpu_mark bytes));
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match
    Runtime.process rt ~in_port:0 (Netpkt.Pkt.encode (vip_pkt ~src_port:4242))
  with
  | Ok _ -> Alcotest.fail "expected the CPU-loop bound to trip"
  | Error e ->
      check Alcotest.bool "error mentions CPU loops" true (contains e "CPU loops");
      check Alcotest.int "handler ran exactly max_cpu_loops times"
        Runtime.max_cpu_loops !count

(* --- Batch processing: determinism and Fast/Reference equivalence --- *)

(* Same 4-class mix the runtime benchmark drives: two pre-provisioned
   tenants, orange web traffic, and LB flows that punt to the CPU on
   first packet. *)
let mixed_workload n =
  List.init n (fun i ->
      let ip = Netpkt.Ip4.of_string_exn in
      let dst, dst_port =
        match i mod 4 with
        | 0 -> (ip "10.0.3.17", 443)
        | 1 -> (ip "10.0.2.33", 80)
        | 2 -> (Nflib.Catalog.tenant1_vip, 80)
        | _ -> (ip "10.0.3.50", 8080)
      in
      let frame =
        Netpkt.Pkt.encode
          (Netpkt.Pkt.tcp_flow
             ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
             ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
             {
               Netpkt.Flow.src = ip "203.0.113.7";
               dst;
               proto = Netpkt.Ipv4.proto_tcp;
               src_port = 1024 + i;
               dst_port;
             })
      in
      (0, frame))

let test_batch_deterministic () =
  (* Two fresh runtimes over the same workload must agree on every
     counter and on the output digest (an order-sensitive CRC over each
     packet's verdict, port and frame bytes). *)
  let run () = Runtime.process_batch (runtime ()) (mixed_workload 48) in
  let s1 = run () and s2 = run () in
  check Alcotest.bool "batch stats identical across runs" true (s1 = s2);
  check Alcotest.int "all packets emitted" 48 s1.Runtime.emitted;
  check Alcotest.bool "LB flows consulted the CPU" true
    (s1.Runtime.counters.Runtime.Counters.cpu_round_trips > 0)

let test_batch_fast_matches_reference () =
  (* The compiled fast data plane and the interpretive reference must
     produce byte-identical outputs and identical counters. *)
  let run mode =
    let rt = runtime () in
    Runtime.configure rt
      { (Runtime.engine rt) with Runtime.Engine.exec_mode = mode };
    Runtime.process_batch rt (mixed_workload 48)
  in
  let fast = run Asic.Chip.Fast and reference = run Asic.Chip.Reference in
  check Alcotest.bool "fast = reference (digest and counters)" true
    (fast = reference);
  check Alcotest.int "no errors" 0 fast.Runtime.errors

(* --- Emitted-frame IPv4 checksums ----------------------------------
   Regression: action rewrites (NAT, LB DNAT, TTL decrement) used to
   leave the IPv4 checksum stale because encode paths only recomputed
   it when the field was 0. Every emitted frame carrying IPv4 must now
   check out under RFC 1071. *)

let ipv4_off frame =
  if Bytes.length frame < Netpkt.Eth.size + Netpkt.Ipv4.size then None
  else
    let et = Netpkt.Bytes_util.get_uint16 frame 12 in
    if et = Netpkt.Eth.ethertype_sfc then begin
      let off = Netpkt.Eth.size + Sfc_header.byte_size in
      if Bytes.length frame >= off + Netpkt.Ipv4.size then Some off else None
    end
    else if et = Netpkt.Eth.ethertype_ipv4 then Some Netpkt.Eth.size
    else None

let test_emitted_checksums_valid () =
  let run mode =
    let rt = runtime () in
    Runtime.configure rt
      { (Runtime.engine rt) with Runtime.Engine.exec_mode = mode };
    let checked = ref 0 in
    List.iter
      (fun (in_port, frame) ->
        match Runtime.process rt ~in_port frame with
        | Error e -> Alcotest.fail e
        | Ok o -> (
            match o.Runtime.verdict with
            | Asic.Chip.Emitted { frame = out; _ } -> (
                match ipv4_off out with
                | Some off ->
                    incr checked;
                    check Alcotest.bool "emitted IPv4 checksum valid" true
                      (Netpkt.Ipv4.checksum_valid out ~off)
                | None -> ())
            | _ -> ()))
      (mixed_workload 48);
    check Alcotest.bool "some emitted frames carried IPv4" true (!checked > 0)
  in
  run Asic.Chip.Fast;
  run Asic.Chip.Reference

let test_unhandled_cpu_packet_terminates () =
  (* No handlers registered: the To_cpu verdict must surface, not loop. *)
  let compiled =
    Result.get_ok (Compiler.compile (Nflib.Catalog.edge_cloud_input ()))
  in
  let rt = Runtime.create compiled in
  match Ptf.send rt ~in_port:0 (vip_pkt ~src_port:1) with
  | Error e -> Alcotest.fail e
  | Ok o -> (
      match o.Ptf.runtime.Runtime.verdict with
      | Asic.Chip.To_cpu _ -> ()
      | _ -> Alcotest.fail "expected a to-CPU verdict")

let () =
  Alcotest.run "runtime"
    [
      ( "helpers",
        [
          Alcotest.test_case "nf ids" `Quick test_default_nf_id_stable;
          Alcotest.test_case "clear cpu mark" `Quick test_clear_cpu_mark;
          Alcotest.test_case "clear non-sfc" `Quick test_clear_cpu_mark_non_sfc;
        ] );
      ( "lb_loop",
        [
          Alcotest.test_case "session stickiness" `Quick test_lb_session_stickiness;
          Alcotest.test_case "spreads flows" `Quick test_lb_spreads_flows;
          Alcotest.test_case "unhandled cpu packet" `Quick
            test_unhandled_cpu_packet_terminates;
          Alcotest.test_case "reinject loop bounded" `Quick
            test_reinject_loop_bounded;
        ] );
      ( "batch",
        [
          Alcotest.test_case "deterministic" `Quick test_batch_deterministic;
          Alcotest.test_case "fast = reference" `Quick
            test_batch_fast_matches_reference;
        ] );
      ( "checksums",
        [
          Alcotest.test_case "emitted ipv4 checksums valid" `Quick
            test_emitted_checksums_valid;
        ] );
    ]
