(* Tests for headers, PHVs, expressions, actions, tables, controls,
   dependency analysis and resource estimation. *)

open P4ir

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* The result-API install for tests: a failed install is a test bug. *)
let must_add t e =
  match Table.add_entry t e with Ok () -> () | Error m -> Alcotest.fail m

let meta = Hdr.decl "m" [ ("a", 8); ("b", 16); ("c", 32) ]
let fr h f = Fieldref.v h f
let bv w v = Bitval.of_int ~width:w v

let fresh_phv () =
  let phv = Phv.create [ meta ] in
  Phv.set_valid phv "m";
  phv

(* --- Hdr / Phv --- *)

let test_decl_validation () =
  Alcotest.check_raises "duplicate fields"
    (Invalid_argument "Hdr.decl x: duplicate field a") (fun () ->
      ignore (Hdr.decl "x" [ ("a", 8); ("a", 4) ]));
  Alcotest.check_raises "bad width"
    (Invalid_argument "Hdr.decl x: field f width 65 not in 1..64") (fun () ->
      ignore (Hdr.decl "x" [ ("f", 65) ]))

let test_hdr_extract_emit_roundtrip () =
  let d = Hdr.decl "h" [ ("x", 4); ("y", 12); ("z", 16) ] in
  let i = Hdr.inst d in
  let b = Bytes.of_string "\xAB\xCD\xEF\x01" in
  Hdr.extract i b ~bit_off:0;
  check Alcotest.int "x" 0xA (Bitval.to_int (Hdr.get i "x"));
  check Alcotest.int "y" 0xBCD (Bitval.to_int (Hdr.get i "y"));
  check Alcotest.int "z" 0xEF01 (Bitval.to_int (Hdr.get i "z"));
  let out = Bytes.make 4 '\000' in
  Hdr.emit i out ~bit_off:0;
  check Alcotest.bytes "emit inverts extract" b out

let test_hdr_set_resizes () =
  let d = Hdr.decl "h" [ ("x", 4) ] in
  let i = Hdr.inst d in
  Hdr.set i "x" (bv 32 0xFFF);
  check Alcotest.int "truncated to field width" 0xF (Bitval.to_int (Hdr.get i "x"))

let test_phv_validity () =
  let phv = Phv.create [ meta ] in
  check Alcotest.bool "starts invalid" false (Phv.is_valid phv "m");
  Phv.set_valid phv "m";
  check Alcotest.bool "set_valid" true (Phv.is_valid phv "m");
  check Alcotest.bool "absent header invalid" false (Phv.is_valid phv "nope")

let test_phv_copy_isolated () =
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "a") 7;
  let copy = Phv.copy phv in
  Phv.set_int copy (fr "m" "a") 9;
  check Alcotest.int "original unchanged" 7 (Phv.get_int phv (fr "m" "a"));
  check Alcotest.int "copy changed" 9 (Phv.get_int copy (fr "m" "a"))

let test_phv_conflicting_decl () =
  let phv = Phv.create [ meta ] in
  Alcotest.check_raises "conflicting decl"
    (Invalid_argument "Phv.add_decl: conflicting declaration for m") (fun () ->
      Phv.add_decl phv (Hdr.decl "m" [ ("other", 8) ]))

(* --- Expr --- *)

let eval phv e = Expr.eval { Expr.phv; params = [] } e

let test_expr_arith () =
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "a") 200;
  let e = Expr.(Field (fr "m" "a") + const ~width:8 100) in
  check Alcotest.int "8-bit wraparound" 44 (Bitval.to_int (eval phv e))

let test_expr_comparisons () =
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "b") 1000;
  let t e = Bitval.to_bool (eval phv e) in
  check Alcotest.bool "eq" true Expr.(t (Field (fr "m" "b") = const ~width:16 1000));
  check Alcotest.bool "lt" true Expr.(t (Field (fr "m" "b") < const ~width:16 2000));
  check Alcotest.bool "land" true
    Expr.(
      t
        (Bin
           ( LAnd,
             Field (fr "m" "b") = const ~width:16 1000,
             Un (LNot, Field (fr "m" "b") < const ~width:16 5) )))

let test_expr_valid_bit () =
  let phv = Phv.create [ meta ] in
  check Alcotest.bool "invalid header" false
    (Bitval.to_bool (eval phv (Expr.Valid "m")));
  Phv.set_valid phv "m";
  check Alcotest.bool "valid header" true
    (Bitval.to_bool (eval phv (Expr.Valid "m")))

let test_expr_hash_matches_crc32 () =
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "c") 0x31323334;
  let e = Expr.Hash (Expr.Crc32, 32, [ Expr.Field (fr "m" "c") ]) in
  let expected = Netpkt.Bytes_util.crc32 (Bytes.of_string "1234") ~off:0 ~len:4 in
  check Alcotest.int64 "hash = crc32 of serialized fields" expected
    (Bitval.to_int64 (eval phv e))

let test_expr_unbound_param () =
  let phv = fresh_phv () in
  Alcotest.check_raises "unbound param"
    (Invalid_argument "Expr.eval: unbound param nope") (fun () ->
      ignore (eval phv (Expr.Param "nope")))

let test_expr_reads () =
  let e =
    Expr.(Bin (Add, Field (fr "m" "a"), Bin (Mul, Field (fr "m" "b"), Valid "m")))
  in
  let reads = Expr.reads e in
  check Alcotest.int "three reads" 3 (Fieldref.Set.cardinal reads);
  check Alcotest.bool "validity pseudo-field" true
    (Fieldref.Set.mem (fr "m" "$valid") reads)

(* --- Action --- *)

let test_action_params () =
  let a =
    Action.make "set_a" ~params:[ ("v", 8) ]
      [ Action.Assign (fr "m" "a", Expr.Param "v") ]
  in
  let phv = fresh_phv () in
  Action.run a ~args:[ bv 8 42 ] phv;
  check Alcotest.int "param applied" 42 (Phv.get_int phv (fr "m" "a"));
  Alcotest.check_raises "arity checked"
    (Invalid_argument "Action.run set_a: expected 1 args, got 0") (fun () ->
      Action.run a ~args:[] phv)

let test_action_read_write_sets () =
  let a =
    Action.make "mix"
      [
        Action.Assign (fr "m" "a", Expr.Field (fr "m" "b"));
        Action.Set_invalid "m";
      ]
  in
  check Alcotest.bool "reads b" true (Fieldref.Set.mem (fr "m" "b") (Action.reads a));
  check Alcotest.bool "writes a" true (Fieldref.Set.mem (fr "m" "a") (Action.writes a));
  check Alcotest.bool "writes validity" true
    (Fieldref.Set.mem (fr "m" "$valid") (Action.writes a))

(* --- Table --- *)

let mk_table ?(keys = [ { Table.field = fr "m" "a"; kind = Table.Exact; width = 8 } ])
    ?(max_size = 16) () =
  let set_b =
    Action.make "set_b" ~params:[ ("v", 16) ]
      [ Action.Assign (fr "m" "b", Expr.Param "v") ]
  in
  Table.make ~name:"t" ~keys
    ~actions:[ set_b; Action.no_op ]
    ~default:("NoAction", []) ~max_size ()

let test_table_exact_hit_miss () =
  let t = mk_table () in
  must_add t
    { Table.priority = 0; patterns = [ Table.M_exact (bv 8 5) ];
      action = "set_b"; args = [ bv 16 77 ] };
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "a") 5;
  let action, hit = Table.apply t phv in
  check Alcotest.string "hit action" "set_b" action;
  check Alcotest.bool "hit" true hit;
  check Alcotest.int "action effect" 77 (Phv.get_int phv (fr "m" "b"));
  Phv.set_int phv (fr "m" "a") 6;
  let action, hit = Table.apply t phv in
  check Alcotest.string "miss action" "NoAction" action;
  check Alcotest.bool "miss" false hit

let test_table_priority () =
  let t =
    mk_table ~keys:[ { Table.field = fr "m" "a"; kind = Table.Ternary; width = 8 } ] ()
  in
  must_add t
    { Table.priority = 1; patterns = [ Table.M_any ]; action = "set_b"; args = [ bv 16 1 ] };
  must_add t
    {
      Table.priority = 5;
      patterns = [ Table.M_ternary { value = bv 8 0xF0; mask = bv 8 0xF0 } ];
      action = "set_b";
      args = [ bv 16 2 ];
    };
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "a") 0xF3;
  ignore (Table.apply t phv);
  check Alcotest.int "high priority wins" 2 (Phv.get_int phv (fr "m" "b"));
  Phv.set_int phv (fr "m" "a") 0x03;
  ignore (Table.apply t phv);
  check Alcotest.int "fallback entry" 1 (Phv.get_int phv (fr "m" "b"))

let test_table_lpm_longest_prefix () =
  let t =
    mk_table ~keys:[ { Table.field = fr "m" "c"; kind = Table.Lpm; width = 32 } ] ()
  in
  must_add t
    {
      Table.priority = 0;
      patterns = [ Table.M_lpm { value = bv 32 0x0A000000; prefix_len = 8 } ];
      action = "set_b";
      args = [ bv 16 8 ];
    };
  must_add t
    {
      Table.priority = 0;
      patterns = [ Table.M_lpm { value = bv 32 0x0A010000; prefix_len = 16 } ];
      action = "set_b";
      args = [ bv 16 16 ];
    };
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "c") 0x0A0102FF;
  ignore (Table.apply t phv);
  check Alcotest.int "longest prefix wins" 16 (Phv.get_int phv (fr "m" "b"));
  Phv.set_int phv (fr "m" "c") 0x0AFF0000;
  ignore (Table.apply t phv);
  check Alcotest.int "short prefix fallback" 8 (Phv.get_int phv (fr "m" "b"))

let test_table_range () =
  let t =
    mk_table ~keys:[ { Table.field = fr "m" "b"; kind = Table.Range; width = 16 } ] ()
  in
  must_add t
    {
      Table.priority = 0;
      patterns = [ Table.M_range { lo = bv 16 100; hi = bv 16 200 } ];
      action = "set_b";
      args = [ bv 16 1 ];
    };
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "b") 150;
  check Alcotest.bool "in range" true (snd (Table.apply t phv));
  Phv.set_int phv (fr "m" "b") 201;
  check Alcotest.bool "out of range" false (snd (Table.apply t phv))

let test_table_capacity () =
  let t = mk_table ~max_size:1 () in
  must_add t
    { Table.priority = 0; patterns = [ Table.M_exact (bv 8 1) ];
      action = "set_b"; args = [ bv 16 1 ] };
  check Alcotest.bool "over capacity rejected" true
    (Result.is_error
       (Table.add_entry t
          { Table.priority = 0; patterns = [ Table.M_exact (bv 8 2) ];
            action = "set_b"; args = [ bv 16 1 ] }))

let test_table_entry_validation () =
  let t = mk_table () in
  check Alcotest.bool "wrong arity rejected" true
    (Result.is_error
       (Table.add_entry t
          { Table.priority = 0; patterns = [ Table.M_exact (bv 8 1) ];
            action = "set_b"; args = [] }));
  check Alcotest.bool "unknown action rejected" true
    (Result.is_error
       (Table.add_entry t
          { Table.priority = 0; patterns = [ Table.M_exact (bv 8 1) ];
            action = "nope"; args = [] }));
  check Alcotest.bool "pattern kind mismatch rejected" true
    (Result.is_error
       (Table.add_entry t
          { Table.priority = 0;
            patterns = [ Table.M_lpm { value = bv 8 1; prefix_len = 4 } ];
            action = "set_b"; args = [ bv 16 1 ] }))

let test_keyless_table_runs_default () =
  let t = mk_table ~keys:[] () in
  let phv = fresh_phv () in
  let action, hit = Table.apply t phv in
  check Alcotest.string "default runs" "NoAction" action;
  check Alcotest.bool "counts as miss" false hit

(* Differential property: table lookup equals a naive linear-scan model. *)
let prop_ternary_lookup_model =
  QCheck.Test.make ~name:"ternary lookup = linear model" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_bound 8) (triple small_nat small_nat small_nat))
        small_nat)
    (fun (raw_entries, probe) ->
      let t =
        mk_table
          ~keys:[ { Table.field = fr "m" "a"; kind = Table.Ternary; width = 8 } ]
          ~max_size:64 ()
      in
      let entries =
        List.map (fun (v, m, p) -> (v land 0xff, m land 0xff, p land 7)) raw_entries
      in
      List.iter
        (fun (v, m, p) ->
          must_add t
            {
              Table.priority = p;
              patterns = [ Table.M_ternary { value = bv 8 v; mask = bv 8 m } ];
              action = "NoAction";
              args = [];
            })
        entries;
      let probe = probe land 0xff in
      let phv = fresh_phv () in
      Phv.set_int phv (fr "m" "a") probe;
      let model =
        List.fold_left
          (fun acc (v, m, p) ->
            if probe land m = v land m then
              match acc with Some bp when bp >= p -> acc | _ -> Some p
            else acc)
          None entries
      in
      match (Table.lookup t phv, model) with
      | `Miss, None -> true
      | `Hit e, Some p -> e.Table.priority = p
      | `Hit _, None | `Miss, Some _ -> false)

(* Differential property: the staged index (single-key exact hash,
   multi-key exact hash, LPM prefix-length buckets, precompiled linear
   remainder) must agree with the untouched linear-scan reference on
   every table shape — same hit entry (physically the same record), so
   priority, LPM longest-prefix and insertion-order tie-breaks all
   match. *)
let lookup_key_configs =
  [|
    [ { Table.field = fr "m" "a"; kind = Table.Exact; width = 8 } ];
    [
      { Table.field = fr "m" "a"; kind = Table.Exact; width = 8 };
      { Table.field = fr "m" "b"; kind = Table.Exact; width = 16 };
    ];
    [ { Table.field = fr "m" "c"; kind = Table.Lpm; width = 32 } ];
    [ { Table.field = fr "m" "a"; kind = Table.Ternary; width = 8 } ];
    [
      { Table.field = fr "m" "b"; kind = Table.Lpm; width = 16 };
      { Table.field = fr "m" "a"; kind = Table.Ternary; width = 8 };
    ];
    [ { Table.field = fr "m" "b"; kind = Table.Range; width = 16 } ];
  |]

let lookup_pattern_for (k : Table.key) ~v ~m =
  let w = k.Table.width in
  let maxv = (1 lsl w) - 1 in
  match k.Table.kind with
  | Table.Exact -> Table.M_exact (bv w (v land maxv))
  | Table.Lpm ->
      let plen = m mod (w + 1) in
      let pmask = if plen = 0 then 0 else ((1 lsl plen) - 1) lsl (w - plen) in
      Table.M_lpm { value = bv w (v land pmask); prefix_len = plen }
  | Table.Ternary ->
      if m mod 5 = 0 then Table.M_any
      else Table.M_ternary { value = bv w (v land maxv); mask = bv w (m land maxv) }
  | Table.Range ->
      let lo = v land maxv in
      Table.M_range { lo = bv w lo; hi = bv w (min maxv (lo + (m land 0xff))) }

let prop_indexed_lookup_matches_reference =
  QCheck.Test.make ~name:"indexed lookup = reference scan" ~count:500
    QCheck.(
      pair
        (pair (int_bound 5)
           (list_of_size Gen.(int_bound 24)
              (quad small_nat small_nat small_nat (int_bound 0xffffff))))
        (triple small_nat small_nat small_nat))
    (fun ((cfg, raw_entries), (pa, pb, pc)) ->
      let keys = lookup_key_configs.(cfg) in
      let t =
        Table.make ~name:"t" ~keys ~actions:[ Action.no_op ]
          ~default:("NoAction", []) ~max_size:64 ()
      in
      List.iter
        (fun (p, v1, v2, m) ->
          let patterns =
            List.mapi
              (fun i k ->
                lookup_pattern_for k
                  ~v:(if i = 0 then v1 else v2)
                  ~m:(m lsr (i * 7)))
              keys
          in
          must_add t
            { Table.priority = p land 3; patterns; action = "NoAction"; args = [] })
        raw_entries;
      let phv = fresh_phv () in
      Phv.set_int phv (fr "m" "a") (pa land 0xff);
      Phv.set_int phv (fr "m" "b") (pb land 0xffff);
      Phv.set_int phv (fr "m" "c") pc;
      match (Table.lookup t phv, Table.lookup_reference t phv) with
      | `Miss, `Miss -> true
      | `Hit e1, `Hit e2 -> e1 == e2
      | `Hit _, `Miss | `Miss, `Hit _ -> false)

(* --- del_entry / mod_entry --- *)

let test_table_del_entry () =
  let t = mk_table () in
  let e v arg =
    { Table.priority = 0; patterns = [ Table.M_exact (bv 8 v) ];
      action = "set_b"; args = [ bv 16 arg ] }
  in
  must_add t (e 1 10);
  must_add t (e 2 20);
  let epoch0 = Table.epoch t in
  (* Deletion names the entry by match key; action/args are ignored. *)
  check Alcotest.bool "del by key" true (Result.is_ok (Table.del_entry t (e 1 99)));
  check Alcotest.int "one left" 1 (Table.size t);
  check Alcotest.bool "epoch bumped" true (Table.epoch t > epoch0);
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "a") 1;
  check Alcotest.bool "deleted key misses" false (snd (Table.apply t phv));
  Phv.set_int phv (fr "m" "a") 2;
  check Alcotest.bool "survivor still hits" true (snd (Table.apply t phv));
  check Alcotest.bool "missing key errors" true
    (Result.is_error (Table.del_entry t (e 1 0)))

let test_table_mod_entry () =
  let t = mk_table () in
  let e arg =
    { Table.priority = 0; patterns = [ Table.M_exact (bv 8 7) ];
      action = "set_b"; args = [ bv 16 arg ] }
  in
  must_add t (e 11);
  Table.set_stats_enabled t true;
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "a") 7;
  ignore (Table.apply t phv);
  check Alcotest.int "pre-mod action ran" 11 (Phv.get_int phv (fr "m" "b"));
  check Alcotest.bool "mod rebinds" true (Result.is_ok (Table.mod_entry t (e 22)));
  ignore (Table.apply t phv);
  check Alcotest.int "post-mod action ran" 22 (Phv.get_int phv (fr "m" "b"));
  (* The entry kept its identity: same size, hit tally carried over. *)
  check Alcotest.int "size unchanged" 1 (Table.size t);
  (match Table.entry_hits t with
  | [ (entry, hits) ] ->
      check Alcotest.int "hits preserved across mod" 2 hits;
      check Alcotest.int "new args stored" 22
        (Bitval.to_int (List.hd entry.Table.args))
  | _ -> Alcotest.fail "expected one entry");
  check Alcotest.bool "unknown action rejected" true
    (Result.is_error
       (Table.mod_entry t
          { (e 0) with Table.action = "nope"; args = [] }));
  check Alcotest.bool "missing key rejected" true
    (Result.is_error
       (Table.mod_entry t
          { (e 0) with Table.patterns = [ Table.M_exact (bv 8 9) ] }))

let test_table_mod_keeps_tiebreak () =
  (* Two same-priority ternary entries: the first installed wins the
     tie. A mod of the first must not surrender its seniority. *)
  let t =
    mk_table
      ~keys:[ { Table.field = fr "m" "a"; kind = Table.Ternary; width = 8 } ]
      ()
  in
  let entry v m arg =
    { Table.priority = 1;
      patterns = [ Table.M_ternary { value = bv 8 v; mask = bv 8 m } ];
      action = "set_b"; args = [ bv 16 arg ] }
  in
  (* Distinct keys, both matching probe 0xF5; equal priority, so the
     first-installed entry wins. *)
  must_add t (entry 0x05 0x0F 1);
  must_add t (entry 0xF0 0xF0 2);
  check Alcotest.bool "mod the senior entry" true
    (Result.is_ok (Table.mod_entry t (entry 0x05 0x0F 3)));
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "a") 0xF5;
  ignore (Table.apply t phv);
  check Alcotest.int "senior entry still wins the tie" 3
    (Phv.get_int phv (fr "m" "b"))

let test_stats_merge_after_churn () =
  (* The sharding telemetry fold: per-entry hits merge by sequence
     number from a replica. Entries deleted (or cleared) on the primary
     while the replica ran must drop their tallies instead of
     misattributing them, and post-clear entries must never reuse a
     dead seq. *)
  let t = mk_table () in
  let e v arg =
    { Table.priority = 0; patterns = [ Table.M_exact (bv 8 v) ];
      action = "set_b"; args = [ bv 16 arg ] }
  in
  must_add t (e 1 10);
  must_add t (e 2 20);
  Table.set_stats_enabled t true;
  let replica = Table.copy t in
  Table.set_stats_enabled replica true;
  (* Primary churns while the replica serves traffic. *)
  check Alcotest.bool "del on primary" true (Result.is_ok (Table.del_entry t (e 1 0)));
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "a") 1;
  ignore (Table.apply replica phv);
  Phv.set_int phv (fr "m" "a") 2;
  ignore (Table.apply replica phv);
  Table.merge_stats_from t ~src:replica;
  (match Table.entry_hits t with
  | [ (entry, hits) ] ->
      check Alcotest.int "survivor's tally merged" 1 hits;
      check Alcotest.int "and it is the survivor" 2
        (Bitval.to_int (match entry.Table.patterns with
                        | [ Table.M_exact v ] -> v
                        | _ -> Alcotest.fail "unexpected pattern"))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length l)));
  (* Clear, refill: fresh seqs, so a second merge from the stale
     replica pairs nothing. *)
  Table.clear t;
  must_add t (e 3 30);
  Table.merge_stats_from t ~src:replica;
  match Table.entry_hits t with
  | [ (_, hits) ] -> check Alcotest.int "no cross-generation pairing" 0 hits
  | _ -> Alcotest.fail "expected 1 entry"

(* Differential property: a random add/del/mod trace maintained
   incrementally must keep the staged index equivalent to the linear
   reference scan after every op — same physical hit entry, so
   priority, longest-prefix and insertion-order tie-breaks survive
   deletions and in-place rebinds. *)
let prop_op_trace_matches_reference =
  QCheck.Test.make ~name:"add/del/mod trace: indexed lookup = reference scan"
    ~count:400
    QCheck.(
      pair
        (pair (int_bound 5)
           (list_of_size Gen.(int_bound 30)
              (quad small_nat small_nat small_nat (int_bound 0xffffff))))
        (triple small_nat small_nat small_nat))
    (fun ((cfg, raw_ops), (pa, pb, pc)) ->
      let keys = lookup_key_configs.(cfg) in
      let t =
        Table.make ~name:"t" ~keys ~actions:[ Action.no_op ]
          ~default:("NoAction", []) ~max_size:64 ()
      in
      let agree () =
        let phv = fresh_phv () in
        Phv.set_int phv (fr "m" "a") (pa land 0xff);
        Phv.set_int phv (fr "m" "b") (pb land 0xffff);
        Phv.set_int phv (fr "m" "c") pc;
        (match (Table.lookup t phv, Table.lookup_reference t phv) with
        | `Miss, `Miss -> true
        | `Hit e1, `Hit e2 -> e1 == e2
        | `Hit _, `Miss | `Miss, `Hit _ -> false)
        && Table.size t = List.length (Table.entries t)
      in
      List.for_all
        (fun (op, v1, v2, m) ->
          let patterns =
            List.mapi
              (fun i k ->
                lookup_pattern_for k
                  ~v:(if i = 0 then v1 else v2)
                  ~m:(m lsr (i * 7)))
              keys
          in
          let entry =
            { Table.priority = (m lsr 20) land 3; patterns;
              action = "NoAction"; args = [] }
          in
          (* Dels and mods of absent keys legitimately error; the index
             must stay coherent either way. *)
          (match op mod 4 with
          | 0 | 1 -> ignore (Table.add_entry t entry)
          | 2 -> ignore (Table.del_entry t entry)
          | _ -> ignore (Table.mod_entry t entry));
          agree ())
        raw_ops)

(* --- Control --- *)

let mk_env tables name = List.find_opt (fun t -> Table.name t = name) tables

let test_control_apply_switch () =
  let t = mk_table () in
  must_add t
    { Table.priority = 0; patterns = [ Table.M_exact (bv 8 1) ];
      action = "set_b"; args = [ bv 16 7 ] };
  let control =
    Control.make "c"
      [
        Control.Apply_switch
          ( "t",
            [
              ( "set_b",
                [ Control.Run [ Action.Assign (fr "m" "c", Expr.const ~width:32 111) ] ]
              );
            ],
            [ Control.Run [ Action.Assign (fr "m" "c", Expr.const ~width:32 222) ] ]
          );
      ]
  in
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "a") 1;
  Control.exec (mk_env [ t ]) control phv;
  check Alcotest.int "switch branch" 111 (Phv.get_int phv (fr "m" "c"));
  Phv.set_int phv (fr "m" "a") 0;
  Control.exec (mk_env [ t ]) control phv;
  check Alcotest.int "default branch" 222 (Phv.get_int phv (fr "m" "c"))

let test_control_apply_hit () =
  let t = mk_table () in
  must_add t
    { Table.priority = 0; patterns = [ Table.M_exact (bv 8 9) ];
      action = "NoAction"; args = [] };
  let control =
    Control.make "c"
      [
        Control.Apply_hit
          ( "t",
            [ Control.Run [ Action.Assign (fr "m" "b", Expr.const ~width:16 1) ] ],
            [ Control.Run [ Action.Assign (fr "m" "b", Expr.const ~width:16 2) ] ] );
      ]
  in
  let phv = fresh_phv () in
  Phv.set_int phv (fr "m" "a") 9;
  Control.exec (mk_env [ t ]) control phv;
  check Alcotest.int "hit branch" 1 (Phv.get_int phv (fr "m" "b"));
  Phv.set_int phv (fr "m" "a") 8;
  Control.exec (mk_env [ t ]) control phv;
  check Alcotest.int "miss branch" 2 (Phv.get_int phv (fr "m" "b"))

let test_control_trace_and_rename () =
  let t = mk_table () in
  let control = Control.make "c" [ Control.Label ("nf1", [ Control.Apply "t" ]) ] in
  let renamed = Control.map_tables (fun n -> "x__" ^ n) control in
  check Alcotest.(list string) "tables renamed" [ "x__t" ]
    (Control.tables_used renamed);
  let trace = ref [] in
  Control.exec ~trace (mk_env [ t ]) control (fresh_phv ());
  check Alcotest.int "trace has label + table" 2 (List.length !trace)

let test_control_validate () =
  let control = Control.make "c" [ Control.Apply "missing" ] in
  check Alcotest.bool "unknown table rejected" true
    (Result.is_error (Control.validate (mk_env []) control));
  let t = mk_table () in
  let bad_switch =
    Control.make "c" [ Control.Apply_switch ("t", [ ("ghost", []) ], []) ]
  in
  check Alcotest.bool "unknown switch action rejected" true
    (Result.is_error (Control.validate (mk_env [ t ]) bad_switch))

let test_gateway_count () =
  let control =
    Control.make "c"
      [
        Control.If
          (Expr.const ~width:1 1, [ Control.If (Expr.const ~width:1 0, [], []) ], []);
      ]
  in
  check Alcotest.int "nested ifs counted" 2 (Control.gateway_count control)

(* Differential property: a precompiled control must have the same
   observable behavior as the statement-tree interpreter — identical
   PHV effects and identical trace events (including rendered gateway
   condition strings) on random programs and random packet state. *)
let control_stmt_of_code code =
  let set f w v = Control.Run [ Action.Assign (fr "m" f, Expr.const ~width:w v) ] in
  match code mod 6 with
  | 0 -> Control.Apply "t"
  | 1 ->
      Control.Run
        [
          Action.Assign
            ( fr "m" "c",
              Expr.(Field (fr "m" "c") + const ~width:32 (code land 0xff)) );
        ]
  | 2 ->
      Control.If
        ( Expr.(Field (fr "m" "a") < const ~width:8 ((code lsr 3) land 0xff)),
          [ Control.Apply "t" ],
          [ set "b" 16 (code land 0xffff) ] )
  | 3 -> Control.Apply_hit ("t", [ set "c" 32 1 ], [ set "c" 32 2 ])
  | 4 ->
      Control.Apply_switch
        ("t", [ ("set_b", [ set "c" 32 (code land 0xff) ]) ], [ set "c" 32 99 ])
  | _ -> Control.Label ("nf", [ Control.Apply "t" ])

let prop_compiled_control_matches_exec =
  QCheck.Test.make ~name:"compiled control = interpreter" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_bound 12) (int_bound 0xffff))
        (pair small_nat small_nat))
    (fun (codes, (pa, pb)) ->
      let t = mk_table () in
      List.iter
        (fun v ->
          must_add t
            { Table.priority = 0; patterns = [ Table.M_exact (bv 8 v) ];
              action = "set_b"; args = [ bv 16 (100 + v) ] })
        [ 1; 2; 3 ];
      let env = mk_env [ t ] in
      let control = Control.make "c" (List.map control_stmt_of_code codes) in
      let phv1 = fresh_phv () in
      Phv.set_int phv1 (fr "m" "a") (pa land 0xff);
      Phv.set_int phv1 (fr "m" "b") (pb land 0xffff);
      let phv2 = Phv.copy phv1 in
      let tr1 = ref [] and tr2 = ref [] in
      Control.exec ~trace:tr1 env control phv1;
      Control.run_compiled ~trace:tr2 (Control.compile env control) phv2;
      Phv.equal phv1 phv2 && !tr1 = !tr2)

(* --- Deps / Resources --- *)

let two_table_program ~dependent =
  (* t1 writes m.a; t2 matches m.a (dependent) or m.b (independent). *)
  let t1 =
    Table.make ~name:"t1"
      ~keys:[ { Table.field = fr "m" "c"; kind = Table.Exact; width = 32 } ]
      ~actions:
        [ Action.make "w" [ Action.Assign (fr "m" "a", Expr.const ~width:8 1) ] ]
      ~default:("w", []) ()
  in
  let key = if dependent then fr "m" "a" else fr "m" "b" in
  let t2 =
    Table.make ~name:"t2"
      ~keys:[ { Table.field = key; kind = Table.Exact; width = 8 } ]
      ~actions:[ Action.no_op ] ~default:("NoAction", []) ()
  in
  let control = Control.make "c" [ Control.Apply "t1"; Control.Apply "t2" ] in
  (mk_env [ t1; t2 ], control)

let test_match_dependency_forces_stage () =
  let env, control = two_table_program ~dependent:true in
  let stages, total = Deps.min_stages env control in
  check Alcotest.int "t1 at stage 0" 0 (List.assoc "t1" stages);
  check Alcotest.int "t2 pushed to stage 1" 1 (List.assoc "t2" stages);
  check Alcotest.int "two stages total" 2 total

let test_independent_tables_share_stage () =
  let env, control = two_table_program ~dependent:false in
  let stages, total = Deps.min_stages env control in
  check Alcotest.int "t2 stays at stage 0" 0 (List.assoc "t2" stages);
  check Alcotest.int "one stage total" 1 total

let test_gateway_reads_create_dependency () =
  let t1 =
    Table.make ~name:"t1" ~keys:[]
      ~actions:
        [ Action.make "w" [ Action.Assign (fr "m" "a", Expr.const ~width:8 1) ] ]
      ~default:("w", []) ()
  in
  let t2 =
    Table.make ~name:"t2"
      ~keys:[ { Table.field = fr "m" "b"; kind = Table.Exact; width = 16 } ]
      ~actions:[ Action.no_op ] ~default:("NoAction", []) ()
  in
  let control =
    Control.make "c"
      [
        Control.Apply "t1";
        Control.If
          (Expr.(Field (fr "m" "a") = const ~width:8 1), [ Control.Apply "t2" ], []);
      ]
  in
  let stages, _ = Deps.min_stages (mk_env [ t1; t2 ]) control in
  check Alcotest.int "guarded table depends on writer" 1 (List.assoc "t2" stages)

let test_resources_exact_vs_ternary () =
  let exact = mk_table () in
  let tern =
    mk_table ~keys:[ { Table.field = fr "m" "a"; kind = Table.Ternary; width = 8 } ] ()
  in
  let re = Resources.of_table exact and rt = Resources.of_table tern in
  check Alcotest.bool "exact uses sram" true (re.Resources.srams > 0);
  check Alcotest.int "exact uses no tcam" 0 re.Resources.tcams;
  check Alcotest.bool "ternary uses tcam" true (rt.Resources.tcams > 0)

let test_resources_fits () =
  let caps =
    Resources.scale 2
      {
        Resources.stages = 1;
        table_ids = 4;
        srams = 10;
        tcams = 2;
        crossbar_bytes = 16;
        vliws = 8;
        gateways = 4;
        hash_bits = 64;
      }
  in
  let demand = Resources.{ zero with stages = 1; table_ids = 3 } in
  check Alcotest.bool "fits" true (Resources.fits demand ~cap:caps);
  check Alcotest.bool "too many stages" false
    (Resources.fits Resources.{ demand with stages = 3 } ~cap:caps)

let test_resources_max_merge () =
  let a = Resources.{ zero with stages = 3; srams = 2 } in
  let b = Resources.{ zero with stages = 1; srams = 5 } in
  let m = Resources.max_merge a b in
  check Alcotest.int "stages take max" 3 m.Resources.stages;
  check Alcotest.int "memories add" 7 m.Resources.srams

let () =
  Alcotest.run "p4ir"
    [
      ( "hdr_phv",
        [
          Alcotest.test_case "decl validation" `Quick test_decl_validation;
          Alcotest.test_case "extract/emit roundtrip" `Quick
            test_hdr_extract_emit_roundtrip;
          Alcotest.test_case "set resizes" `Quick test_hdr_set_resizes;
          Alcotest.test_case "phv validity" `Quick test_phv_validity;
          Alcotest.test_case "phv copy isolation" `Quick test_phv_copy_isolated;
          Alcotest.test_case "phv decl conflict" `Quick test_phv_conflicting_decl;
        ] );
      ( "expr",
        [
          Alcotest.test_case "modular arith" `Quick test_expr_arith;
          Alcotest.test_case "comparisons" `Quick test_expr_comparisons;
          Alcotest.test_case "validity bit" `Quick test_expr_valid_bit;
          Alcotest.test_case "crc32 hash" `Quick test_expr_hash_matches_crc32;
          Alcotest.test_case "unbound param" `Quick test_expr_unbound_param;
          Alcotest.test_case "read sets" `Quick test_expr_reads;
        ] );
      ( "action",
        [
          Alcotest.test_case "params" `Quick test_action_params;
          Alcotest.test_case "read/write sets" `Quick test_action_read_write_sets;
        ] );
      ( "table",
        [
          Alcotest.test_case "exact hit/miss" `Quick test_table_exact_hit_miss;
          Alcotest.test_case "priority" `Quick test_table_priority;
          Alcotest.test_case "lpm longest prefix" `Quick test_table_lpm_longest_prefix;
          Alcotest.test_case "range" `Quick test_table_range;
          Alcotest.test_case "capacity" `Quick test_table_capacity;
          Alcotest.test_case "entry validation" `Quick test_table_entry_validation;
          Alcotest.test_case "keyless default" `Quick test_keyless_table_runs_default;
          Alcotest.test_case "del_entry" `Quick test_table_del_entry;
          Alcotest.test_case "mod_entry" `Quick test_table_mod_entry;
          Alcotest.test_case "mod keeps tie-break" `Quick
            test_table_mod_keeps_tiebreak;
          Alcotest.test_case "stats merge after churn" `Quick
            test_stats_merge_after_churn;
          qtest prop_ternary_lookup_model;
          qtest prop_indexed_lookup_matches_reference;
          qtest prop_op_trace_matches_reference;
        ] );
      ( "control",
        [
          Alcotest.test_case "apply_switch" `Quick test_control_apply_switch;
          Alcotest.test_case "apply_hit" `Quick test_control_apply_hit;
          Alcotest.test_case "trace and rename" `Quick test_control_trace_and_rename;
          Alcotest.test_case "validate" `Quick test_control_validate;
          Alcotest.test_case "gateway count" `Quick test_gateway_count;
          qtest prop_compiled_control_matches_exec;
        ] );
      ( "deps_resources",
        [
          Alcotest.test_case "match dep forces stage" `Quick
            test_match_dependency_forces_stage;
          Alcotest.test_case "independent share stage" `Quick
            test_independent_tables_share_stage;
          Alcotest.test_case "gateway dependency" `Quick
            test_gateway_reads_create_dependency;
          Alcotest.test_case "exact vs ternary memories" `Quick
            test_resources_exact_vs_ternary;
          Alcotest.test_case "fits" `Quick test_resources_fits;
          Alcotest.test_case "max_merge" `Quick test_resources_max_merge;
        ] );
    ]
