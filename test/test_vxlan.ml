(* The VXLAN tunnel gateway: deep-offset overlay parsing, decap/encap
   semantics against the layered reference, and end-to-end tunnel
   termination/origination on the chip. *)

open Dejavu_core

let check = Alcotest.check

let ip = Netpkt.Ip4.of_string_exn
let pfx = Netpkt.Ip4.prefix_of_string_exn
let mac = Netpkt.Mac.of_string_exn

let tunnels =
  [
    {
      Nflib.Vxlan_gw.dst_prefix = pfx "10.8.0.0/16";
      vni = 8001;
      local_vtep = ip "192.0.2.10";
      remote_vtep = ip "192.0.2.20";
    };
  ]

let inner_tuple =
  {
    Netpkt.Flow.src = ip "172.16.5.5";
    dst = ip "10.8.3.3";
    proto = Netpkt.Ipv4.proto_tcp;
    src_port = 33333;
    dst_port = 443;
  }

let sfc_hdr = { Sfc_header.default with service_path_id = 9; service_index = 1 }

(* eth / sfc / outer ipv4 / udp:4789 / vxlan / inner eth / inner ipv4 / tcp *)
let encapsulated_pkt () =
  [
    Netpkt.Pkt.Eth (Netpkt.Eth.make ~dst:(mac "02:00:00:00:00:02") Netpkt.Eth.ethertype_sfc);
    Netpkt.Pkt.Sfc_raw (Sfc_header.encode sfc_hdr);
    Netpkt.Pkt.Ipv4
      (Netpkt.Ipv4.make ~protocol:Netpkt.Ipv4.proto_udp ~src:(ip "192.0.2.20")
         ~dst:(ip "192.0.2.10") ());
    Netpkt.Pkt.Udp (Netpkt.Udp.make ~src_port:50000 ~dst_port:Netpkt.Udp.port_vxlan ());
    Netpkt.Pkt.Vxlan (Netpkt.Vxlan.make 8001);
    Netpkt.Pkt.Eth (Netpkt.Eth.make ~dst:(mac "02:00:00:00:00:99") Netpkt.Eth.ethertype_ipv4);
    Netpkt.Pkt.Ipv4
      (Netpkt.Ipv4.make ~protocol:inner_tuple.Netpkt.Flow.proto
         ~src:inner_tuple.Netpkt.Flow.src ~dst:inner_tuple.Netpkt.Flow.dst ());
    Netpkt.Pkt.Tcp
      (Netpkt.Tcp.make ~src_port:inner_tuple.Netpkt.Flow.src_port
         ~dst_port:inner_tuple.Netpkt.Flow.dst_port ());
  ]

let nf () = Result.get_ok (Nflib.Vxlan_gw.create tunnels ())

let run_nf nf_inst phv =
  P4ir.Control.exec (Nf.table_env nf_inst) (Nf.control nf_inst) phv

let parse_with nf_inst pkt =
  let phv = P4ir.Phv.create [] in
  (match
     P4ir.Parser_graph.parse nf_inst.Nf.parser (Netpkt.Pkt.encode pkt) phv
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Asic.Stdmeta.attach phv;
  phv

(* --- parser: the deep offsets exist and extract correctly --- *)

let test_overlay_parse () =
  let phv = parse_with (nf ()) (encapsulated_pkt ()) in
  check Alcotest.bool "vxlan parsed" true (P4ir.Phv.is_valid phv "vxlan");
  check Alcotest.int "vni" 8001
    (P4ir.Phv.get_int phv (P4ir.Fieldref.v "vxlan" "vni"));
  check Alcotest.bool "inner ipv4 parsed (offset 84)" true
    (P4ir.Phv.is_valid phv "inner_ipv4");
  check Alcotest.int64 "inner dst"
    (Netpkt.Ip4.to_int64 inner_tuple.Netpkt.Flow.dst)
    (P4ir.Bitval.to_int64
       (P4ir.Phv.get phv (P4ir.Fieldref.v "inner_ipv4" "dst_addr")));
  check Alcotest.bool "inner tcp parsed (offset 104)" true
    (P4ir.Phv.is_valid phv "inner_tcp")

let test_overlay_parses_pre_sfc_too () =
  (* A raw (pre-classification) encapsulated packet has its overlay 20
     bytes higher — the same header types at different offsets, i.e.
     different parser vertices. Both shapes must parse, or a decap NF
     sharing the classifier's pipelet would be blind. *)
  let raw = List.filter (function Netpkt.Pkt.Sfc_raw _ -> false | _ -> true) (encapsulated_pkt ()) in
  let raw =
    match raw with
    | Netpkt.Pkt.Eth e :: rest ->
        Netpkt.Pkt.Eth { e with Netpkt.Eth.ethertype = Netpkt.Eth.ethertype_ipv4 } :: rest
    | _ -> assert false
  in
  let phv = parse_with (nf ()) raw in
  check Alcotest.bool "outer udp parsed" true (P4ir.Phv.is_valid phv "udp");
  check Alcotest.bool "overlay parsed at the shifted offsets" true
    (P4ir.Phv.is_valid phv "vxlan");
  check Alcotest.int64 "inner dst at offset 64"
    (Netpkt.Ip4.to_int64 inner_tuple.Netpkt.Flow.dst)
    (P4ir.Bitval.to_int64
       (P4ir.Phv.get phv (P4ir.Fieldref.v "inner_ipv4" "dst_addr")))

(* --- decap --- *)

let test_decap_normalizes () =
  let nf_inst = nf () in
  let phv = parse_with nf_inst (encapsulated_pkt ()) in
  run_nf nf_inst phv;
  check Alcotest.bool "vxlan gone" false (P4ir.Phv.is_valid phv "vxlan");
  check Alcotest.bool "inner eth gone" false (P4ir.Phv.is_valid phv "inner_eth");
  check Alcotest.bool "inner ipv4 gone" false (P4ir.Phv.is_valid phv "inner_ipv4");
  check Alcotest.bool "outer udp replaced by inner transport" false
    (P4ir.Phv.is_valid phv "udp");
  check Alcotest.bool "tcp now valid" true (P4ir.Phv.is_valid phv "tcp");
  check Alcotest.int "tcp dport from inner" 443
    (P4ir.Phv.get_int phv Net_hdrs.tcp_dport);
  check Alcotest.int64 "ipv4 now the inner addresses"
    (Netpkt.Ip4.to_int64 inner_tuple.Netpkt.Flow.dst)
    (P4ir.Bitval.to_int64 (P4ir.Phv.get phv Net_hdrs.ip_dst))

let test_decap_matches_reference_bytes () =
  (* Deparse after decap = the layered reference model's stripping. *)
  let nf_inst = nf () in
  let pkt = encapsulated_pkt () in
  let phv = P4ir.Phv.create [] in
  let frame = Netpkt.Pkt.encode pkt in
  let consumed =
    Result.get_ok (P4ir.Parser_graph.parse nf_inst.Nf.parser frame phv)
  in
  Asic.Stdmeta.attach phv;
  run_nf nf_inst phv;
  let payload = Bytes.sub frame consumed (Bytes.length frame - consumed) in
  let out =
    P4ir.Parser_graph.deparse ~order:Net_hdrs.deparse_order phv ~payload
  in
  let expected = Netpkt.Pkt.encode (Nflib.Vxlan_gw.reference_decap pkt) in
  check Alcotest.bytes "byte-identical to the reference strip" expected out

(* --- encap --- *)

let plain_pkt ~dst =
  Netpkt.Pkt.Eth (Netpkt.Eth.make ~dst:(mac "02:00:00:00:00:02") Netpkt.Eth.ethertype_sfc)
  :: Netpkt.Pkt.Sfc_raw (Sfc_header.encode sfc_hdr)
  :: List.tl
       (Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
          ~dst_mac:(mac "02:00:00:00:00:02")
          { inner_tuple with Netpkt.Flow.dst })

let test_encap_builds_tunnel () =
  let nf_inst = nf () in
  let phv = parse_with nf_inst (plain_pkt ~dst:(ip "10.8.9.9")) in
  run_nf nf_inst phv;
  check Alcotest.bool "vxlan pushed" true (P4ir.Phv.is_valid phv "vxlan");
  check Alcotest.int "vni" 8001 (P4ir.Phv.get_int phv (P4ir.Fieldref.v "vxlan" "vni"));
  check Alcotest.int64 "outer dst = remote vtep"
    (Netpkt.Ip4.to_int64 (ip "192.0.2.20"))
    (P4ir.Bitval.to_int64 (P4ir.Phv.get phv Net_hdrs.ip_dst));
  check Alcotest.bool "outer udp is the tunnel" true (P4ir.Phv.is_valid phv "udp");
  check Alcotest.int "tunnel port" 4789 (P4ir.Phv.get_int phv Net_hdrs.udp_dport);
  check Alcotest.bool "inner tcp kept" true (P4ir.Phv.is_valid phv "inner_tcp");
  check Alcotest.bool "outer tcp gone" false (P4ir.Phv.is_valid phv "tcp");
  check Alcotest.int64 "inner dst preserved"
    (Netpkt.Ip4.to_int64 (ip "10.8.9.9"))
    (P4ir.Bitval.to_int64
       (P4ir.Phv.get phv (P4ir.Fieldref.v "inner_ipv4" "dst_addr")))

let test_encap_misses_other_traffic () =
  let nf_inst = nf () in
  let phv = parse_with nf_inst (plain_pkt ~dst:(ip "10.7.1.1")) in
  run_nf nf_inst phv;
  check Alcotest.bool "untunneled traffic untouched" false
    (P4ir.Phv.is_valid phv "vxlan")

let test_encap_decap_roundtrip () =
  (* Encapsulate, deparse, re-parse, decapsulate: the 5-tuple survives. *)
  let nf_inst = nf () in
  let phv = parse_with nf_inst (plain_pkt ~dst:(ip "10.8.9.9")) in
  run_nf nf_inst phv;
  let out = P4ir.Parser_graph.deparse ~order:Net_hdrs.deparse_order phv ~payload:Bytes.empty in
  let nf2 = nf () in
  let phv2 = P4ir.Phv.create [] in
  (match P4ir.Parser_graph.parse nf2.Nf.parser out phv2 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Asic.Stdmeta.attach phv2;
  run_nf nf2 phv2;
  check Alcotest.int64 "dst restored"
    (Netpkt.Ip4.to_int64 (ip "10.8.9.9"))
    (P4ir.Bitval.to_int64 (P4ir.Phv.get phv2 Net_hdrs.ip_dst));
  check Alcotest.int "sport restored" 33333
    (P4ir.Phv.get_int phv2 Net_hdrs.tcp_sport);
  check Alcotest.bool "no overlay left" false (P4ir.Phv.is_valid phv2 "vxlan")

(* --- on the chip --- *)

let compile_tunnel_chains () =
  let rules =
    [
      (* Tunnel termination: traffic to the local VTEP. *)
      {
        Nflib.Classifier.dst_prefix = pfx "192.0.2.10/32";
        proto = None;
        path_id = 60;
        tenant = 6;
      };
      (* Tunnel origination: traffic into the tunneled prefix. *)
      {
        Nflib.Classifier.dst_prefix = pfx "10.8.0.0/16";
        proto = None;
        path_id = 61;
        tenant = 6;
      };
    ]
  in
  let registry : Nf.registry =
    [
      ("classifier", Nflib.Classifier.create rules);
      ("vxlan_gw", Nflib.Vxlan_gw.create tunnels);
      ( "router",
        Nflib.Router.create
          [
            {
              Nflib.Router.prefix = pfx "0.0.0.0/0";
              next_hop_mac = mac "02:00:00:00:aa:01";
              src_mac = mac "02:00:00:00:00:fe";
            };
          ] );
    ]
  in
  let chains =
    [
      Chain.make ~path_id:60 ~name:"terminate"
        ~nfs:[ "classifier"; "vxlan_gw"; "router" ]
        ~weight:0.5 ~exit_port:1 ();
      Chain.make ~path_id:61 ~name:"originate"
        ~nfs:[ "classifier"; "vxlan_gw"; "router" ]
        ~weight:0.5 ~exit_port:1 ();
    ]
  in
  Compiler.compile
    (Compiler.default_input ~registry ~chains ~strategy:Placement.Greedy ())

let test_tunnel_termination_on_chip () =
  match compile_tunnel_chains () with
  | Error e -> Alcotest.fail e
  | Ok compiled -> (
      let rt = Runtime.create compiled in
      (* Raw encapsulated frame from the wire (no SFC yet). *)
      let raw =
        List.filter_map
          (function
            | Netpkt.Pkt.Sfc_raw _ -> None
            | Netpkt.Pkt.Eth e when e.Netpkt.Eth.ethertype = Netpkt.Eth.ethertype_sfc ->
                Some (Netpkt.Pkt.Eth { e with Netpkt.Eth.ethertype = Netpkt.Eth.ethertype_ipv4 })
            | l -> Some l)
          (encapsulated_pkt ())
      in
      match
        Ptf.send_expect rt ~in_port:0 raw ~expect:(Ptf.Emitted_on 1)
          ~check:(fun layers ->
            if List.exists (function Netpkt.Pkt.Vxlan _ -> true | _ -> false) layers
            then Error "tunnel not terminated"
            else
              match Netpkt.Pkt.five_tuple_of layers with
              | Some t when Netpkt.Flow.equal_five_tuple t inner_tuple -> Ok ()
              | Some t ->
                  Error
                    (Format.asprintf "wrong inner flow: %a" Netpkt.Flow.pp_five_tuple t)
              | None -> Error "no flow in output")
          ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)

let test_tunnel_origination_on_chip () =
  match compile_tunnel_chains () with
  | Error e -> Alcotest.fail e
  | Ok compiled -> (
      let rt = Runtime.create compiled in
      let pkt =
        Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
          ~dst_mac:(mac "02:00:00:00:00:02")
          { inner_tuple with Netpkt.Flow.dst = ip "10.8.77.1" }
      in
      match
        Ptf.send_expect rt ~in_port:0 pkt ~expect:(Ptf.Emitted_on 1)
          ~check:(fun layers ->
            match
              List.find_map (function Netpkt.Pkt.Vxlan v -> Some v | _ -> None) layers
            with
            | Some v when v.Netpkt.Vxlan.vni = 8001 -> (
                match Netpkt.Pkt.find_ipv4 layers with
                | Some outer when Netpkt.Ip4.equal outer.Netpkt.Ipv4.dst (ip "192.0.2.20")
                  ->
                    Ok ()
                | Some outer ->
                    Error
                      (Printf.sprintf "outer dst %s, expected the remote vtep"
                         (Netpkt.Ip4.to_string outer.Netpkt.Ipv4.dst))
                | None -> Error "no outer ipv4")
            | Some v -> Error (Printf.sprintf "vni %d" v.Netpkt.Vxlan.vni)
            | None -> Error "no vxlan header on the tunnel side")
          ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)

let () =
  Alcotest.run "vxlan"
    [
      ( "parser",
        [
          Alcotest.test_case "overlay offsets" `Quick test_overlay_parse;
          Alcotest.test_case "overlay pre-sfc too" `Quick
            test_overlay_parses_pre_sfc_too;
        ] );
      ( "decap",
        [
          Alcotest.test_case "normalizes" `Quick test_decap_normalizes;
          Alcotest.test_case "matches reference bytes" `Quick
            test_decap_matches_reference_bytes;
        ] );
      ( "encap",
        [
          Alcotest.test_case "builds tunnel" `Quick test_encap_builds_tunnel;
          Alcotest.test_case "misses other traffic" `Quick
            test_encap_misses_other_traffic;
          Alcotest.test_case "roundtrip" `Quick test_encap_decap_roundtrip;
        ] );
      ( "on_chip",
        [
          Alcotest.test_case "termination" `Quick test_tunnel_termination_on_chip;
          Alcotest.test_case "origination" `Quick test_tunnel_origination_on_chip;
        ] );
    ]
