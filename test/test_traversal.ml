(* Traversal tests, including the paper's Fig. 6 example: the naive
   placement of A-B-C-D-E-F costs 3 recirculations, the improved one
   costs 1. *)

open Dejavu_core

let check = Alcotest.check

let spec = Asic.Spec.wedge_100b
let ing p = { Asic.Pipelet.pipeline = p; kind = Asic.Pipelet.Ingress }
let eg p = { Asic.Pipelet.pipeline = p; kind = Asic.Pipelet.Egress }

let chain_af = [ "A"; "B"; "C"; "D"; "E"; "F" ]

(* Fig. 6(a): AB on ingress 0, C on egress 0, D on ingress 1, EF on
   egress 1; traffic exits on a port of egress 0. *)
let fig6a : Layout.t =
  [
    (ing 0, [ Layout.Seq [ "A"; "B" ] ]);
    (eg 0, [ Layout.Seq [ "C" ] ]);
    (ing 1, [ Layout.Seq [ "D" ] ]);
    (eg 1, [ Layout.Seq [ "E"; "F" ] ]);
  ]

(* Fig. 6(b): C and EF exchanged. *)
let fig6b : Layout.t =
  [
    (ing 0, [ Layout.Seq [ "A"; "B" ] ]);
    (eg 1, [ Layout.Seq [ "C" ] ]);
    (ing 1, [ Layout.Seq [ "D" ] ]);
    (eg 0, [ Layout.Seq [ "E"; "F" ] ]);
  ]

let solve layout =
  Traversal.solve spec layout ~entry_pipeline:0 ~exit_port:1 chain_af

let test_fig6a_three_recircs () =
  match solve fig6a with
  | None -> Alcotest.fail "fig6a unroutable"
  | Some path ->
      check Alcotest.int "three recirculations (paper Fig. 6a)" 3
        path.Traversal.recircs;
      check Alcotest.int "no resubmissions" 0 path.Traversal.resubmits

let test_fig6b_one_recirc () =
  match solve fig6b with
  | None -> Alcotest.fail "fig6b unroutable"
  | Some path ->
      check Alcotest.int "one recirculation (paper Fig. 6b)" 1
        path.Traversal.recircs

let test_fig6a_traversal_order () =
  (* Paper: Ing0 -> Eg0 -> Ing0 -> Eg1 -> Ing1 -> Eg1 -> Ing1 -> Eg0. *)
  match solve fig6a with
  | None -> Alcotest.fail "unroutable"
  | Some path ->
      let order =
        List.map
          (function
            | Traversal.Ingress_step { pipeline; _ } -> Printf.sprintf "I%d" pipeline
            | Traversal.Egress_step { pipeline; _ } -> Printf.sprintf "E%d" pipeline)
          path.Traversal.steps
      in
      check
        Alcotest.(list string)
        "pipelet order" [ "I0"; "E0"; "I0"; "E1"; "I1"; "E1"; "I1"; "E0" ] order

(* --- advance semantics --- *)

let test_advance_seq_in_order () =
  let layout = [ Layout.Seq [ "A"; "B"; "C" ] ] in
  check Alcotest.int "consumes the full prefix" 3
    (Traversal.advance layout [ "A"; "B"; "C" ] 0)

let test_advance_seq_out_of_order () =
  let layout = [ Layout.Seq [ "B"; "A" ] ] in
  (* Chain wants A then B, but the pipelet lays them B-then-A: only A is
     reachable in one pass. *)
  check Alcotest.int "stops at layout order violation" 1
    (Traversal.advance layout [ "A"; "B" ] 0)

let test_advance_par_one_per_pass () =
  let layout = [ Layout.Par [ "A"; "B" ] ] in
  check Alcotest.int "one branch per pass" 1 (Traversal.advance layout [ "A"; "B" ] 0);
  check Alcotest.int "second pass takes the other" 2
    (Traversal.advance layout [ "A"; "B" ] 1)

let test_advance_skips_foreign () =
  let layout = [ Layout.Seq [ "A"; "C" ] ] in
  (* B lives elsewhere: the pass stops at B even though C is present. *)
  check Alcotest.int "stops at unplaced NF" 1
    (Traversal.advance layout [ "A"; "B"; "C" ] 0)

let test_advance_mixed_groups () =
  let layout = [ Layout.Seq [ "A" ]; Layout.Par [ "B"; "C" ]; Layout.Seq [ "D" ] ] in
  (* A, then one of the Par group, then D. *)
  check Alcotest.int "seq-par-seq single pass" 3
    (Traversal.advance layout [ "A"; "B"; "D" ] 0);
  check Alcotest.int "par group limits consecutive members" 2
    (Traversal.advance layout [ "A"; "B"; "C"; "D" ] 0)

(* --- solver edge cases --- *)

let test_unplaced_nf_unroutable () =
  let layout = [ (ing 0, [ Layout.Seq [ "A" ] ]) ] in
  check Alcotest.bool "missing NF -> None" true
    (Traversal.solve spec layout ~entry_pipeline:0 ~exit_port:1 [ "A"; "Z" ] = None)

let test_empty_chain_trivial () =
  match Traversal.solve spec [] ~entry_pipeline:0 ~exit_port:1 [] with
  | None -> Alcotest.fail "empty chain should route"
  | Some path ->
      check Alcotest.int "no recircs" 0 path.Traversal.recircs;
      check Alcotest.int "two steps (ingress, emit)" 2
        (List.length path.Traversal.steps)

let test_exit_on_other_pipeline_costs_recirc () =
  (* NF on egress 1, but the chain must exit on pipeline 0: one recirc. *)
  let layout = [ (eg 1, [ Layout.Seq [ "A" ] ]) ] in
  match Traversal.solve spec layout ~entry_pipeline:0 ~exit_port:1 [ "A" ] with
  | None -> Alcotest.fail "unroutable"
  | Some path -> check Alcotest.int "one recirc to come back" 1 path.Traversal.recircs

let test_resubmission_used_for_par_groups () =
  (* A and B in a Par group on ingress 0; exit on pipeline 0. The
     cheapest plan is resubmit (0.9) rather than recirc (1.0). *)
  let layout = [ (ing 0, [ Layout.Par [ "A"; "B" ] ]) ] in
  match Traversal.solve spec layout ~entry_pipeline:0 ~exit_port:1 [ "A"; "B" ] with
  | None -> Alcotest.fail "unroutable"
  | Some path ->
      check Alcotest.int "one resubmission" 1 path.Traversal.resubmits;
      check Alcotest.int "no recirculation" 0 path.Traversal.recircs

let test_cost_weights_chains () =
  let mk_chain name path_id weight =
    Chain.make ~path_id ~name ~nfs:[ "A" ] ~weight ~exit_port:1 ()
  in
  (* A on egress 1 forces one recirc for every chain. *)
  let layout = [ (eg 1, [ Layout.Seq [ "A" ] ]) ] in
  match
    Traversal.cost spec layout ~entry_pipeline:0
      [ mk_chain "x" 1 0.75; mk_chain "y" 2 0.25 ]
  with
  | None -> Alcotest.fail "infeasible"
  | Some c -> check Alcotest.(float 1e-9) "weighted sum" 1.0 c

(* --- brute-force optimality --- *)

(* Enumerate every simple traversal by DFS (bounded depth) and confirm
   Dijkstra's answer is the minimum cost, on random small layouts. *)
let brute_force_best layout chain ~exit_pipe =
  let n = spec.Asic.Spec.n_pipelines in
  let k = List.length chain in
  let layout_of_loc = function
    | `I p -> Layout.layout_of layout (ing p)
    | `E p -> Layout.layout_of layout (eg p)
  in
  let best = ref None in
  let update c = match !best with Some b when b <= c -> () | _ -> best := Some c in
  let rec dfs loc idx cost depth =
    if depth > 12 then ()
    else
      let idx' = Traversal.advance (layout_of_loc loc) chain idx in
      match loc with
      | `I p ->
          for q = 0 to n - 1 do
            dfs (`E q) idx' cost (depth + 1)
          done;
          if Traversal.advance (layout_of_loc (`I p)) chain idx' > idx' then
            dfs (`I p) idx' (cost + 900) (depth + 1)
      | `E q ->
          if q = exit_pipe && idx' = k then update cost;
          dfs (`I q) idx' (cost + 1000) (depth + 1)
  in
  dfs (`I 0) 0 0 0;
  !best

let prop_solver_is_optimal =
  QCheck.Test.make ~name:"dijkstra = brute force on random layouts" ~count:60
    QCheck.(pair (int_range 1 4) (int_bound 10000))
    (fun (k, seed) ->
      let st = Random.State.make [| seed |] in
      let chain = List.init k (fun i -> Printf.sprintf "N%d" i) in
      (* Random placement over the 4 pipelets, random group kinds. *)
      let pipelets = [ ing 0; eg 0; ing 1; eg 1 ] in
      let assignment =
        List.map (fun nf -> (nf, List.nth pipelets (Random.State.int st 4))) chain
      in
      let layout =
        List.filter_map
          (fun id ->
            let members =
              List.filter_map
                (fun (nf, i) -> if Asic.Pipelet.equal_id i id then Some nf else None)
                assignment
            in
            if members = [] then None
            else if Random.State.bool st then Some (id, [ Layout.Seq members ])
            else Some (id, [ Layout.Par members ]))
          pipelets
      in
      let solver =
        Traversal.solve spec layout ~entry_pipeline:0 ~exit_port:1 chain
      in
      let brute = brute_force_best layout chain ~exit_pipe:0 in
      match (solver, brute) with
      | None, None -> true
      | Some p, Some b ->
          (1000 * p.Traversal.recircs) + (900 * p.Traversal.resubmits) = b
      | Some p, None ->
          (* The DFS depth bound can miss very expensive routes the
             solver still finds; accept only such costly paths. *)
          (1000 * p.Traversal.recircs) + (900 * p.Traversal.resubmits) >= 6000
      | None, Some _ -> false)

(* --- heap solver vs reference oracle --- *)

(* Random single-placement layouts (each NF on at most one pipelet —
   the shape every placement strategy produces); some NFs stay unplaced
   to exercise the unroutable path. *)
let random_layout st pipelets chain =
  let n_choices = List.length pipelets in
  let assignment =
    List.filter_map
      (fun nf ->
        let roll = Random.State.int st (n_choices + 1) in
        if roll = n_choices then None else Some (nf, List.nth pipelets roll))
      chain
  in
  List.filter_map
    (fun id ->
      let members =
        List.filter_map
          (fun (nf, i) -> if Asic.Pipelet.equal_id i id then Some nf else None)
          assignment
      in
      if members = [] then None
      else if Random.State.bool st then Some (id, [ Layout.Seq members ])
      else Some (id, [ Layout.Par members ]))
    pipelets

let prop_fast_matches_reference =
  QCheck.Test.make ~name:"heap solve = reference solve (2 and 4 pipelines)"
    ~count:150
    QCheck.(triple (int_range 0 6) (int_bound 1_000_000) bool)
    (fun (k, seed, big) ->
      let spec = if big then Asic.Spec.tofino_4pipe else spec in
      let st = Random.State.make [| seed |] in
      let chain = List.init k (fun i -> Printf.sprintf "N%d" i) in
      let pipelets =
        List.concat_map
          (fun p -> [ ing p; eg p ])
          (List.init spec.Asic.Spec.n_pipelines (fun p -> p))
      in
      let layout = random_layout st pipelets chain in
      let entry_pipeline = Random.State.int st spec.Asic.Spec.n_pipelines in
      let exit_port = if Random.State.bool st then 1 else 17 in
      let fast = Traversal.solve spec layout ~entry_pipeline ~exit_port chain in
      let oracle =
        Traversal.solve_reference spec layout ~entry_pipeline ~exit_port chain
      in
      match (fast, oracle) with
      | None, None -> true
      | Some f, Some o ->
          f.Traversal.recircs = o.Traversal.recircs
          && f.Traversal.resubmits = o.Traversal.resubmits
      | Some _, None | None, Some _ -> false)

let prop_cached_cost_coherent =
  QCheck.Test.make ~name:"cost_cached = cost, second pass all hits" ~count:60
    QCheck.(pair (int_range 1 5) (int_bound 1_000_000))
    (fun (k, seed) ->
      let st = Random.State.make [| seed |] in
      let nfs = List.init k (fun i -> Printf.sprintf "N%d" i) in
      let layout = random_layout st [ ing 0; eg 0; ing 1; eg 1 ] nfs in
      let chains =
        [
          Chain.make ~path_id:1 ~name:"fwd" ~nfs ~weight:0.7 ~exit_port:1 ();
          Chain.make ~path_id:2 ~name:"rev" ~nfs:(List.rev nfs) ~weight:0.3
            ~exit_port:17 ();
        ]
      in
      let cache = Traversal.cache_create () in
      let plain = Traversal.cost spec layout ~entry_pipeline:0 chains in
      let c1 = Traversal.cost_cached cache spec layout ~entry_pipeline:0 chains in
      let c2 = Traversal.cost_cached cache spec layout ~entry_pipeline:0 chains in
      let hits, misses = Traversal.cache_stats cache in
      let same a b =
        match (a, b) with
        | None, None -> true
        | Some x, Some y -> abs_float (x -. y) < 1e-9
        | _ -> false
      in
      (* An unroutable first chain short-circuits the fold, so each pass
         touches 1 or 2 chains — but hit/miss counts must mirror. *)
      same plain c1 && same plain c2 && hits = misses && hits >= 1 && hits <= 2)

(* --- coordinate index coherence --- *)

(* Layout.index, Layout.coord and the location/position pair all go
   through one scan; random layouts must agree across all of them. *)
let prop_index_matches_lookups =
  QCheck.Test.make ~name:"Layout.index = coord = location/position" ~count:100
    QCheck.(pair (int_range 0 8) (int_bound 1_000_000))
    (fun (k, seed) ->
      let st = Random.State.make [| seed |] in
      let nfs = List.init k (fun i -> Printf.sprintf "N%d" i) in
      let layout = random_layout st [ ing 0; eg 0; ing 1; eg 1 ] nfs in
      let idx = Layout.index layout in
      List.for_all
        (fun nf ->
          let via_index = Hashtbl.find_opt idx nf in
          let via_coord = Layout.coord layout nf in
          let via_pair =
            match Layout.location layout nf with
            | None -> None
            | Some id -> (
                let pl = Layout.layout_of layout id in
                match Layout.position pl nf with
                | None -> None
                | Some (g, s) ->
                    Some
                      {
                        Layout.pipelet = id;
                        group = g;
                        slot = s;
                        kind = Layout.group_kind pl g;
                      })
          in
          via_index = via_coord && via_coord = via_pair
          && (via_index <> None || not (List.mem nf (Layout.all_nfs layout))))
        nfs)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "traversal"
    [
      ( "fig6",
        [
          Alcotest.test_case "naive = 3 recircs" `Quick test_fig6a_three_recircs;
          Alcotest.test_case "optimized = 1 recirc" `Quick test_fig6b_one_recirc;
          Alcotest.test_case "traversal order" `Quick test_fig6a_traversal_order;
        ] );
      ( "advance",
        [
          Alcotest.test_case "seq in order" `Quick test_advance_seq_in_order;
          Alcotest.test_case "seq out of order" `Quick test_advance_seq_out_of_order;
          Alcotest.test_case "par one per pass" `Quick test_advance_par_one_per_pass;
          Alcotest.test_case "skips foreign" `Quick test_advance_skips_foreign;
          Alcotest.test_case "mixed groups" `Quick test_advance_mixed_groups;
        ] );
      ( "solver",
        [
          Alcotest.test_case "unplaced NF" `Quick test_unplaced_nf_unroutable;
          Alcotest.test_case "empty chain" `Quick test_empty_chain_trivial;
          Alcotest.test_case "exit elsewhere" `Quick
            test_exit_on_other_pipeline_costs_recirc;
          Alcotest.test_case "par needs resubmit" `Quick
            test_resubmission_used_for_par_groups;
          Alcotest.test_case "weighted cost" `Quick test_cost_weights_chains;
          qtest prop_solver_is_optimal;
        ] );
      ( "oracle",
        [ qtest prop_fast_matches_reference; qtest prop_cached_cost_coherent ] );
      ("coords", [ qtest prop_index_matches_lookups ]);
    ]
