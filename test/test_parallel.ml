(* The sharded data plane: process_batch_parallel must be
   indistinguishable from sequential process_batch — digest-identical
   at domains:1, and per-packet-equivalent for any shard count on
   workloads that respect flow affinity (including stateful NFs: the
   LB session table, static NAT, the per-tenant rate limiter and the
   per-source DDoS sketch). *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let ip = Netpkt.Ip4.of_string_exn
let pfx = Netpkt.Ip4.prefix_of_string_exn

(* A deployment that exercises every kind of runtime state: the red
   chain (LB punts to the CPU and installs per-flow sessions), the
   protected chain (count-min sketch per source + per-tenant packet
   budget), and a NAT chain (static per-source rewrite). *)
let classifier_rules =
  [
    { Nflib.Classifier.dst_prefix = pfx "10.0.1.0/24"; proto = None; path_id = 10; tenant = 1 };
    { Nflib.Classifier.dst_prefix = pfx "10.0.5.0/24"; proto = None; path_id = 50; tenant = 5 };
    { Nflib.Classifier.dst_prefix = pfx "10.0.6.0/24"; proto = None; path_id = 60; tenant = 6 };
  ]

let chains =
  [
    Chain.make ~path_id:10 ~name:"red"
      ~nfs:[ "classifier"; "fw"; "vgw"; "lb"; "router" ]
      ~weight:0.4 ~exit_port:1 ();
    Chain.make ~path_id:50 ~name:"protected"
      ~nfs:[ "classifier"; "ddos_sketch"; "rate_limiter"; "router" ]
      ~weight:0.3 ~exit_port:1 ();
    Chain.make ~path_id:60 ~name:"natted"
      ~nfs:[ "classifier"; "nat"; "router" ]
      ~weight:0.3 ~exit_port:1 ();
  ]

let registry () =
  ("classifier", Nflib.Classifier.create classifier_rules)
  :: List.remove_assoc "classifier" (Nflib.Catalog.registry ())

let compile () =
  Result.get_ok
    (Compiler.compile
       (Compiler.default_input ~registry:(registry ()) ~chains
          ~strategy:Placement.Greedy ()))

let runtime ?engine () =
  let compiled = compile () in
  let rt = Runtime.create ?engine compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  rt

let tcp ~src ~dst ~src_port ~dst_port =
  Netpkt.Pkt.encode
    (Netpkt.Pkt.tcp_flow
       ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
       ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
       {
         Netpkt.Flow.src;
         dst;
         proto = Netpkt.Ipv4.proto_tcp;
         src_port;
         dst_port;
       })

(* Random workloads under the flow-affinity contract: cross-flow state
   must stay within one flow. The rate-limited tenant (5) and the
   sketch-counted sources therefore each send exactly one 5-tuple flow;
   LB sessions and NAT bindings are per-flow / per-source lookups and
   can spread over many flows freely. *)
let random_workload st n =
  List.init n (fun _ ->
      let frame =
        match Random.State.int st 5 with
        | 0 ->
            (* red: per-flow LB sessions, any number of flows *)
            tcp
              ~src:(Netpkt.Ip4.of_octets 203 0 113 (1 + Random.State.int st 40))
              ~dst:(ip "10.0.1.10")
              ~src_port:(2000 + Random.State.int st 50)
              ~dst_port:80
        | 1 ->
            (* protected: tenant 5 is rate-limited as a unit, so all its
               traffic is one flow (budget 8: later packets drop) *)
            tcp ~src:(ip "203.0.113.50") ~dst:(ip "10.0.5.7") ~src_port:1234
              ~dst_port:80
        | 2 ->
            (* natted: static per-source rewrite *)
            tcp
              ~src:
                (if Random.State.bool st then ip "192.168.0.10"
                 else ip "192.168.0.11")
              ~dst:(Netpkt.Ip4.of_octets 10 0 6 (1 + Random.State.int st 30))
              ~src_port:(3000 + Random.State.int st 100)
              ~dst_port:443
        | 3 ->
            (* unclassified: classifier default punts to the CPU *)
            tcp ~src:(ip "198.18.0.9") ~dst:(ip "192.0.2.77")
              ~src_port:(4000 + Random.State.int st 100)
              ~dst_port:80
        | _ ->
            (* unparseable frame: shards by in_port, errors either way *)
            Bytes.make (1 + Random.State.int st 8) '\x2a'
      in
      (Random.State.int st 4, frame))

let signature_of = function
  | Error e -> "error:" ^ e
  | Ok (o : Runtime.outcome) -> (
      match o.Runtime.verdict with
      | Asic.Chip.Emitted { port; frame } ->
          Printf.sprintf "emitted:%d:%s" port
            (Digest.to_hex (Digest.bytes frame))
      | Asic.Chip.Dropped -> "dropped"
      | Asic.Chip.To_cpu b -> "to_cpu:" ^ Digest.to_hex (Digest.bytes b))

let run_with_signatures ~f workload =
  let n = List.length workload in
  let sigs = Array.make n "" in
  let stats = f (fun i r -> sigs.(i) <- signature_of r) workload in
  (stats, sigs)

(* domains:1 takes the sequential path outright: every field of the
   batch — including the order-sensitive digest and float latency —
   is identical. *)
let test_domains1_digest_identical () =
  let st = Random.State.make [| 7 |] in
  let workload = random_workload st 64 in
  let seq = Runtime.process_batch (runtime ()) workload in
  let par =
    Runtime.process_batch_parallel ~domains:1 (runtime ()) workload
  in
  check Alcotest.bool "identical batch_stats (digest included)" true (seq = par)

(* Integer totals and per-packet outcomes for k ∈ {1, 2, 4}: latency is
   a float sum and therefore order-dependent across shards, so the
   equivalence contract covers everything else. *)
let totals_match (a : Runtime.batch_stats) (b : Runtime.batch_stats) =
  a.Runtime.packets = b.Runtime.packets
  && a.Runtime.emitted = b.Runtime.emitted
  && a.Runtime.dropped = b.Runtime.dropped
  && a.Runtime.to_cpu = b.Runtime.to_cpu
  && a.Runtime.errors = b.Runtime.errors
  && a.Runtime.counters.Runtime.Counters.cpu_round_trips
     = b.Runtime.counters.Runtime.Counters.cpu_round_trips
  && a.Runtime.counters.Runtime.Counters.recircs
     = b.Runtime.counters.Runtime.Counters.recircs
  && a.Runtime.counters.Runtime.Counters.resubmits
     = b.Runtime.counters.Runtime.Counters.resubmits

let prop_parallel_equals_sequential =
  QCheck.Test.make ~name:"parallel = sequential (k in {1,2,4})" ~count:12
    QCheck.(pair small_nat (int_range 20 80))
    (fun (seed, n) ->
      let st = Random.State.make [| 1 + seed |] in
      let workload = random_workload st n in
      let seq, oracle =
        run_with_signatures ~f:(fun each w -> Runtime.process_batch ~each (runtime ()) w) workload
      in
      List.for_all
        (fun domains ->
          let par, sigs =
            run_with_signatures
              ~f:(fun each w ->
                Runtime.process_batch_parallel ~each ~domains (runtime ()) w)
              workload
          in
          totals_match seq par && sigs = oracle)
        [ 1; 2; 4 ])

(* A targeted stateful check, not random: exactly 12 tenant-5 packets
   interleaved with red traffic. The budget is 8, so packets 9..12 of
   that flow drop — sequentially and on every shard count. *)
let test_rate_limiter_budget_across_shards () =
  let red i =
    (i mod 4, tcp
       ~src:(Netpkt.Ip4.of_octets 203 0 113 (10 + i))
       ~dst:(ip "10.0.1.10") ~src_port:(6000 + i) ~dst_port:80)
  in
  let protected i =
    (i mod 4, tcp ~src:(ip "203.0.113.50") ~dst:(ip "10.0.5.7") ~src_port:1234
       ~dst_port:(* one flow: *) 80)
  in
  let workload =
    List.concat (List.init 12 (fun i -> [ red i; protected i ]))
  in
  let seq, oracle =
    run_with_signatures ~f:(fun each w -> Runtime.process_batch ~each (runtime ()) w) workload
  in
  check Alcotest.int "budget of 8: four tenant-5 packets drop" 4
    seq.Runtime.dropped;
  List.iter
    (fun domains ->
      let par, sigs =
        run_with_signatures
          ~f:(fun each w ->
            Runtime.process_batch_parallel ~each ~domains (runtime ()) w)
          workload
      in
      check Alcotest.bool
        (Printf.sprintf "domains:%d totals match" domains)
        true (totals_match seq par);
      check Alcotest.bool
        (Printf.sprintf "domains:%d per-packet outcomes match" domains)
        true
        (sigs = oracle))
    [ 2; 4 ]

(* Telemetry merge: per-shard registries fold back into the runtime's
   registry, so counters after a parallel batch equal the sequential
   run's. *)
let test_telemetry_merges_across_shards () =
  let st = Random.State.make [| 42 |] in
  let workload = random_workload st 60 in
  let engine =
    {
      Runtime.Engine.default with
      Runtime.Engine.telemetry = Telemetry.Level.Counters;
    }
  in
  let counters rt =
    match Runtime.telemetry rt with
    | None -> Alcotest.fail "telemetry not attached"
    | Some o ->
        let reg = Observe.registry o in
        List.map
          (fun name -> (name, !(Telemetry.Registry.counter reg name)))
          [
            "verdict.emitted"; "verdict.dropped"; "verdict.to_cpu";
            "verdict.error"; "path.cpu_round_trips"; "path.recircs";
            "path.resubmits";
          ]
  in
  let seq_rt = runtime ~engine () in
  let seq = Runtime.process_batch seq_rt workload in
  let par_rt = runtime ~engine () in
  let par = Runtime.process_batch_parallel ~domains:3 par_rt workload in
  check Alcotest.bool "stats totals agree" true (totals_match seq par);
  check
    Alcotest.(list (pair string int))
    "merged registry counters equal sequential" (counters seq_rt)
    (counters par_rt);
  (* The emitted counter really reflects the batch, not a default. *)
  check Alcotest.bool "emitted counter is live" true
    (List.assoc "verdict.emitted" (counters par_rt) = par.Runtime.emitted)

(* Sharding is pure flow affinity: every packet of a 5-tuple flow lands
   on the same shard, whatever the in_port. *)
let test_shard_affinity () =
  let frame = tcp ~src:(ip "203.0.113.1") ~dst:(ip "10.0.1.10") ~src_port:7 ~dst_port:80 in
  let shards =
    List.init 16 (fun in_port ->
        Runtime.shard_of_packet ~domains:4 in_port frame)
  in
  check Alcotest.int "one shard for the flow" 1
    (List.length (List.sort_uniq Int.compare shards));
  (* Unparseable frames fall back to in_port. *)
  let junk = Bytes.make 3 '\x00' in
  check Alcotest.bool "junk shards by in_port" true
    (Runtime.shard_of_packet ~domains:4 0 junk
    <> Runtime.shard_of_packet ~domains:4 1 junk)

(* Direction symmetry: a NAT'd or load-balanced reply (B -> A) must land
   on the shard that processed the forward flow (A -> B) and holds its
   bindings. Pinned by QCheck over random 5-tuples and shard counts —
   the old directed hash failed this for almost every tuple. *)
let prop_shard_direction_symmetric =
  QCheck.Test.make ~name:"shard(A->B) = shard(B->A) for any 5-tuple"
    ~count:200
    QCheck.(
      pair
        (pair (pair small_nat small_nat) (pair small_nat small_nat))
        (pair (int_range 2 8) (pair small_nat small_nat)))
    (fun (((a, b), (c, d)), (domains, (sp, dp))) ->
      let src = Netpkt.Ip4.of_octets (a land 255) (b land 255) (c land 255) 1
      and dst = Netpkt.Ip4.of_octets (d land 255) (a land 255) (b land 255) 2 in
      let fwd = tcp ~src ~dst ~src_port:(sp land 0xffff) ~dst_port:(dp land 0xffff) in
      let rev = tcp ~src:dst ~dst:src ~src_port:(dp land 0xffff) ~dst_port:(sp land 0xffff) in
      Runtime.shard_of_packet ~domains 0 fwd
      = Runtime.shard_of_packet ~domains 3 rev)

(* End-to-end bidirectional NAT-style check: forward flows through the
   natted chain, then "replies" with the endpoints swapped — both
   directions of each connection must hash to one shard, so parallel
   outcomes match the sequential oracle packet-for-packet. *)
let test_bidirectional_flows_share_a_shard () =
  let conn i =
    let src = Netpkt.Ip4.of_octets 192 168 0 (10 + (i mod 2))
    and dst = Netpkt.Ip4.of_octets 10 0 6 (1 + (i mod 30)) in
    let sp = 3000 + i and dp = 443 in
    let fwd = tcp ~src ~dst ~src_port:sp ~dst_port:dp in
    let rev = tcp ~src:dst ~dst:src ~src_port:dp ~dst_port:sp in
    List.iter
      (fun domains ->
        check Alcotest.int
          (Printf.sprintf "conn %d shares a shard at domains:%d" i domains)
          (Runtime.shard_of_packet ~domains 0 fwd)
          (Runtime.shard_of_packet ~domains 1 rev))
      [ 2; 3; 4 ];
    [ (i mod 4, fwd); ((i + 1) mod 4, rev) ]
  in
  let workload = List.concat (List.init 24 conn) in
  let seq, oracle =
    run_with_signatures
      ~f:(fun each w -> Runtime.process_batch ~each (runtime ()) w)
      workload
  in
  List.iter
    (fun domains ->
      let par, sigs =
        run_with_signatures
          ~f:(fun each w ->
            Runtime.process_batch_parallel ~each ~domains (runtime ()) w)
          workload
      in
      check Alcotest.bool
        (Printf.sprintf "domains:%d totals match" domains)
        true (totals_match seq par);
      check Alcotest.bool
        (Printf.sprintf "domains:%d per-packet outcomes match" domains)
        true (sigs = oracle))
    [ 2; 4 ]

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        [
          Alcotest.test_case "domains:1 digest-identical" `Quick
            test_domains1_digest_identical;
          qtest prop_parallel_equals_sequential;
          Alcotest.test_case "rate-limiter budget across shards" `Quick
            test_rate_limiter_budget_across_shards;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "registries merge" `Quick
            test_telemetry_merges_across_shards;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "flow affinity" `Quick test_shard_affinity;
          qtest prop_shard_direction_symmetric;
          Alcotest.test_case "bidirectional flows share a shard" `Quick
            test_bidirectional_flows_share_a_shard;
        ] );
    ]
