(* The live control plane: typed ops and their error paths, the
   producer/consumer update queue, the runtime front door
   (apply_ops/sync, drain at batch boundaries), flow-cache invalidation
   scoped to ops' touched tables, and the live-vs-cold digest
   convergence property for sharded engines. *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let ip = Netpkt.Ip4.of_string_exn
let pfx = Netpkt.Ip4.prefix_of_string_exn
let mac = Netpkt.Mac.of_string_exn
let routes = Nflib.Catalog.routes_table_name

let compile () =
  Result.get_ok
    (Compiler.compile
       (Nflib.Catalog.edge_cloud_input ~strategy:Placement.Greedy ()))

let engine ~domains ~cache =
  {
    Runtime.Engine.default with
    Runtime.Engine.domains;
    cache =
      (if cache then Runtime.Engine.Emc { capacity = 4096 }
       else Runtime.Engine.Off);
  }

let runtime ?(domains = 1) ?(cache = false) () =
  let compiled = compile () in
  let rt = Runtime.create ~engine:(engine ~domains ~cache) compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  rt

let route ?(nh = "02:00:0a:00:00:01") prefix =
  {
    Nflib.Router.prefix = pfx prefix;
    next_hop_mac = mac nh;
    src_mac = mac "02:00:00:00:00:fe";
  }

let route_op ?nh prefix f =
  Ctrl.Table (routes, f (Nflib.Router.route_entry (route ?nh prefix)))

let tcp ~src ~dst ~src_port ~dst_port =
  Netpkt.Pkt.encode
    (Netpkt.Pkt.tcp_flow
       ~src_mac:(mac "02:00:00:00:00:01")
       ~dst_mac:(mac "02:00:00:00:00:02")
       {
         Netpkt.Flow.src = ip src;
         dst = ip dst;
         proto = Netpkt.Ipv4.proto_tcp;
         src_port;
         dst_port;
       })

(* Green (classifier-router) and orange (classifier-vgw-router) flows
   only: neither punts to the CPU, so traffic mutates no control-plane
   state and live-vs-cold digests stay comparable even on the
   sequential engine. *)
let quiet_traffic i n =
  List.init n (fun j ->
      let k = (i * n) + j in
      let frame =
        if k mod 2 = 0 then
          tcp ~src:"203.0.113.7"
            ~dst:(Printf.sprintf "10.0.3.%d" (1 + (k mod 200)))
            ~src_port:(40000 + (k mod 97)) ~dst_port:443
        else
          tcp ~src:"203.0.113.8"
            ~dst:(Printf.sprintf "10.0.2.%d" (1 + (k mod 200)))
            ~src_port:(41000 + (k mod 89)) ~dst_port:80
      in
      (0, frame))

let table_size rt name =
  match Asic.Chip.find_table (Runtime.chip rt) name with
  | Some t -> P4ir.Table.size t
  | None -> Alcotest.fail ("table not found: " ^ name)

(* --- typed ops through the front door --- *)

let test_apply_ops_add_mod_del () =
  let rt = runtime () in
  let n0 = table_size rt routes in
  (match
     Runtime.apply_ops rt [ route_op "172.20.5.0/24" (fun e -> Ctrl.Add e) ]
   with
  | Ok n -> check Alcotest.int "one op applied" 1 n
  | Error e -> Alcotest.fail e);
  check Alcotest.int "entry installed" (n0 + 1) (table_size rt routes);
  (* Mod rebinds in place: size unchanged, new args visible. *)
  (match
     Runtime.apply_ops rt
       [ route_op ~nh:"02:00:00:00:99:99" "172.20.5.0/24" (fun e -> Ctrl.Mod e) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.int "mod keeps size" (n0 + 1) (table_size rt routes);
  (match
     Runtime.apply_ops rt [ route_op "172.20.5.0/24" (fun e -> Ctrl.Del e) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.int "entry removed" n0 (table_size rt routes);
  check Alcotest.bool "double delete errors" true
    (Result.is_error
       (Runtime.apply_ops rt [ route_op "172.20.5.0/24" (fun e -> Ctrl.Del e) ]))

let test_apply_errors () =
  let rt = runtime () in
  check Alcotest.bool "unknown table errors" true
    (Result.is_error
       (Runtime.apply_ops rt [ Ctrl.Table ("no_such_table", Ctrl.Clear) ]));
  check Alcotest.bool "unknown register errors" true
    (Result.is_error (Runtime.apply_ops rt [ Ctrl.Reg_reset "no_such_reg" ]));
  (* apply_all stops at the first failure and reports its position;
     the prefix stays applied (P4Runtime-style partial accept). *)
  let n0 = table_size rt routes in
  match
    Runtime.apply_ops rt
      [
        route_op "172.21.0.0/24" (fun e -> Ctrl.Add e);
        route_op "172.22.0.0/24" (fun e -> Ctrl.Del e);
        route_op "172.23.0.0/24" (fun e -> Ctrl.Add e);
      ]
  with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e ->
      check Alcotest.bool "position prefixed" true
        (String.length e >= 5 && String.sub e 0 5 = "op 1:");
      check Alcotest.int "prefix applied, suffix not" (n0 + 1)
        (table_size rt routes)

let test_reg_reset () =
  (* The protected deployment carries real register state (the rate
     limiter's per-tenant counters); traffic fills it, Reg_reset clears
     it. *)
  let compiled =
    Result.get_ok
      (Compiler.compile
         (Compiler.default_input
            ~registry:(Nflib.Catalog.registry ())
            ~chains:(Nflib.Catalog.protected_chains ~exit_port:1)
            ~strategy:Placement.Greedy ()))
  in
  let rt = Runtime.create compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  let pkt =
    tcp ~src:"203.0.113.7" ~dst:"10.0.5.9" ~src_port:40000 ~dst_port:443
  in
  ignore (Runtime.process_batch rt [ (0, pkt); (0, pkt) ]);
  check Alcotest.bool "counter filled by traffic" true
    (Nflib.Rate_limiter.count_of compiled ~tenant:5 > 0);
  (match Runtime.apply_ops rt [ Ctrl.Reg_reset "rl_counters" ] with
  | Ok n -> check Alcotest.int "one op" 1 n
  | Error e -> Alcotest.fail e);
  check Alcotest.int "counter cleared" 0
    (Nflib.Rate_limiter.count_of compiled ~tenant:5)

(* --- the update queue --- *)

let test_queue_order_and_results () =
  let q = Ctrl.queue () in
  let a = Ctrl.submit q [ route_op "172.20.0.0/24" (fun e -> Ctrl.Add e) ] in
  let b = Ctrl.submit q [ Ctrl.Table (routes, Ctrl.Clear) ] in
  check Alcotest.bool "distinct ids" true (a <> b);
  check Alcotest.int "two pending" 2 (Ctrl.pending q);
  (match Ctrl.drain q with
  | [ x; y ] ->
      check Alcotest.int "submission order" a x.Ctrl.id;
      check Alcotest.int "submission order" b y.Ctrl.id;
      check Alcotest.int "batch carries its ops" 1 (List.length x.Ctrl.ops)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 batches, got %d" (List.length l)));
  check Alcotest.int "drain empties" 0 (Ctrl.pending q);
  check Alcotest.bool "drain again is empty" true (Ctrl.drain q = []);
  Ctrl.note q a (Ok 1);
  Ctrl.note q b (Error "boom");
  match Ctrl.results q with
  | (ib, Error "boom") :: (ia, Ok 1) :: _ ->
      check Alcotest.int "most recent first" b ib;
      check Alcotest.int "then earlier" a ia
  | _ -> Alcotest.fail "unexpected results log"

let test_runtime_drains_at_batch_boundary () =
  let rt = runtime () in
  let q = Runtime.control rt in
  let n0 = table_size rt routes in
  let good = Ctrl.submit q [ route_op "172.24.0.0/24" (fun e -> Ctrl.Add e) ] in
  let bad = Ctrl.submit q [ route_op "172.25.0.0/24" (fun e -> Ctrl.Del e) ] in
  let also =
    Ctrl.submit q [ route_op "172.26.0.0/24" (fun e -> Ctrl.Add e) ]
  in
  (* The data plane drains pending batches before the packet batch; a
     failed batch is recorded and does not block later batches. *)
  ignore (Runtime.process_batch rt (quiet_traffic 0 4));
  check Alcotest.int "queue drained" 0 (Ctrl.pending q);
  check Alcotest.int "good batches applied" (n0 + 2) (table_size rt routes);
  let outcome id =
    match List.assoc_opt id (Ctrl.results q) with
    | Some r -> r
    | None -> Alcotest.fail "missing batch outcome"
  in
  check Alcotest.bool "good recorded" true (outcome good = Ok 1);
  check Alcotest.bool "bad recorded" true (Result.is_error (outcome bad));
  check Alcotest.bool "later batch unaffected" true (outcome also = Ok 1);
  (* sync with nothing pending is a no-op. *)
  check Alcotest.bool "idle sync" true (Runtime.sync rt = (0, []))

(* --- flow-cache invalidation by ops --- *)

let test_del_invalidates_cached_flow () =
  let rt = runtime ~cache:true () in
  let pkt =
    tcp ~src:"203.0.113.7" ~dst:"10.0.3.77" ~src_port:40001 ~dst_port:443
  in
  let out rt =
    match Runtime.process rt ~in_port:0 pkt with
    | Ok { Runtime.verdict = Asic.Chip.Emitted { frame; _ }; _ } -> frame
    | Ok _ -> Alcotest.fail "expected an emitted frame"
    | Error e -> Alcotest.fail e
  in
  let stats () = Flow_cache.stats (Option.get (Runtime.flow_cache rt)) in
  let before = out rt in
  check Alcotest.bytes "cached replay is byte-identical" before (out rt);
  check Alcotest.bool "second packet hit the cache" true
    ((stats ()).Flow_cache.hits >= 1);
  (* Delete the route the cached flow matched (10.0.3.x rides
     10.0.0.0/16): the memoized verdict must die with it. *)
  (match
     Runtime.apply_ops rt [ route_op "10.0.0.0/16" (fun e -> Ctrl.Del e) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let after_del = out rt in
  check Alcotest.bool "stale verdict not replayed" true
    (not (Bytes.equal before after_del));
  check Alcotest.bool "cache recorded the epoch invalidation" true
    ((stats ()).Flow_cache.invalidations >= 1);
  (* Oracle: a cold runtime that never had the route behaves identically. *)
  let oracle = runtime () in
  (match
     Runtime.apply_ops oracle [ route_op "10.0.0.0/16" (fun e -> Ctrl.Del e) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.bytes "matches the cold-deleted oracle" (out oracle) after_del;
  (* Mod invalidates just like Del: rebind the default route's next hop
     and the (re-cached) flow must pick it up. *)
  (match
     Runtime.apply_ops rt
       [ route_op ~nh:"02:00:00:00:77:77" "0.0.0.0/0" (fun e -> Ctrl.Mod e) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let after_mod = out rt in
  check Alcotest.bool "mod invalidated the re-cached verdict" true
    (not (Bytes.equal after_del after_mod))

(* --- live = cold convergence --- *)

let chunk n l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

(* A random churn trace applied live — interleaved with traffic, flow
   cache on, k ∈ {1, 2, 4} domains — must leave the chip in exactly the
   state a cold runtime reaches applying the same trace with no traffic
   in flight. The trace gets a mid-stream Del (and later re-Add) of the
   route the cached green flows match, so the invalidation path runs
   while the flows are hot. *)
let prop_live_equals_cold =
  QCheck.Test.make ~name:"op trace applied live = applied cold (k in {1,2,4})"
    ~count:3 QCheck.small_nat (fun seed ->
      let base = Nflib.Catalog.fib_churn_trace ~seed ~n:120 () in
      let third = List.length base / 3 in
      let trace =
        List.concat
          (List.mapi
             (fun i ops ->
               if i = 0 then ops @ [ route_op "10.0.0.0/16" (fun e -> Ctrl.Del e) ]
               else if i = 1 then
                 ops @ [ route_op "10.0.0.0/16" (fun e -> Ctrl.Add e) ]
               else ops)
             (chunk third base))
      in
      let cold = runtime () in
      (match Runtime.apply_ops cold trace with
      | Ok _ -> ()
      | Error e -> failwith e);
      let want = Ctrl.state_digest (Runtime.chip cold) in
      List.for_all
        (fun domains ->
          let rt = runtime ~domains ~cache:true () in
          List.iteri
            (fun i ops ->
              ignore (Ctrl.submit (Runtime.control rt) ops);
              ignore (Runtime.process_batch_parallel rt (quiet_traffic i 8)))
            (chunk 25 trace);
          Int64.equal (Ctrl.state_digest (Runtime.chip rt)) want)
        [ 1; 2; 4 ])

let () =
  Alcotest.run "ctrl"
    [
      ( "ops",
        [
          Alcotest.test_case "add/mod/del through apply_ops" `Quick
            test_apply_ops_add_mod_del;
          Alcotest.test_case "error paths and partial accept" `Quick
            test_apply_errors;
          Alcotest.test_case "register reset" `Quick test_reg_reset;
        ] );
      ( "queue",
        [
          Alcotest.test_case "order, drain, results" `Quick
            test_queue_order_and_results;
          Alcotest.test_case "drained at batch boundary" `Quick
            test_runtime_drains_at_batch_boundary;
        ] );
      ( "cache",
        [
          Alcotest.test_case "del/mod invalidate cached flows" `Quick
            test_del_invalidates_cached_flow;
        ] );
      ("convergence", [ qtest prop_live_equals_cold ]);
    ]
