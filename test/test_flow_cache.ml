(* The exact-match flow cache: differential equivalence against the
   uncached oracle (including stateful NFs and mid-stream table
   updates), epoch invalidation, stateful fallbacks, and LRU eviction
   at tiny capacity. *)

open Dejavu_core

(* The result-API install for tests: a failed install is a test bug. *)
let must_add t e =
  match P4ir.Table.add_entry t e with Ok () -> () | Error m -> Alcotest.fail m

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let ip = Netpkt.Ip4.of_string_exn
let pfx = Netpkt.Ip4.prefix_of_string_exn

(* Same deployment as the parallel suite: every kind of runtime state —
   LB CPU punts + per-flow sessions (red), count-min sketch + packet
   budget (protected), static NAT (natted). *)
let classifier_rules =
  [
    { Nflib.Classifier.dst_prefix = pfx "10.0.1.0/24"; proto = None; path_id = 10; tenant = 1 };
    { Nflib.Classifier.dst_prefix = pfx "10.0.5.0/24"; proto = None; path_id = 50; tenant = 5 };
    { Nflib.Classifier.dst_prefix = pfx "10.0.6.0/24"; proto = None; path_id = 60; tenant = 6 };
  ]

let chains =
  [
    Chain.make ~path_id:10 ~name:"red"
      ~nfs:[ "classifier"; "fw"; "vgw"; "lb"; "router" ]
      ~weight:0.4 ~exit_port:1 ();
    Chain.make ~path_id:50 ~name:"protected"
      ~nfs:[ "classifier"; "ddos_sketch"; "rate_limiter"; "router" ]
      ~weight:0.3 ~exit_port:1 ();
    Chain.make ~path_id:60 ~name:"natted"
      ~nfs:[ "classifier"; "nat"; "router" ]
      ~weight:0.3 ~exit_port:1 ();
  ]

let registry () =
  ("classifier", Nflib.Classifier.create classifier_rules)
  :: List.remove_assoc "classifier" (Nflib.Catalog.registry ())

let runtime ?engine () =
  let compiled =
    Result.get_ok
      (Compiler.compile
         (Compiler.default_input ~registry:(registry ()) ~chains
            ~strategy:Placement.Greedy ()))
  in
  let rt = Runtime.create ?engine compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  rt

let emc capacity =
  {
    Runtime.Engine.default with
    Runtime.Engine.cache = Runtime.Engine.Emc { capacity };
  }

let cached ?(capacity = 256) () = runtime ~engine:(emc capacity) ()

let cache rt = Option.get (Runtime.flow_cache rt)

let tcp ~src ~dst ~src_port ~dst_port =
  Netpkt.Pkt.encode
    (Netpkt.Pkt.tcp_flow
       ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
       ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
       {
         Netpkt.Flow.src;
         dst;
         proto = Netpkt.Ipv4.proto_tcp;
         src_port;
         dst_port;
       })

let signature_of = function
  | Error e -> "error:" ^ e
  | Ok (o : Runtime.outcome) -> (
      match o.Runtime.verdict with
      | Asic.Chip.Emitted { port; frame } ->
          Printf.sprintf "emitted:%d:%s" port
            (Digest.to_hex (Digest.bytes frame))
      | Asic.Chip.Dropped -> "dropped"
      | Asic.Chip.To_cpu b -> "to_cpu:" ^ Digest.to_hex (Digest.bytes b))

let send rt (in_port, frame) = Runtime.process rt ~in_port frame

let signatures rt workload = List.map (fun p -> signature_of (send rt p)) workload

(* A natted flow: static table rewrite, no CPU, no registers — the
   cleanest cacheable traffic. *)
let natted i ~src_port =
  ( i mod 4,
    tcp
      ~src:(Netpkt.Ip4.of_octets 192 168 0 (10 + (i mod 2)))
      ~dst:(Netpkt.Ip4.of_octets 10 0 6 (1 + (i mod 30)))
      ~src_port ~dst_port:443 )

(* A red flow: LB punts the first packet to the CPU (uncacheable),
   then installs a session — steady-state packets are cacheable. *)
let red ~src_octet ~src_port =
  ( 0,
    tcp
      ~src:(Netpkt.Ip4.of_octets 203 0 113 src_octet)
      ~dst:(ip "10.0.1.10") ~src_port ~dst_port:80 )

let fw_table rt =
  match
    Asic.Chip.find_table (Runtime.chip rt)
      (Compose.nf_table_name ~nf:Nflib.Firewall.name Nflib.Firewall.table_name)
  with
  | Some t -> t
  | None -> Alcotest.fail "fw ACL table not found on the chip"

(* Install a deny rule for one exact source, above the catalog rules. *)
let deny_src rt src =
  must_add (fw_table rt)
    {
      P4ir.Table.priority = 1000;
      patterns =
        [
          P4ir.Table.M_ternary
            {
              value = P4ir.Bitval.make ~width:32 (Netpkt.Ip4.to_int64 src);
              mask = P4ir.Bitval.max_value 32;
            };
          P4ir.Table.M_any;
          P4ir.Table.M_any;
          P4ir.Table.M_any;
        ];
      action = "deny";
      args = [];
    }

(* --- Hits: byte-identical replay, counted ------------------------- *)

let test_hit_byte_identical () =
  let crt = cached () and urt = runtime () in
  let pkt = natted 1 ~src_port:5001 in
  let first = signature_of (send crt pkt) in
  let second = signature_of (send crt pkt) in
  let third = signature_of (send crt pkt) in
  let oracle = signature_of (send urt pkt) in
  check Alcotest.string "miss = oracle" oracle first;
  check Alcotest.string "hit = oracle (byte-identical frame)" oracle second;
  check Alcotest.string "hit stays identical" oracle third;
  let s = Flow_cache.stats (cache crt) in
  check Alcotest.int "one miss" 1 s.Flow_cache.misses;
  check Alcotest.int "two hits" 2 s.Flow_cache.hits;
  check Alcotest.int "one insert" 1 s.Flow_cache.inserts

let test_punts_and_recircs_uncacheable () =
  (* The red chain spans pipelets, so even steady-state packets
     recirculate through loopback ports — and recirculating flows (like
     CPU punts) must never be served from the cache. Outputs stay
     correct; they just never become hits. *)
  let crt = cached () and urt = runtime () in
  let pkt = red ~src_octet:9 ~src_port:7000 in
  (match send crt pkt with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check Alcotest.int "first red packet consults the CPU" 1
        o.Runtime.counters.Runtime.Counters.cpu_round_trips;
      check Alcotest.bool "red chain recirculates" true
        (o.Runtime.counters.Runtime.Counters.recircs > 0));
  ignore (send urt pkt);
  List.iter
    (fun _ ->
      check Alcotest.string "uncached output = oracle"
        (signature_of (send urt pkt))
        (signature_of (send crt pkt)))
    [ (); (); () ];
  let s = Flow_cache.stats (cache crt) in
  check Alcotest.int "never served from cache" 0 s.Flow_cache.hits;
  check Alcotest.int "every run counted uncacheable" 4 s.Flow_cache.uncacheable

(* A single-pipelet LB deployment (classifier -> lb -> router): steady
   state neither punts nor recirculates, so sessions do cache. *)
let lb_runtime ?engine () =
  let rules =
    [ { Nflib.Classifier.dst_prefix = pfx "10.0.1.0/24"; proto = None; path_id = 10; tenant = 1 } ]
  in
  let registry =
    ("classifier", Nflib.Classifier.create rules)
    :: List.remove_assoc "classifier" (Nflib.Catalog.registry ())
  in
  let chains =
    [
      Chain.make ~path_id:10 ~name:"lb_only"
        ~nfs:[ "classifier"; "lb"; "router" ]
        ~weight:1.0 ~exit_port:1 ();
    ]
  in
  let compiled =
    Result.get_ok
      (Compiler.compile
         (Compiler.default_input ~registry ~chains ~strategy:Placement.Greedy ()))
  in
  let rt = Runtime.create ?engine compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  rt

let test_lb_steady_state_cached () =
  let crt = lb_runtime ~engine:(emc 64) () in
  let flow ~src_port = red ~src_octet:9 ~src_port in
  let a = flow ~src_port:7000 in
  (match send crt a with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check Alcotest.int "first packet consults the CPU" 1
        o.Runtime.counters.Runtime.Counters.cpu_round_trips;
      check Alcotest.int "single pipelet: no recircs" 0
        o.Runtime.counters.Runtime.Counters.recircs);
  (* Second packet is pure data plane and commits; third is a hit. *)
  let second = signature_of (send crt a) in
  let third = signature_of (send crt a) in
  check Alcotest.string "session hit replays identically" second third;
  check Alcotest.int "steady state cached" 1
    (Flow_cache.stats (cache crt)).Flow_cache.hits;
  (* A new flow's session install bumps the table epoch: A's entry goes
     stale, revalidates by re-running, and re-caches — output steady. *)
  let b = flow ~src_port:7500 in
  ignore (send crt b);
  let post = signature_of (send crt a) in
  check Alcotest.string "output unchanged across invalidation" second post;
  check Alcotest.bool "epoch bump detected as an invalidation" true
    ((Flow_cache.stats (cache crt)).Flow_cache.invalidations >= 1);
  let hits = (Flow_cache.stats (cache crt)).Flow_cache.hits in
  check Alcotest.string "re-cached after re-run" second
    (signature_of (send crt a));
  check Alcotest.int "hit again after re-cache" (hits + 1)
    (Flow_cache.stats (cache crt)).Flow_cache.hits

(* --- Telemetry: hit/miss counters surface in the registry --------- *)

let test_cache_counters_in_registry () =
  let engine =
    { (emc 256) with Runtime.Engine.telemetry = Telemetry.Level.Counters }
  in
  let rt = runtime ~engine () in
  let pkt = natted 2 ~src_port:5002 in
  ignore (send rt pkt);
  ignore (send rt pkt);
  ignore (send rt pkt);
  match Runtime.telemetry rt with
  | None -> Alcotest.fail "telemetry not attached"
  | Some o ->
      let reg = Observe.registry o in
      check Alcotest.int "cache.miss counter" 1
        !(Telemetry.Registry.counter reg "cache.miss");
      check Alcotest.int "cache.hit counter" 2
        !(Telemetry.Registry.counter reg "cache.hit")

(* --- Differential: cached = uncached oracle ----------------------- *)

(* Mixed random workload over all three chains plus unclassified and
   unparseable traffic; mirrors the flow-affinity workload the parallel
   suite uses. *)
let random_workload st n =
  List.init n (fun _ ->
      match Random.State.int st 5 with
      | 0 ->
          red
            ~src_octet:(1 + Random.State.int st 20)
            ~src_port:(2000 + Random.State.int st 30)
      | 1 ->
          (* one rate-limited flow for tenant 5 (budget 8) *)
          (2, tcp ~src:(ip "203.0.113.50") ~dst:(ip "10.0.5.7") ~src_port:1234
             ~dst_port:80)
      | 2 -> natted (Random.State.int st 8) ~src_port:(3000 + Random.State.int st 40)
      | 3 ->
          (3, tcp ~src:(ip "198.18.0.9") ~dst:(ip "192.0.2.77")
             ~src_port:(4000 + Random.State.int st 100) ~dst_port:80)
      | _ -> (Random.State.int st 4, Bytes.make (1 + Random.State.int st 8) '\x2a'))

let prop_cached_equals_uncached =
  QCheck.Test.make
    ~name:"cached = uncached oracle (stateful mix, mid-stream ACL update)"
    ~count:10
    QCheck.(pair small_nat (int_range 30 70))
    (fun (seed, n) ->
      let workload st = random_workload st n in
      let first = workload (Random.State.make [| 11 + seed |]) in
      let second = workload (Random.State.make [| 311 + seed |]) in
      let crt = cached () and urt = runtime () in
      let c1 = signatures crt first and u1 = signatures urt first in
      (* Mid-stream control-plane update on both runtimes: deny one red
         source that may well sit in the cache. *)
      let denied = Netpkt.Ip4.of_octets 203 0 113 5 in
      deny_src crt denied;
      deny_src urt denied;
      let c2 = signatures crt second and u2 = signatures urt second in
      c1 = u1 && c2 = u2)

let test_rate_limiter_budget_with_cache () =
  (* Register-backed NFs must stay exact: tenant 5's budget is 8, so of
     12 packets exactly 4 drop — with the cache on, same as off. The
     recorded register reads go stale every packet, so these never
     become hits; correctness must not depend on caching them. *)
  let run rt =
    List.init 12 (fun i ->
        signature_of
          (send rt
             (i mod 4, tcp ~src:(ip "203.0.113.50") ~dst:(ip "10.0.5.7")
                ~src_port:1234 ~dst_port:80)))
  in
  let crt = cached () in
  let c = run crt and u = run (runtime ()) in
  check Alcotest.(list string) "cached = uncached, packet for packet" u c;
  check Alcotest.int "drops = over-budget packets" 4
    (List.length (List.filter (String.equal "dropped") c));
  check Alcotest.int "stale register plans never hit" 0
    (Flow_cache.stats (cache crt)).Flow_cache.hits

(* --- Invalidation: table updates kill exactly the affected verdicts - *)

(* Add a NAT binding for a source the catalog leaves unbound. *)
let bind_nat rt ~internal ~public =
  match
    Asic.Chip.find_table (Runtime.chip rt)
      (Compose.nf_table_name ~nf:Nflib.Nat.name Nflib.Nat.table_name)
  with
  | None -> Alcotest.fail "NAT table not found on the chip"
  | Some t ->
      must_add t
        {
          P4ir.Table.priority = 0;
          patterns =
            [
              P4ir.Table.M_exact
                (P4ir.Bitval.make ~width:32 (Netpkt.Ip4.to_int64 internal));
            ];
          action = "snat";
          args =
            [ P4ir.Bitval.make ~width:32 (Netpkt.Ip4.to_int64 public) ];
        }

let test_table_update_invalidates_cached_flows () =
  let natted_from src ~src_port =
    (1, tcp ~src ~dst:(ip "10.0.6.1") ~src_port ~dst_port:443)
  in
  let a = natted_from (ip "192.168.0.10") ~src_port:7100 in
  let b = natted_from (ip "192.168.0.12") ~src_port:7200 in
  let crt = cached () in
  (* Warm both flows (A rewritten by the static binding, B passes with
     no binding), then confirm both are served from cache. *)
  List.iter (fun p -> ignore (send crt p)) [ a; b ];
  let hits_before = (Flow_cache.stats (cache crt)).Flow_cache.hits in
  let sig_a = signature_of (send crt a) in
  let sig_b = signature_of (send crt b) in
  check Alcotest.int "both flows served from cache" (hits_before + 2)
    (Flow_cache.stats (cache crt)).Flow_cache.hits;
  (* Bind B's source. The NAT-table mutation bumps the epoch, so both
     cached verdicts revalidate: B's output must change, A's must not —
     and both must equal a cold uncached run of the updated chip. *)
  bind_nat crt ~internal:(ip "192.168.0.12") ~public:(ip "203.0.113.202");
  let post_a = signature_of (send crt a) in
  let post_b = signature_of (send crt b) in
  check Alcotest.string "unaffected flow unchanged" sig_a post_a;
  check Alcotest.bool "bound flow's output changed" true (post_b <> sig_b);
  check Alcotest.bool "epoch invalidations were detected" true
    ((Flow_cache.stats (cache crt)).Flow_cache.invalidations >= 1);
  let urt = runtime () in
  bind_nat urt ~internal:(ip "192.168.0.12") ~public:(ip "203.0.113.202");
  check Alcotest.string "post-update = cold uncached run (A)"
    (signature_of (send urt a)) post_a;
  check Alcotest.string "post-update = cold uncached run (B)"
    (signature_of (send urt b)) post_b

(* --- LRU eviction at tiny capacity -------------------------------- *)

let test_lru_eviction_tiny_capacity () =
  let crt = cached ~capacity:2 () in
  let f1 = natted 0 ~src_port:6001 in
  let f2 = natted 1 ~src_port:6002 in
  let f3 = natted 2 ~src_port:6003 in
  ignore (send crt f1);
  ignore (send crt f2);
  check Alcotest.int "two entries" 2 (Flow_cache.length (cache crt));
  (* Touch f1 so f2 becomes the LRU victim, then insert f3. *)
  ignore (send crt f1);
  ignore (send crt f3);
  let c = cache crt in
  check Alcotest.int "capacity bound holds" 2 (Flow_cache.length c);
  check Alcotest.int "one eviction" 1 (Flow_cache.stats c).Flow_cache.evictions;
  (* f2 was evicted: resending it misses (and re-inserts, evicting f1
     which is now the oldest untouched entry). *)
  let misses = (Flow_cache.stats c).Flow_cache.misses in
  ignore (send crt f2);
  check Alcotest.int "evicted flow misses" (misses + 1)
    (Flow_cache.stats c).Flow_cache.misses;
  (* f3 is still resident (touched more recently than f1 was). *)
  let hits = (Flow_cache.stats c).Flow_cache.hits in
  ignore (send crt f3);
  check Alcotest.int "resident flow still hits" (hits + 1)
    (Flow_cache.stats c).Flow_cache.hits;
  (* Outputs stay correct throughout eviction churn. *)
  let urt = runtime () in
  List.iter
    (fun p ->
      check Alcotest.string "post-churn output = oracle"
        (signature_of (send urt p))
        (signature_of (send crt p)))
    [ f1; f2; f3 ]

(* --- Cache-off runs are byte-identical to an engine with no knob --- *)

let test_cache_off_identical () =
  let st = Random.State.make [| 99 |] in
  let workload = random_workload st 40 in
  let off = Runtime.process_batch (runtime ()) workload in
  let on = Runtime.process_batch (cached ()) workload in
  check Alcotest.bool "cached batch = uncached batch (digest included)" true
    (off.Runtime.digest = on.Runtime.digest
    && off.Runtime.emitted = on.Runtime.emitted
    && off.Runtime.dropped = on.Runtime.dropped
    && off.Runtime.to_cpu = on.Runtime.to_cpu
    && off.Runtime.errors = on.Runtime.errors)

(* --- Parallel shards each get a private cache ---------------------- *)

let test_parallel_with_cache_matches_sequential () =
  let st = Random.State.make [| 21 |] in
  let workload = random_workload st 60 in
  let seq = Runtime.process_batch (runtime ()) workload in
  let n = List.length workload in
  let sigs = Array.make n "" and oracle = Array.make n "" in
  ignore
    (Runtime.process_batch
       ~each:(fun i r -> oracle.(i) <- signature_of r)
       (runtime ()) workload);
  let par =
    Runtime.process_batch_parallel ~domains:4
      ~each:(fun i r -> sigs.(i) <- signature_of r)
      (cached ()) workload
  in
  check Alcotest.bool "totals match sequential uncached" true
    (seq.Runtime.emitted = par.Runtime.emitted
    && seq.Runtime.dropped = par.Runtime.dropped
    && seq.Runtime.to_cpu = par.Runtime.to_cpu
    && seq.Runtime.errors = par.Runtime.errors);
  check Alcotest.bool "per-packet outcomes match" true (sigs = oracle)

let () =
  Alcotest.run "flow_cache"
    [
      ( "hits",
        [
          Alcotest.test_case "byte-identical replay" `Quick
            test_hit_byte_identical;
          Alcotest.test_case "punts and recircs uncacheable" `Quick
            test_punts_and_recircs_uncacheable;
          Alcotest.test_case "lb steady state cached" `Quick
            test_lb_steady_state_cached;
          Alcotest.test_case "registry counters" `Quick
            test_cache_counters_in_registry;
        ] );
      ( "differential",
        [
          qtest prop_cached_equals_uncached;
          Alcotest.test_case "rate limiter exact with cache" `Quick
            test_rate_limiter_budget_with_cache;
          Alcotest.test_case "cache off identical" `Quick
            test_cache_off_identical;
          Alcotest.test_case "parallel shards with cache" `Quick
            test_parallel_with_cache_matches_sequential;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "table update invalidates cached flows" `Quick
            test_table_update_invalidates_cached_flows;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "lru at capacity 2" `Quick
            test_lru_eviction_tiny_capacity;
        ] );
    ]
