(* Placement optimizer tests: each strategy solves the Fig. 6 workload,
   heuristics are cross-validated against the exhaustive optimum, and
   resource feasibility is respected. *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let spec = Asic.Spec.wedge_100b

(* Synthetic NFs with a controllable stage footprint. *)
let input ?(stages_per_nf = fun _ -> 1) ?(chains = []) ?(pinned = []) () =
  {
    Placement.spec;
    resources_of =
      (fun nf -> { P4ir.Resources.zero with P4ir.Resources.stages = stages_per_nf nf });
    chains;
    entry_pipeline = 0;
    pinned;
    framework_stages_per_nf = 2;
    framework_stages_fixed = 1;
  }

let chain_af ?(weight = 1.0) () =
  Chain.make ~path_id:1 ~name:"af" ~nfs:[ "A"; "B"; "C"; "D"; "E"; "F" ] ~weight
    ~exit_port:1 ()

let test_exhaustive_finds_zero_or_one () =
  (* Six 1-stage NFs on 4 pipelets: an optimal placement needs at most
     one recirculation (Fig. 6b quality or better). *)
  let inp = input ~chains:[ chain_af () ] () in
  match Placement.solve inp Placement.Exhaustive with
  | Error e -> Alcotest.fail e
  | Ok (_, cost) -> check Alcotest.bool "cost <= 1" true (cost <= 1.0)

let test_heuristics_close_to_exhaustive () =
  let inp = input ~chains:[ chain_af () ] () in
  let best =
    match Placement.solve inp Placement.Exhaustive with
    | Ok (_, c) -> c
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun (name, strategy) ->
      match Placement.solve inp strategy with
      | Error e -> Alcotest.fail (name ^ ": " ^ e)
      | Ok (_, c) ->
          check Alcotest.bool
            (Printf.sprintf "%s within 1 recirc of optimum (%.2f vs %.2f)" name c
               best)
            true
            (c <= best +. 1.0))
    (* Naive is the paper's strawman and is allowed to be bad (Fig. 6a). *)
    [ ("greedy", Placement.Greedy); ("anneal", Placement.default_anneal) ]

let test_naive_not_better_than_exhaustive () =
  let inp = input ~chains:[ chain_af () ] () in
  let best = Result.get_ok (Placement.solve inp Placement.Exhaustive) in
  let naive = Result.get_ok (Placement.solve inp Placement.Naive) in
  check Alcotest.bool "exhaustive <= naive" true (snd best <= snd naive)

let test_pinning_respected () =
  let pin = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Ingress } in
  let inp = input ~chains:[ chain_af () ] ~pinned:[ ("A", pin) ] () in
  List.iter
    (fun strategy ->
      match Placement.solve inp strategy with
      | Error e -> Alcotest.fail e
      | Ok (layout, _) ->
          check Alcotest.bool "A pinned to ingress 0" true
            (match Layout.location layout "A" with
            | Some id -> Asic.Pipelet.equal_id id pin
            | None -> false))
    [ Placement.Exhaustive; Placement.Greedy; Placement.default_anneal ]

let test_feasibility_respected () =
  (* Each NF needs 5 stages; with 2 framework stages each plus 1 fixed,
     two such NFs cannot share a 12-stage pipelet sequentially. *)
  let inp = input ~stages_per_nf:(fun _ -> 5) ~chains:[ chain_af () ] () in
  match Placement.solve inp Placement.Exhaustive with
  | Error _ -> Alcotest.fail "should still be placeable (one NF per pipelet won't fit 6; Par fallback)"
  | Ok (layout, _) ->
      check Alcotest.bool "layout feasible" true (Placement.feasible inp layout)

let test_infeasible_reported () =
  (* 13-stage NFs can never fit a 12-stage pipelet. *)
  let inp = input ~stages_per_nf:(fun _ -> 13) ~chains:[ chain_af () ] () in
  check Alcotest.bool "infeasible detected" true
    (Result.is_error (Placement.solve inp Placement.Exhaustive))

let test_build_layout_seq_to_par_fallback () =
  (* Two 5-stage NFs: Seq needs 5+5+2*2+1 = 15 > 12, Par needs
     max(5,5)+4+1 = 10 <= 12. *)
  let inp =
    input ~stages_per_nf:(fun _ -> 5)
      ~chains:[ Chain.make ~path_id:1 ~name:"c" ~nfs:[ "A"; "B" ] ~exit_port:1 () ]
      ()
  in
  let id = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Ingress } in
  match Placement.build_layout inp [ ("A", id); ("B", id) ] with
  | None -> Alcotest.fail "expected a Par fallback"
  | Some layout -> (
      match Layout.layout_of layout id with
      | [ Layout.Par [ "A"; "B" ] ] -> ()
      | other ->
          Alcotest.fail
            (Format.asprintf "expected par group, got %a" Layout.pp_pipelet_layout
               other))

let test_naive_par_fallback () =
  (* Six 5-stage NFs round-robined over 4 pipelets: every co-located
     pair overflows Seq (5+5+2*2+1 = 15 > 12) but fits Par
     (max(5,5)+4+1 = 10 <= 12). The old naive fit check only tried Seq
     and spuriously reported "NFs do not fit". *)
  let inp = input ~stages_per_nf:(fun _ -> 5) ~chains:[ chain_af () ] () in
  match Placement.solve inp Placement.Naive with
  | Error e -> Alcotest.fail ("naive should place via the Par fallback: " ^ e)
  | Ok (layout, _) ->
      check Alcotest.bool "layout feasible" true (Placement.feasible inp layout)

let test_anneal_matches_reference_scorer () =
  (* The memoized fast scorer must produce bit-identical scores, so the
     annealer walks the same accept/reject trajectory under either
     backend: same final layout, same cost. *)
  let inp = input ~chains:[ chain_af () ] () in
  let strategy =
    Placement.Anneal { iterations = 1000; seed = 7; initial_temp = 2.0 }
  in
  match (Placement.solve inp strategy, Placement.solve ~reference:true inp strategy) with
  | Ok (l1, c1), Ok (l2, c2) ->
      check Alcotest.(float 1e-12) "same cost" c2 c1;
      check Alcotest.bool "same layout" true (l1 = l2)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_canonical_order_follows_chains () =
  (* lb-before-router ordering: the heavy chain visits B before A. *)
  let chains =
    [
      Chain.make ~path_id:1 ~name:"heavy" ~nfs:[ "B"; "A" ] ~weight:0.9
        ~exit_port:1 ();
      Chain.make ~path_id:2 ~name:"light" ~nfs:[ "A" ] ~weight:0.1 ~exit_port:1 ();
    ]
  in
  let inp = input ~chains () in
  let id = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Ingress } in
  match Placement.build_layout inp [ ("A", id); ("B", id) ] with
  | None -> Alcotest.fail "should fit"
  | Some layout -> (
      match Layout.layout_of layout id with
      | [ Layout.Seq order ] ->
          check Alcotest.(list string) "chain precedence wins" [ "B"; "A" ] order
      | other ->
          Alcotest.fail
            (Format.asprintf "unexpected layout %a" Layout.pp_pipelet_layout other))

let test_multi_chain_tradeoff () =
  (* Two chains pulling the same NF different ways: the optimizer should
     favor the heavier one. *)
  let chains w1 w2 =
    [
      Chain.make ~path_id:1 ~name:"c1" ~nfs:[ "A"; "B" ] ~weight:w1 ~exit_port:1 ();
      Chain.make ~path_id:2 ~name:"c2" ~nfs:[ "B"; "A" ] ~weight:w2 ~exit_port:1 ();
    ]
  in
  let cost w1 w2 =
    let inp = input ~chains:(chains w1 w2) () in
    snd (Result.get_ok (Placement.solve inp Placement.Exhaustive))
  in
  (* Conflicting orders cannot both be free, but the cost must not
     exceed the lighter chain paying one transition. *)
  check Alcotest.bool "bounded by lighter chain" true (cost 0.9 0.1 <= 0.1 +. 1e-9);
  check Alcotest.bool "symmetric" true
    (abs_float (cost 0.9 0.1 -. cost 0.1 0.9) < 1e-9)

(* Property: on random small instances, greedy is never better than
   exhaustive (sanity of the exhaustive search) and both respect
   feasibility. *)
let prop_exhaustive_dominates_greedy =
  QCheck.Test.make ~name:"exhaustive <= greedy on random instances" ~count:25
    QCheck.(pair (int_range 2 4) (int_range 0 1000))
    (fun (n_nfs, seed) ->
      let st = Random.State.make [| seed |] in
      let nfs = List.init n_nfs (fun i -> Printf.sprintf "N%d" i) in
      let shuffled =
        List.sort (fun _ _ -> if Random.State.bool st then 1 else -1) nfs
      in
      let chains =
        [
          Chain.make ~path_id:1 ~name:"c1" ~nfs ~weight:0.6 ~exit_port:1 ();
          Chain.make ~path_id:2 ~name:"c2" ~nfs:shuffled ~weight:0.4 ~exit_port:17 ();
        ]
      in
      let inp = input ~chains () in
      match
        (Placement.solve inp Placement.Exhaustive, Placement.solve inp Placement.Greedy)
      with
      | Ok (_, best), Ok (_, greedy) -> best <= greedy +. 1e-9
      | Ok _, Error _ -> true (* greedy may fail where exhaustive succeeds *)
      | Error _, _ -> false)

let () =
  Alcotest.run "placement"
    [
      ( "strategies",
        [
          Alcotest.test_case "exhaustive quality" `Quick
            test_exhaustive_finds_zero_or_one;
          Alcotest.test_case "heuristics close" `Quick
            test_heuristics_close_to_exhaustive;
          Alcotest.test_case "exhaustive dominates naive" `Quick
            test_naive_not_better_than_exhaustive;
          Alcotest.test_case "pinning" `Quick test_pinning_respected;
          qtest prop_exhaustive_dominates_greedy;
        ] );
      ( "feasibility",
        [
          Alcotest.test_case "respected" `Quick test_feasibility_respected;
          Alcotest.test_case "infeasible reported" `Quick test_infeasible_reported;
          Alcotest.test_case "seq->par fallback" `Quick
            test_build_layout_seq_to_par_fallback;
          Alcotest.test_case "naive par fallback" `Quick test_naive_par_fallback;
        ] );
      ( "scorer",
        [
          Alcotest.test_case "anneal fast = reference" `Quick
            test_anneal_matches_reference_scorer;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "canonical order" `Quick
            test_canonical_order_follows_chains;
          Alcotest.test_case "multi-chain tradeoff" `Quick test_multi_chain_tradeoff;
        ] );
    ]
