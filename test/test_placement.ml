(* Placement optimizer tests: each strategy solves the Fig. 6 workload,
   heuristics are cross-validated against the exhaustive optimum, and
   resource feasibility is respected. *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let spec = Asic.Spec.wedge_100b

(* Synthetic NFs with a controllable stage footprint. *)
let input ?(spec = spec) ?(stages_per_nf = fun _ -> 1) ?(chains = []) ?(pinned = []) () =
  {
    Placement.spec;
    resources_of =
      (fun nf -> { P4ir.Resources.zero with P4ir.Resources.stages = stages_per_nf nf });
    chains;
    entry_pipeline = 0;
    pinned;
    framework_stages_per_nf = 2;
    framework_stages_fixed = 1;
  }

let chain_af ?(weight = 1.0) () =
  Chain.make ~path_id:1 ~name:"af" ~nfs:[ "A"; "B"; "C"; "D"; "E"; "F" ] ~weight
    ~exit_port:1 ()

let test_exhaustive_finds_zero_or_one () =
  (* Six 1-stage NFs on 4 pipelets: an optimal placement needs at most
     one recirculation (Fig. 6b quality or better). *)
  let inp = input ~chains:[ chain_af () ] () in
  match Placement.solve inp Placement.Exhaustive with
  | Error e -> Alcotest.fail e
  | Ok (_, cost) -> check Alcotest.bool "cost <= 1" true (cost <= 1.0)

let test_heuristics_close_to_exhaustive () =
  let inp = input ~chains:[ chain_af () ] () in
  let best =
    match Placement.solve inp Placement.Exhaustive with
    | Ok (_, c) -> c
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun (name, strategy) ->
      match Placement.solve inp strategy with
      | Error e -> Alcotest.fail (name ^ ": " ^ e)
      | Ok (_, c) ->
          check Alcotest.bool
            (Printf.sprintf "%s within 1 recirc of optimum (%.2f vs %.2f)" name c
               best)
            true
            (c <= best +. 1.0))
    (* Naive is the paper's strawman and is allowed to be bad (Fig. 6a). *)
    [ ("greedy", Placement.Greedy); ("anneal", Placement.default_anneal) ]

let test_naive_not_better_than_exhaustive () =
  let inp = input ~chains:[ chain_af () ] () in
  let best = Result.get_ok (Placement.solve inp Placement.Exhaustive) in
  let naive = Result.get_ok (Placement.solve inp Placement.Naive) in
  check Alcotest.bool "exhaustive <= naive" true (snd best <= snd naive)

let test_pinning_respected () =
  let pin = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Ingress } in
  let inp = input ~chains:[ chain_af () ] ~pinned:[ ("A", pin) ] () in
  List.iter
    (fun strategy ->
      match Placement.solve inp strategy with
      | Error e -> Alcotest.fail e
      | Ok (layout, _) ->
          check Alcotest.bool "A pinned to ingress 0" true
            (match Layout.location layout "A" with
            | Some id -> Asic.Pipelet.equal_id id pin
            | None -> false))
    [ Placement.Exhaustive; Placement.Greedy; Placement.default_anneal ]

let test_feasibility_respected () =
  (* Each NF needs 5 stages; with 2 framework stages each plus 1 fixed,
     two such NFs cannot share a 12-stage pipelet sequentially. *)
  let inp = input ~stages_per_nf:(fun _ -> 5) ~chains:[ chain_af () ] () in
  match Placement.solve inp Placement.Exhaustive with
  | Error _ -> Alcotest.fail "should still be placeable (one NF per pipelet won't fit 6; Par fallback)"
  | Ok (layout, _) ->
      check Alcotest.bool "layout feasible" true (Placement.feasible inp layout)

let test_infeasible_reported () =
  (* 13-stage NFs can never fit a 12-stage pipelet. *)
  let inp = input ~stages_per_nf:(fun _ -> 13) ~chains:[ chain_af () ] () in
  check Alcotest.bool "infeasible detected" true
    (Result.is_error (Placement.solve inp Placement.Exhaustive))

let test_build_layout_seq_to_par_fallback () =
  (* Two 5-stage NFs: Seq needs 5+5+2*2+1 = 15 > 12, Par needs
     max(5,5)+4+1 = 10 <= 12. *)
  let inp =
    input ~stages_per_nf:(fun _ -> 5)
      ~chains:[ Chain.make ~path_id:1 ~name:"c" ~nfs:[ "A"; "B" ] ~exit_port:1 () ]
      ()
  in
  let id = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Ingress } in
  match Placement.build_layout inp [ ("A", id); ("B", id) ] with
  | None -> Alcotest.fail "expected a Par fallback"
  | Some layout -> (
      match Layout.layout_of layout id with
      | [ Layout.Par [ "A"; "B" ] ] -> ()
      | other ->
          Alcotest.fail
            (Format.asprintf "expected par group, got %a" Layout.pp_pipelet_layout
               other))

let test_naive_par_fallback () =
  (* Six 5-stage NFs round-robined over 4 pipelets: every co-located
     pair overflows Seq (5+5+2*2+1 = 15 > 12) but fits Par
     (max(5,5)+4+1 = 10 <= 12). The old naive fit check only tried Seq
     and spuriously reported "NFs do not fit". *)
  let inp = input ~stages_per_nf:(fun _ -> 5) ~chains:[ chain_af () ] () in
  match Placement.solve inp Placement.Naive with
  | Error e -> Alcotest.fail ("naive should place via the Par fallback: " ^ e)
  | Ok (layout, _) ->
      check Alcotest.bool "layout feasible" true (Placement.feasible inp layout)

let test_anneal_matches_reference_scorer () =
  (* All three annealing paths — incremental move-diff ([solve] with
     [Fast]), full rebuild with the memoized scorer ([solve_rebuild]
     with [Fast]) and full rebuild with the uncached oracle
     ([Reference]) — must score candidates bit-identically, so per seed
     they walk the same accept/reject trajectory: same final layout,
     same cost. *)
  let inp = input ~chains:[ chain_af () ] () in
  let strategy =
    Placement.Anneal { iterations = 1000; seed = 7; initial_temp = 2.0 }
  in
  match
    ( Placement.solve inp strategy,
      Placement.solve_rebuild inp strategy,
      Placement.solve ~scorer:Placement.Reference inp strategy )
  with
  | Ok (l1, c1), Ok (l2, c2), Ok (l3, c3) ->
      check Alcotest.(float 1e-12) "incremental = rebuild cost" c2 c1;
      check Alcotest.(float 1e-12) "incremental = reference cost" c3 c1;
      check Alcotest.bool "incremental = rebuild layout" true (l1 = l2);
      check Alcotest.bool "incremental = reference layout" true (l1 = l3)
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Alcotest.fail e

(* Property: an incrementally maintained diff — random move sequence,
   including rejected moves — always agrees with a from-scratch
   [build_layout] + score of the same assignment: identical layout,
   identical chain fingerprints, identical cost. Run on both a
   2-pipeline and a 4-pipeline switch so moves cross pipelines. *)
let prop_move_diff_matches_rebuild (spec_name, spec) =
  let nfs = [ "A"; "B"; "C"; "D"; "E"; "F" ] in
  let chains =
    [
      Chain.make ~path_id:1 ~name:"full" ~nfs ~weight:0.5 ~exit_port:1 ();
      Chain.make ~path_id:2 ~name:"odd" ~nfs:[ "A"; "C"; "E" ] ~weight:0.3
        ~exit_port:17 ();
      Chain.make ~path_id:3 ~name:"even" ~nfs:[ "B"; "D"; "F" ] ~weight:0.2
        ~exit_port:1 ();
    ]
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "move diff = rebuild (%s)" spec_name)
    ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let inp = input ~spec ~chains () in
      let ids = Array.of_list (Asic.Pipelet.all_ids spec) in
      let assignment =
        ref (List.mapi (fun i nf -> (nf, ids.(i mod Array.length ids))) nfs)
      in
      let d = Placement.diff_create inp !assignment in
      let ok = ref true in
      let expect name b = if not b then (ok := false; Printf.eprintf "move-diff mismatch: %s\n" name) in
      let check_state () =
        let rebuilt = Placement.build_layout inp !assignment in
        match (Placement.diff_layout d, rebuilt) with
        | Some dl, Some rl ->
            expect "layout" (dl = rl);
            expect "cost" (Placement.diff_cost d = Placement.evaluate inp rl);
            let fresh = Layout.index rl in
            List.iter
              (fun c ->
                expect "fingerprint"
                  (String.equal
                     (Traversal.chain_fingerprint (Placement.diff_index d)
                        ~entry_pipeline:inp.Placement.entry_pipeline c)
                     (Traversal.chain_fingerprint fresh
                        ~entry_pipeline:inp.Placement.entry_pipeline c)))
              chains
        | None, None -> ()
        | Some _, None | None, Some _ -> expect "feasibility" false
      in
      check_state ();
      for _ = 1 to 40 do
        let nf = List.nth nfs (Random.State.int st (List.length nfs)) in
        let src = List.assoc nf !assignment in
        let dst = ids.(Random.State.int st (Array.length ids)) in
        let moved =
          List.map
            (fun (f, id) -> if String.equal f nf then (f, dst) else (f, id))
            !assignment
        in
        (match Placement.diff_apply d { Placement.Move.nf; src; dst } with
        | `Applied cost ->
            assignment := moved;
            expect "applied cost"
              (Placement.diff_cost d = Some cost)
        | `Unfit ->
            (* The oracle must agree the moved assignment is unusable. *)
            expect "unfit agrees" (
              match Placement.build_layout inp moved with
              | None -> true
              | Some l -> Placement.evaluate inp l = None));
        check_state ()
      done;
      !ok)

let seeds = [ 3; 5; 9; 11 ]

let par_iterations = 800

let solve_seed inp seed =
  Placement.solve inp
    (Placement.Anneal { iterations = par_iterations; seed; initial_temp = 2.0 })

let test_parallel_single_domain_matches_sequential () =
  (* [solve_parallel ~domains:1] is sequential restarts: per-seed costs
     must equal the corresponding [solve] calls, and the winner must be
     the cheapest of them. *)
  let inp = input ~chains:[ chain_af () ] () in
  match
    Placement.solve_parallel ~iterations:par_iterations ~domains:1 ~seeds inp
  with
  | Error e -> Alcotest.fail e
  | Ok p ->
      check Alcotest.(list int) "restarts in seed order" seeds
        (List.map (fun r -> r.Placement.seed) p.Placement.restarts);
      List.iter2
        (fun seed (r : Placement.restart) ->
          match (solve_seed inp seed, r.Placement.cost) with
          | Ok (_, c), Some c' ->
              check Alcotest.(float 1e-12)
                (Printf.sprintf "seed %d cost" seed) c c'
          | Error _, None -> ()
          | Ok _, None | Error _, Some _ ->
              Alcotest.fail "restart outcome differs from sequential solve")
        seeds p.Placement.restarts;
      let best_seq =
        List.fold_left
          (fun acc seed ->
            match (acc, solve_seed inp seed) with
            | None, Ok lc -> Some lc
            | Some (_, bc), Ok (l, c) when c < bc -> Some (l, c)
            | _, _ -> acc)
          None seeds
      in
      (match best_seq with
      | Some (l, c) ->
          check Alcotest.(float 1e-12) "best cost" c p.Placement.cost;
          check Alcotest.bool "best layout" true (p.Placement.layout = l)
      | None -> Alcotest.fail "sequential solves all failed")

let test_parallel_domains_deterministic () =
  (* The merged result must not depend on the domain count or on which
     domain finishes first: 4 domains, 1 domain and a repeat run all
     agree exactly. *)
  let inp = input ~chains:[ chain_af () ] () in
  let run domains =
    match
      Placement.solve_parallel ~iterations:par_iterations ~domains ~seeds inp
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let p4 = run 4 and p4' = run 4 and p1 = run 1 in
  check Alcotest.bool "repeat run identical" true (p4 = p4');
  check Alcotest.bool "domain count irrelevant" true (p4 = p1);
  let min_cost =
    List.fold_left
      (fun acc (r : Placement.restart) ->
        match r.Placement.cost with Some c -> min acc c | None -> acc)
      infinity p4.Placement.restarts
  in
  check Alcotest.(float 1e-12) "winner is the min over seeds" min_cost
    p4.Placement.cost

let test_canonical_order_follows_chains () =
  (* lb-before-router ordering: the heavy chain visits B before A. *)
  let chains =
    [
      Chain.make ~path_id:1 ~name:"heavy" ~nfs:[ "B"; "A" ] ~weight:0.9
        ~exit_port:1 ();
      Chain.make ~path_id:2 ~name:"light" ~nfs:[ "A" ] ~weight:0.1 ~exit_port:1 ();
    ]
  in
  let inp = input ~chains () in
  let id = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Ingress } in
  match Placement.build_layout inp [ ("A", id); ("B", id) ] with
  | None -> Alcotest.fail "should fit"
  | Some layout -> (
      match Layout.layout_of layout id with
      | [ Layout.Seq order ] ->
          check Alcotest.(list string) "chain precedence wins" [ "B"; "A" ] order
      | other ->
          Alcotest.fail
            (Format.asprintf "unexpected layout %a" Layout.pp_pipelet_layout other))

let test_multi_chain_tradeoff () =
  (* Two chains pulling the same NF different ways: the optimizer should
     favor the heavier one. *)
  let chains w1 w2 =
    [
      Chain.make ~path_id:1 ~name:"c1" ~nfs:[ "A"; "B" ] ~weight:w1 ~exit_port:1 ();
      Chain.make ~path_id:2 ~name:"c2" ~nfs:[ "B"; "A" ] ~weight:w2 ~exit_port:1 ();
    ]
  in
  let cost w1 w2 =
    let inp = input ~chains:(chains w1 w2) () in
    snd (Result.get_ok (Placement.solve inp Placement.Exhaustive))
  in
  (* Conflicting orders cannot both be free, but the cost must not
     exceed the lighter chain paying one transition. *)
  check Alcotest.bool "bounded by lighter chain" true (cost 0.9 0.1 <= 0.1 +. 1e-9);
  check Alcotest.bool "symmetric" true
    (abs_float (cost 0.9 0.1 -. cost 0.1 0.9) < 1e-9)

(* Property: on random small instances, greedy is never better than
   exhaustive (sanity of the exhaustive search) and both respect
   feasibility. *)
let prop_exhaustive_dominates_greedy =
  QCheck.Test.make ~name:"exhaustive <= greedy on random instances" ~count:25
    QCheck.(pair (int_range 2 4) (int_range 0 1000))
    (fun (n_nfs, seed) ->
      let st = Random.State.make [| seed |] in
      let nfs = List.init n_nfs (fun i -> Printf.sprintf "N%d" i) in
      let shuffled =
        List.sort (fun _ _ -> if Random.State.bool st then 1 else -1) nfs
      in
      let chains =
        [
          Chain.make ~path_id:1 ~name:"c1" ~nfs ~weight:0.6 ~exit_port:1 ();
          Chain.make ~path_id:2 ~name:"c2" ~nfs:shuffled ~weight:0.4 ~exit_port:17 ();
        ]
      in
      let inp = input ~chains () in
      match
        (Placement.solve inp Placement.Exhaustive, Placement.solve inp Placement.Greedy)
      with
      | Ok (_, best), Ok (_, greedy) -> best <= greedy +. 1e-9
      | Ok _, Error _ -> true (* greedy may fail where exhaustive succeeds *)
      | Error _, _ -> false)

let () =
  Alcotest.run "placement"
    [
      ( "strategies",
        [
          Alcotest.test_case "exhaustive quality" `Quick
            test_exhaustive_finds_zero_or_one;
          Alcotest.test_case "heuristics close" `Quick
            test_heuristics_close_to_exhaustive;
          Alcotest.test_case "exhaustive dominates naive" `Quick
            test_naive_not_better_than_exhaustive;
          Alcotest.test_case "pinning" `Quick test_pinning_respected;
          qtest prop_exhaustive_dominates_greedy;
        ] );
      ( "feasibility",
        [
          Alcotest.test_case "respected" `Quick test_feasibility_respected;
          Alcotest.test_case "infeasible reported" `Quick test_infeasible_reported;
          Alcotest.test_case "seq->par fallback" `Quick
            test_build_layout_seq_to_par_fallback;
          Alcotest.test_case "naive par fallback" `Quick test_naive_par_fallback;
        ] );
      ( "scorer",
        [
          Alcotest.test_case "anneal incremental = rebuild = reference" `Quick
            test_anneal_matches_reference_scorer;
          qtest (prop_move_diff_matches_rebuild ("wedge_100b", Asic.Spec.wedge_100b));
          qtest (prop_move_diff_matches_rebuild ("tofino_4pipe", Asic.Spec.tofino_4pipe));
        ] );
      ( "parallel",
        [
          Alcotest.test_case "domains:1 = sequential" `Quick
            test_parallel_single_domain_matches_sequential;
          Alcotest.test_case "deterministic across domains" `Quick
            test_parallel_domains_deterministic;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "canonical order" `Quick
            test_canonical_order_follows_chains;
          Alcotest.test_case "multi-chain tradeoff" `Quick test_multi_chain_tradeoff;
        ] );
    ]
