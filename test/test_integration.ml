(* §5-style functional validation with the packet test framework: the
   full edge-cloud deployment is compiled onto the modeled Tofino and
   every SFC path is exercised with input/output packet checks —
   under every placement strategy. *)

open Dejavu_core

let check = Alcotest.check

let ip = Netpkt.Ip4.of_string_exn
let mac = Netpkt.Mac.of_string_exn

let exit_port = 1

let build strategy =
  let input = Nflib.Catalog.edge_cloud_input ~strategy ~exit_port () in
  match Compiler.compile input with
  | Error e -> Alcotest.fail ("compile: " ^ e)
  | Ok compiled ->
      let rt = Runtime.create compiled in
      Nflib.Catalog.attach_handlers rt compiled;
      (compiled, rt)

let flow ~src ~dst ?(proto = Netpkt.Ipv4.proto_tcp) ?(src_port = 40000)
    ?(dst_port = 80) () =
  { Netpkt.Flow.src = ip src; dst; proto; src_port; dst_port }

let pkt ?(ttl = 64) f =
  match
    Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:aa:00:00:00:01")
      ~dst_mac:(mac "02:00:00:00:00:fe") f
  with
  | Netpkt.Pkt.Eth e :: Netpkt.Pkt.Ipv4 h :: rest ->
      Netpkt.Pkt.Eth e :: Netpkt.Pkt.Ipv4 { h with Netpkt.Ipv4.ttl } :: rest
  | other -> other

let router_nexthop_mac = mac "02:00:0a:00:00:01"

let expect_ipv4 f layers =
  match Netpkt.Pkt.find_ipv4 layers with
  | Some h -> f h
  | None -> Error "no ipv4 layer in output"

let no_sfc layers =
  if List.exists (function Netpkt.Pkt.Sfc_raw _ -> true | _ -> false) layers
  then Error "SFC header not stripped on exit"
  else Ok ()

let vlan_tag expected layers =
  match List.find_map (function Netpkt.Pkt.Vlan v -> Some v | _ -> None) layers with
  | Some v when v.Netpkt.Vlan.vid = expected -> Ok ()
  | Some v -> Error (Printf.sprintf "vid %d, expected %d" v.Netpkt.Vlan.vid expected)
  | None -> Error "no vlan tag"

let no_vlan layers =
  if List.exists (function Netpkt.Pkt.Vlan _ -> true | _ -> false) layers then
    Error "unexpected vlan tag"
  else Ok ()

let ( >=> ) f g layers = Result.bind (f layers) (fun () -> g layers)

let routed layers =
  expect_ipv4
    (fun h ->
      if h.Netpkt.Ipv4.ttl = 63 then Ok ()
      else Error (Printf.sprintf "ttl %d, expected 63" h.Netpkt.Ipv4.ttl))
    layers
  |> fun r ->
  Result.bind r (fun () ->
      match Netpkt.Pkt.find_eth layers with
      | Some e when Netpkt.Mac.equal e.Netpkt.Eth.dst router_nexthop_mac -> Ok ()
      | Some e ->
          Error
            (Printf.sprintf "dst mac %s not rewritten"
               (Netpkt.Mac.to_string e.Netpkt.Eth.dst))
      | None -> Error "no eth")

let strategies =
  [
    ("exhaustive", Placement.Exhaustive);
    ("greedy", Placement.Greedy);
    ("anneal", Placement.default_anneal);
    ("naive", Placement.Naive);
  ]

let for_each_strategy f () =
  List.iter
    (fun (name, strategy) ->
      let compiled, rt = build strategy in
      f name compiled rt)
    strategies

(* Green path: classifier -> router. *)
let test_green_path =
  for_each_strategy (fun name _ rt ->
      match
        Ptf.send_expect rt ~in_port:0
          (pkt (flow ~src:"203.0.113.5" ~dst:(ip "10.0.3.77") ()))
          ~expect:(Ptf.Emitted_on exit_port)
          ~check:(no_sfc >=> no_vlan >=> routed)
          ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ "/green: " ^ e))

(* Orange path: classifier -> vgw -> router (tenant 2, vid 102). *)
let test_orange_path =
  for_each_strategy (fun name _ rt ->
      match
        Ptf.send_expect rt ~in_port:0
          (pkt (flow ~src:"203.0.113.6" ~dst:(ip "10.0.2.14") ()))
          ~expect:(Ptf.Emitted_on exit_port)
          ~check:(no_sfc >=> vlan_tag 102 >=> routed)
          ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ "/orange: " ^ e))

(* Red path: classifier -> fw -> vgw -> lb -> router. *)
let test_red_path =
  for_each_strategy (fun name _ rt ->
      match
        Ptf.send_expect rt ~in_port:0
          (pkt (flow ~src:"203.0.113.7" ~dst:Nflib.Catalog.tenant1_vip ()))
          ~expect:(Ptf.Emitted_on exit_port)
          ~check:
            (no_sfc >=> vlan_tag 101 >=> routed
            >=> expect_ipv4 (fun h ->
                    if
                      List.exists
                        (Netpkt.Ip4.equal h.Netpkt.Ipv4.dst)
                        Nflib.Catalog.tenant1_backends
                    then Ok ()
                    else
                      Error
                        (Printf.sprintf "dst %s is not a backend"
                           (Netpkt.Ip4.to_string h.Netpkt.Ipv4.dst))))
          ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ "/red: " ^ e))

(* The firewall blocks the blocklisted subnet on the red path only. *)
let test_firewall_blocks =
  for_each_strategy (fun name _ rt ->
      (match
         Ptf.send_expect rt ~in_port:0
           (pkt (flow ~src:"198.51.100.9" ~dst:Nflib.Catalog.tenant1_vip ()))
           ~expect:Ptf.Dropped ()
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ "/blocked: " ^ e));
      (* The same source on the green path (no firewall) passes. *)
      match
        Ptf.send_expect rt ~in_port:0
          (pkt (flow ~src:"198.51.100.9" ~dst:(ip "10.0.3.1") ()))
          ~expect:(Ptf.Emitted_on exit_port) ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ "/green-not-filtered: " ^ e))

let test_telnet_blocked =
  for_each_strategy (fun name _ rt ->
      match
        Ptf.send_expect rt ~in_port:0
          (pkt (flow ~src:"203.0.113.8" ~dst:Nflib.Catalog.tenant1_vip ~dst_port:23 ()))
          ~expect:Ptf.Dropped ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ "/telnet: " ^ e))

let test_ttl_expiry_dropped =
  for_each_strategy (fun name _ rt ->
      match
        Ptf.send_expect rt ~in_port:0
          (pkt ~ttl:1 (flow ~src:"203.0.113.5" ~dst:(ip "10.0.3.77") ()))
          ~expect:Ptf.Dropped ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ "/ttl: " ^ e))

let test_unclassified_to_cpu =
  for_each_strategy (fun name _ rt ->
      match
        Ptf.send_expect rt ~in_port:0
          (pkt (flow ~src:"203.0.113.5" ~dst:(ip "192.0.2.200") ()))
          ~expect:Ptf.To_cpu ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ "/unclassified: " ^ e))

(* UDP traffic takes the same paths. *)
let test_udp_on_orange =
  for_each_strategy (fun name _ rt ->
      match
        Ptf.send_expect rt ~in_port:0
          (pkt
             (flow ~src:"203.0.113.6" ~dst:(ip "10.0.2.30")
                ~proto:Netpkt.Ipv4.proto_udp ~dst_port:53 ()))
          ~expect:(Ptf.Emitted_on exit_port)
          ~check:(no_sfc >=> vlan_tag 102)
          ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ "/udp: " ^ e))

(* Payload integrity across the whole chain. *)
let test_payload_preserved =
  for_each_strategy (fun name _ rt ->
      let payload = "dejavu-payload-0123456789" in
      let p =
        match pkt (flow ~src:"203.0.113.5" ~dst:(ip "10.0.3.77") ()) with
        | layers -> layers @ [ Netpkt.Pkt.Payload payload ]
      in
      match
        Ptf.send_expect rt ~in_port:0 p ~expect:(Ptf.Emitted_on exit_port)
          ~check:(fun layers ->
            if
              List.exists
                (function Netpkt.Pkt.Payload s -> s = payload | _ -> false)
                layers
            then Ok ()
            else Error "payload lost or corrupted")
          ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (name ^ "/payload: " ^ e))

(* The compiled deployment respects the §5 capacity setup and reports
   sane Table-1-style numbers. *)
let test_report_sanity () =
  let compiled, _ = build Placement.Exhaustive in
  let rows = Compiler.framework_report compiled in
  let pct name =
    (List.find (fun (r : Compiler.report_row) -> r.Compiler.resource = name) rows)
      .Compiler.pct
  in
  check Alcotest.bool "stage overhead is the dominant cost (paper: 20.8%)" true
    (pct "Stages" > 5.0 && pct "Stages" < 40.0);
  check Alcotest.bool "TCAM overhead is zero (paper: 0%)" true (pct "TCAM" = 0.0);
  check Alcotest.bool "SRAM overhead is tiny (paper: 0.2%)" true (pct "SRAM" < 2.0);
  check Alcotest.bool "table-id overhead is small (paper: 4.2%)" true
    (pct "Table IDs" < 10.0);
  List.iter
    (fun (r : Compiler.report_row) ->
      check Alcotest.bool (r.Compiler.resource ^ " within capacity") true
        (r.Compiler.pct >= 0.0 && r.Compiler.pct <= 100.0))
    rows

let test_objective_zero_recircs_feasible () =
  (* The Fig. 2 policy fits this chip without recirculation when placed
     optimally. *)
  let compiled, _ = build Placement.Exhaustive in
  check Alcotest.bool "objective small" true (compiled.Compiler.objective <= 1.0)

let test_mirroring_to_analysis_port () =
  let input =
    {
      (Nflib.Catalog.edge_cloud_input ~strategy:Placement.Greedy ~exit_port
         ~extended:true ())
      with
      Compiler.mirror_port = Some 7;
    }
  in
  match Compiler.compile input with
  | Error e -> Alcotest.fail e
  | Ok compiled -> (
      let rt = Runtime.create compiled in
      Nflib.Catalog.attach_handlers rt compiled;
      (* The monitoring chain's tap sets the mirror flag. *)
      match
        Ptf.send rt ~in_port:0
          (pkt (flow ~src:"203.0.113.9" ~dst:(ip "10.0.4.50") ()))
      with
      | Error e -> Alcotest.fail e
      | Ok o ->
          check Alcotest.bool "a copy reached the analysis port" true
            (List.exists (fun (p, _) -> p = 7) o.Ptf.runtime.Runtime.mirrored);
          (* Untapped traffic produces no copies. *)
          let o2 =
            Result.get_ok
              (Ptf.send rt ~in_port:0
                 (pkt (flow ~src:"203.0.113.9" ~dst:(ip "10.0.3.50") ())))
          in
          check Alcotest.int "no copies for untapped traffic" 0
            (List.length o2.Ptf.runtime.Runtime.mirrored))

let test_extended_chains_compile () =
  let input =
    Nflib.Catalog.edge_cloud_input ~strategy:Placement.default_anneal ~exit_port
      ~extended:true ()
  in
  match Compiler.compile input with
  | Error e -> Alcotest.fail e
  | Ok compiled ->
      let rt = Runtime.create compiled in
      Nflib.Catalog.attach_handlers rt compiled;
      (* The monitoring chain: tapped and DSCP-marked. *)
      (match
         Ptf.send_expect rt ~in_port:0
           (pkt (flow ~src:"203.0.113.9" ~dst:(ip "10.0.4.50") ()))
           ~expect:(Ptf.Emitted_on exit_port)
           ~check:
             (no_sfc
             >=> expect_ipv4 (fun h ->
                     if h.Netpkt.Ipv4.dscp = 18 then Ok ()
                     else Error (Printf.sprintf "dscp %d" h.Netpkt.Ipv4.dscp)))
           ()
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("monitor: " ^ e));
      (* The original three paths still work. *)
      match
        Ptf.send_expect rt ~in_port:0
          (pkt (flow ~src:"203.0.113.9" ~dst:(ip "10.0.3.50") ()))
          ~expect:(Ptf.Emitted_on exit_port) ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("green-with-extended: " ^ e)

let test_multiple_input_ports () =
  let _, rt = build Placement.Exhaustive in
  List.iter
    (fun in_port ->
      match
        Ptf.send_expect rt ~in_port
          (pkt (flow ~src:"203.0.113.5" ~dst:(ip "10.0.3.77") ()))
          ~expect:(Ptf.Emitted_on exit_port) ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "port %d: %s" in_port e))
    [ 0; 2; 7; 15 ]

(* Regression: when the punting NF sits on a pipelet the nominal path
   reaches only mid-pass, the reinjected packet's (path, index) state
   needs its own branching entries (the "resume" entries). Pin the LB to
   egress 1 to force the awkward placement. *)
let test_cpu_resume_with_lb_on_far_egress () =
  let input =
    {
      (Nflib.Catalog.edge_cloud_input ~strategy:Placement.Greedy ~exit_port ())
      with
      Compiler.pinned =
        [ ("lb", { Asic.Pipelet.pipeline = 1; kind = Asic.Pipelet.Egress }) ];
    }
  in
  match Compiler.compile input with
  | Error e -> Alcotest.fail e
  | Ok compiled -> (
      let rt = Runtime.create compiled in
      Nflib.Catalog.attach_handlers rt compiled;
      match
        Ptf.send_expect rt ~in_port:0
          (pkt (flow ~src:"203.0.113.40" ~dst:Nflib.Catalog.tenant1_vip ()))
          ~expect:(Ptf.Emitted_on exit_port)
          ~check:
            (expect_ipv4 (fun h ->
                 if
                   List.exists
                     (Netpkt.Ip4.equal h.Netpkt.Ipv4.dst)
                     Nflib.Catalog.tenant1_backends
                 then Ok ()
                 else Error "not load balanced"))
          ()
      with
      | Ok o ->
          check Alcotest.int "one CPU round trip" 1
            o.Ptf.runtime.Runtime.counters.Runtime.Counters.cpu_round_trips
      | Error e -> Alcotest.fail e)

let test_loopback_ports_refuse_traffic () =
  let compiled, _ = build Placement.Exhaustive in
  (* Pipeline 1's ports are loopback in the §5 setup. *)
  check Alcotest.bool "port 16 refuses external traffic" true
    (Result.is_error
       (Asic.Chip.inject compiled.Compiler.chip ~in_port:16
          (Netpkt.Pkt.encode (pkt (flow ~src:"1.1.1.1" ~dst:(ip "10.0.3.1") ())))))

let () =
  Alcotest.run "integration"
    [
      ( "paths",
        [
          Alcotest.test_case "green" `Quick test_green_path;
          Alcotest.test_case "orange" `Quick test_orange_path;
          Alcotest.test_case "red" `Quick test_red_path;
          Alcotest.test_case "udp orange" `Quick test_udp_on_orange;
          Alcotest.test_case "payload integrity" `Quick test_payload_preserved;
          Alcotest.test_case "multiple input ports" `Quick test_multiple_input_ports;
        ] );
      ( "policy",
        [
          Alcotest.test_case "firewall blocks" `Quick test_firewall_blocks;
          Alcotest.test_case "telnet blocked" `Quick test_telnet_blocked;
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry_dropped;
          Alcotest.test_case "unclassified to cpu" `Quick test_unclassified_to_cpu;
          Alcotest.test_case "loopback ports closed" `Quick
            test_loopback_ports_refuse_traffic;
          Alcotest.test_case "cpu resume, lb on far egress" `Quick
            test_cpu_resume_with_lb_on_far_egress;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "report sanity" `Quick test_report_sanity;
          Alcotest.test_case "objective" `Quick test_objective_zero_recircs_feasible;
          Alcotest.test_case "extended chains" `Quick test_extended_chains_compile;
          Alcotest.test_case "mirroring" `Quick test_mirroring_to_analysis_port;
        ] );
    ]
