(* Telemetry subsystem tests: histogram bucket edges, flight-recorder
   ring wraparound, registry snapshots/deltas, the batch error log, the
   observation-only property (Counters/Journeys instrumentation never
   changes packet outputs or traces), and journey capture. *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- histogram ------------------------------------------------------ *)

let test_histogram_bucket_edges () =
  let b = Telemetry.Histogram.bucket_of in
  check Alcotest.int "0 -> bucket 0" 0 (b 0);
  check Alcotest.int "negative -> bucket 0" 0 (b (-5));
  check Alcotest.int "1 -> bucket 1" 1 (b 1);
  check Alcotest.int "2 -> bucket 2" 2 (b 2);
  check Alcotest.int "3 -> bucket 2" 2 (b 3);
  check Alcotest.int "4 -> bucket 3" 3 (b 4);
  check Alcotest.int "7 -> bucket 3" 3 (b 7);
  check Alcotest.int "8 -> bucket 4" 4 (b 8);
  check Alcotest.int "1023 -> bucket 10" 10 (b 1023);
  check Alcotest.int "1024 -> bucket 11" 11 (b 1024);
  (* 63-bit OCaml ints top out at 62 significant bits, safely inside
     the 64-bucket range. *)
  check Alcotest.int "max_int lands in bucket 62" 62 (b max_int);
  check Alcotest.bool "max_int within range" true
    (b max_int < Telemetry.Histogram.n_buckets);
  (* Each bucket's bounds must contain exactly the values that map to
     it: check both edges of every finite bucket. *)
  for k = 1 to 20 do
    let lo, hi = Telemetry.Histogram.bounds k in
    check Alcotest.int (Printf.sprintf "lo edge of bucket %d" k) k (b lo);
    check Alcotest.int (Printf.sprintf "hi edge of bucket %d" k) k (b hi)
  done

let test_histogram_observe () =
  let h = Telemetry.Histogram.create () in
  check Alcotest.int "empty count" 0 (Telemetry.Histogram.count h);
  check (Alcotest.float 0.0) "empty mean" 0.0 (Telemetry.Histogram.mean h);
  check Alcotest.int "empty quantile" 0 (Telemetry.Histogram.quantile h 0.5);
  List.iter (Telemetry.Histogram.observe h) [ 1; 2; 3; 100; 1000 ];
  check Alcotest.int "count" 5 (Telemetry.Histogram.count h);
  check Alcotest.int "sum" 1106 (Telemetry.Histogram.sum h);
  check (Alcotest.float 0.01) "mean" 221.2 (Telemetry.Histogram.mean h);
  (* p50 of 5 samples is the 3rd: value 3 lives in bucket 2 = [2,3]. *)
  check Alcotest.int "p50 upper bound" 3 (Telemetry.Histogram.quantile h 0.5);
  check Alcotest.int "p100 upper bound" 1023
    (Telemetry.Histogram.quantile h 1.0);
  let nz = Telemetry.Histogram.nonzero h in
  check Alcotest.int "4 nonzero buckets" 4 (List.length nz);
  let h2 = Telemetry.Histogram.create () in
  Telemetry.Histogram.observe h2 1;
  Telemetry.Histogram.merge_into ~dst:h2 h;
  check Alcotest.int "merged count" 6 (Telemetry.Histogram.count h2);
  Telemetry.Histogram.reset h;
  check Alcotest.int "reset count" 0 (Telemetry.Histogram.count h);
  check Alcotest.int "reset sum" 0 (Telemetry.Histogram.sum h)

(* --- ring ----------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Telemetry.Ring.create 4 in
  check Alcotest.int "capacity" 4 (Telemetry.Ring.capacity r);
  check (Alcotest.list Alcotest.int) "empty" [] (Telemetry.Ring.to_list r);
  check (Alcotest.option Alcotest.int) "no last" None (Telemetry.Ring.last r);
  for i = 0 to 9 do
    Telemetry.Ring.push r i
  done;
  check Alcotest.int "length capped" 4 (Telemetry.Ring.length r);
  check Alcotest.int "pushed counts everything" 10 (Telemetry.Ring.pushed r);
  check (Alcotest.list Alcotest.int) "oldest evicted, oldest-first order"
    [ 6; 7; 8; 9 ] (Telemetry.Ring.to_list r);
  check (Alcotest.option Alcotest.int) "last" (Some 9) (Telemetry.Ring.last r);
  Telemetry.Ring.clear r;
  check Alcotest.int "cleared" 0 (Telemetry.Ring.length r);
  Telemetry.Ring.push r 42;
  check (Alcotest.list Alcotest.int) "usable after clear" [ 42 ]
    (Telemetry.Ring.to_list r);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity < 1") (fun () ->
      ignore (Telemetry.Ring.create 0))

let test_ring_exact_capacity () =
  let r = Telemetry.Ring.create 3 in
  List.iter (Telemetry.Ring.push r) [ 1; 2; 3 ];
  check (Alcotest.list Alcotest.int) "full, nothing evicted" [ 1; 2; 3 ]
    (Telemetry.Ring.to_list r);
  Telemetry.Ring.push r 4;
  check (Alcotest.list Alcotest.int) "one evicted" [ 2; 3; 4 ]
    (Telemetry.Ring.to_list r)

(* --- registry ------------------------------------------------------- *)

let test_registry_snapshot_delta () =
  let reg = Telemetry.Registry.create () in
  let a = Telemetry.Registry.counter reg "a" in
  let a' = Telemetry.Registry.counter reg "a" in
  check Alcotest.bool "find-or-create returns the same ref" true (a == a');
  incr a;
  incr a;
  let h = Telemetry.Registry.histogram reg "h" in
  Telemetry.Histogram.observe h 5;
  let s1 = Telemetry.Registry.snapshot reg in
  (match List.assoc "a" s1 with
  | Telemetry.Registry.Vcount n -> check Alcotest.int "counter value" 2 n
  | _ -> Alcotest.fail "a is not a counter");
  incr a;
  Telemetry.Histogram.observe h 6;
  Telemetry.Histogram.observe h 100;
  let s2 = Telemetry.Registry.snapshot reg in
  let d = Telemetry.Registry.delta ~since:s1 s2 in
  (match List.assoc "a" d with
  | Telemetry.Registry.Vcount n -> check Alcotest.int "delta counter" 1 n
  | _ -> Alcotest.fail "a is not a counter in delta");
  (match List.assoc "h" d with
  | Telemetry.Registry.Vhist { count; _ } ->
      check Alcotest.int "delta hist count" 2 count
  | _ -> Alcotest.fail "h is not a histogram in delta");
  let json = Telemetry.Registry.to_json s2 in
  check Alcotest.bool "json mentions both" true
    (let has sub =
       let n = String.length sub and m = String.length json in
       let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
       go 0
     in
     has "\"a\": 3" && has "\"h\"" && has "\"count\": 3");
  Telemetry.Registry.reset reg;
  check Alcotest.int "reset zeroes counters" 0 !a;
  check Alcotest.int "reset zeroes histograms" 0 (Telemetry.Histogram.count h)

(* --- the data-plane workload ---------------------------------------- *)

let ip = Netpkt.Ip4.of_string_exn
let mac = Netpkt.Mac.of_string_exn

let flow ~src ~dst ~src_port ~dst_port =
  Netpkt.Pkt.encode
    (Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
       ~dst_mac:(mac "02:00:00:00:00:02")
       {
         Netpkt.Flow.src = ip src;
         dst;
         proto = Netpkt.Ipv4.proto_tcp;
         src_port;
         dst_port;
       })

(* kind 0 = green (router only), 1 = orange (vgw), 2 = red (full chain
   through the LB, punting new flows to the CPU). *)
let frame_of_kind kind i =
  match kind mod 3 with
  | 0 ->
      flow ~src:"203.0.113.7"
        ~dst:(ip (Printf.sprintf "10.0.3.%d" (1 + (i mod 200))))
        ~src_port:(40000 + (i mod 97)) ~dst_port:443
  | 1 ->
      flow ~src:"203.0.113.8"
        ~dst:(ip (Printf.sprintf "10.0.2.%d" (1 + (i mod 200))))
        ~src_port:(41000 + (i mod 89)) ~dst_port:80
  | _ ->
      flow ~src:"203.0.113.9" ~dst:Nflib.Catalog.tenant1_vip
        ~src_port:(50000 + (i mod 61)) ~dst_port:80

let fresh_runtime () =
  let compiled =
    Result.get_ok (Compiler.compile (Nflib.Catalog.edge_cloud_input ()))
  in
  let rt = Runtime.create compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  rt

(* --- observation-only: telemetry never changes behavior ------------- *)

(* The pinned property: for any workload, a Counters (or Journeys) run
   produces byte-identical outputs — same digest, same verdict counts,
   same error log — as an uninstrumented run. *)
let prop_observation_only =
  QCheck.Test.make ~name:"Counters/Journeys telemetry = observation only"
    ~count:12
    QCheck.(
      pair (small_list (int_bound 2)) (int_bound 1))
    (fun (kinds, journeys) ->
      let workload = List.mapi (fun i k -> (0, frame_of_kind k i)) kinds in
      let run level =
        let rt = fresh_runtime () in
        Runtime.set_telemetry rt level;
        Runtime.process_batch rt workload
      in
      let off = run Telemetry.Level.Off in
      let on =
        run
          (if journeys = 1 then Telemetry.Level.Journeys
           else Telemetry.Level.Counters)
      in
      off = on)

let test_traces_unchanged () =
  let frame = frame_of_kind 0 7 in
  let walk level =
    let rt = fresh_runtime () in
    Runtime.set_telemetry rt level;
    match Asic.Chip.inject (Runtime.chip rt) ~in_port:0 frame with
    | Ok r -> r.Asic.Chip.trace
    | Error e -> Alcotest.fail e
  in
  let off = walk Telemetry.Level.Off in
  check Alcotest.bool "trace not empty" true (off <> []);
  check Alcotest.bool "Counters trace identical" true
    (off = walk Telemetry.Level.Counters);
  check Alcotest.bool "Journeys trace identical" true
    (off = walk Telemetry.Level.Journeys)

(* --- counters through the chip -------------------------------------- *)

let count_of snap name =
  match List.assoc_opt name snap with
  | Some (Telemetry.Registry.Vcount n) -> n
  | Some _ -> Alcotest.fail (name ^ " is not a counter")
  | None -> Alcotest.fail (name ^ " not in snapshot")

let test_counters_content () =
  let rt = fresh_runtime () in
  Runtime.set_telemetry rt Telemetry.Level.Counters;
  let n = 30 in
  let workload = List.init n (fun i -> (0, frame_of_kind i i)) in
  let stats = Runtime.process_batch rt workload in
  check Alcotest.int "all emitted" n stats.Runtime.emitted;
  let o = Option.get (Runtime.telemetry rt) in
  let snap = Observe.snapshot o (Runtime.chip rt) in
  check Alcotest.int "rx on port 0" n (count_of snap "port.0.rx");
  check Alcotest.int "tx on port 1" n (count_of snap "port.1.tx");
  check Alcotest.int "emitted counter" n (count_of snap "verdict.emitted");
  (* The classifier sees every packet; 10 of 30 are red (via the LB). *)
  check Alcotest.int "classifier applies" n
    (count_of snap "nf.classifier.applies");
  check Alcotest.int "router applies" n (count_of snap "nf.router.applies");
  check Alcotest.int "classifier table hits" n
    (count_of snap "table.ingress_0.classifier__classify.hits");
  check Alcotest.int "one CPU punt per red flow" 10
    (count_of snap "path.cpu_punts");
  (* Per-entry hits sum to the table's hit counter. *)
  let entry_sum =
    List.fold_left
      (fun acc (where, hits) ->
        if where = "ingress 0/classifier__classify" then
          List.fold_left (fun a (_, h) -> a + h) acc hits
        else acc)
      0
      (Observe.table_entry_hits (Runtime.chip rt))
  in
  check Alcotest.int "entry hits sum to table hits" n entry_sum;
  (* The ns histogram saw every packet. *)
  (match List.assoc_opt "runtime.ns_per_packet" snap with
  | Some (Telemetry.Registry.Vhist { count; sum; _ }) ->
      check Alcotest.int "histogram count" n count;
      check Alcotest.bool "nonzero time" true (sum > 0)
  | _ -> Alcotest.fail "runtime.ns_per_packet missing");
  (* Off detaches: table stats discarded. *)
  Runtime.set_telemetry rt Telemetry.Level.Off;
  check Alcotest.bool "telemetry off" true (Runtime.telemetry rt = None);
  let all_off =
    List.for_all
      (fun pl ->
        List.for_all
          (fun tbl -> P4ir.Table.stats tbl = None)
          (Asic.Pipelet.tables pl))
      (Asic.Chip.pipelets (Runtime.chip rt))
  in
  check Alcotest.bool "table stats disabled" true all_off

(* --- journeys ------------------------------------------------------- *)

let test_journey_capture () =
  let rt = fresh_runtime () in
  Runtime.set_telemetry ~ring_capacity:8 rt Telemetry.Level.Journeys;
  let n = 12 in
  let workload = List.init n (fun i -> (0, frame_of_kind 2 i)) in
  ignore (Runtime.process_batch rt workload);
  let o = Option.get (Runtime.telemetry rt) in
  check Alcotest.int "ring keeps the last 8" 8
    (List.length (Observe.journeys o));
  check Alcotest.int "every packet was recorded" n
    (Telemetry.Ring.pushed (Observe.ring o));
  let j = Option.get (Telemetry.Ring.last (Observe.ring o)) in
  check Alcotest.int "ids are sequential" (n - 1) j.Telemetry.Journey.id;
  check Alcotest.int "in_port recorded" 0 j.Telemetry.Journey.in_port;
  check Alcotest.bool "emitted verdict" true
    (String.length j.Telemetry.Journey.verdict >= 7
    && String.sub j.Telemetry.Journey.verdict 0 7 = "emitted");
  check Alcotest.bool "has hops" true (j.Telemetry.Journey.hops <> []);
  let hop = List.hd j.Telemetry.Journey.hops in
  check Alcotest.string "first hop is ingress 0" "ingress 0"
    hop.Telemetry.Journey.pipelet;
  check Alcotest.bool "hop saw the classifier" true
    (List.mem "classifier" hop.Telemetry.Journey.nfs);
  check Alcotest.bool "hop records tables with actions" true
    (List.exists
       (fun (t, a, hit) -> t = "classifier__classify" && a = "set_path" && hit)
       hop.Telemetry.Journey.tables);
  (* The parser path (valid headers) rides in hop meta. *)
  check Alcotest.bool "parser path includes eth" true
    (List.mem "eth" hop.Telemetry.Journey.meta.Telemetry.Journey.headers);
  (* Red chain carries the SFC header: some hop knows its position. *)
  check Alcotest.bool "an SFC position was captured" true
    (List.exists
       (fun (h : Telemetry.Journey.hop) ->
         h.Telemetry.Journey.meta.Telemetry.Journey.sfc <> None)
       j.Telemetry.Journey.hops);
  (* Journey JSON renders without raising and mentions the verdict. *)
  let js = Telemetry.Journey.to_json j in
  check Alcotest.bool "json has verdict" true
    (let has sub =
       let n = String.length sub and m = String.length js in
       let rec go i = i + n <= m && (String.sub js i n = sub || go (i + 1)) in
       go 0
     in
     has "\"verdict\"" && has "\"hops\"")

(* --- batch error log ------------------------------------------------- *)

let test_batch_error_log () =
  let rt = fresh_runtime () in
  let bad_port = 999 in
  let good i = (0, frame_of_kind 0 i) in
  let bad i = (bad_port, frame_of_kind 0 i) in
  let workload =
    List.concat
      [
        [ good 0 ];
        List.init 12 bad;
        [ good 1 ];
      ]
  in
  let stats = Runtime.process_batch rt workload in
  check Alcotest.int "all errors counted" 12 stats.Runtime.errors;
  check Alcotest.int "log capped at max_error_log" Runtime.max_error_log
    (List.length stats.Runtime.error_log);
  List.iter
    (fun (port, msg) ->
      check Alcotest.int "offending in_port recorded" bad_port port;
      check Alcotest.bool "message preserved" true
        (String.length msg > 0
        && String.length msg >= 3
        && msg <> ""))
    stats.Runtime.error_log;
  check Alcotest.int "good packets still processed" 2 stats.Runtime.emitted

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "observe/quantile/merge" `Quick
            test_histogram_observe;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "exact capacity" `Quick test_ring_exact_capacity;
        ] );
      ( "registry",
        [
          Alcotest.test_case "snapshot and delta" `Quick
            test_registry_snapshot_delta;
        ] );
      ( "observation_only",
        [
          qtest prop_observation_only;
          Alcotest.test_case "traces unchanged" `Quick test_traces_unchanged;
        ] );
      ( "counters",
        [ Alcotest.test_case "content" `Quick test_counters_content ] );
      ( "journeys",
        [ Alcotest.test_case "capture" `Quick test_journey_capture ] );
      ( "batch",
        [ Alcotest.test_case "error log" `Quick test_batch_error_log ] );
    ]
