(* The bounded state store: QCheck differential equivalence against an
   unbounded reference model (LRU + TTL + eviction-callback ordering),
   snapshot/restore round trips, shard migration, and the runtime-level
   contracts — live re-shard digests equal cold-built ones, and store
   eviction invalidates the flow cache's memoized verdict for the
   evicted flow. *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let ip = Netpkt.Ip4.of_string_exn
let pfx = Netpkt.Ip4.prefix_of_string_exn

(* ------------------------------------------------------------------ *)
(* Reference model: an unbounded-by-construction assoc list in MRU
   order, with the same capacity/TTL policy applied literally from the
   spec — what the intrusive-list implementation must agree with. *)

module Model = struct
  type t = {
    cfg : State_store.config;
    mutable now : int64;
    mutable entries : (int * int * int64) list;  (* (k, v, stamp), MRU first *)
    mutable log : (State_store.evict_reason * int * int) list;  (* reversed *)
  }

  let create cfg = { cfg; now = 0L; entries = []; log = [] }

  let expired m (_, _, stamp) =
    m.cfg.State_store.ttl_ns > 0L
    && Int64.sub m.now stamp >= m.cfg.State_store.ttl_ns

  let evict m reason (k, v, _) = m.log <- (reason, k, v) :: m.log

  let insert m k v =
    if List.exists (fun (k', _, _) -> k' = k) m.entries then
      m.entries <-
        (k, v, m.now) :: List.filter (fun (k', _, _) -> k' <> k) m.entries
    else begin
      while List.length m.entries >= m.cfg.State_store.capacity do
        let tail = List.nth m.entries (List.length m.entries - 1) in
        evict m State_store.Capacity tail;
        m.entries <-
          List.filteri (fun i _ -> i < List.length m.entries - 1) m.entries
      done;
      m.entries <- (k, v, m.now) :: m.entries
    end

  let find m k =
    match List.find_opt (fun (k', _, _) -> k' = k) m.entries with
    | None -> None
    | Some ((_, v, _) as e) ->
        if expired m e then begin
          evict m State_store.Expired e;
          m.entries <- List.filter (fun (k', _, _) -> k' <> k) m.entries;
          None
        end
        else begin
          m.entries <-
            (k, v, m.now) :: List.filter (fun (k', _, _) -> k' <> k) m.entries;
          Some v
        end

  let remove m k = m.entries <- List.filter (fun (k', _, _) -> k' <> k) m.entries

  let advance m ns =
    m.now <- Int64.add m.now ns;
    if m.cfg.State_store.ttl_ns > 0L then begin
      (* Oldest-touched first = from the back of the MRU list. *)
      let rec sweep () =
        match List.rev m.entries with
        | tail :: _ when expired m tail ->
            evict m State_store.Expired tail;
            let (k, _, _) = tail in
            remove m k;
            sweep ()
        | _ -> ()
      in
      sweep ()
    end

  (* Oldest-first, like State_store.fold. *)
  let contents m = List.rev_map (fun (k, v, _) -> (k, v)) m.entries
end

type op = Insert of int * int | Find of int | Remove of int | Advance of int64

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Insert (k, v)) (int_bound 15) (int_bound 99));
        (4, map (fun k -> Find k) (int_bound 15));
        (1, map (fun k -> Remove k) (int_bound 15));
        (2, map (fun n -> Advance (Int64.of_int n)) (int_bound 3));
      ])

let pp_op = function
  | Insert (k, v) -> Printf.sprintf "insert %d %d" k v
  | Find k -> Printf.sprintf "find %d" k
  | Remove k -> Printf.sprintf "remove %d" k
  | Advance n -> Printf.sprintf "advance %Ld" n

let trace_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 120) op_gen)

(* One differential run: the store (with its eviction log recorded
   through the typed on_evict hook) against the model, comparing every
   find result, the final contents in LRU order, and the exact eviction
   sequence with reasons. *)
let differential cfg ops =
  let store = State_store.create cfg in
  let log = ref [] in
  let tbl =
    State_store.table store ~name:"t" ~key:State_store.Conv.int
      ~value:State_store.Conv.int
      ~on_evict:(fun reason k v -> log := (reason, k, v) :: !log)
      ()
  in
  let m = Model.create (State_store.config store) in
  let ok =
    List.for_all
      (fun op ->
        match op with
        | Insert (k, v) ->
            State_store.insert tbl k v;
            Model.insert m k v;
            true
        | Find k -> State_store.find tbl k = Model.find m k
        | Remove k ->
            State_store.remove tbl k;
            Model.remove m k;
            true
        | Advance ns ->
            let n = State_store.advance store ns in
            let before = List.length m.Model.log in
            Model.advance m ns;
            n = List.length m.Model.log - before)
      ops
  in
  ok
  && State_store.now store = m.Model.now
  && State_store.length tbl = List.length m.Model.entries
  && State_store.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.rev
     = Model.contents m
  && !log = m.Model.log

let prop_bounded_equals_reference =
  QCheck.Test.make
    ~name:"bounded store = reference model (LRU at capacity 4, TTL 5)"
    ~count:300 trace_arb
    (differential { State_store.capacity = 4; ttl_ns = 5L })

let prop_large_capacity_equals_reference =
  QCheck.Test.make
    ~name:"under-capacity store = unbounded reference (no TTL)" ~count:300
    trace_arb
    (differential { State_store.capacity = 1024; ttl_ns = 0L })

(* --- eviction-callback ordering (pinned, not just modeled) --------- *)

let test_eviction_callback_order () =
  let store = State_store.create { State_store.capacity = 3; ttl_ns = 0L } in
  let order = ref [] in
  let tbl =
    State_store.table store ~name:"t" ~key:State_store.Conv.int
      ~value:State_store.Conv.string
      ~on_evict:(fun reason k _ ->
        check Alcotest.bool "capacity reason" true (reason = State_store.Capacity);
        order := k :: !order)
      ()
  in
  List.iter (fun k -> State_store.insert tbl k "v") [ 1; 2; 3 ];
  (* Touch 1 so 2 becomes the LRU victim. *)
  ignore (State_store.find tbl 1);
  List.iter (fun k -> State_store.insert tbl k "v") [ 4; 5 ];
  check Alcotest.(list int) "LRU victims in age order" [ 2; 3 ] (List.rev !order);
  check Alcotest.int "bound holds" 3 (State_store.length tbl);
  check Alcotest.int "evictions counted" 2
    (State_store.stats tbl).State_store.evictions

let test_ttl_expiry () =
  let store = State_store.create { State_store.capacity = 8; ttl_ns = 10L } in
  let expired = ref [] in
  let tbl =
    State_store.table store ~name:"t" ~key:State_store.Conv.int
      ~value:State_store.Conv.int
      ~on_evict:(fun reason k _ ->
        if reason = State_store.Expired then expired := k :: !expired)
      ()
  in
  State_store.insert tbl 1 10;
  ignore (State_store.advance store 6L);
  State_store.insert tbl 2 20;
  (* 1 is 6ns old, 2 is fresh; +5 pushes only 1 past the 10ns TTL. *)
  check Alcotest.int "one expired on the sweep" 1 (State_store.advance store 5L);
  check Alcotest.(list int) "the oldest one" [ 1 ] !expired;
  check Alcotest.(option int) "expired entry misses" None (State_store.find tbl 1);
  check Alcotest.(option int) "fresh entry survives" (Some 20)
    (State_store.find tbl 2);
  check Alcotest.int "expirations counted" 1
    (State_store.stats tbl).State_store.expirations

(* --- snapshot / restore -------------------------------------------- *)

let build_store ops =
  let store = State_store.create { State_store.capacity = 16; ttl_ns = 50L } in
  let tbl =
    State_store.table store ~name:"flows" ~key:State_store.Conv.int
      ~value:State_store.Conv.string ()
  in
  let tbl2 =
    State_store.table store ~name:"counts" ~key:State_store.Conv.string
      ~value:State_store.Conv.int64 ()
  in
  List.iter
    (fun op ->
      match op with
      | Insert (k, v) ->
          State_store.insert tbl k (string_of_int v);
          State_store.insert tbl2 (string_of_int (k mod 5)) (Int64.of_int v)
      | Find k -> ignore (State_store.find tbl k)
      | Remove k -> State_store.remove tbl k
      | Advance ns -> ignore (State_store.advance store ns))
    ops;
  (store, tbl)

let prop_snapshot_string_roundtrip =
  QCheck.Test.make ~name:"snapshot -> string -> restore is the identity"
    ~count:200 trace_arb (fun ops ->
      let store, tbl = build_store ops in
      let text = State_store.snapshot_to_string (State_store.snapshot store) in
      let snap =
        match State_store.snapshot_of_string text with
        | Ok s -> s
        | Error e -> QCheck.Test.fail_reportf "parse: %s" e
      in
      let fresh =
        State_store.create { State_store.capacity = 16; ttl_ns = 50L }
      in
      State_store.restore fresh snap;
      let ftbl =
        State_store.table fresh ~name:"flows" ~key:State_store.Conv.int
          ~value:State_store.Conv.string ()
      in
      State_store.now fresh = State_store.now store
      && State_store.digest [| fresh |] = State_store.digest [| store |]
      && State_store.fold (fun k v acc -> (k, v) :: acc) ftbl []
         = State_store.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* A warm restart continues aging from the snapshot clock: entries old
   at snapshot time expire on the restored store's first sweep. *)
let test_restore_preserves_ages () =
  let store = State_store.create { State_store.capacity = 8; ttl_ns = 10L } in
  let tbl =
    State_store.table store ~name:"t" ~key:State_store.Conv.int
      ~value:State_store.Conv.int ()
  in
  State_store.insert tbl 1 10;
  ignore (State_store.advance store 8L);
  State_store.insert tbl 2 20;
  let snap = State_store.snapshot store in
  let fresh = State_store.create { State_store.capacity = 8; ttl_ns = 10L } in
  State_store.restore fresh snap;
  check Alcotest.int "entry 1 expires 2ns after restart" 1
    (State_store.advance fresh 2L);
  let ftbl =
    State_store.table fresh ~name:"t" ~key:State_store.Conv.int
      ~value:State_store.Conv.int ()
  in
  check Alcotest.(option int) "entry 2 still live" (Some 20)
    (State_store.find ftbl 2)

(* --- migration ----------------------------------------------------- *)

let test_migrate_rehomes_and_preserves_union () =
  let cfg = { State_store.capacity = 64; ttl_ns = 0L } in
  let mk () = State_store.create cfg in
  let shard_hint k = Int64.of_int k in
  let reg store =
    State_store.table store ~name:"t" ~key:State_store.Conv.int
      ~value:State_store.Conv.int ~shard_hint ()
  in
  let a = [| mk (); mk () |] in
  List.iteri
    (fun i k -> State_store.insert (reg a.(k mod 2)) k (100 + i))
    (List.init 20 Fun.id);
  let before = State_store.digest a in
  (* 2 -> 4 -> 1, re-homing by the hint each time. *)
  let b = [| mk (); mk (); mk (); mk () |] in
  State_store.migrate ~from:a ~into:b;
  Array.iteri
    (fun d store ->
      ignore
        (State_store.fold
           (fun k _ () ->
             check Alcotest.int
               (Printf.sprintf "key %d homed by hint" k)
               (k mod 4) d)
           (reg store) ()))
    b;
  check Alcotest.bool "2 -> 4 digest preserved" true
    (State_store.digest b = before);
  let c = [| mk () |] in
  State_store.migrate ~from:b ~into:c;
  check Alcotest.bool "4 -> 1 digest preserved" true
    (State_store.digest c = before);
  check Alcotest.int "all entries in the single store" 20
    (State_store.length (reg c.(0)))

(* ------------------------------------------------------------------ *)
(* Runtime level: a single-pipelet LB deployment (classifier -> lb ->
   router), where steady state neither punts nor recirculates — the
   flow-cache/state-store interaction is fully visible. *)

let lb_runtime ?engine () =
  let rules =
    [ { Nflib.Classifier.dst_prefix = pfx "10.0.1.0/24"; proto = None; path_id = 10; tenant = 1 } ]
  in
  let registry =
    ("classifier", Nflib.Classifier.create rules)
    :: List.remove_assoc "classifier" (Nflib.Catalog.registry ())
  in
  let chains =
    [
      Chain.make ~path_id:10 ~name:"lb_only"
        ~nfs:[ "classifier"; "lb"; "router" ]
        ~weight:1.0 ~exit_port:1 ();
    ]
  in
  let compiled =
    Result.get_ok
      (Compiler.compile
         (Compiler.default_input ~registry ~chains ~strategy:Placement.Greedy ()))
  in
  let rt = Runtime.create ?engine compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  rt

let engine ?(domains = 1) ?(cache = false) ~capacity ?(ttl_ns = 0L) () =
  {
    Runtime.Engine.default with
    Runtime.Engine.domains;
    cache =
      (if cache then Runtime.Engine.Emc { capacity = 256 }
       else Runtime.Engine.Off);
    state = Runtime.Engine.Bounded { capacity; ttl_ns };
  }

let tcp ~src ~dst ~src_port ~dst_port =
  Netpkt.Pkt.encode
    (Netpkt.Pkt.tcp_flow
       ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
       ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
       {
         Netpkt.Flow.src;
         dst;
         proto = Netpkt.Ipv4.proto_tcp;
         src_port;
         dst_port;
       })

let red ~src_octet ~src_port =
  ( 0,
    tcp
      ~src:(Netpkt.Ip4.of_octets 203 0 113 src_octet)
      ~dst:(ip "10.0.1.10") ~src_port ~dst_port:80 )

let signature_of = function
  | Error e -> "error:" ^ e
  | Ok (o : Runtime.outcome) -> (
      match o.Runtime.verdict with
      | Asic.Chip.Emitted { port; frame } ->
          Printf.sprintf "emitted:%d:%s" port
            (Digest.to_hex (Digest.bytes frame))
      | Asic.Chip.Dropped -> "dropped"
      | Asic.Chip.To_cpu b -> "to_cpu:" ^ Digest.to_hex (Digest.bytes b))

let send rt (in_port, frame) = Runtime.process rt ~in_port frame

let lb_workload ~flows ~per_flow =
  List.concat
    (List.init flows (fun f ->
         List.init per_flow (fun _ ->
             red ~src_octet:(1 + (f mod 200)) ~src_port:(2000 + f))))

(* Live re-shard 2 -> 4 -> 1 under a Bounded knob: every transition
   migrates the session ledger by the canonical 5-tuple hint, and the
   final union digest equals a cold-built single-store runtime that
   processed the same traffic — with the flow cache on throughout. *)
let test_live_reshard_digest_equals_cold () =
  let mk domains =
    lb_runtime ~engine:(engine ~domains ~cache:true ~capacity:4096 ()) ()
  in
  let w1 = lb_workload ~flows:13 ~per_flow:2 in
  let w2 = lb_workload ~flows:29 ~per_flow:1 in
  let w3 = lb_workload ~flows:7 ~per_flow:3 in
  let live = mk 2 in
  ignore (Runtime.process_batch_parallel live w1);
  check Alcotest.int "two shard stores" 2
    (Array.length (Runtime.state_stores live));
  Runtime.configure live { (Runtime.engine live) with Runtime.Engine.domains = 4 };
  check Alcotest.int "migrated to four" 4
    (Array.length (Runtime.state_stores live));
  ignore (Runtime.process_batch_parallel live w2);
  Runtime.configure live { (Runtime.engine live) with Runtime.Engine.domains = 1 };
  check Alcotest.int "migrated to one" 1
    (Array.length (Runtime.state_stores live));
  ignore (Runtime.process_batch_parallel live w3);
  let cold = mk 1 in
  ignore (Runtime.process_batch_parallel cold (w1 @ w2 @ w3));
  check Alcotest.bool "live re-sharded digest = cold-built digest" true
    (State_store.digest (Runtime.state_stores live)
    = State_store.digest (Runtime.state_stores cold));
  (* And the ledger saw every distinct flow exactly once. *)
  match Runtime.state_store cold with
  | None -> Alcotest.fail "state store missing"
  | Some store ->
      let tbl =
        State_store.table store ~name:Nflib.Lb.state_table_name
          ~key:State_store.Conv.five_tuple ~value:State_store.Conv.ip4 ()
      in
      check Alcotest.int "29 distinct flows" 29 (State_store.length tbl)

(* The acceptance gate: evicting a flow's state invalidates its cached
   whole-chain verdict. With capacity 2, flow A's session is the LRU
   victim when C arrives; A's next packet must re-punt (the chip entry
   is gone), be re-assigned the same backend, and produce the same
   bytes — and the cache must have revalidated, not replayed. *)
let test_eviction_invalidates_cached_verdict () =
  let rt = lb_runtime ~engine:(engine ~cache:true ~capacity:2 ()) () in
  let a = red ~src_octet:9 ~src_port:7000 in
  let b = red ~src_octet:10 ~src_port:7100 in
  let c = red ~src_octet:11 ~src_port:7200 in
  (match send rt a with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check Alcotest.int "A's first packet punts" 1
        o.Runtime.counters.Runtime.Counters.cpu_round_trips);
  let sig_a = signature_of (send rt a) in
  (* A's verdict is now memoized. *)
  ignore (send rt a);
  let hits = (Flow_cache.stats (Option.get (Runtime.flow_cache rt))).Flow_cache.hits in
  check Alcotest.bool "A served from cache" true (hits >= 1);
  (* B then C: C's ledger insert evicts A (LRU), deleting A's chip
     entry through the typed-op layer. *)
  ignore (send rt b);
  ignore (send rt c);
  (match Runtime.state_store rt with
  | None -> Alcotest.fail "state store missing"
  | Some store ->
      let occ =
        List.fold_left
          (fun acc (_, occ, _) -> acc + occ)
          0 (State_store.per_table store)
      in
      check Alcotest.int "ledger bounded at 2" 2 occ);
  match send rt a with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check Alcotest.int "evicted flow re-punts (not served stale)" 1
        o.Runtime.counters.Runtime.Counters.cpu_round_trips;
      check Alcotest.string "same backend, byte-identical output" sig_a
        (signature_of (Ok o))

(* Store counters surface as registry gauges in the stats snapshot. *)
let test_state_gauges_in_snapshot () =
  let rt =
    lb_runtime
      ~engine:
        {
          (engine ~capacity:1024 ()) with
          Runtime.Engine.telemetry = Telemetry.Level.Counters;
        }
      ()
  in
  ignore (Runtime.process_batch rt (lb_workload ~flows:5 ~per_flow:2));
  match Runtime.snapshot rt with
  | None -> Alcotest.fail "telemetry off"
  | Some snap ->
      let count name =
        match List.assoc_opt name snap with
        | Some (Telemetry.Registry.Vcount n) -> n
        | _ -> Alcotest.fail ("missing gauge " ^ name)
      in
      check Alcotest.int "state.stores" 1 (count "state.stores");
      check Alcotest.int "state.capacity" 1024 (count "state.capacity");
      check Alcotest.int "lb.sessions occupancy" 5
        (count "state.lb.sessions.occupancy");
      check Alcotest.int "lb.sessions inserts" 5
        (count "state.lb.sessions.inserts")

(* Bounded-off is byte-identical to an engine without the knob. *)
let test_state_off_identical () =
  let w = lb_workload ~flows:11 ~per_flow:3 in
  let off = Runtime.process_batch (lb_runtime ()) w in
  let on =
    Runtime.process_batch (lb_runtime ~engine:(engine ~capacity:4096 ()) ()) w
  in
  check Alcotest.bool "digest and totals identical" true
    (off.Runtime.digest = on.Runtime.digest
    && off.Runtime.emitted = on.Runtime.emitted
    && off.Runtime.to_cpu = on.Runtime.to_cpu
    && off.Runtime.errors = on.Runtime.errors)

let () =
  Alcotest.run "state_store"
    [
      ( "differential",
        [
          qtest prop_bounded_equals_reference;
          qtest prop_large_capacity_equals_reference;
        ] );
      ( "policy",
        [
          Alcotest.test_case "eviction callbacks in LRU order" `Quick
            test_eviction_callback_order;
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
        ] );
      ( "snapshot",
        [
          qtest prop_snapshot_string_roundtrip;
          Alcotest.test_case "restore preserves ages" `Quick
            test_restore_preserves_ages;
        ] );
      ( "migration",
        [
          Alcotest.test_case "re-home 2 -> 4 -> 1" `Quick
            test_migrate_rehomes_and_preserves_union;
          Alcotest.test_case "live re-shard digest = cold" `Quick
            test_live_reshard_digest_equals_cold;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "eviction invalidates cached verdict" `Quick
            test_eviction_invalidates_cached_verdict;
          Alcotest.test_case "state gauges in snapshot" `Quick
            test_state_gauges_in_snapshot;
          Alcotest.test_case "state off identical" `Quick
            test_state_off_identical;
        ] );
    ]
