(* End-to-end fuzz: random service chains of synthetic NFs are compiled
   onto the chip and exercised with packets. Each synthetic NF folds its
   id into an order-sensitive accumulator carried in the SFC context
   data; a terminal probe NF copies the accumulator into the source MAC
   so it survives the SFC strip. If composition, placement, branching,
   recirculation or the parser merge reorders, skips or duplicates any
   NF, the signature breaks. *)

open Dejavu_core


let ip = Netpkt.Ip4.of_string_exn
let pfx = Netpkt.Ip4.prefix_of_string_exn
let mac = Netpkt.Mac.of_string_exn

let acc_field = Sfc_header.ctx_val 1

(* acc <- acc * 7 + tag, in 16 bits. *)
let stamp_nf ~name ~tag () =
  Ok
    (Nf.make ~name
    ~description:(Printf.sprintf "synthetic stamp NF (tag %d)" tag)
    ~parser:(Net_hdrs.base_parser ~name ())
    ~tables:[]
    ~body:
      [
        P4ir.Control.Run
          [
            P4ir.Action.Assign
              ( acc_field,
                P4ir.Expr.(
                  Bin
                    ( Add,
                      Bin (Mul, Field acc_field, const ~width:16 7),
                      const ~width:16 tag )) );
          ];
      ]
    ())

(* Copies the accumulator into eth.src so the assertion survives the
   SFC strip on the exit pass. *)
let probe_nf () =
  Ok
    (Nf.make ~name:"probe" ~description:"copies the accumulator into eth.src"
       ~parser:(Net_hdrs.base_parser ~name:"probe" ())
       ~tables:[]
       ~body:
         [
           P4ir.Control.Run
             [ P4ir.Action.Assign (Net_hdrs.eth_src, P4ir.Expr.Field acc_field) ];
         ]
       ())

let expected_signature tags =
  List.fold_left (fun acc tag -> ((acc * 7) + tag) land 0xFFFF) 0 tags

let n_synthetic = 5

(* The classifier's rules vary per deployment while the registry entry
   stays a stable constructor. *)
let classifier_rules : Nflib.Classifier.rule list ref = ref []
let classifier_create () = Nflib.Classifier.create !classifier_rules ()

let registry () : Nf.registry =
  ("classifier", classifier_create)
  :: ("probe", probe_nf)
  :: List.init n_synthetic (fun i ->
         let name = Printf.sprintf "s%d" i in
         (name, stamp_nf ~name ~tag:(i + 1)))

let classifier_rules_for_paths paths =
  List.map
    (fun (path_id, last_octet) ->
      {
        Nflib.Classifier.dst_prefix =
          pfx (Printf.sprintf "10.9.%d.0/24" last_octet);
        proto = None;
        path_id;
        tenant = path_id;
      })
    paths

let deployment ~seed ~n_chains ~strategy =
  let st = Random.State.make [| seed |] in
  let chains_spec =
    List.init n_chains (fun c ->
        (* A random non-empty subset of the synthetic NFs, shuffled. *)
        let members =
          List.filteri
            (fun _ _ -> Random.State.bool st)
            (List.init n_synthetic Fun.id)
        in
        let members = if members = [] then [ 0 ] else members in
        let shuffled =
          List.map snd
            (List.sort compare
               (List.map (fun i -> (Random.State.bits st, i)) members))
        in
        (c + 1, shuffled))
  in
  classifier_rules :=
    classifier_rules_for_paths
      (List.map (fun (pid, _) -> (pid, pid)) chains_spec);
  let chains =
    List.map
      (fun (pid, members) ->
        Chain.make ~path_id:pid ~name:(Printf.sprintf "c%d" pid)
          ~nfs:
            ([ "classifier" ]
            @ List.map (fun i -> Printf.sprintf "s%d" i) members
            @ [ "probe" ])
          ~weight:1.0 ~exit_port:1 ())
      chains_spec
  in
  let input =
    Compiler.default_input ~registry:(registry ()) ~chains ~strategy ()
  in
  (chains_spec, Compiler.compile input)

let run_deployment ~seed ~n_chains ~strategy =
  match deployment ~seed ~n_chains ~strategy with
  | _, Error e -> Error (Printf.sprintf "seed %d: compile: %s" seed e)
  | chains_spec, Ok compiled ->
      let rt = Runtime.create compiled in
      List.fold_left
        (fun acc (pid, members) ->
          Result.bind acc (fun () ->
              let pkt =
                Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:aa")
                  ~dst_mac:(mac "02:00:00:00:00:bb")
                  {
                    Netpkt.Flow.src = ip "203.0.113.1";
                    dst = ip (Printf.sprintf "10.9.%d.33" pid);
                    proto = Netpkt.Ipv4.proto_tcp;
                    src_port = 4321;
                    dst_port = 80;
                  }
              in
              match Ptf.send rt ~in_port:0 pkt with
              | Error e -> Error (Printf.sprintf "seed %d chain %d: %s" seed pid e)
              | Ok o -> (
                  match (o.Ptf.runtime.Runtime.verdict, o.Ptf.decoded) with
                  | Asic.Chip.Emitted { port = 1; _ }, Some layers -> (
                      match Netpkt.Pkt.find_eth layers with
                      | Some e ->
                          let got = Int64.to_int (Netpkt.Mac.to_int64 e.Netpkt.Eth.src) in
                          let want =
                            expected_signature (List.map (fun i -> i + 1) members)
                          in
                          if got = want then Ok ()
                          else
                            Error
                              (Printf.sprintf
                                 "seed %d chain %d: signature %d, expected %d \
                                  (order %s)"
                                 seed pid got want
                                 (String.concat ","
                                    (List.map string_of_int members)))
                      | None -> Error "no eth in output")
                  | v, _ ->
                      Error
                        (Printf.sprintf "seed %d chain %d: unexpected verdict %s"
                           seed pid
                           (match v with
                           | Asic.Chip.Emitted { port; _ } ->
                               Printf.sprintf "emitted on %d" port
                           | Asic.Chip.Dropped -> "dropped"
                           | Asic.Chip.To_cpu _ -> "to_cpu")))))
        (Ok ()) chains_spec

let strategies =
  [ Placement.Greedy; Placement.default_anneal; Placement.Exhaustive ]

let test_fuzz_deployments () =
  let failures = ref [] in
  List.iteri
    (fun i strategy ->
      List.iter
        (fun seed ->
          match run_deployment ~seed:(seed + (100 * i)) ~n_chains:2 ~strategy with
          | Ok () -> ()
          | Error e -> failures := e :: !failures)
        [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    strategies;
  match !failures with
  | [] -> ()
  | fs -> Alcotest.fail (String.concat "\n" fs)

let test_fuzz_three_chains () =
  List.iter
    (fun seed ->
      match
        run_deployment ~seed ~n_chains:3 ~strategy:Placement.default_anneal
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 11; 22; 33; 44 ]

let () =
  Alcotest.run "fuzz"
    [
      ( "end_to_end",
        [
          Alcotest.test_case "random chains x strategies" `Slow
            test_fuzz_deployments;
          Alcotest.test_case "three-chain deployments" `Slow
            test_fuzz_three_chains;
        ] );
    ]
