(* Differential tests: every NF's data-plane control block against its
   pure OCaml reference model, on randomized inputs. *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let ip = Netpkt.Ip4.of_string_exn
let pfx = Netpkt.Ip4.prefix_of_string_exn
let mac = Netpkt.Mac.of_string_exn

(* Build a PHV the way a pipelet would: parse the encoded frame with the
   NF's own parser, attach standard metadata. *)
let phv_of_pkt (nf : Nf.t) pkt =
  let phv = P4ir.Phv.create [] in
  match P4ir.Parser_graph.parse nf.Nf.parser (Netpkt.Pkt.encode pkt) phv with
  | Error e -> Alcotest.fail e
  | Ok _ ->
      Asic.Stdmeta.attach phv;
      phv

let exec (nf : Nf.t) phv = P4ir.Control.exec (Nf.table_env nf) (Nf.control nf) phv

let pkt_for ?(sfc = None) tuple =
  let base =
    Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
      ~dst_mac:(mac "02:00:00:00:00:02") tuple
  in
  match sfc with
  | None -> base
  | Some hdr -> (
      match base with
      | Netpkt.Pkt.Eth e :: rest ->
          Netpkt.Pkt.Eth { e with Netpkt.Eth.ethertype = Netpkt.Eth.ethertype_sfc }
          :: Netpkt.Pkt.Sfc_raw (Sfc_header.encode hdr)
          :: rest
      | _ -> assert false)

let with_sfc = Some { Sfc_header.default with service_path_id = 5; service_index = 1 }

let st = Random.State.make [| 2026 |]

let random_ip_in (prefix : Netpkt.Ip4.prefix) =
  let host_bits = 32 - prefix.Netpkt.Ip4.len in
  let host =
    if host_bits = 0 then 0L
    else Int64.of_int (Random.State.int st (1 lsl min host_bits 20))
  in
  Netpkt.Ip4.of_int64 (Int64.logor (Netpkt.Ip4.to_int64 prefix.Netpkt.Ip4.addr) host)

(* --- classifier --- *)

open Nflib

let classifier_rules =
  [
    { Classifier.dst_prefix = pfx "10.0.0.0/16"; proto = None; path_id = 1; tenant = 1 };
    {
      Classifier.dst_prefix = pfx "10.0.1.0/24";
      proto = Some Netpkt.Ipv4.proto_tcp;
      path_id = 2;
      tenant = 2;
    };
    { Classifier.dst_prefix = pfx "172.16.0.0/12"; proto = None; path_id = 3; tenant = 3 };
  ]

let prop_classifier_differential =
  QCheck.Test.make ~name:"classifier vs reference" ~count:300 QCheck.unit
    (fun () ->
      let nf = Result.get_ok (Classifier.create classifier_rules ()) in
      let dst =
        match Random.State.int st 4 with
        | 0 -> random_ip_in (pfx "10.0.0.0/16")
        | 1 -> random_ip_in (pfx "10.0.1.0/24")
        | 2 -> random_ip_in (pfx "172.16.0.0/12")
        | _ -> Netpkt.Ip4.random st
      in
      let proto =
        if Random.State.bool st then Netpkt.Ipv4.proto_tcp else Netpkt.Ipv4.proto_udp
      in
      let tuple =
        { Netpkt.Flow.src = Netpkt.Ip4.random st; dst; proto;
          src_port = 1; dst_port = 2 }
      in
      let phv = phv_of_pkt nf (pkt_for tuple) in
      P4ir.Phv.set_int phv Asic.Stdmeta.ingress_port 3;
      exec nf phv;
      let expected =
        Classifier.reference classifier_rules
          { Classifier.dst; proto; ingress_port = 3 }
      in
      match (Sfc_header.of_phv phv, expected) with
      | Some got, Some want ->
          got.Sfc_header.service_path_id = want.Sfc_header.service_path_id
          && Sfc_header.find_context got Sfc_header.ctx_key_tenant
             = Sfc_header.find_context want Sfc_header.ctx_key_tenant
          && got.Sfc_header.in_port = 3
          && not got.Sfc_header.to_cpu
      | Some got, None -> got.Sfc_header.to_cpu
      | None, _ -> false)

let test_classifier_pushes_header () =
  let nf = Result.get_ok (Classifier.create classifier_rules ()) in
  let tuple =
    { Netpkt.Flow.src = ip "1.2.3.4"; dst = ip "10.0.1.9";
      proto = Netpkt.Ipv4.proto_tcp; src_port = 5; dst_port = 6 }
  in
  let phv = phv_of_pkt nf (pkt_for tuple) in
  exec nf phv;
  check Alcotest.bool "sfc now valid" true (P4ir.Phv.is_valid phv "sfc");
  check Alcotest.int "ethertype switched" Netpkt.Eth.ethertype_sfc
    (P4ir.Phv.get_int phv Net_hdrs.eth_ethertype);
  (* proto-specific rule beats the /16. *)
  check Alcotest.int "path id" 2 (P4ir.Phv.get_int phv Sfc_header.service_path_id)

(* --- firewall --- *)

let fw_rules =
  [
    { Firewall.src = Some (pfx "198.51.100.0/24"); dst = None; proto = None;
      dst_port = None; action = Firewall.Deny; priority = 10 };
    { Firewall.src = None; dst = Some (pfx "10.9.0.0/16"); proto = Some 6;
      dst_port = Some 23; action = Firewall.Deny; priority = 8 };
    { Firewall.src = Some (pfx "198.51.100.128/25"); dst = None; proto = None;
      dst_port = None; action = Firewall.Permit; priority = 20 };
  ]

let prop_firewall_differential =
  QCheck.Test.make ~name:"firewall vs reference" ~count:300 QCheck.unit
    (fun () ->
      let nf = Result.get_ok (Firewall.create fw_rules ()) in
      let src =
        if Random.State.bool st then random_ip_in (pfx "198.51.100.0/24")
        else Netpkt.Ip4.random st
      in
      let dst =
        if Random.State.bool st then random_ip_in (pfx "10.9.0.0/16")
        else Netpkt.Ip4.random st
      in
      let dst_port = if Random.State.bool st then 23 else 80 in
      let tuple =
        { Netpkt.Flow.src; dst; proto = Netpkt.Ipv4.proto_tcp;
          src_port = 1000; dst_port }
      in
      let phv = phv_of_pkt nf (pkt_for ~sfc:with_sfc tuple) in
      exec nf phv;
      let expected =
        Firewall.reference fw_rules { Firewall.src; dst; proto = 6; dst_port }
      in
      let dropped = P4ir.Phv.get_int phv Sfc_header.drop_flag = 1 in
      (expected = Firewall.Deny) = dropped)

let test_firewall_priority_permit_overrides () =
  (* The /25 permit at priority 20 shadows the /24 deny at 10. *)
  let nf = Result.get_ok (Firewall.create fw_rules ()) in
  let tuple =
    { Netpkt.Flow.src = ip "198.51.100.200"; dst = ip "8.8.8.8";
      proto = Netpkt.Ipv4.proto_tcp; src_port = 1; dst_port = 80 }
  in
  let phv = phv_of_pkt nf (pkt_for ~sfc:with_sfc tuple) in
  exec nf phv;
  check Alcotest.int "permitted" 0 (P4ir.Phv.get_int phv Sfc_header.drop_flag)

(* --- vgw --- *)

let vgw_maps =
  [
    { Vgw.dst_prefix = pfx "10.0.1.0/24"; vid = 101; tenant = 1 };
    { Vgw.dst_prefix = pfx "10.0.0.0/16"; vid = 100; tenant = 9 };
  ]

let prop_vgw_differential =
  QCheck.Test.make ~name:"vgw vs reference" ~count:300 QCheck.unit (fun () ->
      let nf = Result.get_ok (Vgw.create vgw_maps ()) in
      let dst =
        if Random.State.bool st then random_ip_in (pfx "10.0.0.0/16")
        else Netpkt.Ip4.random st
      in
      let tuple =
        { Netpkt.Flow.src = Netpkt.Ip4.random st; dst;
          proto = Netpkt.Ipv4.proto_tcp; src_port = 1; dst_port = 2 }
      in
      let phv = phv_of_pkt nf (pkt_for ~sfc:with_sfc tuple) in
      exec nf phv;
      match Vgw.reference vgw_maps ~tagged_vid:None dst with
      | Vgw.Encap { vid; _ } ->
          P4ir.Phv.is_valid phv "vlan"
          && P4ir.Phv.get_int phv Net_hdrs.vlan_vid = vid
          && P4ir.Phv.get_int phv Sfc_header.next_protocol = 2
      | Vgw.Pass -> not (P4ir.Phv.is_valid phv "vlan")
      | Vgw.Decap -> false)

let test_vgw_decap () =
  let nf = Result.get_ok (Vgw.create vgw_maps ()) in
  (* A tagged packet arriving: eth/vlan/ipv4. *)
  let pkt =
    [
      Netpkt.Pkt.Eth (Netpkt.Eth.make ~dst:(mac "02:00:00:00:00:02") Netpkt.Eth.ethertype_vlan);
      Netpkt.Pkt.Vlan (Netpkt.Vlan.make ~vid:101 Netpkt.Eth.ethertype_ipv4);
      Netpkt.Pkt.Ipv4
        (Netpkt.Ipv4.make ~protocol:6 ~src:(ip "10.0.1.5") ~dst:(ip "8.8.8.8") ());
      Netpkt.Pkt.Tcp (Netpkt.Tcp.make ~src_port:1 ~dst_port:2 ());
    ]
  in
  let phv = phv_of_pkt nf pkt in
  exec nf phv;
  check Alcotest.bool "vlan stripped" false (P4ir.Phv.is_valid phv "vlan")

let test_vgw_unknown_vid_passes () =
  let nf = Result.get_ok (Vgw.create vgw_maps ()) in
  let pkt =
    [
      Netpkt.Pkt.Eth (Netpkt.Eth.make ~dst:(mac "02:00:00:00:00:02") Netpkt.Eth.ethertype_vlan);
      Netpkt.Pkt.Vlan (Netpkt.Vlan.make ~vid:999 Netpkt.Eth.ethertype_ipv4);
      Netpkt.Pkt.Ipv4
        (Netpkt.Ipv4.make ~protocol:6 ~src:(ip "10.0.1.5") ~dst:(ip "8.8.8.8") ());
      Netpkt.Pkt.Tcp (Netpkt.Tcp.make ~src_port:1 ~dst_port:2 ());
    ]
  in
  let phv = phv_of_pkt nf pkt in
  exec nf phv;
  check Alcotest.bool "unknown vid kept" true (P4ir.Phv.is_valid phv "vlan")

(* --- lb --- *)

let prop_lb_differential =
  QCheck.Test.make ~name:"lb vs reference" ~count:200 QCheck.unit (fun () ->
      let nf = Result.get_ok (Lb.create ()) in
      let table = Option.get (Nf.find_table nf Lb.table_name) in
      let sessions =
        List.init 8 (fun _ ->
            let t = Netpkt.Flow.random_tuple st in
            let backend = Netpkt.Ip4.random st in
            (t, backend))
      in
      List.iter
        (fun (t, b) -> Result.get_ok (Lb.install_session table t b))
        sessions;
      let tuple =
        if Random.State.bool st then fst (List.nth sessions (Random.State.int st 8))
        else Netpkt.Flow.random_tuple st
      in
      let phv = phv_of_pkt nf (pkt_for ~sfc:with_sfc tuple) in
      exec nf phv;
      match Lb.reference ~sessions tuple with
      | `Rewrite backend ->
          Netpkt.Ip4.equal
            (Netpkt.Ip4.of_int64
               (P4ir.Bitval.to_int64 (P4ir.Phv.get phv Net_hdrs.ip_dst)))
            backend
          && P4ir.Phv.get_int phv Sfc_header.to_cpu_flag = 0
      | `To_cpu -> P4ir.Phv.get_int phv Sfc_header.to_cpu_flag = 1)

let test_lb_udp_flows_hash () =
  let nf = Result.get_ok (Lb.create ()) in
  let table = Option.get (Nf.find_table nf Lb.table_name) in
  let tuple =
    { Netpkt.Flow.src = ip "1.1.1.1"; dst = ip "2.2.2.2";
      proto = Netpkt.Ipv4.proto_udp; src_port = 53; dst_port = 53 }
  in
  Result.get_ok (Lb.install_session table tuple (ip "9.9.9.9"));
  let phv = phv_of_pkt nf (pkt_for ~sfc:with_sfc tuple) in
  exec nf phv;
  check Alcotest.int64 "udp flow rewritten"
    (Netpkt.Ip4.to_int64 (ip "9.9.9.9"))
    (P4ir.Bitval.to_int64 (P4ir.Phv.get phv Net_hdrs.ip_dst))

let test_lb_pick_backend_deterministic () =
  let backends = Nflib.Catalog.tenant1_backends in
  let t = Netpkt.Flow.random_tuple st in
  check Alcotest.bool "same flow, same backend" true
    (Netpkt.Ip4.equal (Lb.pick_backend backends t) (Lb.pick_backend backends t))

(* --- router --- *)

let routes =
  [
    { Router.prefix = pfx "10.0.0.0/8"; next_hop_mac = mac "02:00:00:00:aa:01";
      src_mac = mac "02:00:00:00:00:fe" };
    { Router.prefix = pfx "10.1.0.0/16"; next_hop_mac = mac "02:00:00:00:aa:02";
      src_mac = mac "02:00:00:00:00:fe" };
  ]

let prop_router_differential =
  QCheck.Test.make ~name:"router vs reference" ~count:300 QCheck.unit (fun () ->
      let nf = Result.get_ok (Router.create routes ()) in
      let dst =
        if Random.State.bool st then random_ip_in (pfx "10.0.0.0/8")
        else Netpkt.Ip4.random st
      in
      let ttl = 1 + Random.State.int st 4 in
      let tuple =
        { Netpkt.Flow.src = Netpkt.Ip4.random st; dst;
          proto = Netpkt.Ipv4.proto_tcp; src_port = 1; dst_port = 2 }
      in
      let pkt =
        match pkt_for ~sfc:with_sfc tuple with
        | Netpkt.Pkt.Eth e :: Netpkt.Pkt.Sfc_raw s :: Netpkt.Pkt.Ipv4 h :: rest ->
            Netpkt.Pkt.Eth e :: Netpkt.Pkt.Sfc_raw s
            :: Netpkt.Pkt.Ipv4 { h with Netpkt.Ipv4.ttl } :: rest
        | _ -> assert false
      in
      let phv = phv_of_pkt nf pkt in
      exec nf phv;
      match Router.reference routes ~dst ~ttl with
      | Router.Forward { next_hop_mac; ttl = ttl'; _ } ->
          P4ir.Phv.get_int phv Net_hdrs.ip_ttl = ttl'
          && Int64.equal
               (P4ir.Bitval.to_int64 (P4ir.Phv.get phv Net_hdrs.eth_dst))
               (Netpkt.Mac.to_int64 next_hop_mac)
          && P4ir.Phv.get_int phv Sfc_header.drop_flag = 0
      | Router.Drop_ttl | Router.Drop_no_route ->
          P4ir.Phv.get_int phv Sfc_header.drop_flag = 1)

let test_router_longest_prefix () =
  let nf = Result.get_ok (Router.create routes ()) in
  let tuple =
    { Netpkt.Flow.src = ip "1.1.1.1"; dst = ip "10.1.2.3";
      proto = Netpkt.Ipv4.proto_tcp; src_port = 1; dst_port = 2 }
  in
  let phv = phv_of_pkt nf (pkt_for ~sfc:with_sfc tuple) in
  exec nf phv;
  check Alcotest.int64 "the /16 wins"
    (Netpkt.Mac.to_int64 (mac "02:00:00:00:aa:02"))
    (P4ir.Bitval.to_int64 (P4ir.Phv.get phv Net_hdrs.eth_dst))

(* --- extension NFs --- *)

let nat_bindings =
  [ { Nat.internal = ip "192.168.0.10"; public = ip "203.0.113.200" } ]

let prop_nat_differential =
  QCheck.Test.make ~name:"nat vs reference" ~count:200 QCheck.unit (fun () ->
      let nf = Result.get_ok (Nat.create nat_bindings ()) in
      let src =
        if Random.State.bool st then ip "192.168.0.10" else Netpkt.Ip4.random st
      in
      let tuple =
        { Netpkt.Flow.src; dst = ip "8.8.8.8"; proto = Netpkt.Ipv4.proto_tcp;
          src_port = 1; dst_port = 2 }
      in
      let phv = phv_of_pkt nf (pkt_for ~sfc:with_sfc tuple) in
      exec nf phv;
      Netpkt.Ip4.equal
        (Netpkt.Ip4.of_int64
           (P4ir.Bitval.to_int64 (P4ir.Phv.get phv Net_hdrs.ip_src)))
        (Nat.reference nat_bindings src))

let test_dscp_marker_uses_context () =
  let nf = Result.get_ok (Dscp_marker.create [ (1, 46); (2, 26) ] ()) in
  let tuple =
    { Netpkt.Flow.src = ip "1.1.1.1"; dst = ip "2.2.2.2";
      proto = Netpkt.Ipv4.proto_tcp; src_port = 1; dst_port = 2 }
  in
  let hdr =
    { Sfc_header.default with
      context = [| (Sfc_header.ctx_key_tenant, 2); (0, 0); (0, 0); (0, 0) |] }
  in
  let phv = phv_of_pkt nf (pkt_for ~sfc:(Some hdr) tuple) in
  exec nf phv;
  check Alcotest.int "tenant 2 marked EF-ish" 26
    (P4ir.Phv.get_int phv (P4ir.Fieldref.v "ipv4" "dscp"))

let test_mirror_tap () =
  let selectors = [ { Mirror_tap.src = None; dst = Some (pfx "10.0.4.0/24") } ] in
  let nf = Result.get_ok (Mirror_tap.create selectors ()) in
  let run dst =
    let tuple =
      { Netpkt.Flow.src = ip "1.1.1.1"; dst; proto = Netpkt.Ipv4.proto_tcp;
        src_port = 1; dst_port = 2 }
    in
    let phv = phv_of_pkt nf (pkt_for ~sfc:with_sfc tuple) in
    exec nf phv;
    P4ir.Phv.get_int phv Sfc_header.mirror_flag
  in
  check Alcotest.int "matching traffic tapped" 1 (run (ip "10.0.4.20"));
  check Alcotest.int "other traffic untouched" 0 (run (ip "10.0.5.20"))

let () =
  Alcotest.run "nfs"
    [
      ( "classifier",
        [
          qtest prop_classifier_differential;
          Alcotest.test_case "pushes header" `Quick test_classifier_pushes_header;
        ] );
      ( "firewall",
        [
          qtest prop_firewall_differential;
          Alcotest.test_case "priority" `Quick test_firewall_priority_permit_overrides;
        ] );
      ( "vgw",
        [
          qtest prop_vgw_differential;
          Alcotest.test_case "decap" `Quick test_vgw_decap;
          Alcotest.test_case "unknown vid" `Quick test_vgw_unknown_vid_passes;
        ] );
      ( "lb",
        [
          qtest prop_lb_differential;
          Alcotest.test_case "udp flows" `Quick test_lb_udp_flows_hash;
          Alcotest.test_case "pick_backend" `Quick test_lb_pick_backend_deterministic;
        ] );
      ( "router",
        [
          qtest prop_router_differential;
          Alcotest.test_case "longest prefix" `Quick test_router_longest_prefix;
        ] );
      ( "extensions",
        [
          qtest prop_nat_differential;
          Alcotest.test_case "dscp marker" `Quick test_dscp_marker_uses_context;
          Alcotest.test_case "mirror tap" `Quick test_mirror_tap;
        ] );
    ]
