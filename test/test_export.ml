(* Exporter and INT-report tests: Prometheus golden rendering and the
   parse round-trip, JSON-lines shape, windowed rate math, the INT
   postcard sink's bounds/aggregation/merge, and the QCheck property
   pinning fast-mode INT hop records to the reference interpreter's
   trace segmentation. *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let has ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- mangle ---------------------------------------------------------- *)

let test_mangle () =
  check Alcotest.string "dots become underscores" "runtime_ns_per_packet"
    (Telemetry.Export.mangle "runtime.ns_per_packet");
  check Alcotest.string "leading digit prefixed" "_9lives"
    (Telemetry.Export.mangle "9lives");
  check Alcotest.string "colons survive" "a:b" (Telemetry.Export.mangle "a:b");
  check Alcotest.string "illegal chars" "weird_name_"
    (Telemetry.Export.mangle "weird name!");
  check Alcotest.string "empty name" "_" (Telemetry.Export.mangle "")

(* --- a small snapshot to render -------------------------------------- *)

(* One counter and one histogram with known content: observations
   1, 2, 3, 100 land in log2 buckets [1,1], [2,3] (x2) and [64,127]. *)
let sample_snapshot () =
  let reg = Telemetry.Registry.create () in
  Telemetry.Registry.counter reg "verdict.emitted" := 3;
  let h = Telemetry.Registry.histogram reg "runtime.ns_per_packet" in
  List.iter (Telemetry.Histogram.observe h) [ 1; 2; 3; 100 ];
  Telemetry.Registry.snapshot reg

(* --- Prometheus text exposition -------------------------------------- *)

let test_prometheus_golden () =
  let text = Telemetry.Export.prometheus (sample_snapshot ()) in
  check Alcotest.bool "counter TYPE line" true
    (has ~sub:"# TYPE dejavu_verdict_emitted_total counter\n" text);
  check Alcotest.bool "counter sample" true
    (has ~sub:"dejavu_verdict_emitted_total 3\n" text);
  check Alcotest.bool "histogram TYPE line" true
    (has ~sub:"# TYPE dejavu_runtime_ns_per_packet histogram\n" text);
  (* Cumulative buckets: 1 below le=1, 3 below le=3, all 4 below
     le=127 and +Inf. *)
  check Alcotest.bool "le=1 bucket" true
    (has ~sub:"dejavu_runtime_ns_per_packet_bucket{le=\"1\"} 1\n" text);
  check Alcotest.bool "le=3 bucket cumulative" true
    (has ~sub:"dejavu_runtime_ns_per_packet_bucket{le=\"3\"} 3\n" text);
  check Alcotest.bool "le=127 bucket cumulative" true
    (has ~sub:"dejavu_runtime_ns_per_packet_bucket{le=\"127\"} 4\n" text);
  check Alcotest.bool "+Inf closes with the count" true
    (has ~sub:"dejavu_runtime_ns_per_packet_bucket{le=\"+Inf\"} 4\n" text);
  check Alcotest.bool "sum" true
    (has ~sub:"dejavu_runtime_ns_per_packet_sum 106\n" text);
  check Alcotest.bool "count" true
    (has ~sub:"dejavu_runtime_ns_per_packet_count 4\n" text);
  check Alcotest.bool "ends with newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  let custom =
    Telemetry.Export.prometheus ~namespace:"my.ns" (sample_snapshot ())
  in
  check Alcotest.bool "namespace is mangled too" true
    (has ~sub:"my_ns_verdict_emitted_total 3\n" custom)

let test_prometheus_roundtrip () =
  let text = Telemetry.Export.prometheus (sample_snapshot ()) in
  match Telemetry.Export.parse_prometheus text with
  | Error e -> Alcotest.fail ("self-render failed to parse: " ^ e)
  | Ok metrics ->
      (* 1 counter sample + 3 populated buckets + Inf + sum + count. *)
      check Alcotest.int "sample count" 7 (List.length metrics);
      let counter =
        List.find
          (fun (m : Telemetry.Export.metric) ->
            m.Telemetry.Export.metric = "dejavu_verdict_emitted_total")
          metrics
      in
      check (Alcotest.float 0.0) "counter value" 3.0
        counter.Telemetry.Export.value;
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "counter has no labels" [] counter.Telemetry.Export.labels;
      let inf_bucket =
        List.find
          (fun (m : Telemetry.Export.metric) ->
            m.Telemetry.Export.labels = [ ("le", "+Inf") ])
          metrics
      in
      check (Alcotest.float 0.0) "+Inf bucket = count" 4.0
        inf_bucket.Telemetry.Export.value;
      (* Cumulative bucket series is monotone non-decreasing. *)
      let buckets =
        List.filter_map
          (fun (m : Telemetry.Export.metric) ->
            if m.Telemetry.Export.metric = "dejavu_runtime_ns_per_packet_bucket"
            then Some m.Telemetry.Export.value
            else None)
          metrics
      in
      check Alcotest.int "all buckets parsed" 4 (List.length buckets);
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      check Alcotest.bool "buckets cumulative" true (monotone buckets)

let test_prometheus_parse_errors () =
  (match Telemetry.Export.parse_prometheus "dejavu_x 1\n???bad 2\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      check Alcotest.bool "error pinpoints line 2" true (has ~sub:"line 2" e));
  (match Telemetry.Export.parse_prometheus "dejavu_x\n" with
  | Ok _ -> Alcotest.fail "expected a missing-value error"
  | Error _ -> ());
  (* Comments, blanks and labels with escapes are accepted. *)
  match
    Telemetry.Export.parse_prometheus
      "# a comment\n\nup{job=\"a\\\"b\",instance=\"x\"} 1 1700000000\n"
  with
  | Error e -> Alcotest.fail e
  | Ok [ m ] ->
      check Alcotest.string "name" "up" m.Telemetry.Export.metric;
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "labels with escaped quote"
        [ ("job", "a\"b"); ("instance", "x") ]
        m.Telemetry.Export.labels;
      check (Alcotest.float 0.0) "value (timestamp ignored)" 1.0
        m.Telemetry.Export.value
  | Ok _ -> Alcotest.fail "expected exactly one sample"

(* --- JSON lines ------------------------------------------------------- *)

let test_json_lines () =
  let out = Telemetry.Export.json_lines ~now_ns:42L (sample_snapshot ()) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  check Alcotest.int "one line per metric" 2 (List.length lines);
  List.iter
    (fun l ->
      check Alcotest.bool "line is a JSON object" true
        (l.[0] = '{' && l.[String.length l - 1] = '}');
      check Alcotest.bool "line is stamped" true (has ~sub:"\"ts_ns\": 42" l))
    lines;
  let counter_line = List.nth lines 0 and hist_line = List.nth lines 1 in
  check Alcotest.bool "counter name" true
    (has ~sub:"\"name\": \"verdict.emitted\"" counter_line);
  check Alcotest.bool "counter value" true
    (has ~sub:"\"value\": 3" counter_line);
  check Alcotest.bool "histogram fields" true
    (has ~sub:"\"type\": \"histogram\"" hist_line
    && has ~sub:"\"count\": 4" hist_line
    && has ~sub:"\"sum\": 106" hist_line);
  let unstamped = Telemetry.Export.json_lines (sample_snapshot ()) in
  check Alcotest.bool "no ts_ns without now_ns" false
    (has ~sub:"ts_ns" unstamped)

(* --- windowed rates --------------------------------------------------- *)

let test_window_rates () =
  let w = Telemetry.Export.Window.create ~capacity:2 in
  check Alcotest.int "empty window" 0 (Telemetry.Export.Window.length w);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
    "no rates with one snapshot" []
    (Telemetry.Export.Window.rates w);
  let reg = Telemetry.Registry.create () in
  let pkts = Telemetry.Registry.counter reg "pkts" in
  let h = Telemetry.Registry.histogram reg "lat" in
  Telemetry.Export.Window.push w ~now_ns:0L (Telemetry.Registry.snapshot reg);
  pkts := 500;
  List.iter (Telemetry.Histogram.observe h) [ 1; 2; 3; 4; 5 ];
  (* A counter born after the first snapshot rates from zero. *)
  Telemetry.Registry.counter reg "late" := 100;
  Telemetry.Export.Window.push w ~now_ns:2_000_000_000L
    (Telemetry.Registry.snapshot reg);
  check Alcotest.int "two snapshots retained" 2
    (Telemetry.Export.Window.length w);
  check Alcotest.int64 "span" 2_000_000_000L
    (Telemetry.Export.Window.span_ns w);
  let rates = Telemetry.Export.Window.rates w in
  let rate name =
    match List.assoc_opt name rates with
    | Some r -> r
    | None -> Alcotest.fail (name ^ " missing from rates")
  in
  check (Alcotest.float 1e-9) "counter rate" 250.0 (rate "pkts");
  check (Alcotest.float 1e-9) "histogram rates its count" 2.5
    (rate "lat.count");
  check (Alcotest.float 1e-9) "absent-from-oldest counts from zero" 50.0
    (rate "late");
  (* Capacity 2: a third push evicts the oldest, so the window is now
     the last two snapshots. *)
  pkts := 600;
  Telemetry.Export.Window.push w ~now_ns:3_000_000_000L
    (Telemetry.Registry.snapshot reg);
  check Alcotest.int "capacity bounds the ring" 2
    (Telemetry.Export.Window.length w);
  check Alcotest.int64 "span slides" 1_000_000_000L
    (Telemetry.Export.Window.span_ns w);
  check (Alcotest.float 1e-9) "rate over the slid window" 100.0
    (List.assoc "pkts" (Telemetry.Export.Window.rates w));
  (* Equal timestamps yield no rates rather than a division by zero. *)
  let w0 = Telemetry.Export.Window.create ~capacity:4 in
  let s = Telemetry.Registry.snapshot reg in
  Telemetry.Export.Window.push w0 ~now_ns:7L s;
  Telemetry.Export.Window.push w0 ~now_ns:7L s;
  check Alcotest.int "zero-span rates" 0
    (List.length (Telemetry.Export.Window.rates w0))

(* --- INT postcard sink ------------------------------------------------ *)

let hop ?(recirc = 0) ?(resubmit = 0) lat =
  {
    Telemetry.Journey.pipelet = "ingress 0";
    nfs = [];
    tables = [];
    gateways = 0;
    latency_ns = lat;
    recirc_depth = recirc;
    resubmit_depth = resubmit;
    meta = Telemetry.Journey.no_meta;
  }

let postcard ?(verdict = "emitted:1") flow hops =
  { Telemetry.Int_report.flow; in_port = 0; verdict; wall_ns = 10; hops }

let test_int_sink_bounds () =
  let t = Telemetry.Int_report.create ~max_flows:2 ~ring_capacity:2 () in
  Telemetry.Int_report.push t (postcard "A" [ hop 100.0; hop 50.0 ]);
  Telemetry.Int_report.push t (postcard "A" [ hop 100.0; hop 50.0 ]);
  Telemetry.Int_report.push t (postcard "B" [ hop 30.0 ]);
  Telemetry.Int_report.push t (postcard "C" [ hop 7.0 ]);
  check Alcotest.int "every push counted" 4 (Telemetry.Int_report.pushed t);
  check Alcotest.int "flow table capped" 2 (Telemetry.Int_report.flows t);
  check Alcotest.int "overflow flow counted, not silent" 1
    (Telemetry.Int_report.dropped_flows t);
  (* The ring still kept C's postcard even though its flow was dropped
     from aggregation. *)
  let recent = Telemetry.Int_report.recent t in
  check Alcotest.int "ring keeps the last 2" 2 (List.length recent);
  check
    (Alcotest.list Alcotest.string)
    "oldest first" [ "B"; "C" ]
    (List.map
       (fun (p : Telemetry.Int_report.postcard) -> p.Telemetry.Int_report.flow)
       recent);
  (match Telemetry.Int_report.summaries t with
  | (a : Telemetry.Int_report.summary) :: _ ->
      check Alcotest.string "most packets first" "A"
        a.Telemetry.Int_report.flow;
      check Alcotest.int "packets" 2 a.Telemetry.Int_report.packets;
      check Alcotest.int "hops accumulate" 4 a.Telemetry.Int_report.hops;
      check Alcotest.int "max hops per walk" 2
        a.Telemetry.Int_report.max_hops;
      check (Alcotest.float 1e-9) "latency sums" 300.0
        a.Telemetry.Int_report.latency_ns;
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
        "verdict tally"
        [ ("emitted:1", 2) ]
        a.Telemetry.Int_report.verdicts
  | [] -> Alcotest.fail "no summaries");
  let js =
    Telemetry.Int_report.summary_to_json
      (List.hd (Telemetry.Int_report.summaries t))
  in
  check Alcotest.bool "summary json has the flow" true (has ~sub:"\"A\"" js);
  Telemetry.Int_report.clear t;
  check Alcotest.int "clear empties flows" 0 (Telemetry.Int_report.flows t);
  check Alcotest.int "clear empties the ring" 0
    (List.length (Telemetry.Int_report.recent t))

let test_int_sink_merge () =
  let a = Telemetry.Int_report.create ~max_flows:16 ~ring_capacity:8 () in
  let b = Telemetry.Int_report.create ~max_flows:16 ~ring_capacity:8 () in
  Telemetry.Int_report.push a (postcard "X" [ hop 10.0 ]);
  Telemetry.Int_report.push a (postcard "Y" [ hop ~recirc:1 20.0 ]);
  Telemetry.Int_report.push b (postcard "X" [ hop 30.0 ]);
  Telemetry.Int_report.push b (postcard "Z" [ hop 40.0 ]);
  Telemetry.Int_report.merge ~into:a b;
  check Alcotest.int "union of flows" 3 (Telemetry.Int_report.flows a);
  let x =
    List.find
      (fun (s : Telemetry.Int_report.summary) ->
        s.Telemetry.Int_report.flow = "X")
      (Telemetry.Int_report.summaries a)
  in
  check Alcotest.int "shared flow adds field-wise" 2
    x.Telemetry.Int_report.packets;
  check (Alcotest.float 1e-9) "latency summed" 40.0
    x.Telemetry.Int_report.latency_ns;
  check Alcotest.int "src ring re-pushed" 4
    (List.length (Telemetry.Int_report.recent a));
  (* merge does not disturb the source. *)
  check Alcotest.int "src untouched" 2 (Telemetry.Int_report.flows b)

(* --- the data-plane workload (as in test_telemetry) ------------------- *)

let ip = Netpkt.Ip4.of_string_exn
let mac = Netpkt.Mac.of_string_exn

let flow ~src ~dst ~src_port ~dst_port =
  Netpkt.Pkt.encode
    (Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
       ~dst_mac:(mac "02:00:00:00:00:02")
       {
         Netpkt.Flow.src = ip src;
         dst;
         proto = Netpkt.Ipv4.proto_tcp;
         src_port;
         dst_port;
       })

let frame_of_kind kind i =
  match kind mod 3 with
  | 0 ->
      flow ~src:"203.0.113.7"
        ~dst:(ip (Printf.sprintf "10.0.3.%d" (1 + (i mod 200))))
        ~src_port:(40000 + (i mod 97)) ~dst_port:443
  | 1 ->
      flow ~src:"203.0.113.8"
        ~dst:(ip (Printf.sprintf "10.0.2.%d" (1 + (i mod 200))))
        ~src_port:(41000 + (i mod 89)) ~dst_port:80
  | _ ->
      flow ~src:"203.0.113.9" ~dst:Nflib.Catalog.tenant1_vip
        ~src_port:(50000 + (i mod 61)) ~dst_port:80

let runtime_with mode =
  let compiled =
    Result.get_ok (Compiler.compile (Nflib.Catalog.edge_cloud_input ()))
  in
  let rt =
    Runtime.create
      ~engine:
        {
          Runtime.Engine.default with
          Runtime.Engine.exec_mode = mode;
          telemetry = Telemetry.Level.Journeys;
          ring_capacity = 128;
        }
      compiled
  in
  Nflib.Catalog.attach_handlers rt compiled;
  rt

(* --- INT records through the runtime ---------------------------------- *)

let test_int_sink_via_runtime () =
  let rt = runtime_with Asic.Chip.Fast in
  let n = 9 in
  let workload = List.init n (fun i -> (0, frame_of_kind (i mod 3) i)) in
  ignore (Runtime.process_batch rt workload);
  let sink = Option.get (Runtime.int_sink rt) in
  check Alcotest.int "one postcard per packet" n
    (Telemetry.Int_report.pushed sink);
  check Alcotest.bool "flows aggregated" true
    (Telemetry.Int_report.flows sink >= 3);
  check Alcotest.int "nothing dropped" 0
    (Telemetry.Int_report.dropped_flows sink);
  let total_packets =
    List.fold_left
      (fun acc (s : Telemetry.Int_report.summary) ->
        acc + s.Telemetry.Int_report.packets)
      0
      (Telemetry.Int_report.summaries sink)
  in
  check Alcotest.int "summaries cover every packet" n total_packets;
  (* The snapshot front door exposes the sink sizes as gauges and the
     whole registry round-trips through the Prometheus parser — the CI
     smoke step in miniature. *)
  let snap = Option.get (Runtime.snapshot rt) in
  (match List.assoc_opt "int.postcards" snap with
  | Some (Telemetry.Registry.Vcount c) ->
      check Alcotest.int "int.postcards gauge" n c
  | _ -> Alcotest.fail "int.postcards gauge missing");
  match Telemetry.Export.parse_prometheus (Telemetry.Export.prometheus snap)
  with
  | Ok metrics -> check Alcotest.bool "exposition non-empty" true (metrics <> [])
  | Error e -> Alcotest.fail ("runtime snapshot failed to round-trip: " ^ e)

(* --- property: fast-mode hop records = reference segmentation --------- *)

(* Everything a hop records except its latency share (floats are
   compared as sums below, where rounding is controlled). *)
let hop_shape (h : Telemetry.Journey.hop) =
  ( h.Telemetry.Journey.pipelet,
    h.Telemetry.Journey.nfs,
    h.Telemetry.Journey.tables,
    h.Telemetry.Journey.gateways,
    h.Telemetry.Journey.recirc_depth,
    h.Telemetry.Journey.resubmit_depth,
    h.Telemetry.Journey.meta )

let prop_int_hops_match_reference =
  QCheck.Test.make
    ~name:"fast INT hop records = reference trace segmentation" ~count:10
    QCheck.(small_list (int_bound 2))
    (fun kinds ->
      let workload = List.mapi (fun i k -> (0, frame_of_kind k i)) kinds in
      let run mode =
        let rt = runtime_with mode in
        ignore (Runtime.process_batch rt workload);
        let o = Option.get (Runtime.telemetry rt) in
        (Observe.journeys o, Option.get (Runtime.int_sink rt))
      in
      let jf, sf = run Asic.Chip.Fast in
      let jr, sr = run Asic.Chip.Reference in
      List.length jf = List.length jr
      && List.for_all2
           (fun (a : Telemetry.Journey.t) (b : Telemetry.Journey.t) ->
             a.Telemetry.Journey.verdict = b.Telemetry.Journey.verdict
             && List.map hop_shape a.Telemetry.Journey.hops
                = List.map hop_shape b.Telemetry.Journey.hops)
           jf jr
      (* Per-hop latencies telescope back to each journey's end-to-end
         modelled latency, in both modes. *)
      && List.for_all
           (fun (j : Telemetry.Journey.t) ->
             let s =
               List.fold_left
                 (fun acc (h : Telemetry.Journey.hop) ->
                   acc +. h.Telemetry.Journey.latency_ns)
                 0.0 j.Telemetry.Journey.hops
             in
             abs_float (s -. j.Telemetry.Journey.latency_ns)
             <= 1e-6 *. Float.max 1.0 j.Telemetry.Journey.latency_ns)
           (jf @ jr)
      (* And the per-flow INT aggregates agree across modes. *)
      && List.for_all2
           (fun (a : Telemetry.Int_report.summary)
                (b : Telemetry.Int_report.summary) ->
             a.Telemetry.Int_report.flow = b.Telemetry.Int_report.flow
             && a.Telemetry.Int_report.packets = b.Telemetry.Int_report.packets
             && a.Telemetry.Int_report.hops = b.Telemetry.Int_report.hops
             && a.Telemetry.Int_report.max_hops
                = b.Telemetry.Int_report.max_hops
             && a.Telemetry.Int_report.recircs = b.Telemetry.Int_report.recircs
             && a.Telemetry.Int_report.resubmits
                = b.Telemetry.Int_report.resubmits
             && a.Telemetry.Int_report.verdicts
                = b.Telemetry.Int_report.verdicts)
           (Telemetry.Int_report.summaries sf)
           (Telemetry.Int_report.summaries sr))

let () =
  Alcotest.run "export"
    [
      ("mangle", [ Alcotest.test_case "names" `Quick test_mangle ]);
      ( "prometheus",
        [
          Alcotest.test_case "golden" `Quick test_prometheus_golden;
          Alcotest.test_case "round-trip" `Quick test_prometheus_roundtrip;
          Alcotest.test_case "parse errors" `Quick
            test_prometheus_parse_errors;
        ] );
      ("json_lines", [ Alcotest.test_case "shape" `Quick test_json_lines ]);
      ("window", [ Alcotest.test_case "rates" `Quick test_window_rates ]);
      ( "int_report",
        [
          Alcotest.test_case "bounds" `Quick test_int_sink_bounds;
          Alcotest.test_case "merge" `Quick test_int_sink_merge;
          Alcotest.test_case "via runtime" `Quick test_int_sink_via_runtime;
        ] );
      ("int_property", [ qtest prop_int_hops_match_reference ]);
    ]
