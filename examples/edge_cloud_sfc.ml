(* The full Fig. 2 edge-cloud scenario: three tenants, three service
   paths, a workload of many flows, per-path accounting — the closest
   analog to running the paper's prototype testbed end to end.

   Run with: dune exec examples/edge_cloud_sfc.exe *)

open Dejavu_core

let ip = Netpkt.Ip4.of_string_exn
let mac = Netpkt.Mac.of_string_exn

type accum = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable to_cpu : int;
  mutable cpu_round_trips : int;
  mutable recircs : int;
  mutable latency_sum : float;
}

let fresh () =
  {
    sent = 0;
    delivered = 0;
    dropped = 0;
    to_cpu = 0;
    cpu_round_trips = 0;
    recircs = 0;
    latency_sum = 0.0;
  }

let captured = ref []
let capture_ts = ref 0

let capture frame =
  incr capture_ts;
  captured :=
    Netpkt.Pcap.packet ~ts_sec:1700000000 ~ts_usec:(!capture_ts * 10) frame
    :: !captured

let () =
  Format.printf "== Edge-cloud SFC (Fig. 2) ==@.@.";
  let input = Nflib.Catalog.edge_cloud_input ~extended:true () in
  let compiled =
    match Compiler.compile input with
    | Ok c -> c
    | Error e -> failwith ("compile failed: " ^ e)
  in
  Format.printf "%a@." Compiler.pp_summary compiled;
  let runtime = Runtime.create compiled in
  Nflib.Catalog.attach_handlers runtime compiled;

  (* A workload per path: tenant-1 flows to the VIP (red), tenant-2 and
     tenant-3 to their services (orange/green), plus a slice of
     monitored and blocked traffic. *)
  let st = Random.State.make [| 11 |] in
  let client () = Netpkt.Ip4.of_octets 203 0 113 (1 + Random.State.int st 250) in
  let workloads =
    [
      ("red", 100, fun () -> Nflib.Catalog.tenant1_vip);
      ("orange", 60, fun () -> Netpkt.Ip4.of_octets 10 0 2 (1 + Random.State.int st 200));
      ("green", 40, fun () -> Netpkt.Ip4.of_octets 10 0 3 (1 + Random.State.int st 200));
      ("monitor", 20, fun () -> Netpkt.Ip4.of_octets 10 0 4 (1 + Random.State.int st 200));
      ("blocked", 10, fun () -> Nflib.Catalog.tenant1_vip);
    ]
  in
  let table = Hashtbl.create 8 in
  List.iter
    (fun (name, count, dst_of) ->
      let acc = fresh () in
      Hashtbl.replace table name acc;
      for i = 1 to count do
        let src =
          if String.equal name "blocked" then
            Netpkt.Ip4.of_octets 198 51 100 (1 + (i mod 250))
          else client ()
        in
        let flow =
          {
            Netpkt.Flow.src;
            dst = dst_of ();
            proto =
              (if i mod 4 = 0 then Netpkt.Ipv4.proto_udp else Netpkt.Ipv4.proto_tcp);
            src_port = 1024 + Random.State.int st 60000;
            dst_port = 80;
          }
        in
        let pkt =
          Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:aa:00:00:00:01")
            ~dst_mac:(mac "02:00:00:00:00:fe") flow
        in
        acc.sent <- acc.sent + 1;
        match Ptf.send runtime ~in_port:(i mod 16) pkt with
        | Error e -> Format.printf "  !! %s: %s@." name e
        | Ok o ->
            let c = o.Ptf.runtime.Runtime.counters in
            acc.cpu_round_trips <-
              acc.cpu_round_trips + c.Runtime.Counters.cpu_round_trips;
            acc.recircs <- acc.recircs + c.Runtime.Counters.recircs;
            acc.latency_sum <- acc.latency_sum +. c.Runtime.Counters.latency_ns;
            (match o.Ptf.runtime.Runtime.verdict with
            | Asic.Chip.Emitted { frame; _ } ->
                acc.delivered <- acc.delivered + 1;
                capture frame
            | Asic.Chip.Dropped -> acc.dropped <- acc.dropped + 1
            | Asic.Chip.To_cpu _ -> acc.to_cpu <- acc.to_cpu + 1)
      done)
    workloads;

  Format.printf "@.%-9s %6s %10s %8s %7s %10s %12s@." "path" "sent" "delivered"
    "dropped" "cpu" "recircs" "avg latency";
  List.iter
    (fun (name, _, _) ->
      let a = Hashtbl.find table name in
      Format.printf "%-9s %6d %10d %8d %7d %10d %9.0f ns@." name a.sent
        a.delivered a.dropped a.cpu_round_trips a.recircs
        (a.latency_sum /. float_of_int (max 1 a.sent)))
    workloads;

  (* LB behaviour summary: distinct flows -> distinct backends. *)
  let lb_table =
    Option.get
      (Compiler.find_nf_table compiled ~nf:Nflib.Lb.name
         ~table:Nflib.Lb.table_name)
  in
  Format.printf "@.LB sessions installed: %d@." (P4ir.Table.size lb_table);

  (* Throughput prediction for each path after placement (§4 model). *)
  let ports = Asic.Chip.ports compiled.Compiler.chip in
  Format.printf "@.predicted capacity per path (Sec. 4 model):@.";
  List.iter
    (fun (chain, path) ->
      Format.printf "  %-9s %5.0f Gbps (recircs=%d)@." chain.Chain.name
        (Model.chain_throughput_gbps compiled.Compiler.input.Compiler.spec ports
           ~recircs:path.Traversal.recircs)
        path.Traversal.recircs)
    compiled.Compiler.plan.Branching.paths;

  (* Dump everything that left the switch to a capture file — open it in
     wireshark/tcpdump. *)
  let path = Filename.concat (Filename.get_temp_dir_name ()) "dejavu_edge_cloud.pcap" in
  Netpkt.Pcap.write_file path (List.rev !captured);
  Format.printf "@.wrote %d delivered frames to %s@." (List.length !captured) path;
  ignore ip
