(* Writing a new NF against the public API (§3.1): a "geo-fence" that
   drops traffic from a configured set of source prefixes *only* for
   tenants that opted in (read from the SFC context data) — then
   deploying it in a chain next to the stock NFs.

   This is the paper's Fig. 4 experience: one table, a handful of
   actions, all platform details hidden behind the hdr argument.

   Run with: dune exec examples/custom_nf.exe *)

open Dejavu_core

let ip = Netpkt.Ip4.of_string_exn
let pfx = Netpkt.Ip4.prefix_of_string_exn
let mac = Netpkt.Mac.of_string_exn

(* --- the NF ------------------------------------------------------- *)

let geo_fence_name = "geo_fence"

(* One fence rule as a typed table entry — used both to populate the
   table at construction time and for live Ctrl ops later. *)
let fence_entry ((p : Netpkt.Ip4.prefix), tenant) =
  let open P4ir in
  {
    Table.priority = 0;
    patterns =
      [
        Table.M_ternary
          {
            value = Bitval.make ~width:32 (Netpkt.Ip4.to_int64 p.Netpkt.Ip4.addr);
            mask = Bitval.make ~width:32 (Netpkt.Ip4.prefix_mask p.Netpkt.Ip4.len);
          };
        Table.M_exact (Bitval.of_int ~width:16 tenant);
      ];
    action = "geo_deny";
    args = [];
  }

let geo_fence ~(fenced : (Netpkt.Ip4.prefix * int) list) () =
  let open P4ir in
  (* Deny when (src in prefix) and (tenant ctx = tenant). *)
  let deny =
    Action.make "geo_deny"
      [ Action.Assign (Sfc_header.drop_flag, Expr.const ~width:1 1) ]
  in
  let table =
    Table.make ~name:"fence"
      ~keys:
        [
          { Table.field = Net_hdrs.ip_src; kind = Table.Ternary; width = 32 };
          { Table.field = Sfc_header.ctx_val 0; kind = Table.Exact; width = 16 };
        ]
      ~actions:[ deny; Action.no_op ]
      ~default:("NoAction", []) ~max_size:256 ()
  in
  Result.map
    (fun () ->
      Nf.make ~name:geo_fence_name
        ~description:"per-tenant geo-fence on source prefixes"
        ~parser:(Net_hdrs.base_parser ~name:geo_fence_name ())
        ~tables:[ table ]
        ~body:[ P4ir.Control.Apply "fence" ]
        ())
    (Table.add_entries table (List.map fence_entry fenced))

(* --- deployment ---------------------------------------------------- *)

let () =
  Format.printf "== Deploying a custom NF ==@.@.";
  (* Tenant 3 (the green chain) opts into fencing 198.18.0.0/15. *)
  let fenced = [ (pfx "198.18.0.0/15", 3) ] in
  let registry =
    (geo_fence_name, geo_fence ~fenced) :: Nflib.Catalog.registry ()
  in
  let chains =
    [
      Chain.make ~path_id:77 ~name:"fenced-green"
        ~nfs:[ "classifier"; geo_fence_name; "router" ]
        ~weight:0.5 ~exit_port:1 ();
      Chain.make ~path_id:10 ~name:"red"
        ~nfs:[ "classifier"; "fw"; "vgw"; "lb"; "router" ]
        ~weight:0.5 ~exit_port:1 ();
    ]
  in
  (* The stock classifier maps 10.0.3.0/24 to path 30; our new policy
     wants it on path 77 instead, so we give the classifier NF a rule
     set of our own. *)
  let rules =
    [
      {
        Nflib.Classifier.dst_prefix = pfx "10.0.3.0/24";
        proto = None;
        path_id = 77;
        tenant = 3;
      };
      {
        Nflib.Classifier.dst_prefix = pfx "10.0.1.0/24";
        proto = None;
        path_id = 10;
        tenant = 1;
      };
    ]
  in
  let registry =
    ("classifier", Nflib.Classifier.create rules)
    :: List.remove_assoc "classifier" registry
  in
  let input =
    Compiler.default_input ~registry ~chains ~strategy:Placement.Greedy ()
  in
  let compiled =
    match Compiler.compile input with
    | Ok c -> c
    | Error e -> failwith ("compile failed: " ^ e)
  in
  Format.printf "%a@." Compiler.pp_summary compiled;
  let rt = Runtime.create compiled in
  Nflib.Catalog.attach_handlers rt compiled;
  let send ~src ~dst =
    let pkt =
      Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
        ~dst_mac:(mac "02:00:00:00:00:02")
        {
          Netpkt.Flow.src = ip src;
          dst = ip dst;
          proto = Netpkt.Ipv4.proto_tcp;
          src_port = 9999;
          dst_port = 80;
        }
    in
    match Ptf.send rt ~in_port:0 pkt with
    | Error e -> Format.printf "  %s -> %s: error %s@." src dst e
    | Ok o ->
        Format.printf "  %-15s -> %-10s : %s@." src dst
          (match o.Ptf.runtime.Runtime.verdict with
          | Asic.Chip.Emitted { port; _ } -> Printf.sprintf "emitted (port %d)" port
          | Asic.Chip.Dropped -> "DROPPED by the geo-fence"
          | Asic.Chip.To_cpu _ -> "to CPU")
  in
  Format.printf "@.tenant-3 traffic (fenced):@.";
  send ~src:"198.18.5.5" ~dst:"10.0.3.50";
  send ~src:"203.0.113.5" ~dst:"10.0.3.50";
  Format.printf "@.tenant-1 traffic (not fenced, same source):@.";
  send ~src:"198.18.5.5" ~dst:"10.0.1.10";
  (* Live policy update: tenant 3 fences another source prefix at
     runtime through the typed control-plane op language — no recompile,
     no restart. Ops address tables by their composed (per-NF-instance)
     name. *)
  Format.printf "@.tenant 3 fences 203.0.113.0/24 at runtime (one Ctrl op):@.";
  (match
     Runtime.apply_ops rt
       [
         Ctrl.Table
           ( Compose.nf_table_name ~nf:geo_fence_name "fence",
             Ctrl.Add (fence_entry (pfx "203.0.113.0/24", 3)) );
       ]
   with
  | Ok _ -> ()
  | Error e -> failwith ("live update failed: " ^ e));
  send ~src:"203.0.113.5" ~dst:"10.0.3.50"
