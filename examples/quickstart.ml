(* Quickstart: compile the Fig. 2 edge-cloud service chains onto the
   modeled Tofino, then push two packets through and watch them traverse
   the chip.

   Run with: dune exec examples/quickstart.exe *)

open Dejavu_core

let ip = Netpkt.Ip4.of_string_exn
let mac = Netpkt.Mac.of_string_exn

let () =
  Format.printf "== Dejavu quickstart ==@.@.";
  (* 1. Compile: five NFs, three chains, one switch. *)
  let input = Nflib.Catalog.edge_cloud_input () in
  let compiled =
    match Compiler.compile input with
    | Ok c -> c
    | Error e -> failwith ("compile failed: " ^ e)
  in
  Format.printf "%a@." Compiler.pp_summary compiled;
  (* 2. Bring up the control plane (LB session handling). *)
  let runtime = Runtime.create compiled in
  Nflib.Catalog.attach_handlers runtime compiled;
  (* 3. A packet on the green path: classifier -> router. *)
  let green_flow =
    {
      Netpkt.Flow.src = ip "203.0.113.7";
      dst = ip "10.0.3.50";
      proto = Netpkt.Ipv4.proto_tcp;
      src_port = 12345;
      dst_port = 443;
    }
  in
  let pkt =
    Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:11:22:33:44:55")
      ~dst_mac:(mac "02:00:00:00:00:fe") green_flow
  in
  (match Ptf.send runtime ~in_port:0 pkt with
  | Ok o ->
      let c = o.Ptf.runtime.Runtime.counters in
      Format.printf "@.green-path packet: recircs=%d resubmits=%d latency=%.0f ns@."
        c.Runtime.Counters.recircs c.Runtime.Counters.resubmits
        c.Runtime.Counters.latency_ns;
      Option.iter (Format.printf "  out: %a@." Netpkt.Pkt.pp) o.Ptf.decoded
  | Error e -> Format.printf "green-path packet failed: %s@." e);
  (* 4. A packet to the load-balanced VIP: the full red chain, with a
     control-plane session install on first sight. *)
  let red_flow =
    {
      Netpkt.Flow.src = ip "203.0.113.9";
      dst = Nflib.Catalog.tenant1_vip;
      proto = Netpkt.Ipv4.proto_tcp;
      src_port = 5555;
      dst_port = 80;
    }
  in
  let pkt =
    Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:11:22:33:44:66")
      ~dst_mac:(mac "02:00:00:00:00:fe") red_flow
  in
  match Ptf.send runtime ~in_port:0 pkt with
  | Ok o ->
      let c = o.Ptf.runtime.Runtime.counters in
      Format.printf
        "@.red-path packet: cpu_round_trips=%d recircs=%d latency=%.0f ns@."
        c.Runtime.Counters.cpu_round_trips c.Runtime.Counters.recircs
        c.Runtime.Counters.latency_ns;
      Option.iter (Format.printf "  out: %a@." Netpkt.Pkt.pp) o.Ptf.decoded
  | Error e -> Format.printf "red-path packet failed: %s@." e
