(* Placement study: walk through the paper's Fig. 6 example, then let
   every optimizer strategy loose on progressively harder policies (more
   chains, bigger chips) and compare the weighted recirculation counts.

   Run with: dune exec examples/placement_study.exe *)

open Dejavu_core

let ing p = { Asic.Pipelet.pipeline = p; kind = Asic.Pipelet.Ingress }
let eg p = { Asic.Pipelet.pipeline = p; kind = Asic.Pipelet.Egress }

let synthetic_input spec chains =
  {
    Placement.spec;
    resources_of =
      (fun _ -> { P4ir.Resources.zero with P4ir.Resources.stages = 2 });
    chains;
    entry_pipeline = 0;
    pinned = [];
    framework_stages_per_nf = 2;
    framework_stages_fixed = 1;
  }

let () =
  Format.printf "== Part 1: the Fig. 6 walkthrough ==@.@.";
  let spec = Asic.Spec.wedge_100b in
  let chain = [ "A"; "B"; "C"; "D"; "E"; "F" ] in
  let show name layout =
    match Traversal.solve spec layout ~entry_pipeline:0 ~exit_port:1 chain with
    | None -> Format.printf "%-10s unroutable@." name
    | Some p -> Format.printf "%-10s %a@." name Traversal.pp_path p
  in
  show "fig6(a)"
    [
      (ing 0, [ Layout.Seq [ "A"; "B" ] ]);
      (eg 0, [ Layout.Seq [ "C" ] ]);
      (ing 1, [ Layout.Seq [ "D" ] ]);
      (eg 1, [ Layout.Seq [ "E"; "F" ] ]);
    ];
  show "fig6(b)"
    [
      (ing 0, [ Layout.Seq [ "A"; "B" ] ]);
      (eg 1, [ Layout.Seq [ "C" ] ]);
      (ing 1, [ Layout.Seq [ "D" ] ]);
      (eg 0, [ Layout.Seq [ "E"; "F" ] ]);
    ];

  Format.printf "@.== Part 2: strategies on multi-chain policies ==@.@.";
  let policies =
    [
      ( "single chain, 2 pipelines",
        Asic.Spec.wedge_100b,
        [ Chain.make ~path_id:1 ~name:"af" ~nfs:chain ~exit_port:1 () ] );
      ( "three overlapping chains, 2 pipelines",
        Asic.Spec.wedge_100b,
        [
          Chain.make ~path_id:1 ~name:"full" ~nfs:chain ~weight:0.5 ~exit_port:1 ();
          Chain.make ~path_id:2 ~name:"short"
            ~nfs:[ "A"; "C"; "F" ] ~weight:0.3 ~exit_port:1 ();
          Chain.make ~path_id:3 ~name:"reverse-ish"
            ~nfs:[ "A"; "D"; "B"; "F" ] ~weight:0.2 ~exit_port:1 ();
        ] );
      ( "three chains, 4 pipelines",
        Asic.Spec.tofino_4pipe,
        [
          Chain.make ~path_id:1 ~name:"full" ~nfs:chain ~weight:0.5 ~exit_port:1 ();
          Chain.make ~path_id:2 ~name:"short"
            ~nfs:[ "A"; "C"; "F" ] ~weight:0.3 ~exit_port:1 ();
          Chain.make ~path_id:3 ~name:"long"
            ~nfs:[ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" ] ~weight:0.2
            ~exit_port:1 ();
        ] );
    ]
  in
  List.iter
    (fun (name, spec, chains) ->
      Format.printf "--- %s ---@." name;
      let inp = synthetic_input spec chains in
      let n_nfs = List.length (Chain.all_nfs chains) in
      let space =
        float_of_int (Asic.Spec.n_pipelets spec) ** float_of_int n_nfs
      in
      List.iter
        (fun (sname, strategy) ->
          if strategy = Placement.Exhaustive && space > 1e5 then
            Format.printf "  %-12s skipped (%.0f assignments)@." sname space
          else
          let t0 = Sys.time () in
          match Placement.solve inp strategy with
          | Error e -> Format.printf "  %-12s failed: %s@." sname e
          | Ok (layout, cost) ->
              Format.printf "  %-12s cost=%.3f (%.0f ms)@." sname cost
                ((Sys.time () -. t0) *. 1000.0);
              if cost > 0.0 then
                List.iter
                  (fun (c : Chain.t) ->
                    match
                      Traversal.solve spec layout ~entry_pipeline:0
                        ~exit_port:c.Chain.exit_port c.Chain.nfs
                    with
                    | Some p when p.Traversal.recircs + p.Traversal.resubmits > 0 ->
                        Format.printf "      %s: %d recircs, %d resubmits@."
                          c.Chain.name p.Traversal.recircs p.Traversal.resubmits
                    | _ -> ())
                  chains)
        [
          ("naive", Placement.Naive);
          ("greedy", Placement.Greedy);
          ("anneal", Placement.default_anneal);
          ("exhaustive", Placement.Exhaustive);
        ];
      Format.printf "@.")
    policies;

  Format.printf "== Part 3: parallel seeded restarts ==@.@.";
  (* One annealing run can get stuck in a local minimum; restarts from
     several seeds explore independently and keep the cheapest layout.
     The restarts run on an OCaml 5 domain pool, and the merge is
     deterministic: same seeds -> same winner, whatever the domain
     count or interleaving. *)
  let _, spec, chains = List.nth policies 2 in
  let inp = synthetic_input spec chains in
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  List.iter
    (fun domains ->
      let t0 = Sys.time () in
      match Placement.solve_parallel ~domains ~seeds inp with
      | Error e -> Format.printf "  %d domain(s): failed: %s@." domains e
      | Ok r ->
          Format.printf "  %d domain(s): best cost=%.3f (%.0f ms)  per seed:"
            domains r.Placement.cost
            ((Sys.time () -. t0) *. 1000.0);
          List.iter
            (fun (s : Placement.restart) ->
              match s.Placement.cost with
              | Some c -> Format.printf " %d->%.3f" s.Placement.seed c
              | None -> Format.printf " %d->infeasible" s.Placement.seed)
            r.Placement.restarts;
          Format.printf "@.")
    [ 1; 4 ]
