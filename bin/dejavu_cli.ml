(* The dejavu command-line tool: compile the edge-cloud deployment onto
   the modeled ASIC, inspect placements and generated programs, and push
   packets through chains.

     dejavu compile [--strategy greedy] [--extended]
     dejavu send --dst 10.0.1.10 [--src ...] [--trace]
     dejavu run [--packets 200] [--domains 4] [--cache [--cache-capacity N]]
     dejavu churn [--ops 10000] [--op-batch 50] [--domains 2] [--cache]
     dejavu programs [--pipelet "ingress 0"]
     dejavu report
     dejavu strategies
     dejavu place [--domains 4] [--seeds 1,2,3] *)

open Dejavu_core

let strategy_conv =
  let parse = function
    | "naive" -> Ok Placement.Naive
    | "greedy" -> Ok Placement.Greedy
    | "anneal" -> Ok Placement.default_anneal
    | "exhaustive" -> Ok Placement.Exhaustive
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print ppf s = Placement.pp_strategy ppf s in
  Cmdliner.Arg.conv (parse, print)

let strategy_arg =
  Cmdliner.Arg.(
    value
    & opt strategy_conv Placement.Exhaustive
    & info [ "strategy"; "s" ] ~docv:"STRATEGY"
        ~doc:"Placement strategy: naive, greedy, anneal or exhaustive.")

let extended_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "extended" ]
        ~doc:"Include the monitoring chain (mirror tap + DSCP marker).")

let compile ~strategy ~extended =
  Compiler.compile (Nflib.Catalog.edge_cloud_input ~strategy ~extended ())

let or_die = function
  | Ok v -> v
  | Error e ->
      Format.eprintf "error: %s@." e;
      exit 1

(* --- compile ------------------------------------------------------- *)

let compile_cmd =
  let run strategy extended =
    let compiled = or_die (compile ~strategy ~extended) in
    Format.printf "%a@." Compiler.pp_summary compiled;
    Format.printf "branching entries:@.";
    List.iter
      (fun e -> Format.printf "  %a@." Branching.pp_entry e)
      compiled.Compiler.plan.Branching.branching
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "compile" ~doc:"Compile the Fig. 2 deployment and show the placement.")
    Cmdliner.Term.(const run $ strategy_arg $ extended_arg)

(* --- report -------------------------------------------------------- *)

let report_cmd =
  let run strategy extended =
    let compiled = or_die (compile ~strategy ~extended) in
    Format.printf "%a@." Compiler.pp_report (Compiler.framework_report compiled)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "report"
       ~doc:"Print the Dejavu framework resource overhead (Table 1).")
    Cmdliner.Term.(const run $ strategy_arg $ extended_arg)

(* --- programs ------------------------------------------------------ *)

let programs_cmd =
  let pipelet_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "pipelet" ] ~docv:"PIPELET"
          ~doc:"Only this pipelet, e.g. \"ingress 0\" or \"egress 1\".")
  in
  let run strategy extended which =
    let compiled = or_die (compile ~strategy ~extended) in
    List.iter
      (fun ((id : Asic.Pipelet.id), (b : Compose.built)) ->
        let name = Format.asprintf "%a" Asic.Pipelet.pp_id id in
        if match which with None -> true | Some w -> String.equal w name then begin
          Format.printf "/* ------------ %s ------------ */@." name;
          Format.printf "%a@.@." P4ir.Program.pp b.Compose.program
        end)
      compiled.Compiler.built
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "programs"
       ~doc:"Dump the generated (pseudo-P4) pipelet programs.")
    Cmdliner.Term.(const run $ strategy_arg $ extended_arg $ pipelet_arg)

(* --- send ---------------------------------------------------------- *)

let ip_conv =
  Cmdliner.Arg.conv
    ( (fun s -> Result.map_error (fun e -> `Msg e) (Netpkt.Ip4.of_string s)),
      Netpkt.Ip4.pp )

let send_cmd =
  let dst_arg =
    Cmdliner.Arg.(
      required
      & opt (some ip_conv) None
      & info [ "dst" ] ~docv:"IP" ~doc:"Destination address.")
  in
  let src_arg =
    Cmdliner.Arg.(
      value
      & opt ip_conv (Netpkt.Ip4.of_string_exn "203.0.113.10")
      & info [ "src" ] ~docv:"IP" ~doc:"Source address.")
  in
  let dport_arg =
    Cmdliner.Arg.(
      value & opt int 80 & info [ "dport" ] ~docv:"PORT" ~doc:"Destination port.")
  in
  let in_port_arg =
    Cmdliner.Arg.(
      value & opt int 0 & info [ "in-port" ] ~docv:"N" ~doc:"Switch input port.")
  in
  let trace_arg =
    Cmdliner.Arg.(
      value & flag & info [ "trace" ] ~doc:"Print the MAU-level trace.")
  in
  let run strategy extended dst src dport in_port trace =
    let compiled = or_die (compile ~strategy ~extended) in
    let rt = Runtime.create compiled in
    Nflib.Catalog.attach_handlers rt compiled;
    let pkt =
      Netpkt.Pkt.tcp_flow
        ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
        ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
        {
          Netpkt.Flow.src = src;
          dst;
          proto = Netpkt.Ipv4.proto_tcp;
          src_port = 40000;
          dst_port = dport;
        }
    in
    if trace then begin
      match
        Asic.Chip.inject compiled.Compiler.chip ~in_port (Netpkt.Pkt.encode pkt)
      with
      | Error e -> Format.printf "error: %s@." e
      | Ok r ->
          List.iter
            (fun ev ->
              match ev with
              | P4ir.Control.T_table (t, a, hit) ->
                  Format.printf "  %-30s -> %-14s %s@." t a
                    (if hit then "(hit)" else "(miss)")
              | P4ir.Control.T_gateway (c, v) -> Format.printf "  if %s -> %b@." c v
              | P4ir.Control.T_enter l -> Format.printf "  >> %s@." l)
            r.Asic.Chip.trace
    end;
    match Ptf.send rt ~in_port pkt with
    | Error e ->
        Format.eprintf "error: %s@." e;
        exit 1
    | Ok o ->
        Format.printf "verdict: %s@."
          (match o.Ptf.runtime.Runtime.verdict with
          | Asic.Chip.Emitted { port; _ } -> Printf.sprintf "emitted on port %d" port
          | Asic.Chip.Dropped -> "dropped"
          | Asic.Chip.To_cpu _ -> "to CPU");
        let c = o.Ptf.runtime.Runtime.counters in
        Format.printf
          "recirculations=%d resubmissions=%d cpu-round-trips=%d latency=%.0f ns@."
          c.Runtime.Counters.recircs c.Runtime.Counters.resubmits
          c.Runtime.Counters.cpu_round_trips c.Runtime.Counters.latency_ns;
        Option.iter (Format.printf "packet out: %a@." Netpkt.Pkt.pp) o.Ptf.decoded
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "send" ~doc:"Push one packet through the deployment.")
    Cmdliner.Term.(
      const run $ strategy_arg $ extended_arg $ dst_arg $ src_arg $ dport_arg
      $ in_port_arg $ trace_arg)

(* --- place ---------------------------------------------------------- *)

let place_cmd =
  let domains_arg =
    Cmdliner.Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"N"
          ~doc:"Domains in the restart pool (1 = sequential).")
  in
  let seeds_arg =
    Cmdliner.Arg.(
      value
      & opt (list int) [ 1; 2; 3; 4; 5; 6 ]
      & info [ "seeds" ] ~docv:"S1,S2,..."
          ~doc:"Annealing seeds, one independent restart each.")
  in
  let iterations_arg =
    Cmdliner.Arg.(
      value & opt int 4000
      & info [ "iterations" ] ~docv:"N" ~doc:"Annealing iterations per restart.")
  in
  let scorer_conv =
    let parse = function
      | "fast" -> Ok Placement.Fast
      | "reference" -> Ok Placement.Reference
      | s -> Error (`Msg (Printf.sprintf "unknown scorer %S" s))
    in
    let print ppf = function
      | Placement.Fast -> Format.pp_print_string ppf "fast"
      | Placement.Reference -> Format.pp_print_string ppf "reference"
    in
    Cmdliner.Arg.conv (parse, print)
  in
  let scorer_arg =
    Cmdliner.Arg.(
      value
      & opt scorer_conv Placement.Fast
      & info [ "scorer" ] ~docv:"SCORER"
          ~doc:"Scoring backend: fast (memoized heap solver) or reference.")
  in
  let run extended domains seeds iterations scorer =
    let input =
      Nflib.Catalog.edge_cloud_input ~strategy:Placement.default_anneal
        ~extended ()
    in
    let pinput = or_die (Compiler.placement_input input) in
    let result =
      or_die
        (Placement.solve_parallel ~scorer ~iterations ~domains ~seeds pinput)
    in
    Format.printf "restarts (%d domains):@." domains;
    List.iter
      (fun (r : Placement.restart) ->
        match r.Placement.cost with
        | Some c -> Format.printf "  seed %-4d cost %.3f@." r.Placement.seed c
        | None -> Format.printf "  seed %-4d infeasible@." r.Placement.seed)
      result.Placement.restarts;
    Format.printf "best (cost %.3f):@.%a@." result.Placement.cost Layout.pp
      result.Placement.layout
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "place"
       ~doc:
         "Anneal the deployment's placement with parallel seeded restarts \
          and print the per-seed costs and the best layout.")
    Cmdliner.Term.(
      const run $ extended_arg $ domains_arg $ seeds_arg $ iterations_arg
      $ scorer_arg)

(* --- cluster -------------------------------------------------------- *)

let cluster_cmd =
  let switches_arg =
    Cmdliner.Arg.(
      value & opt int 2
      & info [ "switches"; "n" ] ~docv:"N" ~doc:"Cluster size (linear chain).")
  in
  let nfs_arg =
    Cmdliner.Arg.(
      value & opt int 12
      & info [ "nfs" ] ~docv:"M" ~doc:"Length of the synthetic chain.")
  in
  let stages_arg =
    Cmdliner.Arg.(
      value & opt int 2
      & info [ "stages" ] ~docv:"S" ~doc:"MAU stages per synthetic NF.")
  in
  let run n_switches n_nfs stages =
    let spec = Asic.Spec.wedge_100b in
    let c = Cluster.make ~spec ~n_switches () in
    let chain = List.init n_nfs (fun i -> Printf.sprintf "nf%02d" i) in
    let chains =
      [ Chain.make ~path_id:1 ~name:"chain" ~nfs:chain ~exit_port:1 () ]
    in
    let resources_of _ = { P4ir.Resources.zero with P4ir.Resources.stages } in
    match
      Cluster.place c ~resources_of ~chains ~exit_switch:(n_switches - 1)
        ~exit_pipeline:0 ~pinned:[]
        (Cluster.Anneal { iterations = 2000; seed = 1 })
    with
    | Error e ->
        Format.eprintf "placement failed: %s@." e;
        exit 1
    | Ok (layout, cost) -> (
        Format.printf "placement (cost %.2f):@.%a@." cost Layout.pp layout;
        match
          Cluster.solve c layout ~entry_pipeline:0 ~exit_switch:(n_switches - 1)
            ~exit_pipeline:0 chain
        with
        | None -> Format.printf "unroutable@."
        | Some p ->
            Format.printf "%a@.latency: %.0f ns@." Cluster.pp_path p
              (Cluster.latency_ns c p))
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "cluster"
       ~doc:"Place a synthetic chain on a multi-switch cluster (Sec. 7).")
    Cmdliner.Term.(const run $ switches_arg $ nfs_arg $ stages_arg)

(* --- shared workload ------------------------------------------------ *)

(* The mixed green/orange/red workload used by `stats` and `run`. *)
let mixed_workload packets =
  let ip = Netpkt.Ip4.of_string_exn in
  let flow ~src ~dst ~src_port ~dst_port =
    Netpkt.Pkt.encode
      (Netpkt.Pkt.tcp_flow
         ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
         ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
         {
           Netpkt.Flow.src = ip src;
           dst;
           proto = Netpkt.Ipv4.proto_tcp;
           src_port;
           dst_port;
         })
  in
  List.init packets (fun i ->
      let frame =
        match i mod 3 with
        | 0 ->
            flow ~src:"203.0.113.7"
              ~dst:(ip (Printf.sprintf "10.0.3.%d" (1 + (i mod 200))))
              ~src_port:(40000 + (i mod 97)) ~dst_port:443
        | 1 ->
            flow ~src:"203.0.113.8"
              ~dst:(ip (Printf.sprintf "10.0.2.%d" (1 + (i mod 200))))
              ~src_port:(41000 + (i mod 89)) ~dst_port:80
        | _ ->
            flow ~src:"203.0.113.9" ~dst:Nflib.Catalog.tenant1_vip
              ~src_port:(50000 + (i mod 61)) ~dst_port:80
      in
      (0, frame))

let packets_arg =
  Cmdliner.Arg.(
    value & opt int 200
    & info [ "packets" ] ~docv:"N"
        ~doc:"Packets in the mixed green/orange/red workload.")

(* One engine-knob vocabulary for every traffic-driving command
   (run/churn/stats/top): --domains, --cache/--cache-capacity,
   --state/--state-capacity/--ttl all parse here, into one
   [Runtime.Engine.t]. Only the domains default differs per command. *)
let engine_term ?(default_domains = 1) () =
  let domains_arg =
    Cmdliner.Arg.(
      value & opt int default_domains
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the sharded data plane (1 = sequential \
             in-place execution).")
  in
  let cache_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Enable the per-shard exact-match flow cache (whole-chain verdict \
             memoization).")
  in
  let cache_capacity_arg =
    Cmdliner.Arg.(
      value & opt int 65536
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Flow-cache capacity in entries (with --cache).")
  in
  let state_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "state" ]
          ~doc:
            "Enable the bounded per-shard state store behind the stateful \
             NFs (LRU eviction, optional TTL aging; evictions delete the \
             matching chip entries).")
  in
  let state_capacity_arg =
    Cmdliner.Arg.(
      value & opt int 65536
      & info [ "state-capacity" ] ~docv:"N"
          ~doc:"State-store capacity per table, in entries (with --state).")
  in
  let ttl_arg =
    Cmdliner.Arg.(
      value & opt int64 0L
      & info [ "ttl" ] ~docv:"NS"
          ~doc:
            "State TTL on the runtime's logical clock, in nanoseconds (with \
             --state; 0 = no aging).")
  in
  let mk domains cache cache_capacity state state_capacity ttl_ns =
    {
      Runtime.Engine.default with
      Runtime.Engine.domains;
      cache =
        (if cache then Runtime.Engine.Emc { capacity = cache_capacity }
         else Runtime.Engine.Off);
      state =
        (if state then Runtime.Engine.Bounded { capacity = state_capacity; ttl_ns }
         else Runtime.Engine.No_state);
    }
  in
  Cmdliner.Term.(
    const mk $ domains_arg $ cache_arg $ cache_capacity_arg $ state_arg
    $ state_capacity_arg $ ttl_arg)

let print_cache_stats rt =
  match Runtime.flow_cache rt with
  | None -> ()
  | Some c ->
      let s = Flow_cache.stats c in
      Format.printf
        "cache: hits=%d misses=%d hit-rate=%.1f%% inserts=%d evictions=%d \
         stale=%d invalidations=%d uncacheable=%d entries=%d/%d@."
        s.Flow_cache.hits s.Flow_cache.misses
        (100.0 *. Flow_cache.hit_rate c)
        s.Flow_cache.inserts s.Flow_cache.evictions s.Flow_cache.stale
        s.Flow_cache.invalidations s.Flow_cache.uncacheable
        (Flow_cache.length c) (Flow_cache.capacity c)

let print_state_stats rt =
  match Runtime.state_stores rt with
  | [||] -> ()
  | stores ->
      let cap = (State_store.config stores.(0)).State_store.capacity in
      (* Sum each table's occupancy and counters across the shard
         stores (the same aggregation the telemetry gauges use). *)
      let merged = Hashtbl.create 8 in
      Array.iter
        (fun store ->
          List.iter
            (fun (name, occ, (s : State_store.table_stats)) ->
              let o, h, m, i, e, x =
                Option.value ~default:(0, 0, 0, 0, 0, 0)
                  (Hashtbl.find_opt merged name)
              in
              Hashtbl.replace merged name
                ( o + occ, h + s.State_store.hits, m + s.State_store.misses,
                  i + s.State_store.inserts, e + s.State_store.evictions,
                  x + s.State_store.expirations ))
            (State_store.per_table store))
        stores;
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) merged []
      |> List.sort compare
      |> List.iter (fun (name, (occ, h, m, i, e, x)) ->
             Format.printf
               "state %-14s entries=%d/%d (x%d shards) hits=%d misses=%d \
                inserts=%d evictions=%d expirations=%d@."
               name occ cap (Array.length stores) h m i e x)

let print_batch_errors (stats : Runtime.batch_stats) =
  if stats.Runtime.error_log <> [] then begin
    Format.eprintf "batch errors (%d):@." stats.Runtime.errors;
    List.iter
      (fun (port, msg) -> Format.eprintf "  in_port=%d %s@." port msg)
      stats.Runtime.error_log;
    if stats.Runtime.suppressed > 0 then
      Format.eprintf "  ... and %d more suppressed (first %d kept)@."
        stats.Runtime.suppressed
        (List.length stats.Runtime.error_log)
  end

(* --- run ------------------------------------------------------------ *)

let run_cmd =
  let run strategy extended packets engine =
    let compiled = or_die (compile ~strategy ~extended) in
    let rt = Runtime.create ~engine compiled in
    Nflib.Catalog.attach_handlers rt compiled;
    let stats = Runtime.process_batch_parallel rt (mixed_workload packets) in
    print_batch_errors stats;
    let c = stats.Runtime.counters in
    Format.printf
      "domains=%d packets=%d emitted=%d dropped=%d to-cpu=%d errors=%d@."
      engine.Runtime.Engine.domains stats.Runtime.packets stats.Runtime.emitted
      stats.Runtime.dropped stats.Runtime.to_cpu stats.Runtime.errors;
    Format.printf
      "cpu-round-trips=%d recirculations=%d resubmissions=%d digest=%08Lx@."
      c.Runtime.Counters.cpu_round_trips c.Runtime.Counters.recircs
      c.Runtime.Counters.resubmits stats.Runtime.digest;
    print_cache_stats rt;
    print_state_stats rt
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "run"
       ~doc:
         "Push the sample workload through the deployment, optionally \
          sharded over several domains.")
    Cmdliner.Term.(
      const run $ strategy_arg $ extended_arg $ packets_arg $ engine_term ())

(* --- churn ---------------------------------------------------------- *)

let churn_cmd =
  let ops_arg =
    Cmdliner.Arg.(
      value & opt int 10_000
      & info [ "ops" ] ~docv:"N"
          ~doc:"Length of the BGP-style churn trace (add/mod/del mix).")
  in
  let op_batch_arg =
    Cmdliner.Arg.(
      value & opt int 50
      & info [ "op-batch" ] ~docv:"N"
          ~doc:"Ops submitted per control-plane batch.")
  in
  let seed_arg =
    Cmdliner.Arg.(
      value & opt int 0x5eed
      & info [ "seed" ] ~docv:"SEED" ~doc:"Churn-trace random seed.")
  in
  let run strategy extended ops op_batch seed packets engine =
    if ops <= 0 || op_batch <= 0 || packets <= 0 then begin
      Format.eprintf "error: --ops, --op-batch and --packets must be \
                      positive@.";
      exit 2
    end;
    let domains = engine.Runtime.Engine.domains in
    let cache = engine.Runtime.Engine.cache <> Runtime.Engine.Off in
    let mk () =
      let compiled = or_die (compile ~strategy ~extended) in
      let rt = Runtime.create ~engine compiled in
      Nflib.Catalog.attach_handlers rt compiled;
      rt
    in
    let trace = Nflib.Catalog.fib_churn_trace ~seed ~n:ops () in
    let batches =
      let rec split acc cur k = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | op :: rest ->
            if k = op_batch then split (List.rev cur :: acc) [ op ] 1 rest
            else split acc (op :: cur) (k + 1) rest
      in
      split [] [] 0 trace
    in
    let traffic = mixed_workload packets in
    (* Live: the producer/consumer path. Each op batch goes through the
       update queue; the data plane drains and applies it at the next
       batch boundary, so updates land between packet batches while
       traffic keeps flowing. *)
    let rt = mk () in
    let q = Runtime.control rt in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun ops ->
        ignore (Ctrl.submit q ops);
        ignore (Runtime.process_batch_parallel rt traffic))
      batches;
    let wall = Unix.gettimeofday () -. t0 in
    let failed =
      List.filter (fun (_, r) -> Result.is_error r) (Ctrl.results q)
    in
    List.iter
      (fun (id, r) ->
        match r with
        | Error e -> Format.eprintf "batch %d failed: %s@." id e
        | Ok _ -> ())
      failed;
    (* Cold oracle: a fresh runtime, the same trace, no traffic. *)
    let cold = mk () in
    (match Runtime.apply_ops cold trace with
    | Ok _ -> ()
    | Error e ->
        Format.eprintf "error: cold apply failed: %s@." e;
        exit 1);
    let live_digest = Ctrl.state_digest (Runtime.chip rt) in
    let cold_digest = Ctrl.state_digest (Runtime.chip cold) in
    let ok = failed = [] && Int64.equal live_digest cold_digest in
    Format.printf
      "churn: %d ops in %d batches of <=%d, %d pkts of traffic per batch, \
       domains=%d cache=%b@."
      ops (List.length batches) op_batch packets domains cache;
    Format.printf "wall=%.2fms (%.0f ops/s incl. traffic)@." (wall *. 1000.0)
      (float_of_int ops /. wall);
    print_cache_stats rt;
    Format.printf "state digest: live=%Lx cold=%Lx identical=%b@." live_digest
      cold_digest
      (Int64.equal live_digest cold_digest);
    print_state_stats rt;
    if not ok then begin
      Format.eprintf
        "error: live-applied state diverges from the cold-built oracle@.";
      exit 1
    end
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "churn"
       ~doc:
         "Replay a BGP-style table-update trace through the live control \
          plane while traffic flows, and verify the final state against a \
          cold-built runtime.")
    Cmdliner.Term.(
      const run $ strategy_arg $ extended_arg $ ops_arg $ op_batch_arg
      $ seed_arg $ packets_arg $ engine_term ~default_domains:2 ())

(* --- stats ---------------------------------------------------------- *)

let stats_cmd =
  let level_conv =
    Cmdliner.Arg.conv
      ( (fun s ->
          Result.map_error (fun e -> `Msg e) (Telemetry.Level.of_string s)),
        Telemetry.Level.pp )
  in
  let level_arg =
    Cmdliner.Arg.(
      value
      & opt level_conv Telemetry.Level.Counters
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Instrumentation level: counters or journeys.")
  in
  let json_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the registry as JSON instead of a table.")
  in
  let journeys_arg =
    Cmdliner.Arg.(
      value & opt int 0
      & info [ "journeys" ] ~docv:"K"
          ~doc:
            "Also print the last K packet journeys from the flight recorder \
             (implies --level journeys).")
  in
  let entries_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "entries" ] ~doc:"Also print per-entry hit counts (hit > 0).")
  in
  let prometheus_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:
            "Print the registry snapshot as Prometheus text exposition \
             (counters, histograms with cumulative buckets) and nothing \
             else. The output is self-validated through the exposition \
             parser before printing.")
  in
  let jsonl_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "jsonl" ]
          ~doc:
            "Print the registry snapshot as JSON lines (one metric object \
             per line) and nothing else.")
  in
  let postcards_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "postcards" ]
          ~doc:
            "Also print the INT postcard sink's per-flow summaries \
             (implies --level journeys).")
  in
  let run strategy extended packets level json n_journeys entries engine
      prometheus jsonl postcards =
    let compiled = or_die (compile ~strategy ~extended) in
    let rt = Runtime.create ~engine compiled in
    Nflib.Catalog.attach_handlers rt compiled;
    let level =
      if n_journeys > 0 || postcards then Telemetry.Level.Journeys else level
    in
    Runtime.set_telemetry rt level;
    let stats = Runtime.process_batch_parallel rt (mixed_workload packets) in
    print_batch_errors stats;
    if prometheus || jsonl then begin
      (* Machine-readable modes print the export and nothing else. *)
      let snap =
        match Runtime.snapshot rt with
        | Some s -> s
        | None ->
            Format.eprintf "error: telemetry is off@.";
            exit 1
      in
      if prometheus then begin
        let text = Telemetry.Export.prometheus snap in
        match Telemetry.Export.parse_prometheus text with
        | Ok _ -> print_string text
        | Error e ->
            Format.eprintf
              "error: generated exposition failed its own parser: %s@." e;
            exit 1
      end
      else print_string (Telemetry.Export.json_lines snap)
    end
    else
    match Runtime.telemetry rt with
    | None -> ()
    | Some o ->
        let chip = Runtime.chip rt in
        (* Sync the snapshot-time gauges (cache occupancy, INT sink
           sizes) so the table shows them too. *)
        ignore (Runtime.snapshot rt);
        if json then print_string (Observe.json ~indent:2 o chip ^ "\n")
        else Format.printf "%t@." (fun ppf -> Observe.pp ppf o chip);
        if entries then begin
          Format.printf "@.per-entry hits (hit > 0):@.";
          List.iter
            (fun (where, hits) ->
              List.iteri
                (fun i ((e : P4ir.Table.entry), n) ->
                  if n > 0 then
                    Format.printf "  %-40s entry %-3d %-16s %8d@." where i
                      e.P4ir.Table.action n)
                hits)
            (Observe.table_entry_hits chip)
        end;
        if n_journeys > 0 then begin
          let js = Observe.journeys o in
          let len = List.length js in
          let js = List.filteri (fun i _ -> i >= len - n_journeys) js in
          if json then
            print_string (Telemetry.Journey.list_to_json js ^ "\n")
          else begin
            Format.printf "@.flight recorder (last %d of %d captured):@."
              (List.length js)
              (Telemetry.Ring.pushed (Observe.ring o));
            List.iter (Format.printf "%a@." Telemetry.Journey.pp) js
          end
        end;
        (if postcards then
           match Runtime.int_sink rt with
           | None -> ()
           | Some sink ->
               if json then
                 print_string
                   ("[\n"
                   ^ String.concat ",\n"
                       (List.map Telemetry.Int_report.summary_to_json
                          (Telemetry.Int_report.summaries sink))
                   ^ "\n]\n")
               else
                 Format.printf "@.INT postcards per flow:@.%a@."
                   Telemetry.Int_report.pp_summaries sink);
        print_cache_stats rt;
        print_state_stats rt
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "stats"
       ~doc:
         "Run a sample workload with telemetry on and print the metrics \
          registry (and optionally the packet flight recorder, INT \
          per-flow postcards, or a Prometheus/JSON-lines export).")
    Cmdliner.Term.(
      const run $ strategy_arg $ extended_arg $ packets_arg $ level_arg
      $ json_arg $ journeys_arg $ entries_arg $ engine_term ()
      $ prometheus_arg $ jsonl_arg $ postcards_arg)

(* --- top ------------------------------------------------------------ *)

let top_cmd =
  let batches_arg =
    Cmdliner.Arg.(
      value & opt int 20
      & info [ "batches" ] ~docv:"N" ~doc:"Batches to run before exiting.")
  in
  let window_arg =
    Cmdliner.Arg.(
      value & opt int 8
      & info [ "window" ] ~docv:"K"
          ~doc:"Snapshots retained for the rate window.")
  in
  let run strategy extended packets batches window engine =
    if batches < 1 || packets < 1 then begin
      Format.eprintf "error: --batches and --packets must be positive@.";
      exit 2
    end;
    let domains = engine.Runtime.Engine.domains in
    let cache = engine.Runtime.Engine.cache <> Runtime.Engine.Off in
    let compiled = or_die (compile ~strategy ~extended) in
    let rt = Runtime.create ~engine compiled in
    Nflib.Catalog.attach_handlers rt compiled;
    Runtime.set_telemetry rt Telemetry.Level.Counters;
    let w = Telemetry.Export.Window.create ~capacity:window in
    let traffic = mixed_workload packets in
    let tty = Unix.isatty Unix.stdout in
    for b = 1 to batches do
      let stats = Runtime.process_batch_parallel rt traffic in
      let snap =
        match Runtime.snapshot rt with Some s -> s | None -> assert false
      in
      Telemetry.Export.Window.push w ~now_ns:(Telemetry.Tclock.now_ns ()) snap;
      if tty then print_string "\027[2J\027[H";
      Format.printf "dejavu top — batch %d/%d  %d pkts/batch  domains=%d%s@."
        b batches packets domains
        (if cache then "  cache=on" else "");
      (match Telemetry.Export.Window.rates w with
      | [] -> Format.printf "  (gathering: rates need two snapshots)@."
      | rates ->
          Format.printf "  window: %d snapshots over %.3fs@."
            (Telemetry.Export.Window.length w)
            (Int64.to_float (Telemetry.Export.Window.span_ns w) /. 1e9);
          List.iter
            (fun (name, r) ->
              if r > 0.0 then Format.printf "  %-44s %14.0f/s@." name r)
            rates);
      if stats.Runtime.errors > 0 then
        Format.printf "  errors this batch: %d@." stats.Runtime.errors;
      if tty then flush stdout
    done;
    print_cache_stats rt;
    print_state_stats rt
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "top"
       ~doc:
         "Live view: run the sample workload batch after batch and redraw \
          per-second counter rates computed over a sliding snapshot \
          window.")
    Cmdliner.Term.(
      const run $ strategy_arg $ extended_arg $ packets_arg $ batches_arg
      $ window_arg $ engine_term ())

(* --- strategies ---------------------------------------------------- *)

let strategies_cmd =
  let run extended =
    Format.printf "%-12s %10s@." "strategy" "objective";
    List.iter
      (fun (name, strategy) ->
        match compile ~strategy ~extended with
        | Error e -> Format.printf "%-12s failed: %s@." name e
        | Ok compiled ->
            Format.printf "%-12s %10.3f@." name compiled.Compiler.objective)
      [
        ("naive", Placement.Naive);
        ("greedy", Placement.Greedy);
        ("anneal", Placement.default_anneal);
        ("exhaustive", Placement.Exhaustive);
      ]
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "strategies"
       ~doc:"Compare placement strategies on the deployment.")
    Cmdliner.Term.(const run $ extended_arg)

let () =
  let info =
    Cmdliner.Cmd.info "dejavu" ~version:"1.0.0"
      ~doc:"Accelerated service chaining on a (modeled) single switch ASIC."
  in
  exit
    (Cmdliner.Cmd.eval
       (Cmdliner.Cmd.group info
          [
            compile_cmd; report_cmd; programs_cmd; send_cmd; strategies_cmd;
            place_cmd; cluster_cmd; stats_cmd; top_cmd; run_cmd; churn_cmd;
          ]))
