open Dejavu_core

type tunnel = {
  dst_prefix : Netpkt.Ip4.prefix;
  vni : int;
  local_vtep : Netpkt.Ip4.t;
  remote_vtep : Netpkt.Ip4.t;
}

let name = "vxlan_gw"
let encap_table = "vxlan_tunnels"

let fields_of (d : P4ir.Hdr.decl) =
  List.map (fun (f : P4ir.Hdr.field) -> f.P4ir.Hdr.name) d.P4ir.Hdr.fields

(* dst.<f> := src.<f> for every field of the (identical) layouts. *)
let copy_header ~from_hdr ~to_hdr decl =
  List.map
    (fun f ->
      P4ir.Action.Assign
        (P4ir.Fieldref.v to_hdr f, P4ir.Expr.Field (P4ir.Fieldref.v from_hdr f)))
    (fields_of decl)

(* Decap: inner stack becomes the packet. The outer Ethernet (and the
   SFC header above it) stay; outer IPv4/UDP/VXLAN and the inner
   Ethernet disappear. Inner fields copy into the outer instances so
   downstream NFs see the canonical shape; transport validity follows
   the inner packet, which needs control-flow, not just assigns. *)
let decap_block =
  let open P4ir in
  [
    Control.Run (copy_header ~from_hdr:"inner_ipv4" ~to_hdr:"ipv4" Net_hdrs.ipv4);
    Control.If
      ( Expr.Valid "inner_tcp",
        [
          Control.Run
            (copy_header ~from_hdr:"inner_tcp" ~to_hdr:"tcp" Net_hdrs.tcp
            @ [ Action.Set_valid "tcp"; Action.Set_invalid "inner_tcp" ]);
        ],
        [ Control.Run [ Action.Set_invalid "tcp" ] ] );
    Control.If
      ( Expr.Valid "inner_udp",
        [
          Control.Run
            (copy_header ~from_hdr:"inner_udp" ~to_hdr:"udp" Net_hdrs.udp
            @ [ Action.Set_valid "udp"; Action.Set_invalid "inner_udp" ]);
        ],
        [ Control.Run [ Action.Set_invalid "udp" ] ] );
    Control.Run
      [
        Action.Set_invalid "vxlan";
        Action.Set_invalid "inner_eth";
        Action.Set_invalid "inner_ipv4";
      ];
  ]

(* Encap: push the current IPv4/transport down into the inner stack and
   synthesize the outer IPv4/UDP/VXLAN from action data. *)
let encap_action =
  let open P4ir in
  let c ~width v = Expr.const ~width v in
  Action.make "tunnel_to"
    ~params:[ ("vni", 24); ("local_vtep", 32); ("remote_vtep", 32) ]
    (copy_header ~from_hdr:"ipv4" ~to_hdr:"inner_ipv4" Net_hdrs.ipv4
    @ copy_header ~from_hdr:"tcp" ~to_hdr:"inner_tcp" Net_hdrs.tcp
    @ copy_header ~from_hdr:"udp" ~to_hdr:"inner_udp" Net_hdrs.udp
    @ copy_header ~from_hdr:"eth" ~to_hdr:"inner_eth" Net_hdrs.eth
    @ [
        Action.Set_valid "inner_eth";
        Action.Set_valid "inner_ipv4";
        Action.Assign
          (Fieldref.v "inner_eth" "ethertype", c ~width:16 Net_hdrs.ethertype_ipv4);
        (* Outer IPv4: vtep to vtep, UDP payload. *)
        Action.Assign (Fieldref.v "ipv4" "src_addr", Expr.Param "local_vtep");
        Action.Assign (Fieldref.v "ipv4" "dst_addr", Expr.Param "remote_vtep");
        Action.Assign (Fieldref.v "ipv4" "protocol", c ~width:8 Net_hdrs.proto_udp);
        Action.Assign (Fieldref.v "ipv4" "ttl", c ~width:8 64);
        (* Outer UDP + VXLAN. *)
        Action.Set_valid "udp";
        Action.Assign (Fieldref.v "udp" "src_port", c ~width:16 49152);
        Action.Assign (Fieldref.v "udp" "dst_port", c ~width:16 4789);
        Action.Set_valid "vxlan";
        Action.Assign (Fieldref.v "vxlan" "flags", c ~width:8 0x08);
        Action.Assign (Fieldref.v "vxlan" "reserved1", c ~width:24 0);
        Action.Assign (Fieldref.v "vxlan" "vni", Expr.Param "vni");
        Action.Assign (Fieldref.v "vxlan" "reserved2", c ~width:8 0);
      ])

let make_encap_table tunnels =
  let open P4ir in
  let table =
    Table.make ~name:encap_table
      ~keys:[ { Table.field = Net_hdrs.ip_dst; kind = Table.Lpm; width = 32 } ]
      ~actions:[ encap_action; Action.no_op ]
      ~default:("NoAction", []) ~max_size:1024 ()
  in
  Result.map
    (fun () -> table)
    (Table.add_entries table
       (List.map
          (fun t ->
            {
              Table.priority = 0;
              patterns =
                [
                  Table.M_lpm
                    {
                      value =
                        Bitval.make ~width:32
                          (Netpkt.Ip4.to_int64 t.dst_prefix.Netpkt.Ip4.addr);
                      prefix_len = t.dst_prefix.Netpkt.Ip4.len;
                    };
                ];
              action = "tunnel_to";
              args =
                [
                  Bitval.of_int ~width:24 t.vni;
                  Bitval.make ~width:32 (Netpkt.Ip4.to_int64 t.local_vtep);
                  Bitval.make ~width:32 (Netpkt.Ip4.to_int64 t.remote_vtep);
                ];
            })
          tunnels))

(* After the encap action ran, the inner transport's validity must
   mirror what the packet carried before (actions cannot branch); the
   preserved inner_ipv4.protocol says which it was. The outer transport
   is now the tunnel UDP. *)
let encap_fixup =
  let open P4ir in
  [
    Control.If
      ( Expr.(Bin (Eq, Field (Fieldref.v "inner_ipv4" "protocol"), const ~width:8 Net_hdrs.proto_tcp)),
        [ Control.Run [ Action.Set_valid "inner_tcp"; Action.Set_invalid "tcp" ] ],
        [
          Control.If
            ( Expr.(
                Bin
                  ( Eq,
                    Field (Fieldref.v "inner_ipv4" "protocol"),
                    const ~width:8 Net_hdrs.proto_udp )),
              [ Control.Run [ Action.Set_valid "inner_udp" ] ],
              [] );
        ] );
  ]

let body =
  [
    P4ir.Control.If
      ( P4ir.Expr.Valid "vxlan",
        decap_block,
        [ P4ir.Control.Apply_switch (encap_table, [ ("tunnel_to", encap_fixup) ], []) ]
      );
  ]

let create tunnels () =
  Result.map
    (fun table ->
      Nf.make ~name ~description:"VXLAN tunnel gateway (full encap/decap)"
        ~parser:(Net_hdrs.base_parser ~with_vxlan:true ~name ())
        ~tables:[ table ]
        ~body ())
    (make_encap_table tunnels)

let reference_decap (layers : Netpkt.Pkt.t) =
  let rec strip acc = function
    | Netpkt.Pkt.Ipv4 _ :: Netpkt.Pkt.Udp u :: Netpkt.Pkt.Vxlan _
      :: Netpkt.Pkt.Eth _ :: rest
      when u.Netpkt.Udp.dst_port = Netpkt.Udp.port_vxlan ->
        List.rev_append acc rest
    | layer :: rest -> strip (layer :: acc) rest
    | [] -> layers
  in
  strip [] layers
