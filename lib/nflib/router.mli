(** IP router: LPM on the destination, MAC rewrite, TTL decrement, drop
    on TTL expiry or missing route. Forwarding-port selection belongs to
    the chain policy (the branching table), so routes carry next-hop
    MACs only. *)

type route = {
  prefix : Netpkt.Ip4.prefix;
  next_hop_mac : Netpkt.Mac.t;
  src_mac : Netpkt.Mac.t;
}

val name : string
val table_name : string

val route_entry : route -> P4ir.Table.entry
(** The typed table entry for one route — what construction-time
    population installs and what control-plane ops ([Ctrl.Add/Mod/Del],
    e.g. a BGP-style churn trace) are built around. *)

val create : route list -> unit -> (Dejavu_core.Nf.t, string) result

type ref_output =
  | Forward of { next_hop_mac : Netpkt.Mac.t; src_mac : Netpkt.Mac.t; ttl : int }
  | Drop_ttl
  | Drop_no_route

val reference : route list -> dst:Netpkt.Ip4.t -> ttl:int -> ref_output
