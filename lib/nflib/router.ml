open Dejavu_core

type route = {
  prefix : Netpkt.Ip4.prefix;
  next_hop_mac : Netpkt.Mac.t;
  src_mac : Netpkt.Mac.t;
}

let name = "router"
let table_name = "routes"

let route_action =
  let open P4ir in
  Action.make "route"
    ~params:[ ("dmac", 48); ("smac", 48) ]
    [
      Action.Assign (Net_hdrs.eth_dst, Expr.Param "dmac");
      Action.Assign (Net_hdrs.eth_src, Expr.Param "smac");
      Action.Assign
        (Net_hdrs.ip_ttl, Expr.(Field Net_hdrs.ip_ttl - const ~width:8 1));
    ]

let no_route_action =
  P4ir.Action.make "no_route"
    [ P4ir.Action.Assign (Sfc_header.drop_flag, P4ir.Expr.const ~width:1 1) ]

(* The typed table entry for one route — the single source of truth for
   how a route serializes into the match-action table, shared by
   construction-time population and live control-plane ops (a churn
   trace builds [Ctrl.Add/Mod/Del] around these). *)
let route_entry r =
  let open P4ir in
  {
    Table.priority = 0;
    patterns =
      [
        Table.M_lpm
          {
            value =
              Bitval.make ~width:32
                (Netpkt.Ip4.to_int64 r.prefix.Netpkt.Ip4.addr);
            prefix_len = r.prefix.Netpkt.Ip4.len;
          };
      ];
    action = "route";
    args =
      [
        Bitval.make ~width:48 (Netpkt.Mac.to_int64 r.next_hop_mac);
        Bitval.make ~width:48 (Netpkt.Mac.to_int64 r.src_mac);
      ];
  }

let make_table routes =
  let open P4ir in
  let table =
    Table.make ~name:table_name
      ~keys:[ { Table.field = Net_hdrs.ip_dst; kind = Table.Lpm; width = 32 } ]
      ~actions:[ route_action; no_route_action ]
      ~default:("no_route", []) ~max_size:4096 ()
  in
  Result.map
    (fun () -> table)
    (Table.add_entries table (List.map route_entry routes))

let body =
  let open P4ir in
  [
    Control.If
      ( Expr.(Bin (Le, Field Net_hdrs.ip_ttl, const ~width:8 1)),
        [
          Control.Run
            [ Action.Assign (Sfc_header.drop_flag, Expr.const ~width:1 1) ];
        ],
        [ Control.Apply table_name ] );
  ]

let create routes () =
  Result.map
    (fun table ->
      Nf.make ~name ~description:"IP router (LPM, MAC rewrite, TTL)"
        ~parser:(Net_hdrs.base_parser ~name ())
        ~tables:[ table ] ~body ())
    (make_table routes)

type ref_output =
  | Forward of { next_hop_mac : Netpkt.Mac.t; src_mac : Netpkt.Mac.t; ttl : int }
  | Drop_ttl
  | Drop_no_route

let reference routes ~dst ~ttl =
  if ttl <= 1 then Drop_ttl
  else
    let candidates =
      List.filter (fun r -> Netpkt.Ip4.matches r.prefix dst) routes
    in
    match candidates with
    | [] -> Drop_no_route
    | first :: rest ->
        let best =
          List.fold_left
            (fun b c ->
              if c.prefix.Netpkt.Ip4.len > b.prefix.Netpkt.Ip4.len then c else b)
            first rest
        in
        Forward
          { next_hop_mac = best.next_hop_mac; src_mac = best.src_mac; ttl = ttl - 1 }
