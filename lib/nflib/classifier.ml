open Dejavu_core

type rule = {
  dst_prefix : Netpkt.Ip4.prefix;
  proto : int option;
  path_id : int;
  tenant : int;
}

let name = "classifier"
let table_name = "classify"
let nf_id = Runtime.default_nf_id name

let push_sfc_prims =
  let open P4ir in
  [
    Action.Set_valid Sfc_header.name;
    Action.Assign (Sfc_header.service_index, Expr.const ~width:8 0);
    Action.Assign (Sfc_header.in_port, Expr.Field Asic.Stdmeta.ingress_port);
    Action.Assign (Sfc_header.out_port, Expr.const ~width:9 0);
    Action.Assign (Sfc_header.resubmit_flag, Expr.const ~width:1 0);
    Action.Assign (Sfc_header.recirc_flag, Expr.const ~width:1 0);
    Action.Assign (Sfc_header.drop_flag, Expr.const ~width:1 0);
    Action.Assign (Sfc_header.mirror_flag, Expr.const ~width:1 0);
    Action.Assign (Sfc_header.to_cpu_flag, Expr.const ~width:1 0);
    Action.Assign
      ( Sfc_header.next_protocol,
        Expr.const ~width:8 Sfc_header.next_proto_ipv4 );
    Action.Assign
      (Net_hdrs.eth_ethertype, Expr.const ~width:16 Net_hdrs.ethertype_sfc);
  ]

let set_path_action =
  let open P4ir in
  Action.make "set_path"
    ~params:[ ("path", 16); ("tenant", 16) ]
    (push_sfc_prims
    @ [
        Action.Assign (Sfc_header.service_path_id, Expr.Param "path");
        Action.Assign
          (Sfc_header.ctx_key 0, Expr.const ~width:8 Sfc_header.ctx_key_tenant);
        Action.Assign (Sfc_header.ctx_val 0, Expr.Param "tenant");
      ])

let unclassified_action =
  let open P4ir in
  Action.make "unclassified"
    (push_sfc_prims
    @ [
        Action.Assign (Sfc_header.to_cpu_flag, Expr.const ~width:1 1);
        Action.Assign
          ( Sfc_header.ctx_key 3,
            Expr.const ~width:8 Sfc_header.ctx_key_cpu_reason );
        Action.Assign (Sfc_header.ctx_val 3, Expr.const ~width:16 nf_id);
      ])

let make_table rules =
  let open P4ir in
  let table =
    Table.make ~name:table_name
      ~keys:
        [
          { Table.field = Net_hdrs.ip_dst; kind = Table.Lpm; width = 32 };
          { Table.field = Net_hdrs.ip_proto; kind = Table.Ternary; width = 8 };
        ]
      ~actions:[ set_path_action; unclassified_action ]
      ~default:("unclassified", []) ~max_size:512 ()
  in
  Result.map
    (fun () -> table)
    (Table.add_entries table
       (List.map
          (fun rule ->
            let proto_pattern =
              match rule.proto with
              | Some p ->
                  Table.M_ternary
                    {
                      value = Bitval.of_int ~width:8 p;
                      mask = Bitval.max_value 8;
                    }
              | None -> Table.M_any
            in
            {
              Table.priority = (match rule.proto with Some _ -> 1 | None -> 0);
              patterns =
                [
                  Table.M_lpm
                    {
                      value =
                        Bitval.make ~width:32
                          (Netpkt.Ip4.to_int64 rule.dst_prefix.Netpkt.Ip4.addr);
                      prefix_len = rule.dst_prefix.Netpkt.Ip4.len;
                    };
                  proto_pattern;
                ];
              action = "set_path";
              args =
                [
                  Bitval.of_int ~width:16 rule.path_id;
                  Bitval.of_int ~width:16 rule.tenant;
                ];
            })
          rules))

let create rules () =
  Result.map
    (fun table ->
      Nf.make ~name
        ~description:"SFC traffic classifier (pushes the SFC header)"
        ~parser:(Net_hdrs.base_parser ~name ())
        ~tables:[ table ]
        ~body:[ P4ir.Control.Apply table_name ]
        ~gate:Nf.On_missing_sfc ())
    (make_table rules)

type ref_input = { dst : Netpkt.Ip4.t; proto : int; ingress_port : int }

let reference rules input =
  let matches (rule : rule) =
    Netpkt.Ip4.matches rule.dst_prefix input.dst
    && match rule.proto with None -> true | Some p -> p = input.proto
  in
  let candidates = List.filter matches rules in
  let better (a : rule) (b : rule) =
    (* Mirror the table semantics: proto-specific entries carry higher
       priority, then longer prefixes, then insertion order. *)
    let pa = match a.proto with Some _ -> 1 | None -> 0 in
    let pb = match b.proto with Some _ -> 1 | None -> 0 in
    if pa <> pb then pa > pb
    else a.dst_prefix.Netpkt.Ip4.len > b.dst_prefix.Netpkt.Ip4.len
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      let rule = List.fold_left (fun b c -> if better c b then c else b) first rest in
      let context = Array.make Sfc_header.n_ctx_slots (0, 0) in
      context.(0) <- (Sfc_header.ctx_key_tenant, rule.tenant);
      Some
        {
          Sfc_header.default with
          Sfc_header.service_path_id = rule.path_id;
          service_index = 1 (* after the framework bump *);
          in_port = input.ingress_port;
          context;
        }
