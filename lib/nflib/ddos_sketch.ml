open Dejavu_core

let name = "ddos_sketch"
let rows = 3
let row_size = 4096
let row_register i = Printf.sprintf "cms_row%d" i

let meta_decl =
  P4ir.Hdr.decl "cms_meta" [ ("c0", 32); ("c1", 32); ("c2", 32); ("est", 32) ]

let c_ref i = P4ir.Fieldref.v "cms_meta" (Printf.sprintf "c%d" i)
let est_ref = P4ir.Fieldref.v "cms_meta" "est"

(* Three independent index hashes over the source address. CRC32 and
   CRC16 are real hardware hash engines; the third folds the address
   with a multiplicative mix. *)
let row_hash i =
  let open P4ir.Expr in
  match i with
  | 0 -> Hash (Crc32, 32, [ Field Net_hdrs.ip_src ])
  | 1 -> Hash (Crc16, 32, [ Field Net_hdrs.ip_src ])
  | _ ->
      Bin
        ( BXor,
          Field Net_hdrs.ip_src,
          Bin (Shr, Bin (Mul, Field Net_hdrs.ip_src, const ~width:32 0x9E3779B1), const ~width:32 16) )

let update_prims =
  let open P4ir in
  List.concat_map
    (fun i ->
      [
        Action.Reg_read (c_ref i, row_register i, row_hash i);
        Action.Reg_write
          ( row_register i,
            row_hash i,
            Expr.(Field (c_ref i) + const ~width:32 1) );
      ])
    [ 0; 1; 2 ]

let body ~block ~threshold =
  let pre_increment_threshold = threshold - 1 in
  let open P4ir in
  let flag_prims =
    if block then
      [ Action.Assign (Sfc_header.drop_flag, Expr.const ~width:1 1) ]
    else
      [
        Action.Assign (Sfc_header.mirror_flag, Expr.const ~width:1 1);
        Action.Assign
          (Sfc_header.ctx_key 2, Expr.const ~width:8 Sfc_header.ctx_key_debug);
        Action.Assign (Sfc_header.ctx_val 2, Expr.Field est_ref);
      ]
  in
  [
    Control.Run (update_prims @ [ Action.Assign (est_ref, Expr.Field (c_ref 0)) ]);
    (* est = min(c0, c1, c2); the counts just incremented, so compare
       against the post-increment values. *)
    Control.If
      ( Expr.(Bin (Lt, Field (c_ref 1), Field est_ref)),
        [ Control.Run [ Action.Assign (est_ref, Expr.Field (c_ref 1)) ] ],
        [] );
    Control.If
      ( Expr.(Bin (Lt, Field (c_ref 2), Field est_ref)),
        [ Control.Run [ Action.Assign (est_ref, Expr.Field (c_ref 2)) ] ],
        [] );
    (* The meta counts are the pre-increment reads, so est equals the
       source's count *before* this packet: the threshold-th packet is
       the first with est >= threshold - 1. *)
    Control.If
      ( Expr.(Bin (Ge, Field est_ref, const ~width:32 pre_increment_threshold)),
        [ Control.Run flag_prims ],
        [] );
  ]

let parser_with_meta () =
  let p = Net_hdrs.base_parser ~name () in
  { p with P4ir.Parser_graph.decls = p.P4ir.Parser_graph.decls @ [ meta_decl ] }

let create ?(block = false) ~threshold () =
  if threshold < 1 then Error "Ddos_sketch.create: threshold must be >= 1"
  else
    Ok
      (Nf.make ~name ~description:"count-min sketch heavy-source detector"
         ~parser:(parser_with_meta ()) ~tables:[]
         ~registers:
           (List.init rows (fun i ->
                P4ir.Register.make ~name:(row_register i) ~size:row_size
                  ~width:32))
         ~body:(body ~block ~threshold)
         ~state_tables:[ "ddos.offenders" ] ())

let reset compiled =
  List.iter
    (fun i ->
      Option.iter P4ir.Register.clear
        (Compiler.find_register compiled (row_register i)))
    (List.init rows Fun.id)

(* Mirror the data plane's hashing for control-plane queries. *)
let index_of i src =
  let phv = P4ir.Phv.create [ Net_hdrs.ipv4 ] in
  P4ir.Phv.set_valid phv "ipv4";
  P4ir.Phv.set phv Net_hdrs.ip_src
    (P4ir.Bitval.make ~width:32 (Netpkt.Ip4.to_int64 src));
  P4ir.Bitval.to_int (P4ir.Expr.eval { P4ir.Expr.phv; params = [] } (row_hash i))

let estimate compiled src =
  let est = ref max_int in
  List.iter
    (fun i ->
      match Compiler.find_register compiled (row_register i) with
      | None -> ()
      | Some reg ->
          let idx = index_of i src land P4ir.Register.index_mask reg in
          est := min !est (P4ir.Bitval.to_int (P4ir.Register.read reg idx)))
    (List.init rows Fun.id);
  if !est = max_int then 0 else !est

let reference_estimate_lower_bound ~true_count ~estimate = estimate >= true_count

(* --- offender ledger ---

   The sketch itself is data-plane state (register rows, reset by
   [reset]); what the control plane keeps is the set of sources that
   crossed the threshold — previously an unbounded concern left to
   callers, now a bounded TTL-aged store table: quiet offenders age
   out with the attack. *)

let state_table_name = "ddos.offenders"

let offenders store =
  State_store.table store ~name:state_table_name ~key:State_store.Conv.ip4
    ~value:State_store.Conv.int ()

let record offenders src ~estimate =
  let prev = Option.value ~default:0 (State_store.find offenders src) in
  State_store.insert offenders src (max prev estimate)
