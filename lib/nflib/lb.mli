(** The L4 load balancer of Fig. 4: CRC32 over the 5-tuple, an exact
    session table keyed on the hash that rewrites the destination IP,
    and a to-CPU default on miss. The control plane installs the session
    and reinjects. *)

val name : string
val table_name : string
val nf_id : int
val meta_decl : P4ir.Hdr.decl
(** NF-local metadata carrying the computed session hash. *)

val create : unit -> (Dejavu_core.Nf.t, string) result

val session_hash : Netpkt.Flow.five_tuple -> int64
(** The hash the data plane computes (identical to
    {!Netpkt.Flow.hash_five_tuple}). *)

val session_entry :
  Netpkt.Flow.five_tuple -> Netpkt.Ip4.t -> P4ir.Table.entry
(** The typed session entry mapping the flow's hash to a backend IP —
    what {!install_session} installs and what control-plane ops
    ([Ctrl.Add/Mod/Del]) are built around. *)

val install_session :
  P4ir.Table.t -> Netpkt.Flow.five_tuple -> Netpkt.Ip4.t -> (unit, string) result
(** Install the session through the typed-op layer
    ([Ctrl.apply_table]). *)

val pick_backend : Netpkt.Ip4.t list -> Netpkt.Flow.five_tuple -> Netpkt.Ip4.t
(** Deterministic backend choice: hash modulo the pool size. *)

val state_table_name : string
(** ["lb.sessions"] — the {!Dejavu_core.State_store} table bounding the
    punt-installed session set. *)

val sessions :
  Dejavu_core.State_store.t ->
  table:P4ir.Table.t ->
  (Netpkt.Flow.five_tuple, Netpkt.Ip4.t) Dejavu_core.State_store.table
(** Register (or adopt) the LB's session ledger on [store]: keyed by the
    exact 5-tuple, valued by the chosen backend, sharded by the
    canonical symmetric flow hash ({!Netpkt.Flow.hash_five_tuple_symmetric}
    — the same partition the runtime shards packets by). Every eviction
    — capacity or TTL — deletes the matching chip entry through the
    typed-op layer, so a bounded ledger bounds the chip table too and
    the flow cache drops any memoized verdict for the evicted flow. *)

val handler :
  ?sessions:(Netpkt.Flow.five_tuple, Netpkt.Ip4.t) Dejavu_core.State_store.table ->
  backends:Netpkt.Ip4.t list ->
  table:P4ir.Table.t ->
  unit ->
  Dejavu_core.Runtime.handler
(** The control-plane miss handler: parse the punted frame, install a
    session for its 5-tuple, clear the CPU mark and reinject. Consumes
    packets it cannot parse. With [sessions], the ledger is consulted
    first — an already-owned flow re-installs its *stored* backend (the
    punting chip missed it: fresh shard replica or warm restart) — and
    new sessions are written to the ledger before the chip install, so
    chip occupancy never exceeds the ledger bound. *)

val reference :
  sessions:(Netpkt.Flow.five_tuple * Netpkt.Ip4.t) list ->
  Netpkt.Flow.five_tuple ->
  [ `Rewrite of Netpkt.Ip4.t | `To_cpu ]
