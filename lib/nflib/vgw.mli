(** Virtualization gateway: maps traffic into and out of the tenant
    overlay. Toward the tenant it pushes an 802.1Q tag chosen by an LPM
    on the destination (and records the tenant in the SFC context);
    traffic arriving tagged is decapsulated.

    Substitution note (DESIGN.md): the production NF speaks VXLAN; the
    modeled ASIC parser handles the same push/pop logic with a VLAN tag
    so the inner 5-tuple stays at a fixed offset for the co-located
    LB/firewall. *)

type mapping = {
  dst_prefix : Netpkt.Ip4.prefix;
  vid : int;
  tenant : int;
}

val name : string
val encap_table : string
val decap_table : string
val create : mapping list -> unit -> (Dejavu_core.Nf.t, string) result

type ref_effect = Encap of { vid : int; tenant : int } | Decap | Pass

val reference : mapping list -> tagged_vid:int option -> Netpkt.Ip4.t -> ref_effect
(** [tagged_vid] is the packet's VLAN id when it arrives tagged; only a
    known vid is decapsulated, mirroring the exact-match decap table. *)
