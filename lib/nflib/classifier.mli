(** The traffic classifier — the chain entry point the framework places
    on the entry ingress (Fig. 2). It matches raw traffic to an SFC
    policy, pushes the SFC header with the chosen service path id, and
    records the tenant in the context data. Unclassified traffic goes to
    the CPU. *)

type rule = {
  dst_prefix : Netpkt.Ip4.prefix;  (** destination the tenant service owns *)
  proto : int option;  (** [None] = any IP protocol *)
  path_id : int;
  tenant : int;  (** written into the tenant context slot *)
}

val name : string
val create : rule list -> unit -> (Dejavu_core.Nf.t, string) result
val table_name : string
val nf_id : int
(** The id written into the CPU-reason context when traffic is
    unclassified. *)

type ref_input = {
  dst : Netpkt.Ip4.t;
  proto : int;
  ingress_port : int;
}

val reference : rule list -> ref_input -> Dejavu_core.Sfc_header.t option
(** Pure model: the SFC header the classifier should push, or [None]
    when the packet is unclassified (goes to CPU). First matching rule
    wins; longer prefixes win among matches. *)
