(** Monitoring tap (extension NF): sets the SFC mirror flag for traffic
    matching a ternary selector, so the platform can copy it to an
    analysis port. *)

type selector = {
  src : Netpkt.Ip4.prefix option;
  dst : Netpkt.Ip4.prefix option;
}

val name : string
val table_name : string
val create : selector list -> unit -> (Dejavu_core.Nf.t, string) result
val reference : selector list -> src:Netpkt.Ip4.t -> dst:Netpkt.Ip4.t -> bool
