open Dejavu_core

let ip = Netpkt.Ip4.of_string_exn
let pfx = Netpkt.Ip4.prefix_of_string_exn
let mac = Netpkt.Mac.of_string_exn

let tenant1_vip = ip "10.0.1.10"
let tenant1_backends = [ ip "10.0.1.101"; ip "10.0.1.102"; ip "10.0.1.103" ]
let tenant2_service = pfx "10.0.2.0/24"
let tenant3_service = pfx "10.0.3.0/24"
let blocked_subnet = pfx "198.51.100.0/24"

let path_red = 10
let path_orange = 20
let path_green = 30
let path_monitor = 40
let path_protected = 50

let classifier_rules =
  [
    {
      Classifier.dst_prefix = pfx "10.0.1.0/24";
      proto = None;
      path_id = path_red;
      tenant = 1;
    };
    {
      Classifier.dst_prefix = tenant2_service;
      proto = None;
      path_id = path_orange;
      tenant = 2;
    };
    {
      Classifier.dst_prefix = tenant3_service;
      proto = None;
      path_id = path_green;
      tenant = 3;
    };
    {
      Classifier.dst_prefix = pfx "10.0.4.0/24";
      proto = None;
      path_id = path_monitor;
      tenant = 4;
    };
    {
      Classifier.dst_prefix = pfx "10.0.5.0/24";
      proto = None;
      path_id = path_protected;
      tenant = 5;
    };
  ]

let firewall_rules =
  [
    {
      Firewall.src = Some blocked_subnet;
      dst = None;
      proto = None;
      dst_port = None;
      action = Firewall.Deny;
      priority = 10;
    };
    {
      Firewall.src = None;
      dst = None;
      proto = Some Netpkt.Ipv4.proto_tcp;
      dst_port = Some 23;
      action = Firewall.Deny;
      priority = 5;
    };
  ]

let vgw_mappings =
  [
    { Vgw.dst_prefix = pfx "10.0.1.0/24"; vid = 101; tenant = 1 };
    { Vgw.dst_prefix = tenant2_service; vid = 102; tenant = 2 };
  ]

let routes =
  [
    {
      Router.prefix = pfx "10.0.0.0/16";
      next_hop_mac = mac "02:00:0a:00:00:01";
      src_mac = mac "02:00:00:00:00:fe";
    };
    {
      Router.prefix = pfx "0.0.0.0/0";
      next_hop_mac = mac "02:00:ff:ff:ff:01";
      src_mac = mac "02:00:00:00:00:fe";
    };
  ]

let nat_bindings =
  [
    { Nat.internal = ip "192.168.0.10"; public = ip "203.0.113.200" };
    { Nat.internal = ip "192.168.0.11"; public = ip "203.0.113.201" };
  ]

let dscp_assignments = [ (1, 46); (2, 26); (3, 10); (4, 18) ]

let tap_selectors =
  [ { Mirror_tap.src = None; dst = Some (pfx "10.0.4.0/24") } ]

let rate_budgets =
  [
    { Rate_limiter.tenant = 5; limit = 8 };
    { Rate_limiter.tenant = 4; limit = 1000 };
  ]

let sketch_threshold = 6

let local_vtep = ip "192.0.2.10"

let vxlan_tunnels =
  [
    {
      Vxlan_gw.dst_prefix = pfx "10.8.0.0/16";
      vni = 8001;
      local_vtep;
      remote_vtep = ip "192.0.2.20";
    };
  ]

let registry () : Nf.registry =
  [
    (Classifier.name, Classifier.create classifier_rules);
    (Firewall.name, Firewall.create firewall_rules);
    (Vgw.name, Vgw.create vgw_mappings);
    (Lb.name, Lb.create);
    (Router.name, Router.create routes);
    (Nat.name, Nat.create nat_bindings);
    (Dscp_marker.name, Dscp_marker.create dscp_assignments);
    (Mirror_tap.name, Mirror_tap.create tap_selectors);
    (Rate_limiter.name, Rate_limiter.create rate_budgets);
    ( Ddos_sketch.name,
      fun () -> Ddos_sketch.create ~threshold:sketch_threshold () );
    (Vxlan_gw.name, Vxlan_gw.create vxlan_tunnels);
  ]

let chains ~exit_port =
  [
    Chain.make ~path_id:path_red ~name:"red"
      ~nfs:[ "classifier"; "fw"; "vgw"; "lb"; "router" ]
      ~weight:0.5 ~exit_port ();
    Chain.make ~path_id:path_orange ~name:"orange"
      ~nfs:[ "classifier"; "vgw"; "router" ]
      ~weight:0.3 ~exit_port ();
    Chain.make ~path_id:path_green ~name:"green"
      ~nfs:[ "classifier"; "router" ]
      ~weight:0.2 ~exit_port ();
  ]

let extended_chains ~exit_port =
  chains ~exit_port
  @ [
      Chain.make ~path_id:path_monitor ~name:"monitor"
        ~nfs:[ "classifier"; "mirror_tap"; "dscp_marker"; "router" ]
        ~weight:0.1 ~exit_port ();
    ]

let protected_chains ~exit_port =
  chains ~exit_port
  @ [
      Chain.make ~path_id:path_protected ~name:"protected"
        ~nfs:[ "classifier"; "ddos_sketch"; "rate_limiter"; "router" ]
        ~weight:0.1 ~exit_port ();
    ]

let edge_cloud_input ?(spec = Asic.Spec.wedge_100b)
    ?(strategy = Placement.Exhaustive) ?(exit_port = 1) ?(extended = false) () =
  Compiler.default_input ~spec ~strategy ~entry_pipeline:0
    ~loopback_pipelines:[ 1 ] ~registry:(registry ())
    ~chains:(if extended then extended_chains ~exit_port else chains ~exit_port)
    ()

(* Composed (per-NF-instance) object names, as control-plane ops
   address them on a compiled chip. *)
let routes_table_name = Compose.nf_table_name ~nf:Router.name Router.table_name
let acl_table_name = Compose.nf_table_name ~nf:Firewall.name Firewall.table_name

(* --- BGP-style churn trace ---

   A deterministic mixed add/mod/del op trace over the deployment's
   FIB (172.16.0.0/12 carved into /24s) with a sprinkle of ACL rule
   churn — the update pattern of a router absorbing BGP UPDATE bursts:
   mostly announcements while the table warms, then a steady mix of
   re-announcements with changed attributes (Mod of the next-hop MAC),
   withdrawals (Del) and fresh announcements (Add). Valid by
   construction — every Mod/Del names a route that is live at that
   point of the trace — so the whole trace applies cleanly both live
   (interleaved with traffic) and cold, and the two must converge to
   identical state. *)
let fib_churn_trace ?(seed = 0x5eed) ~n () =
  let rng = Random.State.make [| seed |] in
  let base = Netpkt.Ip4.to_int64 (ip "172.16.0.0") in
  let src_mac = mac "02:00:00:00:00:fe" in
  (* Stay well under the routes table's 4096 capacity (2 baseline
     routes are already installed). *)
  let max_slots = 3000 in
  let gens = Array.make max_slots 0 in
  (* Live slots as a swap-remove vector for O(1) random picks. *)
  let live = Array.make max_slots 0 in
  let n_live = ref 0 in
  let pos = Array.make max_slots (-1) in
  let next_slot = ref 0 in
  let route_of slot =
    let addr = Netpkt.Ip4.of_int64 (Int64.add base (Int64.of_int (slot lsl 8))) in
    let nh = Int64.of_int (0x020000100000 + (slot lsl 8) + (gens.(slot) land 0xff)) in
    {
      Router.prefix = { Netpkt.Ip4.addr; len = 24 };
      next_hop_mac = Netpkt.Mac.of_int64 nh;
      src_mac;
    }
  in
  let add_slot slot =
    live.(!n_live) <- slot;
    pos.(slot) <- !n_live;
    incr n_live
  in
  let del_slot slot =
    let i = pos.(slot) in
    decr n_live;
    let last = live.(!n_live) in
    live.(i) <- last;
    pos.(last) <- i;
    pos.(slot) <- -1
  in
  let acl_rule i =
    {
      Firewall.src = Some { Netpkt.Ip4.addr = ip (Printf.sprintf "198.18.%d.0" i); len = 24 };
      dst = None;
      proto = None;
      dst_port = None;
      action = Firewall.Deny;
      priority = 100 + i;
    }
  in
  let acl_live = Array.make 64 false in
  let ops = ref [] in
  let emit o = ops := o :: !ops in
  for k = 0 to n - 1 do
    if k mod 41 = 7 then begin
      (* ACL churn rides along: toggle one of 64 deny rules. *)
      let i = Random.State.int rng 64 in
      let op = if acl_live.(i) then Ctrl.Del (Firewall.rule_entry (acl_rule i))
               else Ctrl.Add (Firewall.rule_entry (acl_rule i)) in
      acl_live.(i) <- not acl_live.(i);
      emit (Ctrl.Table (acl_table_name, op))
    end
    else begin
      let roll = Random.State.float rng 1.0 in
      if (!n_live < 64 || roll < 0.50) && !next_slot < max_slots then begin
        let slot = !next_slot in
        incr next_slot;
        add_slot slot;
        emit (Ctrl.Table (routes_table_name, Ctrl.Add (Router.route_entry (route_of slot))))
      end
      else if !n_live = 0 then begin
        (* Degenerate fallback: nothing to mod/del and the fresh-slot
           pool is spent — re-announce a withdrawn prefix. *)
        let start = Random.State.int rng !next_slot in
        let slot =
          let rec find i = if pos.((start + i) mod !next_slot) >= 0 then find (i + 1) else (start + i) mod !next_slot in
          find 0
        in
        gens.(slot) <- gens.(slot) + 1;
        add_slot slot;
        emit (Ctrl.Table (routes_table_name, Ctrl.Add (Router.route_entry (route_of slot))))
      end
      else if roll < 0.78 then begin
        (* Re-announcement: same prefix, new next hop. *)
        let slot = live.(Random.State.int rng !n_live) in
        gens.(slot) <- gens.(slot) + 1;
        emit (Ctrl.Table (routes_table_name, Ctrl.Mod (Router.route_entry (route_of slot))))
      end
      else begin
        (* Withdrawal. *)
        let slot = live.(Random.State.int rng !n_live) in
        emit (Ctrl.Table (routes_table_name, Ctrl.Del (Router.route_entry (route_of slot))));
        del_slot slot
      end
    end
  done;
  List.rev !ops

(* Public pool for the dynamic NAT variant (deployments that swap
   [Nat.create_dynamic] into the registry): /28-ish slice of the
   TEST-NET-3 block the static bindings also draw from. *)
let nat_pool =
  List.init 16 (fun i -> ip (Printf.sprintf "203.0.113.%d" (16 + i)))

let attach_handlers runtime _compiled =
  Runtime.register_nf_id runtime Lb.name Lb.nf_id;
  Runtime.register_nf_id runtime Classifier.name Classifier.nf_id;
  Runtime.register_nf_id runtime Nat.name Nat.nf_id;
  (* The LB handler installs session entries into the chip it serves —
     and records them in the state store serving that chip's shard when
     the runtime's state knob is on — so it binds per (chip, store):
     parallel replicas each get a handler over their own copy of the
     session table and their shard's persistent ledger. *)
  let lb_table = Compose.nf_table_name ~nf:Lb.name Lb.table_name in
  Runtime.on_to_cpu_state runtime Lb.name (fun chip store ->
      match Asic.Chip.find_table chip lb_table with
      | Some table ->
          let sessions = Option.map (Lb.sessions ~table) store in
          Lb.handler ?sessions ~backends:tenant1_backends ~table ()
      | None -> fun _sfc _frame -> Runtime.Consume);
  (* Same shape for the dynamic NAT. In deployments using the static
     [Nat.create] the table's default is NoAction, nothing ever punts
     with [Nat.nf_id], and this handler is inert. *)
  let nat_table = Compose.nf_table_name ~nf:Nat.name Nat.table_name in
  Runtime.on_to_cpu_state runtime Nat.name (fun chip store ->
      match Asic.Chip.find_table chip nat_table with
      | Some table ->
          let bindings = Option.map (Nat.bindings_table ~table) store in
          Nat.handler ?bindings ~pool:nat_pool ~table ()
      | None -> fun _sfc _frame -> Runtime.Consume)
