open Dejavu_core

type mapping = { dst_prefix : Netpkt.Ip4.prefix; vid : int; tenant : int }

let name = "vgw"
let encap_table = "vgw_encap"
let decap_table = "vgw_decap"

let do_encap =
  let open P4ir in
  Action.make "do_encap"
    ~params:[ ("vid", 12); ("tenant", 16) ]
    [
      Action.Set_valid "vlan";
      Action.Assign (Net_hdrs.vlan_vid, Expr.Param "vid");
      Action.Assign (Fieldref.v "vlan" "pcp", Expr.const ~width:3 0);
      Action.Assign (Fieldref.v "vlan" "dei", Expr.const ~width:1 0);
      Action.Assign
        ( Fieldref.v "vlan" "ethertype",
          Expr.const ~width:16 Net_hdrs.ethertype_ipv4 );
      (* The tag sits between the SFC header and IP. *)
      Action.Assign (Sfc_header.next_protocol, Expr.const ~width:8 2);
      Action.Assign
        (Sfc_header.ctx_key 1, Expr.const ~width:8 Sfc_header.ctx_key_app);
      Action.Assign (Sfc_header.ctx_val 1, Expr.Param "tenant");
    ]

let do_decap =
  let open P4ir in
  Action.make "do_decap"
    [
      Action.Set_invalid "vlan";
      Action.Assign
        ( Sfc_header.next_protocol,
          Expr.const ~width:8 Sfc_header.next_proto_ipv4 );
    ]

let make_tables mappings =
  let open P4ir in
  let encap =
    Table.make ~name:encap_table
      ~keys:[ { Table.field = Net_hdrs.ip_dst; kind = Table.Lpm; width = 32 } ]
      ~actions:[ do_encap; Action.no_op ]
      ~default:("NoAction", []) ~max_size:1024 ()
  in
  let ( let* ) = Result.bind in
  let* () =
    Table.add_entries encap
      (List.map
         (fun m ->
           {
             Table.priority = 0;
             patterns =
               [
                 Table.M_lpm
                   {
                     value =
                       Bitval.make ~width:32
                         (Netpkt.Ip4.to_int64 m.dst_prefix.Netpkt.Ip4.addr);
                     prefix_len = m.dst_prefix.Netpkt.Ip4.len;
                   };
               ];
             action = "do_encap";
             args =
               [
                 Bitval.of_int ~width:12 m.vid; Bitval.of_int ~width:16 m.tenant;
               ];
           })
         mappings)
  in
  let decap =
    Table.make ~name:decap_table
      ~keys:[ { Table.field = Net_hdrs.vlan_vid; kind = Table.Exact; width = 12 } ]
      ~actions:[ do_decap; Action.no_op ]
      ~default:("NoAction", []) ~max_size:1024 ()
  in
  let* () =
    Table.add_entries decap
      (List.map
         (fun m ->
           {
             Table.priority = 0;
             patterns = [ Table.M_exact (Bitval.of_int ~width:12 m.vid) ];
             action = "do_decap";
             args = [];
           })
         mappings)
  in
  Ok [ encap; decap ]

let create mappings () =
  Result.map
    (fun tables ->
      Nf.make ~name
        ~description:"virtualization gateway (overlay tag push/pop)"
        ~parser:(Net_hdrs.base_parser ~with_vlan:true ~name ())
        ~tables
        ~body:
          [
            P4ir.Control.If
              ( P4ir.Expr.Valid "vlan",
                [ P4ir.Control.Apply decap_table ],
                [ P4ir.Control.Apply encap_table ] );
          ]
        ())
    (make_tables mappings)

type ref_effect = Encap of { vid : int; tenant : int } | Decap | Pass

let reference mappings ~tagged_vid dst =
  match tagged_vid with
  | Some vid ->
      if List.exists (fun m -> m.vid = vid) mappings then Decap else Pass
  | None ->


    let candidates =
      List.filter (fun m -> Netpkt.Ip4.matches m.dst_prefix dst) mappings
    in
    match candidates with
    | [] -> Pass
    | first :: rest ->
        let best =
          List.fold_left
            (fun b c ->
              if c.dst_prefix.Netpkt.Ip4.len > b.dst_prefix.Netpkt.Ip4.len then c
              else b)
            first rest
        in
        Encap { vid = best.vid; tenant = best.tenant }
