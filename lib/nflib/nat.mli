(** Static source NAT (extension NF): rewrites internal source addresses
    to public ones on the way out. *)

type binding = { internal : Netpkt.Ip4.t; public : Netpkt.Ip4.t }

val name : string
val table_name : string

val binding_entry : binding -> P4ir.Table.entry
(** The typed table entry for one binding — what construction-time
    population installs and what control-plane ops ([Ctrl.Add/Mod/Del])
    are built around. *)

val create : binding list -> unit -> (Dejavu_core.Nf.t, string) result
val reference : binding list -> Netpkt.Ip4.t -> Netpkt.Ip4.t
(** Identity for unbound sources. *)
