(** Static source NAT (extension NF): rewrites internal source addresses
    to public ones on the way out. *)

type binding = { internal : Netpkt.Ip4.t; public : Netpkt.Ip4.t }

val name : string
val table_name : string

val binding_entry : binding -> P4ir.Table.entry
(** The typed table entry for one binding — what construction-time
    population installs and what control-plane ops ([Ctrl.Add/Mod/Del])
    are built around. *)

val create : binding list -> unit -> (Dejavu_core.Nf.t, string) result
val reference : binding list -> Netpkt.Ip4.t -> Netpkt.Ip4.t
(** Identity for unbound sources. *)

(** {2 Dynamic SNAT}

    The stateful variant: the table starts empty with a to-CPU default;
    the first packet of each internal source punts, the control plane
    allocates a public address from a pool and installs the binding,
    subsequent packets rewrite on-chip. Bindings live in the runtime's
    {!Dejavu_core.State_store} when the state knob is on, so the
    binding set — and hence the chip table — is capacity-bounded with
    LRU/TTL aging. *)

val nf_id : int

val state_table_name : string
(** ["nat.bindings"] *)

val create_dynamic : ?max_size:int -> unit -> (Dejavu_core.Nf.t, string) result
(** The dynamic NF: same match/rewrite as {!create} but an empty table
    whose default action punts with {!nf_id} as the CPU reason.
    [max_size] defaults to 8192. *)

val public_of : pool:Netpkt.Ip4.t list -> Netpkt.Ip4.t -> Netpkt.Ip4.t
(** Deterministic allocation — a pure function of the internal address
    and the pool (address mod pool size), independent of arrival order,
    shard count and restart history. Raises [Invalid_argument] on an
    empty pool. *)

val bindings_table :
  Dejavu_core.State_store.t ->
  table:P4ir.Table.t ->
  (Netpkt.Ip4.t, Netpkt.Ip4.t) Dejavu_core.State_store.table
(** Register (or adopt) the binding ledger on [store]: internal address
    to public address. Every eviction deletes the matching chip entry
    through the typed-op layer (epoch bump, flow-cache invalidation). *)

val handler :
  ?bindings:(Netpkt.Ip4.t, Netpkt.Ip4.t) Dejavu_core.State_store.table ->
  pool:Netpkt.Ip4.t list ->
  table:P4ir.Table.t ->
  unit ->
  Dejavu_core.Runtime.handler
(** The miss handler: allocate {!public_of} for the punted packet's
    source, record it in the ledger (when given) before installing the
    chip entry, and reinject. A ledger hit re-installs the stored
    public address (the punting chip missed: fresh shard replica or
    warm restart). *)
