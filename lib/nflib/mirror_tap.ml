open Dejavu_core

type selector = {
  src : Netpkt.Ip4.prefix option;
  dst : Netpkt.Ip4.prefix option;
}

let name = "mirror_tap"
let table_name = "tap_select"

let tap_action =
  P4ir.Action.make "tap"
    [ P4ir.Action.Assign (Sfc_header.mirror_flag, P4ir.Expr.const ~width:1 1) ]

let prefix_pattern = function
  | None -> P4ir.Table.M_any
  | Some (p : Netpkt.Ip4.prefix) ->
      P4ir.Table.M_ternary
        {
          value = P4ir.Bitval.make ~width:32 (Netpkt.Ip4.to_int64 p.Netpkt.Ip4.addr);
          mask = P4ir.Bitval.make ~width:32 (Netpkt.Ip4.prefix_mask p.Netpkt.Ip4.len);
        }

let make_table selectors =
  let open P4ir in
  let table =
    Table.make ~name:table_name
      ~keys:
        [
          { Table.field = Net_hdrs.ip_src; kind = Table.Ternary; width = 32 };
          { Table.field = Net_hdrs.ip_dst; kind = Table.Ternary; width = 32 };
        ]
      ~actions:[ tap_action; Action.no_op ]
      ~default:("NoAction", []) ~max_size:256 ()
  in
  Result.map
    (fun () -> table)
    (Table.add_entries table
       (List.map
          (fun s ->
            {
              Table.priority = 0;
              patterns = [ prefix_pattern s.src; prefix_pattern s.dst ];
              action = "tap";
              args = [];
            })
          selectors))

let create selectors () =
  Result.map
    (fun table ->
      Nf.make ~name ~description:"monitoring tap (sets the mirror flag)"
        ~parser:(Net_hdrs.base_parser ~name ())
        ~tables:[ table ]
        ~body:[ P4ir.Control.Apply table_name ]
        ())
    (make_table selectors)

let reference selectors ~src ~dst =
  List.exists
    (fun s ->
      (match s.src with None -> true | Some p -> Netpkt.Ip4.matches p src)
      && match s.dst with None -> true | Some p -> Netpkt.Ip4.matches p dst)
    selectors
