(** Count-min-sketch DDoS detector (stateful extension NF): three
    register rows indexed by independent hashes of the source address;
    when the minimum estimate crosses the threshold the packet is
    flagged — mirrored for analysis by default, dropped when created
    with [~block:true]. *)

val name : string
val rows : int
val row_register : int -> string
val meta_decl : P4ir.Hdr.decl
val create : ?block:bool -> threshold:int -> unit -> (Dejavu_core.Nf.t, string) result

val reset : Dejavu_core.Compiler.t -> unit
(** Clear the sketch (periodic decay from the control plane). *)

val estimate : Dejavu_core.Compiler.t -> Netpkt.Ip4.t -> int
(** The sketch's current estimate for a source, computed with the same
    hash functions the data plane uses. *)

(** {2 Reference invariants} *)

val reference_estimate_lower_bound : true_count:int -> estimate:int -> bool
(** Count-min never underestimates: [estimate >= true_count]. *)
