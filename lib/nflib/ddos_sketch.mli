(** Count-min-sketch DDoS detector (stateful extension NF): three
    register rows indexed by independent hashes of the source address;
    when the minimum estimate crosses the threshold the packet is
    flagged — mirrored for analysis by default, dropped when created
    with [~block:true]. *)

val name : string
val rows : int
val row_register : int -> string
val meta_decl : P4ir.Hdr.decl
val create : ?block:bool -> threshold:int -> unit -> (Dejavu_core.Nf.t, string) result

val reset : Dejavu_core.Compiler.t -> unit
(** Clear the sketch (periodic decay from the control plane). *)

val estimate : Dejavu_core.Compiler.t -> Netpkt.Ip4.t -> int
(** The sketch's current estimate for a source, computed with the same
    hash functions the data plane uses. *)

(** {2 Offender ledger} *)

val state_table_name : string
(** ["ddos.offenders"] *)

val offenders :
  Dejavu_core.State_store.t ->
  (Netpkt.Ip4.t, int) Dejavu_core.State_store.table
(** Register (or adopt) the bounded ledger of sources that crossed the
    threshold, valued by their peak estimate — TTL aging retires quiet
    offenders with the attack. *)

val record :
  (Netpkt.Ip4.t, int) Dejavu_core.State_store.table ->
  Netpkt.Ip4.t ->
  estimate:int ->
  unit
(** Note a detection: keeps the max estimate seen for the source. *)

(** {2 Reference invariants} *)

val reference_estimate_lower_bound : true_count:int -> estimate:int -> bool
(** Count-min never underestimates: [estimate >= true_count]. *)
