(** Packet-filtering firewall: a ternary 5-tuple-ish ACL. Denied traffic
    has its SFC drop flag set; the framework's flag check translates
    that to a platform drop. *)

type action = Permit | Deny

type rule = {
  src : Netpkt.Ip4.prefix option;
  dst : Netpkt.Ip4.prefix option;
  proto : int option;
  dst_port : int option;  (** matches TCP traffic's destination port *)
  action : action;
  priority : int;
}

val name : string
val table_name : string

val rule_entry : rule -> P4ir.Table.entry
(** The typed table entry for one ACL rule — what construction-time
    population installs and what control-plane ops ([Ctrl.Add/Mod/Del])
    are built around. *)

val create : ?default:action -> rule list -> unit -> (Dejavu_core.Nf.t, string) result

type ref_input = {
  src : Netpkt.Ip4.t;
  dst : Netpkt.Ip4.t;
  proto : int;
  dst_port : int;
}

val reference : ?default:action -> rule list -> ref_input -> action
