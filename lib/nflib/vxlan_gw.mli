(** A full VXLAN tunnel gateway (extension NF): terminates overlay
    tunnels by copying the inner Ethernet/IPv4/transport stack over the
    outer one and invalidating the overlay headers (decap), and
    originates tunnels from an LPM on the destination (encap). This is
    the NF that exercises the deep-offset side of the paper's
    (header_type, offset) parser-merging rule — the inner IPv4 sits 50
    bytes below the outer one, as a distinct vertex.

    After decap the packet is byte-identical to a never-encapsulated
    one, so every downstream NF (firewall, LB, router) works unchanged. *)

type tunnel = {
  dst_prefix : Netpkt.Ip4.prefix;  (** traffic to tunnel *)
  vni : int;
  local_vtep : Netpkt.Ip4.t;
  remote_vtep : Netpkt.Ip4.t;
}

val name : string
val encap_table : string
val create : tunnel list -> unit -> (Dejavu_core.Nf.t, string) result

val reference_decap : Netpkt.Pkt.t -> Netpkt.Pkt.t
(** Pure model of decapsulation on the layered representation: strips
    outer IPv4/UDP/VXLAN and the inner Ethernet, keeping the outer
    Ethernet (and SFC header) over the inner IPv4 stack. Identity for
    packets without a VXLAN layer. *)
