(** Per-tenant rate limiter (stateful extension NF): a packet counter in
    a register array, indexed by the tenant id the classifier stored in
    the SFC context. A tenant over its per-window packet budget is
    dropped; the control plane resets the window by clearing the
    register — the paper's "more advanced NFs" direction, exercising
    the stateful externs of the IR. *)

type budget = { tenant : int; limit : int }

val name : string
val table_name : string
val register_name : string
val meta_decl : P4ir.Hdr.decl
val create : budget list -> unit -> (Dejavu_core.Nf.t, string) result
(** Tenants without a budget are unlimited. *)

val reset_window : Dejavu_core.Compiler.t -> unit
(** Clear the counters (the control plane's periodic window tick). *)

val count_of : Dejavu_core.Compiler.t -> tenant:int -> int
(** Packets this window, as the data plane sees them. *)

val state_table_name : string
(** ["rl.counts"] *)

val counts :
  Dejavu_core.State_store.t -> (int, int) Dejavu_core.State_store.table
(** Register (or adopt) the per-tenant window counters on [store] —
    bounded and TTL-swept, unlike the grow-forever Hashtbl this
    replaces. A counter expiring mid-window restarts the tenant from
    zero, the same semantics as the data plane's cleared register. *)

val reference :
  budget list ->
  counts:(int, int) Dejavu_core.State_store.table ->
  tenant:int ->
  [ `Pass | `Drop ]
(** Pure model: one packet arrives for [tenant]; updates [counts] and
    says what the data plane should have done. *)
