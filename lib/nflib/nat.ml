open Dejavu_core

type binding = { internal : Netpkt.Ip4.t; public : Netpkt.Ip4.t }

let name = "nat"
let table_name = "nat_map"
let nf_id = Runtime.default_nf_id name

let snat_action =
  P4ir.Action.make "snat" ~params:[ ("public", 32) ]
    [ P4ir.Action.Assign (Net_hdrs.ip_src, P4ir.Expr.Param "public") ]

(* The typed table entry for one binding — shared by construction-time
   population and live control-plane ops. *)
let binding_entry b =
  let open P4ir in
  {
    Table.priority = 0;
    patterns =
      [ Table.M_exact (Bitval.make ~width:32 (Netpkt.Ip4.to_int64 b.internal)) ];
    action = "snat";
    args = [ Bitval.make ~width:32 (Netpkt.Ip4.to_int64 b.public) ];
  }

let make_table bindings =
  let open P4ir in
  let table =
    Table.make ~name:table_name
      ~keys:[ { Table.field = Net_hdrs.ip_src; kind = Table.Exact; width = 32 } ]
      ~actions:[ snat_action; Action.no_op ]
      ~default:("NoAction", []) ~max_size:8192 ()
  in
  Result.map
    (fun () -> table)
    (Table.add_entries table (List.map binding_entry bindings))

let create bindings () =
  Result.map
    (fun table ->
      Nf.make ~name ~description:"static source NAT"
        ~parser:(Net_hdrs.base_parser ~name ())
        ~tables:[ table ]
        ~body:[ P4ir.Control.Apply table_name ]
        ())
    (make_table bindings)

let reference bindings src =
  match List.find_opt (fun b -> Netpkt.Ip4.equal b.internal src) bindings with
  | Some b -> b.public
  | None -> src

(* --- dynamic SNAT: bindings allocated on first packet, punt on miss --- *)

let to_cpu_action =
  let open P4ir in
  Action.make "toCpu"
    [
      Action.Assign (Sfc_header.to_cpu_flag, Expr.const ~width:1 1);
      Action.Assign
        (Sfc_header.ctx_key 3, Expr.const ~width:8 Sfc_header.ctx_key_cpu_reason);
      Action.Assign (Sfc_header.ctx_val 3, Expr.const ~width:16 nf_id);
    ]

let make_table_dynamic ?(max_size = 8192) () =
  let open P4ir in
  Table.make ~name:table_name
    ~keys:[ { Table.field = Net_hdrs.ip_src; kind = Table.Exact; width = 32 } ]
    ~actions:[ snat_action; to_cpu_action ]
    ~default:("toCpu", []) ~max_size ()

let state_table_name = "nat.bindings"

let create_dynamic ?max_size () =
  Ok
    (Nf.make ~name ~description:"dynamic source NAT (punt-allocated bindings)"
       ~parser:(Net_hdrs.base_parser ~name ())
       ~tables:[ make_table_dynamic ?max_size () ]
       ~body:[ P4ir.Control.Apply table_name ]
       ~state_tables:[ state_table_name ] ())

(* Deterministic allocation: which public address an internal source
   gets must not depend on arrival order, shard count or restart
   history — it is a pure function of the address and the pool. *)
let public_of ~pool src =
  match pool with
  | [] -> invalid_arg "Nat.public_of: empty pool"
  | _ ->
      let n = List.length pool in
      let h =
        Int64.to_int
          (Int64.rem
             (Int64.logand (Netpkt.Ip4.to_int64 src) Int64.max_int)
             (Int64.of_int n))
      in
      List.nth pool h

let bindings_table store ~table =
  State_store.table store ~name:state_table_name ~key:State_store.Conv.ip4
    ~value:State_store.Conv.ip4
    ~on_evict:(fun _reason internal public ->
      ignore
        (Ctrl.apply_table table (Ctrl.Del (binding_entry { internal; public }))))
    ()

let handler ?bindings ~pool ~table () : Runtime.handler =
 fun _sfc frame ->
  match Netpkt.Pkt.decode frame with
  | Error _ -> Runtime.Consume
  | Ok layers -> (
      match Netpkt.Pkt.five_tuple_of layers with
      | None -> Runtime.Consume
      | Some tuple -> (
          let src = tuple.Netpkt.Flow.src in
          let install public =
            match
              Ctrl.apply_table table
                (Ctrl.Add (binding_entry { internal = src; public }))
            with
            | Ok () -> Runtime.Reinject (Runtime.clear_cpu_mark frame)
            | Error _ -> Runtime.Consume
          in
          match Option.bind bindings (fun bt -> State_store.find bt src) with
          | Some public ->
              (* Ledger hit but the punting chip missed (the punt is the
                 table's default action): fresh replica or warm restart —
                 re-install the stored public address. *)
              install public
          | None ->
              let public = public_of ~pool src in
              (* Ledger before chip: the insert may evict an LRU binding,
                 whose hook deletes its chip entry first. *)
              (match bindings with
              | Some bt -> State_store.insert bt src public
              | None -> ());
              install public))
