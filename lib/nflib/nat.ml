open Dejavu_core

type binding = { internal : Netpkt.Ip4.t; public : Netpkt.Ip4.t }

let name = "nat"
let table_name = "nat_map"

let snat_action =
  P4ir.Action.make "snat" ~params:[ ("public", 32) ]
    [ P4ir.Action.Assign (Net_hdrs.ip_src, P4ir.Expr.Param "public") ]

(* The typed table entry for one binding — shared by construction-time
   population and live control-plane ops. *)
let binding_entry b =
  let open P4ir in
  {
    Table.priority = 0;
    patterns =
      [ Table.M_exact (Bitval.make ~width:32 (Netpkt.Ip4.to_int64 b.internal)) ];
    action = "snat";
    args = [ Bitval.make ~width:32 (Netpkt.Ip4.to_int64 b.public) ];
  }

let make_table bindings =
  let open P4ir in
  let table =
    Table.make ~name:table_name
      ~keys:[ { Table.field = Net_hdrs.ip_src; kind = Table.Exact; width = 32 } ]
      ~actions:[ snat_action; Action.no_op ]
      ~default:("NoAction", []) ~max_size:8192 ()
  in
  Result.map
    (fun () -> table)
    (Table.add_entries table (List.map binding_entry bindings))

let create bindings () =
  Result.map
    (fun table ->
      Nf.make ~name ~description:"static source NAT"
        ~parser:(Net_hdrs.base_parser ~name ())
        ~tables:[ table ]
        ~body:[ P4ir.Control.Apply table_name ]
        ())
    (make_table bindings)

let reference bindings src =
  match List.find_opt (fun b -> Netpkt.Ip4.equal b.internal src) bindings with
  | Some b -> b.public
  | None -> src
