open Dejavu_core

type budget = { tenant : int; limit : int }

let name = "rate_limiter"
let table_name = "rl_budgets"
let register_name = "rl_counters"
let register_size = 1024

let meta_decl =
  P4ir.Hdr.decl "rl_meta" [ ("count", 32); ("over", 1); ("limited", 1) ]

let count_ref = P4ir.Fieldref.v "rl_meta" "count"
let over_ref = P4ir.Fieldref.v "rl_meta" "over"
let limited_ref = P4ir.Fieldref.v "rl_meta" "limited"
let tenant_ref = Sfc_header.ctx_val 0

(* Read-increment-compare in one action, with the budget as action data:
   over = (count >= limit); counters[tenant] = count + 1. *)
let enforce_action =
  let open P4ir in
  Action.make "enforce" ~params:[ ("limit", 32) ]
    [
      Action.Reg_read (count_ref, register_name, Expr.Field tenant_ref);
      Action.Assign (over_ref, Expr.Bin (Expr.Ge, Expr.Field count_ref, Expr.Param "limit"));
      Action.Reg_write
        ( register_name,
          Expr.Field tenant_ref,
          Expr.(Field count_ref + const ~width:32 1) );
      Action.Assign (limited_ref, Expr.const ~width:1 1);
    ]

let unlimited_action =
  P4ir.Action.make "unlimited"
    [ P4ir.Action.Assign (limited_ref, P4ir.Expr.const ~width:1 0) ]

let make_table budgets =
  let open P4ir in
  let table =
    Table.make ~name:table_name
      ~keys:[ { Table.field = tenant_ref; kind = Table.Exact; width = 16 } ]
      ~actions:[ enforce_action; unlimited_action ]
      ~default:("unlimited", []) ~max_size:1024 ()
  in
  Result.map
    (fun () -> table)
    (Table.add_entries table
       (List.map
          (fun b ->
            {
              Table.priority = 0;
              patterns = [ Table.M_exact (Bitval.of_int ~width:16 b.tenant) ];
              action = "enforce";
              args = [ Bitval.of_int ~width:32 b.limit ];
            })
          budgets))

let parser_with_meta () =
  let p = Net_hdrs.base_parser ~name () in
  { p with P4ir.Parser_graph.decls = p.P4ir.Parser_graph.decls @ [ meta_decl ] }

let body =
  let open P4ir in
  [
    Control.Apply table_name;
    Control.If
      ( Expr.(Bin (Eq, Field over_ref, const ~width:1 1)),
        [
          Control.Run
            [ Action.Assign (Sfc_header.drop_flag, Expr.const ~width:1 1) ];
        ],
        [] );
  ]

let create budgets () =
  Result.map
    (fun table ->
      Nf.make ~name ~description:"per-tenant packet-budget rate limiter"
        ~parser:(parser_with_meta ())
        ~tables:[ table ]
        ~registers:
          [ P4ir.Register.make ~name:register_name ~size:register_size ~width:32 ]
        ~body ~state_tables:[ "rl.counts" ] ())
    (make_table budgets)

let reset_window compiled =
  Option.iter P4ir.Register.clear (Compiler.find_register compiled register_name)

let count_of compiled ~tenant =
  match Compiler.find_register compiled register_name with
  | None -> 0
  | Some reg ->
      P4ir.Bitval.to_int
        (P4ir.Register.read reg (tenant land P4ir.Register.index_mask reg))

let state_table_name = "rl.counts"

(* The per-tenant window counters used to live in a caller-owned
   Hashtbl that nothing ever aged — every tenant id seen once stayed
   forever. On the store they are capacity-bounded and TTL-swept: a
   tenant idle for a window simply expires, which is also the correct
   semantics (an expired counter restarts from zero, exactly like the
   data plane's cleared register). *)
let counts store =
  State_store.table store ~name:state_table_name ~key:State_store.Conv.int
    ~value:State_store.Conv.int ()

let reference budgets ~counts ~tenant =
  match List.find_opt (fun b -> b.tenant = tenant) budgets with
  | None -> `Pass
  | Some b ->
      let current = Option.value ~default:0 (State_store.find counts tenant) in
      State_store.insert counts tenant (current + 1);
      if current >= b.limit then `Drop else `Pass
