open Dejavu_core

type action = Permit | Deny

type rule = {
  src : Netpkt.Ip4.prefix option;
  dst : Netpkt.Ip4.prefix option;
  proto : int option;
  dst_port : int option;
  action : action;
  priority : int;
}

let name = "fw"
let table_name = "acl"

let permit_action = P4ir.Action.make "permit" [ P4ir.Action.No_op ]

let deny_action =
  P4ir.Action.make "deny"
    [ P4ir.Action.Assign (Sfc_header.drop_flag, P4ir.Expr.const ~width:1 1) ]

let prefix_pattern = function
  | None -> P4ir.Table.M_any
  | Some (p : Netpkt.Ip4.prefix) ->
      P4ir.Table.M_ternary
        {
          value = P4ir.Bitval.make ~width:32 (Netpkt.Ip4.to_int64 p.Netpkt.Ip4.addr);
          mask =
            P4ir.Bitval.make ~width:32 (Netpkt.Ip4.prefix_mask p.Netpkt.Ip4.len);
        }

let opt_exact_pattern width = function
  | None -> P4ir.Table.M_any
  | Some v ->
      P4ir.Table.M_ternary
        {
          value = P4ir.Bitval.of_int ~width v;
          mask = P4ir.Bitval.max_value width;
        }

(* The typed table entry for one ACL rule — shared by construction-time
   population and live control-plane ops. *)
let rule_entry rule =
  {
    P4ir.Table.priority = rule.priority;
    patterns =
      [
        prefix_pattern rule.src;
        prefix_pattern rule.dst;
        opt_exact_pattern 8 rule.proto;
        opt_exact_pattern 16 rule.dst_port;
      ];
    action = (match rule.action with Permit -> "permit" | Deny -> "deny");
    args = [];
  }

let make_table ?(default = Permit) rules =
  let open P4ir in
  let table =
    Table.make ~name:table_name
      ~keys:
        [
          { Table.field = Net_hdrs.ip_src; kind = Table.Ternary; width = 32 };
          { Table.field = Net_hdrs.ip_dst; kind = Table.Ternary; width = 32 };
          { Table.field = Net_hdrs.ip_proto; kind = Table.Ternary; width = 8 };
          { Table.field = Net_hdrs.tcp_dport; kind = Table.Ternary; width = 16 };
        ]
      ~actions:[ permit_action; deny_action ]
      ~default:((match default with Permit -> "permit" | Deny -> "deny"), [])
      ~max_size:1024 ()
  in
  Result.map (fun () -> table) (Table.add_entries table (List.map rule_entry rules))

let create ?(default = Permit) rules () =
  Result.map
    (fun table ->
      Nf.make ~name ~description:"packet-filtering firewall (ternary ACL)"
        ~parser:(Net_hdrs.base_parser ~name ())
        ~tables:[ table ]
        ~body:[ P4ir.Control.Apply table_name ]
        ())
    (make_table ~default rules)

type ref_input = {
  src : Netpkt.Ip4.t;
  dst : Netpkt.Ip4.t;
  proto : int;
  dst_port : int;
}

let rule_matches (rule : rule) (input : ref_input) =
  (match rule.src with None -> true | Some p -> Netpkt.Ip4.matches p input.src)
  && (match rule.dst with None -> true | Some p -> Netpkt.Ip4.matches p input.dst)
  && (match rule.proto with None -> true | Some p -> p = input.proto)
  && match rule.dst_port with None -> true | Some p -> p = input.dst_port

let reference ?(default = Permit) rules input =
  let candidates =
    List.filter (fun r -> rule_matches r input) rules
  in
  match candidates with
  | [] -> default
  | first :: rest ->
      (List.fold_left
         (fun best c -> if c.priority > best.priority then c else best)
         first rest)
        .action
