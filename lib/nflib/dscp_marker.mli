(** Per-tenant DSCP marker (extension NF): reads the tenant id the
    classifier stored in the SFC context and stamps the corresponding
    traffic class — the kind of policy NFs make decisions on context
    data for (§3). *)

val name : string
val table_name : string
val create : (int * int) list -> unit -> (Dejavu_core.Nf.t, string) result
(** [(tenant, dscp)] assignments; unknown tenants keep their marking. *)

val reference : (int * int) list -> tenant:int -> dscp:int -> int
