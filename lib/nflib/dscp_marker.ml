open Dejavu_core

let name = "dscp_marker"
let table_name = "tenant_class"

let mark_action =
  P4ir.Action.make "mark" ~params:[ ("dscp", 6) ]
    [ P4ir.Action.Assign (P4ir.Fieldref.v "ipv4" "dscp", P4ir.Expr.Param "dscp") ]

let make_table assignments =
  let open P4ir in
  let table =
    Table.make ~name:table_name
      ~keys:
        [ { Table.field = Sfc_header.ctx_val 0; kind = Table.Exact; width = 16 } ]
      ~actions:[ mark_action; Action.no_op ]
      ~default:("NoAction", []) ~max_size:1024 ()
  in
  Result.map
    (fun () -> table)
    (Table.add_entries table
       (List.map
          (fun (tenant, dscp) ->
            {
              Table.priority = 0;
              patterns = [ Table.M_exact (Bitval.of_int ~width:16 tenant) ];
              action = "mark";
              args = [ Bitval.of_int ~width:6 dscp ];
            })
          assignments))

let create assignments () =
  Result.map
    (fun table ->
      Nf.make ~name ~description:"per-tenant DSCP marking from SFC context"
        ~parser:(Net_hdrs.base_parser ~name ())
        ~tables:[ table ]
        ~body:[ P4ir.Control.Apply table_name ]
        ())
    (make_table assignments)

let reference assignments ~tenant ~dscp =
  match List.assoc_opt tenant assignments with Some d -> d | None -> dscp
