(** The production edge-cloud deployment of Fig. 2: three tenants, three
    service paths (red/orange/green) over five NFs, preconfigured so
    examples, tests and benches all drive the same setup. *)

val tenant1_vip : Netpkt.Ip4.t
(** The load-balanced service address (tenant 1, the "red" chain). *)

val tenant1_backends : Netpkt.Ip4.t list
val tenant2_service : Netpkt.Ip4.prefix
val tenant3_service : Netpkt.Ip4.prefix
val blocked_subnet : Netpkt.Ip4.prefix
(** Sources the firewall denies. *)

val path_red : int
val path_orange : int
val path_green : int
val path_protected : int

val registry : unit -> Dejavu_core.Nf.registry
(** classifier, fw, vgw, lb, router plus the extension NFs (nat,
    dscp_marker, mirror_tap), all with the deployment's rules. *)

val chains : exit_port:int -> Dejavu_core.Chain.t list
(** Fig. 2's three paths: red = classifier-fw-vgw-lb-router (50% of
    traffic), orange = classifier-vgw-router (30%), green =
    classifier-router (20%). *)

val extended_chains : exit_port:int -> Dejavu_core.Chain.t list
(** The three paths plus a monitoring chain exercising the extension
    NFs. *)

val protected_chains : exit_port:int -> Dejavu_core.Chain.t list
(** The three paths plus a DDoS-protected, rate-limited chain
    exercising the stateful NFs (tenant 5, 10.0.5.0/24, per-window
    budget of 8 packets, sketch threshold 6). *)

val rate_budgets : Rate_limiter.budget list
val sketch_threshold : int
val local_vtep : Netpkt.Ip4.t
val vxlan_tunnels : Vxlan_gw.tunnel list

val edge_cloud_input :
  ?spec:Asic.Spec.t ->
  ?strategy:Dejavu_core.Placement.strategy ->
  ?exit_port:int ->
  ?extended:bool ->
  unit ->
  Dejavu_core.Compiler.input
(** The §5 prototype configuration: entry pipeline 0, pipeline 1's
    Ethernet ports in loopback mode. *)

val nat_pool : Netpkt.Ip4.t list
(** The public-address pool the dynamic NAT handler allocates from. *)

val attach_handlers : Dejavu_core.Runtime.t -> Dejavu_core.Compiler.t -> unit
(** Register the LB and dynamic-NAT miss handlers (and NF ids) on a
    runtime, state-store-aware: when the runtime's state knob is
    [Bounded], each handler records its per-flow state in the store
    serving its shard (tables ["lb.sessions"], ["nat.bindings"]) and the
    stores' evictions delete the matching chip entries. With the static
    NAT of {!registry} nothing punts with the NAT id, so its handler is
    inert. *)

val routes_table_name : string
(** The router FIB's composed table name on a compiled chip — what
    control-plane ops address. *)

val acl_table_name : string
(** The firewall ACL's composed table name on a compiled chip. *)

val fib_churn_trace : ?seed:int -> n:int -> unit -> Dejavu_core.Ctrl.op list
(** A deterministic BGP-style churn trace of [n] typed ops: mostly FIB
    announcements (Add of /24s under 172.16.0.0/12) while the table
    warms, then a mix of re-announcements with a changed next hop
    (Mod), withdrawals (Del) and fresh announcements, plus occasional
    firewall ACL rule toggles. Valid by construction — every Mod/Del
    names a route live at that point — so the trace applies cleanly
    both live under traffic and cold, converging to identical state.
    Stays within the FIB's capacity alongside the deployment's
    baseline routes. *)
