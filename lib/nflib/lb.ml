open Dejavu_core

let name = "lb"
let table_name = "lb_session"
let nf_id = Runtime.default_nf_id name

let meta_decl = P4ir.Hdr.decl "lb_meta" [ ("session_hash", 32) ]
let session_hash_ref = P4ir.Fieldref.v "lb_meta" "session_hash"

let modify_dst_action =
  P4ir.Action.make "modify_dstIp" ~params:[ ("dip", 32) ]
    [ P4ir.Action.Assign (Net_hdrs.ip_dst, P4ir.Expr.Param "dip") ]

let to_cpu_action =
  let open P4ir in
  Action.make "toCpu"
    [
      Action.Assign (Sfc_header.to_cpu_flag, Expr.const ~width:1 1);
      Action.Assign
        (Sfc_header.ctx_key 3, Expr.const ~width:8 Sfc_header.ctx_key_cpu_reason);
      Action.Assign (Sfc_header.ctx_val 3, Expr.const ~width:16 nf_id);
    ]

let make_table () =
  P4ir.Table.make ~name:table_name
    ~keys:[ { P4ir.Table.field = session_hash_ref; kind = P4ir.Table.Exact; width = 32 } ]
    ~actions:[ modify_dst_action; to_cpu_action ]
    ~default:("toCpu", []) ~max_size:65536 ()

let hash_over sport dport =
  P4ir.Expr.Hash
    ( P4ir.Expr.Crc32,
      32,
      [
        P4ir.Expr.Field Net_hdrs.ip_src;
        P4ir.Expr.Field Net_hdrs.ip_dst;
        P4ir.Expr.Field Net_hdrs.ip_proto;
        P4ir.Expr.Field sport;
        P4ir.Expr.Field dport;
      ] )

let body =
  let open P4ir in
  [
    Control.If
      ( Expr.Valid "tcp",
        [
          Control.Run
            [
              Action.Assign
                (session_hash_ref, hash_over Net_hdrs.tcp_sport Net_hdrs.tcp_dport);
            ];
        ],
        [
          Control.If
            ( Expr.Valid "udp",
              [
                Control.Run
                  [
                    Action.Assign
                      ( session_hash_ref,
                        hash_over Net_hdrs.udp_sport Net_hdrs.udp_dport );
                  ];
              ],
              [] );
        ] );
    Control.Apply table_name;
  ]

let parser_with_meta () =
  let p = Net_hdrs.base_parser ~name () in
  { p with P4ir.Parser_graph.decls = p.P4ir.Parser_graph.decls @ [ meta_decl ] }

let state_table_name = "lb.sessions"

let create () =
  Ok
    (Nf.make ~name ~description:"L4 load balancer (CRC32 session table)"
       ~parser:(parser_with_meta ()) ~tables:[ make_table () ] ~body
       ~state_tables:[ state_table_name ] ())

let session_hash = Netpkt.Flow.hash_five_tuple

(* The typed table entry for one session — shared by the punt handler
   and any control-plane producer pre-installing sessions. *)
let session_entry tuple backend =
  {
    P4ir.Table.priority = 0;
    patterns =
      [ P4ir.Table.M_exact (P4ir.Bitval.make ~width:32 (session_hash tuple)) ];
    action = "modify_dstIp";
    args = [ P4ir.Bitval.make ~width:32 (Netpkt.Ip4.to_int64 backend) ];
  }

(* Routed through the typed-op layer: the punt handler runs mid-batch
   against the chip that punted (a shard replica under sharding), where
   applying the op directly to the resolved handle IS the coherent
   path — replicas are rebuilt from the primary at the next batch. *)
let install_session table tuple backend =
  Ctrl.apply_table table (Ctrl.Add (session_entry tuple backend))

let pick_backend backends tuple =
  match backends with
  | [] -> invalid_arg "Lb.pick_backend: empty pool"
  | _ ->
      let h = Int64.to_int (Int64.rem (session_hash tuple) (Int64.of_int (List.length backends))) in
      List.nth backends h

(* The store-side twin of the chip session table: keyed by the raw
   5-tuple (not its hash — the ledger must name flows exactly),
   sharded by the canonical symmetric flow hash so re-sharding homes
   a session with the shard that owns its packets, and mirroring every
   eviction into the data plane as a typed [Del] — which bumps the
   table epoch and so invalidates any cached whole-chain verdict for
   the evicted flow. *)
let sessions store ~table =
  State_store.table store ~name:state_table_name ~key:State_store.Conv.five_tuple
    ~value:State_store.Conv.ip4
    ~shard_hint:Netpkt.Flow.hash_five_tuple_symmetric
    ~on_evict:(fun _reason tuple backend ->
      ignore (Ctrl.apply_table table (Ctrl.Del (session_entry tuple backend))))
    ()

let handler ?sessions ~backends ~table () : Runtime.handler =
 fun _sfc frame ->
  match Netpkt.Pkt.decode frame with
  | Error _ -> Runtime.Consume
  | Ok layers -> (
      match Netpkt.Pkt.five_tuple_of layers with
      | None -> Runtime.Consume
      | Some tuple -> (
          match
            Option.bind sessions (fun st -> State_store.find st tuple)
          with
          | Some backend -> (
              (* The ledger owns this session but the chip that punted
                 missed it — the punt IS the miss (toCpu is the table's
                 default action). That chip is a fresh shard replica or a
                 warm-restarted primary: re-install the *stored* backend,
                 never re-pick, so restarts and re-shards preserve every
                 flow's assignment. No duplicate risk — the table missed. *)
              match install_session table tuple backend with
              | Ok () -> Runtime.Reinject (Runtime.clear_cpu_mark frame)
              | Error _ -> Runtime.Consume)
          | None -> (
              let backend = pick_backend backends tuple in
              (* Ledger first: inserting may evict the LRU session, whose
                 on_evict deletes its chip entry — freeing the slot before
                 we install, so the chip table never transiently exceeds
                 the bound. *)
              (match sessions with
              | Some st -> State_store.insert st tuple backend
              | None -> ());
              match install_session table tuple backend with
              | Ok () -> Runtime.Reinject (Runtime.clear_cpu_mark frame)
              | Error _ -> Runtime.Consume)))

let reference ~sessions tuple =
  match
    List.find_opt
      (fun (t, _) -> Netpkt.Flow.equal_five_tuple t tuple)
      sessions
  with
  | Some (_, backend) -> `Rewrite backend
  | None -> `To_cpu
