type t = Off | Counters | Journeys

let counters_on = function Off -> false | Counters | Journeys -> true
let journeys_on = function Journeys -> true | Off | Counters -> false

let to_string = function
  | Off -> "off"
  | Counters -> "counters"
  | Journeys -> "journeys"

let of_string = function
  | "off" -> Ok Off
  | "counters" -> Ok Counters
  | "journeys" -> Ok Journeys
  | s -> Error (Printf.sprintf "unknown telemetry level %S" s)

let pp ppf t = Format.pp_print_string ppf (to_string t)
