type 'a t = {
  slots : 'a option array;
  mutable next : int;  (* slot the next push writes *)
  mutable pushed : int;
}

let create capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  { slots = Array.make capacity None; next = 0; pushed = 0 }

let capacity t = Array.length t.slots
let pushed t = t.pushed
let length t = min t.pushed (capacity t)

let push t x =
  t.slots.(t.next) <- Some x;
  t.next <- (t.next + 1) mod capacity t;
  t.pushed <- t.pushed + 1

let to_list t =
  let cap = capacity t in
  let n = length t in
  let start = (t.next - n + cap) mod cap in
  List.init n (fun i ->
      match t.slots.((start + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let last t =
  if t.pushed = 0 then None
  else t.slots.((t.next - 1 + capacity t) mod capacity t)

let clear t =
  Array.fill t.slots 0 (capacity t) None;
  t.next <- 0;
  t.pushed <- 0
