(** Monotonic nanosecond clock (CLOCK_MONOTONIC via bechamel's noalloc
    stub) — read once at packet entry and once at exit; never
    wall-clock, so histograms survive NTP steps. *)

val now_ns : unit -> int64
