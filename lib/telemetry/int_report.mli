(** INT-style postcard reports: one bounded sink per runtime collecting
    per-packet hop records (the {!Journey.hop} stamps each pipelet pass
    leaves in the packet's probe metadata) and aggregating them into
    per-flow summaries — the "postcard" model where every hop's
    telemetry is reported out-of-band at the end of the packet's walk
    instead of accumulating in the packet.

    The sink is bounded twice: recent postcards live in a fixed ring
    (old ones fall off), and per-flow aggregation stops accepting new
    flows at [max_flows] (drops are counted, never silent). *)

type postcard = {
  flow : string;  (** canonical flow key, e.g. the 5-tuple rendering *)
  in_port : int;
  verdict : string;
  wall_ns : int;
  hops : Journey.hop list;
}

(** Running aggregate of every postcard a flow produced. *)
type summary = {
  flow : string;
  mutable packets : int;
  mutable hops : int;  (** total pipelet passes across all packets *)
  mutable latency_ns : float;  (** summed modelled chip latency *)
  mutable max_hops : int;  (** deepest single walk (recirc fan-out) *)
  mutable recircs : int;
  mutable resubmits : int;
  mutable verdicts : (string * int) list;  (** verdict -> packets *)
}

type t

val create : ?max_flows:int -> ring_capacity:int -> unit -> t
(** [max_flows] defaults to 1024. *)

val push : t -> postcard -> unit
val pushed : t -> int
(** Total postcards ever pushed (ring overwrites included). *)

val recent : t -> postcard list
(** Retained postcards, oldest first. *)

val summaries : t -> summary list
(** Per-flow aggregates, most packets first. *)

val flows : t -> int
val dropped_flows : t -> int
(** Postcards whose flow could not be aggregated because the flow table
    was full ([max_flows] reached); their packets still enter the
    ring. *)

val merge : into:t -> t -> unit
(** Fold a shard replica's sink into the primary: summaries add
    field-wise, retained postcards re-enter the ring, dropped-flow
    counts sum. [src] is not modified. *)

val clear : t -> unit

val summary_to_json : summary -> string
val postcard_to_json : postcard -> string
val pp_summaries : Format.formatter -> t -> unit
