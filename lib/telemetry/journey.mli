(** One packet's journey through the chip: the per-pass hops (pipelet,
    tables applied with the action that ran, NF blocks entered, parsed
    headers, SFC position), plus the end-to-end verdict and counters.
    Everything is plain strings/ints so the data plane layers can fill
    it in without this library knowing their types. *)

type hop_meta = {
  sfc : (int * int) option;
      (** (service_path_id, service_index) after the pass, when the
          packet carries an SFC header *)
  headers : string list;  (** valid header instances — the parser path *)
}

val no_meta : hop_meta

type hop = {
  pipelet : string;  (** e.g. "ingress 0" *)
  nfs : string list;  (** NF blocks entered during the pass, in order *)
  tables : (string * string * bool) list;
      (** (table, action run, hit) in application order *)
  gateways : int;  (** gateway conditions evaluated during the pass *)
  latency_ns : float;
      (** modelled chip latency attributed to this pass: the pipelet
          walk plus any TM / recirculation cost paid to reach it —
          per-hop latencies sum to the result's end-to-end latency *)
  recirc_depth : int;  (** recirculations completed before this pass *)
  resubmit_depth : int;  (** resubmissions completed before this pass *)
  meta : hop_meta;
}

type t = {
  id : int;  (** recorder sequence number *)
  in_port : int;
  verdict : string;
      (** "emitted:<port>", "dropped", "to_cpu" or "error:<msg>" *)
  cpu_round_trips : int;
  recircs : int;
  resubmits : int;
  latency_ns : float;  (** modelled chip latency *)
  wall_ns : int;  (** measured host-clock time inside the runtime *)
  hops : hop list;
}

val to_json : ?indent:int -> t -> string
val list_to_json : t list -> string
val pp : Format.formatter -> t -> unit
