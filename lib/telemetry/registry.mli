(** The metrics registry: named counters (bare [int ref]s, so the hot
    path bumps them with [incr]) and log2 histograms, registered once
    and snapshotted on demand. Snapshots are plain data — diffable
    against an earlier snapshot and serializable to JSON or a
    human-readable table. *)

type t

val create : unit -> t

val counter : t -> string -> int ref
(** Find-or-create. The returned ref IS the live counter; callers keep
    it and [incr] it directly. *)

val histogram : t -> string -> Histogram.t
(** Find-or-create. *)

val find_counter : t -> string -> int ref option
val find_histogram : t -> string -> Histogram.t option
val reset : t -> unit
(** Zero every counter and histogram (registrations survive). *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src] into [into]: counters are summed,
    histograms added bucket-wise (count and sum included). Names absent
    from [into] are created. [src] is not modified. This is how
    per-domain registries from a parallel run collapse into one. *)

(** {2 Snapshots} *)

type value =
  | Vcount of int
  | Vhist of {
      count : int;
      sum : int;
      mean : float;
      p50 : int;
      p99 : int;
      buckets : (int * int) list;  (** (log2 bucket index, count), ascending *)
    }

type snapshot = (string * value) list
(** Registration order. *)

val snapshot : t -> snapshot

val delta : since:snapshot -> snapshot -> snapshot
(** [delta ~since now]: counters and histogram bucket counts in [now]
    minus their values in [since] (absent in [since] = 0). Quantiles and
    means are recomputed over the difference. *)

val to_json : ?indent:int -> snapshot -> string
(** One JSON object: counters as numbers, histograms as
    [{"count":..,"sum":..,"mean":..,"p50":..,"p99":..,"buckets":{"lo":count,..}}]
    keyed by each bucket's lower bound. *)

val pp : Format.formatter -> snapshot -> unit
(** An aligned human-readable table. *)
