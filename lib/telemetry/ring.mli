(** Bounded ring buffer — the flight recorder's storage. Pushing past
    capacity silently evicts the oldest element, so the last N packet
    journeys survive for post-mortem no matter how long the run was. *)

type 'a t

val create : int -> 'a t
(** Raises [Invalid_argument] on capacity < 1. *)

val capacity : 'a t -> int
val length : 'a t -> int
val pushed : 'a t -> int
(** Total pushes over the ring's lifetime (>= [length]). *)

val push : 'a t -> 'a -> unit
val to_list : 'a t -> 'a list
(** Oldest first. *)

val last : 'a t -> 'a option
val clear : 'a t -> unit
