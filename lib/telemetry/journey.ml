type hop_meta = {
  sfc : (int * int) option;
  headers : string list;
}

let no_meta = { sfc = None; headers = [] }

type hop = {
  pipelet : string;
  nfs : string list;
  tables : (string * string * bool) list;
  gateways : int;
  latency_ns : float;
  recirc_depth : int;
  resubmit_depth : int;
  meta : hop_meta;
}

type t = {
  id : int;
  in_port : int;
  verdict : string;
  cpu_round_trips : int;
  recircs : int;
  resubmits : int;
  latency_ns : float;
  wall_ns : int;
  hops : hop list;
}

let strings_json l =
  "[" ^ String.concat ", " (List.map Json.str l) ^ "]"

let hop_to_json pad h =
  let tables =
    String.concat ", "
      (List.map
         (fun (t, a, hit) ->
           Printf.sprintf "{ \"table\": %s, \"action\": %s, \"hit\": %b }"
             (Json.str t) (Json.str a) hit)
         h.tables)
  in
  let sfc =
    match h.meta.sfc with
    | None -> "null"
    | Some (spid, si) ->
        Printf.sprintf "{ \"service_path_id\": %d, \"service_index\": %d }" spid
          si
  in
  Printf.sprintf
    "%s{ \"pipelet\": %s, \"sfc\": %s,\n\
     %s  \"latency_ns\": %.1f, \"recirc_depth\": %d, \"resubmit_depth\": %d,\n\
     %s  \"nfs\": %s, \"gateways\": %d,\n\
     %s  \"headers\": %s,\n\
     %s  \"tables\": [%s] }"
    pad (Json.str h.pipelet) sfc pad h.latency_ns h.recirc_depth
    h.resubmit_depth pad (strings_json h.nfs) h.gateways pad
    (strings_json h.meta.headers)
    pad tables

let to_json ?(indent = 2) t =
  let pad = String.make indent ' ' in
  let hops =
    String.concat ",\n" (List.map (hop_to_json (pad ^ pad)) t.hops)
  in
  Printf.sprintf
    "{\n\
     %s\"id\": %d,\n\
     %s\"in_port\": %d,\n\
     %s\"verdict\": %s,\n\
     %s\"cpu_round_trips\": %d,\n\
     %s\"recircs\": %d,\n\
     %s\"resubmits\": %d,\n\
     %s\"latency_ns\": %.1f,\n\
     %s\"wall_ns\": %d,\n\
     %s\"hops\": [\n%s\n%s]\n\
     }"
    pad t.id pad t.in_port pad (Json.str t.verdict) pad t.cpu_round_trips pad
    t.recircs pad t.resubmits pad t.latency_ns pad t.wall_ns pad hops pad

let list_to_json l =
  "[\n" ^ String.concat ",\n" (List.map (to_json ~indent:2) l) ^ "\n]"

let pp ppf t =
  Format.fprintf ppf
    "@[<v 2>journey #%d in_port=%d %s (cpu=%d recircs=%d resubmits=%d \
     latency=%.0fns wall=%dns)@,"
    t.id t.in_port t.verdict t.cpu_round_trips t.recircs t.resubmits
    t.latency_ns t.wall_ns;
  List.iter
    (fun h ->
      Format.fprintf ppf "@[<v 2>%s" h.pipelet;
      Format.fprintf ppf "  +%.0fns" h.latency_ns;
      if h.recirc_depth > 0 || h.resubmit_depth > 0 then
        Format.fprintf ppf "  depth=(recirc %d, resubmit %d)" h.recirc_depth
          h.resubmit_depth;
      (match h.meta.sfc with
      | Some (spid, si) -> Format.fprintf ppf "  sfc=(%d,%d)" spid si
      | None -> ());
      if h.nfs <> [] then
        Format.fprintf ppf "  nfs=[%s]" (String.concat "," h.nfs);
      List.iter
        (fun (t, a, hit) ->
          Format.fprintf ppf "@,%-30s -> %-16s %s" t a
            (if hit then "(hit)" else "(miss)"))
        h.tables;
      Format.fprintf ppf "@]@,")
    t.hops;
  Format.fprintf ppf "@]"
