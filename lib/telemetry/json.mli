(** The hand-rolled JSON the repo already uses for BENCH_*.json — just
    enough to serialize snapshots without a dependency. *)

val esc : string -> string
(** Escape for use inside a double-quoted JSON string. *)

val str : string -> string
(** A quoted, escaped JSON string literal. *)
