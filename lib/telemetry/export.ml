(* Snapshot exporters. Pure functions over [Registry.snapshot] — the
   caller snapshots (possibly after a merge from shard replicas) and
   these render; nothing here touches a live counter. *)

let legal_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let mangle name =
  let mangled = String.map (fun c -> if legal_char c then c else '_') name in
  if mangled = "" then "_"
  else
    match mangled.[0] with '0' .. '9' -> "_" ^ mangled | _ -> mangled

(* --- Prometheus text exposition (0.0.4) --- *)

(* The registry's log2 buckets render as a sparse cumulative series:
   each populated bucket contributes one [_bucket{le="<hi>"}] sample at
   its inclusive upper bound, and the mandatory [le="+Inf"] closes with
   the total count. Sparseness is fine — cumulative semantics make the
   missing (empty) buckets implied by the next populated one. *)
let add_histogram buf base (h : Registry.value) =
  match h with
  | Registry.Vcount _ -> assert false
  | Registry.Vhist { count; sum; buckets; _ } ->
      let cum = ref 0 in
      List.iter
        (fun (b, n) ->
          cum := !cum + n;
          if b < Histogram.n_buckets - 1 then
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" base
                 (snd (Histogram.bounds b))
                 !cum))
        buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" base count);
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" base sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" base count)

let prometheus ?(namespace = "dejavu") snap =
  let ns = mangle namespace in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let base = ns ^ "_" ^ mangle name in
      match v with
      | Registry.Vcount n ->
          let m = base ^ "_total" in
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s dejavu counter %s\n" m name);
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" m);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" m n)
      | Registry.Vhist _ ->
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s dejavu histogram %s\n" base name);
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" base);
          add_histogram buf base v)
    snap;
  Buffer.contents buf

(* --- Parser (the round-trip validator) --- *)

type metric = {
  metric : string;
  labels : (string * string) list;
  value : float;
}

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let parse_value s =
  match String.lowercase_ascii s with
  | "+inf" | "inf" -> Some infinity
  | "-inf" -> Some neg_infinity
  | "nan" -> Some nan
  | _ -> float_of_string_opt s

(* One sample line: a metric name, an optional brace-delimited label
   set with quoted values, then the value. The label scanner handles
   the escapes the exposition format allows: backslash, quote, \n. *)
let parse_line line =
  let n = String.length line in
  let i = ref 0 in
  if n = 0 || not (is_name_start line.[0]) then Error "bad metric name"
  else begin
    while !i < n && (legal_char line.[!i]) do incr i done;
    let name = String.sub line 0 !i in
    let labels = ref [] in
    let err = ref None in
    (if !i < n && line.[!i] = '{' then begin
       incr i;
       let fine = ref true in
       while !fine && !i < n && line.[!i] <> '}' do
         let ls = !i in
         while !i < n && legal_char line.[!i] do incr i done;
         let lname = String.sub line ls (!i - ls) in
         if lname = "" || !i >= n || line.[!i] <> '=' then begin
           err := Some "bad label name";
           fine := false
         end
         else begin
           incr i;
           if !i >= n || line.[!i] <> '"' then begin
             err := Some "label value must be quoted";
             fine := false
           end
           else begin
             incr i;
             let b = Buffer.create 16 in
             let closed = ref false in
             while (not !closed) && !i < n do
               (match line.[!i] with
               | '"' -> closed := true
               | '\\' when !i + 1 < n ->
                   incr i;
                   Buffer.add_char b
                     (match line.[!i] with 'n' -> '\n' | c -> c)
               | c -> Buffer.add_char b c);
               incr i
             done;
             if not !closed then begin
               err := Some "unterminated label value";
               fine := false
             end
             else begin
               labels := (lname, Buffer.contents b) :: !labels;
               if !i < n && line.[!i] = ',' then incr i
             end
           end
         end
       done;
       if !fine then
         if !i < n && line.[!i] = '}' then incr i
         else err := Some "unterminated label set"
     end);
    match !err with
    | Some e -> Error e
    | None ->
        let rest = String.trim (String.sub line !i (n - !i)) in
        (* A timestamp after the value is legal exposition; take the
           first token as the value. *)
        let value_tok =
          match String.index_opt rest ' ' with
          | Some sp -> String.sub rest 0 sp
          | None -> rest
        in
        if value_tok = "" then Error "missing value"
        else
          match parse_value value_tok with
          | Some value ->
              Ok { metric = name; labels = List.rev !labels; value }
          | None -> Error (Printf.sprintf "bad value %S" value_tok)
  end

let parse_prometheus text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let t = String.trim line in
        if t = "" || t.[0] = '#' then go acc (lineno + 1) rest
        else
          match parse_line t with
          | Ok m -> go (m :: acc) (lineno + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

(* --- JSON lines --- *)

let json_lines ?now_ns snap =
  let buf = Buffer.create 4096 in
  let ts =
    match now_ns with
    | None -> ""
    | Some t -> Printf.sprintf "\"ts_ns\": %Ld, " t
  in
  List.iter
    (fun (name, v) ->
      (match v with
      | Registry.Vcount n ->
          Buffer.add_string buf
            (Printf.sprintf "{%s\"name\": %s, \"type\": \"counter\", \"value\": %d}"
               ts (Json.str name) n)
      | Registry.Vhist h ->
          Buffer.add_string buf
            (Printf.sprintf
               "{%s\"name\": %s, \"type\": \"histogram\", \"count\": %d, \
                \"sum\": %d, \"mean\": %.3f, \"p50\": %d, \"p99\": %d, \
                \"buckets\": {"
               ts (Json.str name) h.count h.sum h.mean h.p50 h.p99);
          List.iteri
            (fun j (b, n) ->
              if j > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf
                (Printf.sprintf "\"%d\": %d" (max 0 (fst (Histogram.bounds b))) n))
            h.buckets;
          Buffer.add_string buf "}}");
      Buffer.add_char buf '\n')
    snap;
  Buffer.contents buf

(* --- Windowed rates --- *)

module Window = struct
  type t = (int64 * Registry.snapshot) Ring.t

  let create ~capacity : t = Ring.create (max 2 capacity)
  let push (t : t) ~now_ns snap = Ring.push t (now_ns, snap)
  let length = Ring.length

  let ends t =
    match Ring.to_list t with
    | [] | [ _ ] -> None
    | oldest :: rest -> Some (oldest, List.nth rest (List.length rest - 1))

  let span_ns t =
    match ends t with
    | None -> 0L
    | Some ((t0, _), (t1, _)) -> Int64.sub t1 t0

  let rates t =
    match ends t with
    | None -> []
    | Some ((t0, old), (t1, now)) ->
        let secs = Int64.to_float (Int64.sub t1 t0) /. 1e9 in
        if secs <= 0.0 then []
        else
          List.map
            (fun (name, v) ->
              match v with
              | Registry.Vcount n ->
                  let prev =
                    match List.assoc_opt name old with
                    | Some (Registry.Vcount o) -> o
                    | Some (Registry.Vhist _) | None -> 0
                  in
                  (name, float_of_int (n - prev) /. secs)
              | Registry.Vhist { count; _ } ->
                  let prev =
                    match List.assoc_opt name old with
                    | Some (Registry.Vhist { count = o; _ }) -> o
                    | Some (Registry.Vcount _) | None -> 0
                  in
                  (name ^ ".count", float_of_int (count - prev) /. secs))
            now
end
