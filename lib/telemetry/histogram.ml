let n_buckets = 64

type t = { counts : int array; mutable count : int; mutable sum : int }

let create () = { counts = Array.make n_buckets 0; count = 0; sum = 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 in
    let v = ref v in
    while !v <> 0 do
      incr b;
      v := !v lsr 1
    done;
    if !b > n_buckets - 1 then n_buckets - 1 else !b
  end

let bounds b =
  if b <= 0 then (min_int, 0)
  else if b >= n_buckets - 1 then (1 lsl (n_buckets - 2), max_int)
  else ((1 lsl (b - 1)), (1 lsl b) - 1)

let observe t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v

let count t = t.count
let sum t = t.sum
let buckets t = Array.copy t.counts

let nonzero t =
  let out = ref [] in
  for b = n_buckets - 1 downto 0 do
    if t.counts.(b) > 0 then out := (b, t.counts.(b)) :: !out
  done;
  !out

let quantile t q =
  if t.count = 0 then 0
  else begin
    let target =
      let x = int_of_float (ceil (q *. float_of_int t.count)) in
      if x < 1 then 1 else if x > t.count then t.count else x
    in
    let rec go b acc =
      if b >= n_buckets then snd (bounds (n_buckets - 1))
      else
        let acc = acc + t.counts.(b) in
        if acc >= target then snd (bounds b) else go (b + 1) acc
    in
    go 0 0
  end

let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let reset t =
  Array.fill t.counts 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0

let merge_into ~dst src =
  for b = 0 to n_buckets - 1 do
    dst.counts.(b) <- dst.counts.(b) + src.counts.(b)
  done;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum
