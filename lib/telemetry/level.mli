(** Instrumentation depth. The data plane compiles its hooks in or out
    per level, so [Off] costs one branch per hook point and [Counters]
    only integer bumps — the flight recorder's journey capture is paid
    only at [Journeys]. *)

type t =
  | Off  (** no instrumentation — the benchmark fast path *)
  | Counters
      (** per-table hit/miss + per-entry hits, per-NF apply counts,
          per-port and verdict counters, ns-per-packet histogram *)
  | Journeys
      (** everything in [Counters] plus a per-packet journey span
          captured into the bounded flight recorder *)

val counters_on : t -> bool
(** [true] for [Counters] and [Journeys]. *)

val journeys_on : t -> bool
(** [true] for [Journeys] only. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit
