type item = C of int ref | H of Histogram.t

type t = {
  items : (string, item) Hashtbl.t;
  mutable rev_order : string list;
}

let create () = { items = Hashtbl.create 64; rev_order = [] }

let register t name item =
  Hashtbl.add t.items name item;
  t.rev_order <- name :: t.rev_order;
  item

let counter t name =
  match Hashtbl.find_opt t.items name with
  | Some (C r) -> r
  | Some (H _) ->
      invalid_arg (Printf.sprintf "Registry.counter: %s is a histogram" name)
  | None -> ( match register t name (C (ref 0)) with C r -> r | H _ -> assert false)

let histogram t name =
  match Hashtbl.find_opt t.items name with
  | Some (H h) -> h
  | Some (C _) ->
      invalid_arg (Printf.sprintf "Registry.histogram: %s is a counter" name)
  | None -> (
      match register t name (H (Histogram.create ())) with
      | H h -> h
      | C _ -> assert false)

let find_counter t name =
  match Hashtbl.find_opt t.items name with Some (C r) -> Some r | _ -> None

let find_histogram t name =
  match Hashtbl.find_opt t.items name with Some (H h) -> Some h | _ -> None

(* Fold [src] into [into]: counters add, histograms merge bucket-wise.
   Iterating src in registration order keeps the merged registry's
   display order sensible when [into] sees a name for the first time. *)
let merge ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find src.items name with
      | C r ->
          let d = counter into name in
          d := !d + !r
      | H h -> Histogram.merge_into ~dst:(histogram into name) h)
    (List.rev src.rev_order)

let reset t =
  Hashtbl.iter
    (fun _ item ->
      match item with C r -> r := 0 | H h -> Histogram.reset h)
    t.items

type value =
  | Vcount of int
  | Vhist of {
      count : int;
      sum : int;
      mean : float;
      p50 : int;
      p99 : int;
      buckets : (int * int) list;
    }

type snapshot = (string * value) list

(* Quantile over a sparse (bucket, count) list — same contract as
   [Histogram.quantile], reused by [delta] where no live histogram
   backs the diffed buckets. *)
let sparse_quantile buckets count q =
  if count = 0 then 0
  else begin
    let target =
      let x = int_of_float (ceil (q *. float_of_int count)) in
      if x < 1 then 1 else if x > count then count else x
    in
    let rec go acc = function
      | [] -> snd (Histogram.bounds (Histogram.n_buckets - 1))
      | (b, n) :: rest ->
          let acc = acc + n in
          if acc >= target then snd (Histogram.bounds b) else go acc rest
    in
    go 0 buckets
  end

let vhist_of_buckets buckets sum =
  let count = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
  Vhist
    {
      count;
      sum;
      mean = (if count = 0 then 0.0 else float_of_int sum /. float_of_int count);
      p50 = sparse_quantile buckets count 0.5;
      p99 = sparse_quantile buckets count 0.99;
      buckets;
    }

let snapshot t =
  List.rev_map
    (fun name ->
      match Hashtbl.find t.items name with
      | C r -> (name, Vcount !r)
      | H h -> (name, vhist_of_buckets (Histogram.nonzero h) (Histogram.sum h)))
    t.rev_order

let delta ~since now =
  List.filter_map
    (fun (name, v) ->
      match (v, List.assoc_opt name since) with
      | Vcount n, Some (Vcount o) -> Some (name, Vcount (n - o))
      | Vcount n, (None | Some (Vhist _)) -> Some (name, Vcount n)
      | Vhist h, Some (Vhist o) ->
          let diffed =
            List.filter_map
              (fun (b, n) ->
                let prev =
                  Option.value ~default:0 (List.assoc_opt b o.buckets)
                in
                if n - prev > 0 then Some (b, n - prev) else None)
              h.buckets
          in
          Some (name, vhist_of_buckets diffed (h.sum - o.sum))
      | Vhist h, (None | Some (Vcount _)) ->
          Some (name, vhist_of_buckets h.buckets h.sum))
    now

let to_json ?(indent = 2) snap =
  let pad = String.make indent ' ' in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf pad;
      Buffer.add_string buf (Json.str name);
      Buffer.add_string buf ": ";
      match v with
      | Vcount n -> Buffer.add_string buf (string_of_int n)
      | Vhist h ->
          Buffer.add_string buf
            (Printf.sprintf
               "{ \"count\": %d, \"sum\": %d, \"mean\": %.1f, \"p50\": %d, \
                \"p99\": %d, \"buckets\": {"
               h.count h.sum h.mean h.p50 h.p99);
          List.iteri
            (fun j (b, n) ->
              if j > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf
                (Printf.sprintf "\"%d\": %d" (max 0 (fst (Histogram.bounds b))) n))
            h.buckets;
          Buffer.add_string buf "} }")
    snap;
  Buffer.add_string buf "\n}";
  Buffer.contents buf

let pp ppf snap =
  let width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 8 snap
  in
  List.iter
    (fun (name, v) ->
      match v with
      | Vcount n -> Format.fprintf ppf "%-*s %12d@," width name n
      | Vhist h ->
          Format.fprintf ppf "%-*s %12d samples  mean=%.0f p50<=%d p99<=%d@,"
            width name h.count h.mean h.p50 h.p99;
          List.iter
            (fun (b, n) ->
              let lo, hi = Histogram.bounds b in
              Format.fprintf ppf "%-*s   [%d..%s] %d@," width ""
                (max 0 lo)
                (if hi = max_int then "inf" else string_of_int hi)
                n)
            h.buckets)
    snap
