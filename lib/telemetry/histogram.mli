(** Fixed-shape latency histograms: 64 log2 buckets, so [observe] is a
    significant-bit count and an array bump — no allocation, no
    configuration, and any two histograms merge or diff bucket by
    bucket. *)

type t

val n_buckets : int
(** 64. *)

val create : unit -> t

val bucket_of : int -> int
(** [0] for values <= 0; otherwise the value's significant-bit count
    (1 -> 1, 2..3 -> 2, 4..7 -> 3, ...), clamped to [n_buckets - 1].
    Bucket [b >= 1] covers [2^(b-1) .. 2^b - 1]. *)

val bounds : int -> int * int
(** Inclusive [(lo, hi)] of a bucket; bucket 0 is [(min_int, 0)] and the
    last bucket is open-ended at [max_int]. *)

val observe : t -> int -> unit
val count : t -> int
val sum : t -> int
val buckets : t -> int array
(** A copy of the raw bucket counts. *)

val nonzero : t -> (int * int) list
(** [(bucket index, count)] for the populated buckets, ascending. *)

val quantile : t -> float -> int
(** Upper bound of the bucket holding the q-th sample (q in [0,1]);
    0 when empty. The log2 shape makes this exact to within 2x. *)

val mean : t -> float
(** 0 when empty. *)

val reset : t -> unit
val merge_into : dst:t -> t -> unit
