(* The postcard sink: a flight-recorder ring of full per-packet hop
   reports plus a capped per-flow aggregation table. Everything is
   plain data — the runtime owns one sink per observer and merges
   shard sinks after a parallel batch, so no locking here. *)

type postcard = {
  flow : string;
  in_port : int;
  verdict : string;
  wall_ns : int;
  hops : Journey.hop list;
}

type summary = {
  flow : string;
  mutable packets : int;
  mutable hops : int;
  mutable latency_ns : float;
  mutable max_hops : int;
  mutable recircs : int;
  mutable resubmits : int;
  mutable verdicts : (string * int) list;
}

type t = {
  ring : postcard Ring.t;
  table : (string, summary) Hashtbl.t;
  max_flows : int;
  mutable dropped : int;
}

let default_max_flows = 1024

let create ?(max_flows = default_max_flows) ~ring_capacity () =
  {
    ring = Ring.create (max 1 ring_capacity);
    table = Hashtbl.create 64;
    max_flows = max 1 max_flows;
    dropped = 0;
  }

let bump_verdict s v =
  let rec go = function
    | [] -> [ (v, 1) ]
    | (k, n) :: rest when k = v -> (k, n + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  s.verdicts <- go s.verdicts

(* The depth a walk reached is the last hop's depth counters; hop lists
   are short (pass_limit-bounded), so the List walk is fine here. *)
let depths hops =
  match List.rev hops with
  | [] -> (0, 0)
  | h :: _ -> (h.Journey.recirc_depth, h.Journey.resubmit_depth)

let aggregate s (p : postcard) =
  let nhops = List.length p.hops in
  let lat =
    List.fold_left (fun a (h : Journey.hop) -> a +. h.Journey.latency_ns) 0.0 p.hops
  in
  let recircs, resubmits = depths p.hops in
  s.packets <- s.packets + 1;
  s.hops <- s.hops + nhops;
  s.latency_ns <- s.latency_ns +. lat;
  s.max_hops <- max s.max_hops nhops;
  s.recircs <- s.recircs + recircs;
  s.resubmits <- s.resubmits + resubmits;
  bump_verdict s p.verdict

let push t p =
  Ring.push t.ring p;
  match Hashtbl.find_opt t.table p.flow with
  | Some s -> aggregate s p
  | None ->
      if Hashtbl.length t.table >= t.max_flows then t.dropped <- t.dropped + 1
      else begin
        let s =
          {
            flow = p.flow;
            packets = 0;
            hops = 0;
            latency_ns = 0.0;
            max_hops = 0;
            recircs = 0;
            resubmits = 0;
            verdicts = [];
          }
        in
        Hashtbl.replace t.table p.flow s;
        aggregate s p
      end

let pushed t = Ring.pushed t.ring
let recent t = Ring.to_list t.ring

let summaries t =
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.table [] in
  List.sort
    (fun a b ->
      match compare b.packets a.packets with
      | 0 -> compare a.flow b.flow
      | c -> c)
    all

let flows t = Hashtbl.length t.table
let dropped_flows t = t.dropped

let merge ~into src =
  (* Summaries fold field-wise; ring entries re-enter so "recent
     postcards" spans all shards (ring capacity still bounds it). *)
  Hashtbl.iter
    (fun flow (s : summary) ->
      match Hashtbl.find_opt into.table flow with
      | None when Hashtbl.length into.table >= into.max_flows ->
          into.dropped <- into.dropped + s.packets
      | None ->
          Hashtbl.replace into.table flow
            {
              flow;
              packets = s.packets;
              hops = s.hops;
              latency_ns = s.latency_ns;
              max_hops = s.max_hops;
              recircs = s.recircs;
              resubmits = s.resubmits;
              verdicts = s.verdicts;
            }
      | Some d ->
          d.packets <- d.packets + s.packets;
          d.hops <- d.hops + s.hops;
          d.latency_ns <- d.latency_ns +. s.latency_ns;
          d.max_hops <- max d.max_hops s.max_hops;
          d.recircs <- d.recircs + s.recircs;
          d.resubmits <- d.resubmits + s.resubmits;
          List.iter
            (fun (v, n) ->
              let rec go = function
                | [] -> [ (v, n) ]
                | (k, m) :: rest when k = v -> (k, m + n) :: rest
                | kv :: rest -> kv :: go rest
              in
              d.verdicts <- go d.verdicts)
            s.verdicts)
    src.table;
  into.dropped <- into.dropped + src.dropped;
  List.iter (Ring.push into.ring) (Ring.to_list src.ring)

let clear t =
  Ring.clear t.ring;
  Hashtbl.reset t.table;
  t.dropped <- 0

let summary_to_json s =
  let verdicts =
    String.concat ", "
      (List.map (fun (v, n) -> Printf.sprintf "%s: %d" (Json.str v) n) s.verdicts)
  in
  Printf.sprintf
    "{ \"flow\": %s, \"packets\": %d, \"hops\": %d, \"max_hops\": %d, \
     \"latency_ns\": %.1f, \"recircs\": %d, \"resubmits\": %d, \
     \"verdicts\": {%s} }"
    (Json.str s.flow) s.packets s.hops s.max_hops s.latency_ns s.recircs
    s.resubmits verdicts

let postcard_to_json (p : postcard) =
  let hops =
    String.concat ", "
      (List.map
         (fun (h : Journey.hop) ->
           Printf.sprintf
             "{ \"pipelet\": %s, \"latency_ns\": %.1f, \"tables\": %d, \
              \"recirc_depth\": %d, \"resubmit_depth\": %d }"
             (Json.str h.Journey.pipelet) h.Journey.latency_ns
             (List.length h.Journey.tables)
             h.Journey.recirc_depth h.Journey.resubmit_depth)
         p.hops)
  in
  Printf.sprintf
    "{ \"flow\": %s, \"in_port\": %d, \"verdict\": %s, \"wall_ns\": %d, \
     \"hops\": [%s] }"
    (Json.str p.flow) p.in_port (Json.str p.verdict) p.wall_ns hops

let pp_summaries ppf t =
  let ss = summaries t in
  Format.fprintf ppf "@[<v>%d flows, %d postcards (%d flows dropped)@,"
    (flows t) (pushed t) t.dropped;
  List.iter
    (fun s ->
      let mean_lat =
        if s.packets = 0 then 0.0
        else s.latency_ns /. float_of_int s.packets
      in
      Format.fprintf ppf
        "%-40s pkts=%-6d hops=%-5d max=%d lat/pkt=%.0fns %s@," s.flow s.packets
        s.hops s.max_hops mean_lat
        (String.concat " "
           (List.map (fun (v, n) -> Printf.sprintf "%s:%d" v n) s.verdicts)))
    ss;
  Format.fprintf ppf "@]"
