(** Registry snapshot exporters: Prometheus text exposition, stable
    JSON-lines, and a windowed snapshot ring that turns monotone
    counters into rates.

    Everything here consumes the plain {!Registry.snapshot} data — no
    live registry access, so an export never races the hot path and a
    snapshot taken on one domain can be rendered on another. *)

val mangle : string -> string
(** A registry name as a legal Prometheus metric name: dots (the
    registry's namespace separator) and any other character outside
    [[a-zA-Z0-9_:]] become ['_']; a leading digit gains a ['_']
    prefix. *)

val prometheus : ?namespace:string -> Registry.snapshot -> string
(** The snapshot in Prometheus text exposition format (version 0.0.4):
    counters as [<ns>_<name>_total] with [# TYPE ... counter],
    histograms as cumulative [_bucket{le="..."}] series (the log2
    bucket upper bounds, closing with [le="+Inf"]) plus [_sum] and
    [_count]. [namespace] (default ["dejavu"]) prefixes every metric.
    Ends with a newline, as scrapers require. *)

type metric = {
  metric : string;  (** mangled metric name *)
  labels : (string * string) list;
  value : float;
}

val parse_prometheus : string -> (metric list, string) result
(** Parse text exposition back into samples — the round-trip check for
    {!prometheus} (and the CI smoke step's scrape validator). Accepts
    comments, blank lines and label sets; [Error] pinpoints the first
    malformed line. *)

val json_lines : ?now_ns:int64 -> Registry.snapshot -> string
(** One self-contained JSON object per line (newline-terminated):
    [{"name":..,"type":"counter","value":..}] for counters and
    [{"name":..,"type":"histogram","count":..,"sum":..,"mean":..,
    "p50":..,"p99":..,"buckets":{..}}] for histograms, in snapshot
    (registration) order. [now_ns] stamps every line with a ["ts_ns"]
    field when given — stable keys, one metric per line, so the output
    appends cleanly to a log shipped elsewhere. *)

(** A bounded ring of timestamped snapshots: push one per batch (or
    per scrape) and read counter deltas back as per-second rates over
    the window — how [dejavu top] turns cumulative counters into live
    throughput numbers. *)
module Window : sig
  type t

  val create : capacity:int -> t
  (** Keeps the most recent [capacity] snapshots (clamped to >= 2). *)

  val push : t -> now_ns:int64 -> Registry.snapshot -> unit
  val length : t -> int

  val span_ns : t -> int64
  (** Time between the oldest and newest retained snapshots; 0 with
      fewer than two. *)

  val rates : t -> (string * float) list
  (** Per-second rates between the oldest and newest retained
      snapshots, in the newest snapshot's order: counters rate their
      value; histograms rate their sample [count] (reported under
      [name ^ ".count"]). Empty with fewer than two snapshots or a
      zero span. Names absent from the oldest snapshot count from
      zero. *)
end
