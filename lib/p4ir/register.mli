(** Register arrays — the stateful extern of the RMT architecture.
    Each register is an array of fixed-width cells living in a stage's
    SRAM; actions read/modify/write them at line rate, and the control
    plane can inspect or clear them. *)

type t

val make : name:string -> size:int -> width:int -> t
(** [size] cells of [width] (1..64) bits each, all zero. *)

val name : t -> string
val size : t -> int
val width : t -> int

val read : t -> int -> Bitval.t
(** Out-of-range indices wrap: the index is AND-ed with
    {!val-index_mask}, exactly as the hardware addresses a
    power-of-two-sized SRAM array. *)

val write : t -> int -> Bitval.t -> unit
(** Same wrap rule as {!read} — the two always address the same cell
    for the same index. The value is resized to the cell width. *)

val index_mask : t -> int
(** Registers are sized to powers of two on the chip; indices are
    masked with [size' - 1] where [size'] is [size] rounded up. Both
    access paths and hash outputs are AND-ed with this. *)

val clear : t -> unit
(** Zero every cell and bump the {!epoch} — a control-plane reset that
    invalidates any state memoized against this register. *)

val fold : (int -> Bitval.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the nonzero cells (control-plane inspection). *)

(** {2 Invalidation epoch and access recorders}

    Support for memoization layers (the runtime flow cache): the epoch
    counts control-plane resets, and the recorders — when armed —
    observe every data-plane access with the masked index and the raw
    cell value. Both live in shared state: {!rename}d handles (the
    composed-program views of one register) report through the same
    hooks; {!copy} starts fresh. When no recorder is armed the access
    paths pay a single option match. *)

val epoch : t -> int
(** Incremented by {!clear}. *)

val set_on_read : t -> (int -> int64 -> unit) option -> unit
(** Arm (or disarm, with [None]) the read recorder: called by {!read}
    with the masked index and the raw cell value. *)

val set_on_write : t -> (int -> int64 -> unit) option -> unit
(** Arm the write recorder: called by {!write} with the masked index
    and the stored (width-resized) value. *)

val read_raw : t -> int -> int64
(** The raw cell value at the masked index, without constructing a
    {!Bitval.t} and without firing the read recorder — for validating
    memoized reads against live state. *)

val rename : t -> string -> t
(** Same backing cells under a new name (used by composition). *)

val copy : t -> t
(** A deep copy: same name and width, private cell array initialized to
    the current contents. Used by {!Asic.Chip.replicate} to give each
    domain its own register state. *)

val sram_blocks : t -> int
(** SRAM demand: cells x width over the block size, at least 1. *)

val pp : Format.formatter -> t -> unit
