(** Parse graphs — the directed acyclic graphs the paper's generic-parser
    merging operates on.

    Each vertex extracts one header type at a particular byte offset and
    then selects the next vertex on already-extracted field values; the
    paper identifies vertices by their [(header_type, offset)] tuple, and
    so do we. *)

type next = Accept | Reject | Goto of string

type case = { values : int64 list; next : next }

type select = { on : Fieldref.t list; cases : case list; default : next }

type state = {
  id : string;  (** globally unique vertex id *)
  header : string;  (** the header declaration this vertex extracts *)
  offset : int;  (** byte offset of the header in the packet *)
  select : select option;  (** [None] means accept after extraction *)
}

type t = {
  name : string;
  decls : Hdr.decl list;
  start : next;
  states : state list;
}

val vertex_key : state -> string * int
(** The [(header_type, offset)] identity used for merging. *)

val find_state : t -> string -> state option
val decl_for : t -> string -> Hdr.decl option

val validate : t -> (unit, string) result
(** Checks: every [Goto] target exists, every extracted header has a
    declaration, select fields belong to already-extractable headers,
    each successor's offset equals this vertex's offset + header size,
    and the graph is acyclic. *)

val parse : t -> Bytes.t -> Phv.t -> (int, string) result
(** Run the parser over a frame, filling the PHV. Returns the number of
    bytes consumed (the payload starts there). [Error] on [Reject], a
    truncated packet, or a missing transition. Adds the parser's header
    declarations to the PHV first. *)

type compiled
(** The parse graph with state ids resolved to direct references and
    header sizes precomputed — the per-packet fast path. *)

val compile : t -> compiled

val run_compiled : compiled -> Bytes.t -> Phv.t -> (int, string) result
(** Like {!parse}, but over the compiled graph, and the PHV must already
    hold every header declaration (copy a template PHV; unlike {!parse}
    no declarations are added). Same results and errors as {!parse}. *)

val fix_checksum : Bytes.t -> off:int -> csum_byte:int -> size:int -> unit
(** The deparser's checksum engine: zero the 16-bit checksum at
    [off + csum_byte] and recompute the internet checksum over the
    [size] header bytes at [off], in place. Shared by {!deparse} and the
    precompiled fast deparse path so both emit identical frames. *)

val deparse : order:string list -> Phv.t -> payload:Bytes.t -> Bytes.t
(** Emit the valid headers among [order] (in that order) followed by the
    payload. Headers with an IPv4-style self-checksum
    ({!Hdr.self_checksum_byte}) get their checksum recomputed over the
    emitted bytes — actions rewrite fields without maintaining it. *)

val reachable : t -> string list
(** State ids reachable from [start], in BFS order. *)

val pp : Format.formatter -> t -> unit
