(** Control blocks: the straight-line/branching programs MAU pipelines
    execute, in the style of P4-16 control bodies. *)

type stmt =
  | Apply of string  (** apply a table by name *)
  | Apply_hit of string * block * block
      (** [if (t.apply().hit) then_ else_] *)
  | Apply_switch of string * (string * block) list * block
      (** branch on [action_run]; the last block is the default *)
  | If of Expr.t * block * block
  | Run of Action.prim list  (** inline primitive operations *)
  | Label of string * block
      (** a named region — records NF provenance through composition *)

and block = stmt list

type t = { name : string; body : block }

val make : string -> block -> t

type table_env = string -> Table.t option

type trace_event =
  | T_table of string * string * bool  (** table, action run, hit *)
  | T_gateway of string * bool  (** rendered condition, outcome *)
  | T_enter of string  (** entered a labeled region *)

val exec :
  ?trace:trace_event list ref ->
  ?label_counters:(string -> int ref) ->
  ?regs:Action.reg_env ->
  table_env ->
  t ->
  Phv.t ->
  unit
(** Execute against a PHV by interpreting the statement tree. Raises
    [Invalid_argument] for unknown tables or registers. Kept as the
    reference oracle for {!compile}. [label_counters] resolves a label
    name to its apply counter, bumped each time the labeled region is
    entered — the per-NF telemetry hook. *)

type compiled
(** A control precompiled to closures: table names, action dispatch,
    gateway expressions and trace strings are resolved once; per-packet
    execution touches no statement tree and allocates no trace strings.
    Table entries added after compilation are seen — the closures hold
    live table handles. *)

val compile :
  ?label_counters:(string -> int ref) ->
  ?regs:Action.reg_env ->
  table_env ->
  t ->
  compiled
(** Raises [Invalid_argument] for a table name the environment does not
    know (including in unreached branches — [exec] would only raise on
    first use). [label_counters] is resolved once per [Label] at compile
    time; each entry into the region then costs a single [incr]. *)

val run_compiled : ?trace:trace_event list ref -> compiled -> Phv.t -> unit
(** Same observable behavior as {!exec} with the environments captured
    at compile time: identical PHV effects and identical trace events. *)

val tables_used : t -> string list
(** Every table name applied anywhere in the body, in first-use order. *)

val labels : t -> string list
val map_tables : (string -> string) -> t -> t
(** Rename every table reference (used when composing NFs). *)

val gateway_count : t -> int
(** Number of [If] conditions (each consumes one gateway resource). *)

val validate : table_env -> t -> (unit, string) result
(** Check that every applied table exists and switch branches name real
    actions of their table. *)

val pp : Format.formatter -> t -> unit
