type prim =
  | Assign of Fieldref.t * Expr.t
  | Set_valid of string
  | Set_invalid of string
  | Reg_read of Fieldref.t * string * Expr.t
  | Reg_write of string * Expr.t * Expr.t
  | No_op

type t = { name : string; params : (string * int) list; body : prim list }

let make name ?(params = []) body = { name; params; body }
let no_op = make "NoAction" []

type reg_env = string -> Register.t option

let no_regs _ = None

let find_reg regs name =
  match regs name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Action.run: unknown register %s" name)

let reg_index reg env idx_expr =
  Bitval.to_int (Expr.eval env idx_expr) land Register.index_mask reg

let bind_args t args =
  if List.length args <> List.length t.params then
    invalid_arg
      (Printf.sprintf "Action.run %s: expected %d args, got %d" t.name
         (List.length t.params) (List.length args));
  List.map2
    (fun (name, width) v -> (name, Bitval.resize v width))
    t.params args

let run_bound ?(regs = no_regs) t ~params phv =
  let env = { Expr.phv; params } in
  List.iter
    (fun prim ->
      match prim with
      | Assign (r, e) -> Phv.set phv r (Expr.eval env e)
      | Set_valid h -> Phv.set_valid phv h
      | Set_invalid h -> Phv.set_invalid phv h
      | Reg_read (dst, rname, idx) ->
          let reg = find_reg regs rname in
          Phv.set phv dst (Register.read reg (reg_index reg env idx))
      | Reg_write (rname, idx, value) ->
          let reg = find_reg regs rname in
          Register.write reg (reg_index reg env idx) (Expr.eval env value)
      | No_op -> ())
    t.body

let run ?regs t ~args phv = run_bound ?regs t ~params:(bind_args t args) phv

(* Compiled form: the prim list resolved once to an array of closures
   with cached-slot field accessors and precompiled expressions.
   Registers still resolve per call — the register environment arrives
   with the packet, not at compile time. *)
type compiled = reg_env -> (string * Bitval.t) list -> Phv.t -> unit

let compile t : compiled =
  let prims =
    Array.of_list
      (List.map
         (fun prim ->
           match prim with
           | Assign (r, e) ->
               let set = Phv.fast_set r in
               let f = Expr.compile_env e in
               fun _regs env -> set env.Expr.phv (f env)
           | Set_valid h -> fun _regs env -> Phv.set_valid env.Expr.phv h
           | Set_invalid h -> fun _regs env -> Phv.set_invalid env.Expr.phv h
           | Reg_read (dst, rname, idx) ->
               let set = Phv.fast_set dst in
               let fidx = Expr.compile_env idx in
               fun regs env ->
                 let reg = find_reg regs rname in
                 set env.Expr.phv
                   (Register.read reg
                      (Bitval.to_int (fidx env) land Register.index_mask reg))
           | Reg_write (rname, idx, value) ->
               let fidx = Expr.compile_env idx in
               let fv = Expr.compile_env value in
               fun regs env ->
                 let reg = find_reg regs rname in
                 Register.write reg
                   (Bitval.to_int (fidx env) land Register.index_mask reg)
                   (fv env)
           | No_op -> fun _regs _env -> ())
         t.body)
  in
  fun regs params phv ->
    let env = { Expr.phv; params } in
    Array.iter (fun f -> f regs env) prims

let reg_field name = Fieldref.v "$reg" name

let reads t =
  List.fold_left
    (fun acc prim ->
      match prim with
      | Assign (_, e) -> Fieldref.Set.union acc (Expr.reads e)
      | Reg_read (_, rname, idx) ->
          Fieldref.Set.add (reg_field rname)
            (Fieldref.Set.union acc (Expr.reads idx))
      | Reg_write (rname, idx, value) ->
          Fieldref.Set.add (reg_field rname)
            (Fieldref.Set.union acc
               (Fieldref.Set.union (Expr.reads idx) (Expr.reads value)))
      | Set_valid _ | Set_invalid _ | No_op -> acc)
    Fieldref.Set.empty t.body

let writes t =
  List.fold_left
    (fun acc prim ->
      match prim with
      | Assign (r, _) -> Fieldref.Set.add r acc
      | Set_valid h | Set_invalid h ->
          Fieldref.Set.add (Fieldref.v h "$valid") acc
      | Reg_read (dst, rname, _) ->
          Fieldref.Set.add dst (Fieldref.Set.add (reg_field rname) acc)
      | Reg_write (rname, _, _) -> Fieldref.Set.add (reg_field rname) acc
      | No_op -> acc)
    Fieldref.Set.empty t.body

let registers_used t =
  List.sort_uniq String.compare
    (List.filter_map
       (function
         | Reg_read (_, r, _) | Reg_write (r, _, _) -> Some r
         | Assign _ | Set_valid _ | Set_invalid _ | No_op -> None)
       t.body)

let pp_prim ppf = function
  | Assign (r, e) -> Format.fprintf ppf "%a = %a;" Fieldref.pp r Expr.pp e
  | Set_valid h -> Format.fprintf ppf "%s.setValid();" h
  | Set_invalid h -> Format.fprintf ppf "%s.setInvalid();" h
  | Reg_read (dst, r, idx) ->
      Format.fprintf ppf "%s.read(%a, %a);" r Fieldref.pp dst Expr.pp idx
  | Reg_write (r, idx, v) ->
      Format.fprintf ppf "%s.write(%a, %a);" r Expr.pp idx Expr.pp v
  | No_op -> Format.fprintf ppf "/* no-op */"

let pp ppf t =
  Format.fprintf ppf "@[<v 2>action %s(%s) {@," t.name
    (String.concat ", "
       (List.map (fun (n, w) -> Printf.sprintf "bit<%d> %s" w n) t.params));
  List.iter (fun p -> Format.fprintf ppf "%a@," pp_prim p) t.body;
  Format.fprintf ppf "}@]"
