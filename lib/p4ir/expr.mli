(** Expressions over PHV fields — the right-hand sides of assignments,
    gateway conditions, and hash inputs. *)

type binop =
  | Add | Sub | Mul
  | BAnd | BOr | BXor
  | Shl | Shr
  | Eq | Neq | Lt | Le | Gt | Ge   (** unsigned; result is [bit<1>] *)
  | LAnd | LOr                     (** logical; nonzero = true *)

type unop = BNot | LNot

type hash_alg = Crc32 | Crc16 | Identity

type t =
  | Const of Bitval.t
  | Field of Fieldref.t
  | Param of string            (** an action-data parameter *)
  | Bin of binop * t * t
  | Un of unop * t
  | Hash of hash_alg * int * t list  (** algorithm, output width, inputs *)
  | Valid of string            (** header validity bit *)

val const : width:int -> int -> t
val field : string -> string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t

type env = { phv : Phv.t; params : (string * Bitval.t) list }

val eval : env -> t -> Bitval.t
(** Binary operands are resized to the left operand's width; comparison
    and logical results are [bit<1>]. Raises [Not_found] on unknown
    fields and [Invalid_argument] on unbound parameters. *)

val eval_bool : env -> t -> bool

val compile_env : t -> env -> Bitval.t
(** Resolve the tree walk once — field references become cached-slot
    accessors — returning a closure equivalent to [eval]. *)

val compile : t -> Phv.t -> Bitval.t
(** [compile_env] with no bound parameters — used for gateway
    conditions, which never reference action parameters. *)

val compile_bool : t -> Phv.t -> bool
val reads : t -> Fieldref.Set.t
(** Every field the expression reads (validity tests included, as a
    pseudo-field ["<hdr>.$valid"]). *)

val pp : Format.formatter -> t -> unit
