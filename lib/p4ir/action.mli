(** Actions: named, parameterized sequences of primitive operations. *)

type prim =
  | Assign of Fieldref.t * Expr.t
  | Set_valid of string
  | Set_invalid of string
  | Reg_read of Fieldref.t * string * Expr.t
      (** [dst = reg[index]]; the index is masked to the register size *)
  | Reg_write of string * Expr.t * Expr.t  (** [reg[index] = value] *)
  | No_op

type t = {
  name : string;
  params : (string * int) list;  (** action-data parameters: name, width *)
  body : prim list;
}

val make : string -> ?params:(string * int) list -> prim list -> t
val no_op : t
(** The conventional ["NoAction"]. *)

type reg_env = string -> Register.t option
(** Register lookup supplied by the enclosing program. *)

val no_regs : reg_env

val run : ?regs:reg_env -> t -> args:Bitval.t list -> Phv.t -> unit
(** Binds [args] to [params] positionally (widths enforced) and executes
    the body. Raises [Invalid_argument] on arity mismatch or on a
    register primitive whose register [regs] does not know. *)

val bind_args : t -> Bitval.t list -> (string * Bitval.t) list
(** The binding step of {!run} alone: positional zip with widths
    enforced. Raises [Invalid_argument] on arity mismatch. Table entries
    bind their action data once at insert time and reuse the binding on
    every packet. *)

val run_bound : ?regs:reg_env -> t -> params:(string * Bitval.t) list -> Phv.t -> unit
(** Execute the body against pre-bound parameters (from {!bind_args}),
    skipping the per-call arity check and resize. *)

type compiled = reg_env -> (string * Bitval.t) list -> Phv.t -> unit
(** A precompiled body: primitives resolved to closures with cached-slot
    field accessors. Registers are still resolved per call (they arrive
    with the packet), with the same errors as {!run_bound}. *)

val compile : t -> compiled

val registers_used : t -> string list

val reads : t -> Fieldref.Set.t
(** Fields read by the body's expressions. Register accesses read the
    pseudo-field ["$reg.<name>"]. *)

val writes : t -> Fieldref.Set.t
(** Fields written ([Set_valid]/[Set_invalid] count as writing
    ["<hdr>.$valid"]; any register access also writes ["$reg.<name>"],
    conservatively serializing tables that share a register — on the
    hardware they would have to share its stage). *)

val pp : Format.formatter -> t -> unit
val pp_prim : Format.formatter -> prim -> unit
