type stmt =
  | Apply of string
  | Apply_hit of string * block * block
  | Apply_switch of string * (string * block) list * block
  | If of Expr.t * block * block
  | Run of Action.prim list
  | Label of string * block

and block = stmt list

type t = { name : string; body : block }

let make name body = { name; body }

type table_env = string -> Table.t option

type trace_event =
  | T_table of string * string * bool
  | T_gateway of string * bool
  | T_enter of string

let find_table env name =
  match env name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Control.exec: unknown table %s" name)

let exec ?trace ?label_counters ?(regs = Action.no_regs) env t phv =
  let record ev = match trace with Some r -> r := ev :: !r | None -> () in
  let apply name =
    let table = find_table env name in
    let action_run, hit = Table.apply_reference ~regs table phv in
    record (T_table (name, action_run, hit));
    (action_run, hit)
  in
  let rec run_block block = List.iter run_stmt block
  and run_stmt = function
    | Apply name -> ignore (apply name)
    | Apply_hit (name, then_, else_) ->
        let _, hit = apply name in
        run_block (if hit then then_ else else_)
    | Apply_switch (name, branches, default) -> (
        let action_run, _ = apply name in
        match List.assoc_opt action_run branches with
        | Some block -> run_block block
        | None -> run_block default)
    | If (cond, then_, else_) ->
        let v = Expr.eval_bool { Expr.phv; params = [] } cond in
        (* Render the condition only when someone is collecting the
           trace — the asprintf is pure hot-path overhead otherwise. *)
        (match trace with
        | Some r -> r := T_gateway (Format.asprintf "%a" Expr.pp cond, v) :: !r
        | None -> ());
        run_block (if v then then_ else else_)
    | Run prims ->
        Action.run ~regs (Action.make "$inline" prims) ~args:[] phv
    | Label (name, block) ->
        (match label_counters with
        | Some f -> incr (f name)
        | None -> ());
        record (T_enter name);
        run_block block
  in
  run_block t.body

(* --- Precompiled controls: resolve table names, action dispatch and
   gateway expressions once, execute closures per packet. The structure
   (and trace event order) mirrors [exec] statement for statement; the
   QCheck equivalence property in test_p4ir pins that. --- *)

type compiled = (trace_event list ref option -> Phv.t -> unit) array

let compile ?label_counters ?(regs = Action.no_regs) env t =
  let record trace ev =
    match trace with Some r -> r := ev :: !r | None -> ()
  in
  let rec compile_block block : compiled =
    Array.of_list (List.map compile_stmt block)
  and run_block (c : compiled) trace phv =
    Array.iter (fun f -> f trace phv) c
  and compile_stmt = function
    | Apply name ->
        let table = find_table env name in
        fun trace phv ->
          let action_run, hit = Table.apply ~regs table phv in
          record trace (T_table (name, action_run, hit))
    | Apply_hit (name, then_, else_) ->
        let table = find_table env name in
        let cthen = compile_block then_ in
        let celse = compile_block else_ in
        fun trace phv ->
          let action_run, hit = Table.apply ~regs table phv in
          record trace (T_table (name, action_run, hit));
          run_block (if hit then cthen else celse) trace phv
    | Apply_switch (name, branches, default) ->
        let table = find_table env name in
        let dispatch = Hashtbl.create (List.length branches) in
        List.iter
          (fun (act, blk) ->
            (* first branch wins, like [List.assoc_opt] in [exec] *)
            if not (Hashtbl.mem dispatch act) then
              Hashtbl.add dispatch act (compile_block blk))
          branches;
        let cdefault = compile_block default in
        fun trace phv ->
          let action_run, hit = Table.apply ~regs table phv in
          record trace (T_table (name, action_run, hit));
          let blk =
            match Hashtbl.find_opt dispatch action_run with
            | Some b -> b
            | None -> cdefault
          in
          run_block blk trace phv
    | If (cond, then_, else_) ->
        let test = Expr.compile_bool cond in
        let rendered = Format.asprintf "%a" Expr.pp cond in
        let cthen = compile_block then_ in
        let celse = compile_block else_ in
        fun trace phv ->
          let v = test phv in
          record trace (T_gateway (rendered, v));
          run_block (if v then cthen else celse) trace phv
    | Run prims ->
        let crun = Action.compile (Action.make "$inline" prims) in
        fun _ phv -> crun regs [] phv
    | Label (name, blk) -> (
        let cblk = compile_block blk in
        (* The NF counter is resolved at compile time, so the per-packet
           cost of telemetry here is one [incr] — and recompiling
           without [label_counters] removes even that. *)
        match label_counters with
        | None ->
            fun trace phv ->
              record trace (T_enter name);
              run_block cblk trace phv
        | Some f ->
            let c = f name in
            fun trace phv ->
              incr c;
              record trace (T_enter name);
              run_block cblk trace phv)
  in
  compile_block t.body

let run_compiled ?trace (c : compiled) phv =
  Array.iter (fun f -> f trace phv) c

let tables_used t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end
  in
  let rec walk_block block = List.iter walk block
  and walk = function
    | Apply name -> add name
    | Apply_hit (name, a, b) ->
        add name;
        walk_block a;
        walk_block b
    | Apply_switch (name, branches, default) ->
        add name;
        List.iter (fun (_, blk) -> walk_block blk) branches;
        walk_block default
    | If (_, a, b) ->
        walk_block a;
        walk_block b
    | Run _ -> ()
    | Label (_, blk) -> walk_block blk
  in
  walk_block t.body;
  List.rev !out

let labels t =
  let out = ref [] in
  let rec walk_block block = List.iter walk block
  and walk = function
    | Label (name, blk) ->
        out := name :: !out;
        walk_block blk
    | Apply_hit (_, a, b) | If (_, a, b) ->
        walk_block a;
        walk_block b
    | Apply_switch (_, branches, default) ->
        List.iter (fun (_, blk) -> walk_block blk) branches;
        walk_block default
    | Apply _ | Run _ -> ()
  in
  walk_block t.body;
  List.rev !out

let map_tables f t =
  let rec map_block block = List.map map_stmt block
  and map_stmt = function
    | Apply name -> Apply (f name)
    | Apply_hit (name, a, b) -> Apply_hit (f name, map_block a, map_block b)
    | Apply_switch (name, branches, default) ->
        Apply_switch
          ( f name,
            List.map (fun (act, blk) -> (act, map_block blk)) branches,
            map_block default )
    | If (cond, a, b) -> If (cond, map_block a, map_block b)
    | Run prims -> Run prims
    | Label (name, blk) -> Label (name, map_block blk)
  in
  { t with body = map_block t.body }

let gateway_count t =
  let rec count_block block = List.fold_left (fun acc s -> acc + count s) 0 block
  and count = function
    | If (_, a, b) -> 1 + count_block a + count_block b
    | Apply_hit (_, a, b) -> count_block a + count_block b
    | Apply_switch (_, branches, default) ->
        List.fold_left (fun acc (_, blk) -> acc + count_block blk) 0 branches
        + count_block default
    | Apply _ | Run _ -> 0
    | Label (_, blk) -> count_block blk
  in
  count_block t.body

let validate env t =
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  let check_table name k =
    match env name with
    | None -> fail (Printf.sprintf "control %s: unknown table %s" t.name name)
    | Some table -> k table
  in
  let rec walk_block block = List.iter walk block
  and walk = function
    | Apply name -> check_table name (fun _ -> ())
    | Apply_hit (name, a, b) ->
        check_table name (fun _ -> ());
        walk_block a;
        walk_block b
    | Apply_switch (name, branches, default) ->
        check_table name (fun table ->
            List.iter
              (fun (act, _) ->
                if Table.find_action table act = None then
                  fail
                    (Printf.sprintf "control %s: table %s has no action %s"
                       t.name name act))
              branches);
        List.iter (fun (_, blk) -> walk_block blk) branches;
        walk_block default
    | If (_, a, b) ->
        walk_block a;
        walk_block b
    | Run _ -> ()
    | Label (_, blk) -> walk_block blk
  in
  walk_block t.body;
  match !problem with None -> Ok () | Some msg -> Error msg

let pp ppf t =
  let rec pp_block ppf block =
    List.iter (fun s -> Format.fprintf ppf "%a@," pp_stmt s) block
  and pp_stmt ppf = function
    | Apply name -> Format.fprintf ppf "%s.apply();" name
    | Apply_hit (name, a, b) ->
        Format.fprintf ppf "@[<v 2>if (%s.apply().hit) {@,%a}@]" name pp_block a;
        if b <> [] then Format.fprintf ppf "@[<v 2> else {@,%a}@]" pp_block b
    | Apply_switch (name, branches, default) ->
        Format.fprintf ppf "@[<v 2>switch (%s.apply().action_run) {@," name;
        List.iter
          (fun (act, blk) ->
            Format.fprintf ppf "@[<v 2>%s: {@,%a}@]@," act pp_block blk)
          branches;
        if default <> [] then
          Format.fprintf ppf "@[<v 2>default: {@,%a}@]@," pp_block default;
        Format.fprintf ppf "}@]"
    | If (cond, a, b) ->
        Format.fprintf ppf "@[<v 2>if (%a) {@,%a}@]" Expr.pp cond pp_block a;
        if b <> [] then Format.fprintf ppf "@[<v 2> else {@,%a}@]" pp_block b
    | Run prims ->
        List.iter (fun prim -> Format.fprintf ppf "%a@," Action.pp_prim prim) prims
    | Label (name, blk) ->
        Format.fprintf ppf "@[<v 2>/* %s */ {@,%a}@]" name pp_block blk
  in
  Format.fprintf ppf "@[<v 2>control %s {@,%a}@]" t.name pp_block t.body
