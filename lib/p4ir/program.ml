type t = {
  name : string;
  decls : Hdr.decl list;
  parser : Parser_graph.t;
  tables : Table.t list;
  registers : Register.t list;
  control : Control.t;
  deparse_order : string list;
}

let make ?(registers = []) ~name ~decls ~parser ~tables ~control ~deparse_order () =
  let names = List.map Table.name tables in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg (Printf.sprintf "Program.make %s: duplicate table names" name);
  let rnames = List.map Register.name registers in
  if List.length (List.sort_uniq String.compare rnames) <> List.length rnames
  then
    invalid_arg (Printf.sprintf "Program.make %s: duplicate register names" name);
  { name; decls; parser; tables; registers; control; deparse_order }

(* Tables and registers are the only mutable state a program owns; the
   parser, control tree and declarations are shared structurally. A
   reload of the copy recompiles controls against the copied state,
   because compilation resolves tables and registers by name through
   [table_env]/[reg_env]. *)
let copy t =
  {
    t with
    tables = List.map Table.copy t.tables;
    registers = List.map Register.copy t.registers;
  }

let find_table t name =
  List.find_opt (fun tbl -> String.equal (Table.name tbl) name) t.tables

let find_register t name =
  List.find_opt (fun r -> String.equal (Register.name r) name) t.registers

let table_env t name = find_table t name
let reg_env t name = find_register t name

let registers_referenced t =
  let of_actions actions =
    List.concat_map Action.registers_used actions
  in
  let from_tables = List.concat_map (fun tbl -> of_actions (Table.actions tbl)) t.tables in
  let rec from_block block = List.concat_map from_stmt block
  and from_stmt = function
    | Control.Run prims -> of_actions [ Action.make "$x" prims ]
    | Control.Apply _ -> []
    | Control.Apply_hit (_, a, b) | Control.If (_, a, b) -> from_block a @ from_block b
    | Control.Apply_switch (_, branches, default) ->
        List.concat_map (fun (_, blk) -> from_block blk) branches
        @ from_block default
    | Control.Label (_, blk) -> from_block blk
  in
  List.sort_uniq String.compare (from_tables @ from_block t.control.Control.body)

let validate t =
  let ( let* ) = Result.bind in
  let* () = Parser_graph.validate t.parser in
  let* () = Control.validate (table_env t) t.control in
  let* () =
    List.fold_left
      (fun acc rname ->
        let* () = acc in
        if find_register t rname = None then
          Error
            (Printf.sprintf "program %s: unknown register %s" t.name rname)
        else Ok ())
      (Ok ()) (registers_referenced t)
  in
  let declared name =
    List.exists (fun (d : Hdr.decl) -> String.equal d.Hdr.name name) t.decls
  in
  List.fold_left
    (fun acc name ->
      let* () = acc in
      if declared name then Ok ()
      else
        Error
          (Printf.sprintf "program %s: deparse order names unknown header %s"
             t.name name))
    (Ok ()) t.deparse_order

let exec_control ?trace ?label_counters t phv =
  Control.exec ?trace ?label_counters ~regs:(reg_env t) (table_env t) t.control
    phv

let compile_control ?label_counters t =
  Control.compile ?label_counters ~regs:(reg_env t) (table_env t) t.control

let resources t =
  let base = Resources.of_control (table_env t) t.control in
  let reg_srams =
    List.fold_left (fun acc r -> acc + Register.sram_blocks r) 0 t.registers
  in
  { base with Resources.srams = base.Resources.srams + reg_srams }

let pp ppf t =
  Format.fprintf ppf "@[<v>// program %s@,%a@,@," t.name Parser_graph.pp t.parser;
  List.iter (fun r -> Format.fprintf ppf "%a@," Register.pp r) t.registers;
  List.iter (fun tbl -> Format.fprintf ppf "%a@,@," Table.pp tbl) t.tables;
  Format.fprintf ppf "%a@]" Control.pp t.control

let empty ~name ~decls ~parser =
  {
    name;
    decls;
    parser;
    tables = [];
    registers = [];
    control = Control.make (name ^ "_control") [];
    deparse_order = List.map (fun (d : Hdr.decl) -> d.Hdr.name) decls;
  }
