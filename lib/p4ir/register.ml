type t = { name : string; width : int; cells : int64 array }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let make ~name ~size ~width =
  if size < 1 then invalid_arg "Register.make: size must be positive";
  if width < 1 || width > 64 then
    invalid_arg "Register.make: width not in 1..64";
  { name; width; cells = Array.make (next_pow2 size 1) 0L }

let name t = t.name
let size t = Array.length t.cells
let width t = t.width

let index_mask t = Array.length t.cells - 1

(* Out-of-range indices wrap through [index_mask], matching the
   hardware (cell counts are powers of two, addresses are masked).
   Read and write must agree on this: an asymmetric pair (saturating
   read, dropped write) makes a wrapped write invisible to its own
   read-back. *)
let read t i = Bitval.make ~width:t.width t.cells.(i land index_mask t)

let write t i v =
  t.cells.(i land index_mask t) <- Bitval.to_int64 (Bitval.resize v t.width)
let clear t = Array.fill t.cells 0 (Array.length t.cells) 0L

let fold f t init =
  let acc = ref init in
  Array.iteri
    (fun i c -> if c <> 0L then acc := f i (Bitval.make ~width:t.width c) !acc)
    t.cells;
  !acc

let rename t name = { t with name }
let copy t = { t with cells = Array.copy t.cells }

(* Matches Resources.sram_block_bits; kept literal to avoid a module
   cycle (Resources models tables, which use actions, which use
   registers). *)
let block_bits = 128 * 1024

let sram_blocks t = max 1 (((size t * t.width) + block_bits - 1) / block_bits)

let pp ppf t =
  Format.fprintf ppf "register<bit<%d>>[%d] %s" t.width (size t) t.name
