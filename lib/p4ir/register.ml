(* Shared mutable side-state: the epoch counts control-plane resets (a
   flow cache invalidates memoized verdicts against it) and the
   recorders, when armed, observe every data-plane cell access. Lives
   behind its own record so {!rename}d handles — which share the cell
   array — share it too, while {!copy} gets a fresh one. *)
type state = {
  mutable epoch : int;
  mutable on_read : (int -> int64 -> unit) option;
  mutable on_write : (int -> int64 -> unit) option;
}

type t = { name : string; width : int; cells : int64 array; state : state }

let fresh_state () = { epoch = 0; on_read = None; on_write = None }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let make ~name ~size ~width =
  if size < 1 then invalid_arg "Register.make: size must be positive";
  if width < 1 || width > 64 then
    invalid_arg "Register.make: width not in 1..64";
  {
    name;
    width;
    cells = Array.make (next_pow2 size 1) 0L;
    state = fresh_state ();
  }

let name t = t.name
let size t = Array.length t.cells
let width t = t.width

let index_mask t = Array.length t.cells - 1

(* Out-of-range indices wrap through [index_mask], matching the
   hardware (cell counts are powers of two, addresses are masked).
   Read and write must agree on this: an asymmetric pair (saturating
   read, dropped write) makes a wrapped write invisible to its own
   read-back. *)
let read t i =
  let i = i land index_mask t in
  let v = t.cells.(i) in
  (match t.state.on_read with Some f -> f i v | None -> ());
  Bitval.make ~width:t.width v

let write t i v =
  let i = i land index_mask t in
  let v = Bitval.to_int64 (Bitval.resize v t.width) in
  t.cells.(i) <- v;
  match t.state.on_write with Some f -> f i v | None -> ()

let read_raw t i = t.cells.(i land index_mask t)

let clear t =
  Array.fill t.cells 0 (Array.length t.cells) 0L;
  t.state.epoch <- t.state.epoch + 1

let epoch t = t.state.epoch
let set_on_read t f = t.state.on_read <- f
let set_on_write t f = t.state.on_write <- f

let fold f t init =
  let acc = ref init in
  Array.iteri
    (fun i c -> if c <> 0L then acc := f i (Bitval.make ~width:t.width c) !acc)
    t.cells;
  !acc

let rename t name = { t with name }

(* A copy is a fresh register: private cells, epoch restarted, no
   recorders — a {!Asic.Chip.replicate} replica must not fire the
   original's hooks or share its invalidation history. *)
let copy t = { t with cells = Array.copy t.cells; state = fresh_state () }

(* Matches Resources.sram_block_bits; kept literal to avoid a module
   cycle (Resources models tables, which use actions, which use
   registers). *)
let block_bits = 128 * 1024

let sram_blocks t = max 1 (((size t * t.width) + block_bits - 1) / block_bits)

let pp ppf t =
  Format.fprintf ppf "register<bit<%d>>[%d] %s" t.width (size t) t.name
