(** The packet header vector: every header instance (and metadata header)
    a packet carries through a pipeline, addressed by {!Fieldref.t}. *)

type t

val create : Hdr.decl list -> t
(** Fresh PHV with an invalid instance per declaration. Raises on
    duplicate declaration names. *)

val add_decl : t -> Hdr.decl -> unit
(** Add another (invalid) instance; no-op when the same declaration is
    already present, raises when a different one with the same name is. *)

val decls : t -> Hdr.decl list
val inst : t -> string -> Hdr.inst
(** Raises [Not_found]. *)

val has : t -> string -> bool
val is_valid : t -> string -> bool
(** [false] when the header is absent entirely. *)

val set_valid : t -> string -> unit
val set_invalid : t -> string -> unit
val get : t -> Fieldref.t -> Bitval.t
(** Raises [Not_found] for unknown header or field. *)

val get_int : t -> Fieldref.t -> int
val set : t -> Fieldref.t -> Bitval.t -> unit
val set_int : t -> Fieldref.t -> int -> unit
(** Resizes to the declared width. *)

val copy : t -> t
(** Copies share the internal name -> slot layout with the source; both
    sides clone it on a later [add_decl] (copy-on-write). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Compiled accessors}

    Each returns a closure that caches the slot resolution per PHV
    layout, so repeated calls on PHVs copied from the same template cost
    an identity check and two array reads — no string hashing. Raise
    [Not_found] like their uncached counterparts. *)

val fast_get : Fieldref.t -> t -> Bitval.t
val fast_set : Fieldref.t -> t -> Bitval.t -> unit
val fast_get_int : Fieldref.t -> t -> int
val fast_set_int : Fieldref.t -> t -> int -> unit

val fast_valid : string -> t -> bool
(** Like {!is_valid} ([false] when the header is absent). *)

val fast_inst : string -> t -> Hdr.inst
(** Like {!inst} (raises [Not_found] when the header is absent). *)
