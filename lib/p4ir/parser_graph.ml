type next = Accept | Reject | Goto of string
type case = { values : int64 list; next : next }
type select = { on : Fieldref.t list; cases : case list; default : next }

type state = {
  id : string;
  header : string;
  offset : int;
  select : select option;
}

type t = {
  name : string;
  decls : Hdr.decl list;
  start : next;
  states : state list;
}

let vertex_key s = (s.header, s.offset)

let find_state t id =
  List.find_opt (fun s -> String.equal s.id id) t.states

let decl_for t header =
  List.find_opt (fun (d : Hdr.decl) -> String.equal d.Hdr.name header) t.decls

let successors s =
  match s.select with
  | None -> [ Accept ]
  | Some sel -> sel.default :: List.map (fun c -> c.next) sel.cases

let validate t =
  let ( let* ) = Result.bind in
  let check_target from = function
    | Accept | Reject -> Ok ()
    | Goto id ->
        if find_state t id = None then
          Error (Printf.sprintf "parser %s: %s -> unknown state %s" t.name from id)
        else Ok ()
  in
  let* () = check_target "start" t.start in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        let* () =
          match decl_for t s.header with
          | None ->
              Error
                (Printf.sprintf "parser %s: state %s extracts undeclared %s"
                   t.name s.id s.header)
          | Some _ -> Ok ()
        in
        let size = Hdr.byte_size (Option.get (decl_for t s.header)) in
        List.fold_left
          (fun acc nxt ->
            let* () = acc in
            let* () = check_target s.id nxt in
            match nxt with
            | Goto id ->
                let succ = Option.get (find_state t id) in
                if succ.offset <> s.offset + size then
                  Error
                    (Printf.sprintf
                       "parser %s: %s(@%d,+%d) -> %s expected offset %d, has %d"
                       t.name s.id s.offset size id (s.offset + size) succ.offset)
                else Ok ()
            | Accept | Reject -> Ok ())
          (Ok ()) (successors s))
      (Ok ()) t.states
  in
  (* Acyclicity: offsets strictly increase along every Goto edge (checked
     above), so cycles are impossible; still verify ids are unique. *)
  let ids = List.map (fun s -> s.id) t.states in
  let sorted = List.sort_uniq String.compare ids in
  if List.length sorted <> List.length ids then
    Error (Printf.sprintf "parser %s: duplicate state ids" t.name)
  else Ok ()

let parse t bytes phv =
  List.iter (fun d -> Phv.add_decl phv d) t.decls;
  let rec step nxt off =
    match nxt with
    | Reject -> Error (Printf.sprintf "parser %s: packet rejected" t.name)
    | Accept -> Ok off
    | Goto id -> (
        match find_state t id with
        | None -> Error (Printf.sprintf "parser %s: missing state %s" t.name id)
        | Some s -> (
            let decl = Option.get (decl_for t s.header) in
            let size = Hdr.byte_size decl in
            if off + size > Bytes.length bytes then
              Error
                (Printf.sprintf "parser %s: truncated %s at offset %d" t.name
                   s.header off)
            else begin
              Hdr.extract (Phv.inst phv s.header) bytes ~bit_off:(8 * off);
              let off = off + size in
              match s.select with
              | None -> Ok off
              | Some sel -> (
                  let values =
                    List.map (fun r -> Bitval.to_int64 (Phv.get phv r)) sel.on
                  in
                  let case =
                    List.find_opt
                      (fun c ->
                        List.length c.values = List.length values
                        && List.for_all2 Int64.equal c.values values)
                      sel.cases
                  in
                  match case with
                  | Some c -> step c.next off
                  | None -> step sel.default off)
            end))
  in
  step t.start 0

(* --- Compiled form: state ids resolved to direct references, header
   sizes and select fields precomputed, so the per-packet walk does no
   list searching. The interpretive {!parse} above stays as the
   reference-mode parser. --- *)

type cnext =
  | C_accept
  | C_reject
  | C_error of string
  | C_state of cstate

and cstate = {
  c_header : string;
  c_inst : Phv.t -> Hdr.inst;  (* cached-slot accessor for [c_header] *)
  c_size : int;
  c_select : cselect option;
}

and cselect = {
  c_on : (Phv.t -> Bitval.t) array;
  c_cases : (int64 array * cnext) array;
  c_default : cnext;
}

type compiled = { c_name : string; c_start : cnext }

let compile t =
  let memo = Hashtbl.create 16 in
  let rec next = function
    | Accept -> C_accept
    | Reject -> C_reject
    | Goto id -> (
        match find_state t id with
        | None ->
            C_error (Printf.sprintf "parser %s: missing state %s" t.name id)
        | Some s -> C_state (state s))
  and state s =
    match Hashtbl.find_opt memo s.id with
    | Some c -> c
    | None ->
        let decl = Option.get (decl_for t s.header) in
        let c =
          {
            c_header = s.header;
            c_inst = Phv.fast_inst s.header;
            c_size = Hdr.byte_size decl;
            c_select =
              Option.map
                (fun sel ->
                  {
                    c_on = Array.of_list (List.map Phv.fast_get sel.on);
                    c_cases =
                      Array.of_list
                        (List.map
                           (fun c -> (Array.of_list c.values, next c.next))
                           sel.cases);
                    c_default = next sel.default;
                  })
                s.select;
          }
        in
        Hashtbl.add memo s.id c;
        c
  in
  { c_name = t.name; c_start = next t.start }

let run_compiled c bytes phv =
  let blen = Bytes.length bytes in
  let rec step n off =
    match n with
    | C_accept -> Ok off
    | C_reject -> Error (Printf.sprintf "parser %s: packet rejected" c.c_name)
    | C_error e -> Error e
    | C_state s ->
        if off + s.c_size > blen then
          Error
            (Printf.sprintf "parser %s: truncated %s at offset %d" c.c_name
               s.c_header off)
        else begin
          Hdr.extract (s.c_inst phv) bytes ~bit_off:(8 * off);
          let off = off + s.c_size in
          match s.c_select with
          | None -> Ok off
          | Some sel ->
              let n_on = Array.length sel.c_on in
              let vals =
                Array.init n_on (fun i -> Bitval.to_int64 (sel.c_on.(i) phv))
              in
              let eq cv =
                Array.length cv = n_on
                &&
                let rec go i =
                  i >= n_on || (Int64.equal cv.(i) vals.(i) && go (i + 1))
                in
                go 0
              in
              let ncases = Array.length sel.c_cases in
              let rec find i =
                if i >= ncases then step sel.c_default off
                else
                  let cv, nxt = sel.c_cases.(i) in
                  if eq cv then step nxt off else find (i + 1)
              in
              find 0
        end
  in
  step c.c_start 0

(* The deparser's checksum engine: recompute an IPv4-style header
   checksum in place over the just-emitted bytes. The PHV's checksum
   field is stale whenever an action rewrote any other field (NAT, LB,
   TTL decrement) — hardware deparsers fix this with a checksum unit,
   and so do we. Recomputing over an unmodified valid header reproduces
   its checksum bit-for-bit. *)
let fix_checksum out ~off ~csum_byte ~size =
  Netpkt.Bytes_util.set_uint16 out (off + csum_byte) 0;
  Netpkt.Bytes_util.set_uint16 out (off + csum_byte)
    (Netpkt.Bytes_util.internet_checksum out ~off ~len:size)

let deparse ~order phv ~payload =
  let valid =
    List.filter_map
      (fun name ->
        if Phv.is_valid phv name then
          Some (Phv.inst phv name)
        else None)
      order
  in
  let total =
    List.fold_left (fun acc i -> acc + Hdr.byte_size (Hdr.decl_of i)) 0 valid
    + Bytes.length payload
  in
  let out = Bytes.make total '\000' in
  let off = ref 0 in
  List.iter
    (fun i ->
      Hdr.emit i out ~bit_off:(8 * !off);
      let d = Hdr.decl_of i in
      let size = Hdr.byte_size d in
      (match Hdr.self_checksum_byte d with
      | Some csum_byte -> fix_checksum out ~off:!off ~csum_byte ~size
      | None -> ());
      off := !off + size)
    valid;
  Bytes.blit payload 0 out !off (Bytes.length payload);
  out

let reachable t =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec walk = function
    | Accept | Reject -> ()
    | Goto id ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          order := id :: !order;
          match find_state t id with
          | Some s -> List.iter walk (successors s)
          | None -> ()
        end
  in
  walk t.start;
  List.rev !order

let pp_next ppf = function
  | Accept -> Format.pp_print_string ppf "accept"
  | Reject -> Format.pp_print_string ppf "reject"
  | Goto id -> Format.pp_print_string ppf id

let pp ppf t =
  Format.fprintf ppf "@[<v 2>parser %s (start -> %a) {@," t.name pp_next t.start;
  List.iter
    (fun s ->
      Format.fprintf ppf "@[<v 2>state %s: extract %s @@%d" s.id s.header s.offset;
      (match s.select with
      | None -> Format.fprintf ppf " -> accept"
      | Some sel ->
          Format.fprintf ppf " select(%s):"
            (String.concat ", " (List.map Fieldref.to_string sel.on));
          List.iter
            (fun c ->
              Format.fprintf ppf "@,%s -> %a"
                (String.concat "," (List.map Int64.to_string c.values))
                pp_next c.next)
            sel.cases;
          Format.fprintf ppf "@,default -> %a" pp_next sel.default);
      Format.fprintf ppf "@]@,")
    t.states;
  Format.fprintf ppf "}@]"
