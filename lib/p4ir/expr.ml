type binop =
  | Add | Sub | Mul
  | BAnd | BOr | BXor
  | Shl | Shr
  | Eq | Neq | Lt | Le | Gt | Ge
  | LAnd | LOr

type unop = BNot | LNot
type hash_alg = Crc32 | Crc16 | Identity

type t =
  | Const of Bitval.t
  | Field of Fieldref.t
  | Param of string
  | Bin of binop * t * t
  | Un of unop * t
  | Hash of hash_alg * int * t list
  | Valid of string

let const ~width v = Const (Bitval.of_int ~width v)
let field h f = Field (Fieldref.v h f)
let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( = ) a b = Bin (Eq, a, b)
let ( <> ) a b = Bin (Neq, a, b)
let ( < ) a b = Bin (Lt, a, b)
let ( && ) a b = Bin (LAnd, a, b)
let ( || ) a b = Bin (LOr, a, b)

type env = { phv : Phv.t; params : (string * Bitval.t) list }

let hash_bytes alg inputs =
  (* Serialize each input value on a byte boundary, MSB first, the way a
     hash extern concatenates its field list. *)
  let total_bits =
    List.fold_left (fun acc v -> Stdlib.( + ) acc (Bitval.width v)) 0 inputs
  in
  let nbytes = Stdlib.( / ) (Stdlib.( + ) total_bits 7) 8 in
  let b = Bytes.make (max nbytes 1) '\000' in
  let off = ref 0 in
  List.iter
    (fun v ->
      Netpkt.Bytes_util.set_bits b ~bit_off:!off ~width:(Bitval.width v)
        (Bitval.to_int64 v);
      off := Stdlib.( + ) !off (Bitval.width v))
    inputs;
  match alg with
  | Crc32 -> Netpkt.Bytes_util.crc32 b ~off:0 ~len:(Bytes.length b)
  | Crc16 -> Netpkt.Bytes_util.crc16 b ~off:0 ~len:(Bytes.length b)
  | Identity ->
      List.fold_left
        (fun acc v -> Int64.logor (Int64.shift_left acc (Bitval.width v)) (Bitval.to_int64 v))
        0L inputs

let rec eval env expr =
  match expr with
  | Const v -> v
  | Field r -> Phv.get env.phv r
  | Param name -> (
      match List.assoc_opt name env.params with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Expr.eval: unbound param %s" name))
  | Valid h -> Bitval.of_bool (Phv.is_valid env.phv h)
  | Un (BNot, e) -> Bitval.lognot (eval env e)
  | Un (LNot, e) -> Bitval.of_bool (not (Bitval.to_bool (eval env e)))
  | Hash (alg, out_width, inputs) ->
      let vals = List.map (eval env) inputs in
      Bitval.make ~width:out_width (hash_bytes alg vals)
  | Bin (op, a, b) -> (
      let va = eval env a in
      let vb = eval env b in
      match op with
      | Add -> Bitval.add va vb
      | Sub -> Bitval.sub va vb
      | Mul -> Bitval.mul va vb
      | BAnd -> Bitval.logand va vb
      | BOr -> Bitval.logor va vb
      | BXor -> Bitval.logxor va vb
      | Shl -> Bitval.shift_left va (Bitval.to_int vb)
      | Shr -> Bitval.shift_right va (Bitval.to_int vb)
      | Eq -> Bitval.of_bool (Bitval.equal_value va (Bitval.resize vb (Bitval.width va)))
      | Neq ->
          Bitval.of_bool
            (not (Bitval.equal_value va (Bitval.resize vb (Bitval.width va))))
      | Lt -> Bitval.of_bool (Bitval.lt va (Bitval.resize vb (Bitval.width va)))
      | Le -> Bitval.of_bool (Bitval.le va (Bitval.resize vb (Bitval.width va)))
      | Gt -> Bitval.of_bool (Bitval.lt (Bitval.resize vb (Bitval.width va)) va)
      | Ge -> Bitval.of_bool (Bitval.le (Bitval.resize vb (Bitval.width va)) va)
      | LAnd -> Bitval.of_bool (Stdlib.( && ) (Bitval.to_bool va) (Bitval.to_bool vb))
      | LOr -> Bitval.of_bool (Stdlib.( || ) (Bitval.to_bool va) (Bitval.to_bool vb)))

let eval_bool env e = Bitval.to_bool (eval env e)

(* Compile an expression to a closure over the environment, resolving
   the tree walk once and every field reference to a cached-slot
   accessor. A [Param] node looks its value up at run time and fails
   exactly like [eval] when unbound. *)
let rec compile_env expr =
  match expr with
  | Const v -> fun _ -> v
  | Field r ->
      let g = Phv.fast_get r in
      fun env -> g env.phv
  | Param name -> (
      fun env ->
        match List.assoc_opt name env.params with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "Expr.eval: unbound param %s" name))
  | Valid h ->
      let v = Phv.fast_valid h in
      fun env -> Bitval.of_bool (v env.phv)
  | Un (BNot, e) ->
      let f = compile_env e in
      fun env -> Bitval.lognot (f env)
  | Un (LNot, e) ->
      let f = compile_env e in
      fun env -> Bitval.of_bool (not (Bitval.to_bool (f env)))
  | Hash (alg, out_width, inputs) ->
      let fs = List.map compile_env inputs in
      fun env ->
        Bitval.make ~width:out_width (hash_bytes alg (List.map (fun f -> f env) fs))
  | Bin (op, a, b) -> (
      let fa = compile_env a in
      let fb = compile_env b in
      let lift2 g = fun env -> g (fa env) (fb env) in
      match op with
      | Add -> lift2 Bitval.add
      | Sub -> lift2 Bitval.sub
      | Mul -> lift2 Bitval.mul
      | BAnd -> lift2 Bitval.logand
      | BOr -> lift2 Bitval.logor
      | BXor -> lift2 Bitval.logxor
      | Shl -> lift2 (fun va vb -> Bitval.shift_left va (Bitval.to_int vb))
      | Shr -> lift2 (fun va vb -> Bitval.shift_right va (Bitval.to_int vb))
      | Eq ->
          lift2 (fun va vb ->
              Bitval.of_bool (Bitval.equal_value va (Bitval.resize vb (Bitval.width va))))
      | Neq ->
          lift2 (fun va vb ->
              Bitval.of_bool
                (not (Bitval.equal_value va (Bitval.resize vb (Bitval.width va)))))
      | Lt ->
          lift2 (fun va vb ->
              Bitval.of_bool (Bitval.lt va (Bitval.resize vb (Bitval.width va))))
      | Le ->
          lift2 (fun va vb ->
              Bitval.of_bool (Bitval.le va (Bitval.resize vb (Bitval.width va))))
      | Gt ->
          lift2 (fun va vb ->
              Bitval.of_bool (Bitval.lt (Bitval.resize vb (Bitval.width va)) va))
      | Ge ->
          lift2 (fun va vb ->
              Bitval.of_bool (Bitval.le (Bitval.resize vb (Bitval.width va)) va))
      | LAnd ->
          lift2 (fun va vb ->
              Bitval.of_bool (Stdlib.( && ) (Bitval.to_bool va) (Bitval.to_bool vb)))
      | LOr ->
          lift2 (fun va vb ->
              Bitval.of_bool (Stdlib.( || ) (Bitval.to_bool va) (Bitval.to_bool vb))))

let compile e =
  let f = compile_env e in
  fun phv -> f { phv; params = [] }

let compile_bool e =
  let f = compile_env e in
  fun phv -> Bitval.to_bool (f { phv; params = [] })

let rec reads = function
  | Const _ | Param _ -> Fieldref.Set.empty
  | Field r -> Fieldref.Set.singleton r
  | Valid h -> Fieldref.Set.singleton (Fieldref.v h "$valid")
  | Un (_, e) -> reads e
  | Bin (_, a, b) -> Fieldref.Set.union (reads a) (reads b)
  | Hash (_, _, es) ->
      List.fold_left
        (fun acc e -> Fieldref.Set.union acc (reads e))
        Fieldref.Set.empty es

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^"
  | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | LAnd -> "&&" | LOr -> "||"

let rec pp ppf = function
  | Const v -> Format.fprintf ppf "%Lu" (Bitval.to_int64 v)
  | Field r -> Fieldref.pp ppf r
  | Param p -> Format.fprintf ppf "%s" p
  | Valid h -> Format.fprintf ppf "%s.isValid()" h
  | Un (BNot, e) -> Format.fprintf ppf "~(%a)" pp e
  | Un (LNot, e) -> Format.fprintf ppf "!(%a)" pp e
  | Bin (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_str op) pp b
  | Hash (alg, w, es) ->
      let name =
        match alg with Crc32 -> "crc32" | Crc16 -> "crc16" | Identity -> "identity"
      in
      Format.fprintf ppf "hash_%s<bit<%d>>(%a)" name w
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
        es
