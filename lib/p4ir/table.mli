(** Match-action tables: the unit a MAU stage executes. *)

type match_kind = Exact | Ternary | Lpm | Range

type key = { field : Fieldref.t; kind : match_kind; width : int }

type pattern =
  | M_exact of Bitval.t
  | M_ternary of { value : Bitval.t; mask : Bitval.t }
  | M_lpm of { value : Bitval.t; prefix_len : int }
  | M_range of { lo : Bitval.t; hi : Bitval.t }
  | M_any

type entry = {
  priority : int;  (** larger wins; LPM entries also rank by prefix length *)
  patterns : pattern list;
  action : string;
  args : Bitval.t list;
}

type t

val make :
  name:string ->
  keys:key list ->
  actions:Action.t list ->
  default:string * Bitval.t list ->
  ?max_size:int ->
  unit ->
  t
(** Raises [Invalid_argument] when the default action is not among
    [actions]. [max_size] defaults to 1024. *)

val name : t -> string
val keys : t -> key list
val actions : t -> Action.t list
val default : t -> string * Bitval.t list
val max_size : t -> int
val entries : t -> entry list
val size : t -> int
val rename : t -> string -> t
(** Same definition and shared entry store (and index) under a new name:
    entries added through either handle are seen by both. *)

val find_action : t -> string -> Action.t option

(** {2 Entry installation and mutation}

    The convention throughout the tree: library code, NF constructors,
    control-plane handlers and CLI/bench front-ends mutate tables with
    the result-returning API below (or, one level up, through the typed
    {!Ctrl} op language and [Runtime.apply_ops]) and propagate the
    error — a mutation that fails on capacity, a malformed pattern or a
    missing entry is an operational condition, not a programming bug.
    (The old [add_entry_exn] escape hatch is gone: tests wrap
    {!add_entry} themselves when a failed install should just fail the
    test.)

    {!del_entry} and {!mod_entry} name the entry to touch by its match
    key — the (priority, patterns) pair, compared by match semantics
    (numeric value equality, ternary values under their masks, LPM
    values under their prefix masks), the identity a P4Runtime
    DELETE/MODIFY would use. Both maintain the staged index
    incrementally: one hash-bucket probe locates the entry (a scan only
    for the ternary/range partition), deletion unlinks it from exactly
    that bucket — no bulk rebuild. *)

val add_entry : t -> entry -> (unit, string) result
(** Validates pattern arity against keys, pattern kind against match kind,
    action existence and argument arity, and capacity. Duplicate match
    keys are permitted (the earlier entry wins ties by sequence). *)

val add_entries : t -> entry list -> (unit, string) result
(** {!add_entry} in order, stopping at the first error. *)

val del_entry : t -> entry -> (unit, string) result
(** Remove the installed entry whose match key equals [entry]'s
    (action and args are ignored). Errors when no such entry exists or
    the patterns are malformed for this table. Bumps the epoch. *)

val mod_entry : t -> entry -> (unit, string) result
(** Rebind the action and arguments of the installed entry whose match
    key equals [entry]'s, in place: the entry keeps its sequence number
    (lookup tie-break), its stored patterns and its per-entry hit
    tally. Errors when no such entry exists, the action is unknown, or
    the argument arity is wrong. Bumps the epoch. *)

val clear : t -> unit
(** Remove every entry. Sequence numbers are not reused afterwards —
    [next_seq] survives a clear — so stats merged by seq
    ({!merge_stats_from}) never pair entries across generations. *)

(** {2 Invalidation epoch and lookup recorder}

    Support for memoization layers (the runtime flow cache): the epoch
    counts successful mutations and the recorder — when armed —
    observes every lookup, hit or miss, on both the indexed and the
    reference path. Both live in the shared entry store ({!rename}d
    handles report together); a {!copy} starts fresh. When no recorder
    is armed the lookup paths pay a single option match. *)

val epoch : t -> int
(** Incremented by every successful mutation: {!add_entry},
    {!del_entry}, {!mod_entry} and {!clear}. *)

val set_on_lookup : t -> (unit -> unit) option -> unit
(** Arm (or disarm, with [None]) the lookup recorder. The lookup itself
    is the dependency, so it fires on hits and misses alike. *)

val copy : t -> t
(** A deep copy: same definition, fresh store holding the source's
    current entries with their sequence numbers — and the seq allocator
    — reproduced exactly, so the copy resolves lookup tie-breaks like
    the original and stays pairable by seq even after either side
    churns. Stats start disabled. Used by {!Asic.Chip.replicate}. *)

val matches : entry -> Bitval.t list -> bool
(** Does the entry match these key values? (Exposed for testing.) *)

val lookup : t -> Phv.t -> [ `Hit of entry | `Miss ]
(** Highest priority wins; among equal priorities the longest LPM prefix,
    then earliest insertion.

    Served by a staged index maintained incrementally on
    {!add_entry}/{!clear}: all-exact entries are hash-indexed on their
    concatenated key values, single-key LPM entries are bucketed by
    prefix length (probed longest-first), and only ternary/range/
    wildcard entries take a linear scan — with per-entry masks, prefix
    lengths, resolved actions and bound action data precomputed at
    insert time. *)

val lookup_reference : t -> Phv.t -> [ `Hit of entry | `Miss ]
(** The pre-index linear scan over every entry, kept as the oracle the
    indexed {!lookup} is equivalence-tested against. *)

val apply : ?regs:Action.reg_env -> t -> Phv.t -> string * bool
(** Run the matching entry's action (or the default on miss) against the
    PHV. Returns [(action_run, hit)]. Lookup goes through the staged
    index; the action runs with its pre-bound data. *)

val apply_reference : ?regs:Action.reg_env -> t -> Phv.t -> string * bool
(** {!apply} the pre-index way: linear {!lookup_reference} scan, action
    resolved by name and arguments re-validated per invocation. The
    reference control interpreter uses this, so fast and reference modes
    share no lookup code. *)

(** {2 Telemetry}

    Hit/miss tallies and per-entry hit counts, maintained by both
    {!lookup}/{!apply} and the reference pair when enabled. Off by
    default; when off the lookup paths pay a single immediate-field
    match. Counters live in the shared entry store, so {!rename}d
    handles tally together. *)

type stats = { mutable hits : int; mutable misses : int }

val set_stats_enabled : t -> bool -> unit
(** Enabling (re)starts all tallies from zero; disabling discards
    them. *)

val stats : t -> stats option
val reset_stats : t -> unit
val entry_hits : t -> (entry * int) list
(** Installed entries with their hit counts, insertion order. All zero
    when stats were never enabled. *)

val merge_stats_from : t -> src:t -> unit
(** Add [src]'s hit/miss tallies (and per-entry hits, matched by
    sequence number) into this table's. No-op unless both tables have
    stats enabled. Used to fold a {!copy}-based replica's telemetry back
    into the original after a parallel run. *)

val key_bits : t -> int
(** Total match key width in bits. *)

val pp : Format.formatter -> t -> unit
