(** Header type declarations and header instances.

    A declaration is a named, ordered list of fixed-width fields; an
    instance is a validity bit plus a value per field, living in a PHV. *)

type field = { name : string; width : int }

type decl = private {
  name : string;
  fields : field list;
  farr : field array;  (** [fields], indexable *)
  findex : (string, int) Hashtbl.t;  (** field name -> position *)
  foffs : int array;  (** per-field bit offset within the header *)
  zeros : Bitval.t array;  (** pristine value template *)
  nbits : int;  (** total width *)
}
(** Built exclusively by {!decl}, which precomputes the indexed views the
    per-packet operations rely on. *)

val decl : string -> (string * int) list -> decl
(** [decl name fields] builds a declaration; raises [Invalid_argument] on
    duplicate field names or widths outside 1..64. *)

val total_width : decl -> int
(** Sum of field widths, in bits. *)

val byte_size : decl -> int
(** [total_width / 8]; raises if the declaration is not byte-aligned. *)

val field_width : decl -> string -> int
(** Raises [Not_found] for an unknown field. *)

val has_field : decl -> string -> bool

val self_checksum_byte : decl -> int option
(** Byte offset of the header's own internet checksum, when the
    declaration is an IPv4-style self-checksummed header (a 16-bit
    byte-aligned ["checksum"] field alongside an ["ihl"] field). The
    deparser's checksum engine recomputes these on emit; transport
    checksums (which span a pseudo-header and payload) don't qualify. *)

val equal_decl : decl -> decl -> bool
val pp_decl : Format.formatter -> decl -> unit

type inst
(** A mutable header instance. *)

val inst : decl -> inst
(** A fresh, invalid instance with all-zero fields. *)

val inst_valid : decl -> inst
(** A fresh, valid instance with all-zero fields. *)

val decl_of : inst -> decl
val is_valid : inst -> bool
val set_valid : inst -> unit
val set_invalid : inst -> unit
val get : inst -> string -> Bitval.t
(** Raises [Not_found] for an unknown field. Reading an invalid header
    returns the stored value (all-zero unless written), matching the
    "undefined but harmless" hardware behaviour. *)

val set : inst -> string -> Bitval.t -> unit
(** The value is resized to the declared field width. *)

val field_index : decl -> string -> int
(** Position of a field for {!get_at}/{!set_at}; raises [Not_found]. *)

val get_at : inst -> int -> Bitval.t
(** {!get} by precomputed position — no name lookup. *)

val set_at : inst -> int -> Bitval.t -> unit
(** {!set} by precomputed position; resizes to the declared width. *)

val copy : inst -> inst
val extract : inst -> Bytes.t -> bit_off:int -> unit
(** Fill fields from the wire and mark the instance valid. *)

val emit : inst -> Bytes.t -> bit_off:int -> unit
(** Serialize the fields to the wire (caller checks validity). *)

val equal_inst : inst -> inst -> bool
val pp_inst : Format.formatter -> inst -> unit
