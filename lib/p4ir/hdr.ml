type field = { name : string; width : int }

(* Everything a per-packet operation needs is precomputed here, once per
   declaration: fields as an array, a name -> position table, per-field
   bit offsets for extract/emit, and a pristine value array instances
   copy instead of rebuilding. *)
type decl = {
  name : string;
  fields : field list;
  farr : field array;
  findex : (string, int) Hashtbl.t;
  foffs : int array;
  zeros : Bitval.t array;
  nbits : int;
}

let decl name fields =
  let seen = Hashtbl.create 8 in
  let fields =
    List.map
      (fun (fname, width) ->
        if width < 1 || width > 64 then
          invalid_arg
            (Printf.sprintf "Hdr.decl %s: field %s width %d not in 1..64" name
               fname width);
        if Hashtbl.mem seen fname then
          invalid_arg
            (Printf.sprintf "Hdr.decl %s: duplicate field %s" name fname);
        Hashtbl.add seen fname ();
        { name = fname; width })
      fields
  in
  let farr = Array.of_list fields in
  let n = Array.length farr in
  let findex = Hashtbl.create (max 8 n) in
  let foffs = Array.make n 0 in
  let off = ref 0 in
  Array.iteri
    (fun i (f : field) ->
      Hashtbl.replace findex f.name i;
      foffs.(i) <- !off;
      off := !off + f.width)
    farr;
  {
    name;
    fields;
    farr;
    findex;
    foffs;
    zeros = Array.map (fun (f : field) -> Bitval.zero f.width) farr;
    nbits = !off;
  }

let total_width d = d.nbits

let byte_size d =
  if d.nbits mod 8 <> 0 then
    invalid_arg
      (Printf.sprintf "Hdr.byte_size %s: %d bits not byte-aligned" d.name
         d.nbits)
  else d.nbits / 8

let field_index d fname = Hashtbl.find d.findex fname

let field_width d fname =
  match Hashtbl.find_opt d.findex fname with
  | Some i -> d.farr.(i).width
  | None -> raise Not_found

let has_field d fname = Hashtbl.mem d.findex fname

(* Structural recognition of IPv4-style self-checksummed headers for
   the deparser's checksum engine: a 16-bit, byte-aligned "checksum"
   field next to an "ihl" field marks a header whose checksum covers
   its own bytes (RFC 791). Transport checksums (pseudo-header +
   payload) don't qualify — they have no "ihl". *)
let self_checksum_byte d =
  match (Hashtbl.find_opt d.findex "checksum", Hashtbl.mem d.findex "ihl") with
  | Some k, true when d.farr.(k).width = 16 && d.foffs.(k) mod 8 = 0 ->
      Some (d.foffs.(k) / 8)
  | _ -> None

let equal_decl a b =
  String.equal a.name b.name
  && List.length a.fields = List.length b.fields
  && List.for_all2
       (fun (x : field) (y : field) -> String.equal x.name y.name && x.width = y.width)
       a.fields b.fields

let pp_decl ppf d =
  Format.fprintf ppf "header %s {" d.name;
  List.iter (fun (f : field) -> Format.fprintf ppf " bit<%d> %s;" f.width f.name) d.fields;
  Format.fprintf ppf " }"

type inst = {
  idecl : decl;
  mutable valid : bool;
  vals : Bitval.t array;
}

let inst d = { idecl = d; valid = false; vals = Array.copy d.zeros }

let inst_valid d =
  let i = inst d in
  i.valid <- true;
  i

let decl_of i = i.idecl
let is_valid i = i.valid
let set_valid i = i.valid <- true
let set_invalid i = i.valid <- false

let get i fname = i.vals.(Hashtbl.find i.idecl.findex fname)

let get_at i k = i.vals.(k)

let set_at i k v = i.vals.(k) <- Bitval.resize v i.idecl.farr.(k).width

let set i fname v = set_at i (Hashtbl.find i.idecl.findex fname) v

let copy i = { idecl = i.idecl; valid = i.valid; vals = Array.copy i.vals }

let extract i b ~bit_off =
  let d = i.idecl in
  let n = Array.length d.farr in
  for k = 0 to n - 1 do
    let w = d.farr.(k).width in
    i.vals.(k) <-
      Bitval.make ~width:w
        (Netpkt.Bytes_util.get_bits b ~bit_off:(bit_off + d.foffs.(k)) ~width:w)
  done;
  i.valid <- true

let emit i b ~bit_off =
  let d = i.idecl in
  let n = Array.length d.farr in
  for k = 0 to n - 1 do
    Netpkt.Bytes_util.set_bits b
      ~bit_off:(bit_off + d.foffs.(k))
      ~width:d.farr.(k).width
      (Bitval.to_int64 i.vals.(k))
  done

let equal_inst a b =
  equal_decl a.idecl b.idecl && a.valid = b.valid
  &&
  let n = Array.length a.vals in
  let rec go k = k >= n || (Bitval.equal a.vals.(k) b.vals.(k) && go (k + 1)) in
  go 0

let pp_inst ppf i =
  Format.fprintf ppf "%s%s{" i.idecl.name (if i.valid then "" else "(invalid)");
  Array.iteri
    (fun k (f : field) ->
      Format.fprintf ppf " %s=%Lu" f.name (Bitval.to_int64 i.vals.(k)))
    i.idecl.farr;
  Format.fprintf ppf " }"
