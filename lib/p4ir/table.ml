type match_kind = Exact | Ternary | Lpm | Range
type key = { field : Fieldref.t; kind : match_kind; width : int }

type pattern =
  | M_exact of Bitval.t
  | M_ternary of { value : Bitval.t; mask : Bitval.t }
  | M_lpm of { value : Bitval.t; prefix_len : int }
  | M_range of { lo : Bitval.t; hi : Bitval.t }
  | M_any

type entry = {
  priority : int;
  patterns : pattern list;
  action : string;
  args : Bitval.t list;
}

(* A pattern lowered against the declared key width: masks (including
   LPM prefix masks) folded to raw int64 pairs, so the linear partition
   compares words instead of re-deriving masks per candidate. Only
   sound when the looked-up value carries the declared width — the
   width-mismatch fallback keeps the [Bitval.t]-level [matches]. *)
type ipat =
  | I_any
  | I_eq of int64
  | I_masked of int64 * int64  (* pre-masked value, mask *)
  | I_range of int64 * int64

let compile_pattern kw p =
  match p with
  | M_any -> I_any
  | M_exact v -> I_eq (Bitval.to_int64 v)
  | M_ternary { value; mask } ->
      let m = Bitval.to_int64 mask in
      I_masked (Int64.logand (Bitval.to_int64 value) m, m)
  | M_lpm { value; prefix_len } ->
      let m = Bitval.to_int64 (Bitval.mask_of_prefix ~width:kw prefix_len) in
      I_masked (Int64.logand (Bitval.to_int64 (Bitval.resize value kw)) m, m)
  | M_range { lo; hi } -> I_range (Bitval.to_int64 lo, Bitval.to_int64 hi)

let ipat_matches p v =
  match p with
  | I_any -> true
  | I_eq pv -> Int64.equal v pv
  | I_masked (pv, m) -> Int64.equal (Int64.logand v m) pv
  | I_range (lo, hi) ->
      Int64.unsigned_compare lo v <= 0 && Int64.unsigned_compare v hi <= 0

(* An installed entry with everything a lookup needs precomputed:
   insertion sequence (tie-break), total prefix length (tie-break),
   lowered patterns, resolved action and pre-bound action data. The
   naive path recomputed all of this per candidate per packet.

   [e]/[act]/[bound]/[crun] are mutable for {!mod_entry}: a modify
   rebinds the action data in place — the match key (priority and
   patterns, the entry's identity) never changes after install, so the
   index partitions need no maintenance beyond the epoch bump. *)
type ientry = {
  mutable e : entry;
  seq : int;
  lpm : int;
  ipats : ipat array;
  mutable act : Action.t;
  mutable bound : (string * Bitval.t) list;
  mutable crun : Action.compiled;
  (* Telemetry: hits attributed to this entry while stats are enabled.
     Lives on the installed entry so the hot path bumps a field it
     already holds — no side lookup. *)
  mutable ehits : int;
}

module H64 = Hashtbl.Make (struct
  type t = int64 array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (Int64.equal a.(i) b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  (* Direct word mixing — the polymorphic hash walks the boxed array. *)
  let hash a =
    let h = ref 5381 in
    for i = 0 to Array.length a - 1 do
      let x = a.(i) in
      h :=
        (!h * 33)
        lxor Int64.to_int x
        lxor Int64.to_int (Int64.shift_right_logical x 32)
    done;
    !h land max_int
end)

module HI64 = Hashtbl.Make (struct
  type t = int64

  let equal = Int64.equal

  let hash x =
    (Int64.to_int x lxor Int64.to_int (Int64.shift_right_logical x 32))
    land max_int
end)

(* One prefix length of the single-key LPM index. [gmask] is the prefix
   mask over the declared key width; buckets key on the masked value. *)
type lpm_group = { plen : int; gmask : int64; buckets : ientry list ref HI64.t }

(* Staged index, maintained incrementally on insert AND delete:
   - [exact1]: single-key [M_exact] entries hashed on the bare value —
     the common case (FIB next-hop, session, flag tables) skips the
     key-array allocation entirely.
   - [exact]: multi-key all-[M_exact] entries, hashed on the
     concatenated key values (numeric, like [Bitval.equal_value]).
   - [lpm]: single-key [M_lpm] entries bucketed by prefix length,
     probed longest-first.
   - [linear]: everything else (ternary, range, wildcards, mixed
     multi-key prefixes) — scanned with precomputed entry data.
   Deletion unlinks one entry from its partition bucket (and drops
   emptied buckets / prefix-length groups); no bulk rebuild. *)
type index = {
  exact1 : ientry list ref HI64.t;
  exact : ientry list ref H64.t;
  mutable lpm : lpm_group list; (* sorted by plen, longest first *)
  mutable linear : ientry list;
}

type stats = { mutable hits : int; mutable misses : int }

type store = {
  (* Source of truth: every installed entry keyed by its sequence
     number. Seqs are unique for the lifetime of the store — [clear]
     and [del_entry] never reset [next_seq] — so a replica made with
     {!copy} (which reproduces seqs exactly) can always be paired back
     entry-for-entry by {!merge_stats_from}, even across churn. *)
  by_seq : (int, ientry) Hashtbl.t;
  mutable count : int;
  mutable next_seq : int;
  index : index;
  (* [None] = telemetry off: both lookup paths pay one immediate-field
     match and nothing else. Lives in the shared store so {!rename}d
     handles count into the same tallies. *)
  mutable stats : stats option;
  (* Invalidation epoch (bumped on every successful mutation) and the
     lookup recorder a memoization layer arms to learn which tables a
     packet's verdict depended on. Shared across {!rename}d handles,
     fresh in a {!copy}. *)
  mutable epoch : int;
  mutable on_lookup : (unit -> unit) option;
}

(* The index and entry store live behind [store], which {!rename}d
   handles share: entries installed through any handle are visible — and
   indexed — through all of them. *)
type t = {
  name : string;
  keys : key list;
  kfields : Fieldref.t array;
  kgets : (Phv.t -> Bitval.t) array;
  kwidths : int array;
  actions : Action.t list;
  default : string * Bitval.t list;
  default_act : Action.t;
  default_bound : (string * Bitval.t) list;
  default_crun : Action.compiled;
  max_size : int;
  store : store;
}

let fresh_index () =
  { exact1 = HI64.create 16; exact = H64.create 16; lpm = []; linear = [] }

let make ~name ~keys ~actions ~default ?(max_size = 1024) () =
  let dname, dargs = default in
  let default_act =
    match
      List.find_opt (fun (a : Action.t) -> String.equal a.Action.name dname) actions
    with
    | None ->
        invalid_arg
          (Printf.sprintf "Table.make %s: default action %s not declared" name
             dname)
    | Some a ->
        if List.length a.Action.params <> List.length dargs then
          invalid_arg
            (Printf.sprintf "Table.make %s: default action %s arity mismatch"
               name dname);
        a
  in
  {
    name;
    keys;
    kfields = Array.of_list (List.map (fun k -> k.field) keys);
    kgets = Array.of_list (List.map (fun k -> Phv.fast_get k.field) keys);
    kwidths = Array.of_list (List.map (fun k -> k.width) keys);
    actions;
    default;
    default_act;
    default_bound = Action.bind_args default_act dargs;
    default_crun = Action.compile default_act;
    max_size;
    store =
      {
        by_seq = Hashtbl.create 32;
        count = 0;
        next_seq = 0;
        index = fresh_index ();
        stats = None;
        epoch = 0;
        on_lookup = None;
      };
  }

let name t = t.name
let keys t = t.keys
let actions t = t.actions
let default t = t.default
let max_size t = t.max_size

let ientries_by_seq t =
  Hashtbl.fold (fun _ ie acc -> ie :: acc) t.store.by_seq []
  |> List.sort (fun a b -> compare a.seq b.seq)

let entries t = List.map (fun ie -> ie.e) (ientries_by_seq t)
let size t = t.store.count
let rename t name = { t with name }

let find_action t aname =
  List.find_opt (fun (a : Action.t) -> String.equal a.Action.name aname) t.actions

let pattern_kind_ok kind pattern =
  match (kind, pattern) with
  | _, M_any -> true
  | Exact, M_exact _ -> true
  | Ternary, (M_exact _ | M_ternary _) -> true
  | Lpm, (M_exact _ | M_lpm _) -> true
  | Range, (M_exact _ | M_range _) -> true
  | (Exact | Ternary | Lpm | Range), _ -> false

let lpm_len entry =
  (* Longest prefix across LPM patterns; exact = full width. *)
  List.fold_left
    (fun acc p ->
      match p with
      | M_lpm { prefix_len; _ } -> acc + prefix_len
      | M_exact v -> acc + Bitval.width v
      | M_ternary _ | M_range _ | M_any -> acc)
    0 entry.patterns

(* --- Entry identity ---

   [del_entry]/[mod_entry] name the entry to touch by its match key:
   the (priority, patterns) pair, compared by match semantics —
   numeric value equality ([Bitval.equal_value], width-insensitive),
   ternary values under their masks, LPM values under their prefix
   masks. Two patterns equal under [pattern_equal] match exactly the
   same key values, so the identity is the one a switch RPC (P4Runtime
   MODIFY/DELETE) would use. *)

let pattern_equal a b =
  match (a, b) with
  | M_any, M_any -> true
  | M_exact x, M_exact y -> Bitval.equal_value x y
  | M_ternary { value = v1; mask = m1 }, M_ternary { value = v2; mask = m2 } ->
      Bitval.equal_value m1 m2
      && Bitval.equal_value (Bitval.logand v1 m1) (Bitval.logand v2 m2)
  | M_lpm { value = v1; prefix_len = p1 }, M_lpm { value = v2; prefix_len = p2 }
    ->
      p1 = p2
      &&
      let w = max (Bitval.width v1) (Bitval.width v2) in
      let m = Bitval.mask_of_prefix ~width:w p1 in
      Bitval.equal_value
        (Bitval.logand (Bitval.resize v1 w) m)
        (Bitval.logand (Bitval.resize v2 w) m)
  | M_range { lo = l1; hi = h1 }, M_range { lo = l2; hi = h2 } ->
      Bitval.equal_value l1 l2 && Bitval.equal_value h1 h2
  | (M_exact _ | M_ternary _ | M_lpm _ | M_range _ | M_any), _ -> false

let entry_key_equal a b =
  a.priority = b.priority
  && List.length a.patterns = List.length b.patterns
  && List.for_all2 pattern_equal a.patterns b.patterns

(* --- Index partition routing ---

   One classifier shared by insert, delete and the del/mod probe, so an
   entry is always unlinked from (or found in) exactly the bucket that
   indexed it. The bucket keys are numeric ([Bitval.to_int64], masked
   values) — width-insensitive like [pattern_equal]. *)

type slot =
  | S_exact1 of int64
  | S_exact of int64 array
  | S_lpm of int * int64 * int64  (* plen, gmask, masked value *)
  | S_linear

let slot_of t patterns =
  let all_exact =
    List.for_all (function M_exact _ -> true | _ -> false) patterns
  in
  if all_exact then
    match patterns with
    | [ M_exact v ] -> S_exact1 (Bitval.to_int64 v)
    | _ ->
        S_exact
          (Array.of_list
             (List.map
                (function M_exact v -> Bitval.to_int64 v | _ -> assert false)
                patterns))
  else
    match (patterns, t.kwidths) with
    | [ M_lpm { value; prefix_len } ], [| w |] when prefix_len <= w ->
        let gmask = Bitval.to_int64 (Bitval.mask_of_prefix ~width:w prefix_len) in
        let masked =
          Int64.logand (Bitval.to_int64 (Bitval.resize value w)) gmask
        in
        S_lpm (prefix_len, gmask, masked)
    | _ -> S_linear

let bucket_push tbl find add key ie =
  match find tbl key with
  | Some l -> l := ie :: !l
  | None -> add tbl key (ref [ ie ])

(* Drop [ie] (by physical identity) from its bucket; remove the binding
   when the bucket empties so stale keys don't accumulate under churn. *)
let bucket_drop tbl find remove key ie =
  match find tbl key with
  | None -> ()
  | Some l ->
      l := List.filter (fun x -> not (x == ie)) !l;
      if !l = [] then remove tbl key

(* Route one installed entry into its index partition. *)
let index_entry t ie =
  let idx = t.store.index in
  match slot_of t ie.e.patterns with
  | S_exact1 k -> bucket_push idx.exact1 HI64.find_opt HI64.add k ie
  | S_exact k -> bucket_push idx.exact H64.find_opt H64.add k ie
  | S_lpm (plen, gmask, masked) ->
      let group =
        match List.find_opt (fun g -> g.plen = plen) idx.lpm with
        | Some g -> g
        | None ->
            let g = { plen; gmask; buckets = HI64.create 16 } in
            idx.lpm <-
              List.sort (fun a b -> compare b.plen a.plen) (g :: idx.lpm);
            g
      in
      bucket_push group.buckets HI64.find_opt HI64.add masked ie
  | S_linear -> idx.linear <- ie :: idx.linear

(* Unlink one installed entry from its partition — the incremental
   inverse of [index_entry]: one bucket probe, no rebuild of anything
   else. An emptied LPM prefix-length group is dropped so the probe
   loop's group list stays proportional to the live prefix lengths. *)
let unindex_entry t ie =
  let idx = t.store.index in
  match slot_of t ie.e.patterns with
  | S_exact1 k -> bucket_drop idx.exact1 HI64.find_opt HI64.remove k ie
  | S_exact k -> bucket_drop idx.exact H64.find_opt H64.remove k ie
  | S_lpm (plen, _, masked) -> (
      match List.find_opt (fun g -> g.plen = plen) idx.lpm with
      | None -> ()
      | Some g ->
          bucket_drop g.buckets HI64.find_opt HI64.remove masked ie;
          if HI64.length g.buckets = 0 then
            idx.lpm <- List.filter (fun g' -> not (g' == g)) idx.lpm)
  | S_linear -> idx.linear <- List.filter (fun x -> not (x == ie)) idx.linear

(* Find the installed entry whose match key equals [entry]'s, through
   the same partition routing an install would take: a hash-bucket
   probe for exact/LPM shapes, a scan only for the linear partition. *)
let find_ientry t entry =
  let pick l = List.find_opt (fun ie -> entry_key_equal ie.e entry) l in
  let idx = t.store.index in
  match slot_of t entry.patterns with
  | S_exact1 k -> (
      match HI64.find_opt idx.exact1 k with Some l -> pick !l | None -> None)
  | S_exact k -> (
      match H64.find_opt idx.exact k with Some l -> pick !l | None -> None)
  | S_lpm (plen, _, masked) -> (
      match List.find_opt (fun g -> g.plen = plen) idx.lpm with
      | None -> None
      | Some g -> (
          match HI64.find_opt g.buckets masked with
          | Some l -> pick !l
          | None -> None))
  | S_linear -> pick idx.linear

let validate_shape t entry =
  if List.length entry.patterns <> List.length t.keys then
    Error
      (Printf.sprintf "table %s: %d patterns for %d keys" t.name
         (List.length entry.patterns) (List.length t.keys))
  else if
    not (List.for_all2 (fun k p -> pattern_kind_ok k.kind p) t.keys entry.patterns)
  then Error (Printf.sprintf "table %s: pattern kind mismatch" t.name)
  else Ok ()

let validate_action t entry =
  match find_action t entry.action with
  | None ->
      Error (Printf.sprintf "table %s: unknown action %s" t.name entry.action)
  | Some a ->
      if List.length a.Action.params <> List.length entry.args then
        Error
          (Printf.sprintf "table %s: action %s expects %d args, got %d" t.name
             entry.action
             (List.length a.Action.params)
             (List.length entry.args))
      else Ok a

(* Install a validated entry under an explicit sequence number —
   [add_entry] passes [next_seq]; [copy] replays the source's seqs. *)
let install t entry ~seq (a : Action.t) =
  let ie =
    {
      e = entry;
      seq;
      lpm = lpm_len entry;
      ipats =
        Array.of_list
          (List.map2 (fun k p -> compile_pattern k.width p) t.keys entry.patterns);
      act = a;
      bound = Action.bind_args a entry.args;
      crun = Action.compile a;
      ehits = 0;
    }
  in
  Hashtbl.replace t.store.by_seq seq ie;
  t.store.count <- t.store.count + 1;
  if seq >= t.store.next_seq then t.store.next_seq <- seq + 1;
  t.store.epoch <- t.store.epoch + 1;
  index_entry t ie

let add_entry t entry =
  if size t >= t.max_size then
    Error (Printf.sprintf "table %s: capacity %d exceeded" t.name t.max_size)
  else
    match validate_shape t entry with
    | Error _ as e -> e
    | Ok () -> (
        match validate_action t entry with
        | Error e -> Error e
        | Ok a ->
            install t entry ~seq:t.store.next_seq a;
            Ok ())

let add_entries t entries =
  List.fold_left
    (fun acc e -> Result.bind acc (fun () -> add_entry t e))
    (Ok ()) entries

let del_entry t entry =
  match validate_shape t entry with
  | Error _ as e -> e
  | Ok () -> (
      match find_ientry t entry with
      | None ->
          Error
            (Printf.sprintf
               "table %s: no entry with priority %d and these patterns" t.name
               entry.priority)
      | Some ie ->
          unindex_entry t ie;
          Hashtbl.remove t.store.by_seq ie.seq;
          t.store.count <- t.store.count - 1;
          t.store.epoch <- t.store.epoch + 1;
          Ok ())

let mod_entry t entry =
  match validate_shape t entry with
  | Error _ as e -> e
  | Ok () -> (
      match validate_action t entry with
      | Error e -> Error e
      | Ok a -> (
          match find_ientry t entry with
          | None ->
              Error
                (Printf.sprintf
                   "table %s: no entry with priority %d and these patterns"
                   t.name entry.priority)
          | Some ie ->
              (* The stored match key stays canonical (as first
                 installed); only the action binding changes. Seq and
                 the per-entry hit tally carry over — it is the same
                 logical entry. *)
              ie.e <- { ie.e with action = entry.action; args = entry.args };
              ie.act <- a;
              ie.bound <- Action.bind_args a entry.args;
              ie.crun <- Action.compile a;
              t.store.epoch <- t.store.epoch + 1;
              Ok ()))

(* A deep copy installs the source's entries into a fresh store with
   their sequence numbers — and [next_seq] — reproduced exactly, so the
   copy resolves every lookup tie-break the way the original does AND
   stays pairable by seq ({!merge_stats_from}) even after the original
   or the copy churns. Re-resolving actions cannot fail: the entries
   already passed this table definition's validation once, and the
   resolved [Action.t] is carried over directly. *)
let copy t =
  let c =
    make ~name:t.name ~keys:t.keys ~actions:t.actions ~default:t.default
      ~max_size:t.max_size ()
  in
  List.iter (fun ie -> install c ie.e ~seq:ie.seq ie.act) (ientries_by_seq t);
  c.store.next_seq <- t.store.next_seq;
  c.store.epoch <- 0;
  c

(* [next_seq] is deliberately NOT reset: seqs must stay unique for the
   store's lifetime so stats merged by seq never pair an old entry's
   tally with an unrelated later entry. *)
let clear t =
  Hashtbl.reset t.store.by_seq;
  t.store.count <- 0;
  t.store.epoch <- t.store.epoch + 1;
  let idx = t.store.index in
  HI64.reset idx.exact1;
  H64.reset idx.exact;
  idx.lpm <- [];
  idx.linear <- []

let epoch t = t.store.epoch
let set_on_lookup t f = t.store.on_lookup <- f

let pattern_matches pattern value =
  match pattern with
  | M_any -> true
  | M_exact v -> Bitval.equal_value v value
  | M_ternary { value = v; mask } ->
      Bitval.equal_value (Bitval.logand value mask) (Bitval.logand v mask)
  | M_lpm { value = v; prefix_len } ->
      let mask = Bitval.mask_of_prefix ~width:(Bitval.width value) prefix_len in
      Bitval.equal_value (Bitval.logand value mask) (Bitval.logand (Bitval.resize v (Bitval.width value)) mask)
  | M_range { lo; hi } -> Bitval.le lo value && Bitval.le value hi

let matches entry values =
  List.for_all2 pattern_matches entry.patterns values

(* --- Reference lookup: the pre-index linear scan, kept verbatim as the
   oracle the indexed path is QCheck-equivalence-tested against. The
   scan order differs (hash-table fold) but [better] is a strict total
   order — sequence numbers are distinct — so the winner is
   order-independent. --- *)

(* Stats hooks shared by both lookup paths: one immediate-field match
   when telemetry is off. The reference path attributes per-entry hits
   through the seq store — the interpretive oracle still shares no
   lookup code with the staged index. *)
let stat_hit_seq t seq =
  match t.store.stats with
  | None -> ()
  | Some s -> (
      s.hits <- s.hits + 1;
      match Hashtbl.find_opt t.store.by_seq seq with
      | Some ie -> ie.ehits <- ie.ehits + 1
      | None -> ())

let stat_miss t =
  match t.store.stats with
  | None -> ()
  | Some s -> s.misses <- s.misses + 1

let lookup_reference_values t values =
  (match t.store.on_lookup with Some f -> f () | None -> ());
  let candidates =
    Hashtbl.fold
      (fun seq ie acc -> if matches ie.e values then (ie.e, seq) :: acc else acc)
      t.store.by_seq []
  in
  let better (e1, s1) (e2, s2) =
    if e1.priority <> e2.priority then e1.priority > e2.priority
    else if lpm_len e1 <> lpm_len e2 then lpm_len e1 > lpm_len e2
    else s1 < s2
  in
  match candidates with
  | [] ->
      stat_miss t;
      `Miss
  | first :: rest ->
      let best = List.fold_left (fun b c -> if better c b then c else b) first rest in
      stat_hit_seq t (snd best);
      `Hit (fst best)

let lookup_reference t phv =
  lookup_reference_values t (List.map (fun k -> Phv.get phv k.field) t.keys)

(* --- Indexed lookup --- *)

let ibetter a b =
  if a.e.priority <> b.e.priority then a.e.priority > b.e.priority
  else if a.lpm <> b.lpm then a.lpm > b.lpm
  else a.seq < b.seq

let fold_best best l =
  List.fold_left
    (fun best ie ->
      match best with
      | None -> Some ie
      | Some b -> if ibetter ie b then Some ie else best)
    best l

(* The LPM masks were precomputed over the declared key widths; a PHV
   whose fields carry different widths (never the case for composed
   programs, whose keys mirror the header declarations) falls back to a
   [Bitval.t]-level scan over every installed entry. *)
let widths_match t vals =
  let n = Array.length vals in
  let rec go i = i >= n || (Bitval.width vals.(i) = t.kwidths.(i) && go (i + 1)) in
  go 0

let fold_matching_all t values =
  Hashtbl.fold
    (fun _ ie best ->
      if matches ie.e values then
        match best with
        | None -> Some ie
        | Some b -> if ibetter ie b then Some ie else best
      else best)
    t.store.by_seq None

let imatch1 ie v = ipat_matches ie.ipats.(0) v

let imatch ie raw =
  let n = Array.length ie.ipats in
  let rec go i = i >= n || (ipat_matches ie.ipats.(i) raw.(i) && go (i + 1)) in
  go 0

let fold_imatch1 best v l =
  List.fold_left
    (fun best ie ->
      if imatch1 ie v then
        match best with
        | None -> Some ie
        | Some b -> if ibetter ie b then Some ie else best
      else best)
    best l

let fold_imatch best raw l =
  List.fold_left
    (fun best ie ->
      if imatch ie raw then
        match best with
        | None -> Some ie
        | Some b -> if ibetter ie b then Some ie else best
      else best)
    best l

let probe_lpm idx best v0 =
  List.fold_left
    (fun best g ->
      match HI64.find_opt g.buckets (Int64.logand v0 g.gmask) with
      | Some l -> fold_best best !l
      | None -> best)
    best idx.lpm

let lookup_ientry_raw t phv =
  let n = Array.length t.kgets in
  let idx = t.store.index in
  if n = 1 then begin
    (* Scalar path: no key arrays, value hashed directly. *)
    let v = t.kgets.(0) phv in
    if Bitval.width v <> t.kwidths.(0) then fold_matching_all t [ v ]
    else begin
      let v0 = Bitval.to_int64 v in
      let best =
        match HI64.find_opt idx.exact1 v0 with
        | Some l -> fold_best None !l
        | None -> None
      in
      let best = if idx.lpm == [] then best else probe_lpm idx best v0 in
      if idx.linear == [] then best else fold_imatch1 best v0 idx.linear
    end
  end
  else begin
    let vals = Array.init n (fun i -> t.kgets.(i) phv) in
    if not (widths_match t vals) then fold_matching_all t (Array.to_list vals)
    else begin
      let raw = Array.map Bitval.to_int64 vals in
      let best =
        match H64.find_opt idx.exact raw with
        | Some l -> fold_best None !l
        | None -> None
      in
      let best =
        if idx.lpm == [] then best else probe_lpm idx best raw.(0)
      in
      if idx.linear == [] then best else fold_imatch best raw idx.linear
    end
  end

let lookup_ientry t phv =
  (match t.store.on_lookup with Some f -> f () | None -> ());
  match lookup_ientry_raw t phv with
  | Some ie as r ->
      (match t.store.stats with
      | None -> ()
      | Some s ->
          s.hits <- s.hits + 1;
          ie.ehits <- ie.ehits + 1);
      r
  | None as r ->
      stat_miss t;
      r

let lookup t phv =
  match lookup_ientry t phv with None -> `Miss | Some ie -> `Hit ie.e

let apply ?(regs = Action.no_regs) t phv =
  match lookup_ientry t phv with
  | Some ie ->
      ie.crun regs ie.bound phv;
      (ie.e.action, true)
  | None ->
      t.default_crun regs t.default_bound phv;
      (fst t.default, false)

(* The pre-index apply: linear candidate scan, action resolved by name
   and argument list re-validated on every invocation. The reference
   interpreter runs on this so the oracle shares no code with the staged
   index or the pre-bound action data. *)
let apply_reference ?(regs = Action.no_regs) t phv =
  match lookup_reference t phv with
  | `Hit e ->
      let act =
        match find_action t e.action with
        | Some a -> a
        | None ->
            invalid_arg
              (Printf.sprintf "Table.apply %s: unknown action %s" t.name
                 e.action)
      in
      Action.run ~regs act ~args:e.args phv;
      (e.action, true)
  | `Miss ->
      let dname, dargs = t.default in
      Action.run ~regs t.default_act ~args:dargs phv;
      (dname, false)

(* --- Telemetry --- *)

let iter_ientries t f = Hashtbl.iter (fun _ ie -> f ie) t.store.by_seq

let set_stats_enabled t on =
  if on then begin
    (* (Re)enabling starts a fresh tally. *)
    iter_ientries t (fun ie -> ie.ehits <- 0);
    t.store.stats <- Some { hits = 0; misses = 0 }
  end
  else t.store.stats <- None

let stats t = t.store.stats

let reset_stats t =
  match t.store.stats with
  | None -> ()
  | Some s ->
      s.hits <- 0;
      s.misses <- 0;
      iter_ientries t (fun ie -> ie.ehits <- 0)

let entry_hits t = List.map (fun ie -> (ie.e, ie.ehits)) (ientries_by_seq t)

(* Fold a replica's tallies into this table's (both must have stats
   enabled, else no-op). Per-entry hits are matched by sequence number —
   a replica made with {!copy} reproduces them, and seqs are never
   reused within a store — so entries present only on one side (deleted
   here, or installed on the replica after the copy) are skipped rather
   than misattributed. *)
let merge_stats_from t ~src =
  match (t.store.stats, src.store.stats) with
  | Some d, Some s ->
      d.hits <- d.hits + s.hits;
      d.misses <- d.misses + s.misses;
      iter_ientries src (fun sie ->
          match Hashtbl.find_opt t.store.by_seq sie.seq with
          | Some ie -> ie.ehits <- ie.ehits + sie.ehits
          | None -> ())
  | None, _ | _, None -> ()

let key_bits t = List.fold_left (fun acc k -> acc + k.width) 0 t.keys

let pp ppf t =
  let kind_str = function
    | Exact -> "exact"
    | Ternary -> "ternary"
    | Lpm -> "lpm"
    | Range -> "range"
  in
  Format.fprintf ppf "@[<v 2>table %s {@,keys = {" t.name;
  List.iter
    (fun k -> Format.fprintf ppf " %a:%s;" Fieldref.pp k.field (kind_str k.kind))
    t.keys;
  Format.fprintf ppf " }@,actions = {%s}@,default = %s@,size = %d/%d@]@,}"
    (String.concat "; " (List.map (fun (a : Action.t) -> a.Action.name) t.actions))
    (fst t.default) (size t) t.max_size
