type match_kind = Exact | Ternary | Lpm | Range
type key = { field : Fieldref.t; kind : match_kind; width : int }

type pattern =
  | M_exact of Bitval.t
  | M_ternary of { value : Bitval.t; mask : Bitval.t }
  | M_lpm of { value : Bitval.t; prefix_len : int }
  | M_range of { lo : Bitval.t; hi : Bitval.t }
  | M_any

type entry = {
  priority : int;
  patterns : pattern list;
  action : string;
  args : Bitval.t list;
}

(* A pattern lowered against the declared key width: masks (including
   LPM prefix masks) folded to raw int64 pairs, so the linear partition
   compares words instead of re-deriving masks per candidate. Only
   sound when the looked-up value carries the declared width — the
   width-mismatch fallback keeps the [Bitval.t]-level [matches]. *)
type ipat =
  | I_any
  | I_eq of int64
  | I_masked of int64 * int64  (* pre-masked value, mask *)
  | I_range of int64 * int64

let compile_pattern kw p =
  match p with
  | M_any -> I_any
  | M_exact v -> I_eq (Bitval.to_int64 v)
  | M_ternary { value; mask } ->
      let m = Bitval.to_int64 mask in
      I_masked (Int64.logand (Bitval.to_int64 value) m, m)
  | M_lpm { value; prefix_len } ->
      let m = Bitval.to_int64 (Bitval.mask_of_prefix ~width:kw prefix_len) in
      I_masked (Int64.logand (Bitval.to_int64 (Bitval.resize value kw)) m, m)
  | M_range { lo; hi } -> I_range (Bitval.to_int64 lo, Bitval.to_int64 hi)

let ipat_matches p v =
  match p with
  | I_any -> true
  | I_eq pv -> Int64.equal v pv
  | I_masked (pv, m) -> Int64.equal (Int64.logand v m) pv
  | I_range (lo, hi) ->
      Int64.unsigned_compare lo v <= 0 && Int64.unsigned_compare v hi <= 0

(* An installed entry with everything a lookup needs precomputed:
   insertion sequence (tie-break), total prefix length (tie-break),
   lowered patterns, resolved action and pre-bound action data. The
   naive path recomputed all of this per candidate per packet. *)
type ientry = {
  e : entry;
  seq : int;
  lpm : int;
  ipats : ipat array;
  act : Action.t;
  bound : (string * Bitval.t) list;
  crun : Action.compiled;
  (* Telemetry: hits attributed to this entry while stats are enabled.
     Lives on the installed entry so the hot path bumps a field it
     already holds — no side lookup. *)
  mutable ehits : int;
}

module H64 = Hashtbl.Make (struct
  type t = int64 array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (Int64.equal a.(i) b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  (* Direct word mixing — the polymorphic hash walks the boxed array. *)
  let hash a =
    let h = ref 5381 in
    for i = 0 to Array.length a - 1 do
      let x = a.(i) in
      h :=
        (!h * 33)
        lxor Int64.to_int x
        lxor Int64.to_int (Int64.shift_right_logical x 32)
    done;
    !h land max_int
end)

module HI64 = Hashtbl.Make (struct
  type t = int64

  let equal = Int64.equal

  let hash x =
    (Int64.to_int x lxor Int64.to_int (Int64.shift_right_logical x 32))
    land max_int
end)

(* One prefix length of the single-key LPM index. [gmask] is the prefix
   mask over the declared key width; buckets key on the masked value. *)
type lpm_group = { plen : int; gmask : int64; buckets : ientry list ref HI64.t }

(* Staged index, rebuilt incrementally on insert:
   - [exact1]: single-key [M_exact] entries hashed on the bare value —
     the common case (FIB next-hop, session, flag tables) skips the
     key-array allocation entirely.
   - [exact]: multi-key all-[M_exact] entries, hashed on the
     concatenated key values (numeric, like [Bitval.equal_value]).
   - [lpm]: single-key [M_lpm] entries bucketed by prefix length,
     probed longest-first.
   - [linear]: everything else (ternary, range, wildcards, mixed
     multi-key prefixes) — scanned with precomputed entry data.
   - [rev_all]: every installed entry, for the width-mismatch fallback. *)
type index = {
  exact1 : ientry list ref HI64.t;
  exact : ientry list ref H64.t;
  mutable lpm : lpm_group list; (* sorted by plen, longest first *)
  mutable linear : ientry list;
  mutable rev_all : ientry list;
}

type stats = { mutable hits : int; mutable misses : int }

type store = {
  mutable rev_entries : entry list;
  mutable rev_seqs : (entry * int) list;
  mutable count : int;
  mutable next_seq : int;
  index : index;
  (* [None] = telemetry off: both lookup paths pay one immediate-field
     match and nothing else. Lives in the shared store so {!rename}d
     handles count into the same tallies. *)
  mutable stats : stats option;
  (* Invalidation epoch (bumped on every successful mutation) and the
     lookup recorder a memoization layer arms to learn which tables a
     packet's verdict depended on. Shared across {!rename}d handles,
     fresh in a {!copy}. *)
  mutable epoch : int;
  mutable on_lookup : (unit -> unit) option;
}

(* The index and entry store live behind [store], which {!rename}d
   handles share: entries installed through any handle are visible — and
   indexed — through all of them. *)
type t = {
  name : string;
  keys : key list;
  kfields : Fieldref.t array;
  kgets : (Phv.t -> Bitval.t) array;
  kwidths : int array;
  actions : Action.t list;
  default : string * Bitval.t list;
  default_act : Action.t;
  default_bound : (string * Bitval.t) list;
  default_crun : Action.compiled;
  max_size : int;
  store : store;
}

let fresh_index () =
  {
    exact1 = HI64.create 16;
    exact = H64.create 16;
    lpm = [];
    linear = [];
    rev_all = [];
  }

let make ~name ~keys ~actions ~default ?(max_size = 1024) () =
  let dname, dargs = default in
  let default_act =
    match
      List.find_opt (fun (a : Action.t) -> String.equal a.Action.name dname) actions
    with
    | None ->
        invalid_arg
          (Printf.sprintf "Table.make %s: default action %s not declared" name
             dname)
    | Some a ->
        if List.length a.Action.params <> List.length dargs then
          invalid_arg
            (Printf.sprintf "Table.make %s: default action %s arity mismatch"
               name dname);
        a
  in
  {
    name;
    keys;
    kfields = Array.of_list (List.map (fun k -> k.field) keys);
    kgets = Array.of_list (List.map (fun k -> Phv.fast_get k.field) keys);
    kwidths = Array.of_list (List.map (fun k -> k.width) keys);
    actions;
    default;
    default_act;
    default_bound = Action.bind_args default_act dargs;
    default_crun = Action.compile default_act;
    max_size;
    store =
      {
        rev_entries = [];
        rev_seqs = [];
        count = 0;
        next_seq = 0;
        index = fresh_index ();
        stats = None;
        epoch = 0;
        on_lookup = None;
      };
  }

let name t = t.name
let keys t = t.keys
let actions t = t.actions
let default t = t.default
let max_size t = t.max_size
let entries t = List.rev t.store.rev_entries
let size t = t.store.count
let rename t name = { t with name }

let find_action t aname =
  List.find_opt (fun (a : Action.t) -> String.equal a.Action.name aname) t.actions

let pattern_kind_ok kind pattern =
  match (kind, pattern) with
  | _, M_any -> true
  | Exact, M_exact _ -> true
  | Ternary, (M_exact _ | M_ternary _) -> true
  | Lpm, (M_exact _ | M_lpm _) -> true
  | Range, (M_exact _ | M_range _) -> true
  | (Exact | Ternary | Lpm | Range), _ -> false

let lpm_len entry =
  (* Longest prefix across LPM patterns; exact = full width. *)
  List.fold_left
    (fun acc p ->
      match p with
      | M_lpm { prefix_len; _ } -> acc + prefix_len
      | M_exact v -> acc + Bitval.width v
      | M_ternary _ | M_range _ | M_any -> acc)
    0 entry.patterns

let bucket_push tbl find add key ie =
  match find tbl key with
  | Some l -> l := ie :: !l
  | None -> add tbl key (ref [ ie ])

(* Route one installed entry into its index partition. *)
let index_entry t ie =
  let idx = t.store.index in
  idx.rev_all <- ie :: idx.rev_all;
  let all_exact =
    List.for_all (function M_exact _ -> true | _ -> false) ie.e.patterns
  in
  if all_exact then
    match ie.e.patterns with
    | [ M_exact v ] ->
        bucket_push idx.exact1 HI64.find_opt HI64.add (Bitval.to_int64 v) ie
    | _ ->
        let key =
          Array.of_list
            (List.map
               (function M_exact v -> Bitval.to_int64 v | _ -> assert false)
               ie.e.patterns)
        in
        bucket_push idx.exact H64.find_opt H64.add key ie
  else
    match (ie.e.patterns, t.kwidths) with
    | [ M_lpm { value; prefix_len } ], [| w |] when prefix_len <= w ->
        let gmask = Bitval.to_int64 (Bitval.mask_of_prefix ~width:w prefix_len) in
        let masked = Int64.logand (Bitval.to_int64 (Bitval.resize value w)) gmask in
        let group =
          match List.find_opt (fun g -> g.plen = prefix_len) idx.lpm with
          | Some g -> g
          | None ->
              let g = { plen = prefix_len; gmask; buckets = HI64.create 16 } in
              idx.lpm <-
                List.sort (fun a b -> compare b.plen a.plen) (g :: idx.lpm);
              g
        in
        bucket_push group.buckets HI64.find_opt HI64.add masked ie
    | _ -> idx.linear <- ie :: idx.linear

let add_entry t entry =
  if size t >= t.max_size then
    Error (Printf.sprintf "table %s: capacity %d exceeded" t.name t.max_size)
  else if List.length entry.patterns <> List.length t.keys then
    Error
      (Printf.sprintf "table %s: %d patterns for %d keys" t.name
         (List.length entry.patterns) (List.length t.keys))
  else if
    not (List.for_all2 (fun k p -> pattern_kind_ok k.kind p) t.keys entry.patterns)
  then Error (Printf.sprintf "table %s: pattern kind mismatch" t.name)
  else
    match find_action t entry.action with
    | None -> Error (Printf.sprintf "table %s: unknown action %s" t.name entry.action)
    | Some a ->
        if List.length a.Action.params <> List.length entry.args then
          Error
            (Printf.sprintf "table %s: action %s expects %d args, got %d" t.name
               entry.action
               (List.length a.Action.params)
               (List.length entry.args))
        else begin
          let seq = t.store.next_seq in
          t.store.rev_entries <- entry :: t.store.rev_entries;
          t.store.rev_seqs <- (entry, seq) :: t.store.rev_seqs;
          t.store.count <- t.store.count + 1;
          t.store.next_seq <- seq + 1;
          t.store.epoch <- t.store.epoch + 1;
          index_entry t
            {
              e = entry;
              seq;
              lpm = lpm_len entry;
              ipats =
                Array.of_list
                  (List.map2
                     (fun k p -> compile_pattern k.width p)
                     t.keys entry.patterns);
              act = a;
              bound = Action.bind_args a entry.args;
              crun = Action.compile a;
              ehits = 0;
            };
          Ok ()
        end

let add_entry_exn t entry =
  match add_entry t entry with Ok () -> () | Error e -> invalid_arg e

let add_entries t entries =
  List.fold_left
    (fun acc e -> Result.bind acc (fun () -> add_entry t e))
    (Ok ()) entries

(* A deep copy re-installs the source's entries, in insertion order,
   into a fresh store: sequence numbers (the lookup tie-break) are
   reproduced exactly, so the copy resolves every lookup the way the
   original does. Re-adding cannot fail — the entries already passed
   this table definition's validation once. *)
let copy t =
  let c =
    make ~name:t.name ~keys:t.keys ~actions:t.actions ~default:t.default
      ~max_size:t.max_size ()
  in
  List.iter
    (fun e ->
      match add_entry c e with
      | Ok () -> ()
      | Error msg -> invalid_arg (Printf.sprintf "Table.copy %s: %s" t.name msg))
    (entries t);
  c

let clear t =
  t.store.rev_entries <- [];
  t.store.rev_seqs <- [];
  t.store.count <- 0;
  t.store.epoch <- t.store.epoch + 1;
  let idx = t.store.index in
  HI64.reset idx.exact1;
  H64.reset idx.exact;
  idx.lpm <- [];
  idx.linear <- [];
  idx.rev_all <- []

let epoch t = t.store.epoch
let set_on_lookup t f = t.store.on_lookup <- f

let pattern_matches pattern value =
  match pattern with
  | M_any -> true
  | M_exact v -> Bitval.equal_value v value
  | M_ternary { value = v; mask } ->
      Bitval.equal_value (Bitval.logand value mask) (Bitval.logand v mask)
  | M_lpm { value = v; prefix_len } ->
      let mask = Bitval.mask_of_prefix ~width:(Bitval.width value) prefix_len in
      Bitval.equal_value (Bitval.logand value mask) (Bitval.logand (Bitval.resize v (Bitval.width value)) mask)
  | M_range { lo; hi } -> Bitval.le lo value && Bitval.le value hi

let matches entry values =
  List.for_all2 pattern_matches entry.patterns values

(* --- Reference lookup: the pre-index linear scan, kept verbatim as the
   oracle the indexed path is QCheck-equivalence-tested against. The
   scan order differs (insertion-reversed) but [better] is a strict
   total order — sequence numbers are distinct — so the winner is
   order-independent. --- *)

(* Stats hooks shared by both lookup paths: one immediate-field match
   when telemetry is off. The reference path attributes per-entry hits
   through a seq scan over [rev_all] — linear, but the interpretive
   oracle is not a perf path. *)
let stat_hit_seq t seq =
  match t.store.stats with
  | None -> ()
  | Some s ->
      s.hits <- s.hits + 1;
      List.iter
        (fun ie -> if ie.seq = seq then ie.ehits <- ie.ehits + 1)
        t.store.index.rev_all

let stat_miss t =
  match t.store.stats with
  | None -> ()
  | Some s -> s.misses <- s.misses + 1

let lookup_reference_values t values =
  (match t.store.on_lookup with Some f -> f () | None -> ());
  let candidates =
    List.filter_map
      (fun (e, seq) -> if matches e values then Some (e, seq) else None)
      t.store.rev_seqs
  in
  let better (e1, s1) (e2, s2) =
    if e1.priority <> e2.priority then e1.priority > e2.priority
    else if lpm_len e1 <> lpm_len e2 then lpm_len e1 > lpm_len e2
    else s1 < s2
  in
  match candidates with
  | [] ->
      stat_miss t;
      `Miss
  | first :: rest ->
      let best = List.fold_left (fun b c -> if better c b then c else b) first rest in
      stat_hit_seq t (snd best);
      `Hit (fst best)

let lookup_reference t phv =
  lookup_reference_values t (List.map (fun k -> Phv.get phv k.field) t.keys)

(* --- Indexed lookup --- *)

let ibetter a b =
  if a.e.priority <> b.e.priority then a.e.priority > b.e.priority
  else if a.lpm <> b.lpm then a.lpm > b.lpm
  else a.seq < b.seq

let fold_best best l =
  List.fold_left
    (fun best ie ->
      match best with
      | None -> Some ie
      | Some b -> if ibetter ie b then Some ie else best)
    best l

(* The LPM masks were precomputed over the declared key widths; a PHV
   whose fields carry different widths (never the case for composed
   programs, whose keys mirror the header declarations) falls back to a
   precomputed-but-linear scan over every entry. *)
let widths_match t vals =
  let n = Array.length vals in
  let rec go i = i >= n || (Bitval.width vals.(i) = t.kwidths.(i) && go (i + 1)) in
  go 0

let fold_matching best values l =
  List.fold_left
    (fun best ie ->
      if matches ie.e values then
        match best with
        | None -> Some ie
        | Some b -> if ibetter ie b then Some ie else best
      else best)
    best l

let imatch1 ie v = ipat_matches ie.ipats.(0) v

let imatch ie raw =
  let n = Array.length ie.ipats in
  let rec go i = i >= n || (ipat_matches ie.ipats.(i) raw.(i) && go (i + 1)) in
  go 0

let fold_imatch1 best v l =
  List.fold_left
    (fun best ie ->
      if imatch1 ie v then
        match best with
        | None -> Some ie
        | Some b -> if ibetter ie b then Some ie else best
      else best)
    best l

let fold_imatch best raw l =
  List.fold_left
    (fun best ie ->
      if imatch ie raw then
        match best with
        | None -> Some ie
        | Some b -> if ibetter ie b then Some ie else best
      else best)
    best l

let probe_lpm idx best v0 =
  List.fold_left
    (fun best g ->
      match HI64.find_opt g.buckets (Int64.logand v0 g.gmask) with
      | Some l -> fold_best best !l
      | None -> best)
    best idx.lpm

let lookup_ientry_raw t phv =
  let n = Array.length t.kgets in
  let idx = t.store.index in
  if n = 1 then begin
    (* Scalar path: no key arrays, value hashed directly. *)
    let v = t.kgets.(0) phv in
    if Bitval.width v <> t.kwidths.(0) then
      fold_matching None [ v ] idx.rev_all
    else begin
      let v0 = Bitval.to_int64 v in
      let best =
        match HI64.find_opt idx.exact1 v0 with
        | Some l -> fold_best None !l
        | None -> None
      in
      let best = if idx.lpm == [] then best else probe_lpm idx best v0 in
      if idx.linear == [] then best else fold_imatch1 best v0 idx.linear
    end
  end
  else begin
    let vals = Array.init n (fun i -> t.kgets.(i) phv) in
    if not (widths_match t vals) then
      fold_matching None (Array.to_list vals) idx.rev_all
    else begin
      let raw = Array.map Bitval.to_int64 vals in
      let best =
        match H64.find_opt idx.exact raw with
        | Some l -> fold_best None !l
        | None -> None
      in
      let best =
        if idx.lpm == [] then best else probe_lpm idx best raw.(0)
      in
      if idx.linear == [] then best else fold_imatch best raw idx.linear
    end
  end

let lookup_ientry t phv =
  (match t.store.on_lookup with Some f -> f () | None -> ());
  match lookup_ientry_raw t phv with
  | Some ie as r ->
      (match t.store.stats with
      | None -> ()
      | Some s ->
          s.hits <- s.hits + 1;
          ie.ehits <- ie.ehits + 1);
      r
  | None as r ->
      stat_miss t;
      r

let lookup t phv =
  match lookup_ientry t phv with None -> `Miss | Some ie -> `Hit ie.e

let apply ?(regs = Action.no_regs) t phv =
  match lookup_ientry t phv with
  | Some ie ->
      ie.crun regs ie.bound phv;
      (ie.e.action, true)
  | None ->
      t.default_crun regs t.default_bound phv;
      (fst t.default, false)

(* The pre-index apply: linear candidate scan, action resolved by name
   and argument list re-validated on every invocation. The reference
   interpreter runs on this so the oracle shares no code with the staged
   index or the pre-bound action data. *)
let apply_reference ?(regs = Action.no_regs) t phv =
  match lookup_reference t phv with
  | `Hit e ->
      let act =
        match find_action t e.action with
        | Some a -> a
        | None ->
            invalid_arg
              (Printf.sprintf "Table.apply %s: unknown action %s" t.name
                 e.action)
      in
      Action.run ~regs act ~args:e.args phv;
      (e.action, true)
  | `Miss ->
      let dname, dargs = t.default in
      Action.run ~regs t.default_act ~args:dargs phv;
      (dname, false)

(* --- Telemetry --- *)

let set_stats_enabled t on =
  if on then begin
    (* (Re)enabling starts a fresh tally. *)
    List.iter (fun ie -> ie.ehits <- 0) t.store.index.rev_all;
    t.store.stats <- Some { hits = 0; misses = 0 }
  end
  else t.store.stats <- None

let stats t = t.store.stats

let reset_stats t =
  match t.store.stats with
  | None -> ()
  | Some s ->
      s.hits <- 0;
      s.misses <- 0;
      List.iter (fun ie -> ie.ehits <- 0) t.store.index.rev_all

let entry_hits t =
  List.rev_map (fun ie -> (ie.e, ie.ehits)) t.store.index.rev_all

(* Fold a replica's tallies into this table's (both must have stats
   enabled, else no-op). Per-entry hits are matched by sequence number —
   a replica made with {!copy} reproduces them — so entries the replica
   installed after the copy (absent here) are simply skipped. *)
let merge_stats_from t ~src =
  match (t.store.stats, src.store.stats) with
  | Some d, Some s ->
      d.hits <- d.hits + s.hits;
      d.misses <- d.misses + s.misses;
      let by_seq = Hashtbl.create 16 in
      List.iter
        (fun ie -> Hashtbl.replace by_seq ie.seq ie)
        t.store.index.rev_all;
      List.iter
        (fun sie ->
          match Hashtbl.find_opt by_seq sie.seq with
          | Some ie -> ie.ehits <- ie.ehits + sie.ehits
          | None -> ())
        src.store.index.rev_all
  | None, _ | _, None -> ()

let key_bits t = List.fold_left (fun acc k -> acc + k.width) 0 t.keys

let pp ppf t =
  let kind_str = function
    | Exact -> "exact"
    | Ternary -> "ternary"
    | Lpm -> "lpm"
    | Range -> "range"
  in
  Format.fprintf ppf "@[<v 2>table %s {@,keys = {" t.name;
  List.iter
    (fun k -> Format.fprintf ppf " %a:%s;" Fieldref.pp k.field (kind_str k.kind))
    t.keys;
  Format.fprintf ppf " }@,actions = {%s}@,default = %s@,size = %d/%d@]@,}"
    (String.concat "; " (List.map (fun (a : Action.t) -> a.Action.name) t.actions))
    (fst t.default) (size t) t.max_size
