(** A complete pipelet program: parser, tables, control, deparser —
    what gets loaded onto one ingress or egress pipe. *)

type t = {
  name : string;
  decls : Hdr.decl list;
  parser : Parser_graph.t;
  tables : Table.t list;
  registers : Register.t list;
  control : Control.t;
  deparse_order : string list;
}

val make :
  ?registers:Register.t list ->
  name:string ->
  decls:Hdr.decl list ->
  parser:Parser_graph.t ->
  tables:Table.t list ->
  control:Control.t ->
  deparse_order:string list ->
  unit ->
  t
(** Raises [Invalid_argument] on duplicate table or register names. *)

val copy : t -> t
(** Deep-copy the program's mutable state — installed table entries
    ({!Table.copy}) and register cells ({!Register.copy}) — sharing the
    immutable parser/control structure. Loading the copy binds its
    controls to the copied state, since compilation resolves tables and
    registers by name. *)

val table_env : t -> Control.table_env
val reg_env : t -> Action.reg_env
val find_table : t -> string -> Table.t option
val find_register : t -> string -> Register.t option
val validate : t -> (unit, string) result
(** Parser validity, control validity (all tables exist), deparse order
    covers only declared headers, every register primitive references a
    declared register. *)

val exec_control :
  ?trace:Control.trace_event list ref ->
  ?label_counters:(string -> int ref) ->
  t ->
  Phv.t ->
  unit
(** Interpret the control against the program's own table and register
    environments — the reference path. *)

val compile_control : ?label_counters:(string -> int ref) -> t -> Control.compiled
(** Precompile the control against the same environments; run with
    {!Control.run_compiled}. [label_counters] (the per-NF telemetry
    hook) is resolved per label at compile time. *)

val resources : t -> Resources.t
(** Control demand plus register SRAM. *)

val pp : Format.formatter -> t -> unit

val empty : name:string -> decls:Hdr.decl list -> parser:Parser_graph.t -> t
(** A pass-through program: no tables, empty control. *)
