(* Slot-indexed PHV: [names] maps header name -> slot in [insts]. Copies
   share the (immutable-in-practice) [names] table — [add_decl] clones it
   first when this PHV doesn't own it — so the compiled fast accessors
   below can cache a slot per physically-distinct table and hit an array
   read on every packet instead of hashing strings. *)
type t = {
  mutable names : (string, int) Hashtbl.t;
  mutable owned : bool;
  mutable insts : Hdr.inst array;
  mutable rev_order : string list;
}

let order t = List.rev t.rev_order

let add_decl t (d : Hdr.decl) =
  match Hashtbl.find_opt t.names d.Hdr.name with
  | Some slot ->
      if not (Hdr.equal_decl (Hdr.decl_of t.insts.(slot)) d) then
        invalid_arg
          (Printf.sprintf "Phv.add_decl: conflicting declaration for %s"
             d.Hdr.name)
  | None ->
      if not t.owned then begin
        t.names <- Hashtbl.copy t.names;
        t.owned <- true
      end;
      let slot = Array.length t.insts in
      Hashtbl.replace t.names d.Hdr.name slot;
      t.insts <- Array.append t.insts [| Hdr.inst d |];
      t.rev_order <- d.Hdr.name :: t.rev_order

let create decls =
  let t =
    { names = Hashtbl.create 16; owned = true; insts = [||]; rev_order = [] }
  in
  List.iter
    (fun (d : Hdr.decl) ->
      if Hashtbl.mem t.names d.Hdr.name then
        invalid_arg
          (Printf.sprintf "Phv.create: duplicate declaration %s" d.Hdr.name)
      else add_decl t d)
    decls;
  t

let decls t =
  List.map (fun n -> Hdr.decl_of t.insts.(Hashtbl.find t.names n)) (order t)

let inst t name = t.insts.(Hashtbl.find t.names name)

let has t name = Hashtbl.mem t.names name

let is_valid t name =
  match Hashtbl.find_opt t.names name with
  | Some slot -> Hdr.is_valid t.insts.(slot)
  | None -> false

let set_valid t name = Hdr.set_valid (inst t name)
let set_invalid t name = Hdr.set_invalid (inst t name)
let get t (r : Fieldref.t) = Hdr.get (inst t r.Fieldref.hdr) r.Fieldref.field
let get_int t r = Bitval.to_int (get t r)
let set t (r : Fieldref.t) v = Hdr.set (inst t r.Fieldref.hdr) r.Fieldref.field v

let set_int t r v =
  let w = Hdr.field_width (Hdr.decl_of (inst t r.Fieldref.hdr)) r.Fieldref.field in
  set t r (Bitval.of_int ~width:w v)

let copy t =
  (* The source loses ownership too: once a copy shares [names], neither
     side may mutate it in place. *)
  t.owned <- false;
  {
    names = t.names;
    owned = false;
    insts = Array.map Hdr.copy t.insts;
    rev_order = t.rev_order;
  }

let equal a b =
  List.length a.rev_order = List.length b.rev_order
  && List.for_all
       (fun name ->
         match Hashtbl.find_opt b.names name with
         | Some slot -> Hdr.equal_inst (inst a name) b.insts.(slot)
         | None -> false)
       a.rev_order

(* --- Compiled accessors: a closure per field reference with a small
   cache of (names table identity -> slot, field position). A packet
   pipeline alternates between a handful of template layouts (one per
   pipelet), so 4 entries cover the working set; a miss falls back to
   the hash lookups and refills round-robin. --- *)

let cache_size = 8

type slot_cache = {
  ctbl : (string, int) Hashtbl.t option array;
  cslot : int array;
  cidx : int array;
  mutable victim : int;
}

let fresh_cache () =
  {
    ctbl = Array.make cache_size None;
    cslot = Array.make cache_size 0;
    cidx = Array.make cache_size 0;
    victim = 0;
  }

(* Returns [slot * 65536 + field_index]; raises [Not_found] like the
   uncached path for an unknown header or field. *)
let resolve cache (r : Fieldref.t) t =
  let rec probe i =
    if i >= cache_size then begin
      let slot = Hashtbl.find t.names r.Fieldref.hdr in
      let fidx =
        Hdr.field_index (Hdr.decl_of t.insts.(slot)) r.Fieldref.field
      in
      let k = cache.victim in
      cache.victim <- (k + 1) mod cache_size;
      cache.ctbl.(k) <- Some t.names;
      cache.cslot.(k) <- slot;
      cache.cidx.(k) <- fidx;
      (slot lsl 16) lor fidx
    end
    else
      match cache.ctbl.(i) with
      | Some tb when tb == t.names -> (cache.cslot.(i) lsl 16) lor cache.cidx.(i)
      | _ -> probe (i + 1)
  in
  probe 0

(* Header-validity accessor: caches name -> slot; an absent header is
   not cached (and reports invalid, like {!is_valid}). *)
let fast_valid h =
  let cache = fresh_cache () in
  fun t ->
    let rec probe i =
      if i >= cache_size then
        match Hashtbl.find_opt t.names h with
        | None -> false
        | Some slot ->
            let k = cache.victim in
            cache.victim <- (k + 1) mod cache_size;
            cache.ctbl.(k) <- Some t.names;
            cache.cslot.(k) <- slot;
            Hdr.is_valid t.insts.(slot)
      else
        match cache.ctbl.(i) with
        | Some tb when tb == t.names -> Hdr.is_valid t.insts.(cache.cslot.(i))
        | _ -> probe (i + 1)
    in
    probe 0

(* Header-instance accessor: caches name -> slot; raises [Not_found]
   for an unknown header like {!inst}. *)
let fast_inst h =
  let cache = fresh_cache () in
  fun t ->
    let rec probe i =
      if i >= cache_size then begin
        let slot = Hashtbl.find t.names h in
        let k = cache.victim in
        cache.victim <- (k + 1) mod cache_size;
        cache.ctbl.(k) <- Some t.names;
        cache.cslot.(k) <- slot;
        t.insts.(slot)
      end
      else
        match cache.ctbl.(i) with
        | Some tb when tb == t.names -> t.insts.(cache.cslot.(i))
        | _ -> probe (i + 1)
    in
    probe 0

let fast_get r =
  let cache = fresh_cache () in
  fun t ->
    let p = resolve cache r t in
    Hdr.get_at t.insts.(p lsr 16) (p land 0xffff)

let fast_set r =
  let cache = fresh_cache () in
  fun t v ->
    let p = resolve cache r t in
    Hdr.set_at t.insts.(p lsr 16) (p land 0xffff) v

let fast_get_int r =
  let g = fast_get r in
  fun t -> Bitval.to_int (g t)

let fast_set_int r =
  let s = fast_set r in
  fun t v -> s t (Bitval.of_int ~width:64 v)

let pp ppf t =
  List.iter
    (fun name ->
      let i = inst t name in
      if Hdr.is_valid i then Format.fprintf ppf "%a@\n" Hdr.pp_inst i)
    (order t)
