type t = {
  mutable prio : int array;
  mutable data : int array;
  mutable size : int;
}

let create hint =
  let cap = max 16 hint in
  { prio = Array.make cap 0; data = Array.make cap 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0
let clear t = t.size <- 0

let grow t =
  let cap = 2 * Array.length t.prio in
  let prio = Array.make cap 0 and data = Array.make cap 0 in
  Array.blit t.prio 0 prio 0 t.size;
  Array.blit t.data 0 data 0 t.size;
  t.prio <- prio;
  t.data <- data

let swap t i j =
  let p = t.prio.(i) and d = t.data.(i) in
  t.prio.(i) <- t.prio.(j);
  t.data.(i) <- t.data.(j);
  t.prio.(j) <- p;
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(i) < t.prio.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.prio.(l) < t.prio.(!smallest) then smallest := l;
  if r < t.size && t.prio.(r) < t.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~prio payload =
  if t.size = Array.length t.prio then grow t;
  t.prio.(t.size) <- prio;
  t.data.(t.size) <- payload;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let p = t.prio.(0) and d = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prio.(0) <- t.prio.(t.size);
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (p, d)
  end
