(** Network-function definitions against Dejavu's control-block
    programming interface (§3.1): an NF supplies its parser slice, its
    tables, and a control body over the [hdr] argument the generic
    parser instantiates. Platform metadata never appears — NFs talk to
    the framework exclusively through the SFC header fields. *)

type gate =
  | Sfc_indexed
      (** Normal NF: the framework wraps the body in a
          [check_nextNF] gate keyed on (service path id, service index)
          and bumps the index after it runs. *)
  | On_missing_sfc
      (** A classifier-style NF that runs when the packet carries no SFC
          header yet (and is expected to push one). *)

type t = {
  name : string;
  description : string;
  parser : P4ir.Parser_graph.t;
      (** the NF's own parser DAG, with canonical (header@offset) ids *)
  tables : P4ir.Table.t list;  (** unprefixed names; entries preinstalled *)
  registers : P4ir.Register.t list;
      (** stateful externs; names must be globally unique across the
          deployment (convention: prefix with the NF name) *)
  body : P4ir.Control.block;  (** references unprefixed table names *)
  gate : gate;
  state_tables : string list;
      (** the {!State_store} table names this NF's control plane
          registers when the runtime's state knob is on (convention:
          ["<nf>.<what>"]) — declarative metadata for operators and
          docs; registration itself happens in the NF's handler /
          helper against the runtime's store *)
}

val make :
  name:string ->
  description:string ->
  parser:P4ir.Parser_graph.t ->
  tables:P4ir.Table.t list ->
  ?registers:P4ir.Register.t list ->
  body:P4ir.Control.block ->
  ?gate:gate ->
  ?state_tables:string list ->
  unit ->
  t
(** Validates: table names unique, body references only own tables and
    registers, the parser validates. Raises [Invalid_argument]
    otherwise. *)

val find_register : t -> string -> P4ir.Register.t option

val table_env : t -> P4ir.Control.table_env
val control : t -> P4ir.Control.t
(** The body as a control named [<name>_control]. *)

val resources : t -> P4ir.Resources.t
(** The "compiler report" for this NF alone: stage lower bound, memory,
    crossbar, VLIW demand. *)

val find_table : t -> string -> P4ir.Table.t option
val pp : Format.formatter -> t -> unit

type registry = (string * (unit -> (t, string) result)) list
(** NF constructors by name; a fresh instance per compile so table state
    is never shared between deployments. Constructors return [Error]
    when seeding their tables fails (capacity, malformed rule) — the
    result-form {!P4ir.Table.add_entry} convention — rather than
    raising. *)

val instantiate : registry -> string -> (t, string) result
(** Run the named constructor; its error (if any) is prefixed with the
    NF name. *)
