type table_op =
  | Add of P4ir.Table.entry
  | Mod of P4ir.Table.entry
  | Del of P4ir.Table.entry
  | Clear

type op = Table of string * table_op | Reg_reset of string

let apply_table tbl top =
  match top with
  | Add e -> P4ir.Table.add_entry tbl e
  | Mod e -> P4ir.Table.mod_entry tbl e
  | Del e -> P4ir.Table.del_entry tbl e
  | Clear ->
      P4ir.Table.clear tbl;
      Ok ()

let apply chip o =
  match o with
  | Table (name, top) -> (
      match Asic.Chip.find_table chip name with
      | None -> Error (Printf.sprintf "ctrl: no table named %s" name)
      | Some tbl -> apply_table tbl top)
  | Reg_reset name -> (
      match Asic.Chip.find_register chip name with
      | None -> Error (Printf.sprintf "ctrl: no register named %s" name)
      | Some r ->
          P4ir.Register.clear r;
          Ok ())

let apply_all chip ops =
  let rec go i = function
    | [] -> Ok i
    | o :: rest -> (
        match apply chip o with
        | Ok () -> go (i + 1) rest
        | Error e -> Error (Printf.sprintf "op %d: %s" i e))
  in
  go 0 ops

(* --- Update queue --- *)

type batch = { id : int; ops : op list; submitted_ns : int64 }

type queue = {
  mu : Mutex.t;
  mutable pending_rev : batch list; (* newest first *)
  mutable next_id : int;
  mutable results_ : (int * (int, string) result) list; (* newest first *)
}

let history_cap = 256

let queue () =
  { mu = Mutex.create (); pending_rev = []; next_id = 0; results_ = [] }

let locked q f =
  Mutex.lock q.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.mu) f

let submit q ops =
  (* Stamp outside the lock — the clock read needs no protection and
     keeps the critical section minimal. *)
  let submitted_ns = Telemetry.Tclock.now_ns () in
  locked q (fun () ->
      let id = q.next_id in
      q.next_id <- id + 1;
      q.pending_rev <- { id; ops; submitted_ns } :: q.pending_rev;
      id)

let pending q = locked q (fun () -> List.length q.pending_rev)

let drain q =
  locked q (fun () ->
      let bs = List.rev q.pending_rev in
      q.pending_rev <- [];
      bs)

let note q id r =
  locked q (fun () ->
      q.results_ <- (id, r) :: q.results_;
      if List.length q.results_ > history_cap then
        q.results_ <- List.filteri (fun i _ -> i < history_cap) q.results_)

let results q = locked q (fun () -> q.results_)

(* --- State digest ---

   Canonical serialization of control-plane-visible state into a
   buffer, CRC-32 over the whole thing. Patterns are emitted as stored
   (the match key is canonicalized at first install and never rewritten
   by Mod), so two chips with the same op history serialize
   byte-identically. Not a perf path — runs at verification points. *)

let add_bv buf v =
  Buffer.add_string buf
    (Printf.sprintf "%d:%Lx;" (P4ir.Bitval.width v) (P4ir.Bitval.to_int64 v))

let add_pattern buf (p : P4ir.Table.pattern) =
  match p with
  | M_exact v ->
      Buffer.add_string buf "E";
      add_bv buf v
  | M_ternary { value; mask } ->
      Buffer.add_string buf "T";
      add_bv buf value;
      add_bv buf mask
  | M_lpm { value; prefix_len } ->
      Buffer.add_string buf (Printf.sprintf "L%d," prefix_len);
      add_bv buf value
  | M_range { lo; hi } ->
      Buffer.add_string buf "R";
      add_bv buf lo;
      add_bv buf hi
  | M_any -> Buffer.add_string buf "A;"

let add_entry_ser buf (e : P4ir.Table.entry) =
  Buffer.add_string buf (Printf.sprintf "|p%d[" e.priority);
  List.iter (add_pattern buf) e.patterns;
  Buffer.add_string buf (Printf.sprintf "]%s(" e.action);
  List.iter (add_bv buf) e.args;
  Buffer.add_string buf ")"

let add_table_ser buf tbl =
  Buffer.add_string buf (Printf.sprintf "table %s{" (P4ir.Table.name tbl));
  List.iter (add_entry_ser buf) (P4ir.Table.entries tbl);
  Buffer.add_string buf "}"

let add_register_ser buf r =
  Buffer.add_string buf (Printf.sprintf "reg %s{" (P4ir.Register.name r));
  P4ir.Register.fold
    (fun i v () ->
      Buffer.add_string buf (Printf.sprintf "%d=" i);
      add_bv buf v)
    r ();
  Buffer.add_string buf "}"

let crc_of_buffer buf =
  let b = Buffer.to_bytes buf in
  Netpkt.Bytes_util.crc32 b ~off:0 ~len:(Bytes.length b)

let table_digest tbl =
  let buf = Buffer.create 256 in
  add_table_ser buf tbl;
  crc_of_buffer buf

let state_digest chip =
  let buf = Buffer.create 4096 in
  List.iter
    (fun pl ->
      let prog = Asic.Pipelet.program pl in
      List.iter (add_table_ser buf) prog.P4ir.Program.tables;
      List.iter (add_register_ser buf) prog.P4ir.Program.registers)
    (Asic.Chip.pipelets chip);
  crc_of_buffer buf

let pp_op ppf = function
  | Table (name, Add e) ->
      Format.fprintf ppf "add %s prio=%d %s" name e.P4ir.Table.priority
        e.P4ir.Table.action
  | Table (name, Mod e) ->
      Format.fprintf ppf "mod %s prio=%d %s" name e.P4ir.Table.priority
        e.P4ir.Table.action
  | Table (name, Del e) ->
      Format.fprintf ppf "del %s prio=%d" name e.P4ir.Table.priority
  | Table (name, Clear) -> Format.fprintf ppf "clear %s" name
  | Reg_reset name -> Format.fprintf ppf "reg-reset %s" name
