(** Binary min-heap over integer priorities with integer payloads — the
    Dijkstra frontier used by {!Traversal.solve} and {!Cluster.solve}.
    Stale entries are handled by the caller (lazy deletion): pushing the
    same payload again with a better priority is the expected idiom. *)

type t

val create : int -> t
(** [create capacity_hint] — the heap grows past the hint on demand. *)

val length : t -> int
val is_empty : t -> bool

val push : t -> prio:int -> int -> unit

val pop : t -> (int * int) option
(** Cheapest [(prio, payload)]; ties broken arbitrarily (but
    deterministically). *)

val clear : t -> unit
(** Empty the heap, keeping its storage for reuse. *)
