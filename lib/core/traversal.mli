(** Physical traversal of a chain over a placement: which pipelets a
    packet visits and how many recirculations/resubmissions it needs
    (the quantity Fig. 6 counts and §3.3's optimizer minimizes).

    The model enforces the paper's Tofino constraints: transitions
    happen only at pipe boundaries; an ingress can reach any egress
    through the traffic manager; recirculation returns a packet from an
    egress pipe to the ingress pipe of the same pipeline; resubmission
    replays the same ingress pipe. *)

type ingress_action = To_egress of int | Resubmit

type egress_action = Emit | Recirc

type step =
  | Ingress_step of {
      pipeline : int;
      idx_in : int;
      idx_out : int;  (** chain position before/after this pass *)
      action : ingress_action;
    }
  | Egress_step of {
      pipeline : int;
      idx_in : int;
      idx_out : int;
      action : egress_action;
    }

type path = { steps : step list; recircs : int; resubmits : int }

val advance : Layout.pipelet_layout -> string list -> int -> int
(** [advance layout chain idx]: the chain position after one pass
    through a pipelet with this layout — consumes the longest prefix of
    [chain] from [idx] whose members appear at strictly increasing
    layout positions, taking at most one member per [Par] group. *)

val solve :
  ?start_idx:int ->
  Asic.Spec.t ->
  Layout.t ->
  entry_pipeline:int ->
  exit_port:int ->
  string list ->
  path option
(** Cheapest traversal, or [None] when the chain cannot complete — e.g.
    an NF is unplaced. [start_idx] (default 0) starts the walk mid-chain
    at [entry_pipeline]'s ingress — how routing entries for packets
    resuming after a control-plane round trip are derived. A resubmission costs 0.9 of a recirculation:
    both replay a pipe pass and cut effective throughput, but
    recirculation additionally consumes loopback-port bandwidth.

    Assumes each NF appears in at most one pipelet's layout — true of
    every layout the placement strategies and compiler produce. *)

val solve_reference :
  ?start_idx:int ->
  Asic.Spec.t ->
  Layout.t ->
  entry_pipeline:int ->
  exit_port:int ->
  string list ->
  path option
(** The original O(V²) array-scan Dijkstra with per-call list walks,
    kept as a test oracle and benchmark baseline for the heap-based
    [solve]. Same contract; identical optimal costs. *)

val cost :
  Asic.Spec.t ->
  Layout.t ->
  entry_pipeline:int ->
  Chain.t list ->
  float option
(** Weighted transition cost over all chains — the §3.3 objective
    (recirculations) extended with resubmissions at 0.9 weight; [None]
    if any chain is infeasible. *)

val cost_reference :
  Asic.Spec.t ->
  Layout.t ->
  entry_pipeline:int ->
  Chain.t list ->
  float option
(** [cost] computed with {!solve_reference} — the oracle scoring path. *)

type cache
(** Memo table for {!cost_cached}. A chain's cheapest traversal depends
    on the layout only through its own NFs' coordinates (pipelet, group,
    slot, group kind), so entries are keyed by [(path_id, fingerprint of
    those coordinates)]: moving an NF re-solves only the chains that
    contain it. Bounded; a full table resets and refills. *)

val cache_create : unit -> cache

val cache_stats : cache -> int * int
(** [(hits, misses)] since creation. *)

val chain_transition_cost : Chain.t -> recircs:int -> resubmits:int -> float
(** The chain's weighted contribution to the objective — the one
    definition shared by every scoring path, so incremental re-scoring
    (summing per-chain contributions left-to-right in chain order)
    stays bit-identical to a from-scratch {!cost}. *)

val chain_fingerprint :
  (string, Layout.coord) Hashtbl.t -> entry_pipeline:int -> Chain.t -> string
(** The memo key for one chain over an NF-coordinate index: serializes
    the chain's [path_id], the entry pipeline and each member NF's
    {!Layout.coord}. Exposed so tests can prove an incrementally
    maintained index fingerprints identically to a fresh
    {!Layout.index}. *)

val chain_counts_cached :
  cache ->
  Asic.Spec.t ->
  index:(string, Layout.coord) Hashtbl.t ->
  entry_pipeline:int ->
  Chain.t ->
  (int * int) option
(** [(recircs, resubmits)] of one chain's cheapest traversal over the
    given coordinate index, memoized by {!chain_fingerprint}. The
    per-chain building block behind {!cost_cached}, called directly by
    the move-diff annealer which re-scores only the chains a move
    touched. *)

val chain_key :
  (string, Layout.coord) Hashtbl.t ->
  Asic.Spec.t ->
  entry_pipeline:int ->
  Chain.t ->
  int array
(** The canonicalized memo key behind {!chain_counts_keyed}: one packed
    int per chain NF recording its location and grouping {e up to the
    symmetries the solver cannot observe}. Groups and slots are replaced
    by their ranks among the chain's own NFs at that location (the
    solver never compares them against anything else), so unrelated NFs
    shifting a pipelet's absolute slots leave the key unchanged;
    pipeline numbers are renamed to first-use order with the entry
    pipeline fixed and the exit pipe recorded last (the transition graph
    is symmetric across pipelines), so isomorphic placements on
    different pipelines share one key. Equal keys imply equal counts. *)

type kcache
(** Memo table for {!chain_counts_keyed}, keyed by {!chain_key}. The
    normalized keys make it strictly coarser (more hits) than {!cache}'s
    absolute-coordinate fingerprints; it backs the move-diff annealer
    while {!cache} remains the full-rebuild path's. Bounded; a full
    table resets and refills. *)

val kcache_create : unit -> kcache

val kcache_stats : kcache -> int * int
(** [(hits, misses)] since creation. *)

val chain_counts_keyed :
  kcache ->
  Asic.Spec.t ->
  index:(string, Layout.coord) Hashtbl.t ->
  entry_pipeline:int ->
  Chain.t ->
  (int * int) option
(** Same values as {!chain_counts_cached} (both memoize
    [solve_counts]), memoized by {!chain_key} instead of the string
    fingerprint. *)

val cost_cached :
  cache ->
  Asic.Spec.t ->
  Layout.t ->
  entry_pipeline:int ->
  Chain.t list ->
  float option
(** Same value as {!cost}, memoized per chain — the annealer's inner
    loop. *)

val pp_path : Format.formatter -> path -> unit
