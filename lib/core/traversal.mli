(** Physical traversal of a chain over a placement: which pipelets a
    packet visits and how many recirculations/resubmissions it needs
    (the quantity Fig. 6 counts and §3.3's optimizer minimizes).

    The model enforces the paper's Tofino constraints: transitions
    happen only at pipe boundaries; an ingress can reach any egress
    through the traffic manager; recirculation returns a packet from an
    egress pipe to the ingress pipe of the same pipeline; resubmission
    replays the same ingress pipe. *)

type ingress_action = To_egress of int | Resubmit

type egress_action = Emit | Recirc

type step =
  | Ingress_step of {
      pipeline : int;
      idx_in : int;
      idx_out : int;  (** chain position before/after this pass *)
      action : ingress_action;
    }
  | Egress_step of {
      pipeline : int;
      idx_in : int;
      idx_out : int;
      action : egress_action;
    }

type path = { steps : step list; recircs : int; resubmits : int }

val advance : Layout.pipelet_layout -> string list -> int -> int
(** [advance layout chain idx]: the chain position after one pass
    through a pipelet with this layout — consumes the longest prefix of
    [chain] from [idx] whose members appear at strictly increasing
    layout positions, taking at most one member per [Par] group. *)

val solve :
  ?start_idx:int ->
  Asic.Spec.t ->
  Layout.t ->
  entry_pipeline:int ->
  exit_port:int ->
  string list ->
  path option
(** Cheapest traversal, or [None] when the chain cannot complete — e.g.
    an NF is unplaced. [start_idx] (default 0) starts the walk mid-chain
    at [entry_pipeline]'s ingress — how routing entries for packets
    resuming after a control-plane round trip are derived. A resubmission costs 0.9 of a recirculation:
    both replay a pipe pass and cut effective throughput, but
    recirculation additionally consumes loopback-port bandwidth.

    Assumes each NF appears in at most one pipelet's layout — true of
    every layout the placement strategies and compiler produce. *)

val solve_reference :
  ?start_idx:int ->
  Asic.Spec.t ->
  Layout.t ->
  entry_pipeline:int ->
  exit_port:int ->
  string list ->
  path option
(** The original O(V²) array-scan Dijkstra with per-call list walks,
    kept as a test oracle and benchmark baseline for the heap-based
    [solve]. Same contract; identical optimal costs. *)

val cost :
  Asic.Spec.t ->
  Layout.t ->
  entry_pipeline:int ->
  Chain.t list ->
  float option
(** Weighted transition cost over all chains — the §3.3 objective
    (recirculations) extended with resubmissions at 0.9 weight; [None]
    if any chain is infeasible. *)

val cost_reference :
  Asic.Spec.t ->
  Layout.t ->
  entry_pipeline:int ->
  Chain.t list ->
  float option
(** [cost] computed with {!solve_reference} — the oracle scoring path. *)

type cache
(** Memo table for {!cost_cached}. A chain's cheapest traversal depends
    on the layout only through its own NFs' coordinates (pipelet, group,
    slot, group kind), so entries are keyed by [(path_id, fingerprint of
    those coordinates)]: moving an NF re-solves only the chains that
    contain it. Bounded; a full table resets and refills. *)

val cache_create : unit -> cache

val cache_stats : cache -> int * int
(** [(hits, misses)] since creation. *)

val cost_cached :
  cache ->
  Asic.Spec.t ->
  Layout.t ->
  entry_pipeline:int ->
  Chain.t list ->
  float option
(** Same value as {!cost}, memoized per chain — the annealer's inner
    loop. *)

val pp_path : Format.formatter -> path -> unit
