(** Bounded per-flow state for stateful NFs: one typed key/value store
    behind every NF's dynamic state (NAT bindings, LB sessions,
    per-tenant counts, offender ledgers), so a million-flow workload
    runs in flat memory instead of unbounded [Hashtbl]/[Table] growth.

    A store ({!t}) is a collection of named {e tables}, each
    capacity-bounded with LRU eviction and optional TTL aging, created
    once per runtime (per shard, under sharding) from the engine's
    [state] knob. NFs register their tables through {!table} with
    typed codecs ({!conv}); entries are held in a canonical encoded
    form, which is what makes {!snapshot}/{!restore} (warm restart),
    {!digest} (live ≡ cold gating) and {!migrate} (re-homing when the
    shard count changes) uniform across every NF's state.

    Time is logical and explicit: the store's clock only moves when the
    owner calls {!advance} (the runtime's
    [Runtime.advance_state_time]), so TTL expiry is deterministic —
    two runs that advance the clock at the same points expire the same
    entries in the same order, and digest gates stay meaningful.

    Eviction is observable: a table's [on_evict] callback fires for
    every capacity eviction and TTL expiration (not for explicit
    {!remove}), letting the owner mirror the eviction into the data
    plane — e.g. the LB deletes the evicted flow's session entry
    through [Ctrl], which bumps the table's epoch and thereby
    invalidates any cached verdict for that flow. Callbacks must not
    re-enter the store. *)

type t

type config = {
  capacity : int;  (** max live entries per table; clamped to >= 1 *)
  ttl_ns : int64;
      (** idle time (on the logical clock) after which an entry
          expires; [<= 0] disables aging *)
}

val create : ?now_ns:int64 -> config -> t
(** An empty store whose logical clock starts at [now_ns] (default 0). *)

val config : t -> config
val now : t -> int64

val advance : t -> int64 -> int
(** Move the logical clock forward and sweep every table for expired
    entries (oldest-touched first, tables in name order), firing
    [on_evict Expired] for each. Returns the number expired. *)

(** {2 Typed tables} *)

(** Why an entry left a table involuntarily. *)
type evict_reason =
  | Capacity  (** LRU eviction: a new entry needed the slot *)
  | Expired  (** TTL aging (on lookup or an {!advance} sweep) *)

type ('k, 'v) table

(** A codec to and from the canonical encoded (string) form entries are
    stored in. [dec] must invert [enc]; entries whose stored bytes no
    longer decode are skipped by {!fold} and get no typed callback. *)
type 'a conv = { enc : 'a -> string; dec : string -> ('a, string) result }

module Conv : sig
  val int : int conv
  val int64 : int64 conv
  val string : string conv
  val ip4 : Netpkt.Ip4.t conv
  val five_tuple : Netpkt.Flow.five_tuple conv
  (** 13 bytes in header order (src, dst, proto, sport, dport). *)
end

val table :
  t ->
  name:string ->
  key:'k conv ->
  value:'v conv ->
  ?shard_hint:('k -> int64) ->
  ?on_evict:(evict_reason -> 'k -> 'v -> unit) ->
  unit ->
  ('k, 'v) table
(** Find-or-create the named table. Flow-keyed state should pass the
    canonical shard hash ({!Netpkt.Flow.hash_five_tuple_symmetric}) as
    [shard_hint] so {!migrate} re-homes each entry to the shard that
    owns its flow; the default homes by CRC-32 of the encoded key.
    Re-registering an existing name (each shard replica re-binds its
    NF handlers per batch) adopts the existing entries and replaces
    the callback and shard hint — entries' homes are recomputed. *)

val insert : ('k, 'v) table -> 'k -> 'v -> unit
(** Insert or overwrite, touching the entry (MRU). At capacity, the
    LRU entry is evicted first ([on_evict Capacity]). *)

val find : ('k, 'v) table -> 'k -> 'v option
(** Lookup; touches on hit. An entry whose TTL has lapsed is expired
    here ([on_evict Expired]) and reported as a miss. *)

val remove : ('k, 'v) table -> 'k -> unit
(** Drop an entry without firing [on_evict] — the caller is already
    acting on it. No-op when absent. *)

val length : ('k, 'v) table -> int

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) table -> 'a -> 'a
(** Over live entries, least-recently-used first (the materialization
    and snapshot order). Entries that fail to decode are skipped. *)

type table_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;  (** capacity (LRU) evictions *)
  mutable expirations : int;  (** TTL expirations *)
}

val stats : ('k, 'v) table -> table_stats

val per_table : t -> (string * int * table_stats) list
(** Every table's (name, occupancy, stats), sorted by name — what the
    runtime sums across shard stores into the [state.*] telemetry
    gauges. *)

(** {2 Snapshot / restore (warm restart)} *)

type snapshot

val snapshot : t -> snapshot
(** The full store in canonical order (tables by name, entries
    oldest-touched first) with the logical clock — LRU order and TTL
    stamps survive the round trip. *)

val restore : t -> snapshot -> unit
(** Replace the contents of every snapshotted table (other tables are
    untouched); creates tables that do not exist yet — a later
    {!table} registration adopts them. The clock moves forward to the
    snapshot's if that is ahead. Entries beyond a table's capacity
    evict as usual. *)

val snapshot_to_string : snapshot -> string
val snapshot_of_string : string -> (snapshot, string) result
(** A stable text serialization of {!snapshot}, so a warm restart can
    round-trip through a file. *)

(** {2 Digest and migration} *)

val digest : t array -> int64
(** Order-insensitive CRC-32 over the union of the stores' entries
    (tables by name, entries by encoded key/value; clocks and LRU
    stamps excluded): the canonical "same state" check for live
    re-shard ≡ cold-built gates. *)

val migrate : from:t array -> into:t array -> unit
(** Re-home every entry: each lands in
    [into.(shard mod Array.length into)] by its shard hint, merged
    across sources in touch-stamp order so the targets' LRU order is
    stamp-faithful and deterministic. Stamps, values and callbacks
    (where the target lacks a registration) carry over; targets'
    clocks advance to the sources' maximum. Entries beyond a target's
    capacity evict as usual. What [Runtime.configure] runs when
    [Engine.domains] changes under a live bounded store. *)
