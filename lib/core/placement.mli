(** NF placement optimization (§3.3): assign NFs to pipelets and choose
    their on-pipelet composition to minimize the weighted recirculation
    count over all chains, subject to stage capacity.

    The paper leaves the general optimizer as ongoing work; we provide
    four strategies and cross-validate the heuristics against the
    exhaustive optimum on small instances. *)

type strategy =
  | Naive
      (** place NFs in chain order, walking pipelets ingress 0, egress 0,
          ingress 1, egress 1, ... — the paper's strawman *)
  | Greedy
      (** place NFs in chain order, each on the pipelet that minimizes
          the weighted cost of the already-placed chain prefixes *)
  | Anneal of { iterations : int; seed : int; initial_temp : float }
  | Exhaustive
      (** enumerate every assignment; exponential, fine for m <= 8 *)

val default_anneal : strategy

type input = {
  spec : Asic.Spec.t;
  resources_of : string -> P4ir.Resources.t;  (** per-NF compiler report *)
  chains : Chain.t list;
  entry_pipeline : int;
  pinned : (string * Asic.Pipelet.id) list;
      (** NFs with a fixed location (e.g. the classifier on the entry
          ingress) *)
  framework_stages_per_nf : int;
      (** stage overhead of the check_nextNF/check_sfcFlags wrapping *)
  framework_stages_fixed : int;  (** branching table etc., per pipelet *)
}

val stages_needed : input -> Layout.pipelet_layout -> int
(** NF stages plus framework overhead for one pipelet. *)

val feasible : input -> Layout.t -> bool
(** Every pipelet's layout fits its stage budget. *)

val build_layout : input -> (string * Asic.Pipelet.id) list -> Layout.t option
(** Turn an assignment into a layout: NFs on one pipelet are ordered by
    their earliest chain position and composed [Seq]; when that exceeds
    the stage budget the whole pipelet falls back to [Par]. [None] when
    even [Par] does not fit. *)

val evaluate : input -> Layout.t -> float option
(** The optimizer objective; [None] when infeasible. *)

val solve :
  ?reference:bool -> input -> strategy -> (Layout.t * float, string) result
(** Returns the layout and its objective value. [reference] (default
    false) scores candidates with {!Traversal.solve_reference} and no
    memo cache — the slow oracle path, kept for benchmarking and for
    proving the memoized fast path returns identical results. *)

val pp_strategy : Format.formatter -> strategy -> unit
