(** NF placement optimization (§3.3): assign NFs to pipelets and choose
    their on-pipelet composition to minimize the weighted recirculation
    count over all chains, subject to stage capacity.

    The paper leaves the general optimizer as ongoing work; we provide
    four strategies and cross-validate the heuristics against the
    exhaustive optimum on small instances. The annealer comes in two
    implementations with bit-identical per-seed trajectories: a
    full-rebuild path ({!solve_rebuild}) and the production move-diff
    path ({!solve}) that re-fits only the two pipelets a move touches.
    {!solve_parallel} runs independent seeded restarts on a
    {!Dpool.run} domain pool. *)

type strategy =
  | Naive
      (** place NFs in chain order, walking pipelets ingress 0, egress 0,
          ingress 1, egress 1, ... — the paper's strawman *)
  | Greedy
      (** place NFs in chain order, each on the pipelet that minimizes
          the weighted cost of the already-placed chain prefixes *)
  | Anneal of { iterations : int; seed : int; initial_temp : float }
  | Exhaustive
      (** enumerate every assignment; exponential, fine for m <= 8 *)

val default_anneal : strategy

type input = {
  spec : Asic.Spec.t;
  resources_of : string -> P4ir.Resources.t;  (** per-NF compiler report *)
  chains : Chain.t list;
  entry_pipeline : int;
  pinned : (string * Asic.Pipelet.id) list;
      (** NFs with a fixed location (e.g. the classifier on the entry
          ingress) *)
  framework_stages_per_nf : int;
      (** stage overhead of the check_nextNF/check_sfcFlags wrapping *)
  framework_stages_fixed : int;  (** branching table etc., per pipelet *)
}

val stages_needed : input -> Layout.pipelet_layout -> int
(** NF stages plus framework overhead for one pipelet. *)

val feasible : input -> Layout.t -> bool
(** Every pipelet's layout fits its stage budget. *)

val build_layout : input -> (string * Asic.Pipelet.id) list -> Layout.t option
(** Turn an assignment into a layout: NFs on one pipelet are ordered by
    their earliest chain position and composed [Seq]; when that exceeds
    the stage budget the whole pipelet falls back to [Par]. [None] when
    even [Par] does not fit. *)

val evaluate : input -> Layout.t -> float option
(** The optimizer objective; [None] when infeasible. *)

(** {1 Scorer backends} *)

type scorer =
  | Fast
      (** heap Dijkstra + traversal memo cache + fit memo; under
          [Anneal], the incremental move-diff loop *)
  | Reference
      (** the uncached array-scan oracle ({!Traversal.cost_reference});
          under [Anneal], the full-rebuild loop *)

(** {1 Incremental move diffs}

    The annealer's inner loop represents a candidate as a {!Move.t} and
    applies it to a {!diff} — a live layout plus its {!Layout.coord}
    index and per-chain transition counts. Applying a move re-fits only
    the source and destination pipelets, re-indexes only their NFs, and
    re-solves only the chains that touch them; the resulting layout,
    index and cost are identical to a from-scratch {!build_layout} and
    score of the moved assignment (property-tested against exactly
    that oracle). *)

module Move : sig
  type t = {
    nf : string;
    src : Asic.Pipelet.id;  (** where [nf] currently sits *)
    dst : Asic.Pipelet.id;  (** where to put it; [src = dst] is a no-op *)
  }

  val pp : Format.formatter -> t -> unit
end

type diff

val diff_create : input -> (string * Asic.Pipelet.id) list -> diff
(** A fresh diff over an assignment (pinned NFs included, in the same
    list form {!build_layout} takes), with its own [Fast] scorer
    state. *)

val diff_apply : diff -> Move.t -> [ `Applied of float | `Unfit ]
(** Apply one move. [`Applied cost] commits the new state and returns
    its objective value; [`Unfit] means the candidate is rejected — it
    would overflow a pipelet's stage budget, leave a chain unroutable,
    or not cure an infeasible starting state — and the diff is
    unchanged. Raises [Invalid_argument] if [nf] is not on [src]. *)

val diff_layout : diff -> Layout.t option
(** The current layout; [None] while some pipelet's NFs do not fit
    (possible only before the first applied move of a diff created from
    an infeasible assignment). *)

val diff_cost : diff -> float option
(** The current objective value, maintained incrementally — always
    equal to [evaluate] of {!diff_layout}. *)

val diff_index : diff -> (string, Layout.coord) Hashtbl.t
(** The live coordinate index (the incrementally-maintained
    {!Layout.index} of {!diff_layout}). Read-only; exposed so tests can
    fingerprint it against a freshly built index. *)

(** {1 Solvers} *)

val solve : ?scorer:scorer -> input -> strategy -> (Layout.t * float, string) result
(** Returns the layout and its objective value. [scorer] (default
    {!Fast}) selects the scoring backend; both backends return identical
    results — [Reference] exists for benchmarking and for proving the
    fast paths against the oracle. *)

val solve_rebuild :
  ?scorer:scorer -> input -> strategy -> (Layout.t * float, string) result
(** Like {!solve}, but [Anneal] uses the full-rebuild loop (every
    candidate rebuilt with {!build_layout} and scored whole) even under
    [Fast]. Per seed this walks the exact trajectory of {!solve} and
    returns the same layout; kept as the move-diff loop's oracle and
    benchmark baseline. *)

(** {1 Parallel restarts} *)

type restart = { seed : int; cost : float option (** [None] = failed *) }

type parallel = {
  layout : Layout.t;  (** best layout over all seeds *)
  cost : float;
  restarts : restart list;  (** per-seed outcomes, in seed-list order *)
}

val solve_parallel :
  ?scorer:scorer ->
  ?iterations:int ->
  ?initial_temp:float ->
  domains:int ->
  seeds:int list ->
  input ->
  (parallel, string) result
(** Anneal once per seed on a domain pool of at most [domains] domains
    ({!Dpool.run}) and keep the cheapest layout. Each restart owns its
    scorer state, so nothing is shared across domains. Deterministic:
    the result is independent of [domains] — restarts are reported in
    seed-list order and cost ties keep the earliest seed. [iterations]
    defaults to 4000 and [initial_temp] to 2.0 (the {!default_anneal}
    parameters). Errors when [seeds] is empty or every restart fails. *)

val pp_strategy : Format.formatter -> strategy -> unit
