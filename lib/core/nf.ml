type gate = Sfc_indexed | On_missing_sfc

type t = {
  name : string;
  description : string;
  parser : P4ir.Parser_graph.t;
  tables : P4ir.Table.t list;
  registers : P4ir.Register.t list;
  body : P4ir.Control.block;
  gate : gate;
  state_tables : string list;
}

let find_table t name =
  List.find_opt (fun tbl -> String.equal (P4ir.Table.name tbl) name) t.tables

let table_env t name = find_table t name
let control t = P4ir.Control.make (t.name ^ "_control") t.body

let find_register t rname =
  List.find_opt
    (fun r -> String.equal (P4ir.Register.name r) rname)
    t.registers

let make ~name ~description ~parser ~tables ?(registers = []) ~body
    ?(gate = Sfc_indexed) ?(state_tables = []) () =
  let t =
    { name; description; parser; tables; registers; body; gate; state_tables }
  in
  let tnames = List.map P4ir.Table.name tables in
  if List.length (List.sort_uniq String.compare tnames) <> List.length tnames
  then invalid_arg (Printf.sprintf "Nf.make %s: duplicate table names" name);
  (match P4ir.Parser_graph.validate parser with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Nf.make %s: %s" name e));
  (match P4ir.Control.validate (table_env t) (control t) with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Nf.make %s: %s" name e));
  (* Register references must resolve within the NF. *)
  List.iter
    (fun (a : P4ir.Action.t) ->
      List.iter
        (fun rname ->
          if find_register t rname = None then
            invalid_arg
              (Printf.sprintf "Nf.make %s: unknown register %s" name rname))
        (P4ir.Action.registers_used a))
    (List.concat_map P4ir.Table.actions tables
    @ List.filter_map
        (function P4ir.Control.Run prims -> Some (P4ir.Action.make "$x" prims) | _ -> None)
        body);
  t

let resources t =
  let base = P4ir.Resources.of_control (table_env t) (control t) in
  let reg_srams =
    List.fold_left
      (fun acc r -> acc + P4ir.Register.sram_blocks r)
      0 t.registers
  in
  { base with P4ir.Resources.srams = base.P4ir.Resources.srams + reg_srams }

let pp ppf t =
  Format.fprintf ppf "@[<v>// NF %s: %s@,%a@,%a@]" t.name t.description
    P4ir.Parser_graph.pp t.parser P4ir.Control.pp (control t)

type registry = (string * (unit -> (t, string) result)) list

let instantiate registry name =
  match List.assoc_opt name registry with
  | Some create ->
      Result.map_error (fun e -> Printf.sprintf "NF %S: %s" name e) (create ())
  | None -> Error (Printf.sprintf "unknown NF %S" name)
