type ingress_action = To_egress of int | Resubmit
type egress_action = Emit | Recirc

type step =
  | Ingress_step of {
      pipeline : int;
      idx_in : int;
      idx_out : int;
      action : ingress_action;
    }
  | Egress_step of {
      pipeline : int;
      idx_in : int;
      idx_out : int;
      action : egress_action;
    }

type path = { steps : step list; recircs : int; resubmits : int }

let advance layout chain idx =
  let chain = Array.of_list chain in
  let k = Array.length chain in
  (* Cursor: last consumed (group, slot); -1 = before everything. *)
  let rec go idx gi si =
    if idx >= k then idx
    else
      match Layout.position layout chain.(idx) with
      | None -> idx
      | Some (g, s) ->
          if g > gi then go (idx + 1) g s
          else if g = gi && Layout.group_kind layout g = `Seq && s > si then
            go (idx + 1) g s
          else idx
  in
  go idx (-1) (-1)

(* Dijkstra over (location, chain position) with recirculations as the
   dominant cost and resubmissions as tie-break. *)

type loc = I of int | E of int

let recirc_cost = 1000
let resubmit_cost = 900

let count_steps steps =
  let recircs =
    List.length
      (List.filter
         (function Egress_step { action = Recirc; _ } -> true | _ -> false)
         steps)
  in
  let resubmits =
    List.length
      (List.filter
         (function Ingress_step { action = Resubmit; _ } -> true | _ -> false)
         steps)
  in
  (recircs, resubmits)

(* --- reference solver ---------------------------------------------- *)

(* The original array-scan Dijkstra: O(V^2) min-extraction, per-call
   [Layout.position] list walks. Kept verbatim as the oracle the
   heap-based [solve] is property-tested against. *)

let solve_reference ?(start_idx = 0) spec layout ~entry_pipeline ~exit_port chain
    =
  let k = List.length chain in
  let n = spec.Asic.Spec.n_pipelines in
  let exit_pipe = Asic.Spec.port_pipeline spec exit_port in
  let layout_at loc =
    match loc with
    | I p -> Layout.layout_of layout { Asic.Pipelet.pipeline = p; kind = Asic.Pipelet.Ingress }
    | E p -> Layout.layout_of layout { Asic.Pipelet.pipeline = p; kind = Asic.Pipelet.Egress }
  in
  (* State encoding for the distance arrays. *)
  let state_id loc idx =
    let base = match loc with I p -> p | E p -> n + p in
    (base * (k + 1)) + idx
  in
  let n_states = 2 * n * (k + 1) in
  let dist = Array.make n_states max_int in
  let pred = Array.make n_states None in
  (* Edges out of a state: (cost, state', step describing the move). *)
  let edges loc idx =
    let idx' = advance (layout_at loc) chain idx in
    match loc with
    | I p ->
        let egress_moves =
          List.init n (fun q ->
              ( 0,
                (E q, idx'),
                Ingress_step
                  { pipeline = p; idx_in = idx; idx_out = idx'; action = To_egress q } ))
        in
        let resubmit_moves =
          if advance (layout_at (I p)) chain idx' > idx' then
            [
              ( resubmit_cost,
                (I p, idx'),
                Ingress_step
                  { pipeline = p; idx_in = idx; idx_out = idx'; action = Resubmit } );
            ]
          else []
        in
        egress_moves @ resubmit_moves
    | E q ->
        let recirc =
          [
            ( recirc_cost,
              (I q, idx'),
              Egress_step
                { pipeline = q; idx_in = idx; idx_out = idx'; action = Recirc } );
          ]
        in
        recirc
  in
  let decode s =
    let base = s / (k + 1) and idx = s mod (k + 1) in
    let loc = if base < n then I base else E (base - n) in
    (loc, idx)
  in
  let start = state_id (I entry_pipeline) (min start_idx k) in
  dist.(start) <- 0;
  let visited = Array.make n_states false in
  let rec loop () =
    (* Extract the cheapest unvisited state. *)
    let best = ref None in
    Array.iteri
      (fun s d ->
        if (not visited.(s)) && d < max_int then
          match !best with
          | Some (_, bd) when bd <= d -> ()
          | _ -> best := Some (s, d))
      dist;
    match !best with
    | None -> ()
    | Some (s, d) ->
        visited.(s) <- true;
        let loc, idx = decode s in
        List.iter
          (fun (c, (loc', idx'), step) ->
            let s' = state_id loc' idx' in
            if d + c < dist.(s') then begin
              dist.(s') <- d + c;
              pred.(s') <- Some (s, step)
            end)
          (edges loc idx);
        loop ()
  in
  loop ();
  (* Terminal: an egress state on the exit pipeline whose pass completes
     the chain. *)
  let terminal = ref None in
  let check_terminal s =
    if dist.(s) < max_int then begin
      let loc, idx = decode s in
      match loc with
      | E q when q = exit_pipe ->
          let idx' = advance (layout_at loc) chain idx in
          if idx' = k then begin
            match !terminal with
            | Some (_, d, _) when d <= dist.(s) -> ()
            | _ ->
                let final_step =
                  Egress_step
                    { pipeline = q; idx_in = idx; idx_out = idx'; action = Emit }
                in
                terminal := Some (s, dist.(s), final_step)
          end
      | E _ | I _ -> ()
    end
  in
  for s = 0 to n_states - 1 do
    check_terminal s
  done;
  match !terminal with
  | None -> None
  | Some (s, _, final_step) ->
      let rec unwind s acc =
        match pred.(s) with
        | None -> acc
        | Some (s', step) -> unwind s' (step :: acc)
      in
      let steps = unwind s [] @ [ final_step ] in
      let recircs, resubmits = count_steps steps in
      Some { steps; recircs; resubmits }

(* --- fast solver ---------------------------------------------------- *)

(* Heap-based Dijkstra over the same state graph. The chain's NF
   coordinates are hoisted into int arrays up front, so the inner loop
   touches only ints: [adv.(l).(i)] is the chain position after one
   pass through location [l] (ingress p = l, egress p = n + p) starting
   at position [i]. Predecessors are stored as int codes (To_egress q =
   q, Resubmit = n, Recirc = n + 1) so a solve allocates no step records
   until a caller asks for the step list.

   The solver core is parameterized by [lookup : nf -> (l, g, s, seq)
   option] — the NF's location id, (group, slot) there, and whether the
   group runs sequentially — instead of the layout itself, so the memo
   cache can reuse the index it already builds for fingerprints. This
   assumes each NF is placed at most once, which holds for every layout
   the placement solvers and compiler produce. *)

type core = {
  k : int;
  n : int;
  exit_pipe : int;
  adv : int array array;
  dist : int array;
  pred_state : int array;
  pred_code : int array;
  terminal : int;  (** terminal state id, or -1 when unroutable *)
}

(* [Layout.index] coordinates as the solver core's int lookup: location
   id (ingress p = p, egress p = n + p), group, slot, seq?. *)
let lookup_of_index n idx nf =
  match Hashtbl.find_opt idx nf with
  | None -> None
  | Some (c : Layout.coord) ->
      let l =
        match c.Layout.pipelet.Asic.Pipelet.kind with
        | Asic.Pipelet.Ingress -> c.Layout.pipelet.Asic.Pipelet.pipeline
        | Asic.Pipelet.Egress -> n + c.Layout.pipelet.Asic.Pipelet.pipeline
      in
      Some (l, c.Layout.group, c.Layout.slot, c.Layout.kind = `Seq)

let solve_core ~start_idx ~n ~entry_pipeline ~exit_pipe ~lookup chain_arr =
  let k = Array.length chain_arr in
  let n_locs = 2 * n in
  let sz = max k 1 in
  let nf_loc = Array.make sz (-1) in
  let nf_g = Array.make sz (-1) in
  let nf_s = Array.make sz (-1) in
  let nf_seq = Array.make sz false in
  let used = Array.make n_locs false in
  for i = 0 to k - 1 do
    match lookup chain_arr.(i) with
    | None -> nf_loc.(i) <- -1
    | Some (l, g, s, seq) ->
        nf_loc.(i) <- l;
        nf_g.(i) <- g;
        nf_s.(i) <- s;
        nf_seq.(i) <- seq;
        used.(l) <- true
  done;
  (* Per-pass advance rows, computed only for locations hosting chain
     NFs; everything else shares the identity row (a pass there
     consumes nothing). *)
  let identity_row = Array.init (k + 1) (fun i -> i) in
  let adv = Array.make n_locs identity_row in
  for l = 0 to n_locs - 1 do
    if used.(l) then begin
      let row = Array.make (k + 1) 0 in
      for idx0 = 0 to k do
        let rec go idx gi si =
          if idx >= k || nf_loc.(idx) <> l then idx
          else
            let g = nf_g.(idx) in
            if g > gi then go (idx + 1) g nf_s.(idx)
            else if g = gi && nf_seq.(idx) && nf_s.(idx) > si then
              go (idx + 1) g nf_s.(idx)
            else idx
        in
        row.(idx0) <- go idx0 (-1) (-1)
      done;
      adv.(l) <- row
    end
  done;
  (* A detour through pipeline q hosting none of the chain's NFs (and
     which is not the exit) never helps: an ingress can already reach
     any egress directly. Prune those egress targets. *)
  let useful = Array.make n false in
  useful.(exit_pipe) <- true;
  for q = 0 to n - 1 do
    if used.(q) || used.(n + q) then useful.(q) <- true
  done;
  let n_states = n_locs * (k + 1) in
  let state_id base idx = (base * (k + 1)) + idx in
  let dist = Array.make n_states max_int in
  let pred_state = Array.make n_states (-1) in
  let pred_code = Array.make n_states (-1) in
  let visited = Array.make n_states false in
  let pq = Pqueue.create (2 * n_states) in
  let start = state_id entry_pipeline (min start_idx k) in
  dist.(start) <- 0;
  Pqueue.push pq ~prio:0 start;
  let rec drain () =
    match Pqueue.pop pq with
    | None -> ()
    | Some (d, s) ->
        if (not visited.(s)) && d <= dist.(s) then begin
          visited.(s) <- true;
          let base = s / (k + 1) and idx = s mod (k + 1) in
          let idx' = adv.(base).(idx) in
          if base < n then begin
            let p = base in
            for q = 0 to n - 1 do
              if useful.(q) then begin
                let s' = state_id (n + q) idx' in
                if d < dist.(s') then begin
                  dist.(s') <- d;
                  pred_state.(s') <- s;
                  pred_code.(s') <- q;
                  Pqueue.push pq ~prio:d s'
                end
              end
            done;
            if adv.(p).(idx') > idx' then begin
              let s' = state_id p idx' in
              if d + resubmit_cost < dist.(s') then begin
                dist.(s') <- d + resubmit_cost;
                pred_state.(s') <- s;
                pred_code.(s') <- n;
                Pqueue.push pq ~prio:(d + resubmit_cost) s'
              end
            end
          end
          else begin
            let q = base - n in
            let s' = state_id q idx' in
            if d + recirc_cost < dist.(s') then begin
              dist.(s') <- d + recirc_cost;
              pred_state.(s') <- s;
              pred_code.(s') <- n + 1;
              Pqueue.push pq ~prio:(d + recirc_cost) s'
            end
          end
        end;
        drain ()
  in
  drain ();
  (* Terminal: an egress state on the exit pipeline whose pass completes
     the chain. Scanned in state-id order, exactly like the reference. *)
  let terminal = ref (-1) in
  let exit_base = n + exit_pipe in
  for idx = 0 to k do
    let s = state_id exit_base idx in
    if dist.(s) < max_int && adv.(exit_base).(idx) = k then
      if !terminal < 0 || dist.(s) < dist.(!terminal) then terminal := s
  done;
  { k; n; exit_pipe; adv; dist; pred_state; pred_code; terminal = !terminal }

let solve ?(start_idx = 0) spec layout ~entry_pipeline ~exit_port chain =
  let n = spec.Asic.Spec.n_pipelines in
  let exit_pipe = Asic.Spec.port_pipeline spec exit_port in
  let idx = Layout.index layout in
  let chain_arr = Array.of_list chain in
  let c =
    solve_core ~start_idx ~n ~entry_pipeline ~exit_pipe
      ~lookup:(lookup_of_index n idx) chain_arr
  in
  if c.terminal < 0 then None
  else begin
    let rec unwind s acc =
      let p = c.pred_state.(s) in
      if p < 0 then acc
      else
        let base = p / (c.k + 1) and idx = p mod (c.k + 1) in
        let idx' = c.adv.(base).(idx) in
        let code = c.pred_code.(s) in
        let step =
          if base < c.n then
            Ingress_step
              {
                pipeline = base;
                idx_in = idx;
                idx_out = idx';
                action = (if code < c.n then To_egress code else Resubmit);
              }
          else
            Egress_step
              { pipeline = base - c.n; idx_in = idx; idx_out = idx'; action = Recirc }
        in
        unwind p (step :: acc)
    in
    let term_idx = c.terminal mod (c.k + 1) in
    let final_step =
      Egress_step
        { pipeline = c.exit_pipe; idx_in = term_idx; idx_out = c.k; action = Emit }
    in
    let steps = unwind c.terminal [] @ [ final_step ] in
    let recircs, resubmits = count_steps steps in
    Some { steps; recircs; resubmits }
  end

(* (recircs, resubmits) only — the memoized scoring path needs no step
   records, just a walk over the predecessor codes. *)
let solve_counts ~start_idx ~n ~entry_pipeline ~exit_pipe ~lookup chain_arr =
  let c = solve_core ~start_idx ~n ~entry_pipeline ~exit_pipe ~lookup chain_arr in
  if c.terminal < 0 then None
  else begin
    let recircs = ref 0 and resubmits = ref 0 in
    let s = ref c.terminal in
    while c.pred_state.(!s) >= 0 do
      let code = c.pred_code.(!s) in
      if code = c.n then incr resubmits
      else if code = c.n + 1 then incr recircs;
      s := c.pred_state.(!s)
    done;
    Some (!recircs, !resubmits)
  end

(* --- weighted objective --------------------------------------------- *)

(* The single definition of a chain's contribution to the objective.
   Every scoring path (reference, fast, memoized, incremental) adds
   these left-to-right in chain order, so their floats are
   bit-identical. *)
let chain_transition_cost (c : Chain.t) ~recircs ~resubmits =
  c.Chain.weight *. (float_of_int recircs +. (0.9 *. float_of_int resubmits))

let cost_with solver spec layout ~entry_pipeline chains =
  List.fold_left
    (fun acc (c : Chain.t) ->
      match acc with
      | None -> None
      | Some total -> (
          match
            solver spec layout ~entry_pipeline ~exit_port:c.Chain.exit_port
              c.Chain.nfs
          with
          | None -> None
          | Some path ->
              Some
                (total
                +. chain_transition_cost c ~recircs:path.recircs
                     ~resubmits:path.resubmits)))
    (Some 0.0) chains

let cost spec layout ~entry_pipeline chains =
  cost_with (fun spec layout ~entry_pipeline ~exit_port chain ->
      solve spec layout ~entry_pipeline ~exit_port chain)
    spec layout ~entry_pipeline chains

let cost_reference spec layout ~entry_pipeline chains =
  cost_with (fun spec layout ~entry_pipeline ~exit_port chain ->
      solve_reference spec layout ~entry_pipeline ~exit_port chain)
    spec layout ~entry_pipeline chains

(* --- memo cache ------------------------------------------------------ *)

(* A chain's cheapest traversal depends on the layout only through the
   coordinates of the chain's own NFs: which pipelet each sits on, its
   (group, slot) there, and that group's kind — everything [advance]
   ever consults. Serializing those coordinates gives a fingerprint that
   is stable under moves of unrelated NFs, so an annealer move
   invalidates only the chains containing the moved NF. *)

type cache = {
  tbl : (string, (int * int) option) Hashtbl.t;
      (** key = path_id + entry pipeline + per-NF coordinates *)
  buf : Buffer.t;  (** scratch for key construction, reused across calls *)
  mutable hits : int;
  mutable misses : int;
}

let cache_create () =
  { tbl = Hashtbl.create 1024; buf = Buffer.create 64; hits = 0; misses = 0 }
let cache_stats c = (c.hits, c.misses)

(* Bound memory on pathological workloads; a reset just costs re-solves. *)
let max_cache_entries = 65536

let fingerprint_into buf index ~entry_pipeline (c : Chain.t) =
  Buffer.clear buf;
  Buffer.add_string buf (string_of_int c.Chain.path_id);
  Buffer.add_char buf '@';
  Buffer.add_string buf (string_of_int entry_pipeline);
  List.iter
    (fun nf ->
      match Hashtbl.find_opt index nf with
      | None -> Buffer.add_string buf "|-"
      | Some (co : Layout.coord) ->
          Buffer.add_char buf '|';
          Buffer.add_string buf
            (string_of_int co.Layout.pipelet.Asic.Pipelet.pipeline);
          Buffer.add_char buf
            (match co.Layout.pipelet.Asic.Pipelet.kind with
            | Asic.Pipelet.Ingress -> 'i'
            | Asic.Pipelet.Egress -> 'e');
          Buffer.add_string buf (string_of_int co.Layout.group);
          Buffer.add_char buf ':';
          Buffer.add_string buf (string_of_int co.Layout.slot);
          Buffer.add_char buf (match co.Layout.kind with `Seq -> 's' | `Par -> 'p'))
    c.Chain.nfs;
  Buffer.contents buf

let chain_fingerprint index ~entry_pipeline c =
  fingerprint_into (Buffer.create 64) index ~entry_pipeline c

let chain_counts_cached cache spec ~index ~entry_pipeline (c : Chain.t) =
  let n = spec.Asic.Spec.n_pipelines in
  let key = fingerprint_into cache.buf index ~entry_pipeline c in
  match Hashtbl.find_opt cache.tbl key with
  | Some r ->
      cache.hits <- cache.hits + 1;
      r
  | None ->
      cache.misses <- cache.misses + 1;
      let r =
        solve_counts ~start_idx:0 ~n ~entry_pipeline
          ~exit_pipe:(Asic.Spec.port_pipeline spec c.Chain.exit_port)
          ~lookup:(lookup_of_index n index)
          (Array.of_list c.Chain.nfs)
      in
      if Hashtbl.length cache.tbl >= max_cache_entries then
        Hashtbl.reset cache.tbl;
      Hashtbl.add cache.tbl key r;
      r

(* --- normalized keyed counts (the move-diff path) -------------------- *)

(* The counts are invariant under two relabelings of the coordinates,
   and the keyed cache canonicalizes both away:

   - Groups and slots. [solve_core] only ever compares a chain NF's
     (group, slot) against those of other chain NFs at the same location
     ([go]'s [g > gi] and [g = gi && seq && s > si]), so any relabeling
     preserving — per location, among the chain's own NFs — group order,
     group equality, slot order within a group, and the seq flag keeps
     the counts. The key stores group/slot {e ranks} among the chain's
     NFs at that location: unrelated NFs leaving or joining a pipelet
     shift absolute slots but leave every other chain's key unchanged,
     which is what lets {!Placement}'s move-diff annealer skip
     co-resident chains entirely.

   - Pipelines. The transition graph is symmetric across pipelines (an
     ingress reaches any egress at equal cost; recirculation and
     resubmission stay within a pipeline; pipelines hosting no chain NF
     are pruned unless they are the exit), so any permutation of
     pipeline numbers fixing the entry and exit keeps the counts. The
     key renames pipelines to first-use order: entry = 0, then each
     pipeline as a chain NF first appears on it, the exit pipe last.
     Isomorphic placements on different pipelines — the bulk of a
     many-pipeline switch's move space — share one entry.

   Counting NFs (not distinct values) as the rank is valid: it is
   monotone in the ranked value and equal exactly when the values are.
   The canonical instance a key describes determines the counts
   outright, so equal keys imply equal counts. *)

let chain_key index spec ~entry_pipeline (c : Chain.t) =
  let n = spec.Asic.Spec.n_pipelines in
  let nfs = Array.of_list c.Chain.nfs in
  let k = Array.length nfs in
  let sz = max k 1 in
  let pipe = Array.make sz (-1) in
  let egress = Array.make sz false in
  let g = Array.make sz (-1) in
  let s = Array.make sz (-1) in
  let sq = Array.make sz false in
  for i = 0 to k - 1 do
    match Hashtbl.find_opt index nfs.(i) with
    | None -> ()
    | Some (co : Layout.coord) ->
        pipe.(i) <- co.Layout.pipelet.Asic.Pipelet.pipeline;
        egress.(i) <- co.Layout.pipelet.Asic.Pipelet.kind = Asic.Pipelet.Egress;
        g.(i) <- co.Layout.group;
        s.(i) <- co.Layout.slot;
        sq.(i) <- co.Layout.kind = `Seq
  done;
  (* Canonical pipeline numbers, assigned in first-use order. *)
  let canon = Array.make n (-1) in
  let next = ref 0 in
  let canon_of p =
    if canon.(p) < 0 then begin
      canon.(p) <- !next;
      incr next
    end;
    canon.(p)
  in
  ignore (canon_of entry_pipeline);
  let key = Array.make (k + 1) 0 in
  (* radix k+1: grank/srank count chain NFs, so both are < k+1 *)
  let radix = k + 1 in
  for i = 0 to k - 1 do
    if pipe.(i) < 0 then key.(i + 1) <- -1
    else begin
      let grank = ref 0 and srank = ref 0 in
      for j = 0 to k - 1 do
        if pipe.(j) = pipe.(i) && egress.(j) = egress.(i) then begin
          if g.(j) < g.(i) then incr grank;
          if g.(j) = g.(i) && s.(j) < s.(i) then incr srank
        end
      done;
      let loc = (canon_of pipe.(i) * 2) + if egress.(i) then 1 else 0 in
      key.(i + 1) <-
        ((((loc * radix) + !grank) * radix) + !srank) * 2
        + (if sq.(i) then 1 else 0)
    end
  done;
  key.(0) <- canon_of (Asic.Spec.port_pipeline spec c.Chain.exit_port);
  key

type kcache = {
  ktbl : (int array, (int * int) option) Hashtbl.t;
  mutable khits : int;
  mutable kmisses : int;
}

let kcache_create () = { ktbl = Hashtbl.create 1024; khits = 0; kmisses = 0 }
let kcache_stats c = (c.khits, c.kmisses)

let chain_counts_keyed cache spec ~index ~entry_pipeline (c : Chain.t) =
  let n = spec.Asic.Spec.n_pipelines in
  let key = chain_key index spec ~entry_pipeline c in
  match Hashtbl.find_opt cache.ktbl key with
  | Some r ->
      cache.khits <- cache.khits + 1;
      r
  | None ->
      cache.kmisses <- cache.kmisses + 1;
      let r =
        solve_counts ~start_idx:0 ~n ~entry_pipeline
          ~exit_pipe:(Asic.Spec.port_pipeline spec c.Chain.exit_port)
          ~lookup:(lookup_of_index n index)
          (Array.of_list c.Chain.nfs)
      in
      if Hashtbl.length cache.ktbl >= max_cache_entries then
        Hashtbl.reset cache.ktbl;
      Hashtbl.add cache.ktbl key r;
      r

let cost_cached cache spec layout ~entry_pipeline chains =
  (* Index the whole layout once: the same [Layout.index] serves both
     the fingerprints and any cache-miss re-solves, so a miss never
     walks the layout again. *)
  let where = Layout.index layout in
  List.fold_left
    (fun acc (c : Chain.t) ->
      match acc with
      | None -> None
      | Some total -> (
          match chain_counts_cached cache spec ~index:where ~entry_pipeline c with
          | None -> None
          | Some (recircs, resubmits) ->
              Some (total +. chain_transition_cost c ~recircs ~resubmits)))
    (Some 0.0) chains

let pp_step ppf = function
  | Ingress_step { pipeline; idx_in; idx_out; action } ->
      Format.fprintf ppf "I%d[%d->%d]%s" pipeline idx_in idx_out
        (match action with
        | To_egress q -> Printf.sprintf " ->E%d" q
        | Resubmit -> " resubmit")
  | Egress_step { pipeline; idx_in; idx_out; action } ->
      Format.fprintf ppf "E%d[%d->%d]%s" pipeline idx_in idx_out
        (match action with Emit -> " emit" | Recirc -> " recirc")

let pp_path ppf t =
  Format.fprintf ppf "%a (recircs=%d resubmits=%d)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_step)
    t.steps t.recircs t.resubmits
