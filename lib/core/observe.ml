(* The glue between the generic telemetry library and this data plane:
   owns the registry and the flight-recorder ring, installs the chip
   hooks (table stats, per-NF label counters, the SFC journey probe),
   and turns raw chip results into journey spans and JSON. *)

type t = {
  level : Telemetry.Level.t;
  reg : Telemetry.Registry.t;
  ring : Telemetry.Journey.t Telemetry.Ring.t;
  (* INT postcard sink: per-flow aggregation of the per-hop records
     journeys carry; sized like the flight recorder. *)
  sink : Telemetry.Int_report.t;
  mutable next_id : int;
}

let default_ring_capacity = 256

let create ?(ring_capacity = default_ring_capacity) level =
  {
    level;
    reg = Telemetry.Registry.create ();
    ring = Telemetry.Ring.create ring_capacity;
    sink = Telemetry.Int_report.create ~ring_capacity ();
    next_id = 0;
  }

let level t = t.level
let registry t = t.reg
let ring t = t.ring
let int_sink t = t.sink

let next_journey_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let nf_counter_name nf = "nf." ^ nf ^ ".applies"

(* The journey probe: reads the SFC position and the set of valid
   header instances (the parser path) off a PHV after a pipelet pass.
   Installed into the chip, which cannot decode the SFC header itself. *)
let sfc_probe phv =
  let sfc =
    match Sfc_header.of_phv phv with
    | Some h -> Some (h.Sfc_header.service_path_id, h.Sfc_header.service_index)
    | None -> None
  in
  let headers =
    List.filter_map
      (fun (d : P4ir.Hdr.decl) ->
        let n = d.P4ir.Hdr.name in
        if P4ir.Phv.is_valid phv n then Some n else None)
      (P4ir.Phv.decls phv)
  in
  { Telemetry.Journey.sfc; headers }

(* The registry is an explicit argument — nothing global: each observer
   (one per domain in a parallel run) wires its own registry into the
   chip it instruments. *)
let attach ~registry ~level chip =
  Asic.Chip.set_telemetry
    ~label_counters:(fun nf ->
      Telemetry.Registry.counter registry (nf_counter_name nf))
    chip level;
  Asic.Chip.set_sfc_probe chip sfc_probe

let attach_observer t chip = attach ~registry:t.reg ~level:t.level chip

let detach chip = Asic.Chip.set_telemetry chip Telemetry.Level.Off

(* Coarse error classes for the drop-reason counters; keyed off the
   stable prefixes of the runtime's own error strings. *)
let error_class msg =
  let has sub =
    let n = String.length sub and m = String.length msg in
    let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
    go 0
  in
  if has "CPU loops" then "cpu_loop"
  else if has "pass limit" then "pass_limit"
  else if has "egress port" then "bad_egress"
  else if has "parse" then "parse"
  else "other"

let pipelet_name (id : Asic.Pipelet.id) =
  Format.asprintf "%a" Asic.Pipelet.pp_id id

(* Segment one chip result's flat trace into per-pass hops using the
   marks the chip recorded in Journeys mode: mark k says "this pass's
   events end at trace position k". Each mark carries the cumulative
   modelled latency when its pass ended, so a hop's own latency is the
   delta from the previous mark — the deltas sum back to the result's
   end-to-end latency. *)
let hops_of_result (r : Asic.Chip.result) =
  let trace = Array.of_list r.Asic.Chip.trace in
  let hop_of (m : Asic.Chip.mark) start prev_lat =
    let nfs = ref [] and tables = ref [] and gateways = ref 0 in
    for i = m.Asic.Chip.m_trace_end - 1 downto start do
      match trace.(i) with
      | P4ir.Control.T_enter nf -> nfs := nf :: !nfs
      | P4ir.Control.T_table (tbl, act, hit) ->
          tables := (tbl, act, hit) :: !tables
      | P4ir.Control.T_gateway _ -> incr gateways
    done;
    {
      Telemetry.Journey.pipelet = pipelet_name m.Asic.Chip.m_pipelet;
      nfs = !nfs;
      tables = !tables;
      gateways = !gateways;
      latency_ns = m.Asic.Chip.m_latency_ns -. prev_lat;
      recirc_depth = m.Asic.Chip.m_recircs;
      resubmit_depth = m.Asic.Chip.m_resubmits;
      meta = m.Asic.Chip.m_meta;
    }
  in
  let rec go start prev_lat = function
    | [] -> []
    | (m : Asic.Chip.mark) :: rest ->
        hop_of m start prev_lat
        :: go m.Asic.Chip.m_trace_end m.Asic.Chip.m_latency_ns rest
  in
  go 0 0.0 r.Asic.Chip.marks

let verdict_string = function
  | Asic.Chip.Emitted { port; _ } -> Printf.sprintf "emitted:%d" port
  | Asic.Chip.Dropped -> "dropped"
  | Asic.Chip.To_cpu _ -> "to_cpu"

let record_journey t j = Telemetry.Ring.push t.ring j
let journeys t = Telemetry.Ring.to_list t.ring

(* Copy the live table tallies (kept in each table's entry store, where
   the lookup paths can bump them cheaply) into registry counters so a
   snapshot sees one namespace. *)
let sync_tables t chip =
  List.iter
    (fun pl ->
      let where = pipelet_name (Asic.Pipelet.id pl) in
      let where = String.map (fun c -> if c = ' ' then '_' else c) where in
      List.iter
        (fun tbl ->
          match P4ir.Table.stats tbl with
          | None -> ()
          | Some s ->
              let base =
                Printf.sprintf "table.%s.%s" where (P4ir.Table.name tbl)
              in
              Telemetry.Registry.counter t.reg (base ^ ".hits") := s.P4ir.Table.hits;
              Telemetry.Registry.counter t.reg (base ^ ".misses")
              := s.P4ir.Table.misses)
        (Asic.Pipelet.tables pl))
    (Asic.Chip.pipelets chip)

let snapshot t chip =
  sync_tables t chip;
  Telemetry.Registry.snapshot t.reg

let table_entry_hits chip =
  List.concat_map
    (fun pl ->
      let where = pipelet_name (Asic.Pipelet.id pl) in
      List.filter_map
        (fun tbl ->
          match P4ir.Table.stats tbl with
          | None -> None
          | Some _ ->
              Some
                ( Printf.sprintf "%s/%s" where (P4ir.Table.name tbl),
                  P4ir.Table.entry_hits tbl ))
        (Asic.Pipelet.tables pl))
    (Asic.Chip.pipelets chip)

let json ?indent t chip =
  Telemetry.Registry.to_json ?indent (snapshot t chip)

let pp ppf t chip = Telemetry.Registry.pp ppf (snapshot t chip)
