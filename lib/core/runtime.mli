(** Minimal control plane: NFs punt packets to the CPU by setting the
    SFC header's to-CPU flag (Fig. 4's [toCpu] default action); the
    runtime dispatches to a per-NF handler — which typically installs a
    table entry — and reinjects the packet into the data plane, looping
    until the packet is emitted or dropped. *)

type action =
  | Reinject of Bytes.t  (** put (possibly rewritten) bytes back into the
                             entry pipeline's ingress *)
  | Consume  (** the control plane keeps the packet *)

type handler = Sfc_header.t option -> Bytes.t -> action
(** Receives the decoded SFC header (when present) and the raw frame. *)

type t

val create : Compiler.t -> t
val on_to_cpu : t -> string -> handler -> unit
(** Register the handler for an NF (keyed by the [ctx_key_cpu_reason]
    context value carrying the NF's id). *)

val register_nf_id : t -> string -> int -> unit
(** Associate an NF name with the id it writes into the CPU-reason
    context slot. *)

val default_nf_id : string -> int
(** A stable id derived from the NF name (CRC-16 of the name, nonzero) —
    what the bundled NFs use. *)

val clear_cpu_mark : Bytes.t -> Bytes.t
(** Clear the to-CPU flag and the CPU-reason context slot in a frame's
    SFC header — a handler must do this before reinjecting, or the
    packet bounces straight back. Returns a fresh buffer. *)

type outcome = {
  verdict : Asic.Chip.verdict;
  cpu_round_trips : int;
  recircs : int;
  resubmits : int;
  latency_ns : float;
  mirrored : (int * Bytes.t) list;
      (** analysis-port copies across all data-plane passes *)
}

val process : t -> in_port:int -> Bytes.t -> (outcome, string) result
(** Inject a frame and resolve any to-CPU round trips. Counters
    aggregate over all data-plane passes. The handler is dispatched at
    most {!max_cpu_loops} times — exactly; a packet still punting after
    that is an error. *)

val max_cpu_loops : int
val chip : t -> Asic.Chip.t

(** {2 Telemetry} *)

val set_telemetry : ?ring_capacity:int -> t -> Telemetry.Level.t -> unit
(** Instrument this runtime (and its chip) at the given level. A fresh
    {!Observe.t} is created per call: per-port rx/tx, verdict and packet-
    path counters, error-class counters, an ns-per-packet histogram
    ([runtime.ns_per_packet], measured with two monotonic-clock reads
    around {!process}), and — at [Journeys] — a per-packet journey span
    pushed into the flight recorder ([ring_capacity] entries). [Off]
    detaches everything and restores the uninstrumented fast path. *)

val telemetry : t -> Observe.t option
val telemetry_level : t -> Telemetry.Level.t

type batch_stats = {
  packets : int;
  emitted : int;
  dropped : int;
  to_cpu : int;  (** packets the control plane consumed or nobody handled *)
  errors : int;
  cpu_round_trips : int;
  recircs : int;
  resubmits : int;
  total_latency_ns : float;  (** modelled data-plane latency, summed *)
  digest : int64;
      (** order-sensitive CRC-32 over every packet's verdict tag, egress
          port and output frame — byte-identical runs agree on it *)
  error_log : (int * string) list;
      (** the first {!max_error_log} per-packet errors, oldest first, as
          [(in_port, message)] — previously only the count survived *)
}

val max_error_log : int

val process_batch : t -> (int * Bytes.t) list -> batch_stats
(** Run [(in_port, frame)] packets through {!process} in order,
    aggregating counters. Per-packet errors are counted (and folded into
    the digest), not raised. *)
