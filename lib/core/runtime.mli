(** Minimal control plane and batch engine: NFs punt packets to the CPU
    by setting the SFC header's to-CPU flag (Fig. 4's [toCpu] default
    action); the runtime dispatches to a per-NF handler — which
    typically installs a table entry — and reinjects the packet into
    the data plane, looping until the packet is emitted or dropped.
    Batches run sequentially ({!process_batch}) or sharded across OCaml
    domains onto private chip replicas ({!process_batch_parallel}). *)

type action =
  | Reinject of Bytes.t  (** put (possibly rewritten) bytes back into the
                             entry pipeline's ingress *)
  | Consume  (** the control plane keeps the packet *)

type handler = Sfc_header.t option -> Bytes.t -> action
(** Receives the decoded SFC header (when present) and the raw frame. *)

(** The counter quadruple every packet path accumulates — shared by
    {!outcome} (one packet) and {!batch_stats} (a batch), merged
    component-wise. *)
module Counters : sig
  type t = {
    cpu_round_trips : int;
    recircs : int;
    resubmits : int;
    latency_ns : float;  (** modelled data-plane latency (summed) *)
  }

  val zero : t
  val add : t -> t -> t
end

(** The runtime's whole configuration as one value — replaces scattered
    per-knob mutators. Apply with {!configure}; read back with
    {!engine}. *)
module Engine : sig
  (** The exact-match flow cache fronting the pipeline. [Emc] memoizes
      each flow's whole-chain verdict after its first packet (see
      {!Flow_cache}); [Off] (the default) is the uncached pipeline,
      byte-identical to a runtime without the cache knob. *)
  type cache = Off | Emc of { capacity : int }

  (** The bounded state store behind stateful NFs' dynamic state (see
      {!State_store}): [Bounded] gives the runtime one store per shard
      — each NF's per-flow tables capacity-bounded with LRU eviction
      and TTL aging on the runtime's logical clock
      ({!advance_state_time}); [No_state] (the default) is today's
      unbounded behaviour, byte-identical to a runtime without the
      knob. *)
  type state = No_state | Bounded of { capacity : int; ttl_ns : int64 }

  type t = {
    exec_mode : Asic.Chip.exec_mode;  (** default [Fast] *)
    telemetry : Telemetry.Level.t;  (** default [Off] *)
    domains : int;
        (** default shard count for {!process_batch_parallel} when its
            [?domains] is omitted; clamped to >= 1 *)
    ring_capacity : int;
        (** flight-recorder depth when telemetry is [Journeys] *)
    cache : cache;  (** default [Off] *)
    state : state;  (** default [No_state] *)
  }

  val default : t

  val store_config : state -> State_store.config option
end

type t

val create : ?engine:Engine.t -> Compiler.t -> t
(** A runtime over the compiled chip, configured per [engine]
    (default {!Engine.default}). *)

val configure : t -> Engine.t -> unit
(** Apply a full configuration: exec mode takes effect immediately;
    telemetry re-attaches (fresh registry and ring) only when the
    telemetry level or ring capacity actually changed, so flipping
    [exec_mode] or [domains] never wipes accumulated counters. The
    flow cache likewise survives unchanged [cache] knobs; any change
    detaches the old cache's recorders and starts empty. The state
    stores survive an unchanged [state] knob at an unchanged shard
    count; a [domains] change under a live [Bounded] knob re-homes
    every entry to its new owner shard ({!State_store.migrate} by the
    canonical 5-tuple shard hint); a knob change starts fresh. *)

val engine : t -> Engine.t

val flow_cache : t -> Flow_cache.t option
(** The live flow cache when the engine's [cache] knob is [Emc] —
    for stats, clearing, and tests. *)

val state_store : t -> State_store.t option
(** The primary (shard-0) state store when the engine's [state] knob
    is [Bounded] — what sequential-path handlers bind, and the store
    NFs register their tables on for snapshot/warm-restart flows. *)

val state_stores : t -> State_store.t array
(** All shard stores in shard order ([||] when [No_state]). Persistent
    across batches — unlike replica chips — so punt-installed state
    outlives the parallel batch that created it. *)

val advance_state_time : t -> int64 -> int
(** Advance every shard store's logical clock by [ns] and sweep TTL
    expirations (the control plane's aging tick — e.g. the rate
    limiter's window). Returns the number of entries expired. Time
    never advances implicitly, so runs that tick at the same points
    age identically — digests stay comparable. *)

val on_to_cpu : t -> string -> handler -> unit
(** Register the handler for an NF (keyed by the [ctx_key_cpu_reason]
    context value carrying the NF's id). The handler is shared as-is
    with shard replicas in parallel runs, so it must not capture chip
    state (table handles, registers) — use {!on_to_cpu_chip} for
    that. *)

val on_to_cpu_chip : t -> string -> (Asic.Chip.t -> handler) -> unit
(** Register a chip-bound handler factory: the factory is applied to
    this runtime's chip now, and re-applied to each replica chip when a
    parallel batch spins up shard runtimes — so a handler that installs
    into a table (found via {!Asic.Chip.find_table}) always installs
    into the chip that punted the packet. *)

val on_to_cpu_state : t -> string -> (Asic.Chip.t -> State_store.t option -> handler) -> unit
(** Like {!on_to_cpu_chip}, but the factory also receives the state
    store serving the handler's shard ([None] when the engine's
    [state] knob is [No_state]): the primary store now, shard [d]'s
    store on shard [d]'s replica, and again whenever [configure]
    replaces the store array — so an NF's punt handler can record
    per-flow state in the store (and mirror the store's evictions
    into its chip table) without ever holding a stale handle. *)

val register_nf_id : t -> string -> int -> unit
(** Associate an NF name with the id it writes into the CPU-reason
    context slot. *)

val default_nf_id : string -> int
(** A stable id derived from the NF name (CRC-16 of the name, nonzero) —
    what the bundled NFs use. *)

val clear_cpu_mark : Bytes.t -> Bytes.t
(** Clear the to-CPU flag and the CPU-reason context slot in a frame's
    SFC header — a handler must do this before reinjecting, or the
    packet bounces straight back. Returns a fresh buffer. *)

type outcome = {
  verdict : Asic.Chip.verdict;
  counters : Counters.t;  (** aggregated over all data-plane passes *)
  mirrored : (int * Bytes.t) list;
      (** analysis-port copies across all data-plane passes *)
}

val process : t -> in_port:int -> Bytes.t -> (outcome, string) result
(** Inject a frame and resolve any to-CPU round trips. Counters
    aggregate over all data-plane passes. The handler is dispatched at
    most {!max_cpu_loops} times — exactly; a packet still punting after
    that is an error. *)

val max_cpu_loops : int
val chip : t -> Asic.Chip.t

(** {2 Control plane}

    The single front door for runtime table/register mutation: typed
    {!Ctrl} ops addressed by composed object name, applied to the
    primary chip between packet batches. Direct [Table.add_entry] on a
    compiled chip still works (NF constructors use it before traffic
    starts), but live mutation should flow through here so it is
    observable, queueable and coherent across shard replicas. *)

val apply_ops : t -> Ctrl.op list -> (int, string) result
(** Apply a batch of ops to the primary chip now, in order, stopping at
    the first failure ([Ok n] = all [n] applied). The caller must be
    between packet batches — the runtime's single-consumer contract;
    epoch bumps make every change visible to the flow cache, and the
    next parallel batch replicates the updated state to all shards. *)

val control : t -> Ctrl.queue
(** The runtime's update queue. Producers (CPU handlers, other domains,
    an operator loop) {!Ctrl.submit} op batches at any time; the
    runtime drains the queue onto the primary chip at the top of every
    {!process_batch} / {!process_batch_parallel} call, recording
    per-batch outcomes in the queue's result log ({!Ctrl.results}). *)

val sync : t -> int * (int * string) list
(** Drain and apply all pending queue batches immediately (what the
    batch entry points do): total ops applied, plus per-batch errors as
    [(batch_id, message)]. A failed batch stops at its first bad op but
    does not block later batches. *)

(** {2 Telemetry} *)

val set_telemetry : ?ring_capacity:int -> t -> Telemetry.Level.t -> unit
(** The single telemetry front door — shorthand for {!configure} with
    only the telemetry fields changed. Enabling instruments this
    runtime and its chip: per-port rx/tx, verdict and packet-path
    counters, error-class counters, an ns-per-packet histogram
    ([runtime.ns_per_packet], measured with two monotonic-clock reads
    around {!process}), and — at [Journeys] — a per-packet journey span
    pushed into the flight recorder ([ring_capacity] entries). [Off]
    detaches everything and restores the uninstrumented fast path.
    ({!Asic.Chip.set_telemetry} is internal plumbing this calls; don't
    use it directly.) *)

val telemetry : t -> Observe.t option
val telemetry_level : t -> Telemetry.Level.t

val int_sink : t -> Telemetry.Int_report.t option
(** The INT postcard sink, when telemetry is on. Populated at
    [Journeys]: every processed packet's per-hop records enter as one
    postcard keyed by its 5-tuple (per-flow summaries, bounded ring of
    recent postcards). Shard sinks merge back after parallel
    batches. *)

val snapshot : t -> Telemetry.Registry.snapshot option
(** The observability front door: sync the chip's live table tallies
    and the absolute gauges — cache occupancy/capacity and validation
    tallies ([cache.*]), pending ctrl batches ([ctrl.pending]), INT
    sink sizes ([int.*]) — into the registry, then snapshot it. [None]
    when telemetry is [Off]. Gauges are written only here (never on
    the hot path, never on shard replicas), so parallel registry
    merges cannot double-count them; feed the result to
    {!Telemetry.Export.prometheus} / {!Telemetry.Export.json_lines}. *)

(** {2 Batches} *)

type batch_stats = {
  packets : int;
  emitted : int;
  dropped : int;
  to_cpu : int;  (** packets the control plane consumed or nobody handled *)
  errors : int;
  counters : Counters.t;
  digest : int64;
      (** sequential: order-sensitive CRC-32 over every packet's verdict
          tag, egress port and output frame — byte-identical runs agree
          on it. Parallel (domains >= 2): the per-shard digests chained
          in shard order (see {!process_batch_parallel}). *)
  error_log : (int * string) list;
      (** the first {!max_error_log} per-packet errors, oldest first, as
          [(in_port, message)] — previously only the count survived *)
  suppressed : int;
      (** errors beyond the log cap: [errors - List.length error_log],
          so a capped log is visible as such instead of silently
          truncating. Also accumulated into the
          [batch.errors_suppressed] counter when telemetry is on. *)
}

val max_error_log : int

val process_batch :
  ?each:(int -> (outcome, string) result -> unit) ->
  t ->
  (int * Bytes.t) list ->
  batch_stats
(** Run [(in_port, frame)] packets through {!process} in order,
    aggregating counters. Per-packet errors are counted (and folded into
    the digest), not raised. [each] observes every packet's result with
    its position in the input list. *)

val shard_of_packet : domains:int -> int -> Bytes.t -> int
(** The flow-affinity shard of an [(in_port, frame)] packet: CRC-32 of
    the *canonicalized* (direction-symmetric) outer IPv4 5-tuple mod
    [domains], so both directions of a connection land on the same
    shard — a NAT/LB reply must see the bindings its forward flow
    installed. Packets with no parseable 5-tuple shard by input port.
    (Exposed so tests and tools can reproduce the partition.) *)

val process_batch_parallel :
  ?domains:int ->
  ?each:(int -> (outcome, string) result -> unit) ->
  t ->
  (int * Bytes.t) list ->
  batch_stats
(** Shard the batch by {!shard_of_packet} and run every shard on its own
    OCaml domain against a private {!Asic.Chip.replicate} clone of the
    chip (share-nothing: table entries and register cells are deep
    copies; chip-bound handlers from {!on_to_cpu_chip} re-bind to the
    replica). [domains] defaults to the engine's; [domains:1] is exactly
    {!process_batch} — same digest, same state persistence on the
    primary chip.

    Determinism contract: flow affinity gives every flow one owner
    domain processing its packets in arrival order, so per-packet
    outcomes match the sequential run whenever flows don't interact
    through shared NF state (cross-flow state — e.g. a rate-limiter
    bucket fed by several flows — is only deterministic if those flows
    hash to the same shard). Results merge in shard order: totals are
    sums, the digest chains per-shard digests, so repeated runs with the
    same [domains] agree bit-for-bit. Replicas are discarded after the
    run — control-plane installs during a parallel batch do not persist
    on the primary chip, which is what keeps repeated runs identical.

    With telemetry on, each shard gets a private observer; counters and
    histograms merge back into this runtime's registry afterwards
    ({!Telemetry.Registry.merge}), table tallies fold into the primary
    chip's live stats, and shard journeys re-enter the primary flight
    recorder with fresh ids.

    [each] runs on worker domains (for distinct packet indices,
    concurrently) — it must tolerate that, e.g. by writing to distinct
    array slots. *)
