(** End-to-end Dejavu compilation: NF registry + SFC policies + chip
    spec -> placed, merged, entry-populated programs loaded on the
    modeled ASIC, plus the resource report of Table 1. *)

type input = {
  spec : Asic.Spec.t;
  registry : Nf.registry;
  chains : Chain.t list;
  entry_pipeline : int;
  strategy : Placement.strategy;
  loopback_pipelines : int list;
      (** pipelines whose Ethernet ports go into loopback mode to buy
          recirculation bandwidth (the §5 prototype loops pipeline 1) *)
  pinned : (string * Asic.Pipelet.id) list;
      (** extra pins; classifier-style NFs are pinned to the entry
          ingress automatically *)
  mirror_port : int option;
      (** analysis port for mirror-flagged traffic *)
}

val default_input :
  ?spec:Asic.Spec.t ->
  ?entry_pipeline:int ->
  ?strategy:Placement.strategy ->
  ?loopback_pipelines:int list ->
  ?pinned:(string * Asic.Pipelet.id) list ->
  ?mirror_port:int ->
  registry:Nf.registry ->
  chains:Chain.t list ->
  unit ->
  input

type t = {
  input : input;
  chip : Asic.Chip.t;
  layout : Layout.t;
  objective : float;  (** weighted recirculation count *)
  plan : Branching.plan;
  generic_parser : P4ir.Parser_graph.t;
  built : (Asic.Pipelet.id * Compose.built) list;
}

val placement_input : input -> (Placement.input, string) result
(** The placement problem [compile] would solve for this deployment —
    chains validated and weight-normalized, NFs instantiated for their
    resource demands, classifier-style NFs auto-pinned to the entry
    ingress. Lets callers drive the placement solvers directly (e.g.
    [Placement.solve_parallel] from the CLI) without building programs
    or loading the chip. *)

val compile : input -> (t, string) result

val path_of_chain : t -> Chain.t -> Traversal.path option

val find_nf_table : t -> nf:string -> table:string -> P4ir.Table.t option
(** Locate an NF's (renamed) table in the loaded programs — how the
    control plane gets a handle for entry installation. *)

val find_register : t -> string -> P4ir.Register.t option
(** Locate a register by its (globally unique) name — how the control
    plane inspects or clears stateful NF state. *)

(** {2 Resource report (Table 1)} *)

type report_row = { resource : string; used : int; capacity : int; pct : float }

val framework_report : t -> report_row list
(** Dejavu framework overhead — stages occupied by dv_ tables, table IDs,
    gateways, crossbar bytes, VLIW slots, SRAM and TCAM blocks consumed
    by the framework, as fractions of the whole chip. *)

val pp_report : Format.formatter -> report_row list -> unit
val pp_summary : Format.formatter -> t -> unit
