let run ~domains tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let domains = max 1 (min domains n) in
  if domains <= 1 then
    Array.to_list (Array.map (fun f -> f ()) tasks)
  else begin
    let next = Atomic.make 0 in
    (* Each slot is written by exactly one domain (the one that claimed
       its index from [next]) and read only after every domain is
       joined, so plain array stores are race-free. *)
    let results = Array.make n None in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            Some (try Ok (tasks.(i) ()) with e -> Error e);
          go ()
        end
      in
      go ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function
           | Some (Ok r) -> r
           | Some (Error e) -> raise e
           | None -> assert false (* every index was claimed *))
         results)
  end
