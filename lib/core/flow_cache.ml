(* The exact-match flow cache (EMC) in front of the compiled chain —
   the software analogue of OVS's first-level cache. After a flow's
   first packet walks the full pipeline, its whole-chain verdict is
   memoized: the rewritten header bytes (as an output prefix the
   payload is re-appended to), the egress port, the modeled latency,
   and a side-effect plan of every table and register the verdict
   depended on. Later packets of the flow skip parsing, match-action
   and deparsing entirely.

   Correctness rests on three pillars:

   - The key covers every input the pipeline can read: the arrival
     port plus the frame's entire header region (every byte the chip's
     parser family can extract — computed by a structural walk that
     mirrors the deepest parser Net_hdrs builds, over-approximating
     when in doubt). Payload bytes are opaque to the match-action
     pipeline and pass through unchanged, so they stay out of the key
     and are re-appended on hits.

   - The side-effect plan makes stateful NFs honest. At miss time the
     armed Table/Register recorders capture which tables were
     consulted (with their mutation epochs) and every register read
     and write (with masked index and value, in order). A hit first
     revalidates: all table epochs unchanged, all register epochs
     unchanged, and every recorded read still returns the recorded
     value under a replay of the recorded writes. Only then is the
     memoized verdict served and the write plan re-applied. Any
     mismatch — a rate-limiter budget tick, a sketch update, a NAT
     binding change — drops the entry and falls back to the full
     pipeline, which re-records.

   - Anything the memoized fast path cannot reproduce is uncacheable:
     CPU punts (and resolved round trips), recirculations, resubmits,
     mirrored copies, to-CPU verdicts and errors.

   Invalidation is epoch-based (v1): every successful table mutation
   or register reset bumps the owner's epoch, and entries die lazily
   at their next lookup when a recorded epoch mismatches. Eviction is
   LRU at a fixed capacity. *)

type rop =
  | R_read of P4ir.Register.t * int * int64
  | R_write of P4ir.Register.t * int * int64

type tdep = { dtbl : P4ir.Table.t; tepoch : int }
type rdep = { dreg : P4ir.Register.t; repoch : int }

type cverdict = V_emit of { port : int; prefix : Bytes.t } | V_drop

type entry = {
  verdict : cverdict;
  latency_ns : float;
  tdeps : tdep array;
  rdeps : rdep array;
  ops : rop array;  (* register reads and writes, recorded order *)
}

(* Intrusive LRU list node; [head] is most recent. *)
type node = {
  nkey : string;
  entry : entry;
  mutable prev : node option;
  mutable next : node option;
}

type recording = {
  mutable r_tdeps : tdep list;  (* reversed *)
  mutable r_rdeps : rdep list;
  mutable r_ops : rop list;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable invalidations : int;
  mutable uncacheable : int;
  mutable inserts : int;
  mutable evictions : int;
}

type t = {
  capacity : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable len : int;
  (* Armed between a miss and its commit/abort; the table/register
     hook closures route into it. [None] makes every hook a no-op. *)
  mutable recording : recording option;
  mutable pending_key : string option;
  stats : stats;
  tables : P4ir.Table.t list;
  registers : P4ir.Register.t list;
}

let stats t = t.stats
let capacity t = t.capacity
let length t = t.len

let hit_rate t =
  let total = t.stats.hits + t.stats.misses in
  if total = 0 then 0.0 else float_of_int t.stats.hits /. float_of_int total

(* --- The header walk ---

   Mirrors the deepest parser [Net_hdrs.base_parser] can build (VLAN,
   L4 and the VXLAN overlay all enabled): any chip parser in this tree
   extracts a prefix of what this walk covers, so keying on the walked
   region can only over-approximate — costing hit rate on flows that
   differ in early payload bytes, never correctness. Truncated or
   foreign frames fall back to the whole frame as key. *)

let ethertype_sfc = Netpkt.Eth.ethertype_sfc
let ethertype_ipv4 = Netpkt.Eth.ethertype_ipv4
let ethertype_vlan = Netpkt.Eth.ethertype_vlan
let udp_port_vxlan = 4789

let header_len frame =
  let n = Bytes.length frame in
  let u8 = Netpkt.Bytes_util.get_uint8 in
  let u16 = Netpkt.Bytes_util.get_uint16 in
  (* IPv4 at [off]; [overlay] opens the VXLAN branch under UDP. *)
  let rec l3 ~overlay off =
    if off + 20 > n then n
    else
      let proto = u8 frame (off + 9) in
      let l4 = off + 20 in
      if proto = Netpkt.Ipv4.proto_tcp then if l4 + 20 > n then n else l4 + 20
      else if proto = Netpkt.Ipv4.proto_udp then
        if l4 + 8 > n then n
        else if overlay && u16 frame (l4 + 2) = udp_port_vxlan then begin
          (* vxlan(8) + inner_eth(14), then the inner stack. *)
          let ie = l4 + 8 + 8 in
          if ie + 14 > n then n
          else if u16 frame (ie + 12) = ethertype_ipv4 then
            l3 ~overlay:false (ie + 14)
          else ie + 14
        end
        else l4 + 8
      else l4
  in
  let vlan off =
    if off + 4 > n then n
    else if u16 frame (off + 2) = ethertype_ipv4 then l3 ~overlay:true (off + 4)
    else off + 4
  in
  if n < 14 then n
  else
    let et = u16 frame 12 in
    if et = ethertype_sfc then begin
      let sfc_end = 14 + Sfc_header.byte_size in
      if sfc_end > n then n
      else
        (* next_protocol is the SFC header's last byte. *)
        let np = u8 frame (sfc_end - 1) in
        if np = Sfc_header.next_proto_ipv4 then l3 ~overlay:true sfc_end
        else if np = 2 then vlan sfc_end
        else sfc_end
    end
    else if et = ethertype_ipv4 then l3 ~overlay:true 14
    else if et = ethertype_vlan then vlan 14
    else 14

let key_of ~in_port frame =
  let hl = header_len frame in
  let b = Bytes.create (2 + hl) in
  Netpkt.Bytes_util.set_uint16 b 0 (in_port land 0xFFFF);
  Bytes.blit frame 0 b 2 hl;
  Bytes.unsafe_to_string b

(* --- Recorder hooks --- *)

let arm t =
  List.iter
    (fun tbl ->
      P4ir.Table.set_on_lookup tbl
        (Some
           (fun () ->
             match t.recording with
             | None -> ()
             | Some r ->
                 if not (List.exists (fun d -> d.dtbl == tbl) r.r_tdeps) then
                   r.r_tdeps <-
                     { dtbl = tbl; tepoch = P4ir.Table.epoch tbl } :: r.r_tdeps)))
    t.tables;
  List.iter
    (fun reg ->
      let dep r =
        if not (List.exists (fun d -> d.dreg == reg) r.r_rdeps) then
          r.r_rdeps <-
            { dreg = reg; repoch = P4ir.Register.epoch reg } :: r.r_rdeps
      in
      P4ir.Register.set_on_read reg
        (Some
           (fun idx v ->
             match t.recording with
             | None -> ()
             | Some r ->
                 dep r;
                 r.r_ops <- R_read (reg, idx, v) :: r.r_ops));
      P4ir.Register.set_on_write reg
        (Some
           (fun idx v ->
             match t.recording with
             | None -> ()
             | Some r ->
                 dep r;
                 r.r_ops <- R_write (reg, idx, v) :: r.r_ops)))
    t.registers

let detach t =
  t.recording <- None;
  t.pending_key <- None;
  List.iter (fun tbl -> P4ir.Table.set_on_lookup tbl None) t.tables;
  List.iter
    (fun reg ->
      P4ir.Register.set_on_read reg None;
      P4ir.Register.set_on_write reg None)
    t.registers

let create ~capacity chip =
  let pipelets = Asic.Chip.pipelets chip in
  let tables = List.concat_map Asic.Pipelet.tables pipelets in
  let registers =
    List.concat_map
      (fun pl -> (Asic.Pipelet.program pl).P4ir.Program.registers)
      pipelets
  in
  let t =
    {
      capacity = max 1 capacity;
      tbl = Hashtbl.create (min 65536 (max 16 capacity));
      head = None;
      tail = None;
      len = 0;
      recording = None;
      pending_key = None;
      stats =
        {
          hits = 0;
          misses = 0;
          stale = 0;
          invalidations = 0;
          uncacheable = 0;
          inserts = 0;
          evictions = 0;
        };
      tables;
      registers;
    }
  in
  arm t;
  t

(* --- LRU plumbing --- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let remove t n =
  unlink t n;
  Hashtbl.remove t.tbl n.nkey;
  t.len <- t.len - 1

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.len <- 0

(* Keys most-recent-first — the LRU order, for tests. *)
let keys_mru t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.nkey :: acc) n.next
  in
  go [] t.head

(* --- Validation and replay --- *)

(* A read is valid when it would see the recorded value again: checked
   against live register state under an overlay of the recorded writes
   applied so far, in recorded order — so read-after-own-write chains
   validate against what the replay will produce, not the pre-state.
   The two failure modes are distinguished for accounting: an epoch
   mismatch is a control-plane invalidation (someone mutated a
   dependency), a read mismatch is packet-time staleness (another flow
   moved shared register state). *)
type validity = Valid | Epoch_changed | Read_mismatch

let validate e =
  let ok = ref true in
  let n = Array.length e.tdeps in
  let i = ref 0 in
  while !ok && !i < n do
    let d = e.tdeps.(!i) in
    if P4ir.Table.epoch d.dtbl <> d.tepoch then ok := false;
    incr i
  done;
  let n = Array.length e.rdeps in
  let i = ref 0 in
  while !ok && !i < n do
    let d = e.rdeps.(!i) in
    if P4ir.Register.epoch d.dreg <> d.repoch then ok := false;
    incr i
  done;
  if not !ok then Epoch_changed
  else if Array.length e.ops > 0 then begin
    let overlay = ref [] in
    let find reg idx =
      List.find_opt (fun (r, i, _) -> r == reg && i = idx) !overlay
    in
    let n = Array.length e.ops in
    let i = ref 0 in
    while !ok && !i < n do
      (match e.ops.(!i) with
      | R_read (reg, idx, v) ->
          let live =
            match find reg idx with
            | Some (_, _, ov) -> ov
            | None -> P4ir.Register.read_raw reg idx
          in
          if not (Int64.equal live v) then ok := false
      | R_write (reg, idx, v) ->
          overlay :=
            (reg, idx, v) :: List.filter (fun (r, i, _) -> not (r == reg && i = idx)) !overlay);
      incr i
    done;
    if !ok then Valid else Read_mismatch
  end
  else Valid

let replay_writes e =
  Array.iter
    (function
      | R_read _ -> ()
      | R_write (reg, idx, v) ->
          P4ir.Register.write reg idx
            (P4ir.Bitval.make ~width:(P4ir.Register.width reg) v))
    e.ops

(* --- Lookup / commit / abort --- *)

type hit = { verdict : Asic.Chip.verdict; latency_ns : float }

let lookup t ~in_port frame =
  let key = key_of ~in_port frame in
  let served =
    match Hashtbl.find_opt t.tbl key with
    | None -> None
    | Some node -> (
        match validate node.entry with
        | Valid ->
            replay_writes node.entry;
            touch t node;
            Some node.entry
        | Epoch_changed ->
            (* A control-plane mutation bumped a dependency's epoch. *)
            remove t node;
            t.stats.invalidations <- t.stats.invalidations + 1;
            None
        | Read_mismatch ->
            (* Packet-time staleness: shared register state moved. *)
            remove t node;
            t.stats.stale <- t.stats.stale + 1;
            None)
  in
  match served with
  | Some e ->
      t.stats.hits <- t.stats.hits + 1;
      let verdict =
        match e.verdict with
        | V_drop -> Asic.Chip.Dropped
        | V_emit { port; prefix } ->
            let hlen = String.length key - 2 in
            let plen = Bytes.length frame - hlen in
            let pxlen = Bytes.length prefix in
            let out = Bytes.create (pxlen + plen) in
            Bytes.blit prefix 0 out 0 pxlen;
            Bytes.blit frame hlen out pxlen plen;
            Asic.Chip.Emitted { port; frame = out }
      in
      Some { verdict; latency_ns = e.latency_ns }
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      (* Arm recording for the full-pipeline run that follows. *)
      t.pending_key <- Some key;
      t.recording <- Some { r_tdeps = []; r_rdeps = []; r_ops = [] };
      None

let abort t =
  t.recording <- None;
  t.pending_key <- None

(* Does [out] end with the input frame's payload (the bytes past the
   keyed header region)? Required for the prefix+payload reconstruction
   on hits; a chain that consumed or rewrote payload bytes (meaning the
   chip parsed deeper than the walk estimated) fails this and stays
   uncacheable. *)
let payload_preserved ~frame ~hlen out =
  let plen = Bytes.length frame - hlen in
  let olen = Bytes.length out in
  olen >= plen
  &&
  let rec go i =
    i >= plen || (Bytes.get out (olen - plen + i) = Bytes.get frame (hlen + i) && go (i + 1))
  in
  go 0

let insert t key entry =
  (match Hashtbl.find_opt t.tbl key with Some old -> remove t old | None -> ());
  if t.len >= t.capacity then (
    match t.tail with
    | Some lru ->
        remove t lru;
        t.stats.evictions <- t.stats.evictions + 1
    | None -> ());
  let node = { nkey = key; entry; prev = None; next = None } in
  Hashtbl.replace t.tbl key node;
  push_front t node;
  t.len <- t.len + 1;
  t.stats.inserts <- t.stats.inserts + 1

let commit t ~frame ~(verdict : Asic.Chip.verdict) ~cpu_round_trips ~recircs
    ~resubmits ~mirrored ~latency_ns =
  match (t.pending_key, t.recording) with
  | None, _ | _, None -> abort t
  | Some key, Some r ->
      abort t;
      let clean =
        cpu_round_trips = 0 && recircs = 0 && resubmits = 0 && not mirrored
      in
      let hlen = String.length key - 2 in
      let cv =
        if not clean then None
        else
          match verdict with
          | Asic.Chip.Emitted { port; frame = out }
            when payload_preserved ~frame ~hlen out ->
              let plen = Bytes.length frame - hlen in
              Some (V_emit { port; prefix = Bytes.sub out 0 (Bytes.length out - plen) })
          | Asic.Chip.Dropped -> Some V_drop
          | Asic.Chip.Emitted _ | Asic.Chip.To_cpu _ -> None
      in
      let deps_current () =
        List.for_all (fun d -> P4ir.Table.epoch d.dtbl = d.tepoch) r.r_tdeps
        && List.for_all
             (fun d -> P4ir.Register.epoch d.dreg = d.repoch)
             r.r_rdeps
      in
      (match cv with
      | Some v when deps_current () ->
          insert t key
            {
              verdict = v;
              latency_ns;
              tdeps = Array.of_list r.r_tdeps;
              rdeps = Array.of_list r.r_rdeps;
              ops = Array.of_list (List.rev r.r_ops);
            }
      | Some _ | None -> t.stats.uncacheable <- t.stats.uncacheable + 1)

(* Fold a replica cache's tallies into [into]'s stats. Entries stay
   where they are — per-shard caches share nothing — so this only
   keeps runtime-wide hit/miss accounting alive when the parallel
   merge tears the replicas down. *)
let merge_stats ~into src =
  let a = into.stats and b = src.stats in
  a.hits <- a.hits + b.hits;
  a.misses <- a.misses + b.misses;
  a.stale <- a.stale + b.stale;
  a.invalidations <- a.invalidations + b.invalidations;
  a.uncacheable <- a.uncacheable + b.uncacheable;
  a.inserts <- a.inserts + b.inserts;
  a.evictions <- a.evictions + b.evictions
