(* Entries live in one encoded form — key and value as canonical byte
   strings — linked through an intrusive LRU list (head = most
   recently used). Everything uniform across NFs (snapshot, digest,
   migration) falls out of that single representation; the typed view
   is a pair of codecs applied at the edges, off the per-packet fast
   path (punt handlers and control-plane sweeps only). *)

type config = { capacity : int; ttl_ns : int64 }

type evict_reason = Capacity | Expired

type table_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
  mutable expirations : int;
}

type entry = {
  key : string;
  mutable value : string;
  mutable touched_ns : int64;
  mutable shard : int64;
  mutable prev : entry option;  (* toward the MRU head *)
  mutable next : entry option;  (* toward the LRU tail *)
}

type tbl = {
  tname : string;
  h : (string, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  tstats : table_stats;
  (* Raw (encoded-form) hooks: replaced by each (re-)registration, so
     migrated/restored tables keep working hooks until their owner
     re-binds. *)
  mutable on_evict_raw : evict_reason -> string -> string -> unit;
  mutable shard_of_raw : string -> int64;
}

type t = {
  cfg : config;
  mutable now_ns : int64;
  tbls : (string, tbl) Hashtbl.t;
}

type 'a conv = { enc : 'a -> string; dec : string -> ('a, string) result }

type ('k, 'v) table = { tb : tbl; store : t; kc : 'k conv; vc : 'v conv }

let create ?(now_ns = 0L) cfg =
  {
    cfg = { cfg with capacity = max 1 cfg.capacity };
    now_ns;
    tbls = Hashtbl.create 8;
  }

let config t = t.cfg
let now t = t.now_ns

(* --- codecs --- *)

module Conv = struct
  let int =
    {
      enc = string_of_int;
      dec =
        (fun s ->
          match int_of_string_opt s with
          | Some i -> Ok i
          | None -> Error ("Conv.int: " ^ s));
    }

  let int64 =
    {
      enc = Int64.to_string;
      dec =
        (fun s ->
          match Int64.of_string_opt s with
          | Some i -> Ok i
          | None -> Error ("Conv.int64: " ^ s));
    }

  let string = { enc = Fun.id; dec = (fun s -> Ok s) }

  let put32 b off v = Bytes.set_int32_be b off (Int64.to_int32 v)

  let get32 s off =
    Int64.logand
      (Int64.of_int32 (Bytes.get_int32_be (Bytes.unsafe_of_string s) off))
      0xFFFFFFFFL

  let ip4 =
    {
      enc =
        (fun ip ->
          let b = Bytes.create 4 in
          put32 b 0 (Netpkt.Ip4.to_int64 ip);
          Bytes.unsafe_to_string b);
      dec =
        (fun s ->
          if String.length s <> 4 then Error "Conv.ip4: bad length"
          else Ok (Netpkt.Ip4.of_int64 (get32 s 0)));
    }

  let five_tuple =
    {
      enc =
        (fun (ft : Netpkt.Flow.five_tuple) ->
          let b = Bytes.create 13 in
          put32 b 0 (Netpkt.Ip4.to_int64 ft.Netpkt.Flow.src);
          put32 b 4 (Netpkt.Ip4.to_int64 ft.Netpkt.Flow.dst);
          Bytes.set_uint8 b 8 (ft.Netpkt.Flow.proto land 0xff);
          Bytes.set_uint16_be b 9 (ft.Netpkt.Flow.src_port land 0xffff);
          Bytes.set_uint16_be b 11 (ft.Netpkt.Flow.dst_port land 0xffff);
          Bytes.unsafe_to_string b);
      dec =
        (fun s ->
          if String.length s <> 13 then Error "Conv.five_tuple: bad length"
          else
            let b = Bytes.unsafe_of_string s in
            Ok
              {
                Netpkt.Flow.src = Netpkt.Ip4.of_int64 (get32 s 0);
                dst = Netpkt.Ip4.of_int64 (get32 s 4);
                proto = Bytes.get_uint8 b 8;
                src_port = Bytes.get_uint16_be b 9;
                dst_port = Bytes.get_uint16_be b 11;
              });
    }
end

let crc_of_string s =
  let b = Bytes.unsafe_of_string s in
  Netpkt.Bytes_util.crc32 b ~off:0 ~len:(Bytes.length b)

let default_shard = crc_of_string

(* --- intrusive LRU list --- *)

let unlink tb e =
  (match e.prev with Some p -> p.next <- e.next | None -> tb.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> tb.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front tb e =
  e.prev <- None;
  e.next <- tb.head;
  (match tb.head with Some h -> h.prev <- Some e | None -> tb.tail <- Some e);
  tb.head <- Some e

let touch tb e now =
  e.touched_ns <- now;
  match tb.head with
  | Some h when h == e -> ()
  | _ ->
      unlink tb e;
      push_front tb e

(* --- raw (encoded-form) operations --- *)

let fresh_tbl name =
  {
    tname = name;
    h = Hashtbl.create 64;
    head = None;
    tail = None;
    tstats = { hits = 0; misses = 0; inserts = 0; evictions = 0; expirations = 0 };
    on_evict_raw = (fun _ _ _ -> ());
    shard_of_raw = default_shard;
  }

let find_or_create_tbl t name =
  match Hashtbl.find_opt t.tbls name with
  | Some tb -> tb
  | None ->
      let tb = fresh_tbl name in
      Hashtbl.replace t.tbls name tb;
      tb

let evict_entry tb reason e =
  unlink tb e;
  Hashtbl.remove tb.h e.key;
  (match reason with
  | Capacity -> tb.tstats.evictions <- tb.tstats.evictions + 1
  | Expired -> tb.tstats.expirations <- tb.tstats.expirations + 1);
  tb.on_evict_raw reason e.key e.value

let expired cfg now e =
  cfg.ttl_ns > 0L && Int64.sub now e.touched_ns >= cfg.ttl_ns

(* Insert preserving an explicit stamp — the shared path for live
   inserts (stamp = now), restore and migration (stamp carried over). *)
let insert_raw t tb ~key ~value ~stamp ~shard =
  (match Hashtbl.find_opt tb.h key with
  | Some e ->
      e.value <- value;
      e.shard <- shard;
      touch tb e stamp
  | None ->
      while Hashtbl.length tb.h >= t.cfg.capacity do
        match tb.tail with
        | Some lru -> evict_entry tb Capacity lru
        | None -> assert false
      done;
      let e =
        { key; value; touched_ns = stamp; shard; prev = None; next = None }
      in
      Hashtbl.replace tb.h key e;
      push_front tb e);
  tb.tstats.inserts <- tb.tstats.inserts + 1

let find_raw t tb key =
  match Hashtbl.find_opt tb.h key with
  | None ->
      tb.tstats.misses <- tb.tstats.misses + 1;
      None
  | Some e ->
      if expired t.cfg t.now_ns e then begin
        evict_entry tb Expired e;
        tb.tstats.misses <- tb.tstats.misses + 1;
        None
      end
      else begin
        touch tb e t.now_ns;
        tb.tstats.hits <- tb.tstats.hits + 1;
        Some e.value
      end

let sorted_tbls t =
  List.sort
    (fun (a : tbl) b -> String.compare a.tname b.tname)
    (Hashtbl.fold (fun _ tb acc -> tb :: acc) t.tbls [])

let advance t ns =
  t.now_ns <- Int64.add t.now_ns ns;
  if t.cfg.ttl_ns <= 0L then 0
  else
    (* LRU order is touch order, so the tail is always the
       oldest-touched entry: sweep from the tail until the first live
       one. *)
    List.fold_left
      (fun total tb ->
        let n = ref 0 in
        let continue = ref true in
        while !continue do
          match tb.tail with
          | Some e when expired t.cfg t.now_ns e ->
              evict_entry tb Expired e;
              incr n
          | _ -> continue := false
        done;
        total + !n)
      0 (sorted_tbls t)

(* --- typed view --- *)

let table t ~name ~key ~value ?shard_hint ?on_evict () =
  let tb = find_or_create_tbl t name in
  (tb.on_evict_raw <-
     (match on_evict with
     | None -> fun _ _ _ -> ()
     | Some f -> (
         fun reason k v ->
           match (key.dec k, value.dec v) with
           | Ok k, Ok v -> f reason k v
           | Error _, _ | _, Error _ -> ())));
  (tb.shard_of_raw <-
     (match shard_hint with
     | None -> default_shard
     | Some f -> (
         fun k -> match key.dec k with Ok k -> f k | Error _ -> default_shard k)));
  (* Adopted (migrated/restored) entries may predate this registration:
     re-home them under the authoritative hint. *)
  let rec rehash = function
    | None -> ()
    | Some e ->
        e.shard <- tb.shard_of_raw e.key;
        rehash e.next
  in
  rehash tb.head;
  { tb; store = t; kc = key; vc = value }

let insert tt k v =
  insert_raw tt.store tt.tb ~key:(tt.kc.enc k) ~value:(tt.vc.enc v)
    ~stamp:tt.store.now_ns
    ~shard:(tt.tb.shard_of_raw (tt.kc.enc k))

let find tt k =
  match find_raw tt.store tt.tb (tt.kc.enc k) with
  | None -> None
  | Some v -> ( match tt.vc.dec v with Ok v -> Some v | Error _ -> None)

let remove tt k =
  let key = tt.kc.enc k in
  match Hashtbl.find_opt tt.tb.h key with
  | None -> ()
  | Some e ->
      unlink tt.tb e;
      Hashtbl.remove tt.tb.h key

let length tt = Hashtbl.length tt.tb.h

let fold f tt acc =
  (* Oldest first: walk from the LRU tail toward the head. *)
  let rec go acc = function
    | None -> acc
    | Some e ->
        let acc =
          match (tt.kc.dec e.key, tt.vc.dec e.value) with
          | Ok k, Ok v -> f k v acc
          | Error _, _ | _, Error _ -> acc
        in
        go acc e.prev
  in
  go acc tt.tb.tail

let stats tt = tt.tb.tstats

let per_table t =
  List.map
    (fun tb -> (tb.tname, Hashtbl.length tb.h, tb.tstats))
    (sorted_tbls t)

(* --- snapshot / restore --- *)

type snapshot = {
  snap_now : int64;
  snap_tables : (string * (string * string * int64) list) list;
      (* (name, (key, value, touched) oldest-first), names sorted *)
}

let entries_oldest_first tb =
  let rec go acc = function
    | None -> List.rev acc
    | Some e -> go ((e.key, e.value, e.touched_ns) :: acc) e.prev
  in
  go [] tb.tail

let snapshot t =
  {
    snap_now = t.now_ns;
    snap_tables =
      List.map (fun tb -> (tb.tname, entries_oldest_first tb)) (sorted_tbls t);
  }

let restore t snap =
  if snap.snap_now > t.now_ns then t.now_ns <- snap.snap_now;
  List.iter
    (fun (name, entries) ->
      let tb = find_or_create_tbl t name in
      Hashtbl.reset tb.h;
      tb.head <- None;
      tb.tail <- None;
      List.iter
        (fun (key, value, stamp) ->
          insert_raw t tb ~key ~value ~stamp ~shard:(tb.shard_of_raw key);
          (* restore is replacement, not fresh traffic *)
          tb.tstats.inserts <- tb.tstats.inserts - 1)
        entries)
    snap.snap_tables

let hex = "0123456789abcdef"

let hex_of s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) hex.[c lsr 4];
    Bytes.set b ((2 * i) + 1) hex.[c land 0xf]
  done;
  Bytes.unsafe_to_string b

let unhex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex"
  else
    let digit c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | _ -> Error (Printf.sprintf "bad hex digit %C" c)
    in
    let b = Bytes.create (n / 2) in
    let rec go i =
      if i >= n / 2 then Ok (Bytes.unsafe_to_string b)
      else
        match (digit s.[2 * i], digit s.[(2 * i) + 1]) with
        | Ok hi, Ok lo ->
            Bytes.set b i (Char.chr ((hi lsl 4) lor lo));
            go (i + 1)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

let snapshot_to_string snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "statestore v1 %Ld\n" snap.snap_now);
  List.iter
    (fun (name, entries) ->
      Buffer.add_string buf
        (Printf.sprintf "table %s %d\n" name (List.length entries));
      List.iter
        (fun (k, v, stamp) ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s %Ld\n" (hex_of k) (hex_of v) stamp))
        entries)
    snap.snap_tables;
  Buffer.contents buf

let snapshot_of_string s =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> l <> "") lines in
  match lines with
  | [] -> Error "State_store.snapshot_of_string: empty"
  | header :: rest ->
      let* snap_now =
        match String.split_on_char ' ' header with
        | [ "statestore"; "v1"; now ] -> (
            match Int64.of_string_opt now with
            | Some n -> Ok n
            | None -> Error "bad clock")
        | _ -> Error "State_store.snapshot_of_string: bad header"
      in
      let rec tables acc lines =
        match lines with
        | [] -> Ok (List.rev acc)
        | l :: rest -> (
            match String.split_on_char ' ' l with
            | [ "table"; name; count ] -> (
                match int_of_string_opt count with
                | None -> Error ("bad entry count for table " ^ name)
                | Some count ->
                    let rec entries acc n lines =
                      if n = 0 then Ok (List.rev acc, lines)
                      else
                        match lines with
                        | [] -> Error ("truncated table " ^ name)
                        | l :: rest -> (
                            match String.split_on_char ' ' l with
                            | [ k; v; stamp ] -> (
                                match
                                  (unhex k, unhex v, Int64.of_string_opt stamp)
                                with
                                | Ok k, Ok v, Some stamp ->
                                    entries ((k, v, stamp) :: acc) (n - 1) rest
                                | Error e, _, _ | _, Error e, _ ->
                                    Error ("table " ^ name ^ ": " ^ e)
                                | _, _, None ->
                                    Error ("table " ^ name ^ ": bad stamp"))
                            | _ -> Error ("table " ^ name ^ ": bad entry line"))
                    in
                    let* es, rest = entries [] count rest in
                    tables ((name, es) :: acc) rest)
            | _ -> Error ("State_store.snapshot_of_string: bad line: " ^ l))
      in
      let* snap_tables = tables [] rest in
      Ok { snap_now; snap_tables }

(* --- digest and migration --- *)

let fold_crc acc s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let head = Bytes.create 4 in
  Bytes.set_int32_be head 0 (Int32.of_int len);
  let acc = Netpkt.Bytes_util.crc32 ~init:acc head ~off:0 ~len:4 in
  Netpkt.Bytes_util.crc32 ~init:acc b ~off:0 ~len

let digest stores =
  (* Union across stores: a shard-partitioned store array and its
     single-store (cold, k=1) equivalent digest alike. Entries sort by
     (key, value) within each table name, so neither shard assignment
     nor LRU order leaks in. *)
  let names =
    List.sort_uniq String.compare
      (Array.to_list stores
      |> List.concat_map (fun t ->
             Hashtbl.fold (fun n _ acc -> n :: acc) t.tbls []))
  in
  List.fold_left
    (fun acc name ->
      let acc = fold_crc acc name in
      let entries =
        Array.to_list stores
        |> List.concat_map (fun t ->
               match Hashtbl.find_opt t.tbls name with
               | None -> []
               | Some tb ->
                   Hashtbl.fold (fun k e acc -> (k, e.value) :: acc) tb.h [])
      in
      let entries = List.sort compare entries in
      List.fold_left
        (fun acc (k, v) -> fold_crc (fold_crc acc k) v)
        acc entries)
    0L names

let migrate ~from ~into =
  let n = Array.length into in
  if n = 0 then invalid_arg "State_store.migrate: empty target";
  let clock =
    Array.fold_left (fun acc t -> max acc t.now_ns) 0L from
  in
  Array.iter (fun t -> if clock > t.now_ns then t.now_ns <- clock) into;
  (* Group every source entry by table, then replay in touch-stamp
     order (key as tie-break) so each target's LRU order is
     stamp-faithful no matter how the sources interleaved. *)
  let names =
    List.sort_uniq String.compare
      (Array.to_list from
      |> List.concat_map (fun t ->
             Hashtbl.fold (fun nm _ acc -> nm :: acc) t.tbls []))
  in
  List.iter
    (fun name ->
      let entries =
        Array.to_list from
        |> List.concat_map (fun t ->
               match Hashtbl.find_opt t.tbls name with
               | None -> []
               | Some tb -> Hashtbl.fold (fun _ e acc -> e :: acc) tb.h [])
      in
      let entries =
        List.sort
          (fun a b ->
            match Int64.compare a.touched_ns b.touched_ns with
            | 0 -> String.compare a.key b.key
            | c -> c)
          entries
      in
      (* Carry hooks over so an evicting target can still mirror into
         the data plane before its owner re-binds. *)
      let hooks =
        Array.to_list from
        |> List.find_map (fun t -> Hashtbl.find_opt t.tbls name)
      in
      List.iter
        (fun e ->
          let home =
            Int64.to_int
              (Int64.rem (Int64.logand e.shard Int64.max_int) (Int64.of_int n))
          in
          let target = into.(home) in
          let tb =
            match Hashtbl.find_opt target.tbls name with
            | Some tb -> tb
            | None ->
                let tb = fresh_tbl name in
                (match hooks with
                | Some src ->
                    tb.on_evict_raw <- src.on_evict_raw;
                    tb.shard_of_raw <- src.shard_of_raw
                | None -> ());
                Hashtbl.replace target.tbls name tb;
                tb
          in
          insert_raw target tb ~key:e.key ~value:e.value ~stamp:e.touched_ns
            ~shard:e.shard;
          (* migration moves entries; it is not fresh traffic *)
          tb.tstats.inserts <- tb.tstats.inserts - 1)
        entries)
    names
