(** A minimal fixed-size domain pool (OCaml 5 [Domain]) for
    embarrassingly parallel task lists — the execution substrate of
    {!Placement.solve_parallel}'s multi-seed annealing restarts.

    Tasks must not share mutable state unless they synchronize it
    themselves; the intended idiom is that each task owns its whole
    working state (scorer caches, RNG, ...) and only returns a value. *)

val run : domains:int -> (unit -> 'a) list -> 'a list
(** [run ~domains tasks] executes every task and returns their results
    in task order, regardless of which domain ran what or in which
    order they finished.

    At most [max 1 (min domains (List.length tasks))] domains run at
    once (the calling domain counts as one, so [domains:1] — or a
    single task — executes sequentially on the caller with no spawn).
    Tasks are handed out dynamically from a shared atomic counter, so
    uneven task durations still balance.

    If any task raises, the remaining tasks still run to completion,
    every spawned domain is joined, and then the first raising task's
    exception (in task order) is re-raised. *)
