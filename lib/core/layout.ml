type group = Seq of string list | Par of string list
type pipelet_layout = group list
type t = (Asic.Pipelet.id * pipelet_layout) list

type coord = {
  pipelet : Asic.Pipelet.id;
  group : int;
  slot : int;
  kind : [ `Seq | `Par ];
}

let group_members = function Seq nfs | Par nfs -> nfs
let nfs_of_pipelet layout = List.concat_map group_members layout
let all_nfs t = List.concat_map (fun (_, l) -> nfs_of_pipelet l) t

let layout_of t id =
  match List.find_opt (fun (i, _) -> Asic.Pipelet.equal_id i id) t with
  | Some (_, l) -> l
  | None -> []

(* The one lookup path: scan a pipelet's groups for an NF. [location],
   [position], [coord] and [index] are all defined in terms of it, so
   they cannot disagree about where an NF sits. *)
let scan_pipelet layout nf =
  let rec go gi = function
    | [] -> None
    | g :: rest -> (
        let members = group_members g in
        match List.find_index (String.equal nf) members with
        | Some si ->
            let kind = match g with Seq _ -> `Seq | Par _ -> `Par in
            Some (gi, si, kind)
        | None -> go (gi + 1) rest)
  in
  go 0 layout

let position layout nf =
  Option.map (fun (gi, si, _) -> (gi, si)) (scan_pipelet layout nf)

let coord t nf =
  List.find_map
    (fun (id, l) ->
      Option.map
        (fun (group, slot, kind) -> { pipelet = id; group; slot; kind })
        (scan_pipelet l nf))
    t

let location t nf = Option.map (fun c -> c.pipelet) (coord t nf)

let index t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (id, layout) ->
      List.iteri
        (fun gi g ->
          let kind = match g with Seq _ -> `Seq | Par _ -> `Par in
          List.iteri
            (fun si nf ->
              if not (Hashtbl.mem tbl nf) then
                Hashtbl.add tbl nf { pipelet = id; group = gi; slot = si; kind })
            (group_members g))
        layout)
    t;
  tbl

let group_kind layout gi =
  match List.nth_opt layout gi with
  | Some (Seq _) -> `Seq
  | Some (Par _) -> `Par
  | None -> invalid_arg "Layout.group_kind: index out of range"

let validate t =
  let nfs = all_nfs t in
  if List.length (List.sort_uniq String.compare nfs) <> List.length nfs then
    Error "layout places some NF more than once"
  else if
    List.exists (fun (_, l) -> List.exists (fun g -> group_members g = []) l) t
  then Error "layout contains an empty group"
  else Ok ()

let stage_demand resources_of layout =
  List.fold_left
    (fun acc g ->
      match g with
      | Seq nfs ->
          acc
          + List.fold_left
              (fun s nf -> s + (resources_of nf).P4ir.Resources.stages)
              0 nfs
      | Par nfs ->
          acc
          + List.fold_left
              (fun s nf -> max s (resources_of nf).P4ir.Resources.stages)
              0 nfs)
    0 layout

let pp_group ppf = function
  | Seq nfs -> Format.fprintf ppf "seq(%s)" (String.concat ", " nfs)
  | Par nfs -> Format.fprintf ppf "par(%s)" (String.concat " | " nfs)

let pp_pipelet_layout ppf layout =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ; ")
    pp_group ppf layout

let pp ppf t =
  List.iter
    (fun (id, l) ->
      Format.fprintf ppf "%a: %a@\n" Asic.Pipelet.pp_id id pp_pipelet_layout l)
    t
