(** Placements: which NFs sit on which pipelet, and how they are
    composed there (§3.2) — back-to-back ([Seq], costs stages, free
    transitions) or side-by-side ([Par], shares stages, transitions need
    a resubmission or recirculation). *)

type group = Seq of string list | Par of string list

type pipelet_layout = group list

type t = (Asic.Pipelet.id * pipelet_layout) list
(** One entry per pipelet that hosts NFs; pipelets absent from the list
    are empty (pass-through). *)

val nfs_of_pipelet : pipelet_layout -> string list
val all_nfs : t -> string list
val layout_of : t -> Asic.Pipelet.id -> pipelet_layout
(** Empty list when the pipelet hosts nothing. *)

val location : t -> string -> Asic.Pipelet.id option

val position : pipelet_layout -> string -> (int * int) option
(** (group index, slot within group). *)

val group_kind : pipelet_layout -> int -> [ `Seq | `Par ]

val index :
  t -> (string, Asic.Pipelet.id * int * int * [ `Seq | `Par ]) Hashtbl.t
(** Whole-layout hash index: NF -> (pipelet, group index, slot, group
    kind). One O(n) pass instead of repeated {!location}/{!position}
    list scans — the lookup structure the traversal solver and its memo
    cache build per layout. First occurrence wins, matching
    {!location} and {!position}. *)

val validate : t -> (unit, string) result
(** Each NF appears at most once across the whole layout; no empty
    groups. *)

val stage_demand :
  (string -> P4ir.Resources.t) -> pipelet_layout -> int
(** MAU stages this layout needs for the NFs alone (framework tables
    excluded): [Seq] groups sum member stages, [Par] groups take the
    max. *)

val pp : Format.formatter -> t -> unit
val pp_pipelet_layout : Format.formatter -> pipelet_layout -> unit
