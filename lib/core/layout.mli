(** Placements: which NFs sit on which pipelet, and how they are
    composed there (§3.2) — back-to-back ([Seq], costs stages, free
    transitions) or side-by-side ([Par], shares stages, transitions need
    a resubmission or recirculation). *)

type group = Seq of string list | Par of string list

type pipelet_layout = group list

type t = (Asic.Pipelet.id * pipelet_layout) list
(** One entry per pipelet that hosts NFs; pipelets absent from the list
    are empty (pass-through). *)

type coord = {
  pipelet : Asic.Pipelet.id;
  group : int;  (** group index within the pipelet's layout *)
  slot : int;  (** slot within the group *)
  kind : [ `Seq | `Par ];  (** the group's composition kind *)
}
(** Where an NF sits: everything the traversal solver consults about a
    placement. {!location}, {!position}, {!coord} and {!index} all go
    through one internal scan, so there is a single lookup path. *)

val nfs_of_pipelet : pipelet_layout -> string list
val all_nfs : t -> string list
val layout_of : t -> Asic.Pipelet.id -> pipelet_layout
(** Empty list when the pipelet hosts nothing. *)

val coord : t -> string -> coord option
(** First occurrence of the NF across the layout. *)

val location : t -> string -> Asic.Pipelet.id option
(** [coord]'s pipelet alone. *)

val position : pipelet_layout -> string -> (int * int) option
(** (group index, slot within group). *)

val group_kind : pipelet_layout -> int -> [ `Seq | `Par ]

val index : t -> (string, coord) Hashtbl.t
(** Whole-layout hash index: NF -> {!coord}. One O(n) pass instead of
    repeated {!location}/{!position} list scans — the lookup structure
    the traversal solver and its memo cache build per layout, and the
    structure {!Placement}'s move-diff annealer maintains incrementally.
    First occurrence wins, matching {!coord}. *)

val validate : t -> (unit, string) result
(** Each NF appears at most once across the whole layout; no empty
    groups. *)

val stage_demand :
  (string -> P4ir.Resources.t) -> pipelet_layout -> int
(** MAU stages this layout needs for the NFs alone (framework tables
    excluded): [Seq] groups sum member stages, [Par] groups take the
    max. *)

val pp : Format.formatter -> t -> unit
val pp_pipelet_layout : Format.formatter -> pipelet_layout -> unit
