(** Telemetry glue for the Dejavu data plane: one registry + flight
    recorder per observer, chip hook installation, journey assembly from
    chip trace marks, and snapshot/JSON export. The runtime owns an
    observer when telemetry is on (see {!Runtime.set_telemetry}); the
    hot-path counters it bumps live in this observer's registry. *)

type t

val default_ring_capacity : int
(** 256 — what {!create} uses when [ring_capacity] is omitted. *)

val create : ?ring_capacity:int -> Telemetry.Level.t -> t
(** A fresh registry and an empty flight recorder ([ring_capacity]
    journeys, default {!default_ring_capacity}). *)

val level : t -> Telemetry.Level.t
val registry : t -> Telemetry.Registry.t
val ring : t -> Telemetry.Journey.t Telemetry.Ring.t

val int_sink : t -> Telemetry.Int_report.t
(** The observer's INT postcard sink: at [Journeys], the runtime turns
    every packet's per-hop records into a postcard here, keyed by the
    packet's 5-tuple. Ring capacity matches the flight recorder's. *)

val attach :
  registry:Telemetry.Registry.t -> level:Telemetry.Level.t -> Asic.Chip.t -> unit
(** Enable chip-level instrumentation at [level]: table stats, per-NF
    label counters backed by the given registry ([nf.<name>.applies]),
    and the SFC journey probe. The registry is explicit — no global
    state — so per-domain observers each wire their own. *)

val attach_observer : t -> Asic.Chip.t -> unit
(** {!attach} with this observer's own registry and level. *)

val detach : Asic.Chip.t -> unit
(** Back to [Off]: stats discarded, uninstrumented controls recompiled. *)

val sfc_probe : P4ir.Phv.t -> Telemetry.Journey.hop_meta
(** Reads (service_path_id, service_index) and the valid-header list off
    a PHV — what {!attach} installs into the chip. *)

val error_class : string -> string
(** Coarse class of a runtime error message ([cpu_loop], [pass_limit],
    [bad_egress], [parse], [other]) — the error/drop-reason counter
    suffix. *)

val hops_of_result : Asic.Chip.result -> Telemetry.Journey.hop list
(** Segment a chip result's flat trace into per-pipelet-pass hops using
    its Journeys-mode marks (empty when marks are empty). *)

val verdict_string : Asic.Chip.verdict -> string
val next_journey_id : t -> int
val record_journey : t -> Telemetry.Journey.t -> unit
val journeys : t -> Telemetry.Journey.t list
(** Flight-recorder contents, oldest first. *)

val sync_tables : t -> Asic.Chip.t -> unit
(** Copy live per-table hit/miss tallies into registry counters
    ([table.<pipelet>.<name>.hits/.misses]). *)

val snapshot : t -> Asic.Chip.t -> Telemetry.Registry.snapshot
(** {!sync_tables} then snapshot the registry. *)

val table_entry_hits :
  Asic.Chip.t -> (string * (P4ir.Table.entry * int) list) list
(** Per stats-enabled table ("<pipelet>/<table>"), the installed entries
    with hit counts in insertion order. *)

val json : ?indent:int -> t -> Asic.Chip.t -> string
val pp : Format.formatter -> t -> Asic.Chip.t -> unit
