(** The live control plane: a typed op language over a running chip's
    tables and registers, and a producer/consumer update queue.

    Modeled on the SONiC redis-channel split between producers (routing
    daemons, an operator CLI) and the consumer that owns the hardware:
    producers {!submit} batches of ops to a {!queue} at any time, from
    any domain; the data-plane owner drains the queue and applies each
    batch *between* packet batches, so a batch is atomic with respect
    to traffic — no packet ever observes a half-applied batch.
    [Runtime.apply_ops] / [Runtime.sync] are the front door; nothing
    outside tests should mutate a compiled chip's tables directly.

    Ops address tables and registers by their composed (per-NF
    instance) names, resolved through {!Asic.Chip.find_table} /
    {!Asic.Chip.find_register} — the names [Compose.nf_table_name]
    assigns. Every successful op bumps the touched object's epoch
    exactly like direct mutation does, so flow-cache invalidation is
    scoped to the touched tables and needs no extra plumbing.

    Replica coherence under sharding is structural: the parallel
    runtime clones per-domain replicas from the primary chip at each
    batch start and discards them after, so ops applied to the primary
    between batches are seen by every shard of the next batch, and by
    none of the current one. *)

(** One mutation of a single table. [Add] installs (duplicate match
    keys allowed, as in {!P4ir.Table.add_entry}); [Mod] rebinds the
    action of — and [Del] removes — the installed entry whose match
    key (priority, patterns) equals the given entry's; [Clear] drops
    every entry. *)
type table_op =
  | Add of P4ir.Table.entry
  | Mod of P4ir.Table.entry
  | Del of P4ir.Table.entry
  | Clear

(** A chip-level op: a table mutation or a register reset, addressed by
    composed object name. *)
type op = Table of string * table_op | Reg_reset of string

val apply_table : P4ir.Table.t -> table_op -> (unit, string) result
(** Apply one table op to a resolved table handle. *)

val apply : Asic.Chip.t -> op -> (unit, string) result
(** Resolve the op's target on [chip] by name and apply it. Errors on
    unknown names and on the underlying mutation's failures. *)

val apply_all : Asic.Chip.t -> op list -> (int, string) result
(** Apply in order, stopping at the first failure. [Ok n] applied all
    [n] ops; [Error] prefixes the failing op's position. Atomicity is
    with respect to traffic (the caller applies between packet
    batches), not rollback — a failed batch leaves the prefix applied,
    like a partially-accepted P4Runtime write. *)

(** {2 Update queue}

    A mutex-guarded multi-producer queue of op batches. Producers run
    anywhere (CPU handlers, CLI threads); the single consumer is the
    runtime that owns the primary chip. *)

type queue

type batch = {
  id : int;
  ops : op list;
  submitted_ns : int64;
      (** monotonic-clock stamp taken at {!submit} — the consumer's
          drain latency is measured against it *)
}

val queue : unit -> queue

val submit : queue -> op list -> int
(** Enqueue one batch; returns its id (monotone per queue). *)

val pending : queue -> int
(** Batches waiting to be drained. *)

val drain : queue -> batch list
(** Atomically take every pending batch, in submission order. *)

val note : queue -> int -> (int, string) result -> unit
(** Record the outcome of applying batch [id] ([Ok ops_applied] or the
    error), for producers to inspect. Kept for the last 256 batches. *)

val results : queue -> (int * (int, string) result) list
(** Recorded outcomes, most recent first. *)

(** {2 State digest}

    A canonical digest of a chip's control-plane-visible state: every
    table's entries in insertion order (priority, patterns, action,
    args) and every register's nonzero cells, CRC-32-folded in pipelet
    order. Two chips that processed the same op history — live under
    traffic or cold — digest equal; used by [bench runtime --churn] to
    verify live-applied state against a cold-built runtime. Packet-time
    state (register writes by traffic) is part of the digest, so
    compare either before traffic or across runs with identical
    traffic. *)

val table_digest : P4ir.Table.t -> int64
val state_digest : Asic.Chip.t -> int64

val pp_op : Format.formatter -> op -> unit
