(** Per-shard exact-match flow cache (EMC) memoizing whole-chain
    verdicts.

    Keyed on the arrival port plus the frame's entire header region
    (every byte the chip's parser family can extract), so two frames
    with equal keys are indistinguishable to the match-action pipeline;
    the payload passes through opaquely and is re-appended on hits.
    Stateful NFs stay correct through a recorded side-effect plan:
    table dependencies (with mutation epochs), register dependencies
    (with reset epochs) and the ordered register read/write trace. A
    hit revalidates the plan against live state — replaying recorded
    writes over the recorded reads — before serving the memoized
    verdict and re-applying the writes; any mismatch drops the entry
    and falls back to the full pipeline.

    Uncacheable outcomes: CPU punts and round trips, recirculations,
    resubmissions, mirrored copies, to-CPU verdicts, errors, and
    emitted frames that did not preserve the input payload.

    Eviction is LRU at a fixed capacity; invalidation is lazy and
    epoch-based (a stale entry dies at its next lookup). One cache
    serves one chip: {!create} arms lookup/access recorders on every
    table and register of that chip, so per-domain shard replicas each
    need their own cache over their own replica chip. *)

type t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
      (** entries dropped on a failed read-replay revalidation —
          packet-time staleness (shared register state moved) *)
  mutable invalidations : int;
      (** entries dropped on a dependency epoch mismatch — a
          control-plane mutation (table op, register reset) under the
          entry *)
  mutable uncacheable : int;  (** miss runs that could not be inserted *)
  mutable inserts : int;
  mutable evictions : int;
}

val create : capacity:int -> Asic.Chip.t -> t
(** Build a cache for [chip] and arm its recorder hooks on every table
    and register. Capacity is clamped to at least 1. *)

val detach : t -> unit
(** Disarm all recorder hooks and drop any pending recording. The cache
    must not be used afterwards. *)

val capacity : t -> int
val length : t -> int
val stats : t -> stats
val hit_rate : t -> float
(** hits / (hits + misses), 0 when idle. *)

val clear : t -> unit
(** Drop every entry (stats are kept). *)

type hit = { verdict : Asic.Chip.verdict; latency_ns : float }

val lookup : t -> in_port:int -> Bytes.t -> hit option
(** On a validated hit: LRU-touch, replay the write plan and return the
    reconstructed verdict. On a miss (or a failed revalidation, which
    also drops the entry): start recording the side-effect plan for the
    full-pipeline run the caller is about to perform, to be finished by
    {!commit} or {!abort}. *)

val commit :
  t ->
  frame:Bytes.t ->
  verdict:Asic.Chip.verdict ->
  cpu_round_trips:int ->
  recircs:int ->
  resubmits:int ->
  mirrored:bool ->
  latency_ns:float ->
  unit
(** Finish the recording opened by a {!lookup} miss: insert the entry
    when the outcome is cacheable (and its dependencies were not
    mutated mid-run, e.g. by a CPU handler), else count it
    uncacheable. [frame] is the original input frame. *)

val abort : t -> unit
(** Discard a pending recording (error outcomes). *)

val merge_stats : into:t -> t -> unit
(** Fold [src]'s stats tallies into [into]'s. Entries are not moved —
    per-shard caches share nothing; used when replica caches are
    discarded after a parallel batch so runtime-wide accounting
    survives. *)

(** {2 Introspection for tests and benches} *)

val header_len : Bytes.t -> int
(** Length of the keyed header region: a structural walk mirroring the
    deepest parser [Net_hdrs.base_parser] can build, falling back to
    the whole frame for truncated or foreign frames. *)

val key_of : in_port:int -> Bytes.t -> string
(** The cache key: 2 bytes of arrival port + the header region. *)

val keys_mru : t -> string list
(** Current keys, most recently used first. *)
