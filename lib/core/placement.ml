type strategy =
  | Naive
  | Greedy
  | Anneal of { iterations : int; seed : int; initial_temp : float }
  | Exhaustive

let default_anneal = Anneal { iterations = 4000; seed = 1; initial_temp = 2.0 }

type input = {
  spec : Asic.Spec.t;
  resources_of : string -> P4ir.Resources.t;
  chains : Chain.t list;
  entry_pipeline : int;
  pinned : (string * Asic.Pipelet.id) list;
  framework_stages_per_nf : int;
  framework_stages_fixed : int;
}

let stages_needed input layout =
  let nf_count = List.length (Layout.nfs_of_pipelet layout) in
  Layout.stage_demand input.resources_of layout
  + (nf_count * input.framework_stages_per_nf)
  + if nf_count > 0 then input.framework_stages_fixed else 0

let feasible input layout =
  List.for_all
    (fun (_, pl) -> stages_needed input pl <= input.spec.Asic.Spec.stages_per_pipelet)
    layout

(* Earliest position of an NF across chains, weighting heavier chains
   first for tie stability. *)
let rank_of chains nf =
  List.fold_left
    (fun acc (c : Chain.t) ->
      match Chain.position c nf with Some i -> min acc i | None -> acc)
    max_int chains

(* Order co-located NFs so that sequential composition follows the
   chains: topologically sort by weighted pairwise precedence (a before
   b when the heavier share of traffic visits a first), breaking ties
   and cycles by earliest chain position. *)
let canonical_order chains nfs =
  let prec a b =
    (* positive: a should come before b *)
    List.fold_left
      (fun acc (c : Chain.t) ->
        match (Chain.position c a, Chain.position c b) with
        | Some i, Some j when i < j -> acc +. c.Chain.weight
        | Some i, Some j when i > j -> acc -. c.Chain.weight
        | _ -> acc)
      0.0 chains
  in
  let by_rank =
    List.stable_sort (fun a b -> compare (rank_of chains a) (rank_of chains b)) nfs
  in
  (* Kahn's algorithm over the majority-precedence digraph. *)
  let rec topo placed remaining =
    match remaining with
    | [] -> List.rev placed
    | _ -> (
        let ready =
          List.filter
            (fun nf ->
              List.for_all
                (fun other ->
                  String.equal other nf || prec other nf <= 0.0)
                remaining)
            remaining
        in
        match ready with
        | nf :: _ ->
            topo (nf :: placed) (List.filter (fun o -> not (String.equal o nf)) remaining)
        | [] ->
            (* Precedence cycle (conflicting chains): fall back to rank
               order for the rest. *)
            List.rev placed @ remaining)
  in
  topo [] by_rank

(* The one fit rule for co-located NFs: chain-canonical order, [Seq]
   when the stage budget allows, [Par] fallback otherwise. Shared by
   [build_layout] and the naive solver's fit check so no strategy can
   disagree with the evaluator about what fits. *)
let fit_pipelet input nfs =
  let ordered = canonical_order input.chains nfs in
  let budget = input.spec.Asic.Spec.stages_per_pipelet in
  let seq = [ Layout.Seq ordered ] in
  if stages_needed input seq <= budget then Some seq
  else if List.length ordered > 1 then begin
    let par = [ Layout.Par ordered ] in
    if stages_needed input par <= budget then Some par else None
  end
  else None

let build_layout input assignment =
  let ids =
    List.sort_uniq Asic.Pipelet.compare_id (List.map snd assignment)
  in
  let rec build acc = function
    | [] -> Some (List.rev acc)
    | id :: rest -> (
        let nfs =
          List.filter_map
            (fun (nf, i) -> if Asic.Pipelet.equal_id i id then Some nf else None)
            assignment
        in
        match fit_pipelet input nfs with
        | Some pl -> build ((id, pl) :: acc) rest
        | None -> None)
  in
  build [] ids

let evaluate input layout =
  if not (feasible input layout) then None
  else
    Traversal.cost input.spec layout ~entry_pipeline:input.entry_pipeline
      input.chains

(* --- scorer ---------------------------------------------------------- *)

(* The public backend selector: [Fast] is the production path (heap
   solver, traversal memo cache, fit memo, move-diff annealing);
   [Reference] is the uncached array-scan oracle every fast path is
   proven against. *)
type scorer = Fast | Reference

(* Per-solve scorer state. [fit] caches [fit_pipelet] results keyed by
   the co-located NF list — valid only while [input.chains] is fixed, so
   callers that rewrite chains (greedy's truncation) must drop it. *)
type scorer_state = {
  backend : [ `Fast of Traversal.cache | `Reference ];
  fit : (string list, Layout.pipelet_layout option) Hashtbl.t option;
}

let make_scorer = function
  | Reference -> { backend = `Reference; fit = None }
  | Fast ->
      {
        backend = `Fast (Traversal.cache_create ());
        fit = Some (Hashtbl.create 256);
      }

let score_layout scorer input layout =
  match scorer.backend with
  | `Fast cache ->
      Traversal.cost_cached cache input.spec layout
        ~entry_pipeline:input.entry_pipeline input.chains
  | `Reference ->
      Traversal.cost_reference input.spec layout
        ~entry_pipeline:input.entry_pipeline input.chains

let fit_pipelet_memo scorer input nfs =
  match scorer with
  | Some { fit = Some tbl; _ } -> (
      match Hashtbl.find_opt tbl nfs with
      | Some r -> r
      | None ->
          let r = fit_pipelet input nfs in
          Hashtbl.add tbl nfs r;
          r)
  | Some { fit = None; _ } | None -> fit_pipelet input nfs

let build_layout_memo ?scorer input assignment =
  let ids =
    List.sort_uniq Asic.Pipelet.compare_id (List.map snd assignment)
  in
  let rec build acc = function
    | [] -> Some (List.rev acc)
    | id :: rest -> (
        let nfs =
          List.filter_map
            (fun (nf, i) -> if Asic.Pipelet.equal_id i id then Some nf else None)
            assignment
        in
        match fit_pipelet_memo scorer input nfs with
        | Some pl -> build ((id, pl) :: acc) rest
        | None -> None)
  in
  build [] ids

(* [build_layout] already enforces the per-pipelet stage budget, so a
   built layout needs no second [feasible] pass — score it directly. *)
let evaluate_assignment ?scorer input assignment =
  match build_layout_memo ?scorer input assignment with
  | None -> None
  | Some layout ->
      let cost =
        match scorer with
        | Some s -> score_layout s input layout
        | None ->
            Traversal.cost input.spec layout
              ~entry_pipeline:input.entry_pipeline input.chains
      in
      Option.map (fun c -> (layout, c)) cost

let all_nf_names input = Chain.all_nfs input.chains

let pipelet_choices input = Asic.Pipelet.all_ids input.spec

let free_nfs input =
  List.filter
    (fun nf -> not (List.mem_assoc nf input.pinned))
    (canonical_order input.chains (all_nf_names input))

(* --- move diffs ------------------------------------------------------ *)

module Move = struct
  type t = { nf : string; src : Asic.Pipelet.id; dst : Asic.Pipelet.id }

  let pp ppf t =
    Format.fprintf ppf "%s: %a -> %a" t.nf Asic.Pipelet.pp_id t.src
      Asic.Pipelet.pp_id t.dst
end

(* Incremental layout/scoring state for the annealer: the layout is held
   as per-pipelet (NF list, fitted groups) slots in a [compare_id]-sorted
   array over every pipelet of the spec, next to the live [Layout.index]
   coordinate table and the per-chain transition counts. Applying a
   [Move.t] re-fits only the two affected pipelets, re-indexes only
   their NFs, and re-solves only the chains the move could change —
   everything else (slots, coordinates, counts, memo entries) is reused
   verbatim, so the resulting layout, index and cost are identical to a
   from-scratch [build_layout]+score of the moved assignment
   (QCheck-tested against exactly that oracle).

   NF lists are kept in global assignment order ([d_order]), matching
   the [List.filter_map] order [build_layout] derives from the
   assignment list, so the memoized [fit_pipelet] sees byte-identical
   keys on both paths. *)
type diff = {
  d_input : input;
  d_scorer : scorer_state;
  d_cache : Traversal.kcache;
  d_order : (string, int) Hashtbl.t;  (** NF -> position in the assignment *)
  d_chain_arr : Chain.t array;
  d_chains_of : (string, int list) Hashtbl.t;  (** NF -> chain indices *)
  d_ids : Asic.Pipelet.id array;  (** all pipelets, [compare_id]-sorted *)
  d_ord : (Asic.Pipelet.id, int) Hashtbl.t;  (** id -> index in [d_ids] *)
  d_slots : (string list * Layout.pipelet_layout option) option array;
      (** per-pipelet residents and their fit; [None] = hosts nothing *)
  mutable d_unfit : int;  (** pipelets whose fit failed *)
  d_index : (string, Layout.coord) Hashtbl.t;
      (** valid only while [d_unfit = 0] *)
  d_counts : (int * int) option array;  (** per-chain, while [d_unfit = 0] *)
  mutable d_cost : float option;
  mutable d_pending : (unit -> unit) option;  (** undo of the staged move *)
}

(* Exactly [Traversal.cost_cached]'s fold, over stored counts: same
   left-to-right adds via [chain_transition_cost], so incremental and
   from-scratch scores are bit-identical. *)
let cost_of_counts chains counts =
  let rec go i total = function
    | [] -> Some total
    | (c : Chain.t) :: rest -> (
        match counts.(i) with
        | None -> None
        | Some (recircs, resubmits) ->
            go (i + 1)
              (total +. Traversal.chain_transition_cost c ~recircs ~resubmits)
              rest)
  in
  go 0 0.0 chains

let index_add_pipelet index id groups =
  List.iteri
    (fun gi g ->
      let kind, members =
        match g with
        | Layout.Seq nfs -> (`Seq, nfs)
        | Layout.Par nfs -> (`Par, nfs)
      in
      List.iteri
        (fun si nf ->
          Hashtbl.replace index nf
            { Layout.pipelet = id; group = gi; slot = si; kind })
        members)
    groups

(* Recompute index, counts and cost from the per-pipelet fits; only
   called while every pipelet fits. *)
let diff_refresh d =
  Hashtbl.reset d.d_index;
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (_, Some groups) -> index_add_pipelet d.d_index d.d_ids.(i) groups
      | Some (_, None) | None -> ())
    d.d_slots;
  Array.iteri
    (fun i c ->
      d.d_counts.(i) <-
        Traversal.chain_counts_keyed d.d_cache d.d_input.spec ~index:d.d_index
          ~entry_pipeline:d.d_input.entry_pipeline c)
    d.d_chain_arr;
  d.d_cost <- cost_of_counts d.d_input.chains d.d_counts

let diff_of_assignment ~scorer input assignment =
  (* The diff owns a canonicalized-key counts memo ({!Traversal.kcache});
     the scorer's string-fingerprint cache stays with the full-rebuild
     scoring path ([evaluate_assignment]). *)
  let cache = Traversal.kcache_create () in
  let order = Hashtbl.create 32 in
  List.iteri (fun i (nf, _) -> Hashtbl.replace order nf i) assignment;
  let chains_of = Hashtbl.create 32 in
  List.iteri
    (fun ci (c : Chain.t) ->
      List.iter
        (fun nf ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt chains_of nf) in
          if not (List.mem ci cur) then Hashtbl.replace chains_of nf (ci :: cur))
        c.Chain.nfs)
    input.chains;
  (* Every pipelet of the spec gets a slot (moves may target empty
     ones); assignment ids outside the spec are merged in defensively
     for the public [diff_create]. *)
  let ids =
    Array.of_list
      (List.sort_uniq Asic.Pipelet.compare_id
         (Asic.Pipelet.all_ids input.spec @ List.map snd assignment))
  in
  let ord = Hashtbl.create (2 * Array.length ids) in
  Array.iteri (fun i id -> Hashtbl.replace ord id i) ids;
  let slots = Array.make (Array.length ids) None in
  List.iter
    (fun (_, id) ->
      let i = Hashtbl.find ord id in
      if slots.(i) = None then begin
        let nfs =
          List.filter_map
            (fun (nf, id') ->
              if Asic.Pipelet.equal_id id' id then Some nf else None)
            assignment
        in
        slots.(i) <- Some (nfs, fit_pipelet_memo (Some scorer) input nfs)
      end)
    assignment;
  let unfit =
    Array.fold_left
      (fun acc s -> match s with Some (_, None) -> acc + 1 | _ -> acc)
      0 slots
  in
  let d =
    {
      d_input = input;
      d_scorer = scorer;
      d_cache = cache;
      d_order = order;
      d_chain_arr = Array.of_list input.chains;
      d_chains_of = chains_of;
      d_ids = ids;
      d_ord = ord;
      d_slots = slots;
      d_unfit = unfit;
      d_index = Hashtbl.create 32;
      d_counts = Array.make (List.length input.chains) None;
      d_cost = None;
      d_pending = None;
    }
  in
  if unfit = 0 then diff_refresh d;
  d

let diff_create input assignment =
  diff_of_assignment ~scorer:(make_scorer Fast) input assignment

let diff_cost d = d.d_cost

let diff_layout d =
  if d.d_unfit > 0 then None
  else begin
    let acc = ref [] in
    for i = Array.length d.d_slots - 1 downto 0 do
      match d.d_slots.(i) with
      | Some (_, Some pl) -> acc := (d.d_ids.(i), pl) :: !acc
      | Some (_, None) -> assert false
      | None -> ()
    done;
    Some !acc
  end

let diff_index d = d.d_index

(* The grouping with [nf] deleted (empty groups dropped). When a
   re-fitted pipelet equals the old grouping minus the moved NF, the
   remaining NFs keep their relative order, group partition and kind —
   exactly the data {!Traversal.chain_key} normalizes over — so every
   chain not containing the moved NF keeps its counts and needs no
   re-solve at all. *)
let groups_minus groups nf =
  List.filter_map
    (fun gr ->
      let kind, members =
        match gr with
        | Layout.Seq m -> (`Seq, m)
        | Layout.Par m -> (`Par, m)
      in
      match List.filter (fun f -> not (String.equal f nf)) members with
      | [] -> None
      | m -> Some (match kind with `Seq -> Layout.Seq m | `Par -> Layout.Par m))
    groups

(* Stage a move: on [Some cost] the new state is live and must be
   either [diff_commit]ted or [diff_revert]ed; on [None] the candidate
   does not fit (or remains infeasible) and the state is unchanged
   apart from a no-op pending marker. *)
let diff_try d (m : Move.t) =
  if d.d_pending <> None then
    invalid_arg "Placement.diff: previous move neither committed nor reverted";
  if Asic.Pipelet.equal_id m.Move.src m.Move.dst then begin
    (* No-op move: candidate state = current state. *)
    d.d_pending <- Some (fun () -> ());
    d.d_cost
  end
  else begin
    let ord_of id =
      match Hashtbl.find_opt d.d_ord id with
      | Some o -> o
      | None -> invalid_arg "Placement.diff: unknown pipelet"
    in
    let so = ord_of m.Move.src in
    let dst_o = ord_of m.Move.dst in
    match d.d_slots.(so) with
    | None -> invalid_arg "Placement.diff: move source hosts no NFs"
    | Some (src_nfs, src_fit_old) ->
        if not (List.mem m.Move.nf src_nfs) then
          invalid_arg "Placement.diff: NF is not on the move source";
        let input = d.d_input in
        let src_nfs' =
          List.filter (fun f -> not (String.equal f m.Move.nf)) src_nfs
        in
        let old_dst_slot = d.d_slots.(dst_o) in
        let dst_nfs_old =
          match old_dst_slot with Some (nfs, _) -> nfs | None -> []
        in
        let nf_ord = Hashtbl.find d.d_order m.Move.nf in
        let rec insert = function
          | [] -> [ m.Move.nf ]
          | f :: rest ->
              if Hashtbl.find d.d_order f > nf_ord then m.Move.nf :: f :: rest
              else f :: insert rest
        in
        let dst_nfs' = insert dst_nfs_old in
        let src_slot' =
          match src_nfs' with
          | [] -> None (* pipelet emptied *)
          | l -> Some (l, fit_pipelet_memo (Some d.d_scorer) input l)
        in
        let dst_fit' = fit_pipelet_memo (Some d.d_scorer) input dst_nfs' in
        let unfit' =
          d.d_unfit
          - (if src_fit_old = None then 1 else 0)
          - (match old_dst_slot with Some (_, None) -> 1 | _ -> 0)
          + (match src_slot' with Some (_, None) -> 1 | _ -> 0)
          + (if dst_fit' = None then 1 else 0)
        in
        if unfit' > 0 then None (* candidate infeasible; nothing staged *)
        else begin
          let old_src_slot = d.d_slots.(so) in
          let old_cost = d.d_cost in
          let dst_slot' = Some (dst_nfs', dst_fit') in
          if d.d_unfit > 0 then begin
            (* Leaving an infeasible state: coordinates and counts were
               never valid, so rebuild them wholesale (rare — only ever
               right after an infeasible initial assignment). *)
            let old_unfit = d.d_unfit in
            let old_index =
              Hashtbl.fold (fun k v acc -> (k, v) :: acc) d.d_index []
            in
            let old_counts = Array.copy d.d_counts in
            d.d_slots.(so) <- src_slot';
            d.d_slots.(dst_o) <- dst_slot';
            d.d_unfit <- 0;
            diff_refresh d;
            d.d_pending <-
              Some
                (fun () ->
                  d.d_slots.(so) <- old_src_slot;
                  d.d_slots.(dst_o) <- old_dst_slot;
                  d.d_unfit <- old_unfit;
                  d.d_cost <- old_cost;
                  Array.blit old_counts 0 d.d_counts 0 (Array.length old_counts);
                  Hashtbl.reset d.d_index;
                  List.iter (fun (k, v) -> Hashtbl.replace d.d_index k v) old_index);
            d.d_cost
          end
          else begin
            (* Incremental path: only the two touched pipelets change
               coordinates, so at most their NFs' chains need
               re-solving — and when both re-fits preserve the
               co-residents' structure (the common case: the moved NF
               slots out of / into an otherwise unchanged grouping),
               only the moved NF's own chains do. *)
            let touched = src_nfs @ dst_nfs_old in
            let saved_index =
              List.map (fun f -> (f, Hashtbl.find_opt d.d_index f)) touched
            in
            List.iter (fun f -> Hashtbl.remove d.d_index f) touched;
            (match src_slot' with
            | Some (_, Some groups) -> index_add_pipelet d.d_index m.Move.src groups
            | Some (_, None) | None -> ());
            (match dst_fit' with
            | Some groups -> index_add_pipelet d.d_index m.Move.dst groups
            | None -> ());
            let src_preserved =
              match (src_fit_old, src_slot') with
              | Some old_groups, None -> groups_minus old_groups m.Move.nf = []
              | Some old_groups, Some (_, Some new_groups) ->
                  groups_minus old_groups m.Move.nf = new_groups
              | _ -> false
            in
            let dst_preserved =
              match dst_fit' with
              | Some new_groups ->
                  let old_groups =
                    match old_dst_slot with
                    | Some (_, Some g) -> g
                    | Some (_, None) | None -> []
                  in
                  groups_minus new_groups m.Move.nf = old_groups
              | None -> false
            in
            let affected =
              if src_preserved && dst_preserved then
                Option.value ~default:[]
                  (Hashtbl.find_opt d.d_chains_of m.Move.nf)
              else
                List.sort_uniq compare
                  (List.concat_map
                     (fun f ->
                       Option.value ~default:[]
                         (Hashtbl.find_opt d.d_chains_of f))
                     touched)
            in
            let saved_counts =
              List.map (fun i -> (i, d.d_counts.(i))) affected
            in
            List.iter
              (fun i ->
                d.d_counts.(i) <-
                  Traversal.chain_counts_keyed d.d_cache input.spec
                    ~index:d.d_index ~entry_pipeline:input.entry_pipeline
                    d.d_chain_arr.(i))
              affected;
            d.d_slots.(so) <- src_slot';
            d.d_slots.(dst_o) <- dst_slot';
            d.d_cost <- cost_of_counts input.chains d.d_counts;
            d.d_pending <-
              Some
                (fun () ->
                  d.d_slots.(so) <- old_src_slot;
                  d.d_slots.(dst_o) <- old_dst_slot;
                  d.d_cost <- old_cost;
                  List.iter (fun (i, c) -> d.d_counts.(i) <- c) saved_counts;
                  List.iter
                    (fun (f, co) ->
                      match co with
                      | Some co -> Hashtbl.replace d.d_index f co
                      | None -> Hashtbl.remove d.d_index f)
                    saved_index);
            d.d_cost
          end
        end
  end

let diff_commit d = d.d_pending <- None

let diff_revert d =
  (match d.d_pending with Some undo -> undo () | None -> ());
  d.d_pending <- None

let diff_apply d m =
  match diff_try d m with
  | Some cost ->
      diff_commit d;
      `Applied cost
  | None ->
      diff_revert d;
      `Unfit


(* --- strategies --- *)

let solve_naive ~scorer input =
  let order = pipelet_choices input in
  let n = List.length order in
  (* Walk pipelets cyclically, advancing when the next NF no longer
     fits. The fit check is the same [fit_pipelet] the evaluator uses
     ([Seq] with [Par] fallback), so naive never rejects an assignment
     the evaluator would accept. *)
  let rec place assignment cursor tried nfs =
    match nfs with
    | [] -> Some assignment
    | nf :: rest ->
        if tried >= n then None
        else
          let id = List.nth order (cursor mod n) in
          let candidate = assignment @ [ (nf, id) ] in
          let pl_nfs =
            List.filter_map
              (fun (f, i) -> if Asic.Pipelet.equal_id i id then Some f else None)
              candidate
          in
          if Option.is_some (fit_pipelet input pl_nfs) then
            place candidate (cursor + 1) 0 rest
          else place assignment (cursor + 1) (tried + 1) (nf :: rest)
  in
  match place input.pinned 0 0 (free_nfs input) with
  | None -> Error "naive placement: NFs do not fit"
  | Some assignment -> (
      match evaluate_assignment ~scorer input assignment with
      | Some (layout, cost) -> Ok (layout, cost)
      | None -> Error "naive placement: produced an infeasible chain routing")

let better (a : float option) (b : float option) =
  match (a, b) with
  | Some x, Some y -> x < y
  | Some _, None -> true
  | None, (Some _ | None) -> false

let solve_greedy ~scorer input =
  (* The truncated chains below change what [canonical_order] returns,
     so the fit memo (keyed on NF lists alone) must not serve them. *)
  let truncated_scorer = { scorer with fit = None } in
  let choices = pipelet_choices input in
  let rec place assignment = function
    | [] -> Ok assignment
    | nf :: rest ->
        (* Evaluate each candidate pipelet against the chains truncated
           to the NFs placed so far. *)
        let truncated_input placed =
          {
            input with
            chains =
              List.map
                (fun (c : Chain.t) ->
                  {
                    c with
                    Chain.nfs =
                      List.filter (fun f -> List.mem_assoc f placed) c.Chain.nfs;
                  })
                input.chains;
          }
        in
        let best =
          List.fold_left
            (fun best id ->
              let candidate = assignment @ [ (nf, id) ] in
              let score =
                Option.map snd
                  (evaluate_assignment ~scorer:truncated_scorer
                     (truncated_input candidate) candidate)
              in
              match best with
              | Some (_, best_score) when not (better score (Some best_score)) ->
                  best
              | _ -> (
                  match score with Some s -> Some (candidate, s) | None -> best))
            None choices
        in
        (match best with
        | Some (candidate, _) -> place candidate rest
        | None -> Error (Printf.sprintf "greedy placement: cannot place %s" nf))
  in
  match place input.pinned (free_nfs input) with
  | Error e -> Error e
  | Ok assignment -> (
      match evaluate_assignment ~scorer input assignment with
      | Some (layout, cost) -> Ok (layout, cost)
      | None -> Error "greedy placement: final layout infeasible")

let solve_exhaustive ~scorer input =
  let free = free_nfs input in
  let choices = pipelet_choices input in
  let best = ref None in
  let rec go assignment = function
    | [] -> (
        match evaluate_assignment ~scorer input assignment with
        | None -> ()
        | Some (layout, cost) -> (
            match !best with
            | Some (_, _, c) when c <= cost -> ()
            | _ -> best := Some (layout, assignment, cost)))
    | nf :: rest ->
        List.iter (fun id -> go (assignment @ [ (nf, id) ]) rest) choices
  in
  go input.pinned free;
  match !best with
  | Some (layout, _, cost) -> Ok (layout, cost)
  | None -> Error "exhaustive placement: no feasible assignment"

(* The two annealer loops share their prelude: random initial
   assignment (seeded), improved to greedy's when greedy succeeds. Both
   consume the RNG identically and score candidates to bit-identical
   values, so per seed they walk the same accept/reject trajectory and
   return the same layout. *)
let anneal_setup ~scorer input ~seed =
  let free = Array.of_list (free_nfs input) in
  let st = Random.State.make [| seed |] in
  let choices = Array.of_list (pipelet_choices input) in
  let current =
    Array.map (fun _ -> choices.(Random.State.int st (Array.length choices))) free
  in
  (* Start from greedy if it succeeds; otherwise from random. *)
  (match solve_greedy ~scorer input with
  | Ok (layout, _) ->
      Array.iteri
        (fun i nf ->
          match Layout.location layout nf with
          | Some id -> current.(i) <- id
          | None -> ())
        free
  | Error _ -> ());
  (free, st, choices, current)

let anneal_temp ~initial_temp ~iterations it =
  initial_temp *. (1.0 -. (float_of_int it /. float_of_int iterations))

(* The PR-1 path: every candidate re-groups the assignment and rebuilds
   the layout, with only the fit memo and traversal cache (under [Fast])
   to soften the cost. Kept verbatim as the oracle the move-diff
   annealer is benchmarked and property-tested against, and as the only
   annealing path for the [Reference] scorer. *)
let solve_anneal_rebuild ~scorer input ~iterations ~seed ~initial_temp =
  if free_nfs input = [] then
    match evaluate_assignment ~scorer input input.pinned with
    | Some (layout, cost) -> Ok (layout, cost)
    | None -> Error "anneal placement: pinned-only layout infeasible"
  else begin
    let free, st, choices, current = anneal_setup ~scorer input ~seed in
    let assignment_of arr =
      input.pinned @ Array.to_list (Array.mapi (fun i id -> (free.(i), id)) arr)
    in
    (* With the [Fast] scorer a single-NF move re-solves only the chains
       containing that NF; every other chain's fingerprint is unchanged
       and hits the memo. *)
    let score arr =
      Option.map snd (evaluate_assignment ~scorer input (assignment_of arr))
    in
    let best_arr = ref (Array.copy current) in
    let best_score = ref (score current) in
    let cur_score = ref !best_score in
    for it = 0 to iterations - 1 do
      let temp = anneal_temp ~initial_temp ~iterations it in
      let i = Random.State.int st (Array.length free) in
      let old = current.(i) in
      let candidate = choices.(Random.State.int st (Array.length choices)) in
      current.(i) <- candidate;
      let s = score current in
      let accept =
        match (s, !cur_score) with
        | Some new_c, Some old_c ->
            new_c <= old_c
            || Random.State.float st 1.0 < exp ((old_c -. new_c) /. max temp 1e-9)
        | Some _, None -> true
        | None, _ -> false
      in
      if accept then begin
        cur_score := s;
        if better s !best_score then begin
          best_score := s;
          best_arr := Array.copy current
        end
      end
      else current.(i) <- old
    done;
    match evaluate_assignment ~scorer input (assignment_of !best_arr) with
    | Some (layout, cost) -> Ok (layout, cost)
    | None -> Error "anneal placement: no feasible assignment found"
  end

(* The production path: a [diff] carries the layout, coordinate index
   and per-chain counts across iterations; each candidate move re-fits
   two pipelets and re-solves only the chains it touched. *)
let solve_anneal_incremental ~scorer input ~iterations ~seed ~initial_temp =
  if free_nfs input = [] then
    match evaluate_assignment ~scorer input input.pinned with
    | Some (layout, cost) -> Ok (layout, cost)
    | None -> Error "anneal placement: pinned-only layout infeasible"
  else begin
    let free, st, choices, current = anneal_setup ~scorer input ~seed in
    let assignment_of arr =
      input.pinned @ Array.to_list (Array.mapi (fun i id -> (free.(i), id)) arr)
    in
    let d = diff_of_assignment ~scorer input (assignment_of current) in
    let best_arr = ref (Array.copy current) in
    let best_score = ref (diff_cost d) in
    let cur_score = ref !best_score in
    for it = 0 to iterations - 1 do
      let temp = anneal_temp ~initial_temp ~iterations it in
      let i = Random.State.int st (Array.length free) in
      let old = current.(i) in
      let candidate = choices.(Random.State.int st (Array.length choices)) in
      let s =
        diff_try d { Move.nf = free.(i); src = old; dst = candidate }
      in
      let accept =
        match (s, !cur_score) with
        | Some new_c, Some old_c ->
            new_c <= old_c
            || Random.State.float st 1.0 < exp ((old_c -. new_c) /. max temp 1e-9)
        | Some _, None -> true
        | None, _ -> false
      in
      if accept then begin
        diff_commit d;
        current.(i) <- candidate;
        cur_score := s;
        if better s !best_score then begin
          best_score := s;
          best_arr := Array.copy current
        end
      end
      else diff_revert d
    done;
    match evaluate_assignment ~scorer input (assignment_of !best_arr) with
    | Some (layout, cost) -> Ok (layout, cost)
    | None -> Error "anneal placement: no feasible assignment found"
  end

let dispatch ~anneal ~scorer input strategy =
  let ss = make_scorer scorer in
  match strategy with
  | Naive -> solve_naive ~scorer:ss input
  | Greedy -> solve_greedy ~scorer:ss input
  | Exhaustive -> solve_exhaustive ~scorer:ss input
  | Anneal { iterations; seed; initial_temp } ->
      anneal ~scorer:ss input ~iterations ~seed ~initial_temp

let solve ?(scorer = Fast) input strategy =
  let anneal =
    match scorer with
    | Fast -> solve_anneal_incremental
    | Reference -> solve_anneal_rebuild
  in
  dispatch ~anneal ~scorer input strategy

let solve_rebuild ?(scorer = Fast) input strategy =
  dispatch ~anneal:solve_anneal_rebuild ~scorer input strategy

(* --- parallel restarts ----------------------------------------------- *)

type restart = { seed : int; cost : float option }

type parallel = {
  layout : Layout.t;
  cost : float;
  restarts : restart list;
}

let solve_parallel ?(scorer = Fast) ?(iterations = 4000) ?(initial_temp = 2.0)
    ~domains ~seeds input =
  match seeds with
  | [] -> Error "parallel placement: no seeds"
  | _ ->
      (* Each task builds its own scorer state inside [solve], so every
         domain owns its caches outright — nothing is shared but the
         immutable input. Results come back in seed order and ties keep
         the earliest seed, so the merge is deterministic no matter how
         the domains interleave. *)
      let results =
        Dpool.run ~domains
          (List.map
             (fun seed () ->
               ( seed,
                 solve ~scorer input
                   (Anneal { iterations; seed; initial_temp }) ))
             seeds)
      in
      let restarts =
        List.map
          (fun (seed, r) ->
            { seed; cost = (match r with Ok (_, c) -> Some c | Error _ -> None) })
          results
      in
      let best =
        List.fold_left
          (fun acc (_, r) ->
            match (acc, r) with
            | None, Ok lc -> Some lc
            | Some (_, bc), Ok (l, c) when c < bc -> Some (l, c)
            | _, (Ok _ | Error _) -> acc)
          None results
      in
      (match best with
      | Some (layout, cost) -> Ok { layout; cost; restarts }
      | None -> Error "parallel placement: every restart failed")

let pp_strategy ppf = function
  | Naive -> Format.pp_print_string ppf "naive"
  | Greedy -> Format.pp_print_string ppf "greedy"
  | Exhaustive -> Format.pp_print_string ppf "exhaustive"
  | Anneal { iterations; seed; _ } ->
      Format.fprintf ppf "anneal(n=%d,seed=%d)" iterations seed
