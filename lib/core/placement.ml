type strategy =
  | Naive
  | Greedy
  | Anneal of { iterations : int; seed : int; initial_temp : float }
  | Exhaustive

let default_anneal = Anneal { iterations = 4000; seed = 1; initial_temp = 2.0 }

type input = {
  spec : Asic.Spec.t;
  resources_of : string -> P4ir.Resources.t;
  chains : Chain.t list;
  entry_pipeline : int;
  pinned : (string * Asic.Pipelet.id) list;
  framework_stages_per_nf : int;
  framework_stages_fixed : int;
}

let stages_needed input layout =
  let nf_count = List.length (Layout.nfs_of_pipelet layout) in
  Layout.stage_demand input.resources_of layout
  + (nf_count * input.framework_stages_per_nf)
  + if nf_count > 0 then input.framework_stages_fixed else 0

let feasible input layout =
  List.for_all
    (fun (_, pl) -> stages_needed input pl <= input.spec.Asic.Spec.stages_per_pipelet)
    layout

(* Earliest position of an NF across chains, weighting heavier chains
   first for tie stability. *)
let rank_of chains nf =
  List.fold_left
    (fun acc (c : Chain.t) ->
      match Chain.position c nf with Some i -> min acc i | None -> acc)
    max_int chains

(* Order co-located NFs so that sequential composition follows the
   chains: topologically sort by weighted pairwise precedence (a before
   b when the heavier share of traffic visits a first), breaking ties
   and cycles by earliest chain position. *)
let canonical_order chains nfs =
  let prec a b =
    (* positive: a should come before b *)
    List.fold_left
      (fun acc (c : Chain.t) ->
        match (Chain.position c a, Chain.position c b) with
        | Some i, Some j when i < j -> acc +. c.Chain.weight
        | Some i, Some j when i > j -> acc -. c.Chain.weight
        | _ -> acc)
      0.0 chains
  in
  let by_rank =
    List.stable_sort (fun a b -> compare (rank_of chains a) (rank_of chains b)) nfs
  in
  (* Kahn's algorithm over the majority-precedence digraph. *)
  let rec topo placed remaining =
    match remaining with
    | [] -> List.rev placed
    | _ -> (
        let ready =
          List.filter
            (fun nf ->
              List.for_all
                (fun other ->
                  String.equal other nf || prec other nf <= 0.0)
                remaining)
            remaining
        in
        match ready with
        | nf :: _ ->
            topo (nf :: placed) (List.filter (fun o -> not (String.equal o nf)) remaining)
        | [] ->
            (* Precedence cycle (conflicting chains): fall back to rank
               order for the rest. *)
            List.rev placed @ remaining)
  in
  topo [] by_rank

(* The one fit rule for co-located NFs: chain-canonical order, [Seq]
   when the stage budget allows, [Par] fallback otherwise. Shared by
   [build_layout] and the naive solver's fit check so no strategy can
   disagree with the evaluator about what fits. *)
let fit_pipelet input nfs =
  let ordered = canonical_order input.chains nfs in
  let budget = input.spec.Asic.Spec.stages_per_pipelet in
  let seq = [ Layout.Seq ordered ] in
  if stages_needed input seq <= budget then Some seq
  else if List.length ordered > 1 then begin
    let par = [ Layout.Par ordered ] in
    if stages_needed input par <= budget then Some par else None
  end
  else None

let build_layout input assignment =
  let ids =
    List.sort_uniq Asic.Pipelet.compare_id (List.map snd assignment)
  in
  let rec build acc = function
    | [] -> Some (List.rev acc)
    | id :: rest -> (
        let nfs =
          List.filter_map
            (fun (nf, i) -> if Asic.Pipelet.equal_id i id then Some nf else None)
            assignment
        in
        match fit_pipelet input nfs with
        | Some pl -> build ((id, pl) :: acc) rest
        | None -> None)
  in
  build [] ids

let evaluate input layout =
  if not (feasible input layout) then None
  else
    Traversal.cost input.spec layout ~entry_pipeline:input.entry_pipeline
      input.chains

(* Scoring backend: the heap solver with per-solve memo caches by
   default, or the reference solver (no memo at all) as a bench/test
   oracle. [fit] caches [fit_pipelet] results keyed by the co-located NF
   list — valid only while [input.chains] is fixed, so callers that
   rewrite chains (greedy's truncation) must drop it. *)
type scorer = {
  backend : [ `Fast of Traversal.cache | `Reference ];
  fit : (string list, Layout.pipelet_layout option) Hashtbl.t option;
}

let make_scorer ~reference =
  if reference then { backend = `Reference; fit = None }
  else
    {
      backend = `Fast (Traversal.cache_create ());
      fit = Some (Hashtbl.create 256);
    }

let score_layout scorer input layout =
  match scorer.backend with
  | `Fast cache ->
      Traversal.cost_cached cache input.spec layout
        ~entry_pipeline:input.entry_pipeline input.chains
  | `Reference ->
      Traversal.cost_reference input.spec layout
        ~entry_pipeline:input.entry_pipeline input.chains

let fit_pipelet_memo scorer input nfs =
  match scorer with
  | Some { fit = Some tbl; _ } -> (
      match Hashtbl.find_opt tbl nfs with
      | Some r -> r
      | None ->
          let r = fit_pipelet input nfs in
          Hashtbl.add tbl nfs r;
          r)
  | Some { fit = None; _ } | None -> fit_pipelet input nfs

let build_layout_memo ?scorer input assignment =
  let ids =
    List.sort_uniq Asic.Pipelet.compare_id (List.map snd assignment)
  in
  let rec build acc = function
    | [] -> Some (List.rev acc)
    | id :: rest -> (
        let nfs =
          List.filter_map
            (fun (nf, i) -> if Asic.Pipelet.equal_id i id then Some nf else None)
            assignment
        in
        match fit_pipelet_memo scorer input nfs with
        | Some pl -> build ((id, pl) :: acc) rest
        | None -> None)
  in
  build [] ids

(* [build_layout] already enforces the per-pipelet stage budget, so a
   built layout needs no second [feasible] pass — score it directly. *)
let evaluate_assignment ?scorer input assignment =
  match build_layout_memo ?scorer input assignment with
  | None -> None
  | Some layout ->
      let cost =
        match scorer with
        | Some s -> score_layout s input layout
        | None ->
            Traversal.cost input.spec layout
              ~entry_pipeline:input.entry_pipeline input.chains
      in
      Option.map (fun c -> (layout, c)) cost

let all_nf_names input = Chain.all_nfs input.chains

let pipelet_choices input = Asic.Pipelet.all_ids input.spec

let free_nfs input =
  List.filter
    (fun nf -> not (List.mem_assoc nf input.pinned))
    (canonical_order input.chains (all_nf_names input))

(* --- strategies --- *)

let solve_naive ~scorer input =
  let order = pipelet_choices input in
  let n = List.length order in
  (* Walk pipelets cyclically, advancing when the next NF no longer
     fits. The fit check is the same [fit_pipelet] the evaluator uses
     ([Seq] with [Par] fallback), so naive never rejects an assignment
     the evaluator would accept. *)
  let rec place assignment cursor tried nfs =
    match nfs with
    | [] -> Some assignment
    | nf :: rest ->
        if tried >= n then None
        else
          let id = List.nth order (cursor mod n) in
          let candidate = assignment @ [ (nf, id) ] in
          let pl_nfs =
            List.filter_map
              (fun (f, i) -> if Asic.Pipelet.equal_id i id then Some f else None)
              candidate
          in
          if Option.is_some (fit_pipelet input pl_nfs) then
            place candidate (cursor + 1) 0 rest
          else place assignment (cursor + 1) (tried + 1) (nf :: rest)
  in
  match place input.pinned 0 0 (free_nfs input) with
  | None -> Error "naive placement: NFs do not fit"
  | Some assignment -> (
      match evaluate_assignment ~scorer input assignment with
      | Some (layout, cost) -> Ok (layout, cost)
      | None -> Error "naive placement: produced an infeasible chain routing")

let better (a : float option) (b : float option) =
  match (a, b) with
  | Some x, Some y -> x < y
  | Some _, None -> true
  | None, (Some _ | None) -> false

let solve_greedy ~scorer input =
  (* The truncated chains below change what [canonical_order] returns,
     so the fit memo (keyed on NF lists alone) must not serve them. *)
  let truncated_scorer = { scorer with fit = None } in
  let choices = pipelet_choices input in
  let rec place assignment = function
    | [] -> Ok assignment
    | nf :: rest ->
        (* Evaluate each candidate pipelet against the chains truncated
           to the NFs placed so far. *)
        let truncated_input placed =
          {
            input with
            chains =
              List.map
                (fun (c : Chain.t) ->
                  {
                    c with
                    Chain.nfs =
                      List.filter (fun f -> List.mem_assoc f placed) c.Chain.nfs;
                  })
                input.chains;
          }
        in
        let best =
          List.fold_left
            (fun best id ->
              let candidate = assignment @ [ (nf, id) ] in
              let score =
                Option.map snd
                  (evaluate_assignment ~scorer:truncated_scorer
                     (truncated_input candidate) candidate)
              in
              match best with
              | Some (_, best_score) when not (better score (Some best_score)) ->
                  best
              | _ -> (
                  match score with Some s -> Some (candidate, s) | None -> best))
            None choices
        in
        (match best with
        | Some (candidate, _) -> place candidate rest
        | None -> Error (Printf.sprintf "greedy placement: cannot place %s" nf))
  in
  match place input.pinned (free_nfs input) with
  | Error e -> Error e
  | Ok assignment -> (
      match evaluate_assignment ~scorer input assignment with
      | Some (layout, cost) -> Ok (layout, cost)
      | None -> Error "greedy placement: final layout infeasible")

let solve_exhaustive ~scorer input =
  let free = free_nfs input in
  let choices = pipelet_choices input in
  let best = ref None in
  let rec go assignment = function
    | [] -> (
        match evaluate_assignment ~scorer input assignment with
        | None -> ()
        | Some (layout, cost) -> (
            match !best with
            | Some (_, _, c) when c <= cost -> ()
            | _ -> best := Some (layout, assignment, cost)))
    | nf :: rest ->
        List.iter (fun id -> go (assignment @ [ (nf, id) ]) rest) choices
  in
  go input.pinned free;
  match !best with
  | Some (layout, _, cost) -> Ok (layout, cost)
  | None -> Error "exhaustive placement: no feasible assignment"

let solve_anneal ~scorer input ~iterations ~seed ~initial_temp =
  let free = Array.of_list (free_nfs input) in
  if Array.length free = 0 then
    match evaluate_assignment ~scorer input input.pinned with
    | Some (layout, cost) -> Ok (layout, cost)
    | None -> Error "anneal placement: pinned-only layout infeasible"
  else begin
    let st = Random.State.make [| seed |] in
    let choices = Array.of_list (pipelet_choices input) in
    let current =
      Array.map (fun _ -> choices.(Random.State.int st (Array.length choices))) free
    in
    let assignment_of arr =
      input.pinned @ Array.to_list (Array.mapi (fun i id -> (free.(i), id)) arr)
    in
    (* Start from greedy if it succeeds; otherwise from random. *)
    (match solve_greedy ~scorer input with
    | Ok (layout, _) ->
        Array.iteri
          (fun i nf ->
            match Layout.location layout nf with
            | Some id -> current.(i) <- id
            | None -> ())
          free
    | Error _ -> ());
    (* With the [Fast] scorer a single-NF move re-solves only the chains
       containing that NF; every other chain's fingerprint is unchanged
       and hits the memo. *)
    let score arr =
      Option.map snd (evaluate_assignment ~scorer input (assignment_of arr))
    in
    let best_arr = ref (Array.copy current) in
    let best_score = ref (score current) in
    let cur_score = ref !best_score in
    for it = 0 to iterations - 1 do
      let temp =
        initial_temp *. (1.0 -. (float_of_int it /. float_of_int iterations))
      in
      let i = Random.State.int st (Array.length free) in
      let old = current.(i) in
      let candidate = choices.(Random.State.int st (Array.length choices)) in
      current.(i) <- candidate;
      let s = score current in
      let accept =
        match (s, !cur_score) with
        | Some new_c, Some old_c ->
            new_c <= old_c
            || Random.State.float st 1.0 < exp ((old_c -. new_c) /. max temp 1e-9)
        | Some _, None -> true
        | None, _ -> false
      in
      if accept then begin
        cur_score := s;
        if better s !best_score then begin
          best_score := s;
          best_arr := Array.copy current
        end
      end
      else current.(i) <- old
    done;
    match evaluate_assignment ~scorer input (assignment_of !best_arr) with
    | Some (layout, cost) -> Ok (layout, cost)
    | None -> Error "anneal placement: no feasible assignment found"
  end

let solve ?(reference = false) input strategy =
  let scorer = make_scorer ~reference in
  match strategy with
  | Naive -> solve_naive ~scorer input
  | Greedy -> solve_greedy ~scorer input
  | Exhaustive -> solve_exhaustive ~scorer input
  | Anneal { iterations; seed; initial_temp } ->
      solve_anneal ~scorer input ~iterations ~seed ~initial_temp

let pp_strategy ppf = function
  | Naive -> Format.pp_print_string ppf "naive"
  | Greedy -> Format.pp_print_string ppf "greedy"
  | Exhaustive -> Format.pp_print_string ppf "exhaustive"
  | Anneal { iterations; seed; _ } ->
      Format.fprintf ppf "anneal(n=%d,seed=%d)" iterations seed
