type action = Reinject of Bytes.t | Consume
type handler = Sfc_header.t option -> Bytes.t -> action

type t = {
  compiled : Compiler.t;
  handlers : (string, handler) Hashtbl.t;
  nf_ids : (int, string) Hashtbl.t;
}

let max_cpu_loops = 8

let create compiled =
  { compiled; handlers = Hashtbl.create 8; nf_ids = Hashtbl.create 8 }

let on_to_cpu t nf handler = Hashtbl.replace t.handlers nf handler
let register_nf_id t nf id = Hashtbl.replace t.nf_ids id nf

let default_nf_id name =
  let b = Bytes.of_string name in
  let h =
    Int64.to_int (Netpkt.Bytes_util.crc16 b ~off:0 ~len:(Bytes.length b))
  in
  if h = 0 then 1 else h

let chip t = t.compiled.Compiler.chip

type outcome = {
  verdict : Asic.Chip.verdict;
  cpu_round_trips : int;
  recircs : int;
  resubmits : int;
  latency_ns : float;
  mirrored : (int * Bytes.t) list;
}

let decode_sfc frame =
  match Netpkt.Eth.decode frame ~off:0 with
  | Ok eth when eth.Netpkt.Eth.ethertype = Netpkt.Eth.ethertype_sfc ->
      Result.to_option (Sfc_header.decode frame ~off:Netpkt.Eth.size)
  | Ok _ | Error _ -> None

let clear_cpu_mark frame =
  let frame = Bytes.copy frame in
  match decode_sfc frame with
  | None -> frame
  | Some hdr ->
      let context =
        Array.map
          (fun (k, v) ->
            if k = Sfc_header.ctx_key_cpu_reason then (0, 0) else (k, v))
          hdr.Sfc_header.context
      in
      let hdr = { hdr with Sfc_header.to_cpu = false; context } in
      Bytes.blit (Sfc_header.encode hdr) 0 frame Netpkt.Eth.size
        Sfc_header.byte_size;
      frame

(* Where to reinject a CPU-handled packet so routing resumes correctly:
   prefer the ingress pipelet whose branching table knows the packet's
   (path, index) state; else the pipeline hosting the pending NF. *)
let reinject_pipeline t frame =
  let default = t.compiled.Compiler.input.Compiler.entry_pipeline in
  match decode_sfc frame with
  | None -> default
  | Some hdr -> (
      let path_id = hdr.Sfc_header.service_path_id in
      let index = hdr.Sfc_header.service_index in
      let from_branching =
        List.find_map
          (fun (e : Branching.entry) ->
            if e.Branching.path_id = path_id && e.Branching.index = index then
              Some e.Branching.pipeline
            else None)
          t.compiled.Compiler.plan.Branching.branching
      in
      match from_branching with
      | Some p -> p
      | None -> (
          let chain =
            List.find_opt
              (fun (c : Chain.t) -> c.Chain.path_id = path_id)
              t.compiled.Compiler.input.Compiler.chains
          in
          match chain with
          | Some c when index < Chain.length c -> (
              let nf = List.nth c.Chain.nfs index in
              match Layout.location t.compiled.Compiler.layout nf with
              | Some id -> id.Asic.Pipelet.pipeline
              | None -> default)
          | Some _ | None -> default))

let find_handler t sfc =
  match sfc with
  | None -> None
  | Some hdr -> (
      match Sfc_header.find_context hdr Sfc_header.ctx_key_cpu_reason with
      | None -> None
      | Some nf_id -> (
          match Hashtbl.find_opt t.nf_ids nf_id with
          | None -> None
          | Some nf -> Hashtbl.find_opt t.handlers nf))

let process t ~in_port frame =
  (* [mirrored_rev] accumulates reversed (rev_append per pass, one final
     [List.rev]) so an N-round flow costs O(total) instead of the
     quadratic [acc @ round] append. [rounds] counts completed CPU
     round trips; the handler runs at most [max_cpu_loops] times — the
     bound is exact, checked before each dispatch. *)
  let rec loop frame rounds recircs resubmits latency mirrored_rev first =
    let injected =
      if first then Asic.Chip.inject (chip t) ~in_port frame
      else
        Asic.Chip.inject_cpu (chip t)
          ~pipeline:(reinject_pipeline t frame)
          frame
    in
    match injected with
    | Error e -> Error e
    | Ok r -> (
        let recircs = recircs + r.Asic.Chip.recircs in
        let resubmits = resubmits + r.Asic.Chip.resubmits in
        let latency = latency +. r.Asic.Chip.latency_ns in
        let mirrored_rev = List.rev_append r.Asic.Chip.mirrored mirrored_rev in
        let finish () =
          Ok
            {
              verdict = r.Asic.Chip.verdict;
              cpu_round_trips = rounds;
              recircs;
              resubmits;
              latency_ns = latency;
              mirrored = List.rev mirrored_rev;
            }
        in
        match r.Asic.Chip.verdict with
        | Asic.Chip.To_cpu bytes -> (
            let sfc = decode_sfc bytes in
            match find_handler t sfc with
            | None -> finish ()
            | Some _ when rounds >= max_cpu_loops ->
                Error
                  (Printf.sprintf "Runtime.process: exceeded %d CPU loops"
                     max_cpu_loops)
            | Some handler -> (
                match handler sfc bytes with
                | Consume -> finish ()
                | Reinject bytes ->
                    loop bytes (rounds + 1) recircs resubmits latency
                      mirrored_rev false))
        | Asic.Chip.Emitted _ | Asic.Chip.Dropped -> finish ())
  in
  loop frame 0 0 0 0.0 [] true
