type action = Reinject of Bytes.t | Consume
type handler = Sfc_header.t option -> Bytes.t -> action

(* The counter quadruple shared by per-packet outcomes and batch
   aggregates — one definition, added component-wise when batches (or
   shards) merge. *)
module Counters = struct
  type t = {
    cpu_round_trips : int;
    recircs : int;
    resubmits : int;
    latency_ns : float;
  }

  let zero =
    { cpu_round_trips = 0; recircs = 0; resubmits = 0; latency_ns = 0.0 }

  let add a b =
    {
      cpu_round_trips = a.cpu_round_trips + b.cpu_round_trips;
      recircs = a.recircs + b.recircs;
      resubmits = a.resubmits + b.resubmits;
      latency_ns = a.latency_ns +. b.latency_ns;
    }
end

(* The whole runtime configuration in one record: how packets execute
   (exec_mode), how much is observed (telemetry + ring_capacity), how
   batches parallelize (domains), and whether the exact-match flow
   cache fronts the pipeline (cache). One [configure] call replaces
   the scattered per-knob setters. *)
module Engine = struct
  type cache = Off | Emc of { capacity : int }

  (* The bounded state store behind stateful NFs' dynamic state —
     distinct constructor names from [cache] so unqualified knob
     construction stays unambiguous. *)
  type state = No_state | Bounded of { capacity : int; ttl_ns : int64 }

  type t = {
    exec_mode : Asic.Chip.exec_mode;
    telemetry : Telemetry.Level.t;
    domains : int;
    ring_capacity : int;
    cache : cache;
    state : state;
  }

  let default =
    {
      exec_mode = Asic.Chip.Fast;
      telemetry = Telemetry.Level.Off;
      domains = 1;
      ring_capacity = Observe.default_ring_capacity;
      cache = Off;
      state = No_state;
    }

  let store_config = function
    | No_state -> None
    | Bounded { capacity; ttl_ns } -> Some { State_store.capacity; ttl_ns }
end

(* Counter refs resolved once at enable time, so the per-packet cost of
   Counters mode is plain [incr]s and two clock reads. *)
type obs_state = {
  o : Observe.t;
  rx : int ref array;  (* per Ethernet port *)
  tx : int ref array;
  c_emitted : int ref;
  c_dropped : int ref;
  c_to_cpu : int ref;
  c_errors : int ref;
  c_punts : int ref;  (* every to-CPU verdict, incl. resolved round trips *)
  c_round_trips : int ref;
  c_recircs : int ref;
  c_resubmits : int ref;
  c_drop_dp : int ref;
  c_cache_hit : int ref;
  c_cache_miss : int ref;
  c_ctrl_applied : int ref;
  c_ctrl_failed : int ref;
  c_suppressed : int ref;  (* per-packet errors beyond the batch log cap *)
  c_gc_minor : int ref;  (* cumulative minor words allocated in batches *)
  c_gc_major : int ref;
  h_ns : Telemetry.Histogram.t;
  h_queue_depth : Telemetry.Histogram.t;  (* ctrl batches per drain *)
  h_drain_ns : Telemetry.Histogram.t;  (* submit-to-apply latency *)
  h_alloc_w : Telemetry.Histogram.t;  (* words allocated per packet *)
}

type t = {
  compiled : Compiler.t;
  (* The chip this runtime injects into: the compiled chip for the
     primary runtime, a [Chip.replicate] clone for a shard runtime. *)
  chip : Asic.Chip.t;
  handlers : (string, handler) Hashtbl.t;
  (* Chip-bound handler factories, kept so shard replicas can re-bind
     each handler to their own chip's table handles. *)
  chip_handlers : (string, Asic.Chip.t -> handler) Hashtbl.t;
  nf_ids : (int, string) Hashtbl.t;
  (* (path_id, service_index) -> reinjection pipeline, precomputed from
     the branching plan and the layout so per-CPU-reinject dispatch is a
     single hash probe instead of two linear scans. *)
  reinject : (int * int, int) Hashtbl.t;
  mutable engine : Engine.t;
  mutable obs : obs_state option;
  (* The exact-match flow cache fronting this runtime's chip; [None]
     when the engine's cache knob is [Off]. Shard replicas get their
     own cache over their own replica chip. *)
  mutable cache : Flow_cache.t option;
  (* Bounded state stores, one per shard, persistent across batches
     (unlike replica chips); [||] when the engine's state knob is
     [No_state]. Shard d's replica runtime carries [stores.(d)] alone;
     the primary's handlers bind [stores.(0)]. *)
  mutable stores : State_store.t array;
  (* Store-aware handler factories, re-bound (like [chip_handlers])
     whenever the chip or the store a handler serves changes. *)
  state_handlers : (string, Asic.Chip.t -> State_store.t option -> handler) Hashtbl.t;
  (* Control-plane update queue, drained onto the primary chip at batch
     boundaries. Shard replicas carry a fresh (never-submitted-to)
     queue — ops always target the primary. *)
  ctrl : Ctrl.queue;
}

let max_cpu_loops = 8

(* Where to reinject a CPU-handled packet so routing resumes correctly:
   prefer the ingress pipelet whose branching table knows the packet's
   (path, index) state; else the pipeline hosting the pending NF. Both
   sources are fixed once the chip is compiled, so the map is built
   here, at creation. *)
let build_reinject_map compiled =
  let reinject = Hashtbl.create 64 in
  List.iter
    (fun (c : Chain.t) ->
      List.iteri
        (fun index nf ->
          match Layout.location compiled.Compiler.layout nf with
          | Some id ->
              Hashtbl.replace reinject
                (c.Chain.path_id, index)
                id.Asic.Pipelet.pipeline
          | None -> ())
        c.Chain.nfs)
    compiled.Compiler.input.Compiler.chains;
  (* Branching entries override the chain fallback; iterate reversed so
     the plan's first entry for a (path, index) wins, as the old
     List.find_map did. *)
  List.iter
    (fun (e : Branching.entry) ->
      Hashtbl.replace reinject (e.Branching.path_id, e.Branching.index)
        e.Branching.pipeline)
    (List.rev compiled.Compiler.plan.Branching.branching);
  reinject

let chip t = t.chip

(* --- Control plane front door ---

   All runtime table/register mutation funnels through here: [apply_ops]
   applies a batch to the primary chip immediately (the caller
   guarantees it is between packet batches — the single-consumer
   contract), [control]/[submit] let producers on any domain queue
   batches, and [sync] — called automatically at the top of every
   packet batch — drains the queue onto the primary chip. Replica
   coherence is structural: parallel batches clone per-domain replicas
   from the primary at batch start, so a drained batch is visible to
   every shard of the next packet batch and to none of the current
   one. *)

let apply_ops t ops = Ctrl.apply_all t.chip ops
let control t = t.ctrl

let sync t =
  let batches = Ctrl.drain t.ctrl in
  (* Queue-depth histogram: how many batches had piled up per drain —
     the back-pressure signal for producers. Only non-empty drains are
     observed; idle batch boundaries would drown the distribution in
     zeros. *)
  (match t.obs with
  | Some os when batches <> [] ->
      Telemetry.Histogram.observe os.h_queue_depth (List.length batches)
  | _ -> ());
  let applied, errs_rev =
    List.fold_left
      (fun (n, errs) (b : Ctrl.batch) ->
        (match t.obs with
        | None -> ()
        | Some os ->
            let waited =
              Int64.to_int
                (Int64.sub (Telemetry.Tclock.now_ns ()) b.Ctrl.submitted_ns)
            in
            Telemetry.Histogram.observe os.h_drain_ns (max 0 waited));
        match Ctrl.apply_all t.chip b.Ctrl.ops with
        | Ok k ->
            Ctrl.note t.ctrl b.Ctrl.id (Ok k);
            (match t.obs with
            | Some os -> os.c_ctrl_applied := !(os.c_ctrl_applied) + k
            | None -> ());
            (n + k, errs)
        | Error e ->
            Ctrl.note t.ctrl b.Ctrl.id (Error e);
            (match t.obs with
            | Some os -> incr os.c_ctrl_failed
            | None -> ());
            (n, (b.Ctrl.id, e) :: errs))
      (0, []) batches
  in
  (applied, List.rev errs_rev)

let enable_obs t level ring_capacity =
  let o = Observe.create ~ring_capacity level in
  Observe.attach_observer o t.chip;
  let reg = Observe.registry o in
  let c = Telemetry.Registry.counter reg in
  let n_ports = Asic.Spec.n_eth_ports (Asic.Chip.spec t.chip) in
  (* Bound one by one so registration (= display) order is sensible:
     record fields would evaluate right-to-left. *)
  let c_emitted = c "verdict.emitted" in
  let c_dropped = c "verdict.dropped" in
  let c_to_cpu = c "verdict.to_cpu" in
  let c_errors = c "verdict.error" in
  let c_punts = c "path.cpu_punts" in
  let c_round_trips = c "path.cpu_round_trips" in
  let c_recircs = c "path.recircs" in
  let c_resubmits = c "path.resubmits" in
  let c_drop_dp = c "drop.data_plane" in
  let c_cache_hit = c "cache.hit" in
  let c_cache_miss = c "cache.miss" in
  let c_ctrl_applied = c "ctrl.ops_applied" in
  let c_ctrl_failed = c "ctrl.batches_failed" in
  let c_suppressed = c "batch.errors_suppressed" in
  let c_gc_minor = c "gc.minor_words" in
  let c_gc_major = c "gc.major_words" in
  let h_ns = Telemetry.Registry.histogram reg "runtime.ns_per_packet" in
  let h_queue_depth = Telemetry.Registry.histogram reg "ctrl.queue_depth" in
  let h_drain_ns = Telemetry.Registry.histogram reg "ctrl.drain_ns" in
  let h_alloc_w =
    Telemetry.Registry.histogram reg "runtime.alloc_words_per_packet"
  in
  let rx = Array.init n_ports (fun p -> c (Printf.sprintf "port.%d.rx" p)) in
  let tx = Array.init n_ports (fun p -> c (Printf.sprintf "port.%d.tx" p)) in
  t.obs <-
    Some
      {
        o;
        rx;
        tx;
        c_emitted;
        c_dropped;
        c_to_cpu;
        c_errors;
        c_punts;
        c_round_trips;
        c_recircs;
        c_resubmits;
        c_drop_dp;
        c_cache_hit;
        c_cache_miss;
        c_ctrl_applied;
        c_ctrl_failed;
        c_suppressed;
        c_gc_minor;
        c_gc_major;
        h_ns;
        h_queue_depth;
        h_drain_ns;
        h_alloc_w;
      }

let primary_store t =
  if Array.length t.stores = 0 then None else Some t.stores.(0)

(* Re-apply every store-aware factory against the primary chip and the
   primary (shard-0) store — run after any store-array replacement so
   sequential-path handlers never hold a dropped store. *)
let rebind_state_handlers t =
  Hashtbl.iter
    (fun nf factory -> Hashtbl.replace t.handlers nf (factory t.chip (primary_store t)))
    t.state_handlers

let configure t (e : Engine.t) =
  let e = { e with Engine.domains = max 1 e.Engine.domains } in
  let prev = t.engine in
  t.engine <- e;
  Asic.Chip.set_exec_mode t.chip e.Engine.exec_mode;
  (* State-store transitions: an unchanged knob at an unchanged shard
     count keeps the stores (entries, stats, clock) alive; a shard
     count change under an unchanged knob re-homes every entry to its
     new owner shard ([State_store.migrate]); any knob change starts
     fresh, mirroring the cache's semantics. *)
  (match
     ( Engine.store_config prev.Engine.state,
       Engine.store_config e.Engine.state )
   with
  | None, None -> ()
  | Some a, Some b when a = b && Array.length t.stores = e.Engine.domains -> ()
  | _, None ->
      if Array.length t.stores > 0 then begin
        t.stores <- [||];
        rebind_state_handlers t
      end
  | Some a, Some b when a = b && Array.length t.stores > 0 ->
      let fresh = Array.init e.Engine.domains (fun _ -> State_store.create b) in
      State_store.migrate ~from:t.stores ~into:fresh;
      t.stores <- fresh;
      rebind_state_handlers t
  | _, Some b ->
      t.stores <- Array.init e.Engine.domains (fun _ -> State_store.create b);
      rebind_state_handlers t);
  (* Re-attach only when an observation knob changed: reconfiguring
     exec_mode or domains must not wipe accumulated counters. *)
  let reattach =
    e.Engine.telemetry <> prev.Engine.telemetry
    || e.Engine.ring_capacity <> prev.Engine.ring_capacity
    || (Option.is_none t.obs && e.Engine.telemetry <> Telemetry.Level.Off)
  in
  (if reattach then
     match e.Engine.telemetry with
     | Telemetry.Level.Off ->
         Observe.detach t.chip;
         t.obs <- None
     | (Telemetry.Level.Counters | Telemetry.Level.Journeys) as level ->
         enable_obs t level e.Engine.ring_capacity);
  (* Cache transitions: keep an unchanged cache (and its entries and
     stats) alive; anything else detaches the old recorders before
     building the replacement, so a chip never carries two sets of
     hooks. *)
  match (prev.Engine.cache, e.Engine.cache) with
  | Engine.Off, Engine.Off -> ()
  | Engine.Emc { capacity = a }, Engine.Emc { capacity = b }
    when a = b && Option.is_some t.cache ->
      ()
  | _, Engine.Off ->
      Option.iter Flow_cache.detach t.cache;
      t.cache <- None
  | _, Engine.Emc { capacity } ->
      Option.iter Flow_cache.detach t.cache;
      t.cache <- Some (Flow_cache.create ~capacity t.chip)

let create ?(engine = Engine.default) compiled =
  let t =
    {
      compiled;
      chip = compiled.Compiler.chip;
      handlers = Hashtbl.create 8;
      chip_handlers = Hashtbl.create 8;
      nf_ids = Hashtbl.create 8;
      reinject = build_reinject_map compiled;
      engine = Engine.default;
      obs = None;
      cache = None;
      stores = [||];
      state_handlers = Hashtbl.create 8;
      ctrl = Ctrl.queue ();
    }
  in
  configure t engine;
  t

let engine t = t.engine
let flow_cache t = t.cache
let state_stores t = t.stores
let state_store t = primary_store t

let advance_state_time t ns =
  Array.fold_left (fun acc s -> acc + State_store.advance s ns) 0 t.stores

let on_to_cpu t nf handler = Hashtbl.replace t.handlers nf handler

let on_to_cpu_chip t nf factory =
  Hashtbl.replace t.chip_handlers nf factory;
  Hashtbl.replace t.handlers nf (factory t.chip)

let on_to_cpu_state t nf factory =
  Hashtbl.replace t.state_handlers nf factory;
  Hashtbl.replace t.handlers nf (factory t.chip (primary_store t))

let register_nf_id t nf id = Hashtbl.replace t.nf_ids id nf

let default_nf_id name =
  let b = Bytes.of_string name in
  let h =
    Int64.to_int (Netpkt.Bytes_util.crc16 b ~off:0 ~len:(Bytes.length b))
  in
  if h = 0 then 1 else h

let set_telemetry ?ring_capacity t level =
  let ring_capacity =
    match ring_capacity with
    | Some r -> r
    | None -> t.engine.Engine.ring_capacity
  in
  configure t { t.engine with Engine.telemetry = level; ring_capacity }

let telemetry t = Option.map (fun os -> os.o) t.obs

let telemetry_level t =
  match t.obs with None -> Telemetry.Level.Off | Some os -> Observe.level os.o

type outcome = {
  verdict : Asic.Chip.verdict;
  counters : Counters.t;
  mirrored : (int * Bytes.t) list;
}

let decode_sfc frame =
  match Netpkt.Eth.decode frame ~off:0 with
  | Ok eth when eth.Netpkt.Eth.ethertype = Netpkt.Eth.ethertype_sfc ->
      Result.to_option (Sfc_header.decode frame ~off:Netpkt.Eth.size)
  | Ok _ | Error _ -> None

let clear_cpu_mark frame =
  let frame = Bytes.copy frame in
  match decode_sfc frame with
  | None -> frame
  | Some hdr ->
      let context =
        Array.map
          (fun (k, v) ->
            if k = Sfc_header.ctx_key_cpu_reason then (0, 0) else (k, v))
          hdr.Sfc_header.context
      in
      let hdr = { hdr with Sfc_header.to_cpu = false; context } in
      Bytes.blit (Sfc_header.encode hdr) 0 frame Netpkt.Eth.size
        Sfc_header.byte_size;
      frame

let reinject_pipeline t frame =
  let default = t.compiled.Compiler.input.Compiler.entry_pipeline in
  match decode_sfc frame with
  | None -> default
  | Some hdr -> (
      let key =
        (hdr.Sfc_header.service_path_id, hdr.Sfc_header.service_index)
      in
      match Hashtbl.find_opt t.reinject key with
      | Some p -> p
      | None -> default)

let find_handler t sfc =
  match sfc with
  | None -> None
  | Some hdr -> (
      match Sfc_header.find_context hdr Sfc_header.ctx_key_cpu_reason with
      | None -> None
      | Some nf_id -> (
          match Hashtbl.find_opt t.nf_ids nf_id with
          | None -> None
          | Some nf -> Hashtbl.find_opt t.handlers nf))

(* The INT postcard's flow key: the canonical 5-tuple rendering when the
   frame parses, else the arrival port — same fallback the shard hash
   uses, so unparseable traffic aggregates per port. *)
let flow_key ~in_port frame =
  match Netpkt.Pkt.decode frame with
  | Error _ -> Printf.sprintf "port:%d" in_port
  | Ok layers -> (
      match Netpkt.Pkt.five_tuple_of layers with
      | Some ft -> Format.asprintf "%a" Netpkt.Flow.pp_five_tuple ft
      | None -> Printf.sprintf "port:%d" in_port)

let process t ~in_port frame =
  (* [mirrored_rev] accumulates reversed (rev_append per pass, one final
     [List.rev]) so an N-round flow costs O(total) instead of the
     quadratic [acc @ round] append. [rounds] counts completed CPU
     round trips; the handler runs at most [max_cpu_loops] times — the
     bound is exact, checked before each dispatch. *)
  let jr =
    match t.obs with
    | Some os when Telemetry.Level.journeys_on (Observe.level os.o) ->
        Some (ref [])
    | _ -> None
  in
  let t0 =
    match t.obs with
    | None -> 0L
    | Some os ->
        if in_port >= 0 && in_port < Array.length os.rx then incr os.rx.(in_port);
        Telemetry.Tclock.now_ns ()
  in
  let rec loop frame rounds recircs resubmits latency mirrored_rev first =
    let injected =
      if first then Asic.Chip.inject t.chip ~in_port frame
      else
        Asic.Chip.inject_cpu t.chip
          ~pipeline:(reinject_pipeline t frame)
          frame
    in
    match injected with
    | Error e -> Error e
    | Ok r -> (
        (match jr with Some l -> l := r :: !l | None -> ());
        let recircs = recircs + r.Asic.Chip.recircs in
        let resubmits = resubmits + r.Asic.Chip.resubmits in
        let latency = latency +. r.Asic.Chip.latency_ns in
        let mirrored_rev = List.rev_append r.Asic.Chip.mirrored mirrored_rev in
        let finish () =
          Ok
            {
              verdict = r.Asic.Chip.verdict;
              counters =
                {
                  Counters.cpu_round_trips = rounds;
                  recircs;
                  resubmits;
                  latency_ns = latency;
                };
              mirrored = List.rev mirrored_rev;
            }
        in
        match r.Asic.Chip.verdict with
        | Asic.Chip.To_cpu bytes -> (
            (match t.obs with Some os -> incr os.c_punts | None -> ());
            let sfc = decode_sfc bytes in
            match find_handler t sfc with
            | None -> finish ()
            | Some _ when rounds >= max_cpu_loops ->
                Error
                  (Printf.sprintf "Runtime.process: exceeded %d CPU loops"
                     max_cpu_loops)
            | Some handler -> (
                match handler sfc bytes with
                | Consume -> finish ()
                | Reinject bytes ->
                    loop bytes (rounds + 1) recircs resubmits latency
                      mirrored_rev false))
        | Asic.Chip.Emitted _ | Asic.Chip.Dropped -> finish ())
  in
  let res =
    match t.cache with
    | None -> loop frame 0 0 0 0.0 [] true
    | Some c -> (
        match Flow_cache.lookup c ~in_port frame with
        | Some h ->
            (* Validated hit: the memoized verdict stands in for the
               whole pipeline run. Cacheable outcomes have zero path
               counters and no mirrors by construction, so this outcome
               equals what the re-run would have produced. *)
            (match t.obs with Some os -> incr os.c_cache_hit | None -> ());
            Ok
              {
                verdict = h.Flow_cache.verdict;
                counters =
                  {
                    Counters.zero with
                    Counters.latency_ns = h.Flow_cache.latency_ns;
                  };
                mirrored = [];
              }
        | None ->
            (match t.obs with Some os -> incr os.c_cache_miss | None -> ());
            let res = loop frame 0 0 0 0.0 [] true in
            (match res with
            | Ok o ->
                Flow_cache.commit c ~frame ~verdict:o.verdict
                  ~cpu_round_trips:o.counters.Counters.cpu_round_trips
                  ~recircs:o.counters.Counters.recircs
                  ~resubmits:o.counters.Counters.resubmits
                  ~mirrored:(o.mirrored <> [])
                  ~latency_ns:o.counters.Counters.latency_ns
            | Error _ -> Flow_cache.abort c);
            res)
  in
  (match t.obs with
  | None -> ()
  | Some os -> (
      let wall = Int64.to_int (Int64.sub (Telemetry.Tclock.now_ns ()) t0) in
      Telemetry.Histogram.observe os.h_ns wall;
      (match res with
      | Error e ->
          incr os.c_errors;
          incr
            (Telemetry.Registry.counter (Observe.registry os.o)
               ("error." ^ Observe.error_class e))
      | Ok o -> (
          os.c_round_trips :=
            !(os.c_round_trips) + o.counters.Counters.cpu_round_trips;
          os.c_recircs := !(os.c_recircs) + o.counters.Counters.recircs;
          os.c_resubmits := !(os.c_resubmits) + o.counters.Counters.resubmits;
          match o.verdict with
          | Asic.Chip.Emitted { port; _ } ->
              incr os.c_emitted;
              if port >= 0 && port < Array.length os.tx then incr os.tx.(port)
          | Asic.Chip.Dropped ->
              incr os.c_dropped;
              incr os.c_drop_dp
          | Asic.Chip.To_cpu _ -> incr os.c_to_cpu));
      match jr with
      | None -> ()
      | Some l ->
          let results = List.rev !l in
          let hops = List.concat_map Observe.hops_of_result results in
          let verdict, rounds, recircs, resubmits, latency =
            match res with
            | Ok o ->
                ( Observe.verdict_string o.verdict,
                  o.counters.Counters.cpu_round_trips,
                  o.counters.Counters.recircs,
                  o.counters.Counters.resubmits,
                  o.counters.Counters.latency_ns )
            | Error e ->
                (* The failed injection produced no result — reconstruct
                   what we can from the completed passes. *)
                ( "error:" ^ e,
                  max 0 (List.length results - 1),
                  List.fold_left (fun a r -> a + r.Asic.Chip.recircs) 0 results,
                  List.fold_left
                    (fun a r -> a + r.Asic.Chip.resubmits)
                    0 results,
                  List.fold_left
                    (fun a r -> a +. r.Asic.Chip.latency_ns)
                    0.0 results )
          in
          Observe.record_journey os.o
            {
              Telemetry.Journey.id = Observe.next_journey_id os.o;
              in_port;
              verdict;
              cpu_round_trips = rounds;
              recircs;
              resubmits;
              latency_ns = latency;
              wall_ns = wall;
              hops;
            };
          (* The same hop records, reported INT-postcard-style: keyed by
             flow and folded into the per-flow aggregate. *)
          Telemetry.Int_report.push (Observe.int_sink os.o)
            {
              Telemetry.Int_report.flow = flow_key ~in_port frame;
              in_port;
              verdict;
              wall_ns = wall;
              hops;
            }));
  res

type batch_stats = {
  packets : int;
  emitted : int;
  dropped : int;
  to_cpu : int;
  errors : int;
  counters : Counters.t;
  digest : int64;
  error_log : (int * string) list;
  suppressed : int;
}

let max_error_log = 8

let empty_stats =
  {
    packets = 0;
    emitted = 0;
    dropped = 0;
    to_cpu = 0;
    errors = 0;
    counters = Counters.zero;
    digest = 0L;
    error_log = [];
    suppressed = 0;
  }

(* The digest folds a verdict tag, the egress port and the full output
   frame of every packet — in batch order — through CRC-32, so two runs
   agree on the digest iff they produced byte-identical outputs in the
   same order. *)
let fold_digest acc tag port frame =
  let head = Bytes.create 5 in
  Bytes.set_uint8 head 0 tag;
  Bytes.set_int32_be head 1 (Int32.of_int port);
  let acc = Netpkt.Bytes_util.crc32 ~init:acc head ~off:0 ~len:5 in
  match frame with
  | None -> acc
  | Some b -> Netpkt.Bytes_util.crc32 ~init:acc b ~off:0 ~len:(Bytes.length b)

(* Minor and direct-major words allocated so far ([Gc.major_words]
   includes promotions, which [minor_words] already counted — subtract
   them so the pair sums to total words allocated). *)
let gc_words () =
  let s = Gc.quick_stat () in
  (s.Gc.minor_words, s.Gc.major_words -. s.Gc.promoted_words)

let process_batch ?each t pkts =
  (* Batch boundary: drain queued control-plane batches onto this
     runtime's chip before any packet of this batch runs. Outcomes land
     in the queue's result log. *)
  ignore (sync t);
  (* Allocation accounting brackets the packet loop (after the ctrl
     drain, so control-plane work is not billed to packets). The
     per-packet figure includes whatever observation itself allocates —
     that is the point: it is the number the zero-alloc work must
     drive down at [Off], and the overhead it pays above it. *)
  let gc0 = match t.obs with None -> (0.0, 0.0) | Some _ -> gc_words () in
  let stats = ref empty_stats in
  List.iteri
    (fun i (in_port, frame) ->
      let s = !stats in
      let s = { s with packets = s.packets + 1 } in
      let res = process t ~in_port frame in
      (match each with Some f -> f i res | None -> ());
      match res with
      | Error e ->
          let msg = Bytes.of_string e in
          (* Keep the first few messages (with the offending in_port)
             instead of swallowing them into a bare count: a batch that
             "just" reports errors=3 is undebuggable. *)
          let error_log =
            if s.errors < max_error_log then (in_port, e) :: s.error_log
            else s.error_log
          in
          stats :=
            {
              s with
              errors = s.errors + 1;
              digest = fold_digest s.digest 4 0 (Some msg);
              error_log;
            }
      | Ok o ->
          let s = { s with counters = Counters.add s.counters o.counters } in
          stats :=
            (match o.verdict with
            | Asic.Chip.Emitted { port; frame } ->
                {
                  s with
                  emitted = s.emitted + 1;
                  digest = fold_digest s.digest 1 port (Some frame);
                }
            | Asic.Chip.Dropped ->
                {
                  s with
                  dropped = s.dropped + 1;
                  digest = fold_digest s.digest 2 0 None;
                }
            | Asic.Chip.To_cpu frame ->
                {
                  s with
                  to_cpu = s.to_cpu + 1;
                  digest = fold_digest s.digest 3 0 (Some frame);
                }))
    pkts;
  let s = !stats in
  (match t.obs with
  | None -> ()
  | Some os ->
      let minor0, major0 = gc0 in
      let minor1, major1 = gc_words () in
      let minor_d = minor1 -. minor0 and major_d = major1 -. major0 in
      os.c_gc_minor := !(os.c_gc_minor) + max 0 (int_of_float minor_d);
      os.c_gc_major := !(os.c_gc_major) + max 0 (int_of_float major_d);
      if s.packets > 0 then
        Telemetry.Histogram.observe os.h_alloc_w
          (max 0
             (int_of_float ((minor_d +. major_d) /. float_of_int s.packets)));
      let suppressed = s.errors - List.length s.error_log in
      if suppressed > 0 then
        os.c_suppressed := !(os.c_suppressed) + suppressed);
  {
    s with
    error_log = List.rev s.error_log;
    suppressed = s.errors - List.length s.error_log;
  }

(* --- Sharded parallel execution --- *)

(* Flow-affinity shard assignment: the CRC-32 of the *canonicalized*
   outer 5-tuple, mod the domain count — every packet of a connection,
   in either direction, lands on the same domain, in arrival order.
   The symmetry matters for NAT/LB: the reply flow (B -> A) must see
   the bindings the forward flow (A -> B) installed, so both must share
   a shard; hashing the directed tuple (the old behaviour) split them.
   Frames with no parseable IPv4 5-tuple shard by input port, which at
   least keeps a port's unparseable traffic ordered. *)
let shard_of_packet ~domains in_port frame =
  if domains <= 1 then 0
  else
    match Netpkt.Pkt.decode frame with
    | Error _ -> (in_port land max_int) mod domains
    | Ok layers -> (
        match Netpkt.Pkt.five_tuple_of layers with
        | Some ft ->
            Int64.to_int
              (Int64.rem
                 (Netpkt.Flow.hash_five_tuple_symmetric ft)
                 (Int64.of_int domains))
        | None -> (in_port land max_int) mod domains)

(* A shard runtime: a share-nothing chip replica, the same compiled
   metadata (read-only during a batch), chip-bound handlers re-bound to
   the replica's table handles, and — when the parent observes — a
   private observer whose registry merges back after the run. *)
let replica_of t d =
  match Asic.Chip.replicate t.chip with
  | Error e -> failwith ("Runtime.process_batch_parallel: " ^ e)
  | Ok rchip ->
      (* The shard's persistent store: replica chips die with the
         batch, but shard d's state store carries across batches — a
         punt-installed session outlives the replica that installed
         it, and its eviction callback (re-bound below to this batch's
         replica table) keeps the live chip in step. *)
      let store =
        if Array.length t.stores = 0 then None
        else Some t.stores.(d mod Array.length t.stores)
      in
      let rt =
        {
          compiled = t.compiled;
          chip = rchip;
          handlers = Hashtbl.copy t.handlers;
          chip_handlers = t.chip_handlers;
          nf_ids = t.nf_ids;
          reinject = t.reinject;
          engine = { t.engine with Engine.domains = 1 };
          obs = None;
          cache = None;
          stores = (match store with None -> [||] | Some s -> [| s |]);
          state_handlers = t.state_handlers;
          ctrl = Ctrl.queue ();
        }
      in
      Hashtbl.iter
        (fun nf factory -> Hashtbl.replace rt.handlers nf (factory rchip))
        t.chip_handlers;
      Hashtbl.iter
        (fun nf factory -> Hashtbl.replace rt.handlers nf (factory rchip store))
        t.state_handlers;
      (match t.engine.Engine.telemetry with
      | Telemetry.Level.Off -> ()
      | (Telemetry.Level.Counters | Telemetry.Level.Journeys) as level ->
          enable_obs rt level t.engine.Engine.ring_capacity);
      (* Each shard gets a private cache armed on its own replica chip:
         the recorder hooks and the entries both belong to exactly one
         domain, so shards never observe each other's state. *)
      (match t.engine.Engine.cache with
      | Engine.Off -> ()
      | Engine.Emc { capacity } ->
          rt.cache <- Some (Flow_cache.create ~capacity rchip));
      rt

(* Shard-major merge. The combined digest chains the per-shard digests
   in shard order through CRC-32: deterministic for a fixed [domains]
   (shard assignment and intra-shard order are both deterministic), and
   different from the sequential digest by construction — cross-count
   equivalence is checked on totals and per-packet outcomes instead. *)
let merge_shards per_shard =
  let digest =
    List.fold_left
      (fun acc s ->
        let b = Bytes.create 8 in
        Bytes.set_int64_be b 0 s.digest;
        Netpkt.Bytes_util.crc32 ~init:acc b ~off:0 ~len:8)
      0L per_shard
  in
  let merged =
    List.fold_left
      (fun acc s ->
        {
          packets = acc.packets + s.packets;
          emitted = acc.emitted + s.emitted;
          dropped = acc.dropped + s.dropped;
          to_cpu = acc.to_cpu + s.to_cpu;
          errors = acc.errors + s.errors;
          counters = Counters.add acc.counters s.counters;
          digest = 0L;
          error_log = acc.error_log @ s.error_log;
          suppressed = 0;
        })
      empty_stats per_shard
  in
  let error_log =
    List.filteri (fun i _ -> i < max_error_log) merged.error_log
  in
  (* Suppressed = everything the surviving log does not show, whether a
     shard capped it locally or the shard-order concatenation did. *)
  {
    merged with
    digest;
    error_log;
    suppressed = merged.errors - List.length error_log;
  }

let process_batch_parallel ?domains ?each t pkts =
  let domains =
    max 1 (match domains with Some d -> d | None -> t.engine.Engine.domains)
  in
  if domains = 1 then
    (* The sequential path, bit-identical to [process_batch] — including
       its state persistence on the primary chip. *)
    process_batch ?each t pkts
  else begin
    (* Drain queued control ops onto the primary BEFORE replicating:
       every shard of this batch then clones the same post-update
       state — the replica-coherence point. *)
    ignore (sync t);
    (* An explicit [?domains] that disagrees with the live store layout
       is a re-shard: re-home the entries first so shard d's packets
       meet shard d's state (and no two domains ever share a store). *)
    (if Array.length t.stores > 0 && Array.length t.stores <> domains then
       match Engine.store_config t.engine.Engine.state with
       | None -> ()
       | Some cfg ->
           let fresh = Array.init domains (fun _ -> State_store.create cfg) in
           State_store.migrate ~from:t.stores ~into:fresh;
           t.stores <- fresh;
           rebind_state_handlers t);
    let buckets = Array.make domains [] in
    List.iteri
      (fun i (in_port, frame) ->
        let s = shard_of_packet ~domains in_port frame in
        buckets.(s) <- (i, in_port, frame) :: buckets.(s))
      pkts;
    let shards = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
    let replicas = Array.init domains (fun d -> replica_of t d) in
    let tasks =
      List.init domains (fun d () ->
          let sh = shards.(d) in
          let each =
            (* Remap the in-shard index back to the packet's position in
               the caller's list. *)
            Option.map
              (fun f j r ->
                let i, _, _ = sh.(j) in
                f i r)
              each
          in
          process_batch ?each replicas.(d)
            (Array.to_list (Array.map (fun (_, p, f) -> (p, f)) sh)))
    in
    let per_shard = Dpool.run ~domains tasks in
    (match t.obs with
    | None -> ()
    | Some os ->
        Array.iter
          (fun rt ->
            match rt.obs with
            | None -> ()
            | Some ros ->
                (* Table tallies fold into the primary chip's live stats
                   (so a later snapshot's sync_tables sees them); pure
                   registry counters and histograms merge directly;
                   journeys re-enter the primary ring with fresh ids. *)
                Asic.Chip.merge_stats ~into:t.chip rt.chip;
                Telemetry.Registry.merge
                  ~into:(Observe.registry os.o)
                  (Observe.registry ros.o);
                List.iter
                  (fun j ->
                    Observe.record_journey os.o
                      {
                        j with
                        Telemetry.Journey.id = Observe.next_journey_id os.o;
                      })
                  (Observe.journeys ros.o);
                (* Per-flow INT aggregates fold field-wise; flow
                   affinity means a flow's summary lives on exactly one
                   shard, so the fold never double-counts a flow. *)
                Telemetry.Int_report.merge
                  ~into:(Observe.int_sink os.o)
                  (Observe.int_sink ros.o))
          replicas);
    (match t.cache with
    | None -> ()
    | Some root ->
        (* Entries die with the replicas; the tallies fold back so
           [flow_cache] keeps runtime-wide hit/miss accounting. *)
        Array.iter
          (fun rt ->
            Option.iter (fun rc -> Flow_cache.merge_stats ~into:root rc) rt.cache)
          replicas);
    merge_shards per_shard
  end

(* --- Snapshot front door --- *)

let int_sink t = Option.map (fun os -> Observe.int_sink os.o) t.obs

(* Absolute gauges (cache occupancy, INT flow counts, queue depth) are
   written into the registry only here, at snapshot time — never on the
   hot path and never on a shard replica, so [Registry.merge] (which
   sums) cannot double-count them when parallel batches fold replica
   registries back. *)
let sync_gauges t =
  match t.obs with
  | None -> ()
  | Some os ->
      let reg = Observe.registry os.o in
      let set name v = Telemetry.Registry.counter reg name := v in
      (match t.cache with
      | None -> ()
      | Some c ->
          let s = Flow_cache.stats c in
          set "cache.occupancy" (Flow_cache.length c);
          set "cache.capacity" (Flow_cache.capacity c);
          set "cache.inserts" s.Flow_cache.inserts;
          set "cache.evictions" s.Flow_cache.evictions;
          set "cache.stale" s.Flow_cache.stale;
          set "cache.invalidations" s.Flow_cache.invalidations;
          set "cache.uncacheable" s.Flow_cache.uncacheable);
      (* State-store gauges: per-table tallies summed across the shard
         stores in shard order — the deterministic fold-back; written
         only here (primary, snapshot time), like every other gauge. *)
      if Array.length t.stores > 0 then begin
        set "state.stores" (Array.length t.stores);
        set "state.capacity" (State_store.config t.stores.(0)).State_store.capacity;
        let acc = Hashtbl.create 8 in
        Array.iter
          (fun store ->
            List.iter
              (fun (name, occupancy, (s : State_store.table_stats)) ->
                let o, h, m, i, e, x =
                  Option.value ~default:(0, 0, 0, 0, 0, 0)
                    (Hashtbl.find_opt acc name)
                in
                Hashtbl.replace acc name
                  ( o + occupancy,
                    h + s.State_store.hits,
                    m + s.State_store.misses,
                    i + s.State_store.inserts,
                    e + s.State_store.evictions,
                    x + s.State_store.expirations ))
              (State_store.per_table store))
          t.stores;
        Hashtbl.iter
          (fun name (o, h, m, i, e, x) ->
            let g metric v = set (Printf.sprintf "state.%s.%s" name metric) v in
            g "occupancy" o;
            g "hits" h;
            g "misses" m;
            g "inserts" i;
            g "evictions" e;
            g "expirations" x)
          acc
      end;
      set "ctrl.pending" (Ctrl.pending t.ctrl);
      let sink = Observe.int_sink os.o in
      if Telemetry.Int_report.pushed sink > 0 then begin
        set "int.flows" (Telemetry.Int_report.flows sink);
        set "int.postcards" (Telemetry.Int_report.pushed sink);
        set "int.dropped_flows" (Telemetry.Int_report.dropped_flows sink)
      end

let snapshot t =
  match t.obs with
  | None -> None
  | Some os ->
      sync_gauges t;
      Some (Observe.snapshot os.o t.chip)
