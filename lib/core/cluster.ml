type t = { spec : Asic.Spec.t; n_switches : int; cable_m : float }

let make ?(cable_m = 1.0) ~spec ~n_switches () =
  if n_switches < 1 then invalid_arg "Cluster.make: need at least one switch";
  { spec; n_switches; cable_m }

let per_switch t = t.spec.Asic.Spec.n_pipelines
let n_global_pipelines t = t.n_switches * per_switch t
let switch_of_pipeline t g = g / per_switch t

let global_pipeline t ~switch ~pipeline =
  if switch < 0 || switch >= t.n_switches then
    invalid_arg "Cluster.global_pipeline: bad switch";
  if pipeline < 0 || pipeline >= per_switch t then
    invalid_arg "Cluster.global_pipeline: bad pipeline";
  (switch * per_switch t) + pipeline

let pipelet t ~switch ~pipeline ~kind =
  { Asic.Pipelet.pipeline = global_pipeline t ~switch ~pipeline; kind }

type step =
  | Ingress_pass of { global_pipeline : int; idx_out : int }
  | To_egress of { global_pipeline : int; idx_out : int }
  | Resubmit
  | Recirc
  | Hop of { to_switch : int }
  | Emit

type path = {
  steps : step list;
  recircs : int;
  resubmits : int;
  hops : int;
}

(* Costs, in milli-recirculations. *)
let recirc_cost = 1000
let resubmit_cost = 900
let hop_cost = 100

type loc = I of int | E of int

let solve t layout ~entry_pipeline ~exit_switch ~exit_pipeline chain =
  let k = List.length chain in
  let n = n_global_pipelines t in
  let exit_global = global_pipeline t ~switch:exit_switch ~pipeline:exit_pipeline in
  let layout_at loc =
    match loc with
    | I g -> Layout.layout_of layout { Asic.Pipelet.pipeline = g; kind = Asic.Pipelet.Ingress }
    | E g -> Layout.layout_of layout { Asic.Pipelet.pipeline = g; kind = Asic.Pipelet.Egress }
  in
  let advance loc idx = Traversal.advance (layout_at loc) chain idx in
  let state_id loc idx =
    let base = match loc with I g -> g | E g -> n + g in
    (base * (k + 1)) + idx
  in
  let n_states = 2 * n * (k + 1) in
  let dist = Array.make n_states max_int in
  let pred = Array.make n_states None in
  let same_switch a b = switch_of_pipeline t a = switch_of_pipeline t b in
  let edges loc idx =
    let idx' = advance loc idx in
    match loc with
    | I g ->
        let egress_moves =
          List.filter_map
            (fun q ->
              if same_switch g q then
                Some
                  ( 0,
                    (E q, idx'),
                    [ Ingress_pass { global_pipeline = g; idx_out = idx' };
                      To_egress { global_pipeline = q; idx_out = idx' } ] )
              else None)
            (List.init n Fun.id)
        in
        let resubmit_moves =
          if advance (I g) idx' > idx' then
            [
              ( resubmit_cost,
                (I g, idx'),
                [ Ingress_pass { global_pipeline = g; idx_out = idx' }; Resubmit ] );
            ]
          else []
        in
        egress_moves @ resubmit_moves
    | E q ->
        let s = switch_of_pipeline t q in
        let recirc = [ (recirc_cost, (I q, idx'), [ Recirc ]) ] in
        let hop =
          if s + 1 < t.n_switches then
            (* The uplink lands in the next switch's pipeline 0. *)
            let next_ingress = global_pipeline t ~switch:(s + 1) ~pipeline:0 in
            [ (hop_cost, (I next_ingress, idx'), [ Hop { to_switch = s + 1 } ]) ]
          else []
        in
        recirc @ hop
  in
  let decode s =
    let base = s / (k + 1) and idx = s mod (k + 1) in
    ((if base < n then I base else E (base - n)), idx)
  in
  let start = state_id (I entry_pipeline) 0 in
  dist.(start) <- 0;
  let visited = Array.make n_states false in
  let pq = Pqueue.create (2 * n_states) in
  Pqueue.push pq ~prio:0 start;
  let rec drain () =
    match Pqueue.pop pq with
    | None -> ()
    | Some (d, s) ->
        if (not visited.(s)) && d <= dist.(s) then begin
          visited.(s) <- true;
          let loc, idx = decode s in
          List.iter
            (fun (c, (loc', idx'), steps) ->
              let s' = state_id loc' idx' in
              if d + c < dist.(s') then begin
                dist.(s') <- d + c;
                pred.(s') <- Some (s, steps);
                Pqueue.push pq ~prio:(d + c) s'
              end)
            (edges loc idx)
        end;
        drain ()
  in
  drain ();
  (* Terminal: egress on the exit pipeline whose pass finishes the chain. *)
  let terminal = ref None in
  for s = 0 to n_states - 1 do
    if dist.(s) < max_int then begin
      match decode s with
      | E q, idx when q = exit_global && advance (E q) idx = k -> (
          match !terminal with
          | Some (_, d) when d <= dist.(s) -> ()
          | _ -> terminal := Some (s, dist.(s)))
      | (E _ | I _), _ -> ()
    end
  done;
  match !terminal with
  | None -> None
  | Some (s, _) ->
      let rec unwind s acc =
        match pred.(s) with
        | None -> acc
        | Some (s', steps) -> unwind s' (steps @ acc)
      in
      let steps = unwind s [] @ [ Emit ] in
      let count f = List.length (List.filter f steps) in
      Some
        {
          steps;
          recircs = count (function Recirc -> true | _ -> false);
          resubmits = count (function Resubmit -> true | _ -> false);
          hops = count (function Hop _ -> true | _ -> false);
        }

let latency_ns t path =
  let l = t.spec.Asic.Spec.lat in
  let pipe = Asic.Latency.pipe_pass_ns t.spec in
  List.fold_left
    (fun acc step ->
      match step with
      | Ingress_pass _ -> acc +. pipe
      | To_egress _ -> acc +. l.Asic.Spec.tm_ns +. pipe
      | Resubmit -> acc (* the re-pass is its own Ingress_pass *)
      | Recirc -> acc +. Asic.Latency.recirc_on_chip_ns t.spec
      | Hop _ -> acc +. Asic.Latency.recirc_off_chip_ns t.spec ~cable_m:t.cable_m
      | Emit -> acc)
    (2.0 *. l.Asic.Spec.mac_serdes_ns)
    path.steps

let cost t layout ~entry_pipeline ~exit_switch ~exit_pipeline chains =
  List.fold_left
    (fun acc (c : Chain.t) ->
      match acc with
      | None -> None
      | Some total -> (
          match
            solve t layout ~entry_pipeline ~exit_switch ~exit_pipeline
              c.Chain.nfs
          with
          | None -> None
          | Some p ->
              Some
                (total
                +. c.Chain.weight
                   *. (float_of_int p.recircs
                      +. (0.9 *. float_of_int p.resubmits)
                      +. (0.1 *. float_of_int p.hops)))))
    (Some 0.0) chains

(* --- placement --- *)

type strategy = Greedy_fill | Anneal of { iterations : int; seed : int }

let framework_stages_per_nf = 2
let framework_stages_fixed = 1

let stages_needed resources_of pl_layout =
  let nf_count = List.length (Layout.nfs_of_pipelet pl_layout) in
  Layout.stage_demand resources_of pl_layout
  + (nf_count * framework_stages_per_nf)
  + if nf_count > 0 then framework_stages_fixed else 0

let all_pipelets t =
  List.concat_map
    (fun g ->
      [
        { Asic.Pipelet.pipeline = g; kind = Asic.Pipelet.Ingress };
        { Asic.Pipelet.pipeline = g; kind = Asic.Pipelet.Egress };
      ])
    (List.init (n_global_pipelines t) Fun.id)

let build_layout t ~resources_of ~chains assignment =
  let ids = List.sort_uniq Asic.Pipelet.compare_id (List.map snd assignment) in
  let order nfs =
    (* Chain-precedence order, as on a single switch. *)
    List.stable_sort
      (fun a b ->
        let pos nf =
          List.fold_left
            (fun acc (c : Chain.t) ->
              match Chain.position c nf with Some i -> min acc i | None -> acc)
            max_int chains
        in
        compare (pos a) (pos b))
      nfs
  in
  let budget = t.spec.Asic.Spec.stages_per_pipelet in
  let rec build acc = function
    | [] -> Some (List.rev acc)
    | id :: rest ->
        let nfs =
          order
            (List.filter_map
               (fun (nf, i) -> if Asic.Pipelet.equal_id i id then Some nf else None)
               assignment)
        in
        let seq = [ Layout.Seq nfs ] in
        if stages_needed resources_of seq <= budget then
          build ((id, seq) :: acc) rest
        else if
          List.length nfs > 1
          && stages_needed resources_of [ Layout.Par nfs ] <= budget
        then build ((id, [ Layout.Par nfs ]) :: acc) rest
        else None
  in
  build [] ids

let rec place t ~resources_of ~chains ~exit_switch ~exit_pipeline ~pinned strategy =
  let nfs =
    List.filter
      (fun nf -> not (List.mem_assoc nf pinned))
      (Chain.all_nfs chains)
  in
  let pipelets = Array.of_list (all_pipelets t) in
  let eval assignment =
    match build_layout t ~resources_of ~chains assignment with
    | None -> None
    | Some layout ->
        Option.map
          (fun c -> (layout, c))
          (cost t layout ~entry_pipeline:0 ~exit_switch ~exit_pipeline chains)
  in
  match strategy with
  | Greedy_fill ->
      (* Fill pipelets in forward order (switch by switch), packing as
         many chain-consecutive NFs per pipelet as fit — the natural
         "chain the switches back-to-back" plan of §7. *)
      let rec fill assignment cursor nfs =
        match nfs with
        | [] -> Ok assignment
        | nf :: rest ->
            if cursor >= Array.length pipelets then
              Error "cluster greedy: out of pipelets"
            else
              let id = pipelets.(cursor) in
              let candidate = assignment @ [ (nf, id) ] in
              let members =
                List.filter_map
                  (fun (f, i) -> if Asic.Pipelet.equal_id i id then Some f else None)
                  candidate
              in
              if
                stages_needed resources_of [ Layout.Seq members ]
                <= t.spec.Asic.Spec.stages_per_pipelet
              then fill candidate cursor rest
              else fill assignment (cursor + 1) (nf :: rest)
      in
      Result.bind (fill pinned 0 nfs) (fun assignment ->
          match eval assignment with
          | Some r -> Ok r
          | None -> Error "cluster greedy: infeasible routing")
  | Anneal { iterations; seed } -> (
      let st = Random.State.make [| seed |] in
      let free = Array.of_list nfs in
      let current =
        Array.map
          (fun _ -> pipelets.(Random.State.int st (Array.length pipelets)))
          free
      in
      (* Seed from greedy when it works. *)
      (match place t ~resources_of ~chains ~exit_switch ~exit_pipeline ~pinned Greedy_fill with
      | Ok (layout, _) ->
          Array.iteri
            (fun i nf ->
              match Layout.location layout nf with
              | Some id -> current.(i) <- id
              | None -> ())
            free
      | Error _ -> ());
      let assignment_of arr =
        pinned @ Array.to_list (Array.mapi (fun i id -> (free.(i), id)) arr)
      in
      let score arr = Option.map snd (eval (assignment_of arr)) in
      let best = ref (Array.copy current) in
      let best_score = ref (score current) in
      let cur = ref (score current) in
      for it = 0 to iterations - 1 do
        let temp = 2.0 *. (1.0 -. (float_of_int it /. float_of_int iterations)) in
        let i = Random.State.int st (max 1 (Array.length free)) in
        if Array.length free > 0 then begin
          let old = current.(i) in
          current.(i) <- pipelets.(Random.State.int st (Array.length pipelets));
          let s = score current in
          let accept =
            match (s, !cur) with
            | Some nc, Some oc ->
                nc <= oc
                || Random.State.float st 1.0 < exp ((oc -. nc) /. max temp 1e-9)
            | Some _, None -> true
            | None, _ -> false
          in
          if accept then begin
            cur := s;
            match (s, !best_score) with
            | Some nc, Some bc when nc < bc ->
                best_score := s;
                best := Array.copy current
            | Some _, None ->
                best_score := s;
                best := Array.copy current
            | _ -> ()
          end
          else current.(i) <- old
        end
      done;
      match eval (assignment_of !best) with
      | Some r -> Ok r
      | None -> Error "cluster anneal: no feasible assignment found")

let pp_step ppf = function
  | Ingress_pass { global_pipeline; idx_out } ->
      Format.fprintf ppf "I%d[->%d]" global_pipeline idx_out
  | To_egress { global_pipeline; idx_out } ->
      Format.fprintf ppf "E%d[->%d]" global_pipeline idx_out
  | Resubmit -> Format.pp_print_string ppf "resubmit"
  | Recirc -> Format.pp_print_string ppf "recirc"
  | Hop { to_switch } -> Format.fprintf ppf "hop->sw%d" to_switch
  | Emit -> Format.pp_print_string ppf "emit"

let pp_path ppf p =
  Format.fprintf ppf "%a (recircs=%d resubmits=%d hops=%d)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_step)
    p.steps p.recircs p.resubmits p.hops
