type input = {
  spec : Asic.Spec.t;
  registry : Nf.registry;
  chains : Chain.t list;
  entry_pipeline : int;
  strategy : Placement.strategy;
  loopback_pipelines : int list;
  pinned : (string * Asic.Pipelet.id) list;
  mirror_port : int option;
}

let default_input ?(spec = Asic.Spec.wedge_100b) ?(entry_pipeline = 0)
    ?(strategy = Placement.Exhaustive) ?(loopback_pipelines = [ 1 ])
    ?(pinned = []) ?mirror_port ~registry ~chains () =
  {
    spec;
    registry;
    chains;
    entry_pipeline;
    strategy;
    loopback_pipelines;
    pinned;
    mirror_port;
  }

type t = {
  input : input;
  chip : Asic.Chip.t;
  layout : Layout.t;
  objective : float;
  plan : Branching.plan;
  generic_parser : P4ir.Parser_graph.t;
  built : (Asic.Pipelet.id * Compose.built) list;
}

let ( let* ) = Result.bind

let framework_stages_per_nf = 2
let framework_stages_fixed = 1

(* Validate the chains and instantiate fresh NF instances for this
   deployment — the shared prefix of [placement_input] and [compile]. *)
let instantiate_chains input =
  let* () = Chain.validate_against input.registry input.chains in
  let chains = Chain.normalize_weights input.chains in
  let* nfs =
    List.fold_left
      (fun acc name ->
        let* l = acc in
        let* nf = Nf.instantiate input.registry name in
        Ok (l @ [ (name, nf) ]))
      (Ok [])
      (Chain.all_nfs chains)
  in
  Ok (chains, nfs)

(* The placement problem induced by a deployment: per-NF resource
   demands (memoized — the solvers call [resources_of] in their inner
   loops), classifier-style NFs auto-pinned to the entry ingress, and
   the framework's per-pipelet stage overheads. *)
let placement_input_of input chains nfs =
  let resource_cache = Hashtbl.create 16 in
  let resources_of name =
    match Hashtbl.find_opt resource_cache name with
    | Some r -> r
    | None ->
        let r =
          match List.assoc_opt name nfs with
          | Some nf -> Nf.resources nf
          | None -> P4ir.Resources.zero
        in
        Hashtbl.replace resource_cache name r;
        r
  in
  let auto_pins =
    List.filter_map
      (fun (name, nf) ->
        match nf.Nf.gate with
        | Nf.On_missing_sfc ->
            Some
              ( name,
                {
                  Asic.Pipelet.pipeline = input.entry_pipeline;
                  kind = Asic.Pipelet.Ingress;
                } )
        | Nf.Sfc_indexed -> None)
      nfs
  in
  let pinned =
    auto_pins
    @ List.filter (fun (n, _) -> not (List.mem_assoc n auto_pins)) input.pinned
  in
  {
    Placement.spec = input.spec;
    resources_of;
    chains;
    entry_pipeline = input.entry_pipeline;
    pinned;
    framework_stages_per_nf;
    framework_stages_fixed;
  }

let placement_input input =
  let* chains, nfs = instantiate_chains input in
  Ok (placement_input_of input chains nfs)

let compile input =
  let* chains, nfs = instantiate_chains input in
  let nf_of name =
    match List.assoc_opt name nfs with
    | Some nf -> Ok nf
    | None -> Error (Printf.sprintf "compiler: unknown NF %s" name)
  in
  (* Generic parser: the framework's own slice (it must always parse the
     SFC header) merged with every NF's parser. *)
  let framework_parser = Net_hdrs.base_parser ~with_vlan:true ~name:"dejavu" () in
  let* generic_parser =
    Result.map_error
      (fun c -> "parser merge: " ^ Parser_merge.conflict_message c)
      (Parser_merge.merge ~name:"generic"
         (framework_parser :: List.map (fun (_, nf) -> nf.Nf.parser) nfs))
  in
  let pinput = placement_input_of input chains nfs in
  let* layout, objective = Placement.solve pinput input.strategy in
  (* Ports: requested pipelines into loopback. *)
  let ports = Asic.Port.make input.spec in
  List.iter
    (fun pipe ->
      if pipe = input.entry_pipeline then
        invalid_arg "compiler: cannot loop back the entry pipeline"
      else Asic.Port.set_pipeline_loopback ports input.spec pipe)
    input.loopback_pipelines;
  (* Routing plan. *)
  let* plan =
    Branching.plan input.spec ports layout chains
      ~entry_pipeline:input.entry_pipeline
  in
  (* Compose one program per pipelet. *)
  let* built =
    List.fold_left
      (fun acc id ->
        let* l = acc in
        let* b =
          Compose.build ~spec:input.spec ~generic_parser ~id
            ~layout:(Layout.layout_of layout id) ~nf_of
        in
        Ok (l @ [ (id, b) ]))
      (Ok [])
      (Asic.Pipelet.all_ids input.spec)
  in
  (* Install routing entries. *)
  let branching_table_of pipeline =
    List.find_map
      (fun ((id : Asic.Pipelet.id), (b : Compose.built)) ->
        if id.Asic.Pipelet.pipeline = pipeline && id.Asic.Pipelet.kind = Asic.Pipelet.Ingress
        then
          Option.bind b.Compose.branching_table
            (P4ir.Program.find_table b.Compose.program)
        else None)
      built
  in
  let check_next_table_of nf =
    List.find_map
      (fun (_, (b : Compose.built)) ->
        Option.bind
          (List.assoc_opt nf b.Compose.check_next_of)
          (P4ir.Program.find_table b.Compose.program))
      built
  in
  let* () = Branching.install plan ~branching_table_of ~check_next_table_of in
  (* Load the chip. *)
  let program_of kind pipeline =
    let id = { Asic.Pipelet.pipeline; kind } in
    let _, b =
      List.find (fun (i, _) -> Asic.Pipelet.equal_id i id) built
    in
    b.Compose.program
  in
  let config =
    {
      Asic.Chip.spec = input.spec;
      ingress_programs =
        Array.init input.spec.Asic.Spec.n_pipelines
          (program_of Asic.Pipelet.Ingress);
      egress_programs =
        Array.init input.spec.Asic.Spec.n_pipelines
          (program_of Asic.Pipelet.Egress);
      ports;
      mirror_port = input.mirror_port;
    }
  in
  let* chip = Asic.Chip.load config in
  Ok { input; chip; layout; objective; plan; generic_parser; built }

let path_of_chain t chain =
  List.find_map
    (fun ((c : Chain.t), p) ->
      if c.Chain.path_id = chain.Chain.path_id then Some p else None)
    t.plan.Branching.paths

let find_nf_table t ~nf ~table =
  let name = Compose.nf_table_name ~nf table in
  List.find_map
    (fun (_, (b : Compose.built)) -> P4ir.Program.find_table b.Compose.program name)
    t.built

let find_register t name =
  List.find_map
    (fun (_, (b : Compose.built)) ->
      P4ir.Program.find_register b.Compose.program name)
    t.built

(* --- Table 1 report --- *)

type report_row = { resource : string; used : int; capacity : int; pct : float }

let framework_report t =
  let spec = t.input.spec in
  let caps = spec.Asic.Spec.stage_caps in
  let n_pipelets = Asic.Spec.n_pipelets spec in
  let total_stages = n_pipelets * spec.Asic.Spec.stages_per_pipelet in
  let per_stage_ids = caps.P4ir.Resources.cap_table_ids in
  (* Walk every loaded pipelet, look at the dv_ tables' stage slots and
     resource demands. *)
  let stage_slots = Hashtbl.create 32 in
  let acc = ref P4ir.Resources.zero in
  let gateways = ref 0 in
  List.iter
    (fun ((id : Asic.Pipelet.id), (b : Compose.built)) ->
      gateways := !gateways + b.Compose.framework_gateways;
      let pipelet = Asic.Chip.pipelet t.chip id in
      List.iter
        (fun tname ->
          (match Asic.Pipelet.stage_of_table pipelet tname with
          | Some s -> Hashtbl.replace stage_slots (id, s) ()
          | None -> ());
          match P4ir.Program.find_table b.Compose.program tname with
          | Some table ->
              acc :=
                P4ir.Resources.add !acc
                  { (P4ir.Resources.of_table table) with P4ir.Resources.stages = 0 }
          | None -> ())
        b.Compose.framework_tables)
    t.built;
  let used = !acc in
  let row resource used capacity =
    {
      resource;
      used;
      capacity;
      pct =
        (if capacity = 0 then 0.0
         else 100.0 *. float_of_int used /. float_of_int capacity);
    }
  in
  [
    row "Stages" (Hashtbl.length stage_slots) total_stages;
    row "Table IDs" used.P4ir.Resources.table_ids (total_stages * per_stage_ids);
    row "Gateways" !gateways (total_stages * caps.P4ir.Resources.cap_gateways);
    row "Crossbars" used.P4ir.Resources.crossbar_bytes
      (total_stages * caps.P4ir.Resources.cap_crossbar_bytes);
    row "VLIWs" used.P4ir.Resources.vliws (total_stages * caps.P4ir.Resources.cap_vliws);
    row "SRAM" used.P4ir.Resources.srams (total_stages * caps.P4ir.Resources.cap_srams);
    row "TCAM" used.P4ir.Resources.tcams (total_stages * caps.P4ir.Resources.cap_tcams);
  ]

let pp_report ppf rows =
  Format.fprintf ppf "@[<v>%-10s %8s %8s %7s@," "Resource" "Used" "Capacity" "Pct";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %8d %8d %6.1f%%@," r.resource r.used r.capacity
        r.pct)
    rows;
  Format.fprintf ppf "@]"

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>spec: %a@,placement (objective %.3f):@,%a@,paths:@,"
    Asic.Spec.pp t.input.spec t.objective Layout.pp t.layout;
  List.iter
    (fun ((c : Chain.t), p) ->
      Format.fprintf ppf "  %s: %a@," c.Chain.name Traversal.pp_path p)
    t.plan.Branching.paths;
  Format.fprintf ppf "@]"
