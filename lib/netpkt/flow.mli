(** Transport 5-tuples and deterministic workload generation. *)

type five_tuple = {
  src : Ip4.t;
  dst : Ip4.t;
  proto : int;
  src_port : int;
  dst_port : int;
}

val pp_five_tuple : Format.formatter -> five_tuple -> unit
val equal_five_tuple : five_tuple -> five_tuple -> bool
val compare_five_tuple : five_tuple -> five_tuple -> int

val hash_five_tuple : five_tuple -> int64
(** CRC32 over the tuple serialized in header order (src, dst, proto,
    sport, dport) — the same hash the L4 load balancer computes. *)

val canonicalize : five_tuple -> five_tuple
(** The direction-free form of a connection: endpoints ordered by
    (address, port), so a tuple and its reply canonicalize to the same
    value. Idempotent. *)

val hash_five_tuple_symmetric : five_tuple -> int64
(** [hash_five_tuple] of the {!canonicalize}d tuple: both directions of
    a connection hash alike. Shard assignment uses this so NAT/LB reply
    traffic lands on the shard that owns the forward flow's bindings;
    note it is {e not} the data-plane hash ({!hash_five_tuple}), which
    stays directed to mirror the chip's CRC unit. *)

type workload_spec = {
  seed : int;
  n_flows : int;
  client_subnet : Ip4.prefix;  (** source addresses drawn from here *)
  vip : Ip4.t;  (** all flows target this virtual IP *)
  dst_port : int;
  proto : int;
}

val default_spec : workload_spec
val generate : workload_spec -> five_tuple list
(** Deterministic: same spec, same flows. Flows are distinct. *)

val random_tuple : Random.State.t -> five_tuple
