type t = {
  dscp : int;
  ecn : int;
  total_length : int;
  ident : int;
  flags : int;
  frag_offset : int;
  ttl : int;
  protocol : int;
  checksum : int;
  src : Ip4.t;
  dst : Ip4.t;
}

let size = 20
let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

let make ?(dscp = 0) ?(ecn = 0) ?(ident = 0) ?(flags = 2) ?(frag_offset = 0)
    ?(ttl = 64) ?(total_length = size) ~protocol ~src ~dst () =
  {
    dscp;
    ecn;
    total_length;
    ident;
    flags;
    frag_offset;
    ttl;
    protocol;
    checksum = 0;
    src;
    dst;
  }

let encode_into t b ~off =
  Bytes_util.set_uint8 b off ((4 lsl 4) lor 5);
  Bytes_util.set_uint8 b (off + 1) ((t.dscp lsl 2) lor t.ecn);
  Bytes_util.set_uint16 b (off + 2) t.total_length;
  Bytes_util.set_uint16 b (off + 4) t.ident;
  Bytes_util.set_uint16 b (off + 6) ((t.flags lsl 13) lor t.frag_offset);
  Bytes_util.set_uint8 b (off + 8) t.ttl;
  Bytes_util.set_uint8 b (off + 9) t.protocol;
  (* Zero-then-recompute unconditionally: emitting a header whose
     fields were rewritten after decode (NAT, LB, routing TTL) with the
     stale decoded checksum put invalid frames on the wire. Recomputing
     over a valid unmodified header reproduces its checksum exactly, so
     pure re-encodes stay byte-identical. *)
  Bytes_util.set_uint16 b (off + 10) 0;
  Bytes_util.set_uint32 b (off + 12) (Ip4.to_int64 t.src);
  Bytes_util.set_uint32 b (off + 16) (Ip4.to_int64 t.dst);
  Bytes_util.set_uint16 b (off + 10)
    (Bytes_util.internet_checksum b ~off ~len:size)

let decode b ~off =
  if Bytes.length b < off + size then Error "Ipv4.decode: truncated"
  else
    let vihl = Bytes_util.get_uint8 b off in
    if vihl lsr 4 <> 4 then Error "Ipv4.decode: not version 4"
    else if vihl land 0xf <> 5 then Error "Ipv4.decode: options unsupported"
    else
      let tos = Bytes_util.get_uint8 b (off + 1) in
      let fl_fo = Bytes_util.get_uint16 b (off + 6) in
      Ok
        {
          dscp = tos lsr 2;
          ecn = tos land 3;
          total_length = Bytes_util.get_uint16 b (off + 2);
          ident = Bytes_util.get_uint16 b (off + 4);
          flags = fl_fo lsr 13;
          frag_offset = fl_fo land 0x1fff;
          ttl = Bytes_util.get_uint8 b (off + 8);
          protocol = Bytes_util.get_uint8 b (off + 9);
          checksum = Bytes_util.get_uint16 b (off + 10);
          src = Ip4.of_int64 (Bytes_util.get_uint32 b (off + 12));
          dst = Ip4.of_int64 (Bytes_util.get_uint32 b (off + 16));
        }

let checksum_valid b ~off = Bytes_util.internet_checksum b ~off ~len:size = 0

let equal a b =
  a.dscp = b.dscp && a.ecn = b.ecn && a.total_length = b.total_length
  && a.ident = b.ident && a.flags = b.flags && a.frag_offset = b.frag_offset
  && a.ttl = b.ttl && a.protocol = b.protocol && Ip4.equal a.src b.src
  && Ip4.equal a.dst b.dst

let pp ppf t =
  Format.fprintf ppf "ipv4{%a -> %a proto=%d ttl=%d len=%d}" Ip4.pp t.src
    Ip4.pp t.dst t.protocol t.ttl t.total_length
