type five_tuple = {
  src : Ip4.t;
  dst : Ip4.t;
  proto : int;
  src_port : int;
  dst_port : int;
}

let pp_five_tuple ppf t =
  Format.fprintf ppf "%a:%d -> %a:%d/%d" Ip4.pp t.src t.src_port Ip4.pp t.dst
    t.dst_port t.proto

let equal_five_tuple a b =
  Ip4.equal a.src b.src && Ip4.equal a.dst b.dst && a.proto = b.proto
  && a.src_port = b.src_port && a.dst_port = b.dst_port

let compare_five_tuple a b =
  let c = Ip4.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Ip4.compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = compare a.proto b.proto in
      if c <> 0 then c
      else
        let c = compare a.src_port b.src_port in
        if c <> 0 then c else compare a.dst_port b.dst_port

let hash_five_tuple t =
  let b = Bytes.create 13 in
  Bytes_util.set_uint32 b 0 (Ip4.to_int64 t.src);
  Bytes_util.set_uint32 b 4 (Ip4.to_int64 t.dst);
  Bytes_util.set_uint8 b 8 t.proto;
  Bytes_util.set_uint16 b 9 t.src_port;
  Bytes_util.set_uint16 b 11 t.dst_port;
  Bytes_util.crc32 b ~off:0 ~len:13

(* Canonical (direction-free) form of a connection: the lower
   (address, port) endpoint goes first, so a packet and its reply map
   to the same tuple. The ordering compares the address first and the
   port only on ties — a total order over endpoints. *)
let canonicalize t =
  let c = Ip4.compare t.src t.dst in
  if c < 0 || (c = 0 && t.src_port <= t.dst_port) then t
  else
    {
      t with
      src = t.dst;
      dst = t.src;
      src_port = t.dst_port;
      dst_port = t.src_port;
    }

let hash_five_tuple_symmetric t = hash_five_tuple (canonicalize t)

type workload_spec = {
  seed : int;
  n_flows : int;
  client_subnet : Ip4.prefix;
  vip : Ip4.t;
  dst_port : int;
  proto : int;
}

let default_spec =
  {
    seed = 42;
    n_flows = 64;
    client_subnet = Ip4.prefix_of_string_exn "203.0.113.0/24";
    vip = Ip4.of_string_exn "10.0.0.100";
    dst_port = 80;
    proto = Ipv4.proto_tcp;
  }

let generate spec =
  let st = Random.State.make [| spec.seed |] in
  let host_bits = 32 - spec.client_subnet.Ip4.len in
  let module Seen = Set.Make (struct
    type t = five_tuple

    let compare = compare_five_tuple
  end) in
  let rec loop seen acc n =
    if n = 0 then List.rev acc
    else
      let host =
        if host_bits = 0 then 0L
        else
          (* Avoid network/broadcast addresses of the subnet. *)
          Int64.of_int (1 + Random.State.int st (max 1 ((1 lsl min host_bits 16) - 2)))
      in
      let src = Ip4.of_int64 (Int64.logor (Ip4.to_int64 spec.client_subnet.Ip4.addr) host) in
      let t =
        {
          src;
          dst = spec.vip;
          proto = spec.proto;
          src_port = 1024 + Random.State.int st (65536 - 1024);
          dst_port = spec.dst_port;
        }
      in
      if Seen.mem t seen then loop seen acc n
      else loop (Seen.add t seen) (t :: acc) (n - 1)
  in
  loop Seen.empty [] spec.n_flows

let random_tuple st =
  {
    src = Ip4.random st;
    dst = Ip4.random st;
    proto = (if Random.State.bool st then Ipv4.proto_tcp else Ipv4.proto_udp);
    src_port = Random.State.int st 65536;
    dst_port = Random.State.int st 65536;
  }
