let check_range b ~bit_off ~width =
  if width < 1 || width > 64 then
    invalid_arg (Printf.sprintf "Bytes_util: width %d not in 1..64" width);
  if bit_off < 0 || bit_off + width > 8 * Bytes.length b then
    invalid_arg
      (Printf.sprintf "Bytes_util: bit range [%d,%d) exceeds %d bytes" bit_off
         (bit_off + width) (Bytes.length b))

(* Both accessors work a byte at a time: up to 8 bits of the field live
   in any one byte, so a width-w access costs at most ceil(w/8)+1 cheap
   integer steps instead of the w per-bit get/set rounds the original
   loops paid (which dominated every header extract/emit). *)
let get_bits_slow b ~bit_off ~width =
  let acc = ref 0L in
  let pos = ref bit_off in
  let remaining = ref width in
  while !remaining > 0 do
    let bit_in_byte = !pos land 7 in
    let take = min !remaining (8 - bit_in_byte) in
    let byte = Char.code (Bytes.unsafe_get b (!pos lsr 3)) in
    let chunk = (byte lsr (8 - bit_in_byte - take)) land ((1 lsl take) - 1) in
    acc := Int64.(logor (shift_left !acc take) (of_int chunk));
    pos := !pos + take;
    remaining := !remaining - take
  done;
  !acc

let get_bits b ~bit_off ~width =
  check_range b ~bit_off ~width;
  if bit_off land 7 = 0 && width land 7 = 0 && width <= 32 then
    (* Byte-aligned 8/16/24/32-bit fields — most header fields — read
       directly. *)
    let off = bit_off lsr 3 in
    match width with
    | 8 -> Int64.of_int (Char.code (Bytes.unsafe_get b off))
    | 16 -> Int64.of_int (Bytes.get_uint16_be b off)
    | 24 ->
        Int64.of_int
          ((Bytes.get_uint16_be b off lsl 8)
          lor Char.code (Bytes.unsafe_get b (off + 2)))
    | _ -> Int64.logand (Int64.of_int32 (Bytes.get_int32_be b off)) 0xFFFFFFFFL
  else get_bits_slow b ~bit_off ~width

let set_bits_slow b ~bit_off ~width v =
  let pos = ref bit_off in
  let remaining = ref width in
  while !remaining > 0 do
    let bit_in_byte = !pos land 7 in
    let take = min !remaining (8 - bit_in_byte) in
    let keep = lnot (((1 lsl take) - 1) lsl (8 - bit_in_byte - take)) land 0xff in
    let chunk =
      Int64.(to_int (logand (shift_right_logical v (!remaining - take))
                       (of_int ((1 lsl take) - 1))))
    in
    let idx = !pos lsr 3 in
    let old = Char.code (Bytes.unsafe_get b idx) in
    Bytes.unsafe_set b idx
      (Char.unsafe_chr
         ((old land keep) lor (chunk lsl (8 - bit_in_byte - take))));
    pos := !pos + take;
    remaining := !remaining - take
  done

let set_bits b ~bit_off ~width v =
  check_range b ~bit_off ~width;
  if bit_off land 7 = 0 && width land 7 = 0 && width <= 32 then
    let off = bit_off lsr 3 in
    match width with
    | 8 -> Bytes.unsafe_set b off (Char.unsafe_chr (Int64.to_int v land 0xff))
    | 16 -> Bytes.set_uint16_be b off (Int64.to_int v land 0xffff)
    | 24 ->
        let x = Int64.to_int v in
        Bytes.set_uint16_be b off ((x lsr 8) land 0xffff);
        Bytes.unsafe_set b (off + 2) (Char.unsafe_chr (x land 0xff))
    | _ -> Bytes.set_int32_be b off (Int64.to_int32 v)
  else set_bits_slow b ~bit_off ~width v

let get_uint8 b off = Char.code (Bytes.get b off)
let set_uint8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_uint16 b off = (get_uint8 b off lsl 8) lor get_uint8 b (off + 1)

let set_uint16 b off v =
  set_uint8 b off ((v lsr 8) land 0xff);
  set_uint8 b (off + 1) (v land 0xff)

let get_uint32 b off = get_bits b ~bit_off:(8 * off) ~width:32
let set_uint32 b off v = set_bits b ~bit_off:(8 * off) ~width:32 v

let internet_checksum b ~off ~len =
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + get_uint16 b (off + !i);
    i := !i + 2
  done;
  if len land 1 = 1 then sum := !sum + (get_uint8 b (off + len - 1) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let crc32_table =
  lazy
    (let t = Array.make 256 0L in
     for n = 0 to 255 do
       let c = ref (Int64.of_int n) in
       for _ = 0 to 7 do
         c :=
           if Int64.(logand !c 1L) = 1L then
             Int64.(logxor 0xEDB88320L (shift_right_logical !c 1))
           else Int64.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let crc32 ?(init = 0xFFFFFFFFL) b ~off ~len =
  let table = Lazy.force crc32_table in
  let c = ref init in
  for i = off to off + len - 1 do
    let idx = Int64.(to_int (logand (logxor !c (of_int (get_uint8 b i))) 0xffL)) in
    c := Int64.(logxor table.(idx) (shift_right_logical !c 8))
  done;
  Int64.logand (Int64.logxor !c 0xFFFFFFFFL) 0xFFFFFFFFL

let crc16 b ~off ~len =
  let c = ref 0L in
  for i = off to off + len - 1 do
    c := Int64.logxor !c (Int64.of_int (get_uint8 b i));
    for _ = 0 to 7 do
      c :=
        if Int64.(logand !c 1L) = 1L then
          Int64.(logxor 0xA001L (shift_right_logical !c 1))
        else Int64.shift_right_logical !c 1
    done
  done;
  Int64.logand !c 0xFFFFL

let pp_hex ppf b =
  let n = Bytes.length b in
  for i = 0 to n - 1 do
    if i > 0 && i mod 16 = 0 then Format.fprintf ppf "@\n";
    Format.fprintf ppf "%02x " (get_uint8 b i)
  done

let equal_range a b ~off ~len =
  Bytes.length a >= off + len
  && Bytes.length b >= off + len
  &&
  let rec loop i =
    i = len || (Bytes.get a (off + i) = Bytes.get b (off + i) && loop (i + 1))
  in
  loop 0
