(** The whole switch: pipelines of ingress/egress pipelets connected by a
    traffic manager, with resubmission and recirculation packet paths
    (Fig. 1 of the paper).

    The walk is faithful to the RMT architecture: the packet is deparsed
    at the end of every pipe and re-parsed at the next parser, so any
    state an NF wants to carry across pipes must ride in a header — which
    is precisely why Dejavu's SFC header exists. *)

type config = {
  spec : Spec.t;
  ingress_programs : P4ir.Program.t array;  (** one per pipeline *)
  egress_programs : P4ir.Program.t array;
  ports : Port.t;
  mirror_port : int option;
      (** analysis port that receives a copy of every frame whose mirror
          flag is set when it leaves an egress pipe *)
}

type t

val load : config -> (t, string) result
(** Loads and stage-allocates all four (or 2n) pipelet programs. *)

val spec : t -> Spec.t
val ports : t -> Port.t
val pipelet : t -> Pipelet.id -> Pipelet.t

type exec_mode =
  | Fast  (** precompiled controls + indexed table lookups (default) *)
  | Reference  (** interpret the statement trees — the oracle *)

val exec_mode : t -> exec_mode
val set_exec_mode : t -> exec_mode -> unit
(** Switch how {!inject} executes pipelet controls. Both modes produce
    identical verdicts, counters and trace events; [Reference] exists
    for equivalence tests and as the benchmark baseline. *)

val pipelets : t -> Pipelet.t list
(** All loaded pipelets, ingress then egress (for telemetry walks). *)

val find_table : t -> string -> P4ir.Table.t option
(** The live handle of the first table with this (composed) name across
    all pipelet programs — how chip-bound control-plane handlers locate
    the table they install into on a {!replicate}d chip. *)

val find_register : t -> string -> P4ir.Register.t option
(** Same resolution for registers — how control-plane ops address
    stateful NF state by (composed) name. *)

val replicate : t -> (t, string) result
(** A share-nothing clone: every pipelet program's mutable state
    (installed table entries, register cells) is deep-copied and
    re-loaded, so the replica and the original can process packets from
    different domains concurrently without touching a shared cell. The
    exec mode carries over; telemetry starts [Off] (attach a per-domain
    observer explicitly). *)

val merge_stats : into:t -> t -> unit
(** [merge_stats ~into replica] adds the replica's per-table hit/miss
    and per-entry tallies into [into]'s live stats (tables paired by
    pipelet position and name; no-op for tables without stats enabled).
    Used after a parallel run so one telemetry snapshot covers all
    domains. *)

val telemetry : t -> Telemetry.Level.t

val set_telemetry :
  ?label_counters:(string -> int ref) -> t -> Telemetry.Level.t -> unit
(** Select the instrumentation level. [Counters] and above enable table
    hit/miss + per-entry stats and recompile controls with per-NF label
    counters (from [label_counters]); [Journeys] additionally records a
    per-pipelet-pass mark in each {!result}. [Off] disables everything
    and recompiles the uninstrumented fast path — Off costs nothing per
    packet. Observable packet behavior is identical at every level.

    This is chip-internal plumbing: application code configures
    telemetry through {!Runtime.set_telemetry} (or the runtime's engine
    config), which owns the registry the label counters land in. *)

val set_sfc_probe : t -> (P4ir.Phv.t -> Telemetry.Journey.hop_meta) -> unit
(** Install the per-hop PHV reader used in [Journeys] mode. The default
    probe returns {!Telemetry.Journey.no_meta}; the runtime installs one
    that decodes the SFC header (the chip itself cannot: that header is
    defined a layer up). *)

type verdict =
  | Emitted of { port : int; frame : Bytes.t }
  | Dropped
  | To_cpu of Bytes.t

(** One per-pipelet-pass telemetry stamp, recorded in [Journeys] mode:
    where the pass ends in [trace], the cumulative modelled latency
    and recirculation/resubmission depth when it ended, and the probe's
    read of the PHV. Consecutive marks segment [trace] into per-hop
    spans and their latency deltas are the per-hop latencies — the
    INT-style record each hop leaves in the packet's metadata. *)
type mark = {
  m_pipelet : Pipelet.id;
  m_trace_end : int;  (** trace length when this pass ended *)
  m_latency_ns : float;  (** cumulative modelled latency at that point *)
  m_recircs : int;  (** recirculations completed before this pass *)
  m_resubmits : int;  (** resubmissions completed before this pass *)
  m_meta : Telemetry.Journey.hop_meta;
}

type result = {
  verdict : verdict;
  resubmits : int;
  recircs : int;
  visits : Pipelet.id list;  (** pipelets traversed, in order *)
  latency_ns : float;
  trace : P4ir.Control.trace_event list;  (** oldest first *)
  mirrored : (int * Bytes.t) list;
      (** copies sent to the mirror port, oldest first *)
  marks : mark list;
      (** [Journeys] mode only (else []): one mark per pipelet pass, in
          order — enough to segment [trace] into per-hop spans *)
}

val inject : t -> in_port:int -> Bytes.t -> (result, string) Stdlib.result
(** Process one frame arriving on an external Ethernet port. Errors:
    invalid or loopback input port, parser rejection, unset or invalid
    egress port, or exceeding the pass limit (a routing loop). *)

val inject_cpu : t -> pipeline:int -> Bytes.t -> (result, string) Stdlib.result
(** Reinject a frame from the control plane into a pipeline's ingress
    (the runtime uses this after handling a to-CPU packet). *)

val pass_limit : int
