(** A loaded pipelet: one ingress or egress pipe with its program and a
    concrete MAU stage allocation that respects per-stage capacities. *)

type kind = Ingress | Egress

type id = { pipeline : int; kind : kind }

val pp_id : Format.formatter -> id -> unit
val equal_id : id -> id -> bool
val compare_id : id -> id -> int
val all_ids : Spec.t -> id list
(** Ingress 0, egress 0, ingress 1, egress 1, ... *)

type t

val load : Spec.t -> id -> P4ir.Program.t -> (t, string) result
(** Validates the program and packs its tables into stages: each table is
    placed at the earliest stage satisfying its dependency lower bound
    (match/action dependencies need a later stage than their producer)
    with enough residual table IDs / SRAM / TCAM / crossbar / VLIW / hash
    bits. Fails when the program does not fit. *)

val allocate_stages :
  Spec.t -> P4ir.Program.t -> ((string * int) list, string) result
(** The packing pass alone (exposed for resource reports and tests). *)

val id : t -> id
val program : t -> P4ir.Program.t
val tables : t -> P4ir.Table.t list
(** The loaded program's (live) table handles — what telemetry walks to
    enable stats and read hit/miss tallies. *)

val stage_of_table : t -> string -> int option
val stage_allocation : t -> (string * int) list
(** Every (table, stage) pair — the pipelet's stage occupancy. *)

val stages_used : t -> int
(** Highest occupied stage + 1 (0 when the program has no tables). *)

val set_label_counters : t -> (string -> int ref) option -> unit
(** Recompile the control with (or without) per-NF label counters —
    both {!process} and {!process_reference} honor the setting. The
    resolver is consulted once per label at recompile time for the fast
    path. *)

val process :
  ?trace:P4ir.Control.trace_event list ref -> t -> P4ir.Phv.t -> unit
(** Run the control program precompiled at {!load} time (the fast
    path). *)

val process_reference :
  ?trace:P4ir.Control.trace_event list ref -> t -> P4ir.Phv.t -> unit
(** Interpret the control statement tree — the oracle {!process} is
    equivalence-tested against. *)

val parse :
  t -> Bytes.t -> (P4ir.Phv.t * Bytes.t, string) result
(** Run the pipelet's parser over a frame; returns the PHV (with standard
    metadata attached) and the unparsed payload. Uses the parse graph
    compiled at {!load} time and a copied template PHV. *)

val parse_reference :
  t -> Bytes.t -> (P4ir.Phv.t * Bytes.t, string) result
(** {!parse} through the interpretive parse-graph walk — the oracle
    counterpart, used by the chip's reference execution mode. *)

val deparse : t -> P4ir.Phv.t -> payload:Bytes.t -> Bytes.t
(** Generic serialization: walks the deparse order resolving each header
    by name. The reference-mode path. *)

val deparse_fast : t -> P4ir.Phv.t -> payload:Bytes.t -> Bytes.t
(** [deparse] over an emit plan precomputed at {!load} (cached-slot
    header accessors, per-header sizes); byte-identical output. *)
