type kind = Ingress | Egress
type id = { pipeline : int; kind : kind }

let pp_id ppf id =
  Format.fprintf ppf "%s %d"
    (match id.kind with Ingress -> "ingress" | Egress -> "egress")
    id.pipeline

let equal_id a b = a.pipeline = b.pipeline && a.kind = b.kind

let compare_id a b =
  let c = compare a.pipeline b.pipeline in
  if c <> 0 then c
  else compare (a.kind = Egress) (b.kind = Egress)

let all_ids spec =
  List.concat_map
    (fun pipe -> [ { pipeline = pipe; kind = Ingress }; { pipeline = pipe; kind = Egress } ])
    (List.init spec.Spec.n_pipelines Fun.id)

type t = {
  id : id;
  program : P4ir.Program.t;
  (* Mutable so telemetry can swap in a control recompiled with label
     counters (and back): instrumentation is selected at compile time,
     not branched per packet. *)
  mutable compiled : P4ir.Control.compiled;
  mutable label_counters : (string -> int ref) option;
  pcompiled : P4ir.Parser_graph.compiled;
  (* Pristine PHV with every parser declaration plus standard metadata
     attached; [parse] copies it instead of re-declaring per packet. *)
  template : P4ir.Phv.t;
  (* Cached-slot instance accessor + byte size + self-checksum byte
     offset (-1 = none) per deparse-order header, so [deparse_fast]
     walks an array instead of hashing names. *)
  demit : ((P4ir.Phv.t -> P4ir.Hdr.inst) * int * int) array;
  stage_alloc : (string * int) list;
}

(* Residual capacity of one MAU stage during packing. *)
type residual = {
  mutable table_ids : int;
  mutable srams : int;
  mutable tcams : int;
  mutable crossbar_bytes : int;
  mutable vliws : int;
  mutable hash_bits : int;
}

let residual_of_caps (c : P4ir.Resources.stage_caps) =
  {
    table_ids = c.P4ir.Resources.cap_table_ids;
    srams = c.P4ir.Resources.cap_srams;
    tcams = c.P4ir.Resources.cap_tcams;
    crossbar_bytes = c.P4ir.Resources.cap_crossbar_bytes;
    vliws = c.P4ir.Resources.cap_vliws;
    hash_bits = c.P4ir.Resources.cap_hash_bits;
  }

let demand_fits (r : residual) (d : P4ir.Resources.t) =
  r.table_ids >= d.P4ir.Resources.table_ids
  && r.srams >= d.P4ir.Resources.srams
  && r.tcams >= d.P4ir.Resources.tcams
  && r.crossbar_bytes >= d.P4ir.Resources.crossbar_bytes
  && r.vliws >= d.P4ir.Resources.vliws
  && r.hash_bits >= d.P4ir.Resources.hash_bits

let consume (r : residual) (d : P4ir.Resources.t) =
  r.table_ids <- r.table_ids - d.P4ir.Resources.table_ids;
  r.srams <- r.srams - d.P4ir.Resources.srams;
  r.tcams <- r.tcams - d.P4ir.Resources.tcams;
  r.crossbar_bytes <- r.crossbar_bytes - d.P4ir.Resources.crossbar_bytes;
  r.vliws <- r.vliws - d.P4ir.Resources.vliws;
  r.hash_bits <- r.hash_bits - d.P4ir.Resources.hash_bits

let allocate_stages spec program =
  let env = P4ir.Program.table_env program in
  let nodes = P4ir.Deps.nodes_of_control env program.P4ir.Program.control in
  let n_stages = spec.Spec.stages_per_pipelet in
  let residuals =
    Array.init n_stages (fun _ -> residual_of_caps spec.Spec.stage_caps)
  in
  let placed = Hashtbl.create 16 in
  let result = ref [] in
  let place node =
    let lower_bound =
      List.fold_left
        (fun acc (prev, prev_stage) ->
          match
            List.find_opt
              (fun (n : P4ir.Deps.node) -> String.equal n.P4ir.Deps.table prev)
              nodes
          with
          | None -> acc
          | Some prev_node -> (
              match P4ir.Deps.dep_between prev_node node with
              | Some k -> max acc (prev_stage + P4ir.Deps.stage_gap k)
              | None -> acc))
        0 !result
    in
    let table = Option.get (env node.P4ir.Deps.table) in
    let demand = P4ir.Resources.of_table table in
    let rec try_stage s =
      if s >= n_stages then
        Error
          (Printf.sprintf
             "pipelet: table %s does not fit (needs stage >= %d of %d)"
             node.P4ir.Deps.table lower_bound n_stages)
      else if demand_fits residuals.(s) demand then begin
        consume residuals.(s) demand;
        Hashtbl.replace placed node.P4ir.Deps.table s;
        result := !result @ [ (node.P4ir.Deps.table, s) ];
        Ok ()
      end
      else try_stage (s + 1)
    in
    try_stage lower_bound
  in
  let rec loop = function
    | [] -> Ok !result
    | node :: rest -> (
        if Hashtbl.mem placed node.P4ir.Deps.table then loop rest
        else
          match place node with Ok () -> loop rest | Error e -> Error e)
  in
  loop nodes

let load spec id program =
  match P4ir.Program.validate program with
  | Error e -> Error e
  | Ok () -> (
      (* Whole-pipelet gateway budget check; gateways live beside stages. *)
      let gw = P4ir.Control.gateway_count program.P4ir.Program.control in
      let gw_cap =
        spec.Spec.stages_per_pipelet
        * spec.Spec.stage_caps.P4ir.Resources.cap_gateways
      in
      if gw > gw_cap then
        Error
          (Printf.sprintf "pipelet %s: %d gateways exceed capacity %d"
             (Format.asprintf "%a" pp_id id) gw gw_cap)
      else
        match allocate_stages spec program with
        | Error e -> Error e
        | Ok stage_alloc ->
            let template = P4ir.Phv.create [] in
            List.iter
              (fun d -> P4ir.Phv.add_decl template d)
              program.P4ir.Program.parser.P4ir.Parser_graph.decls;
            Stdmeta.attach template;
            let demit =
              Array.of_list
                (List.filter_map
                   (fun name ->
                     match
                       List.find_opt
                         (fun (d : P4ir.Hdr.decl) ->
                           String.equal d.P4ir.Hdr.name name)
                         program.P4ir.Program.parser.P4ir.Parser_graph.decls
                     with
                     | Some d ->
                         Some
                           ( P4ir.Phv.fast_inst name,
                             P4ir.Hdr.byte_size d,
                             Option.value ~default:(-1)
                               (P4ir.Hdr.self_checksum_byte d) )
                     | None ->
                         (* Not a parsed header (e.g. metadata): resolve
                            the size per packet on the generic path. *)
                         None)
                   program.P4ir.Program.deparse_order)
            in
            (* The compiled emit plan only stands in for the generic walk
               when it covers the whole deparse order. *)
            let demit =
              if
                Array.length demit
                = List.length program.P4ir.Program.deparse_order
              then demit
              else [||]
            in
            Ok
              {
                id;
                program;
                compiled = P4ir.Program.compile_control program;
                label_counters = None;
                pcompiled =
                  P4ir.Parser_graph.compile program.P4ir.Program.parser;
                template;
                demit;
                stage_alloc;
              })

let id t = t.id
let program t = t.program
let tables t = t.program.P4ir.Program.tables
let stage_of_table t name = List.assoc_opt name t.stage_alloc
let stage_allocation t = t.stage_alloc

let stages_used t =
  List.fold_left (fun acc (_, s) -> max acc (s + 1)) 0 t.stage_alloc

let set_label_counters t counters =
  t.label_counters <- counters;
  t.compiled <- P4ir.Program.compile_control ?label_counters:counters t.program

let process ?trace t phv = P4ir.Control.run_compiled ?trace t.compiled phv

let process_reference ?trace t phv =
  P4ir.Program.exec_control ?trace ?label_counters:t.label_counters t.program
    phv

let parse t frame =
  let phv = P4ir.Phv.copy t.template in
  match P4ir.Parser_graph.run_compiled t.pcompiled frame phv with
  | Error e -> Error e
  | Ok consumed ->
      let payload =
        Bytes.sub frame consumed (Bytes.length frame - consumed)
      in
      Ok (phv, payload)

let parse_reference t frame =
  let phv = P4ir.Phv.create [] in
  match P4ir.Parser_graph.parse t.program.P4ir.Program.parser frame phv with
  | Error e -> Error e
  | Ok consumed ->
      Stdmeta.attach phv;
      let payload =
        Bytes.sub frame consumed (Bytes.length frame - consumed)
      in
      Ok (phv, payload)

let deparse t phv ~payload =
  P4ir.Parser_graph.deparse
    ~order:t.program.P4ir.Program.deparse_order phv ~payload

(* Fast-mode serialization over the precomputed emit plan: two array
   walks (size, then emit) with no name hashing. Falls back to the
   generic walk when no complete plan was precomputed at load. *)
let deparse_fast t phv ~payload =
  let n = Array.length t.demit in
  if n = 0 then deparse t phv ~payload
  else begin
    let total = ref 0 in
    for k = 0 to n - 1 do
      let get, size, _ = t.demit.(k) in
      if P4ir.Hdr.is_valid (get phv) then total := !total + size
    done;
    let plen = Bytes.length payload in
    let out = Bytes.make (!total + plen) '\000' in
    let off = ref 0 in
    for k = 0 to n - 1 do
      let get, size, csum_byte = t.demit.(k) in
      let i = get phv in
      if P4ir.Hdr.is_valid i then begin
        P4ir.Hdr.emit i out ~bit_off:(8 * !off);
        if csum_byte >= 0 then
          P4ir.Parser_graph.fix_checksum out ~off:!off ~csum_byte ~size;
        off := !off + size
      end
    done;
    Bytes.blit payload 0 out !off plen;
    out
  end
