type config = {
  spec : Spec.t;
  ingress_programs : P4ir.Program.t array;
  egress_programs : P4ir.Program.t array;
  ports : Port.t;
  mirror_port : int option;
}

type exec_mode = Fast | Reference

type t = {
  spec : Spec.t;
  ingress : Pipelet.t array;
  egress : Pipelet.t array;
  ports : Port.t;
  mirror_port : int option;
  mutable mode : exec_mode;
  mutable telem : Telemetry.Level.t;
  (* Reads per-hop metadata (SFC position, valid headers) off the PHV
     after each pipelet pass. Injected by the runtime layer: the chip
     cannot depend on the SFC header definition, which lives above it. *)
  mutable probe : P4ir.Phv.t -> Telemetry.Journey.hop_meta;
}

let load (config : config) =
  let n = config.spec.Spec.n_pipelines in
  if
    Array.length config.ingress_programs <> n
    || Array.length config.egress_programs <> n
  then Error (Printf.sprintf "Chip.load: expected %d programs per side" n)
  else
    let ( let* ) = Result.bind in
    let load_side kind programs =
      Array.to_list programs
      |> List.mapi (fun pipeline prog ->
             Pipelet.load config.spec { Pipelet.pipeline; kind } prog)
      |> List.fold_left
           (fun acc r ->
             let* l = acc in
             let* p = r in
             Ok (p :: l))
           (Ok [])
      |> Result.map (fun l -> Array.of_list (List.rev l))
    in
    let* ingress = load_side Pipelet.Ingress config.ingress_programs in
    let* egress = load_side Pipelet.Egress config.egress_programs in
    (match config.mirror_port with
    | Some p when not (Spec.valid_port config.spec p) ->
        Error (Printf.sprintf "Chip.load: invalid mirror port %d" p)
    | Some _ | None -> Ok ())
    |> Result.map (fun () ->
           {
             spec = config.spec;
             ingress;
             egress;
             ports = config.ports;
             mirror_port = config.mirror_port;
             mode = Fast;
             telem = Telemetry.Level.Off;
             probe = (fun _ -> Telemetry.Journey.no_meta);
           })

let spec t = t.spec
let ports t = t.ports
let exec_mode t = t.mode
let set_exec_mode t mode = t.mode <- mode
let pipelets t = Array.to_list t.ingress @ Array.to_list t.egress
let telemetry t = t.telem
let set_sfc_probe t probe = t.probe <- probe

let find_table t name =
  List.find_map
    (fun pl -> P4ir.Program.find_table (Pipelet.program pl) name)
    (pipelets t)

let find_register t name =
  List.find_map
    (fun pl -> P4ir.Program.find_register (Pipelet.program pl) name)
    (pipelets t)

(* A share-nothing clone for per-domain parallel execution: every
   pipelet program is deep-copied (installed table entries, register
   cells) and re-loaded, which re-allocates stages and recompiles
   controls/parsers against the copied state. Telemetry starts Off —
   the runtime attaches a per-domain observer if it wants one — and the
   exec mode carries over so a replica runs the same path as its
   original. *)
let replicate t =
  let side pls = Array.map (fun pl -> P4ir.Program.copy (Pipelet.program pl)) pls in
  load
    {
      spec = t.spec;
      ingress_programs = side t.ingress;
      egress_programs = side t.egress;
      ports = Port.copy t.ports;
      mirror_port = t.mirror_port;
    }
  |> Result.map (fun r ->
         r.mode <- t.mode;
         r)

(* Fold a replica's table tallies back into this chip's: pipelet arrays
   have identical shapes by construction, tables pair by name. The
   tallies land in the live [Table.stats] records, so a later
   [Observe.sync_tables] naturally sees the merged counts. *)
let merge_stats ~into src =
  let each a b =
    let tbls_b = Pipelet.tables b in
    List.iter
      (fun ta ->
        match
          List.find_opt
            (fun tb -> String.equal (P4ir.Table.name tb) (P4ir.Table.name ta))
            tbls_b
        with
        | Some tb -> P4ir.Table.merge_stats_from ta ~src:tb
        | None -> ())
      (Pipelet.tables a)
  in
  Array.iter2 each into.ingress src.ingress;
  Array.iter2 each into.egress src.egress

let set_telemetry ?label_counters t level =
  t.telem <- level;
  let on = Telemetry.Level.counters_on level in
  let counters = if on then label_counters else None in
  let each pl =
    List.iter (fun tbl -> P4ir.Table.set_stats_enabled tbl on) (Pipelet.tables pl);
    Pipelet.set_label_counters pl counters
  in
  Array.iter each t.ingress;
  Array.iter each t.egress

let run_pipelet t pl ~trace phv =
  match t.mode with
  | Fast -> Pipelet.process ~trace pl phv
  | Reference -> Pipelet.process_reference ~trace pl phv

let parse_frame t pl frame =
  match t.mode with
  | Fast -> Pipelet.parse pl frame
  | Reference -> Pipelet.parse_reference pl frame

let deparse_frame t pl phv ~payload =
  match t.mode with
  | Fast -> Pipelet.deparse_fast pl phv ~payload
  | Reference -> Pipelet.deparse pl phv ~payload

let pipelet t (id : Pipelet.id) =
  match id.Pipelet.kind with
  | Pipelet.Ingress -> t.ingress.(id.Pipelet.pipeline)
  | Pipelet.Egress -> t.egress.(id.Pipelet.pipeline)

type verdict =
  | Emitted of { port : int; frame : Bytes.t }
  | Dropped
  | To_cpu of Bytes.t

type mark = {
  m_pipelet : Pipelet.id;
  m_trace_end : int;
  m_latency_ns : float;
  m_recircs : int;
  m_resubmits : int;
  m_meta : Telemetry.Journey.hop_meta;
}

type result = {
  verdict : verdict;
  resubmits : int;
  recircs : int;
  visits : Pipelet.id list;
  latency_ns : float;
  trace : P4ir.Control.trace_event list;
  mirrored : (int * Bytes.t) list;
  marks : mark list;
}

let pass_limit = 64

type walk_state = {
  mutable resubmits : int;
  mutable recircs : int;
  mutable visits : Pipelet.id list;  (* reversed *)
  mutable passes : int;
  mutable latency : float;
  trace : P4ir.Control.trace_event list ref;
  mutable mirrored : (int * Bytes.t) list;  (* reversed *)
  mutable marks : mark list;
      (* reversed; one per pipelet pass in Journeys mode *)
}

(* Standard-metadata accessors compiled once for the whole chip: every
   PHV layout shares the same header names, so these cache slots across
   pipelet templates instead of hashing field names per pass. *)
let get_drop = P4ir.Phv.fast_get_int Stdmeta.drop_flag
let get_to_cpu = P4ir.Phv.fast_get_int Stdmeta.to_cpu_flag
let get_resubmit = P4ir.Phv.fast_get_int Stdmeta.resubmit_flag
let get_mirror = P4ir.Phv.fast_get_int Stdmeta.mirror_flag
let get_egress_spec = P4ir.Phv.fast_get_int Stdmeta.egress_spec
let set_ingress_port = P4ir.Phv.fast_set_int Stdmeta.ingress_port
let set_egress_port = P4ir.Phv.fast_set_int Stdmeta.egress_port
let set_resubmit = P4ir.Phv.fast_set_int Stdmeta.resubmit_flag

let finish st verdict =
  Ok
    {
      verdict;
      resubmits = st.resubmits;
      recircs = st.recircs;
      visits = List.rev st.visits;
      latency_ns = st.latency;
      trace = List.rev !(st.trace);
      mirrored = List.rev st.mirrored;
      marks = List.rev st.marks;
    }

(* In Journeys mode, remember where this pipelet pass ends in the
   trace, the cumulative modelled latency and recirc/resubmit depth at
   that point, and what the PHV looked like — enough to segment the
   flat trace into per-hop spans and attribute per-hop latency (the
   delta between consecutive marks) after the fact. *)
let mark_pass t st pl phv =
  if Telemetry.Level.journeys_on t.telem then
    st.marks <-
      {
        m_pipelet = Pipelet.id pl;
        m_trace_end = List.length !(st.trace);
        m_latency_ns = st.latency;
        m_recircs = st.recircs;
        m_resubmits = st.resubmits;
        m_meta = t.probe phv;
      }
      :: st.marks

let rec ingress_pass t st ~pipeline ~entry_port frame =
  if st.passes >= pass_limit then
    Error
      (Printf.sprintf "Chip.inject: pass limit %d exceeded (routing loop?)"
         pass_limit)
  else begin
    st.passes <- st.passes + 1;
    let pl = t.ingress.(pipeline) in
    st.visits <- Pipelet.id pl :: st.visits;
    st.latency <- st.latency +. Latency.pipe_pass_ns t.spec;
    match parse_frame t pl frame with
    | Error e -> Error e
    | Ok (phv, payload) ->
        set_ingress_port phv entry_port;
        run_pipelet t pl ~trace:st.trace phv;
        mark_pass t st pl phv;
        (* Drop and punt-to-CPU decisions win over resubmission: an NF
           that punts mid-chain must not be replayed by the branching
           table's pending resubmit. *)
        if get_drop phv = 1 then finish st Dropped
        else if get_to_cpu phv = 1 then
          finish st (To_cpu (deparse_frame t pl phv ~payload))
        else if get_resubmit phv = 1 then begin
          (* Resubmission re-enters the same ingress parser with the
             ingress-deparsed packet. *)
          st.resubmits <- st.resubmits + 1;
          set_resubmit phv 0;
          let frame' = deparse_frame t pl phv ~payload in
          ingress_pass t st ~pipeline ~entry_port frame'
        end
        else
          let out_port = get_egress_spec phv in
          if not (Spec.valid_port t.spec out_port) then
            Error
              (Printf.sprintf
                 "Chip.inject: invalid egress port %d after ingress %d"
                 out_port pipeline)
          else if out_port = Spec.cpu_port then
            finish st (To_cpu (deparse_frame t pl phv ~payload))
          else
            let frame' = deparse_frame t pl phv ~payload in
            let egress_pipe = Option.get (Spec.pipeline_of_any_port t.spec out_port) in
            st.latency <- st.latency +. t.spec.Spec.lat.Spec.tm_ns;
            egress_pass t st ~pipeline:egress_pipe ~out_port frame'
  end

and egress_pass t st ~pipeline ~out_port frame =
  if st.passes >= pass_limit then
    Error
      (Printf.sprintf "Chip.inject: pass limit %d exceeded (routing loop?)"
         pass_limit)
  else begin
    st.passes <- st.passes + 1;
    let pl = t.egress.(pipeline) in
    st.visits <- Pipelet.id pl :: st.visits;
    st.latency <- st.latency +. Latency.pipe_pass_ns t.spec;
    match parse_frame t pl frame with
    | Error e -> Error e
    | Ok (phv, payload) ->
        set_egress_port phv out_port;
        run_pipelet t pl ~trace:st.trace phv;
        mark_pass t st pl phv;
        if get_drop phv = 1 then finish st Dropped
        else if get_to_cpu phv = 1 then
          finish st (To_cpu (deparse_frame t pl phv ~payload))
        else
          let frame' = deparse_frame t pl phv ~payload in
          (* Mirroring: a copy of the departing frame goes to the
             analysis port; the original continues unchanged. *)
          (match (t.mirror_port, get_mirror phv = 1) with
          | Some mp, true -> st.mirrored <- (mp, Bytes.copy frame') :: st.mirrored
          | _ -> ());
          let loops_back =
            Spec.is_recirc_port out_port || Port.is_loopback t.ports out_port
          in
          if loops_back then begin
            st.recircs <- st.recircs + 1;
            st.latency <- st.latency +. Latency.recirc_on_chip_ns t.spec;
            ingress_pass t st ~pipeline ~entry_port:out_port frame'
          end
          else finish st (Emitted { port = out_port; frame = frame' })
  end

let fresh_state spec =
  ignore spec;
  {
    resubmits = 0;
    recircs = 0;
    visits = [];
    passes = 0;
    latency = 0.0;
    trace = ref [];
    mirrored = [];
    marks = [];
  }

let inject t ~in_port frame =
  if in_port < 0 || in_port >= Spec.n_eth_ports t.spec then
    Error (Printf.sprintf "Chip.inject: %d is not an Ethernet port" in_port)
  else if Port.is_loopback t.ports in_port then
    Error
      (Printf.sprintf "Chip.inject: port %d is in loopback mode and takes no external traffic"
         in_port)
  else begin
    let st = fresh_state t.spec in
    (* MAC/serdes in and out of the chip. *)
    st.latency <- 2.0 *. t.spec.Spec.lat.Spec.mac_serdes_ns;
    ingress_pass t st
      ~pipeline:(Spec.port_pipeline t.spec in_port)
      ~entry_port:in_port frame
  end

let inject_cpu t ~pipeline frame =
  if pipeline < 0 || pipeline >= t.spec.Spec.n_pipelines then
    Error (Printf.sprintf "Chip.inject_cpu: bad pipeline %d" pipeline)
  else begin
    let st = fresh_state t.spec in
    st.latency <- t.spec.Spec.lat.Spec.mac_serdes_ns;
    ingress_pass t st ~pipeline ~entry_port:Spec.cpu_port frame
  end
