examples/edge_cloud_sfc.ml: Asic Branching Chain Compiler Dejavu_core Filename Format Hashtbl List Model Netpkt Nflib Option P4ir Ptf Random Runtime String Traversal
