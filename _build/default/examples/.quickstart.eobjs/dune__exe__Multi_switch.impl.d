examples/multi_switch.ml: Asic Chain Cluster Dejavu_core Format Layout List P4ir Printf String
