examples/custom_nf.ml: Action Asic Bitval Chain Compiler Dejavu_core Expr Format List Net_hdrs Netpkt Nf Nflib P4ir Placement Printf Ptf Runtime Sfc_header Table
