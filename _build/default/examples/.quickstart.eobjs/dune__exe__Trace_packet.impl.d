examples/trace_packet.ml: Array Asic Compiler Dejavu_core Format List Netpkt Nflib P4ir Printf Result String Sys
