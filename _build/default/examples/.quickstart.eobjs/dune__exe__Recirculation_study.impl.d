examples/recirculation_study.ml: Array Asic Dejavu_core Format List Model
