examples/quickstart.ml: Compiler Dejavu_core Format Netpkt Nflib Option Ptf Runtime
