examples/quickstart.mli:
