examples/recirculation_study.mli:
