examples/edge_cloud_sfc.mli:
