examples/placement_study.ml: Asic Chain Dejavu_core Format Layout List P4ir Placement Sys Traversal
