examples/trace_packet.mli:
