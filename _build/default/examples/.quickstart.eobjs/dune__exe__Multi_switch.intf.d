examples/multi_switch.mli:
