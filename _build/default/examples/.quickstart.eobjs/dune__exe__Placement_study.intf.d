examples/placement_study.mli:
