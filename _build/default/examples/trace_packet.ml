(* Trace every table application and gateway decision a packet sees on
   its way through the compiled service chain — the tool you want when a
   chain misbehaves.

   Run with: dune exec examples/trace_packet.exe -- [dst-ip] *)

open Dejavu_core

let ip = Netpkt.Ip4.of_string_exn
let mac = Netpkt.Mac.of_string_exn

let () =
  let dst =
    if Array.length Sys.argv > 1 then ip Sys.argv.(1)
    else Nflib.Catalog.tenant1_vip
  in
  let input = Nflib.Catalog.edge_cloud_input () in
  let compiled = Result.get_ok (Compiler.compile input) in
  let flow =
    {
      Netpkt.Flow.src = ip "203.0.113.9";
      dst;
      proto = Netpkt.Ipv4.proto_tcp;
      src_port = 5555;
      dst_port = 80;
    }
  in
  let pkt =
    Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:11:22:33:44:66")
      ~dst_mac:(mac "02:00:00:00:00:fe") flow
  in
  Format.printf "tracing %a@.@." Netpkt.Flow.pp_five_tuple flow;
  let frame = Netpkt.Pkt.encode pkt in
  match Asic.Chip.inject compiled.Compiler.chip ~in_port:0 frame with
  | Error e -> Format.printf "error: %s@." e
  | Ok r ->
      List.iter
        (fun ev ->
          match ev with
          | P4ir.Control.T_table (t, a, hit) ->
              Format.printf "  table %-28s -> %-14s %s@." t a
                (if hit then "(hit)" else "(miss)")
          | P4ir.Control.T_gateway (c, v) -> Format.printf "  if %s -> %b@." c v
          | P4ir.Control.T_enter l -> Format.printf "  >> NF %s@." l)
        r.Asic.Chip.trace;
      Format.printf "@.pipelets visited: %s@."
        (String.concat " -> "
           (List.map
              (fun id -> Format.asprintf "%a" Asic.Pipelet.pp_id id)
              r.Asic.Chip.visits));
      Format.printf "verdict: %s  recircs=%d resubmits=%d latency=%.0f ns@."
        (match r.Asic.Chip.verdict with
        | Asic.Chip.Emitted { port; _ } -> Printf.sprintf "emitted on port %d" port
        | Asic.Chip.Dropped -> "dropped"
        | Asic.Chip.To_cpu _ -> "sent to the control plane")
        r.Asic.Chip.recircs r.Asic.Chip.resubmits r.Asic.Chip.latency_ns
