(* Recirculation deep-dive (§4): the feedback-queue fixed point, the
   contention simulator, a buffer-size sensitivity sweep, and the
   throughput/latency budget of a chain as it gains recirculations.

   Run with: dune exec examples/recirculation_study.exe *)

open Dejavu_core

let spec = Asic.Spec.wedge_100b

let () =
  Format.printf "== The feedback queue (Fig. 7) ==@.@.";
  Format.printf
    "One port pair, port B in loopback. Packets needing k passes through@.";
  Format.printf "EB contend with their own previous rounds:@.@.";
  List.iter
    (fun k ->
      let rates = Model.feedback_arrival_rates k in
      let total = Array.fold_left ( +. ) 0.0 rates in
      let keep = if total > 1.0 then 1.0 /. total else 1.0 in
      Format.printf "  k=%d: arrivals per pass [" k;
      Array.iter (fun a -> Format.printf " %.3f" a) rates;
      Format.printf " ]  delivered %.3fT@." (Model.feedback_throughput k);
      ignore keep)
    [ 1; 2; 3; 4 ];

  Format.printf "@.== Simulator vs analysis (Fig. 8a) ==@.@.";
  Format.printf "%8s %12s %12s %10s@." "recircs" "sim" "model" "delta";
  List.iter
    (fun (k, stats) ->
      let sim = stats.Asic.Flowsim.throughput_fraction in
      let model = Model.feedback_throughput k in
      Format.printf "%8d %11.1f%% %11.1f%% %9.1f%%@." k (100.0 *. sim)
        (100.0 *. model)
        (100.0 *. abs_float (sim -. model)))
    (Asic.Flowsim.sweep [ 0; 1; 2; 3; 4; 5 ]);

  Format.printf "@.== Buffer-size sensitivity (k=2) ==@.@.";
  Format.printf "%12s %12s@." "buffer pkts" "delivered";
  List.iter
    (fun buffer_pkts ->
      let cfg = { (Asic.Flowsim.default ~n_recircs:2) with Asic.Flowsim.buffer_pkts } in
      let s = Asic.Flowsim.run cfg in
      Format.printf "%12d %11.1f%%@." buffer_pkts
        (100.0 *. s.Asic.Flowsim.throughput_fraction))
    [ 25; 50; 100; 200; 400; 800 ];
  Format.printf
    "(the fixed point is buffer-insensitive once the queue can absorb a slot)@.";

  Format.printf "@.== Latency budget per recirculation (Fig. 8b) ==@.@.";
  let p2p = Asic.Latency.port_to_port_ns spec in
  Format.printf "%8s %14s %12s@." "recircs" "latency (ns)" "vs direct";
  List.iter
    (fun k ->
      let extra =
        float_of_int k
        *. (Asic.Latency.recirc_on_chip_ns spec
           +. (2.0 *. Asic.Latency.pipe_pass_ns spec)
           +. spec.Asic.Spec.lat.Asic.Spec.tm_ns)
      in
      Format.printf "%8d %14.0f %11.2fx@." k (p2p +. extra) ((p2p +. extra) /. p2p))
    [ 0; 1; 2; 3 ];

  Format.printf "@.== Takeaways (paper Sec. 4) ==@.";
  Format.printf
    "1. recirculation hits throughput super-linearly: plan placements to \
     minimize it;@.";
  Format.printf
    "2. the ASIC adds no inefficiency beyond the model: operators can \
     calculate capacity;@.";
  Format.printf
    "3. recirculation latency (%.0f ns) is small against the %.0f ns \
     port-to-port hop, and on-chip is ~2x faster than off-chip (%.0f ns).@."
    (Asic.Latency.recirc_on_chip_ns spec)
    p2p
    (Asic.Latency.recirc_off_chip_ns spec ~cable_m:1.0)
