(* §7's "towards clusters of switch data planes": when a chain's NFs
   exceed one ASIC's MAU stages, chain switches back-to-back — the same
   aggregate bandwidth, many more stages, and cables instead of
   recirculation storms.

   Run with: dune exec examples/multi_switch.exe *)

open Dejavu_core

let spec = Asic.Spec.wedge_100b

let () =
  Format.printf "== Clusters of switch data planes (Sec. 7) ==@.@.";
  (* A deep security chain: 12 NFs of 3 stages each — far beyond one
     Tofino's 4x12 stages once framework overhead is counted. *)
  let chain = List.init 12 (fun i -> Printf.sprintf "nf%02d" i) in
  let chains =
    [ Chain.make ~path_id:1 ~name:"deep" ~nfs:chain ~exit_port:1 () ]
  in
  let resources_of _ = { P4ir.Resources.zero with P4ir.Resources.stages = 3 } in

  Format.printf "chain: %s@.@." (String.concat " -> " chain);
  List.iter
    (fun n ->
      let c = Cluster.make ~spec ~n_switches:n () in
      Format.printf "--- %d switch%s ---@." n (if n = 1 then "" else "es");
      match
        Cluster.place c ~resources_of ~chains ~exit_switch:(n - 1)
          ~exit_pipeline:0 ~pinned:[]
          (Cluster.Anneal { iterations = 2000; seed = 42 })
      with
      | Error e -> Format.printf "  %s@.@." e
      | Ok (layout, cost) -> (
          Format.printf "  placement (cost %.2f):@." cost;
          List.iter
            (fun ((id : Asic.Pipelet.id), pl) ->
              Format.printf "    sw%d %s %d: %a@."
                (Cluster.switch_of_pipeline c id.Asic.Pipelet.pipeline)
                (match id.Asic.Pipelet.kind with
                | Asic.Pipelet.Ingress -> "ingress"
                | Asic.Pipelet.Egress -> "egress")
                (id.Asic.Pipelet.pipeline mod spec.Asic.Spec.n_pipelines)
                Layout.pp_pipelet_layout pl)
            layout;
          match
            Cluster.solve c layout ~entry_pipeline:0 ~exit_switch:(n - 1)
              ~exit_pipeline:0 chain
          with
          | None -> Format.printf "  (unroutable)@.@."
          | Some p ->
              Format.printf
                "  traversal: %d recirculations, %d cable hops, %.0f ns@.@."
                p.Cluster.recircs p.Cluster.hops (Cluster.latency_ns c p)))
    [ 1; 2; 3 ];
  Format.printf
    "takeaway: the off-chip hop (%.0f ns at 1 m) is cheap enough that a \
     cluster behaves like one switch with more stages — the paper's \
     extension argument.@."
    (Asic.Latency.recirc_off_chip_ns spec ~cable_m:1.0)
