(** The paper's §4 analytic models: loopback capacity accounting, the
    feedback-queue throughput fixed point, and chain-level predictions
    built on them. *)

type loopback_split = {
  external_fraction : float;  (** (n - m) / n of chip capacity *)
  single_recirc_fraction : float;  (** min(1, m / (n - m)) of that traffic *)
}

val loopback_split : n_ports:int -> m_loopback:int -> loopback_split

val feedback_throughput : int -> float
(** [feedback_throughput k]: steady-state delivered fraction of the line
    rate T for traffic requiring [k] passes through a saturated loopback
    port of equal rate T — the fixed point of the §4 feedback queue.
    k=0,1 -> 1.0; k=2 -> 0.382 (after x = 0.618T); k=3 -> ~0.16. *)

val feedback_throughput_capacity : capacity:float -> int -> float
(** Generalization: the loopback group drains at [capacity] x the fresh
    arrival rate ([capacity] = m/(n-m) for m loopback ports of n). *)

val feedback_arrival_rates : int -> float array
(** The per-pass arrival rates a_1..a_k at the loopback port at the fixed
    point (a_1 = 1.0); exposed so the x = 0.618T step of the paper's
    worked example is checkable. *)

val golden_x : float
(** (sqrt 5 - 1) / 2 = 0.618..., the paper's x/T for two recirculations. *)

val chain_throughput_gbps :
  Asic.Spec.t -> Asic.Port.t -> recircs:int -> float
(** Expected per-chain throughput: external capacity after loopback
    provisioning, degraded by the feedback model for the chain's
    recirculation count. *)

val software_cores_needed :
  target_gbps:float -> gbps_per_core:float -> int
(** The §1 motivation arithmetic: server cores a software SFC needs to
    match a target rate. *)

val chain_latency_ns : Asic.Spec.t -> Traversal.path -> float
(** Predicted latency of a solved traversal: both MAC crossings, one
    pipe pass per step, one TM crossing per ingress->egress move, the
    on-chip recirculation hop per recirculation (resubmissions re-run
    the ingress pipe only). *)
