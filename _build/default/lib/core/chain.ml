type t = {
  path_id : int;
  name : string;
  nfs : string list;
  weight : float;
  exit_port : int;
}

let make ~path_id ~name ~nfs ?(weight = 1.0) ~exit_port () =
  if nfs = [] then invalid_arg (Printf.sprintf "Chain.make %s: empty chain" name);
  if List.length (List.sort_uniq String.compare nfs) <> List.length nfs then
    invalid_arg (Printf.sprintf "Chain.make %s: duplicate NFs in chain" name);
  if path_id < 1 || path_id > 0xFFFF then
    invalid_arg (Printf.sprintf "Chain.make %s: path id %d not in 1..65535" name path_id);
  if weight <= 0.0 then
    invalid_arg (Printf.sprintf "Chain.make %s: weight must be positive" name);
  { path_id; name; nfs; weight; exit_port }

let length t = List.length t.nfs

let position t nf =
  let rec go i = function
    | [] -> None
    | x :: rest -> if String.equal x nf then Some i else go (i + 1) rest
  in
  go 0 t.nfs

let all_nfs chains =
  let seen = Hashtbl.create 16 in
  List.concat_map (fun c -> c.nfs) chains
  |> List.filter (fun nf ->
         if Hashtbl.mem seen nf then false
         else begin
           Hashtbl.add seen nf ();
           true
         end)

let validate_against registry chains =
  let ids = List.map (fun c -> c.path_id) chains in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    Error "duplicate path ids across chains"
  else
    List.fold_left
      (fun acc nf ->
        Result.bind acc (fun () ->
            if List.mem_assoc nf registry then Ok ()
            else Error (Printf.sprintf "chain references unknown NF %S" nf)))
      (Ok ()) (all_nfs chains)

let normalize_weights chains =
  let total = List.fold_left (fun acc c -> acc +. c.weight) 0.0 chains in
  if total <= 0.0 then chains
  else List.map (fun c -> { c with weight = c.weight /. total }) chains

let pp ppf t =
  Format.fprintf ppf "chain %s (path %d, w=%.2f, exit %d): %s" t.name t.path_id
    t.weight t.exit_port
    (String.concat " -> " t.nfs)
