lib/core/parser_merge.mli: P4ir
