lib/core/sfc_header.mli: Bytes Format P4ir
