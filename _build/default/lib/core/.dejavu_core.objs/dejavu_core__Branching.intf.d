lib/core/branching.mli: Asic Chain Format Layout P4ir Traversal
