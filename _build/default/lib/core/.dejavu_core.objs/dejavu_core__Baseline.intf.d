lib/core/baseline.mli: Format Nf P4ir
