lib/core/sfc_header.ml: Array Bytes Format List P4ir Printf
