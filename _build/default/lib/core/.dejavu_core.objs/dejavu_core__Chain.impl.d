lib/core/chain.ml: Format Hashtbl List Printf Result String
