lib/core/runtime.mli: Asic Bytes Compiler Sfc_header
