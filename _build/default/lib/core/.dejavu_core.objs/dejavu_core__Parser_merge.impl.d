lib/core/parser_merge.ml: Hashtbl Int64 List Net_hdrs Option P4ir Printf Result String
