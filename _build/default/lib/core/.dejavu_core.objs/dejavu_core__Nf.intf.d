lib/core/nf.mli: Format P4ir
