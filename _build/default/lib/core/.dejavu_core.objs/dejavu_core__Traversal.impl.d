lib/core/traversal.ml: Array Asic Chain Format Layout List Printf
