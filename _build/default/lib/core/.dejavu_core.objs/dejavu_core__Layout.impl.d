lib/core/layout.ml: Asic Format List P4ir String
