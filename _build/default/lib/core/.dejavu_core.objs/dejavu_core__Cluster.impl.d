lib/core/cluster.ml: Array Asic Chain Format Fun Layout List Option Random Result Traversal
