lib/core/model.mli: Asic Traversal
