lib/core/compiler.ml: Array Asic Branching Chain Compose Format Hashtbl Layout List Net_hdrs Nf Option P4ir Parser_merge Placement Printf Result Traversal
