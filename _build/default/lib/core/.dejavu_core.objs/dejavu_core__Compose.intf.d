lib/core/compose.mli: Asic Layout Nf P4ir
