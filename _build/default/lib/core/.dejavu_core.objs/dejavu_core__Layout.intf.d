lib/core/layout.mli: Asic Format P4ir
