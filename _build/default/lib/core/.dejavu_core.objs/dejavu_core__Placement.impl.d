lib/core/placement.ml: Array Asic Chain Format Layout List Option P4ir Printf Random String Traversal
