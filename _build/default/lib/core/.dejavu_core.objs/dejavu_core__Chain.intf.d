lib/core/chain.mli: Format Nf
