lib/core/placement.mli: Asic Chain Format Layout P4ir
