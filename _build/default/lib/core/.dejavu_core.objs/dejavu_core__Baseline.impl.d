lib/core/baseline.ml: Action Format Fun List Nf P4ir Resources Table
