lib/core/cluster.mli: Asic Chain Format Layout P4ir
