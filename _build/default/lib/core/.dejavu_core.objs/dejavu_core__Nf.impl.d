lib/core/nf.ml: Format List P4ir Printf String
