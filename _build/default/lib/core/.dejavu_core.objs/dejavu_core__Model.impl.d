lib/core/model.ml: Array Asic List Traversal
