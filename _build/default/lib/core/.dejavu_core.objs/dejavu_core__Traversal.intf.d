lib/core/traversal.mli: Asic Chain Format Layout
