lib/core/net_hdrs.ml: Int64 List Netpkt P4ir Printf Sfc_header
