lib/core/compose.ml: Asic Format Layout List Net_hdrs Nf Option P4ir Printf Result Sfc_header String
