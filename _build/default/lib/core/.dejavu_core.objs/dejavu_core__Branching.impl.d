lib/core/branching.ml: Asic Chain Compose Format Hashtbl Layout List P4ir Printf Result Traversal
