lib/core/compiler.mli: Asic Branching Chain Compose Format Layout Nf P4ir Placement Traversal
