lib/core/net_hdrs.mli: P4ir
