lib/core/runtime.ml: Array Asic Branching Bytes Chain Compiler Hashtbl Int64 Layout List Netpkt Printf Result Sfc_header
