(** Clusters of switch data planes (§7, "Towards clusters of switch data
    planes"): identical switches chained back-to-back with direct-attach
    cables, multiplying MAU stages at the same aggregate bandwidth.

    Topology: a unidirectional linear chain. Each switch's uplink ports
    feed the next switch's ingress (pipeline 0 by convention); within a
    switch, the usual rules apply (TM between any ingress/egress pair,
    recirculation within a pipeline). The traversal solver therefore
    has three transition prices: resubmission, recirculation, and the
    inter-switch hop — the hop costs no recirculation bandwidth
    (dedicated cables) but pays the §4 off-chip latency.

    Pipelets are addressed with global pipeline ids: switch [s],
    pipeline [p] lives at global pipeline [s * per_switch + p], so the
    ordinary {!Layout.t} describes cluster placements too. *)

type t = {
  spec : Asic.Spec.t;  (** every switch is identical *)
  n_switches : int;
  cable_m : float;  (** inter-switch DAC length *)
}

val make : ?cable_m:float -> spec:Asic.Spec.t -> n_switches:int -> unit -> t
val n_global_pipelines : t -> int
val switch_of_pipeline : t -> int -> int
val global_pipeline : t -> switch:int -> pipeline:int -> int
val pipelet : t -> switch:int -> pipeline:int -> kind:Asic.Pipelet.kind -> Asic.Pipelet.id

type step =
  | Ingress_pass of { global_pipeline : int; idx_out : int }
  | To_egress of { global_pipeline : int; idx_out : int }
  | Resubmit
  | Recirc
  | Hop of { to_switch : int }  (** cable to the next switch *)
  | Emit

type path = {
  steps : step list;
  recircs : int;
  resubmits : int;
  hops : int;
}

val solve :
  t ->
  Layout.t ->
  entry_pipeline:int ->
  exit_switch:int ->
  exit_pipeline:int ->
  string list ->
  path option
(** Cheapest traversal (recirc 1.0, resubmit 0.9, hop 0.1 — hops are
    latency, not lost bandwidth). The chain enters at switch 0. [None]
    when unroutable (e.g. an NF placed on a switch behind the packet). *)

val latency_ns : t -> path -> float
(** Both MAC crossings, a pipe pass per pipelet visit, TM crossings,
    on-chip recirculations, and the off-chip hop cost per cable. *)

val cost :
  t -> Layout.t -> entry_pipeline:int -> exit_switch:int -> exit_pipeline:int ->
  Chain.t list -> float option

type strategy = Greedy_fill | Anneal of { iterations : int; seed : int }

val place :
  t ->
  resources_of:(string -> P4ir.Resources.t) ->
  chains:Chain.t list ->
  exit_switch:int ->
  exit_pipeline:int ->
  pinned:(string * Asic.Pipelet.id) list ->
  strategy ->
  (Layout.t * float, string) result
(** Assign NFs to the cluster's pipelets under per-pipelet stage budgets
    (2 framework stages per NF + 1 fixed, as on a single switch). *)

val pp_path : Format.formatter -> path -> unit
