type comparison = {
  nf : string;
  native : P4ir.Resources.t;
  emulated : P4ir.Resources.t;
}

let key_slot_bits = 104 (* a 5-tuple-sized generic slot *)
let vm_id_bits = 16 (* virtual program id + virtual stage id *)

let ceil_div a b = (a + b - 1) / b

(* One logical table, interpreted: a widened ternary match (the generic
   matcher cannot know key structure, so everything goes to TCAM), plus
   one primitive-execution table per action primitive (Hyper4 executes
   one primitive per stage). *)
let emulated_table table =
  let open P4ir in
  let gen_key_bits = vm_id_bits + max key_slot_bits (Table.key_bits table) in
  let tcam_cols = ceil_div gen_key_bits Resources.tcam_block_width in
  let tcam_rows = ceil_div (Table.max_size table) Resources.tcam_block_entries in
  let max_prims =
    List.fold_left
      (fun acc (a : Action.t) -> max acc (List.length a.Action.body))
      1 (Table.actions table)
  in
  (* Per primitive: a small generic execution table (opcode + operand
     selectors in SRAM) in its own stage. *)
  let prim_table =
    {
      Resources.stages = 1;
      table_ids = 1;
      srams = 1;
      tcams = 0;
      crossbar_bytes = ceil_div vm_id_bits 8;
      vliws = 4 (* generic copy/arith/validity/flag micro-ops *);
      gateways = 1 (* stage-progression check *);
      hash_bits = 0;
    }
  in
  let match_stage =
    {
      Resources.stages = 1;
      table_ids = 1;
      srams = ceil_div (Table.max_size table * 32) Resources.sram_block_bits
              (* action-data indirection *);
      tcams = tcam_cols * tcam_rows;
      crossbar_bytes = ceil_div gen_key_bits 8;
      vliws = 2;
      gateways = 0;
      hash_bits = 0;
    }
  in
  Resources.add match_stage (Resources.scale max_prims prim_table)

let emulated_resources (nf : Nf.t) =
  let tables = List.fold_left
    (fun acc t -> P4ir.Resources.add acc (emulated_table t))
    P4ir.Resources.zero nf.Nf.tables
  in
  (* Register state is interpreted through the same indirection but its
     memory footprint is unchanged. *)
  let reg_srams =
    List.fold_left
      (fun acc r -> acc + P4ir.Register.sram_blocks r)
      0 nf.Nf.registers
  in
  { tables with P4ir.Resources.srams = tables.P4ir.Resources.srams + reg_srams }

let compare_nf nf =
  { nf = nf.Nf.name; native = Nf.resources nf; emulated = emulated_resources nf }

let ratios (c : comparison) =
  let r name a b =
    if a = 0 then None else Some (name, float_of_int b /. float_of_int a)
  in
  List.filter_map Fun.id
    [
      r "stages" c.native.P4ir.Resources.stages c.emulated.P4ir.Resources.stages;
      r "table_ids" c.native.P4ir.Resources.table_ids
        c.emulated.P4ir.Resources.table_ids;
      r "srams" c.native.P4ir.Resources.srams c.emulated.P4ir.Resources.srams;
      r "crossbar" c.native.P4ir.Resources.crossbar_bytes
        c.emulated.P4ir.Resources.crossbar_bytes;
      r "vliws" c.native.P4ir.Resources.vliws c.emulated.P4ir.Resources.vliws;
    ]

let overhead_factor = ratios

let summary nfs =
  let cs = List.map compare_nf nfs in
  {
    nf = "total";
    native =
      P4ir.Resources.sum (List.map (fun c -> c.native) cs);
    emulated =
      P4ir.Resources.sum (List.map (fun c -> c.emulated) cs);
  }

let pp_comparison ppf c =
  Format.fprintf ppf "@[<v>%s:@,  native:   %a@,  emulated: %a@,  factors:" c.nf
    P4ir.Resources.pp c.native P4ir.Resources.pp c.emulated;
  List.iter (fun (n, f) -> Format.fprintf ppf " %s=%.1fx" n f) (ratios c);
  Format.fprintf ppf "@]"
