(** Generic-parser construction (§3): merge the parser DAGs of the
    co-located NFs into one parser.

    Vertices are identified by their [(header_type, offset)] tuple,
    mapped through a global-ID lookup table, so the same header at the
    same location unifies across NFs while the same header type at a
    different offset stays distinct. Select transitions are unioned;
    a [Goto] default wins over an [Accept] default (the NF that stops
    parsing early simply ignores the deeper headers). *)

type conflict =
  | Decl_mismatch of string
      (** two NFs declare the same header name with different layouts *)
  | Select_fields of string
      (** the same vertex selects on different field lists *)
  | Case_target of string
      (** the same select value leads to different vertices *)
  | Start_mismatch
      (** the NF parsers do not start with the same vertex *)

val conflict_message : conflict -> string

val merge :
  name:string ->
  P4ir.Parser_graph.t list ->
  (P4ir.Parser_graph.t, conflict) result
(** Merge one or more parsers. The result's state ids are the canonical
    global IDs ({!Net_hdrs.gid}); it validates by construction (checked
    in tests). Raises [Invalid_argument] on an empty list. *)

val global_id_table :
  P4ir.Parser_graph.t list -> ((string * int) * string) list
(** The (header_type, offset) -> global id lookup table the merge uses;
    exposed because the paper sizes it in §3. *)
