let name = "sfc"
let byte_size = 20
let next_proto_ipv4 = 1
let n_ctx_slots = 4

let decl =
  P4ir.Hdr.decl name
    ([
       ("service_path_id", 16);
       ("service_index", 8);
       ("in_port", 9);
       ("out_port", 9);
       ("resubmit_flag", 1);
       ("recirc_flag", 1);
       ("drop_flag", 1);
       ("mirror_flag", 1);
       ("to_cpu_flag", 1);
       ("_pad", 9);
     ]
    @ List.concat_map
        (fun i ->
          [ (Printf.sprintf "ctx_key%d" i, 8); (Printf.sprintf "ctx_val%d" i, 16) ])
        [ 0; 1; 2; 3 ]
    @ [ ("next_protocol", 8) ])

let r field = P4ir.Fieldref.v name field
let service_path_id = r "service_path_id"
let service_index = r "service_index"
let in_port = r "in_port"
let out_port = r "out_port"
let resubmit_flag = r "resubmit_flag"
let recirc_flag = r "recirc_flag"
let drop_flag = r "drop_flag"
let mirror_flag = r "mirror_flag"
let to_cpu_flag = r "to_cpu_flag"

let ctx_key i =
  if i < 0 || i >= n_ctx_slots then invalid_arg "Sfc_header.ctx_key"
  else r (Printf.sprintf "ctx_key%d" i)

let ctx_val i =
  if i < 0 || i >= n_ctx_slots then invalid_arg "Sfc_header.ctx_val"
  else r (Printf.sprintf "ctx_val%d" i)

let next_protocol = r "next_protocol"

let ctx_key_tenant = 1
let ctx_key_app = 2
let ctx_key_debug = 3
let ctx_key_cpu_reason = 4

type t = {
  service_path_id : int;
  service_index : int;
  in_port : int;
  out_port : int;
  resubmit : bool;
  recirc : bool;
  drop : bool;
  mirror : bool;
  to_cpu : bool;
  context : (int * int) array;
  next_protocol : int;
}

let default =
  {
    service_path_id = 0;
    service_index = 0;
    in_port = 0;
    out_port = 0;
    resubmit = false;
    recirc = false;
    drop = false;
    mirror = false;
    to_cpu = false;
    context = Array.make n_ctx_slots (0, 0);
    next_protocol = next_proto_ipv4;
  }

let fill_inst t inst =
  let set f v = P4ir.Hdr.set inst f (P4ir.Bitval.of_int ~width:64 v) in
  let setb f b = set f (if b then 1 else 0) in
  set "service_path_id" t.service_path_id;
  set "service_index" t.service_index;
  set "in_port" t.in_port;
  set "out_port" t.out_port;
  setb "resubmit_flag" t.resubmit;
  setb "recirc_flag" t.recirc;
  setb "drop_flag" t.drop;
  setb "mirror_flag" t.mirror;
  setb "to_cpu_flag" t.to_cpu;
  Array.iteri
    (fun i (k, v) ->
      set (Printf.sprintf "ctx_key%d" i) k;
      set (Printf.sprintf "ctx_val%d" i) v)
    t.context;
  set "next_protocol" t.next_protocol;
  P4ir.Hdr.set_valid inst

let encode t =
  let inst = P4ir.Hdr.inst decl in
  fill_inst t inst;
  let b = Bytes.make byte_size '\000' in
  P4ir.Hdr.emit inst b ~bit_off:0;
  b

let of_inst inst =
  let get f = P4ir.Bitval.to_int (P4ir.Hdr.get inst f) in
  let getb f = get f = 1 in
  {
    service_path_id = get "service_path_id";
    service_index = get "service_index";
    in_port = get "in_port";
    out_port = get "out_port";
    resubmit = getb "resubmit_flag";
    recirc = getb "recirc_flag";
    drop = getb "drop_flag";
    mirror = getb "mirror_flag";
    to_cpu = getb "to_cpu_flag";
    context =
      Array.init n_ctx_slots (fun i ->
          (get (Printf.sprintf "ctx_key%d" i), get (Printf.sprintf "ctx_val%d" i)));
    next_protocol = get "next_protocol";
  }

let decode b ~off =
  if Bytes.length b < off + byte_size then Error "Sfc_header.decode: truncated"
  else begin
    let inst = P4ir.Hdr.inst decl in
    P4ir.Hdr.extract inst b ~bit_off:(8 * off);
    Ok (of_inst inst)
  end

let of_phv phv =
  if P4ir.Phv.is_valid phv name then Some (of_inst (P4ir.Phv.inst phv name))
  else None

let to_phv t phv =
  P4ir.Phv.add_decl phv decl;
  fill_inst t (P4ir.Phv.inst phv name)

let find_context t key =
  Array.fold_left
    (fun acc (k, v) -> if acc = None && k = key && k <> 0 then Some v else acc)
    None t.context

let equal a b =
  a.service_path_id = b.service_path_id
  && a.service_index = b.service_index
  && a.in_port = b.in_port && a.out_port = b.out_port
  && a.resubmit = b.resubmit && a.recirc = b.recirc && a.drop = b.drop
  && a.mirror = b.mirror && a.to_cpu = b.to_cpu
  && a.context = b.context
  && a.next_protocol = b.next_protocol

let pp ppf t =
  Format.fprintf ppf
    "sfc{path=%d idx=%d in=%d out=%d flags=%s%s%s%s%s next=%d}"
    t.service_path_id t.service_index t.in_port t.out_port
    (if t.resubmit then "R" else "-")
    (if t.recirc then "C" else "-")
    (if t.drop then "D" else "-")
    (if t.mirror then "M" else "-")
    (if t.to_cpu then "U" else "-")
    t.next_protocol
