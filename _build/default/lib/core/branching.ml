type entry = {
  pipeline : int;
  path_id : int;
  index : int;
  action : [ `To_out of int | `To_port of int | `Resubmit ];
}

type plan = {
  paths : (Chain.t * Traversal.path) list;
  branching : entry list;
  check_next : (string * (int * int) list) list;
}

let ( let* ) = Result.bind

let recirc_target spec ports ~pipeline ~salt =
  let loopbacks =
    List.filter
      (fun p -> Asic.Port.is_loopback ports p)
      (Asic.Spec.ports_of_pipeline spec pipeline)
  in
  match loopbacks with
  | [] -> Asic.Spec.recirc_port pipeline
  | ports -> List.nth ports (salt mod List.length ports)

(* Derive branching entries from one chain's solved path. *)
let entries_of_path spec ports (chain : Chain.t) (path : Traversal.path) =
  let rec walk = function
    | [] -> Ok []
    | Traversal.Ingress_step { pipeline; idx_out; action; _ } :: rest -> (
        let* tail = walk rest in
        match action with
        | Traversal.Resubmit ->
            Ok
              ({ pipeline; path_id = chain.Chain.path_id; index = idx_out; action = `Resubmit }
              :: tail)
        | Traversal.To_egress q -> (
            (* The ingress pre-commits the egress port: the final out port
               when the following egress pass emits, a loopback port of
               pipeline q when it recirculates. *)
            match rest with
            | Traversal.Egress_step { action = Traversal.Emit; _ } :: _ ->
                Ok
                  ({
                     pipeline;
                     path_id = chain.Chain.path_id;
                     index = idx_out;
                     action = `To_out chain.Chain.exit_port;
                   }
                  :: tail)
            | Traversal.Egress_step { action = Traversal.Recirc; _ } :: _ ->
                let port =
                  recirc_target spec ports ~pipeline:q
                    ~salt:(chain.Chain.path_id + idx_out)
                in
                Ok
                  ({
                     pipeline;
                     path_id = chain.Chain.path_id;
                     index = idx_out;
                     action = `To_port port;
                   }
                  :: tail)
            | _ ->
                Error
                  (Printf.sprintf
                     "branching: chain %s has an ingress step not followed by an egress step"
                     chain.Chain.name)))
    | Traversal.Egress_step _ :: rest -> walk rest
  in
  walk path.Traversal.steps

let check_conflicts entries =
  let tbl = Hashtbl.create 32 in
  List.fold_left
    (fun acc e ->
      let* () = acc in
      let key = (e.pipeline, e.path_id, e.index) in
      match Hashtbl.find_opt tbl key with
      | Some prev when prev <> e.action ->
          Error
            (Printf.sprintf
               "branching: conflicting entries for (pipe %d, path %d, index %d)"
               e.pipeline e.path_id e.index)
      | Some _ -> Ok ()
      | None ->
          Hashtbl.replace tbl key e.action;
          Ok ())
    (Ok ()) entries

let dedup entries =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun e ->
      let key = (e.pipeline, e.path_id, e.index) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    entries

let plan spec ports layout chains ~entry_pipeline =
  let* paths =
    List.fold_left
      (fun acc (c : Chain.t) ->
        let* l = acc in
        match
          Traversal.solve spec layout ~entry_pipeline ~exit_port:c.Chain.exit_port
            c.Chain.nfs
        with
        | Some p -> Ok (l @ [ (c, p) ])
        | None ->
            Error (Printf.sprintf "branching: chain %s is unroutable" c.Chain.name))
      (Ok []) chains
  in
  let* branching =
    List.fold_left
      (fun acc (c, p) ->
        let* l = acc in
        let* es = entries_of_path spec ports c p in
        Ok (l @ es))
      (Ok []) paths
  in
  let* () = check_conflicts branching in
  let branching = dedup branching in
  (* Resume entries: a packet punted to the CPU at chain position j is
     reinjected into the ingress of the pipelet hosting NF j with its
     service index still at j — a state the nominal traversal may never
     pass through at that pipelet. Solve a traversal from each such
     state and add its routing decisions wherever the nominal plan has
     no entry (nominal entries win on conflicts, which only arise when
     two optimal continuations tie). *)
  let* resume =
    List.fold_left
      (fun acc (c : Chain.t) ->
        let* l = acc in
        let* extra =
          List.fold_left
            (fun acc (j, nf) ->
              let* l = acc in
              match Layout.location layout nf with
              | None ->
                  Error
                    (Printf.sprintf "branching: NF %s of chain %s unplaced" nf
                       c.Chain.name)
              | Some id -> (
                  match
                    Traversal.solve ~start_idx:j spec layout
                      ~entry_pipeline:id.Asic.Pipelet.pipeline
                      ~exit_port:c.Chain.exit_port c.Chain.nfs
                  with
                  | None ->
                      Error
                        (Printf.sprintf
                           "branching: chain %s cannot resume at %s" c.Chain.name
                           nf)
                  | Some p ->
                      let* es = entries_of_path spec ports c p in
                      Ok (l @ es)))
            (Ok [])
            (List.mapi (fun j nf -> (j, nf)) c.Chain.nfs)
        in
        Ok (l @ extra))
      (Ok []) chains
  in
  let keys = Hashtbl.create 32 in
  List.iter
    (fun e -> Hashtbl.replace keys (e.pipeline, e.path_id, e.index) ())
    branching;
  let branching =
    branching
    @ dedup
        (List.filter
           (fun e -> not (Hashtbl.mem keys (e.pipeline, e.path_id, e.index)))
           resume)
  in
  let check_next =
    List.concat_map
      (fun (c : Chain.t) ->
        List.mapi (fun j nf -> (nf, (c.Chain.path_id, j))) c.Chain.nfs)
      chains
    |> List.fold_left
         (fun acc (nf, pair) ->
           match List.assoc_opt nf acc with
           | Some pairs -> (nf, pairs @ [ pair ]) :: List.remove_assoc nf acc
           | None -> (nf, [ pair ]) :: acc)
         []
    |> List.rev
  in
  Ok { paths; branching; check_next }

let bv16 v = P4ir.Bitval.of_int ~width:16 v
let bv8 v = P4ir.Bitval.of_int ~width:8 v
let bv9 v = P4ir.Bitval.of_int ~width:9 v

let install plan ~branching_table_of ~check_next_table_of =
  let* () =
    List.fold_left
      (fun acc e ->
        let* () = acc in
        match branching_table_of e.pipeline with
        | None ->
            Error
              (Printf.sprintf "branching: no branching table for pipeline %d"
                 e.pipeline)
        | Some table ->
            let action, args =
              match e.action with
              | `To_out port -> (Compose.act_to_out, [ bv9 port ])
              | `To_port port -> (Compose.act_to_port, [ bv9 port ])
              | `Resubmit -> (Compose.act_resubmit, [])
            in
            P4ir.Table.add_entry table
              {
                P4ir.Table.priority = 0;
                patterns =
                  [ P4ir.Table.M_exact (bv16 e.path_id); P4ir.Table.M_exact (bv8 e.index) ];
                action;
                args;
              })
      (Ok ()) plan.branching
  in
  List.fold_left
    (fun acc (nf, pairs) ->
      let* () = acc in
      match check_next_table_of nf with
      | None -> Ok () (* classifier-style NFs have no check table *)
      | Some table ->
          List.fold_left
            (fun acc (path_id, index) ->
              let* () = acc in
              P4ir.Table.add_entry table
                {
                  P4ir.Table.priority = 0;
                  patterns =
                    [
                      P4ir.Table.M_exact (bv16 path_id);
                      P4ir.Table.M_exact (bv8 index);
                    ];
                  action = Compose.proceed_action;
                  args = [];
                })
            (Ok ()) pairs)
    (Ok ()) plan.check_next

let pp_entry ppf e =
  Format.fprintf ppf "ingress %d: (path %d, idx %d) -> %s" e.pipeline e.path_id
    e.index
    (match e.action with
    | `To_out p -> Printf.sprintf "out port %d" p
    | `To_port p -> Printf.sprintf "port %d" p
    | `Resubmit -> "resubmit")
