(** SFC policies: the chains packets must traverse, each with a weight
    reflecting its share of traffic (the optimizer minimizes the
    weighted recirculation count, §3.3). *)

type t = {
  path_id : int;  (** the 16-bit service path id carried in the header *)
  name : string;
  nfs : string list;  (** NF names in traversal order *)
  weight : float;  (** fraction of traffic on this chain *)
  exit_port : int;  (** Ethernet port the chain's traffic leaves on *)
}

val make :
  path_id:int ->
  name:string ->
  nfs:string list ->
  ?weight:float ->
  exit_port:int ->
  unit ->
  t
(** Raises [Invalid_argument] on an empty NF list, duplicate NFs within
    the chain, a path id outside 1..65535, or a non-positive weight. *)

val length : t -> int
val position : t -> string -> int option
(** Index of an NF within the chain. *)

val all_nfs : t list -> string list
(** Distinct NF names across chains, in first-appearance order. *)

val validate_against : Nf.registry -> t list -> (unit, string) result
(** Every NF referenced exists; path ids unique. *)

val normalize_weights : t list -> t list
(** Scale weights to sum to 1. *)

val pp : Format.formatter -> t -> unit
