(** The Dejavu SFC header (Fig. 3) — a 20-byte NSH-derived header carried
    between Ethernet and IP:

    {v
    service_path_id : 16   service_index : 8
    platform metadata (4 bytes):
      in_port:9 out_port:9 resubmit:1 recirc:1 drop:1 mirror:1 to_cpu:1 pad:9
    context data (12 bytes): 4 x (key:8, value:16)
    next_protocol : 8
    v}

    It is pushed by the Classifier, carried along the whole service path
    (surviving deparse/re-parse at every pipe crossing, which is what
    lets Dejavu thread state through the chip), and stripped on the
    final egress pass. *)

val name : string
(** ["sfc"]. *)

val decl : P4ir.Hdr.decl
val byte_size : int
(** 20. *)

val next_proto_ipv4 : int
(** 1 — the value of [next_protocol] for an IPv4 payload. *)

(** Field references. *)

val service_path_id : P4ir.Fieldref.t
val service_index : P4ir.Fieldref.t
val in_port : P4ir.Fieldref.t
val out_port : P4ir.Fieldref.t
val resubmit_flag : P4ir.Fieldref.t
val recirc_flag : P4ir.Fieldref.t
val drop_flag : P4ir.Fieldref.t
val mirror_flag : P4ir.Fieldref.t
val to_cpu_flag : P4ir.Fieldref.t
val ctx_key : int -> P4ir.Fieldref.t
(** [ctx_key i] for i in 0..3. *)

val ctx_val : int -> P4ir.Fieldref.t
val next_protocol : P4ir.Fieldref.t
val n_ctx_slots : int

(** Context keys reserved by the framework. *)

val ctx_key_tenant : int
val ctx_key_app : int
val ctx_key_debug : int
val ctx_key_cpu_reason : int

(** {2 Plain-record view, for the control plane and tests} *)

type t = {
  service_path_id : int;
  service_index : int;
  in_port : int;
  out_port : int;
  resubmit : bool;
  recirc : bool;
  drop : bool;
  mirror : bool;
  to_cpu : bool;
  context : (int * int) array;  (** 4 key/value slots *)
  next_protocol : int;
}

val default : t
val encode : t -> Bytes.t
val decode : Bytes.t -> off:int -> (t, string) result
val of_phv : P4ir.Phv.t -> t option
(** [None] when the PHV's SFC header is invalid/absent. *)

val to_phv : t -> P4ir.Phv.t -> unit
(** Write all fields and mark the header valid. *)

val find_context : t -> int -> int option
(** Look up a context value by key (0 keys are empty slots). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
