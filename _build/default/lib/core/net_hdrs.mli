(** Shared P4 header declarations for the protocol stack Dejavu programs
    parse, plus a builder for the (header_type, offset) parser topology
    every NF's parser is a slice of.

    Offsets follow the wire layouts the deployment can see:
    eth@0, then optionally sfc@14, then optionally vlan, then ipv4 and a
    transport header. Identical header types at different offsets are
    distinct parser vertices, per the paper's merging rule. *)

val eth : P4ir.Hdr.decl
val vlan : P4ir.Hdr.decl
val ipv4 : P4ir.Hdr.decl
val tcp : P4ir.Hdr.decl
val udp : P4ir.Hdr.decl
val vxlan : P4ir.Hdr.decl

(** Overlay inner headers (after a VXLAN header). Same layouts as their
    outer counterparts under distinct names, so one PHV can hold both
    sides of an encapsulation. *)

val inner_eth : P4ir.Hdr.decl
val inner_ipv4 : P4ir.Hdr.decl
val inner_tcp : P4ir.Hdr.decl
val inner_udp : P4ir.Hdr.decl

val all_decls : P4ir.Hdr.decl list
(** The protocol declarations above plus the SFC header. *)

val ethertype_ipv4 : int
val ethertype_vlan : int
val ethertype_sfc : int
val proto_tcp : int
val proto_udp : int

(** Field shorthands used across NFs. *)

val eth_ethertype : P4ir.Fieldref.t
val eth_src : P4ir.Fieldref.t
val eth_dst : P4ir.Fieldref.t
val vlan_vid : P4ir.Fieldref.t
val ip_src : P4ir.Fieldref.t
val ip_dst : P4ir.Fieldref.t
val ip_proto : P4ir.Fieldref.t
val ip_ttl : P4ir.Fieldref.t
val tcp_sport : P4ir.Fieldref.t
val tcp_dport : P4ir.Fieldref.t
val udp_sport : P4ir.Fieldref.t
val udp_dport : P4ir.Fieldref.t

val gid : string -> int -> string
(** Canonical vertex id for a (header_type, offset) tuple: ["hdr@off"] —
    the global-ID lookup the paper asks NF programmers to supply. *)

val base_parser :
  ?with_vlan:bool ->
  ?with_l4:bool ->
  ?with_vxlan:bool ->
  name:string ->
  unit ->
  P4ir.Parser_graph.t
(** A full parser over the topology: [with_vlan] adds the 802.1Q
    branches (both with and without the SFC header), [with_l4] adds
    TCP/UDP extraction under every IPv4 vertex, and [with_vxlan]
    continues under UDP port 4789 into the overlay (VXLAN header and the
    inner Ethernet/IPv4/transport stack), both on raw arrivals and
    beneath the SFC header — tunnel traffic must be decodable on the
    same pass the classifier runs in. NF parsers are built by
    taking this with the options they need; the generic parser is their
    merge. *)

val deparse_order : string list
(** Canonical emission order for all known headers. *)
