(** On-chip routing (§3.4): generate the branching-table and
    check_nextNF entries that realize each chain's optimal traversal.
    Routing rules can only be computed after placement, because the
    entry for (path, index) at an ingress pipelet depends on where the
    next NF landed. *)

type entry = {
  pipeline : int;  (** which ingress pipelet's branching table *)
  path_id : int;
  index : int;  (** service index value after that ingress pass *)
  action : [ `To_out of int | `To_port of int | `Resubmit ];
}

type plan = {
  paths : (Chain.t * Traversal.path) list;
  branching : entry list;
  check_next : (string * (int * int) list) list;
      (** NF name -> (path id, index) pairs that should proceed *)
}

val plan :
  Asic.Spec.t ->
  Asic.Port.t ->
  Layout.t ->
  Chain.t list ->
  entry_pipeline:int ->
  (plan, string) result
(** Solves every chain's traversal and derives the table entries. The
    recirculation target for a pipeline is one of its loopback Ethernet
    ports when any exist (spread round-robin over entries), else the
    dedicated recirculation port. Fails when a chain is unroutable or
    two chains would need conflicting branching entries (impossible for
    distinct path ids, checked anyway). *)

val install :
  plan ->
  branching_table_of:(int -> P4ir.Table.t option) ->
  check_next_table_of:(string -> P4ir.Table.t option) ->
  (unit, string) result
(** Write the entries into the composed programs' tables. *)

val pp_entry : Format.formatter -> entry -> unit
