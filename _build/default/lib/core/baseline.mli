(** Related-work comparison (§6): Dejavu merges NF programs at the code
    level; Hyper4/HyperV instead run a general-purpose *emulation*
    program that interprets the NFs' tables, which the literature
    reports to cost 3-7x the native resources.

    This module models the emulation structurally, following Hyper4's
    design: every logical table becomes a generic ternary match stage
    (keys widened to the interpreter's fixed slot and matched in TCAM,
    with the virtual program/stage id prepended), and every action is
    executed one primitive per MAU stage through generic
    primitive-execution tables. The 3-7x factor then falls out of the
    structure instead of being asserted. *)

type comparison = {
  nf : string;
  native : P4ir.Resources.t;  (** the NF compiled as Dejavu composes it *)
  emulated : P4ir.Resources.t;  (** the NF interpreted Hyper4-style *)
}

val key_slot_bits : int
(** The interpreter's fixed match-slot width (keys are padded up to it). *)

val vm_id_bits : int
(** Virtual program + virtual stage identifier prepended to every key. *)

val emulated_table : P4ir.Table.t -> P4ir.Resources.t
(** Emulation cost of one logical table. *)

val emulated_resources : Nf.t -> P4ir.Resources.t
val compare_nf : Nf.t -> comparison

val overhead_factor : comparison -> (string * float) list
(** Per-resource emulated/native ratio (resources with zero native use
    are omitted). *)

val summary : Nf.t list -> comparison
(** Totals across a set of NFs, reported under the name ["total"]. *)

val pp_comparison : Format.formatter -> comparison -> unit
