type conflict =
  | Decl_mismatch of string
  | Select_fields of string
  | Case_target of string
  | Start_mismatch

let conflict_message = function
  | Decl_mismatch h ->
      Printf.sprintf "conflicting declarations for header %s" h
  | Select_fields v ->
      Printf.sprintf "vertex %s selects on different field lists" v
  | Case_target v ->
      Printf.sprintf
        "vertex %s maps the same select value to different targets" v
  | Start_mismatch -> "parsers start at different vertices"

let ( let* ) = Result.bind

let global_id_table parsers =
  let table = ref [] in
  List.iter
    (fun (p : P4ir.Parser_graph.t) ->
      List.iter
        (fun (s : P4ir.Parser_graph.state) ->
          let key = P4ir.Parser_graph.vertex_key s in
          if not (List.mem_assoc key !table) then
            table := !table @ [ (key, Net_hdrs.gid (fst key) (snd key)) ])
        p.P4ir.Parser_graph.states)
    parsers;
  !table

(* Remap a [next] through the vertex table of its own parser. *)
let remap_next (p : P4ir.Parser_graph.t) next =
  match next with
  | P4ir.Parser_graph.Accept -> P4ir.Parser_graph.Accept
  | P4ir.Parser_graph.Reject -> P4ir.Parser_graph.Reject
  | P4ir.Parser_graph.Goto id -> (
      match P4ir.Parser_graph.find_state p id with
      | Some s ->
          let h, off = P4ir.Parser_graph.vertex_key s in
          P4ir.Parser_graph.Goto (Net_hdrs.gid h off)
      | None -> P4ir.Parser_graph.Goto id)

let merge_decls parsers =
  List.fold_left
    (fun acc (p : P4ir.Parser_graph.t) ->
      let* decls = acc in
      List.fold_left
        (fun acc (d : P4ir.Hdr.decl) ->
          let* decls = acc in
          match
            List.find_opt
              (fun (e : P4ir.Hdr.decl) -> String.equal e.P4ir.Hdr.name d.P4ir.Hdr.name)
              decls
          with
          | Some existing ->
              if P4ir.Hdr.equal_decl existing d then Ok decls
              else Error (Decl_mismatch d.P4ir.Hdr.name)
          | None -> Ok (decls @ [ d ]))
        (Ok decls) p.P4ir.Parser_graph.decls)
    (Ok []) parsers

let equal_next a b =
  match (a, b) with
  | P4ir.Parser_graph.Accept, P4ir.Parser_graph.Accept -> true
  | P4ir.Parser_graph.Reject, P4ir.Parser_graph.Reject -> true
  | P4ir.Parser_graph.Goto x, P4ir.Parser_graph.Goto y -> String.equal x y
  | (P4ir.Parser_graph.Accept | P4ir.Parser_graph.Reject | P4ir.Parser_graph.Goto _), _
    ->
      false

(* Merge two defaults: a concrete continuation beats an early stop. *)
let merge_default gid a b =
  if equal_next a b then Ok a
  else
    match (a, b) with
    | P4ir.Parser_graph.Goto _, (P4ir.Parser_graph.Accept | P4ir.Parser_graph.Reject)
      ->
        Ok a
    | (P4ir.Parser_graph.Accept | P4ir.Parser_graph.Reject), P4ir.Parser_graph.Goto _
      ->
        Ok b
    | P4ir.Parser_graph.Accept, P4ir.Parser_graph.Reject
    | P4ir.Parser_graph.Reject, P4ir.Parser_graph.Accept ->
        Ok P4ir.Parser_graph.Accept
    | P4ir.Parser_graph.Goto _, P4ir.Parser_graph.Goto _ -> Error (Case_target gid)
    | _ -> Error (Case_target gid)

let merge_selects gid a b =
  match (a, b) with
  | None, s | s, None -> Ok s
  | Some (sa : P4ir.Parser_graph.select), Some sb ->
      if
        List.length sa.P4ir.Parser_graph.on <> List.length sb.P4ir.Parser_graph.on
        || not
             (List.for_all2 P4ir.Fieldref.equal sa.P4ir.Parser_graph.on
                sb.P4ir.Parser_graph.on)
      then Error (Select_fields gid)
      else
        let* cases =
          List.fold_left
            (fun acc (cb : P4ir.Parser_graph.case) ->
              let* cases = acc in
              match
                List.find_opt
                  (fun (ca : P4ir.Parser_graph.case) ->
                    List.length ca.P4ir.Parser_graph.values
                    = List.length cb.P4ir.Parser_graph.values
                    && List.for_all2 Int64.equal ca.P4ir.Parser_graph.values
                         cb.P4ir.Parser_graph.values)
                  cases
              with
              | Some ca ->
                  if equal_next ca.P4ir.Parser_graph.next cb.P4ir.Parser_graph.next
                  then Ok cases
                  else Error (Case_target gid)
              | None -> Ok (cases @ [ cb ]))
            (Ok sa.P4ir.Parser_graph.cases)
            sb.P4ir.Parser_graph.cases
        in
        let* default =
          merge_default gid sa.P4ir.Parser_graph.default sb.P4ir.Parser_graph.default
        in
        Ok (Some { sa with P4ir.Parser_graph.cases; default })

let merge ~name parsers =
  if parsers = [] then invalid_arg "Parser_merge.merge: no parsers";
  let* decls = merge_decls parsers in
  (* Collect remapped states, unifying by global id. *)
  let merged : (string, P4ir.Parser_graph.state) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let* () =
    List.fold_left
      (fun acc (p : P4ir.Parser_graph.t) ->
        let* () = acc in
        List.fold_left
          (fun acc (s : P4ir.Parser_graph.state) ->
            let* () = acc in
            let h, off = P4ir.Parser_graph.vertex_key s in
            let gid = Net_hdrs.gid h off in
            let remapped_select =
              Option.map
                (fun (sel : P4ir.Parser_graph.select) ->
                  {
                    sel with
                    P4ir.Parser_graph.cases =
                      List.map
                        (fun (c : P4ir.Parser_graph.case) ->
                          { c with P4ir.Parser_graph.next = remap_next p c.P4ir.Parser_graph.next })
                        sel.P4ir.Parser_graph.cases;
                    default = remap_next p sel.P4ir.Parser_graph.default;
                  })
                s.P4ir.Parser_graph.select
            in
            let candidate =
              { s with P4ir.Parser_graph.id = gid; select = remapped_select }
            in
            match Hashtbl.find_opt merged gid with
            | None ->
                Hashtbl.replace merged gid candidate;
                order := gid :: !order;
                Ok ()
            | Some existing ->
                let* select =
                  merge_selects gid existing.P4ir.Parser_graph.select
                    candidate.P4ir.Parser_graph.select
                in
                Hashtbl.replace merged gid
                  { existing with P4ir.Parser_graph.select = select };
                Ok ())
          (Ok ()) p.P4ir.Parser_graph.states)
      (Ok ()) parsers
  in
  (* All parsers must agree on the entry vertex. *)
  let starts =
    List.map (fun (p : P4ir.Parser_graph.t) -> remap_next p p.P4ir.Parser_graph.start) parsers
  in
  let* start =
    match starts with
    | first :: rest ->
        if List.for_all (equal_next first) rest then Ok first
        else Error Start_mismatch
    | [] -> assert false
  in
  let states = List.rev_map (Hashtbl.find merged) !order in
  Ok { P4ir.Parser_graph.name; decls; start; states }
