type ingress_action = To_egress of int | Resubmit
type egress_action = Emit | Recirc

type step =
  | Ingress_step of {
      pipeline : int;
      idx_in : int;
      idx_out : int;
      action : ingress_action;
    }
  | Egress_step of {
      pipeline : int;
      idx_in : int;
      idx_out : int;
      action : egress_action;
    }

type path = { steps : step list; recircs : int; resubmits : int }

let advance layout chain idx =
  let chain = Array.of_list chain in
  let k = Array.length chain in
  (* Cursor: last consumed (group, slot); -1 = before everything. *)
  let rec go idx gi si =
    if idx >= k then idx
    else
      match Layout.position layout chain.(idx) with
      | None -> idx
      | Some (g, s) ->
          if g > gi then go (idx + 1) g s
          else if g = gi && Layout.group_kind layout g = `Seq && s > si then
            go (idx + 1) g s
          else idx
  in
  go idx (-1) (-1)

(* Dijkstra over (location, chain position) with recirculations as the
   dominant cost and resubmissions as tie-break. *)

type loc = I of int | E of int

let recirc_cost = 1000
let resubmit_cost = 900

let solve ?(start_idx = 0) spec layout ~entry_pipeline ~exit_port chain =
  let k = List.length chain in
  let n = spec.Asic.Spec.n_pipelines in
  let exit_pipe = Asic.Spec.port_pipeline spec exit_port in
  let layout_at loc =
    match loc with
    | I p -> Layout.layout_of layout { Asic.Pipelet.pipeline = p; kind = Asic.Pipelet.Ingress }
    | E p -> Layout.layout_of layout { Asic.Pipelet.pipeline = p; kind = Asic.Pipelet.Egress }
  in
  (* State encoding for the distance arrays. *)
  let state_id loc idx =
    let base = match loc with I p -> p | E p -> n + p in
    (base * (k + 1)) + idx
  in
  let n_states = 2 * n * (k + 1) in
  let dist = Array.make n_states max_int in
  let pred = Array.make n_states None in
  (* Edges out of a state: (cost, state', step describing the move). *)
  let edges loc idx =
    let idx' = advance (layout_at loc) chain idx in
    match loc with
    | I p ->
        let egress_moves =
          List.init n (fun q ->
              ( 0,
                (E q, idx'),
                Ingress_step
                  { pipeline = p; idx_in = idx; idx_out = idx'; action = To_egress q } ))
        in
        let resubmit_moves =
          if advance (layout_at (I p)) chain idx' > idx' then
            [
              ( resubmit_cost,
                (I p, idx'),
                Ingress_step
                  { pipeline = p; idx_in = idx; idx_out = idx'; action = Resubmit } );
            ]
          else []
        in
        egress_moves @ resubmit_moves
    | E q ->
        let recirc =
          [
            ( recirc_cost,
              (I q, idx'),
              Egress_step
                { pipeline = q; idx_in = idx; idx_out = idx'; action = Recirc } );
          ]
        in
        recirc
  in
  let decode s =
    let base = s / (k + 1) and idx = s mod (k + 1) in
    let loc = if base < n then I base else E (base - n) in
    (loc, idx)
  in
  let start = state_id (I entry_pipeline) (min start_idx k) in
  dist.(start) <- 0;
  let visited = Array.make n_states false in
  let rec loop () =
    (* Extract the cheapest unvisited state. *)
    let best = ref None in
    Array.iteri
      (fun s d ->
        if (not visited.(s)) && d < max_int then
          match !best with
          | Some (_, bd) when bd <= d -> ()
          | _ -> best := Some (s, d))
      dist;
    match !best with
    | None -> ()
    | Some (s, d) ->
        visited.(s) <- true;
        let loc, idx = decode s in
        List.iter
          (fun (c, (loc', idx'), step) ->
            let s' = state_id loc' idx' in
            if d + c < dist.(s') then begin
              dist.(s') <- d + c;
              pred.(s') <- Some (s, step)
            end)
          (edges loc idx);
        loop ()
  in
  loop ();
  (* Terminal: an egress state on the exit pipeline whose pass completes
     the chain. *)
  let terminal = ref None in
  let check_terminal s =
    if dist.(s) < max_int then begin
      let loc, idx = decode s in
      match loc with
      | E q when q = exit_pipe ->
          let idx' = advance (layout_at loc) chain idx in
          if idx' = k then begin
            match !terminal with
            | Some (_, d, _) when d <= dist.(s) -> ()
            | _ ->
                let final_step =
                  Egress_step
                    { pipeline = q; idx_in = idx; idx_out = idx'; action = Emit }
                in
                terminal := Some (s, dist.(s), final_step)
          end
      | E _ | I _ -> ()
    end
  in
  for s = 0 to n_states - 1 do
    check_terminal s
  done;
  match !terminal with
  | None -> None
  | Some (s, _, final_step) ->
      let rec unwind s acc =
        match pred.(s) with
        | None -> acc
        | Some (s', step) -> unwind s' (step :: acc)
      in
      let steps = unwind s [] @ [ final_step ] in
      let recircs =
        List.length
          (List.filter
             (function Egress_step { action = Recirc; _ } -> true | _ -> false)
             steps)
      in
      let resubmits =
        List.length
          (List.filter
             (function Ingress_step { action = Resubmit; _ } -> true | _ -> false)
             steps)
      in
      Some { steps; recircs; resubmits }

let cost spec layout ~entry_pipeline chains =
  List.fold_left
    (fun acc (c : Chain.t) ->
      match acc with
      | None -> None
      | Some total -> (
          match
            solve spec layout ~entry_pipeline ~exit_port:c.Chain.exit_port
              c.Chain.nfs
          with
          | None -> None
          | Some path ->
              Some
                (total
                +. c.Chain.weight
                   *. (float_of_int path.recircs
                      +. (0.9 *. float_of_int path.resubmits)))))
    (Some 0.0) chains

let pp_step ppf = function
  | Ingress_step { pipeline; idx_in; idx_out; action } ->
      Format.fprintf ppf "I%d[%d->%d]%s" pipeline idx_in idx_out
        (match action with
        | To_egress q -> Printf.sprintf " ->E%d" q
        | Resubmit -> " resubmit")
  | Egress_step { pipeline; idx_in; idx_out; action } ->
      Format.fprintf ppf "E%d[%d->%d]%s" pipeline idx_in idx_out
        (match action with Emit -> " emit" | Recirc -> " recirc")

let pp_path ppf t =
  Format.fprintf ppf "%a (recircs=%d resubmits=%d)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_step)
    t.steps t.recircs t.resubmits
