type loopback_split = {
  external_fraction : float;
  single_recirc_fraction : float;
}

let loopback_split ~n_ports ~m_loopback =
  if n_ports <= 0 || m_loopback < 0 || m_loopback > n_ports then
    invalid_arg "Model.loopback_split";
  let n = float_of_int n_ports and m = float_of_int m_loopback in
  {
    external_fraction = (n -. m) /. n;
    single_recirc_fraction =
      (if m_loopback = n_ports then 1.0 else min 1.0 (m /. (n -. m)));
  }

(* Fixed point of the feedback queue: fresh traffic arrives at the
   loopback port at rate 1 (T units) and must pass k times; the port
   drains at rate 1 and sheds overload proportionally across passes. *)
let feedback_arrival_rates_capacity ~capacity k =
  if k < 0 then invalid_arg "Model.feedback_arrival_rates";
  if capacity <= 0.0 then invalid_arg "Model: capacity must be positive";
  if k = 0 then [||]
  else begin
    let a = Array.make k 0.0 in
    a.(0) <- 1.0;
    for _ = 0 to 9999 do
      let total = Array.fold_left ( +. ) 0.0 a in
      let keep = if total > capacity then capacity /. total else 1.0 in
      for i = k - 1 downto 1 do
        a.(i) <- a.(i - 1) *. keep
      done
    done;
    a
  end

let feedback_arrival_rates = feedback_arrival_rates_capacity ~capacity:1.0

let feedback_throughput_capacity ~capacity k =
  if k < 0 then invalid_arg "Model.feedback_throughput";
  if k = 0 then 1.0
  else begin
    let a = feedback_arrival_rates_capacity ~capacity k in
    let total = Array.fold_left ( +. ) 0.0 a in
    let keep = if total > capacity then capacity /. total else 1.0 in
    a.(k - 1) *. keep
  end

let feedback_throughput = feedback_throughput_capacity ~capacity:1.0

let golden_x = (sqrt 5.0 -. 1.0) /. 2.0

let chain_throughput_gbps spec ports ~recircs =
  let n = Asic.Spec.n_eth_ports spec in
  let m = Asic.Port.loopback_count ports in
  let split = loopback_split ~n_ports:n ~m_loopback:m in
  let external_gbps =
    split.external_fraction *. Asic.Spec.total_capacity_gbps spec
  in
  if recircs = 0 then external_gbps
  else if m = 0 then
    (* Only the dedicated recirculation ports remain: one per pipeline,
       which is negligible at line rate — model as zero. *)
    0.0
  else
    (* Every recirculation passes through the loopback port group, whose
       drain rate is m/(n-m) of the external arrival rate. *)
    let capacity = float_of_int m /. float_of_int (n - m) in
    external_gbps *. feedback_throughput_capacity ~capacity recircs

let software_cores_needed ~target_gbps ~gbps_per_core =
  if gbps_per_core <= 0.0 then invalid_arg "Model.software_cores_needed";
  int_of_float (ceil (target_gbps /. gbps_per_core))

let chain_latency_ns spec (path : Traversal.path) =
  let ingress_passes =
    List.length
      (List.filter
         (function Traversal.Ingress_step _ -> true | _ -> false)
         path.Traversal.steps)
  in
  let egress_passes =
    List.length
      (List.filter
         (function Traversal.Egress_step _ -> true | _ -> false)
         path.Traversal.steps)
  in
  let tm_crossings =
    List.length
      (List.filter
         (function
           | Traversal.Ingress_step { action = Traversal.To_egress _; _ } -> true
           | _ -> false)
         path.Traversal.steps)
  in
  Asic.Latency.path_ns spec ~ingress_passes ~egress_passes ~tm_crossings
    ~on_chip_recircs:path.Traversal.recircs
