type built = {
  program : P4ir.Program.t;
  framework_tables : string list;
  check_next_of : (string * string) list;
  branching_table : string option;
  framework_gateways : int;
}

let nf_table_name ~nf table = nf ^ "__" ^ table
let check_next_name nf = "dv_check_next__" ^ nf
let check_flags_name tag = "dv_check_flags__" ^ tag
let branching_name = "dv_branching"
let proceed_action = "dv_proceed"
let act_to_out = "dv_to_out"
let act_to_port = "dv_to_port"
let act_resubmit = "dv_resubmit"
let act_to_cpu = "dv_to_cpu"

let ( let* ) = Result.bind

let exact field width = { P4ir.Table.field; kind = P4ir.Table.Exact; width }

let make_check_next nf =
  P4ir.Table.make ~name:(check_next_name nf)
    ~keys:[ exact Sfc_header.service_path_id 16; exact Sfc_header.service_index 8 ]
    ~actions:
      [
        P4ir.Action.make proceed_action [ P4ir.Action.No_op ];
        P4ir.Action.make "dv_skip" [ P4ir.Action.No_op ];
      ]
    ~default:("dv_skip", []) ~max_size:64 ()

let make_check_flags tag =
  let translate =
    P4ir.Action.make "dv_translate"
      [
        P4ir.Action.Assign
          (Asic.Stdmeta.drop_flag, P4ir.Expr.Field Sfc_header.drop_flag);
        P4ir.Action.Assign
          (Asic.Stdmeta.to_cpu_flag, P4ir.Expr.Field Sfc_header.to_cpu_flag);
        P4ir.Action.Assign
          (Asic.Stdmeta.mirror_flag, P4ir.Expr.Field Sfc_header.mirror_flag);
      ]
  in
  P4ir.Table.make ~name:(check_flags_name tag) ~keys:[]
    ~actions:[ translate ] ~default:("dv_translate", []) ~max_size:8 ()

let make_branching () =
  let to_out =
    P4ir.Action.make act_to_out ~params:[ ("port", 9) ]
      [
        P4ir.Action.Assign (Asic.Stdmeta.egress_spec, P4ir.Expr.Param "port");
        P4ir.Action.Assign (Sfc_header.out_port, P4ir.Expr.Param "port");
      ]
  in
  let to_port =
    P4ir.Action.make act_to_port ~params:[ ("port", 9) ]
      [ P4ir.Action.Assign (Asic.Stdmeta.egress_spec, P4ir.Expr.Param "port") ]
  in
  let resubmit =
    P4ir.Action.make act_resubmit
      [ P4ir.Action.Assign (Asic.Stdmeta.resubmit_flag, P4ir.Expr.const ~width:1 1) ]
  in
  let to_cpu =
    P4ir.Action.make act_to_cpu
      [ P4ir.Action.Assign (Asic.Stdmeta.to_cpu_flag, P4ir.Expr.const ~width:1 1) ]
  in
  P4ir.Table.make ~name:branching_name
    ~keys:[ exact Sfc_header.service_path_id 16; exact Sfc_header.service_index 8 ]
    ~actions:[ to_out; to_port; resubmit; to_cpu ]
    ~default:(act_to_cpu, []) ~max_size:256 ()

(* The framework bumps the service index after each NF — unless the NF
   punted the packet to the CPU, in which case the index must keep
   pointing at it so processing resumes there after reinjection. *)
let bump_index =
  P4ir.Control.If
    ( P4ir.Expr.(Bin (Eq, Field Sfc_header.to_cpu_flag, const ~width:1 0)),
      [
        P4ir.Control.Run
          [
            P4ir.Action.Assign
              ( Sfc_header.service_index,
                P4ir.Expr.(Field Sfc_header.service_index + const ~width:8 1) );
          ];
      ],
      [] )

let bump_gateways = 1

(* Rename an NF's tables and body to the composed namespace. *)
let renamed_nf (nf : Nf.t) =
  let rename = nf_table_name ~nf:nf.Nf.name in
  let tables = List.map (fun t -> P4ir.Table.rename t (rename (P4ir.Table.name t))) nf.Nf.tables in
  let body =
    (P4ir.Control.map_tables rename (P4ir.Control.make nf.Nf.name nf.Nf.body))
      .P4ir.Control.body
  in
  (tables, body)

(* The block for one sequentially-composed NF. *)
let seq_nf_block (nf : Nf.t) body flags_table =
  match nf.Nf.gate with
  | Nf.On_missing_sfc ->
      ( P4ir.Control.If
          ( P4ir.Expr.Un (P4ir.Expr.LNot, P4ir.Expr.Valid Sfc_header.name),
            [ P4ir.Control.Label (nf.Nf.name, body); bump_index ],
            [] )
        :: [ P4ir.Control.Apply (P4ir.Table.name flags_table) ],
        1 + bump_gateways )
  | Nf.Sfc_indexed ->
      ( [
          P4ir.Control.Apply_switch
            ( check_next_name nf.Nf.name,
              [
                ( proceed_action,
                  [ P4ir.Control.Label (nf.Nf.name, body); bump_index ] );
              ],
              [] );
          P4ir.Control.Apply (P4ir.Table.name flags_table);
        ],
        bump_gateways )

(* Parallel composition: if/else-if ladder, one shared flags check. A
   classifier-style member becomes the no-SFC branch wrapping the whole
   ladder — a packet either has no SFC header yet (classifier runs) or
   matches at most one check_nextNF gate. *)
let par_group_block nfs_with_bodies flags_table =
  let classifiers, indexed =
    List.partition
      (fun ((nf : Nf.t), _) -> nf.Nf.gate = Nf.On_missing_sfc)
      nfs_with_bodies
  in
  let rec ladder = function
    | [] -> []
    | ((nf : Nf.t), body) :: rest ->
        [
          P4ir.Control.Apply_switch
            ( check_next_name nf.Nf.name,
              [
                ( proceed_action,
                  [ P4ir.Control.Label (nf.Nf.name, body); bump_index ] );
              ],
              ladder rest );
        ]
  in
  let inner = ladder indexed in
  let wrapped, extra_gateways =
    List.fold_left
      (fun (block, gw) ((nf : Nf.t), body) ->
        ( [
            P4ir.Control.If
              ( P4ir.Expr.Un (P4ir.Expr.LNot, P4ir.Expr.Valid Sfc_header.name),
                [ P4ir.Control.Label (nf.Nf.name, body); bump_index ],
                block );
          ],
          gw + 1 ))
      (inner, 0) classifiers
  in
  (wrapped @ [ P4ir.Control.Apply (P4ir.Table.name flags_table) ], extra_gateways)

let strip_block =
  let open P4ir.Expr in
  let sfc_present = Valid Sfc_header.name in
  let at_exit =
    Bin
      ( LAnd,
        Bin (Eq, Field Sfc_header.out_port, Field Asic.Stdmeta.egress_port),
        Bin (Neq, Field Sfc_header.out_port, const ~width:9 0) )
  in
  (* A packet that is being dropped or punted keeps its SFC header: the
     control plane needs the path id, index and CPU-reason context. *)
  let at_exit =
    Bin
      ( LAnd,
        at_exit,
        Bin
          ( LAnd,
            Bin (Eq, Field Sfc_header.to_cpu_flag, const ~width:1 0),
            Bin (Eq, Field Sfc_header.drop_flag, const ~width:1 0) ) )
  in
  [
    P4ir.Control.If
      ( Bin (LAnd, sfc_present, at_exit),
        [
          P4ir.Control.If
            ( Bin
                ( Eq,
                  Field Sfc_header.next_protocol,
                  const ~width:8 Sfc_header.next_proto_ipv4 ),
              [
                P4ir.Control.Run
                  [
                    P4ir.Action.Assign
                      (Net_hdrs.eth_ethertype, const ~width:16 Net_hdrs.ethertype_ipv4);
                  ];
              ],
              [
                P4ir.Control.If
                  ( Bin (Eq, Field Sfc_header.next_protocol, const ~width:8 2),
                    [
                      P4ir.Control.Run
                        [
                          P4ir.Action.Assign
                            ( Net_hdrs.eth_ethertype,
                              const ~width:16 Net_hdrs.ethertype_vlan );
                        ];
                    ],
                    [] );
              ] );
          P4ir.Control.Run [ P4ir.Action.Set_invalid Sfc_header.name ];
        ],
        [] );
  ]

let strip_gateways = 3

let build ~spec ~generic_parser ~id ~layout ~nf_of =
  ignore spec;
  let* nfs =
    List.fold_left
      (fun acc name ->
        let* l = acc in
        let* nf = nf_of name in
        Ok (l @ [ nf ]))
      (Ok [])
      (Layout.nfs_of_pipelet layout)
  in
  let renamed = List.map (fun nf -> (nf, renamed_nf nf)) nfs in
  let nf_tables = List.concat_map (fun (_, (tables, _)) -> tables) renamed in
  (* Registers keep their NF-chosen (globally unique) names. *)
  let nf_registers = List.concat_map (fun (nf : Nf.t) -> nf.Nf.registers) nfs in
  let* () =
    let names = List.map P4ir.Register.name nf_registers in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then
      Error
        (Printf.sprintf "compose %s: register name collision between NFs"
           (Format.asprintf "%a" Asic.Pipelet.pp_id id))
    else Ok ()
  in
  let body_of name =
    let _, (_, body) =
      List.find (fun ((nf : Nf.t), _) -> String.equal nf.Nf.name name) renamed
    in
    body
  in
  let nf_by_name name =
    List.find (fun (nf : Nf.t) -> String.equal nf.Nf.name name) nfs
  in
  (* Framework tables. *)
  let check_next_tables =
    List.filter_map
      (fun (nf : Nf.t) ->
        match nf.Nf.gate with
        | Nf.Sfc_indexed -> Some (nf.Nf.name, make_check_next nf.Nf.name)
        | Nf.On_missing_sfc -> None)
      nfs
  in
  let flags_tables = ref [] in
  let fresh_flags tag =
    let t = make_check_flags tag in
    flags_tables := !flags_tables @ [ t ];
    t
  in
  let gateways = ref 0 in
  let* group_blocks =
    List.fold_left
      (fun acc (gi, group) ->
        let* blocks = acc in
        match group with
        | Layout.Seq names ->
            let* block =
              List.fold_left
                (fun acc name ->
                  let* b = acc in
                  let nf = nf_by_name name in
                  let flags = fresh_flags name in
                  let nf_block, gw = seq_nf_block nf (body_of name) flags in
                  gateways := !gateways + gw;
                  Ok (b @ nf_block))
                (Ok []) names
            in
            Ok (blocks @ block)
        | Layout.Par names ->
            let flags = fresh_flags (Printf.sprintf "g%d" gi) in
            let members = List.map (fun n -> (nf_by_name n, body_of n)) names in
            let block, extra_gw = par_group_block members flags in
            gateways :=
              !gateways + (List.length names * bump_gateways) + extra_gw;
            Ok (blocks @ block))
      (Ok [])
      (List.mapi (fun i g -> (i, g)) layout)
  in
  let is_ingress = id.Asic.Pipelet.kind = Asic.Pipelet.Ingress in
  let branching = if is_ingress then Some (make_branching ()) else None in
  let tail =
    if is_ingress then [ P4ir.Control.Apply branching_name ]
    else begin
      gateways := !gateways + strip_gateways;
      strip_block
    end
  in
  let framework_table_list =
    List.map snd check_next_tables
    @ !flags_tables
    @ (match branching with Some b -> [ b ] | None -> [])
  in
  let tables = nf_tables @ framework_table_list in
  let name =
    Printf.sprintf "%s_pipe%d"
      (if is_ingress then "ingress" else "egress")
      id.Asic.Pipelet.pipeline
  in
  let deparse_order =
    List.filter
      (fun h ->
        List.exists
          (fun (d : P4ir.Hdr.decl) -> String.equal d.P4ir.Hdr.name h)
          generic_parser.P4ir.Parser_graph.decls)
      Net_hdrs.deparse_order
  in
  let program =
    P4ir.Program.make ~name ~registers:nf_registers
      ~decls:generic_parser.P4ir.Parser_graph.decls
      ~parser:generic_parser ~tables
      ~control:(P4ir.Control.make (name ^ "_control") (group_blocks @ tail))
      ~deparse_order ()
  in
  let* () = P4ir.Program.validate program in
  Ok
    {
      program;
      framework_tables = List.map P4ir.Table.name framework_table_list;
      check_next_of =
        List.map (fun (nf, t) -> (nf, P4ir.Table.name t)) check_next_tables;
      branching_table = Option.map P4ir.Table.name branching;
      framework_gateways = !gateways;
    }
