let eth =
  P4ir.Hdr.decl "eth" [ ("dst", 48); ("src", 48); ("ethertype", 16) ]

let vlan =
  P4ir.Hdr.decl "vlan" [ ("pcp", 3); ("dei", 1); ("vid", 12); ("ethertype", 16) ]

let ipv4 =
  P4ir.Hdr.decl "ipv4"
    [
      ("version", 4);
      ("ihl", 4);
      ("dscp", 6);
      ("ecn", 2);
      ("total_len", 16);
      ("ident", 16);
      ("flags", 3);
      ("frag_offset", 13);
      ("ttl", 8);
      ("protocol", 8);
      ("checksum", 16);
      ("src_addr", 32);
      ("dst_addr", 32);
    ]

let tcp =
  P4ir.Hdr.decl "tcp"
    [
      ("src_port", 16);
      ("dst_port", 16);
      ("seq", 32);
      ("ack", 32);
      ("data_off", 4);
      ("reserved", 3);
      ("flags", 9);
      ("window", 16);
      ("checksum", 16);
      ("urgent", 16);
    ]

let udp =
  P4ir.Hdr.decl "udp"
    [ ("src_port", 16); ("dst_port", 16); ("length", 16); ("checksum", 16) ]

let vxlan =
  P4ir.Hdr.decl "vxlan"
    [ ("flags", 8); ("reserved1", 24); ("vni", 24); ("reserved2", 8) ]

(* Inner (overlay) copies of the outer layouts under distinct names. *)
let clone_decl name (d : P4ir.Hdr.decl) =
  P4ir.Hdr.decl name
    (List.map (fun (f : P4ir.Hdr.field) -> (f.P4ir.Hdr.name, f.P4ir.Hdr.width)) d.P4ir.Hdr.fields)

let inner_eth = clone_decl "inner_eth" eth
let inner_ipv4 = clone_decl "inner_ipv4" ipv4
let inner_tcp = clone_decl "inner_tcp" tcp
let inner_udp = clone_decl "inner_udp" udp

let all_decls =
  [
    eth; Sfc_header.decl; vlan; ipv4; tcp; udp; vxlan; inner_eth; inner_ipv4;
    inner_tcp; inner_udp;
  ]

let ethertype_ipv4 = Netpkt.Eth.ethertype_ipv4
let ethertype_vlan = Netpkt.Eth.ethertype_vlan
let ethertype_sfc = Netpkt.Eth.ethertype_sfc

let proto_tcp = Netpkt.Ipv4.proto_tcp
let proto_udp = Netpkt.Ipv4.proto_udp

let r h f = P4ir.Fieldref.v h f
let eth_ethertype = r "eth" "ethertype"
let eth_src = r "eth" "src"
let eth_dst = r "eth" "dst"
let vlan_vid = r "vlan" "vid"
let ip_src = r "ipv4" "src_addr"
let ip_dst = r "ipv4" "dst_addr"
let ip_proto = r "ipv4" "protocol"
let ip_ttl = r "ipv4" "ttl"
let tcp_sport = r "tcp" "src_port"
let tcp_dport = r "tcp" "dst_port"
let udp_sport = r "udp" "src_port"
let udp_dport = r "udp" "dst_port"

let gid header offset = Printf.sprintf "%s@%d" header offset

(* SFC next-protocol discriminators (byte 19 of the SFC header). *)
let sfc_next_ipv4 = Int64.of_int Sfc_header.next_proto_ipv4
let sfc_next_vlan = 2L

let udp_port_vxlan = 4789

let base_parser ?(with_vlan = false) ?(with_l4 = true) ?(with_vxlan = false)
    ~name () =
  let open P4ir.Parser_graph in
  let states = ref [] in
  let add s = states := s :: !states in
  (* The VXLAN overlay under a UDP header at [off]: vxlan, inner
     Ethernet, inner IPv4, inner transport. *)
  let overlay_after_udp udp_off =
    let vx = udp_off + 8 in
    let ie = vx + 8 in
    let ii = ie + 14 in
    let il = ii + 20 in
    add { id = gid "inner_tcp" il; header = "inner_tcp"; offset = il; select = None };
    add { id = gid "inner_udp" il; header = "inner_udp"; offset = il; select = None };
    add
      {
        id = gid "inner_ipv4" ii;
        header = "inner_ipv4";
        offset = ii;
        select =
          Some
            {
              on = [ r "inner_ipv4" "protocol" ];
              cases =
                [
                  { values = [ Int64.of_int proto_tcp ]; next = Goto (gid "inner_tcp" il) };
                  { values = [ Int64.of_int proto_udp ]; next = Goto (gid "inner_udp" il) };
                ];
              default = Accept;
            };
      };
    add
      {
        id = gid "inner_eth" ie;
        header = "inner_eth";
        offset = ie;
        select =
          Some
            {
              on = [ r "inner_eth" "ethertype" ];
              cases =
                [ { values = [ Int64.of_int ethertype_ipv4 ]; next = Goto (gid "inner_ipv4" ii) } ];
              default = Accept;
            };
      };
    add
      {
        id = gid "vxlan" vx;
        header = "vxlan";
        offset = vx;
        select =
          Some
            { on = []; cases = []; default = Goto (gid "inner_eth" ie) };
      };
    Goto (gid "vxlan" vx)
  in
  (* IPv4 (and optional transport) at a given offset. [overlay] opens
     the VXLAN branch under this stack's UDP. *)
  let ipv4_at ?(overlay = false) off =
    let id = gid "ipv4" off in
    if with_l4 then begin
      let tcp_off = off + 20 and udp_off = off + 20 in
      add
        {
          id;
          header = "ipv4";
          offset = off;
          select =
            Some
              {
                on = [ ip_proto ];
                cases =
                  [
                    { values = [ Int64.of_int proto_tcp ]; next = Goto (gid "tcp" tcp_off) };
                    { values = [ Int64.of_int proto_udp ]; next = Goto (gid "udp" udp_off) };
                  ];
                default = Accept;
              };
        };
      add { id = gid "tcp" tcp_off; header = "tcp"; offset = tcp_off; select = None };
      let udp_select =
        if overlay then
          Some
            {
              on = [ udp_dport ];
              cases =
                [ { values = [ Int64.of_int udp_port_vxlan ]; next = overlay_after_udp udp_off } ];
              default = Accept;
            }
        else None
      in
      add { id = gid "udp" udp_off; header = "udp"; offset = udp_off; select = udp_select }
    end
    else add { id; header = "ipv4"; offset = off; select = None };
    Goto id
  in
  let vlan_at off =
    let id = gid "vlan" off in
    add
      {
        id;
        header = "vlan";
        offset = off;
        select =
          Some
            {
              on = [ r "vlan" "ethertype" ];
              cases =
                [ { values = [ Int64.of_int ethertype_ipv4 ]; next = ipv4_at (off + 4) } ];
              default = Accept;
            };
      };
    Goto id
  in
  let sfc_cases =
    {
      values = [ sfc_next_ipv4 ];
      next = ipv4_at ~overlay:with_vxlan (14 + Sfc_header.byte_size);
    }
    :: (if with_vlan then
          [ { values = [ sfc_next_vlan ]; next = vlan_at (14 + Sfc_header.byte_size) } ]
        else [])
  in
  add
    {
      id = gid "sfc" 14;
      header = Sfc_header.name;
      offset = 14;
      select =
        Some
          { on = [ Sfc_header.next_protocol ]; cases = sfc_cases; default = Accept };
    };
  let eth_cases =
    [
      { values = [ Int64.of_int ethertype_sfc ]; next = Goto (gid "sfc" 14) };
      {
        values = [ Int64.of_int ethertype_ipv4 ];
        next = ipv4_at ~overlay:with_vxlan 14;
      };
    ]
    @ (if with_vlan then
         [ { values = [ Int64.of_int ethertype_vlan ]; next = vlan_at 14 } ]
       else [])
  in
  add
    {
      id = gid "eth" 0;
      header = "eth";
      offset = 0;
      select = Some { on = [ eth_ethertype ]; cases = eth_cases; default = Accept };
    };
  let decls =
    [ eth; Sfc_header.decl; ipv4 ]
    @ (if with_vlan then [ vlan ] else [])
    @ (if with_l4 then [ tcp; udp ] else [])
    @ if with_vxlan then [ vxlan; inner_eth; inner_ipv4; inner_tcp; inner_udp ]
      else []
  in
  { name; decls; start = Goto (gid "eth" 0); states = List.rev !states }

let deparse_order =
  [
    "eth"; Sfc_header.name; "vlan"; "ipv4"; "tcp"; "udp"; "vxlan"; "inner_eth";
    "inner_ipv4"; "inner_tcp"; "inner_udp";
  ]
