(** NF composition (§3.2): turn a pipelet's layout into a single loadable
    program.

    Every NF body is wrapped in Dejavu machinery (Fig. 5): a
    [check_nextNF] gate keyed on (service path id, service index), an
    index bump after the NF, and a [check_sfcFlags] table translating the
    SFC header's flags into platform metadata. Sequential group members
    run back to back; parallel group members share an if/else-if ladder
    so only one runs per pass. Ingress programs end with the branching
    table (§3.4); egress programs end with the SFC strip logic that fires
    on the final pass. *)

type built = {
  program : P4ir.Program.t;
  framework_tables : string list;
      (** names of all Dejavu-generated tables in this program *)
  check_next_of : (string * string) list;
      (** NF name -> its check_nextNF table name *)
  branching_table : string option;  (** ingress pipelets only *)
  framework_gateways : int;
      (** [If] conditions added by the framework (not by NF bodies) *)
}

val nf_table_name : nf:string -> string -> string
(** How NF tables are renamed on composition: ["<nf>__<table>"]. *)

val check_next_name : string -> string
val check_flags_name : string -> string
val branching_name : string

val proceed_action : string
(** The action name [check_nextNF] runs when the NF is next. *)

(** Branching-table action names. *)

val act_to_out : string
val act_to_port : string
val act_resubmit : string
val act_to_cpu : string

val build :
  spec:Asic.Spec.t ->
  generic_parser:P4ir.Parser_graph.t ->
  id:Asic.Pipelet.id ->
  layout:Layout.pipelet_layout ->
  nf_of:(string -> (Nf.t, string) result) ->
  (built, string) result
(** Build the program for one pipelet. Pipelets with an empty layout
    still get the generic parser plus the branching table (ingress) or
    strip block (egress), so recirculated traffic keeps flowing. *)
