type t = { w : int; v : int64 }

let mask w = if w >= 64 then -1L else Int64.(sub (shift_left 1L w) 1L)

let make ~width v =
  if width < 1 || width > 64 then
    invalid_arg (Printf.sprintf "Bitval.make: width %d not in 1..64" width);
  { w = width; v = Int64.logand v (mask width) }

let of_int ~width v = make ~width (Int64.of_int v)
let zero w = make ~width:w 0L
let one w = make ~width:w 1L
let max_value w = make ~width:w (-1L)
let width t = t.w
let to_int64 t = t.v

let to_int t =
  if t.v < 0L || t.v > Int64.of_int max_int then
    invalid_arg "Bitval.to_int: value exceeds int range"
  else Int64.to_int t.v

let to_bool t = t.v <> 0L
let of_bool b = make ~width:1 (if b then 1L else 0L)
let resize t w = make ~width:w t.v

let lift2 f a b =
  let b = resize b a.w in
  make ~width:a.w (f a.v b.v)

let add = lift2 Int64.add
let sub = lift2 Int64.sub
let mul = lift2 Int64.mul
let logand = lift2 Int64.logand
let logor = lift2 Int64.logor
let logxor = lift2 Int64.logxor
let lognot t = make ~width:t.w (Int64.lognot t.v)

let shift_left t n =
  if n >= 64 then zero t.w else make ~width:t.w (Int64.shift_left t.v n)

let shift_right t n =
  if n >= 64 then zero t.w else make ~width:t.w (Int64.shift_right_logical t.v n)

let equal a b = a.w = b.w && Int64.equal a.v b.v
let equal_value a b = Int64.equal a.v b.v

let compare_unsigned a b = Int64.unsigned_compare a.v b.v
let lt a b = compare_unsigned a b < 0
let le a b = compare_unsigned a b <= 0

let slice t ~hi ~lo =
  if lo < 0 || hi < lo || hi >= t.w then
    invalid_arg
      (Printf.sprintf "Bitval.slice: [%d:%d] out of bit<%d>" hi lo t.w);
  make ~width:(hi - lo + 1) (Int64.shift_right_logical t.v lo)

let concat a b =
  if a.w + b.w > 64 then invalid_arg "Bitval.concat: width exceeds 64";
  make ~width:(a.w + b.w) Int64.(logor (shift_left a.v b.w) b.v)

let mask_of_prefix ~width n =
  if n < 0 || n > width then invalid_arg "Bitval.mask_of_prefix";
  if n = 0 then zero width
  else make ~width Int64.(shift_left (mask n) (width - n))

let to_string t = Printf.sprintf "%Lu/w%d" t.v t.w
let pp ppf t = Format.pp_print_string ppf (to_string t)
