lib/p4ir/table.ml: Action Bitval Fieldref Format List Option Phv Printf String
