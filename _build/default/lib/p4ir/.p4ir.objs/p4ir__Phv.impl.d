lib/p4ir/phv.ml: Bitval Fieldref Format Hashtbl Hdr List Printf
