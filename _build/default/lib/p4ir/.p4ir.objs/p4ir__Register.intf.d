lib/p4ir/register.mli: Bitval Format
