lib/p4ir/action.ml: Bitval Expr Fieldref Format List Phv Printf Register String
