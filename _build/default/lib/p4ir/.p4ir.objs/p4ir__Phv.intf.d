lib/p4ir/phv.mli: Bitval Fieldref Format Hdr
