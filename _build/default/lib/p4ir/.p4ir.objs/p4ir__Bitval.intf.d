lib/p4ir/bitval.mli: Format
