lib/p4ir/control.mli: Action Expr Format Phv Table
