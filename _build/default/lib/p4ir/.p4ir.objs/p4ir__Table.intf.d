lib/p4ir/table.mli: Action Bitval Fieldref Format Phv
