lib/p4ir/expr.mli: Bitval Fieldref Format Phv
