lib/p4ir/deps.mli: Control Fieldref Format
