lib/p4ir/hdr.ml: Bitval Format Hashtbl List Netpkt Printf String
