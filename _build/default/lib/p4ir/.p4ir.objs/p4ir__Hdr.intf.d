lib/p4ir/hdr.mli: Bitval Bytes Format
