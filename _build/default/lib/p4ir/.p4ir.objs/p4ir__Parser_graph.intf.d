lib/p4ir/parser_graph.mli: Bytes Fieldref Format Hdr Phv
