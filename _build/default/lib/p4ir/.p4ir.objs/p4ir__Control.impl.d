lib/p4ir/control.ml: Action Expr Format Hashtbl List Printf Table
