lib/p4ir/expr.ml: Bitval Bytes Fieldref Format Int64 List Netpkt Phv Printf Stdlib
