lib/p4ir/program.ml: Action Control Format Hdr List Parser_graph Printf Register Resources Result String Table
