lib/p4ir/resources.ml: Action Control Deps Format List Printf Table
