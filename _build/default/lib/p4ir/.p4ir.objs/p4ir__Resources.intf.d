lib/p4ir/resources.mli: Control Format Table
