lib/p4ir/register.ml: Array Bitval Format
