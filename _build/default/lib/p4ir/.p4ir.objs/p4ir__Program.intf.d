lib/p4ir/program.mli: Action Control Format Hdr Parser_graph Phv Register Resources Table
