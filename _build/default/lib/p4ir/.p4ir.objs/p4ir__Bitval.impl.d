lib/p4ir/bitval.ml: Format Int64 Printf
