lib/p4ir/deps.ml: Action Control Expr Fieldref Format Hashtbl List Printf Table
