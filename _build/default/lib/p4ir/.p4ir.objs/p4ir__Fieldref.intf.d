lib/p4ir/fieldref.mli: Format Set
