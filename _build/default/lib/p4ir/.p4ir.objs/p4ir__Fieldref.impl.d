lib/p4ir/fieldref.ml: Format Printf Set String
