lib/p4ir/action.mli: Bitval Expr Fieldref Format Phv Register
