lib/p4ir/parser_graph.ml: Bitval Bytes Fieldref Format Hashtbl Hdr Int64 List Option Phv Printf Result String
