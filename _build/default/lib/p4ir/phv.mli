(** The packet header vector: every header instance (and metadata header)
    a packet carries through a pipeline, addressed by {!Fieldref.t}. *)

type t

val create : Hdr.decl list -> t
(** Fresh PHV with an invalid instance per declaration. Raises on
    duplicate declaration names. *)

val add_decl : t -> Hdr.decl -> unit
(** Add another (invalid) instance; no-op when the same declaration is
    already present, raises when a different one with the same name is. *)

val decls : t -> Hdr.decl list
val inst : t -> string -> Hdr.inst
(** Raises [Not_found]. *)

val has : t -> string -> bool
val is_valid : t -> string -> bool
(** [false] when the header is absent entirely. *)

val set_valid : t -> string -> unit
val set_invalid : t -> string -> unit
val get : t -> Fieldref.t -> Bitval.t
(** Raises [Not_found] for unknown header or field. *)

val get_int : t -> Fieldref.t -> int
val set : t -> Fieldref.t -> Bitval.t -> unit
val set_int : t -> Fieldref.t -> int -> unit
(** Resizes to the declared width. *)

val copy : t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
