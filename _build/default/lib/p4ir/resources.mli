(** MAU resource vectors and the resource-estimation pass that plays the
    role of the Tofino compiler's resource report — the paper's composer
    consumes exactly this kind of report to decide pipelet sharing. *)

type t = {
  stages : int;
  table_ids : int;
  srams : int;  (** SRAM blocks *)
  tcams : int;  (** TCAM blocks *)
  crossbar_bytes : int;
  vliws : int;  (** VLIW instruction slots *)
  gateways : int;
  hash_bits : int;
}

val zero : t
val add : t -> t -> t
val max_merge : t -> t -> t
(** Componentwise max — what parallel composition needs, because parallel
    branches can share MAU stages. *)

val sum : t list -> t
val fits : t -> cap:t -> bool
val scale : int -> t -> t
val utilization : t -> total:t -> (string * float) list
(** Percentage per resource class (stages, table IDs, ...). *)

(** Per-stage capacities of the modeled switch. *)
type stage_caps = {
  cap_table_ids : int;
  cap_srams : int;
  cap_tcams : int;
  cap_crossbar_bytes : int;
  cap_vliws : int;
  cap_gateways : int;
  cap_hash_bits : int;
}

val tofino_stage_caps : stage_caps
(** Tofino-class per-stage capacities (16 logical tables, 80 SRAM blocks,
    24 TCAM blocks, 128 crossbar bytes, 32 VLIW slots, 16 gateways,
    416 hash bits). *)

val sram_block_bits : int
val tcam_block_entries : int
val tcam_block_width : int

val of_table : Table.t -> t
(** Resource demand of one table (stages = 1): SRAM blocks for exact
    match (keys + action data + overhead, by table capacity), TCAM blocks
    for ternary/LPM/range, one table ID, crossbar bytes for the key,
    one VLIW slot per action, hash bits for exact keys. *)

val of_control : Control.table_env -> Control.t -> t
(** Whole-control demand: tables summed, stages from {!Deps.min_stages},
    gateways from the control structure. *)

val pp : Format.formatter -> t -> unit
val pp_row : Format.formatter -> t -> unit
(** One-line rendering for report tables. *)
