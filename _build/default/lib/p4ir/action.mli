(** Actions: named, parameterized sequences of primitive operations. *)

type prim =
  | Assign of Fieldref.t * Expr.t
  | Set_valid of string
  | Set_invalid of string
  | Reg_read of Fieldref.t * string * Expr.t
      (** [dst = reg[index]]; the index is masked to the register size *)
  | Reg_write of string * Expr.t * Expr.t  (** [reg[index] = value] *)
  | No_op

type t = {
  name : string;
  params : (string * int) list;  (** action-data parameters: name, width *)
  body : prim list;
}

val make : string -> ?params:(string * int) list -> prim list -> t
val no_op : t
(** The conventional ["NoAction"]. *)

type reg_env = string -> Register.t option
(** Register lookup supplied by the enclosing program. *)

val no_regs : reg_env

val run : ?regs:reg_env -> t -> args:Bitval.t list -> Phv.t -> unit
(** Binds [args] to [params] positionally (widths enforced) and executes
    the body. Raises [Invalid_argument] on arity mismatch or on a
    register primitive whose register [regs] does not know. *)

val registers_used : t -> string list

val reads : t -> Fieldref.Set.t
(** Fields read by the body's expressions. Register accesses read the
    pseudo-field ["$reg.<name>"]. *)

val writes : t -> Fieldref.Set.t
(** Fields written ([Set_valid]/[Set_invalid] count as writing
    ["<hdr>.$valid"]; any register access also writes ["$reg.<name>"],
    conservatively serializing tables that share a register — on the
    hardware they would have to share its stage). *)

val pp : Format.formatter -> t -> unit
val pp_prim : Format.formatter -> prim -> unit
