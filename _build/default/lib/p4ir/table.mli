(** Match-action tables: the unit a MAU stage executes. *)

type match_kind = Exact | Ternary | Lpm | Range

type key = { field : Fieldref.t; kind : match_kind; width : int }

type pattern =
  | M_exact of Bitval.t
  | M_ternary of { value : Bitval.t; mask : Bitval.t }
  | M_lpm of { value : Bitval.t; prefix_len : int }
  | M_range of { lo : Bitval.t; hi : Bitval.t }
  | M_any

type entry = {
  priority : int;  (** larger wins; LPM entries also rank by prefix length *)
  patterns : pattern list;
  action : string;
  args : Bitval.t list;
}

type t

val make :
  name:string ->
  keys:key list ->
  actions:Action.t list ->
  default:string * Bitval.t list ->
  ?max_size:int ->
  unit ->
  t
(** Raises [Invalid_argument] when the default action is not among
    [actions]. [max_size] defaults to 1024. *)

val name : t -> string
val keys : t -> key list
val actions : t -> Action.t list
val default : t -> string * Bitval.t list
val max_size : t -> int
val entries : t -> entry list
val size : t -> int
val rename : t -> string -> t
(** Same definition and shared entry store under a new name. *)

val find_action : t -> string -> Action.t option

val add_entry : t -> entry -> (unit, string) result
(** Validates pattern arity against keys, pattern kind against match kind,
    action existence and argument arity, and capacity. *)

val add_entry_exn : t -> entry -> unit
val clear : t -> unit

val matches : entry -> Bitval.t list -> bool
(** Does the entry match these key values? (Exposed for testing.) *)

val lookup : t -> Phv.t -> [ `Hit of entry | `Miss ]
(** Highest priority wins; among equal priorities the longest LPM prefix,
    then earliest insertion. *)

val apply : ?regs:Action.reg_env -> t -> Phv.t -> string * bool
(** Run the matching entry's action (or the default on miss) against the
    PHV. Returns [(action_run, hit)]. *)

val key_bits : t -> int
(** Total match key width in bits. *)

val pp : Format.formatter -> t -> unit
