type t = { hdr : string; field : string }

let v hdr field = { hdr; field }

let of_string s =
  match String.index_opt s '.' with
  | Some i when i > 0 && i < String.length s - 1 ->
      {
        hdr = String.sub s 0 i;
        field = String.sub s (i + 1) (String.length s - i - 1);
      }
  | _ -> invalid_arg (Printf.sprintf "Fieldref.of_string: %S" s)

let to_string t = t.hdr ^ "." ^ t.field
let equal a b = String.equal a.hdr b.hdr && String.equal a.field b.field

let compare a b =
  let c = String.compare a.hdr b.hdr in
  if c <> 0 then c else String.compare a.field b.field

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
