type kind = Match_dep | Action_dep | Successor_dep

type node = {
  table : string;
  reads : Fieldref.Set.t;
  writes : Fieldref.Set.t;
}

let table_reads table =
  let key_reads =
    List.fold_left
      (fun acc (k : Table.key) -> Fieldref.Set.add k.Table.field acc)
      Fieldref.Set.empty (Table.keys table)
  in
  List.fold_left
    (fun acc a -> Fieldref.Set.union acc (Action.reads a))
    key_reads (Table.actions table)

let table_writes table =
  List.fold_left
    (fun acc a -> Fieldref.Set.union acc (Action.writes a))
    Fieldref.Set.empty (Table.actions table)

let nodes_of_control env control =
  let get name =
    match env name with
    | Some t -> t
    | None -> invalid_arg (Printf.sprintf "Deps: unknown table %s" name)
  in
  let out = ref [] in
  let add guard name =
    let table = get name in
    out :=
      {
        table = name;
        reads = Fieldref.Set.union guard (table_reads table);
        writes = table_writes table;
      }
      :: !out
  in
  let rec walk_block guard block = List.iter (walk guard) block
  and walk guard = function
    | Control.Apply name -> add guard name
    | Control.Apply_hit (name, a, b) ->
        add guard name;
        (* Branch tables additionally depend on the guarding table's
           result; the result is not a field, so the successor relation is
           captured purely by program order. *)
        walk_block guard a;
        walk_block guard b
    | Control.Apply_switch (name, branches, default) ->
        add guard name;
        List.iter (fun (_, blk) -> walk_block guard blk) branches;
        walk_block guard default
    | Control.If (cond, a, b) ->
        let guard = Fieldref.Set.union guard (Expr.reads cond) in
        walk_block guard a;
        walk_block guard b
    | Control.Run _ -> ()
    | Control.Label (_, blk) -> walk_block guard blk
  in
  walk_block Fieldref.Set.empty control.Control.body;
  List.rev !out

let dep_between earlier later =
  if not (Fieldref.Set.is_empty (Fieldref.Set.inter earlier.writes later.reads))
  then Some Match_dep
  else if
    not (Fieldref.Set.is_empty (Fieldref.Set.inter earlier.writes later.writes))
  then Some Action_dep
  else Some Successor_dep

let stage_gap = function Match_dep | Action_dep -> 1 | Successor_dep -> 0

let min_stages env control =
  let nodes = nodes_of_control env control in
  let stages = Hashtbl.create 16 in
  let rec assign acc = function
    | [] -> List.rev acc
    | node :: rest ->
        let stage =
          List.fold_left
            (fun acc prev ->
              let prev_stage = Hashtbl.find stages prev.table in
              match dep_between prev node with
              | Some k -> max acc (prev_stage + stage_gap k)
              | None -> acc)
            0
            (List.filteri (fun i _ -> i < List.length acc) nodes)
        in
        Hashtbl.replace stages node.table stage;
        assign ((node.table, stage) :: acc) rest
  in
  let assigned = assign [] nodes in
  let total =
    List.fold_left (fun acc (_, s) -> max acc (s + 1)) 0 assigned
  in
  (assigned, total)

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Match_dep -> "match"
    | Action_dep -> "action"
    | Successor_dep -> "successor")
