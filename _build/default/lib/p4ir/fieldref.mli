(** Qualified references to header fields, e.g. [ipv4.dst_addr]. *)

type t = { hdr : string; field : string }

val v : string -> string -> t
val of_string : string -> t
(** Parses ["hdr.field"]. Raises [Invalid_argument] otherwise. *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
