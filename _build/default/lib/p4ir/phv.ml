type t = { insts : (string, Hdr.inst) Hashtbl.t; mutable order : string list }

let add_decl t (d : Hdr.decl) =
  match Hashtbl.find_opt t.insts d.Hdr.name with
  | Some existing ->
      if not (Hdr.equal_decl (Hdr.decl_of existing) d) then
        invalid_arg
          (Printf.sprintf "Phv.add_decl: conflicting declaration for %s"
             d.Hdr.name)
  | None ->
      Hashtbl.replace t.insts d.Hdr.name (Hdr.inst d);
      t.order <- t.order @ [ d.Hdr.name ]

let create decls =
  let t = { insts = Hashtbl.create 16; order = [] } in
  List.iter
    (fun (d : Hdr.decl) ->
      if Hashtbl.mem t.insts d.Hdr.name then
        invalid_arg
          (Printf.sprintf "Phv.create: duplicate declaration %s" d.Hdr.name)
      else add_decl t d)
    decls;
  t

let decls t = List.map (fun n -> Hdr.decl_of (Hashtbl.find t.insts n)) t.order

let inst t name =
  match Hashtbl.find_opt t.insts name with
  | Some i -> i
  | None -> raise Not_found

let has t name = Hashtbl.mem t.insts name
let is_valid t name = match Hashtbl.find_opt t.insts name with
  | Some i -> Hdr.is_valid i
  | None -> false

let set_valid t name = Hdr.set_valid (inst t name)
let set_invalid t name = Hdr.set_invalid (inst t name)
let get t (r : Fieldref.t) = Hdr.get (inst t r.Fieldref.hdr) r.Fieldref.field
let get_int t r = Bitval.to_int (get t r)
let set t (r : Fieldref.t) v = Hdr.set (inst t r.Fieldref.hdr) r.Fieldref.field v

let set_int t r v =
  let w = Hdr.field_width (Hdr.decl_of (inst t r.Fieldref.hdr)) r.Fieldref.field in
  set t r (Bitval.of_int ~width:w v)

let copy t =
  let insts = Hashtbl.create (Hashtbl.length t.insts) in
  Hashtbl.iter (fun k v -> Hashtbl.replace insts k (Hdr.copy v)) t.insts;
  { insts; order = t.order }

let equal a b =
  List.length a.order = List.length b.order
  && List.for_all
       (fun name ->
         match Hashtbl.find_opt b.insts name with
         | Some bi -> Hdr.equal_inst (Hashtbl.find a.insts name) bi
         | None -> false)
       a.order

let pp ppf t =
  List.iter
    (fun name ->
      let i = Hashtbl.find t.insts name in
      if Hdr.is_valid i then Format.fprintf ppf "%a@\n" Hdr.pp_inst i)
    t.order
