type match_kind = Exact | Ternary | Lpm | Range
type key = { field : Fieldref.t; kind : match_kind; width : int }

type pattern =
  | M_exact of Bitval.t
  | M_ternary of { value : Bitval.t; mask : Bitval.t }
  | M_lpm of { value : Bitval.t; prefix_len : int }
  | M_range of { lo : Bitval.t; hi : Bitval.t }
  | M_any

type entry = {
  priority : int;
  patterns : pattern list;
  action : string;
  args : Bitval.t list;
}

type store = { mutable entries : entry list; mutable next_seq : int }

type t = {
  name : string;
  keys : key list;
  actions : Action.t list;
  default : string * Bitval.t list;
  max_size : int;
  store : store;
  (* Sequence numbers parallel to [store.entries], for stable tie-breaks. *)
  mutable seqs : (entry * int) list;
}

let make ~name ~keys ~actions ~default ?(max_size = 1024) () =
  let dname, dargs = default in
  (match List.find_opt (fun (a : Action.t) -> String.equal a.Action.name dname) actions with
  | None ->
      invalid_arg
        (Printf.sprintf "Table.make %s: default action %s not declared" name dname)
  | Some a ->
      if List.length a.Action.params <> List.length dargs then
        invalid_arg
          (Printf.sprintf "Table.make %s: default action %s arity mismatch" name
             dname));
  {
    name;
    keys;
    actions;
    default;
    max_size;
    store = { entries = []; next_seq = 0 };
    seqs = [];
  }

let name t = t.name
let keys t = t.keys
let actions t = t.actions
let default t = t.default
let max_size t = t.max_size
let entries t = t.store.entries
let size t = List.length t.store.entries
let rename t name = { t with name }

let find_action t aname =
  List.find_opt (fun (a : Action.t) -> String.equal a.Action.name aname) t.actions

let pattern_kind_ok kind pattern =
  match (kind, pattern) with
  | _, M_any -> true
  | Exact, M_exact _ -> true
  | Ternary, (M_exact _ | M_ternary _) -> true
  | Lpm, (M_exact _ | M_lpm _) -> true
  | Range, (M_exact _ | M_range _) -> true
  | (Exact | Ternary | Lpm | Range), _ -> false

let add_entry t entry =
  if size t >= t.max_size then
    Error (Printf.sprintf "table %s: capacity %d exceeded" t.name t.max_size)
  else if List.length entry.patterns <> List.length t.keys then
    Error
      (Printf.sprintf "table %s: %d patterns for %d keys" t.name
         (List.length entry.patterns) (List.length t.keys))
  else if
    not (List.for_all2 (fun k p -> pattern_kind_ok k.kind p) t.keys entry.patterns)
  then Error (Printf.sprintf "table %s: pattern kind mismatch" t.name)
  else
    match find_action t entry.action with
    | None -> Error (Printf.sprintf "table %s: unknown action %s" t.name entry.action)
    | Some a ->
        if List.length a.Action.params <> List.length entry.args then
          Error
            (Printf.sprintf "table %s: action %s expects %d args, got %d" t.name
               entry.action
               (List.length a.Action.params)
               (List.length entry.args))
        else begin
          t.store.entries <- t.store.entries @ [ entry ];
          t.seqs <- t.seqs @ [ (entry, t.store.next_seq) ];
          t.store.next_seq <- t.store.next_seq + 1;
          Ok ()
        end

let add_entry_exn t entry =
  match add_entry t entry with Ok () -> () | Error e -> invalid_arg e

let clear t =
  t.store.entries <- [];
  t.seqs <- []

let pattern_matches pattern value =
  match pattern with
  | M_any -> true
  | M_exact v -> Bitval.equal_value v value
  | M_ternary { value = v; mask } ->
      Bitval.equal_value (Bitval.logand value mask) (Bitval.logand v mask)
  | M_lpm { value = v; prefix_len } ->
      let mask = Bitval.mask_of_prefix ~width:(Bitval.width value) prefix_len in
      Bitval.equal_value (Bitval.logand value mask) (Bitval.logand (Bitval.resize v (Bitval.width value)) mask)
  | M_range { lo; hi } -> Bitval.le lo value && Bitval.le value hi

let matches entry values =
  List.for_all2 pattern_matches entry.patterns values

let lpm_len entry =
  (* Longest prefix across LPM patterns; exact = full width. *)
  List.fold_left
    (fun acc p ->
      match p with
      | M_lpm { prefix_len; _ } -> acc + prefix_len
      | M_exact v -> acc + Bitval.width v
      | M_ternary _ | M_range _ | M_any -> acc)
    0 entry.patterns

let lookup t phv =
  let values = List.map (fun k -> Phv.get phv k.field) t.keys in
  let candidates =
    List.filter_map
      (fun (e, seq) -> if matches e values then Some (e, seq) else None)
      t.seqs
  in
  let better (e1, s1) (e2, s2) =
    if e1.priority <> e2.priority then e1.priority > e2.priority
    else if lpm_len e1 <> lpm_len e2 then lpm_len e1 > lpm_len e2
    else s1 < s2
  in
  match candidates with
  | [] -> `Miss
  | first :: rest ->
      let best = List.fold_left (fun b c -> if better c b then c else b) first rest in
      `Hit (fst best)

let apply ?(regs = Action.no_regs) t phv =
  match lookup t phv with
  | `Hit entry ->
      let action = Option.get (find_action t entry.action) in
      Action.run ~regs action ~args:entry.args phv;
      (entry.action, true)
  | `Miss ->
      let dname, dargs = t.default in
      let action = Option.get (find_action t dname) in
      Action.run ~regs action ~args:dargs phv;
      (dname, false)

let key_bits t = List.fold_left (fun acc k -> acc + k.width) 0 t.keys

let pp ppf t =
  let kind_str = function
    | Exact -> "exact"
    | Ternary -> "ternary"
    | Lpm -> "lpm"
    | Range -> "range"
  in
  Format.fprintf ppf "@[<v 2>table %s {@,keys = {" t.name;
  List.iter
    (fun k -> Format.fprintf ppf " %a:%s;" Fieldref.pp k.field (kind_str k.kind))
    t.keys;
  Format.fprintf ppf " }@,actions = {%s}@,default = %s@,size = %d/%d@]@,}"
    (String.concat "; " (List.map (fun (a : Action.t) -> a.Action.name) t.actions))
    (fst t.default) (size t) t.max_size
