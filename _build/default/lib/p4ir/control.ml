type stmt =
  | Apply of string
  | Apply_hit of string * block * block
  | Apply_switch of string * (string * block) list * block
  | If of Expr.t * block * block
  | Run of Action.prim list
  | Label of string * block

and block = stmt list

type t = { name : string; body : block }

let make name body = { name; body }

type table_env = string -> Table.t option

type trace_event =
  | T_table of string * string * bool
  | T_gateway of string * bool
  | T_enter of string

let find_table env name =
  match env name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Control.exec: unknown table %s" name)

let exec ?trace ?(regs = Action.no_regs) env t phv =
  let record ev = match trace with Some r -> r := ev :: !r | None -> () in
  let apply name =
    let table = find_table env name in
    let action_run, hit = Table.apply ~regs table phv in
    record (T_table (name, action_run, hit));
    (action_run, hit)
  in
  let rec run_block block = List.iter run_stmt block
  and run_stmt = function
    | Apply name -> ignore (apply name)
    | Apply_hit (name, then_, else_) ->
        let _, hit = apply name in
        run_block (if hit then then_ else else_)
    | Apply_switch (name, branches, default) -> (
        let action_run, _ = apply name in
        match List.assoc_opt action_run branches with
        | Some block -> run_block block
        | None -> run_block default)
    | If (cond, then_, else_) ->
        let v = Expr.eval_bool { Expr.phv; params = [] } cond in
        record (T_gateway (Format.asprintf "%a" Expr.pp cond, v));
        run_block (if v then then_ else else_)
    | Run prims ->
        Action.run ~regs (Action.make "$inline" prims) ~args:[] phv
    | Label (name, block) ->
        record (T_enter name);
        run_block block
  in
  run_block t.body

let tables_used t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end
  in
  let rec walk_block block = List.iter walk block
  and walk = function
    | Apply name -> add name
    | Apply_hit (name, a, b) ->
        add name;
        walk_block a;
        walk_block b
    | Apply_switch (name, branches, default) ->
        add name;
        List.iter (fun (_, blk) -> walk_block blk) branches;
        walk_block default
    | If (_, a, b) ->
        walk_block a;
        walk_block b
    | Run _ -> ()
    | Label (_, blk) -> walk_block blk
  in
  walk_block t.body;
  List.rev !out

let labels t =
  let out = ref [] in
  let rec walk_block block = List.iter walk block
  and walk = function
    | Label (name, blk) ->
        out := name :: !out;
        walk_block blk
    | Apply_hit (_, a, b) | If (_, a, b) ->
        walk_block a;
        walk_block b
    | Apply_switch (_, branches, default) ->
        List.iter (fun (_, blk) -> walk_block blk) branches;
        walk_block default
    | Apply _ | Run _ -> ()
  in
  walk_block t.body;
  List.rev !out

let map_tables f t =
  let rec map_block block = List.map map_stmt block
  and map_stmt = function
    | Apply name -> Apply (f name)
    | Apply_hit (name, a, b) -> Apply_hit (f name, map_block a, map_block b)
    | Apply_switch (name, branches, default) ->
        Apply_switch
          ( f name,
            List.map (fun (act, blk) -> (act, map_block blk)) branches,
            map_block default )
    | If (cond, a, b) -> If (cond, map_block a, map_block b)
    | Run prims -> Run prims
    | Label (name, blk) -> Label (name, map_block blk)
  in
  { t with body = map_block t.body }

let gateway_count t =
  let rec count_block block = List.fold_left (fun acc s -> acc + count s) 0 block
  and count = function
    | If (_, a, b) -> 1 + count_block a + count_block b
    | Apply_hit (_, a, b) -> count_block a + count_block b
    | Apply_switch (_, branches, default) ->
        List.fold_left (fun acc (_, blk) -> acc + count_block blk) 0 branches
        + count_block default
    | Apply _ | Run _ -> 0
    | Label (_, blk) -> count_block blk
  in
  count_block t.body

let validate env t =
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  let check_table name k =
    match env name with
    | None -> fail (Printf.sprintf "control %s: unknown table %s" t.name name)
    | Some table -> k table
  in
  let rec walk_block block = List.iter walk block
  and walk = function
    | Apply name -> check_table name (fun _ -> ())
    | Apply_hit (name, a, b) ->
        check_table name (fun _ -> ());
        walk_block a;
        walk_block b
    | Apply_switch (name, branches, default) ->
        check_table name (fun table ->
            List.iter
              (fun (act, _) ->
                if Table.find_action table act = None then
                  fail
                    (Printf.sprintf "control %s: table %s has no action %s"
                       t.name name act))
              branches);
        List.iter (fun (_, blk) -> walk_block blk) branches;
        walk_block default
    | If (_, a, b) ->
        walk_block a;
        walk_block b
    | Run _ -> ()
    | Label (_, blk) -> walk_block blk
  in
  walk_block t.body;
  match !problem with None -> Ok () | Some msg -> Error msg

let pp ppf t =
  let rec pp_block ppf block =
    List.iter (fun s -> Format.fprintf ppf "%a@," pp_stmt s) block
  and pp_stmt ppf = function
    | Apply name -> Format.fprintf ppf "%s.apply();" name
    | Apply_hit (name, a, b) ->
        Format.fprintf ppf "@[<v 2>if (%s.apply().hit) {@,%a}@]" name pp_block a;
        if b <> [] then Format.fprintf ppf "@[<v 2> else {@,%a}@]" pp_block b
    | Apply_switch (name, branches, default) ->
        Format.fprintf ppf "@[<v 2>switch (%s.apply().action_run) {@," name;
        List.iter
          (fun (act, blk) ->
            Format.fprintf ppf "@[<v 2>%s: {@,%a}@]@," act pp_block blk)
          branches;
        if default <> [] then
          Format.fprintf ppf "@[<v 2>default: {@,%a}@]@," pp_block default;
        Format.fprintf ppf "}@]"
    | If (cond, a, b) ->
        Format.fprintf ppf "@[<v 2>if (%a) {@,%a}@]" Expr.pp cond pp_block a;
        if b <> [] then Format.fprintf ppf "@[<v 2> else {@,%a}@]" pp_block b
    | Run prims ->
        List.iter (fun prim -> Format.fprintf ppf "%a@," Action.pp_prim prim) prims
    | Label (name, blk) ->
        Format.fprintf ppf "@[<v 2>/* %s */ {@,%a}@]" name pp_block blk
  in
  Format.fprintf ppf "@[<v 2>control %s {@,%a}@]" t.name pp_block t.body
