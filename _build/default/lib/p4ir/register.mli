(** Register arrays — the stateful extern of the RMT architecture.
    Each register is an array of fixed-width cells living in a stage's
    SRAM; actions read/modify/write them at line rate, and the control
    plane can inspect or clear them. *)

type t

val make : name:string -> size:int -> width:int -> t
(** [size] cells of [width] (1..64) bits each, all zero. *)

val name : t -> string
val size : t -> int
val width : t -> int

val read : t -> int -> Bitval.t
(** Out-of-range indices read as zero (hardware wraps; we saturate to a
    harmless default and mask the index in {!val-index_mask}). *)

val write : t -> int -> Bitval.t -> unit
(** Out-of-range writes are dropped. The value is resized to the cell
    width. *)

val index_mask : t -> int
(** Registers are sized to powers of two on the chip; indices are
    masked with [size' - 1] where [size'] is [size] rounded up. Hash
    outputs are AND-ed with this before access. *)

val clear : t -> unit
val fold : (int -> Bitval.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the nonzero cells (control-plane inspection). *)

val rename : t -> string -> t
(** Same backing cells under a new name (used by composition). *)

val sram_blocks : t -> int
(** SRAM demand: cells x width over the block size, at least 1. *)

val pp : Format.formatter -> t -> unit
