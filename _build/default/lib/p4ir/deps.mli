(** Table dependency analysis, after Jose et al. (NSDI'15), which the
    paper relies on for composition: match and action dependencies force
    tables into later MAU stages; pure control (successor) dependencies
    allow same-stage placement via predication. *)

type kind = Match_dep | Action_dep | Successor_dep

type node = {
  table : string;
  reads : Fieldref.Set.t;  (** match keys + action expression reads + the
                               gateway conditions guarding the table *)
  writes : Fieldref.Set.t;  (** union over all actions (and the default) *)
}

val nodes_of_control : Control.table_env -> Control.t -> node list
(** Applied tables in program order, each with read/write sets. Gateway
    condition reads are folded into every table the gateway guards.
    Raises [Invalid_argument] for unknown tables. *)

val dep_between : node -> node -> kind option
(** [dep_between earlier later]: the strongest dependency, or [None]. *)

val stage_gap : kind -> int
(** [Match_dep]/[Action_dep] -> 1, [Successor_dep] -> 0. *)

val min_stages : Control.table_env -> Control.t -> (string * int) list * int
(** Longest-path stage lower bound per table (ignoring capacity), and the
    total stage count (max + 1; 0 for a control with no tables). *)

val pp_kind : Format.formatter -> kind -> unit
