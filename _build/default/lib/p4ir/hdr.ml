type field = { name : string; width : int }
type decl = { name : string; fields : field list }

let decl name fields =
  let seen = Hashtbl.create 8 in
  let fields =
    List.map
      (fun (fname, width) ->
        if width < 1 || width > 64 then
          invalid_arg
            (Printf.sprintf "Hdr.decl %s: field %s width %d not in 1..64" name
               fname width);
        if Hashtbl.mem seen fname then
          invalid_arg
            (Printf.sprintf "Hdr.decl %s: duplicate field %s" name fname);
        Hashtbl.add seen fname ();
        { name = fname; width })
      fields
  in
  { name; fields }

let total_width d = List.fold_left (fun acc f -> acc + f.width) 0 d.fields

let byte_size d =
  let w = total_width d in
  if w mod 8 <> 0 then
    invalid_arg (Printf.sprintf "Hdr.byte_size %s: %d bits not byte-aligned" d.name w)
  else w / 8

let field_width d fname =
  match List.find_opt (fun (f : field) -> String.equal f.name fname) d.fields with
  | Some f -> f.width
  | None -> raise Not_found

let has_field d fname =
  List.exists (fun (f : field) -> String.equal f.name fname) d.fields

let equal_decl a b =
  String.equal a.name b.name
  && List.length a.fields = List.length b.fields
  && List.for_all2
       (fun (x : field) (y : field) -> String.equal x.name y.name && x.width = y.width)
       a.fields b.fields

let pp_decl ppf d =
  Format.fprintf ppf "header %s {" d.name;
  List.iter (fun (f : field) -> Format.fprintf ppf " bit<%d> %s;" f.width f.name) d.fields;
  Format.fprintf ppf " }"

type inst = {
  idecl : decl;
  mutable valid : bool;
  values : (string, Bitval.t) Hashtbl.t;
}

let inst d =
  let values = Hashtbl.create (List.length d.fields) in
  List.iter (fun (f : field) -> Hashtbl.replace values f.name (Bitval.zero f.width)) d.fields;
  { idecl = d; valid = false; values }

let inst_valid d =
  let i = inst d in
  i.valid <- true;
  i

let decl_of i = i.idecl
let is_valid i = i.valid
let set_valid i = i.valid <- true
let set_invalid i = i.valid <- false

let get i fname =
  match Hashtbl.find_opt i.values fname with
  | Some v -> v
  | None -> raise Not_found

let set i fname v =
  let w = field_width i.idecl fname in
  Hashtbl.replace i.values fname (Bitval.resize v w)

let copy i =
  { idecl = i.idecl; valid = i.valid; values = Hashtbl.copy i.values }

let extract i b ~bit_off =
  let off = ref bit_off in
  List.iter
    (fun (f : field) ->
      let v = Netpkt.Bytes_util.get_bits b ~bit_off:!off ~width:f.width in
      Hashtbl.replace i.values f.name (Bitval.make ~width:f.width v);
      off := !off + f.width)
    i.idecl.fields;
  i.valid <- true

let emit i b ~bit_off =
  let off = ref bit_off in
  List.iter
    (fun (f : field) ->
      let v = get i f.name in
      Netpkt.Bytes_util.set_bits b ~bit_off:!off ~width:f.width
        (Bitval.to_int64 v);
      off := !off + f.width)
    i.idecl.fields

let equal_inst a b =
  equal_decl a.idecl b.idecl && a.valid = b.valid
  && List.for_all
       (fun (f : field) -> Bitval.equal (get a f.name) (get b f.name))
       a.idecl.fields

let pp_inst ppf i =
  Format.fprintf ppf "%s%s{" i.idecl.name (if i.valid then "" else "(invalid)");
  List.iter
    (fun (f : field) -> Format.fprintf ppf " %s=%Lu" f.name (Bitval.to_int64 (get i f.name)))
    i.idecl.fields;
  Format.fprintf ppf " }"
