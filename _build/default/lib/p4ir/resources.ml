type t = {
  stages : int;
  table_ids : int;
  srams : int;
  tcams : int;
  crossbar_bytes : int;
  vliws : int;
  gateways : int;
  hash_bits : int;
}

let zero =
  {
    stages = 0;
    table_ids = 0;
    srams = 0;
    tcams = 0;
    crossbar_bytes = 0;
    vliws = 0;
    gateways = 0;
    hash_bits = 0;
  }

let add a b =
  {
    stages = a.stages + b.stages;
    table_ids = a.table_ids + b.table_ids;
    srams = a.srams + b.srams;
    tcams = a.tcams + b.tcams;
    crossbar_bytes = a.crossbar_bytes + b.crossbar_bytes;
    vliws = a.vliws + b.vliws;
    gateways = a.gateways + b.gateways;
    hash_bits = a.hash_bits + b.hash_bits;
  }

let max_merge a b =
  {
    stages = max a.stages b.stages;
    table_ids = a.table_ids + b.table_ids;
    srams = a.srams + b.srams;
    tcams = a.tcams + b.tcams;
    crossbar_bytes = max a.crossbar_bytes b.crossbar_bytes;
    vliws = a.vliws + b.vliws;
    gateways = a.gateways + b.gateways;
    hash_bits = max a.hash_bits b.hash_bits;
  }

let sum = List.fold_left add zero

let fits r ~cap =
  r.stages <= cap.stages && r.table_ids <= cap.table_ids && r.srams <= cap.srams
  && r.tcams <= cap.tcams
  && r.crossbar_bytes <= cap.crossbar_bytes
  && r.vliws <= cap.vliws && r.gateways <= cap.gateways
  && r.hash_bits <= cap.hash_bits

let scale k r =
  {
    stages = k * r.stages;
    table_ids = k * r.table_ids;
    srams = k * r.srams;
    tcams = k * r.tcams;
    crossbar_bytes = k * r.crossbar_bytes;
    vliws = k * r.vliws;
    gateways = k * r.gateways;
    hash_bits = k * r.hash_bits;
  }

let pct used total =
  if total = 0 then 0.0 else 100.0 *. float_of_int used /. float_of_int total

let utilization r ~total =
  [
    ("Stages", pct r.stages total.stages);
    ("Table IDs", pct r.table_ids total.table_ids);
    ("Gateways", pct r.gateways total.gateways);
    ("Crossbars", pct r.crossbar_bytes total.crossbar_bytes);
    ("VLIWs", pct r.vliws total.vliws);
    ("SRAM", pct r.srams total.srams);
    ("TCAM", pct r.tcams total.tcams);
  ]

type stage_caps = {
  cap_table_ids : int;
  cap_srams : int;
  cap_tcams : int;
  cap_crossbar_bytes : int;
  cap_vliws : int;
  cap_gateways : int;
  cap_hash_bits : int;
}

let tofino_stage_caps =
  {
    cap_table_ids = 16;
    cap_srams = 80;
    cap_tcams = 24;
    cap_crossbar_bytes = 128;
    cap_vliws = 32;
    cap_gateways = 16;
    cap_hash_bits = 416;
  }

let sram_block_bits = 128 * 1024 (* 1K entries x 128b words *)
let tcam_block_entries = 512
let tcam_block_width = 44

let ceil_div a b = (a + b - 1) / b

let action_data_bits table =
  List.fold_left
    (fun acc (a : Action.t) ->
      max acc (List.fold_left (fun s (_, w) -> s + w) 0 a.Action.params))
    0 (Table.actions table)

let of_table table =
  let kb = Table.key_bits table in
  let adb = action_data_bits table in
  let size = Table.max_size table in
  let has_tcam_key =
    List.exists
      (fun (k : Table.key) ->
        match k.Table.kind with
        | Table.Ternary | Table.Lpm | Table.Range -> true
        | Table.Exact -> false)
      (Table.keys table)
  in
  let srams, tcams, hash_bits =
    if kb = 0 then (0, 0, 0) (* keyless: default-action only *)
    else if has_tcam_key then
      (* Match in TCAM; action data still lives in SRAM. *)
      let tcam_cols = ceil_div kb tcam_block_width in
      let tcam_rows = ceil_div size tcam_block_entries in
      let ad_srams = if adb = 0 then 0 else ceil_div (size * (adb + 8)) sram_block_bits in
      (ad_srams, tcam_cols * tcam_rows, 0)
    else
      (* Exact match: hash way in SRAM with ~20% overhead bits/entry. *)
      let entry_bits = kb + adb + 16 in
      (max 1 (ceil_div (size * entry_bits) sram_block_bits), 0, min kb 64)
  in
  {
    stages = 1;
    table_ids = 1;
    srams;
    tcams;
    crossbar_bytes = ceil_div kb 8;
    vliws = List.length (Table.actions table);
    gateways = 0;
    hash_bits;
  }

let of_control env control =
  let tables = Control.tables_used control in
  let demand =
    sum
      (List.map
         (fun name ->
           match env name with
           | Some t -> { (of_table t) with stages = 0 }
           | None -> invalid_arg (Printf.sprintf "Resources: unknown table %s" name))
         tables)
  in
  let _, stages = Deps.min_stages env control in
  { demand with stages; gateways = Control.gateway_count control }

let pp ppf r =
  Format.fprintf ppf
    "{stages=%d; tables=%d; srams=%d; tcams=%d; xbar=%dB; vliw=%d; gw=%d; hash=%db}"
    r.stages r.table_ids r.srams r.tcams r.crossbar_bytes r.vliws r.gateways
    r.hash_bits

let pp_row ppf r =
  Format.fprintf ppf "%6d %6d %6d %6d %6d %6d %6d %6d" r.stages r.table_ids
    r.srams r.tcams r.crossbar_bytes r.vliws r.gateways r.hash_bits
