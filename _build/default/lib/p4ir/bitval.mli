(** Width-bounded bit values: the value type of every P4 field.

    A value carries its width (1..64 bits); arithmetic is modular in the
    width, comparisons are unsigned, exactly like P4's [bit<W>]. *)

type t
(** Immutable. *)

val make : width:int -> int64 -> t
(** [make ~width v] truncates [v] to [width] bits. Raises
    [Invalid_argument] unless [1 <= width <= 64]. *)

val of_int : width:int -> int -> t
val zero : int -> t
val one : int -> t
val max_value : int -> t
val width : t -> int
val to_int64 : t -> int64
(** Unsigned: always >= 0 for widths < 64. *)

val to_int : t -> int
(** Raises [Invalid_argument] if the value does not fit in an OCaml int. *)

val to_bool : t -> bool
(** [false] iff the value is zero. *)

val of_bool : bool -> t
(** A 1-bit value. *)

val resize : t -> int -> t
(** Truncate or zero-extend to a new width. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Operands are resized to the left operand's width; results keep it. *)

val equal : t -> t -> bool
(** Width-sensitive: values of different widths are never equal. *)

val equal_value : t -> t -> bool
(** Compares just the numeric values. *)

val compare_unsigned : t -> t -> int
val lt : t -> t -> bool
val le : t -> t -> bool
val slice : t -> hi:int -> lo:int -> t
(** Bits [hi..lo] inclusive, like P4's [v[hi:lo]]. *)

val concat : t -> t -> t
(** Raises if the combined width exceeds 64. *)

val mask_of_prefix : width:int -> int -> t
(** [mask_of_prefix ~width n]: the n-bit-long prefix mask, MSB-aligned. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
