(** Bit-exact access to byte buffers, in network (big-endian) bit order,
    plus the two checksums every packet pipeline needs.

    Bit offsets count from the most-significant bit of byte 0, the way
    header diagrams in RFCs (and P4 parser offsets) are written. *)

val get_bits : Bytes.t -> bit_off:int -> width:int -> int64
(** [get_bits b ~bit_off ~width] reads [width] bits (1..64) starting at
    [bit_off] as an unsigned value. Raises [Invalid_argument] when the
    range falls outside [b] or [width] is out of range. *)

val set_bits : Bytes.t -> bit_off:int -> width:int -> int64 -> unit
(** [set_bits b ~bit_off ~width v] writes the low [width] bits of [v]
    at [bit_off]. Bits of [v] above [width] are ignored. *)

val get_uint8 : Bytes.t -> int -> int
val set_uint8 : Bytes.t -> int -> int -> unit
val get_uint16 : Bytes.t -> int -> int
val set_uint16 : Bytes.t -> int -> int -> unit
val get_uint32 : Bytes.t -> int -> int64
val set_uint32 : Bytes.t -> int -> int64 -> unit

val internet_checksum : Bytes.t -> off:int -> len:int -> int
(** RFC 1071 ones'-complement checksum of [len] bytes at [off]. *)

val crc32 : ?init:int64 -> Bytes.t -> off:int -> len:int -> int64
(** IEEE 802.3 CRC32 (reflected, polynomial 0xEDB88320) of the range. *)

val crc16 : Bytes.t -> off:int -> len:int -> int64
(** CRC-16/ARC (reflected, polynomial 0xA001) of the range. *)

val pp_hex : Format.formatter -> Bytes.t -> unit
(** Hex dump, 16 bytes per line. *)

val equal_range : Bytes.t -> Bytes.t -> off:int -> len:int -> bool
(** Compare the same [off, off+len) range of two buffers. *)
