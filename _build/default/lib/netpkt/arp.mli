(** ARP codec (Ethernet/IPv4 only). *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac.t;
  sender_ip : Ip4.t;
  target_mac : Mac.t;
  target_ip : Ip4.t;
}

val size : int
(** 28 bytes. *)

val encode_into : t -> Bytes.t -> off:int -> unit
val decode : Bytes.t -> off:int -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
