type t = { typ : int; code : int; ident : int; seq : int }

let size = 8
let echo_request ~ident ~seq = { typ = 8; code = 0; ident; seq }
let echo_reply ~ident ~seq = { typ = 0; code = 0; ident; seq }

let encode_into t b ~off =
  Bytes_util.set_uint8 b off t.typ;
  Bytes_util.set_uint8 b (off + 1) t.code;
  Bytes_util.set_uint16 b (off + 2) 0;
  Bytes_util.set_uint16 b (off + 4) t.ident;
  Bytes_util.set_uint16 b (off + 6) t.seq;
  Bytes_util.set_uint16 b (off + 2)
    (Bytes_util.internet_checksum b ~off ~len:size)

let decode b ~off =
  if Bytes.length b < off + size then Error "Icmp.decode: truncated"
  else
    Ok
      {
        typ = Bytes_util.get_uint8 b off;
        code = Bytes_util.get_uint8 b (off + 1);
        ident = Bytes_util.get_uint16 b (off + 4);
        seq = Bytes_util.get_uint16 b (off + 6);
      }

let equal a b = a.typ = b.typ && a.code = b.code && a.ident = b.ident && a.seq = b.seq
let pp ppf t = Format.fprintf ppf "icmp{type=%d code=%d seq=%d}" t.typ t.code t.seq
