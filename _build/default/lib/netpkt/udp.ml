type t = { src_port : int; dst_port : int; length : int; checksum : int }

let size = 8
let port_vxlan = 4789

let make ?(length = size) ~src_port ~dst_port () =
  { src_port; dst_port; length; checksum = 0 }

let encode_into t b ~off =
  Bytes_util.set_uint16 b off t.src_port;
  Bytes_util.set_uint16 b (off + 2) t.dst_port;
  Bytes_util.set_uint16 b (off + 4) t.length;
  Bytes_util.set_uint16 b (off + 6) t.checksum

let decode b ~off =
  if Bytes.length b < off + size then Error "Udp.decode: truncated"
  else
    Ok
      {
        src_port = Bytes_util.get_uint16 b off;
        dst_port = Bytes_util.get_uint16 b (off + 2);
        length = Bytes_util.get_uint16 b (off + 4);
        checksum = Bytes_util.get_uint16 b (off + 6);
      }

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port && a.length = b.length

let pp ppf t =
  Format.fprintf ppf "udp{%d -> %d len=%d}" t.src_port t.dst_port t.length
